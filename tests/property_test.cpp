// Property-based suites (parameterized gtest): invariants that must hold
// across the whole proxy suite, across delay-target sweeps, and across
// variation-model scalings — the safety net behind the experiment harness.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/proxy.hpp"
#include "gen/random_dag.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "opt/deterministic.hpp"
#include "opt/metrics.hpp"
#include "opt/statistical.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"

namespace statleak {
namespace {

const CellLibrary& shared_library() {
  static const CellLibrary lib(generic_100nm());
  return lib;
}

// ------------------------------------------------- per-proxy invariants ----

class ProxyInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(ProxyInvariants, SstaTracksMcAcrossSuite) {
  const CellLibrary& lib = shared_library();
  const VariationModel var = VariationModel::typical_100nm();
  const Circuit c = iscas85_proxy(GetParam());
  const Canonical d = SstaEngine(c, lib, var).circuit_delay();

  McConfig mc;
  mc.num_samples = 2500;
  mc.seed = 101;
  const McResult res = run_monte_carlo(c, lib, var, mc);
  const SampleSummary s = res.delay_summary();
  EXPECT_NEAR(d.mean, s.mean, 0.04 * s.mean) << GetParam();
  EXPECT_NEAR(d.sigma(), s.stddev, 0.25 * s.stddev) << GetParam();
}

TEST_P(ProxyInvariants, WilkinsonTracksMcAcrossSuite) {
  const CellLibrary& lib = shared_library();
  const VariationModel var = VariationModel::typical_100nm();
  const Circuit c = iscas85_proxy(GetParam());
  const LeakageDistribution d = LeakageAnalyzer(c, lib, var).distribution();

  McConfig mc;
  mc.num_samples = 2500;
  mc.seed = 103;
  const McResult res = run_monte_carlo(c, lib, var, mc);
  const SampleSummary s = res.leakage_summary();
  EXPECT_NEAR(d.mean_na, s.mean, 0.05 * s.mean) << GetParam();
  EXPECT_NEAR(d.quantile_na(0.95), res.leakage_quantile_na(0.95),
              0.12 * res.leakage_quantile_na(0.95))
      << GetParam();
}

TEST_P(ProxyInvariants, SimulationStableUnderImplementationChanges) {
  // Sizing / Vth assignment must never change logic values.
  const CellLibrary& lib = shared_library();
  Circuit c = iscas85_proxy(GetParam());
  std::vector<char> in(c.inputs().size());
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = (i % 3 == 0) ? 1 : 0;
  const auto before = simulate(c, in);

  OptConfig cfg;
  cfg.t_max_ps = 1.3 * StaEngine(c, lib).critical_delay_ps();
  (void)DeterministicOptimizer(lib, VariationModel::typical_100nm(), cfg)
      .run(c);
  const auto after = simulate(c, in);
  EXPECT_EQ(before, after) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SmallAndMidProxies, ProxyInvariants,
                         ::testing::Values("c432p", "c499p", "c880p",
                                           "c1355p", "c1908p"));

// -------------------------------------------- delay-target sweep (F2-ish) ----

class TargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(TargetSweep, StatFeasibleAndBeatsWorstCaseCorner) {
  const double factor = GetParam();
  const CellLibrary& lib = shared_library();
  const VariationModel var = VariationModel::typical_100nm();
  Circuit det = iscas85_proxy("c499p");
  Circuit stat = det;

  // Use the min-size nominal delay as the reference floor: cheap and
  // monotone in the factor.
  OptConfig cfg;
  cfg.t_max_ps = factor * StaEngine(det, lib).critical_delay_ps();
  cfg.yield_target = 0.95;

  OptConfig det_cfg = cfg;
  det_cfg.corner_k_sigma = 3.0;
  (void)DeterministicOptimizer(lib, var, det_cfg).run(det);
  const OptResult sr = StatisticalOptimizer(lib, var, cfg).run(stat);
  EXPECT_TRUE(sr.feasible) << "factor " << factor;

  const CircuitMetrics md = measure_metrics(det, lib, var, cfg.t_max_ps);
  const CircuitMetrics ms = measure_metrics(stat, lib, var, cfg.t_max_ps);
  EXPECT_GE(ms.timing_yield, 0.95 - 1e-9);
  if (md.timing_yield >= 0.95) {
    EXPECT_LE(ms.leakage_p99_na, md.leakage_p99_na * 1.001)
        << "factor " << factor;
  }
}

TEST_P(TargetSweep, HvtFractionGrowsWithLooserTarget) {
  static double prev_fraction = -1.0;
  static double prev_factor = 0.0;
  const double factor = GetParam();
  const CellLibrary& lib = shared_library();
  const VariationModel var = VariationModel::typical_100nm();
  Circuit c = iscas85_proxy("c432p");
  OptConfig cfg;
  cfg.t_max_ps = factor * StaEngine(c, lib).critical_delay_ps();
  (void)StatisticalOptimizer(lib, var, cfg).run(c);
  const double fraction = static_cast<double>(c.count_hvt()) /
                          static_cast<double>(c.num_cells());
  if (prev_fraction >= 0.0 && factor > prev_factor) {
    EXPECT_GE(fraction, prev_fraction - 0.08)
        << "factor " << factor << " vs " << prev_factor;
  }
  prev_fraction = fraction;
  prev_factor = factor;
}

INSTANTIATE_TEST_SUITE_P(Factors, TargetSweep,
                         ::testing::Values(1.15, 1.3, 1.5, 1.8));

// ------------------------------------------- variation-scale invariants ----

class VariationSweep : public ::testing::TestWithParam<double> {};

TEST_P(VariationSweep, DelaySigmaScalesWithVariation) {
  const double scale = GetParam();
  const CellLibrary& lib = shared_library();
  const VariationModel var = VariationModel::typical_100nm().scaled(scale);
  const Circuit c = iscas85_proxy("c432p");
  const Canonical base =
      SstaEngine(c, lib, VariationModel::typical_100nm()).circuit_delay();
  const Canonical scaled = SstaEngine(c, lib, var).circuit_delay();
  // First-order delay model: sigma scales linearly with the variation scale
  // (up to MAX nonlinearity, hence the tolerance).
  EXPECT_NEAR(scaled.sigma(), scale * base.sigma(), 0.2 * scale * base.sigma());
}

TEST_P(VariationSweep, LeakageTailGrowsFasterThanLinear) {
  const double scale = GetParam();
  if (scale <= 1.0) GTEST_SKIP() << "tail-growth check needs scale > 1";
  const CellLibrary& lib = shared_library();
  const Circuit c = iscas85_proxy("c432p");
  const double base_p99 =
      LeakageAnalyzer(c, lib, VariationModel::typical_100nm())
          .quantile_na(0.99);
  const double base_mean =
      LeakageAnalyzer(c, lib, VariationModel::typical_100nm()).mean_na();
  const VariationModel var = VariationModel::typical_100nm().scaled(scale);
  const LeakageAnalyzer an(c, lib, var);
  // Exponential amplification: the p99/mean ratio widens superlinearly.
  EXPECT_GT(an.quantile_na(0.99) / an.mean_na(), base_p99 / base_mean);
}

INSTANTIATE_TEST_SUITE_P(Scales, VariationSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

// --------------------------------------------- random-DAG seed sweep -------

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, OptimizerInvariantsOnRandomLogic) {
  const CellLibrary& lib = shared_library();
  const VariationModel var = VariationModel::typical_100nm();
  RandomDagSpec spec;
  spec.num_gates = 350;
  spec.seed = static_cast<std::uint64_t>(GetParam());
  Circuit c = make_random_dag(spec);

  OptConfig cfg;
  cfg.t_max_ps = 1.25 * StaEngine(c, lib).critical_delay_ps();
  cfg.yield_target = 0.95;
  const OptResult r = StatisticalOptimizer(lib, var, cfg).run(c);
  EXPECT_TRUE(r.feasible) << "seed " << GetParam();

  // Yield holds, sizes on grid, leakage objective sane.
  const double yield = SstaEngine(c, lib, var).circuit_delay().cdf(cfg.t_max_ps);
  EXPECT_GE(yield, 0.95 - 1e-9);
  EXPECT_GT(r.final_objective, 0.0);
  const auto steps = lib.size_steps();
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    EXPECT_GE(g.size, steps.front());
    EXPECT_LE(g.size, steps.back());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace statleak
