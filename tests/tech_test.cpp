// Unit tests for statleak_tech: process nodes, device models, and the
// variation model. Key properties: leakage is exponential in (dL, dVth) with
// exactly the advertised sensitivities, delay sensitivities match finite
// differences of the actual drive model, and dual-Vth gives the expected
// order-of-magnitude leakage ratio.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "tech/device.hpp"
#include "tech/process.hpp"
#include "tech/variation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace statleak {
namespace {

TEST(ProcessNode, FactoriesValidate) {
  EXPECT_NO_THROW(generic_100nm().validate());
  EXPECT_NO_THROW(generic_70nm().validate());
}

TEST(ProcessNode, VthOfSelectsClass) {
  const ProcessNode node = generic_100nm();
  EXPECT_DOUBLE_EQ(node.vth_of(Vth::kLow), node.vth_low);
  EXPECT_DOUBLE_EQ(node.vth_of(Vth::kHigh), node.vth_high);
  EXPECT_LT(node.vth_low, node.vth_high);
}

TEST(ProcessNode, ValidateRejectsNonPhysical) {
  ProcessNode node = generic_100nm();
  node.vdd = -1.0;
  EXPECT_THROW(node.validate(), Error);

  node = generic_100nm();
  node.vth_high = node.vth_low - 0.01;
  EXPECT_THROW(node.validate(), Error);

  node = generic_100nm();
  node.vth_high = node.vdd + 0.1;
  EXPECT_THROW(node.validate(), Error);

  node = generic_100nm();
  node.subthreshold_slope = 0.0;
  EXPECT_THROW(node.validate(), Error);

  node = generic_100nm();
  node.alpha = 3.0;
  EXPECT_THROW(node.validate(), Error);
}

TEST(VthEnum, ToString) {
  EXPECT_STREQ(to_string(Vth::kLow), "LVT");
  EXPECT_STREQ(to_string(Vth::kHigh), "HVT");
}

// ------------------------------------------------------------- leakage ----

TEST(Device, DualVthLeakageRatioIsOrderTenToThirty) {
  const ProcessNode node = generic_100nm();
  const double lvt = subthreshold_current_na(node, Vth::kLow, 1.0);
  const double hvt = subthreshold_current_na(node, Vth::kHigh, 1.0);
  const double ratio = lvt / hvt;
  // delta-Vth of 120 mV at 100 mV/dec -> ~16x.
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 40.0);
}

TEST(Device, LeakageLinearInWidth) {
  const ProcessNode node = generic_100nm();
  const double i1 = subthreshold_current_na(node, Vth::kLow, 1.0);
  const double i3 = subthreshold_current_na(node, Vth::kLow, 3.0);
  EXPECT_NEAR(i3, 3.0 * i1, 1e-9);
}

TEST(Device, LeakageOneDecadePerSlope) {
  const ProcessNode node = generic_100nm();
  const double base = subthreshold_current_na(node, Vth::kLow, 1.0, 0.0, 0.0);
  const double shifted = subthreshold_current_na(node, Vth::kLow, 1.0, 0.0,
                                                 node.subthreshold_slope);
  EXPECT_NEAR(shifted, base / 10.0, base * 1e-9);
}

TEST(Device, ShorterChannelLeaksMore) {
  const ProcessNode node = generic_100nm();
  const double nom = subthreshold_current_na(node, Vth::kLow, 1.0, 0.0, 0.0);
  const double shorter = subthreshold_current_na(node, Vth::kLow, 1.0, -3.0, 0.0);
  const double longer = subthreshold_current_na(node, Vth::kLow, 1.0, 3.0, 0.0);
  EXPECT_GT(shorter, nom);
  EXPECT_LT(longer, nom);
}

TEST(Device, LeakageSensitivitiesMatchFiniteDifference) {
  const ProcessNode node = generic_100nm();
  for (Vth vth : {Vth::kLow, Vth::kHigh}) {
    const DeviceSensitivities s = device_sensitivities(node, vth);
    const double eps = 1e-4;
    const double i0 = subthreshold_current_na(node, vth, 1.0, 0.0, 0.0);
    const double il = subthreshold_current_na(node, vth, 1.0, eps, 0.0);
    const double iv = subthreshold_current_na(node, vth, 1.0, 0.0, eps);
    const double cl_fd = -(std::log(il) - std::log(i0)) / eps;
    const double cv_fd = -(std::log(iv) - std::log(i0)) / eps;
    EXPECT_NEAR(cl_fd, s.leak_cl_per_nm, 1e-6 * s.leak_cl_per_nm + 1e-9);
    EXPECT_NEAR(cv_fd, s.leak_cv_per_v, 1e-6 * s.leak_cv_per_v);
  }
}

TEST(Device, QuadraticExponentApplied) {
  ProcessNode node = generic_100nm();
  node.leak_quadratic_per_nm2 = 0.01;
  const double base = subthreshold_current_na(node, Vth::kLow, 1.0, 0.0, 0.0);
  const double at3 = subthreshold_current_na(node, Vth::kLow, 1.0, 3.0, 0.0);
  node.leak_quadratic_per_nm2 = 0.0;
  const double linear3 = subthreshold_current_na(node, Vth::kLow, 1.0, 3.0, 0.0);
  EXPECT_NEAR(at3, linear3 * std::exp(0.01 * 9.0), base * 1e-9);
}

// --------------------------------------------------------------- drive ----

TEST(Device, DriveLinearInWidth) {
  const ProcessNode node = generic_100nm();
  const double i1 = drive_current_ua(node, Vth::kLow, 1.0);
  const double i2 = drive_current_ua(node, Vth::kLow, 2.0);
  EXPECT_NEAR(i2, 2.0 * i1, 1e-9);
}

TEST(Device, HvtDrivesLess) {
  const ProcessNode node = generic_100nm();
  const double lvt = drive_current_ua(node, Vth::kLow, 1.0);
  const double hvt = drive_current_ua(node, Vth::kHigh, 1.0);
  EXPECT_LT(hvt, lvt);
  // alpha-power ratio: ((vdd-vth_h)/(vdd-vth_l))^alpha.
  const double expect = std::pow((node.vdd - node.vth_high) /
                                     (node.vdd - node.vth_low),
                                 node.alpha);
  EXPECT_NEAR(hvt / lvt, expect, 1e-9);
}

TEST(Device, LongerChannelDrivesLess) {
  const ProcessNode node = generic_100nm();
  const double nom = drive_current_ua(node, Vth::kLow, 1.0, 0.0, 0.0);
  const double longer = drive_current_ua(node, Vth::kLow, 1.0, 5.0, 0.0);
  EXPECT_LT(longer, nom);
}

TEST(Device, DelaySensitivitiesMatchFiniteDifference) {
  // Delay ~ 1/Id up to a constant, so dln(delay) = -dln(Id). The canonical
  // sL drops the (small) channel-length-modulation term that the exact
  // drive model carries, so compare against the exact model with a
  // tolerance covering that documented approximation.
  const ProcessNode node = generic_100nm();
  for (Vth vth : {Vth::kLow, Vth::kHigh}) {
    const DeviceSensitivities s = device_sensitivities(node, vth);
    const double eps = 1e-4;
    const double i0 = drive_current_ua(node, vth, 1.0, 0.0, 0.0);
    const double il = drive_current_ua(node, vth, 1.0, eps, 0.0);
    const double iv = drive_current_ua(node, vth, 1.0, 0.0, eps);
    const double sl_fd = -(std::log(il) - std::log(i0)) / eps;
    const double sv_fd = -(std::log(iv) - std::log(i0)) / eps;
    EXPECT_NEAR(sl_fd, s.delay_sl_per_nm, 0.05 * s.delay_sl_per_nm);
    EXPECT_NEAR(sv_fd, s.delay_sv_per_v, 1e-4 * s.delay_sv_per_v);
  }
}

TEST(Device, DriveThrowsWhenVthReachesVdd) {
  const ProcessNode node = generic_100nm();
  // A +1000 mV dVth excursion pushes Vth past Vdd.
  EXPECT_THROW(drive_current_ua(node, Vth::kHigh, 1.0, 0.0, 1.0), Error);
}

TEST(Device, Capacitances) {
  const ProcessNode node = generic_100nm();
  EXPECT_NEAR(gate_cap_ff(node, 2.0), 2.0 * node.cg_ff_per_um, 1e-12);
  EXPECT_NEAR(junction_cap_ff(node, 2.0), 2.0 * node.cj_ff_per_um, 1e-12);
}

// ------------------------------------------- presets + corner scaling ----

TEST(ProcessNode, RegistryListsEveryPresetAndResolvesAliases) {
  const std::vector<std::string> names = process_node_names();
  ASSERT_EQ(names.size(), 5u);
  for (const std::string& name : names) {
    EXPECT_NO_THROW(process_node_by_name(name).validate()) << name;
    EXPECT_EQ(process_node_by_name(name).name, name);
  }
  // The numeric aliases resolve to the classic factories.
  EXPECT_EQ(process_node_by_name("100").name, generic_100nm().name);
  EXPECT_EQ(process_node_by_name("70").name, generic_70nm().name);
  EXPECT_THROW(process_node_by_name("generic-65nm"), Error);
}

// Golden values pin each new preset's calibration: a drive-by edit to the
// constants shows up as a concrete number change here, not as a silent
// shift in every downstream experiment.
TEST(ProcessNode, NewPresetGoldenValues) {
  const auto check = [](const char* name, double lvt_leak, double hvt_leak,
                        double lvt_drive) {
    const ProcessNode node = process_node_by_name(name);
    EXPECT_NEAR(subthreshold_current_na(node, Vth::kLow, 1.0), lvt_leak,
                1e-5 * lvt_leak)
        << name;
    EXPECT_NEAR(subthreshold_current_na(node, Vth::kHigh, 1.0), hvt_leak,
                1e-5 * hvt_leak)
        << name;
    EXPECT_NEAR(drive_current_ua(node, Vth::kLow, 1.0), lvt_drive,
                1e-5 * lvt_drive)
        << name;
  };
  check("generic-130nm", 5.799516, 0.248297, 725.666046);
  check("generic-100nm-lp", 1.649683, 0.055426, 479.810285);
  check("generic-70nm-lp", 7.165929, 0.452140, 454.147538);
}

TEST(ProcessNode, ValidateRejectsTemperatureEditWithoutRetarget) {
  // temperature_k is baked into the calibrated constants: editing it in
  // place would silently keep the old-temperature calibration, so
  // validate() demands the at_temperature() retarget path instead.
  ProcessNode node = generic_100nm();
  node.temperature_k = 398.15;
  EXPECT_THROW(node.validate(), Error);
  EXPECT_NO_THROW(at_temperature(generic_100nm(), 398.15).validate());
}

TEST(ProcessNode, AtTemperatureAppliesFirstOrderScaling) {
  const ProcessNode base = generic_100nm();
  const ProcessNode hot = at_temperature(base, 398.15);
  const double ratio = 398.15 / base.temperature_k;
  EXPECT_NEAR(hot.subthreshold_slope, base.subthreshold_slope * ratio, 1e-12);
  EXPECT_NEAR(hot.i0_na_per_um, base.i0_na_per_um * ratio * ratio, 1e-9);
  EXPECT_NEAR(hot.vth_low,
              base.vth_low - base.vth_tc_v_per_k * (398.15 - base.temperature_k),
              1e-12);
  EXPECT_NEAR(hot.k_drive_ua_per_um,
              base.k_drive_ua_per_um * std::pow(ratio, -base.mobility_exponent),
              1e-9);
  EXPECT_EQ(hot.temperature_k, 398.15);
  EXPECT_EQ(hot.calib_temperature_k, 398.15);
  // Retargeting to the calibration temperature is the identity, bitwise.
  const ProcessNode same = at_temperature(base, base.temperature_k);
  EXPECT_EQ(same.subthreshold_slope, base.subthreshold_slope);
  EXPECT_EQ(same.i0_na_per_um, base.i0_na_per_um);
}

TEST(ProcessNode, AtVddDeratesThroughDibl) {
  const ProcessNode base = generic_100nm();
  const ProcessNode derated = at_vdd(base, 1.1);
  const double dvth = base.dibl_v_per_v * (base.vdd - 1.1);
  EXPECT_NEAR(derated.vth_low, base.vth_low + dvth, 1e-12);
  EXPECT_NEAR(derated.vth_high, base.vth_high + dvth, 1e-12);
  EXPECT_EQ(derated.vdd, 1.1);
  // Lower Vdd -> higher Vth -> less leakage.
  EXPECT_LT(subthreshold_current_na(derated, Vth::kLow, 1.0),
            subthreshold_current_na(base, Vth::kLow, 1.0));
}

TEST(ProcessNode, LeakageMonotonicallyIncreasesInTemperature) {
  for (const std::string& name : process_node_names()) {
    const ProcessNode base = process_node_by_name(name);
    for (Vth vth : {Vth::kLow, Vth::kHigh}) {
      double prev = -1.0;
      for (const double t : {313.15, 343.15, 373.0, 398.15, 423.15}) {
        const double leak =
            subthreshold_current_na(at_temperature(base, t), vth, 1.0);
        EXPECT_GT(leak, prev) << name << " at " << t << " K";
        prev = leak;
      }
    }
  }
}

TEST(ProcessNode, LeakageMonotonicallyDecreasesInVth) {
  // Across every shipped node, raising the threshold (LVT -> HVT, and any
  // positive dVth excursion on top) can only reduce subthreshold current.
  for (const std::string& name : process_node_names()) {
    const ProcessNode node = process_node_by_name(name);
    const double lvt = subthreshold_current_na(node, Vth::kLow, 1.0);
    const double hvt = subthreshold_current_na(node, Vth::kHigh, 1.0);
    EXPECT_GT(lvt, hvt) << name;
    EXPECT_GT(hvt, subthreshold_current_na(node, Vth::kHigh, 1.0, 0.0, 0.02))
        << name;
  }
}

TEST(ProcessNode, DelayMonotonicallyDecreasesInVdd) {
  // Alpha-power delay ~ C * Vdd / Id(Vdd): more supply always helps at
  // every shipped corner (DIBL raises Vth as Vdd derates, compounding it).
  for (const std::string& name : process_node_names()) {
    const ProcessNode base = process_node_by_name(name);
    for (Vth vth : {Vth::kLow, Vth::kHigh}) {
      double prev = std::numeric_limits<double>::infinity();
      for (const double f : {0.90, 0.95, 1.0, 1.05, 1.10}) {
        const ProcessNode node = at_vdd(base, f * base.vdd);
        const double delay = node.vdd / drive_current_ua(node, vth, 1.0);
        EXPECT_LT(delay, prev) << name << " at " << f << " x Vdd";
        prev = delay;
      }
    }
  }
}

TEST(ProcessNode, AtCornerComposesTemperatureAndVdd) {
  const ProcessNode base = generic_70nm();
  const ProcessNode corner = at_corner(base, 398.15, 0.9);
  const ProcessNode manual = at_vdd(at_temperature(base, 398.15), 0.9);
  EXPECT_EQ(corner.vth_low, manual.vth_low);
  EXPECT_EQ(corner.subthreshold_slope, manual.subthreshold_slope);
  EXPECT_EQ(corner.vdd, manual.vdd);
  // Non-positive axes leave the calibrated values untouched (bitwise).
  const ProcessNode untouched = at_corner(base, 0.0, 0.0);
  EXPECT_EQ(untouched.vth_low, base.vth_low);
  EXPECT_EQ(untouched.i0_na_per_um, base.i0_na_per_um);
}

// ----------------------------------------------------------- variation ----

TEST(Variation, TotalsAreQuadratureSums) {
  const VariationModel var{3.0, 4.0, 0.003, 0.004};
  EXPECT_NEAR(var.sigma_l_total_nm(), 5.0, 1e-12);
  EXPECT_NEAR(var.sigma_vth_total_v(), 0.005, 1e-12);
}

TEST(Variation, NoneIsZero) {
  const VariationModel var = VariationModel::none();
  EXPECT_EQ(var.sigma_l_total_nm(), 0.0);
  EXPECT_EQ(var.sigma_vth_total_v(), 0.0);
}

TEST(Variation, ScaledScalesEverySigma) {
  const VariationModel var = VariationModel::typical_100nm().scaled(2.0);
  const VariationModel base = VariationModel::typical_100nm();
  EXPECT_NEAR(var.sigma_l_inter_nm, 2.0 * base.sigma_l_inter_nm, 1e-12);
  EXPECT_NEAR(var.sigma_vth_intra_v, 2.0 * base.sigma_vth_intra_v, 1e-12);
  EXPECT_THROW(base.scaled(-1.0), Error);
}

TEST(Variation, ValidateRejectsNegative) {
  VariationModel var = VariationModel::typical_100nm();
  var.sigma_l_inter_nm = -1.0;
  EXPECT_THROW(var.validate(), Error);
}

TEST(Variation, SampleMomentsMatchModel) {
  const VariationModel var = VariationModel::typical_100nm();
  Rng rng(21);
  RunningStats dl_global;
  RunningStats dl_total;
  RunningStats dv_total;
  for (int i = 0; i < 50000; ++i) {
    const GlobalSample g = sample_global(var, rng);
    dl_global.add(g.dl_nm);
    const ParamSample p = sample_gate(var, g, rng);
    dl_total.add(p.dl_nm);
    dv_total.add(p.dvth_v);
  }
  EXPECT_NEAR(dl_global.mean(), 0.0, 0.05);
  EXPECT_NEAR(dl_global.stddev(), var.sigma_l_inter_nm, 0.05);
  EXPECT_NEAR(dl_total.stddev(), var.sigma_l_total_nm(), 0.05);
  EXPECT_NEAR(dv_total.stddev(), var.sigma_vth_total_v(), 0.001);
}

TEST(Variation, GatesOnSameDieShareGlobalComponent) {
  const VariationModel var = VariationModel::typical_100nm();
  Rng rng(22);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30000; ++i) {
    const GlobalSample g = sample_global(var, rng);
    a.push_back(sample_gate(var, g, rng).dl_nm);
    b.push_back(sample_gate(var, g, rng).dl_nm);
  }
  // Correlation = sigma_inter^2 / sigma_total^2 = 0.5 for the 50/50 split.
  EXPECT_NEAR(correlation(a, b), 0.5, 0.03);
}

}  // namespace
}  // namespace statleak
