/// Scrambled-Sobol sequence tests: golden direction-number/scramble
/// vectors (pinning the exact bit patterns the MC determinism contract
/// relies on), the stratification properties that make QMC work, and the
/// random-access determinism contract itself.

#include "util/sobol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace statleak {
namespace {

// --- golden vectors ---------------------------------------------------------
// These pin the implementation bit-for-bit: direction-number tables,
// digit-XOR accumulation, and the hash-based Owen scramble. Any change
// here invalidates every Sobol-mode Monte-Carlo checkpoint and golden
// result, so it must be deliberate.

TEST(Sobol, RawGoldenVectorsFirstDims) {
  const std::uint32_t kDim0[8] = {0x00000000u, 0x80000000u, 0x40000000u,
                                  0xc0000000u, 0x20000000u, 0xa0000000u,
                                  0x60000000u, 0xe0000000u};
  const std::uint32_t kDim1[8] = {0x00000000u, 0x80000000u, 0xc0000000u,
                                  0x40000000u, 0xa0000000u, 0x20000000u,
                                  0x60000000u, 0xe0000000u};
  const std::uint32_t kDim2[8] = {0x00000000u, 0x80000000u, 0xc0000000u,
                                  0x40000000u, 0x60000000u, 0xe0000000u,
                                  0xa0000000u, 0x20000000u};
  const std::uint32_t kDim3[8] = {0x00000000u, 0x80000000u, 0xc0000000u,
                                  0x40000000u, 0x20000000u, 0xa0000000u,
                                  0xe0000000u, 0x60000000u};
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sobol_raw32(i, 0), kDim0[i]) << "dim 0 index " << i;
    EXPECT_EQ(sobol_raw32(i, 1), kDim1[i]) << "dim 1 index " << i;
    EXPECT_EQ(sobol_raw32(i, 2), kDim2[i]) << "dim 2 index " << i;
    EXPECT_EQ(sobol_raw32(i, 3), kDim3[i]) << "dim 3 index " << i;
  }
}

TEST(Sobol, Dim0IsBitReversedIndex) {
  // The first dimension is the van der Corput sequence: point i is the
  // 32-bit bit reversal of i.
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t rev = 0;
    for (int b = 0; b < 32; ++b) {
      if ((i >> b) & 1u) rev |= 1u << (31 - b);
    }
    EXPECT_EQ(sobol_raw32(i, 0), rev);
  }
}

TEST(Sobol, OwenScrambleGoldenVectors) {
  const std::uint32_t kKey = 0x9e3779b9u;
  const std::uint32_t kWant[4] = {0xbac6d875u, 0x4b228be7u, 0x350f5cceu,
                                  0xf6cc311cu};
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(owen_scramble32(sobol_raw32(i, 1), kKey), kWant[i]);
  }
}

TEST(Sobol, SequenceUniformGoldenVectors) {
  const SobolSequence q(42);
  const double kWant[4][3] = {
      {0.064228044246581129, 0.11699967315867166, 0.73651489838826156},
      {0.69161415993800857, 0.7430305135203179, 0.29918517342268558},
      {0.25679657360213737, 0.94902353085857416, 0.20156509787113874},
      {0.98789241906294945, 0.30523382343819283, 0.94104441347109302},
  };
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (unsigned d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(q.uniform(i, d), kWant[i][d])
          << "index " << i << " dim " << d;
    }
  }
}

// --- stratification ---------------------------------------------------------

TEST(Sobol, ScrambledPrefixStratifiesEveryDim) {
  // For every dimension the first 2^k points land in the 2^k equal bins
  // exactly once — the base-2 (0,m,1)-net property, which Owen-style
  // scrambling preserves. This is the property that makes QMC converge
  // faster than MC; the dither bits below bit 32 cannot break it for
  // k <= 8.
  const SobolSequence q(7);
  for (unsigned dim = 0; dim < kSobolMaxDims; ++dim) {
    std::set<int> bins;
    for (std::uint64_t i = 0; i < 256; ++i) {
      bins.insert(static_cast<int>(q.uniform(i, dim) * 256.0));
    }
    EXPECT_EQ(bins.size(), 256u) << "dim " << dim;
  }
}

TEST(Sobol, ScrambledPairStratifiesElementaryIntervals) {
  // The (dim 0, dim 1) projection — the two global variation dimensions
  // of the MC engine — forms a (0,2)-net: 256 points hit all 16x16 cells
  // exactly once, even after per-dimension scrambling.
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const SobolSequence q(seed);
    std::set<int> cells;
    for (std::uint64_t i = 0; i < 256; ++i) {
      const int cx = static_cast<int>(q.uniform(i, 0) * 16.0);
      const int cy = static_cast<int>(q.uniform(i, 1) * 16.0);
      cells.insert(cx * 16 + cy);
    }
    EXPECT_EQ(cells.size(), 256u) << "seed " << seed;
  }
}

// --- determinism contract ---------------------------------------------------

TEST(Sobol, RandomAccessIsPureFunctionOfSeedAndIndex) {
  const SobolSequence a(123);
  const SobolSequence b(123);
  // Query b out of order and interleaved — random access means no hidden
  // state, so order cannot matter.
  std::vector<double> fwd;
  for (std::uint64_t i = 0; i < 64; ++i) fwd.push_back(a.uniform(i, 1));
  for (std::uint64_t i = 64; i-- > 0;) {
    EXPECT_EQ(b.uniform(i, 1), fwd[i]);
  }
}

TEST(Sobol, SeedsDecorrelateButKeepTheNet) {
  const SobolSequence a(1);
  const SobolSequence b(2);
  int differing = 0;
  for (std::uint64_t i = 0; i < 128; ++i) {
    if (a.uniform(i, 0) != b.uniform(i, 0)) ++differing;
  }
  EXPECT_GT(differing, 120);  // scramble keys differ => points differ
}

TEST(Sobol, UniformStaysInOpenUnitInterval) {
  // Strict (0,1): index 0 of an unscrambled stream is the worst case for
  // hitting 0.0, and Phi^-1 must stay finite for the normal mapping.
  const SobolSequence q(0);
  for (unsigned dim = 0; dim < kSobolMaxDims; ++dim) {
    for (std::uint64_t i = 0; i < 512; ++i) {
      const double u = q.uniform(i, dim);
      EXPECT_GT(u, 0.0);
      EXPECT_LT(u, 1.0);
      EXPECT_TRUE(std::isfinite(q.normal(i, dim)));
    }
  }
}

TEST(Sobol, NormalMomentsMatchStandardGaussian) {
  const SobolSequence q(9);
  const std::size_t n = 4096;
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double z = q.normal(i, 1);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum2 / static_cast<double>(n) - mean * mean;
  // QMC at n=4096 estimates these far tighter than plain MC would.
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Sobol, RejectsOutOfRangeDimension) {
  const SobolSequence q(1);
  EXPECT_NO_THROW(q.uniform(0, kSobolMaxDims - 1));
  EXPECT_THROW(q.uniform(0, kSobolMaxDims), Error);
  EXPECT_THROW(sobol_raw32(0, kSobolMaxDims), Error);
}

}  // namespace
}  // namespace statleak
