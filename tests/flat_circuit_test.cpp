// Invariants of the frozen SoA circuit snapshot: CSR adjacency must
// round-trip the AoS Circuit exactly (including fanin pin order), the
// level-bucketed topo order must be a valid topological permutation whose
// buckets partition the gates by level, and the per-gate attribute arrays
// must mirror the implementation point at build time (not track later
// mutations).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "netlist/flat_circuit.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class FlatCircuitTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FlatCircuitTest, CsrAdjacencyRoundTrips) {
  const Circuit c = iscas85_proxy(GetParam());
  const FlatCircuit flat = FlatCircuit::build(c);
  ASSERT_EQ(flat.num_gates, c.num_gates());
  for (GateId g = 0; g < flat.num_gates; ++g) {
    const auto fanins = flat.fanins_of(g);
    const auto& expect = c.gate(g).fanins;
    ASSERT_EQ(fanins.size(), expect.size()) << "gate " << g;
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      EXPECT_EQ(fanins[i], expect[i]) << "gate " << g << " pin " << i;
    }
    const auto fanouts = flat.fanouts_of(g);
    const auto expect_out = c.fanouts(g);
    ASSERT_EQ(fanouts.size(), expect_out.size()) << "gate " << g;
    for (std::size_t i = 0; i < fanouts.size(); ++i) {
      EXPECT_EQ(fanouts[i], expect_out[i]) << "gate " << g;
    }
  }
}

TEST_P(FlatCircuitTest, TopoIsValidPermutationAndLevelsBucket) {
  const Circuit c = iscas85_proxy(GetParam());
  const FlatCircuit flat = FlatCircuit::build(c);

  // Permutation of all gate ids.
  std::vector<char> seen(flat.num_gates, 0);
  for (const GateId g : flat.topo) {
    ASSERT_LT(g, flat.num_gates);
    EXPECT_FALSE(seen[g]) << "gate " << g << " appears twice";
    seen[g] = 1;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](char s) { return s == 1; }));

  // Topological: every fanin earlier than its consumer.
  std::vector<std::uint32_t> pos(flat.num_gates, 0);
  for (std::uint32_t i = 0; i < flat.num_gates; ++i) pos[flat.topo[i]] = i;
  for (GateId g = 0; g < flat.num_gates; ++g) {
    for (const GateId f : flat.fanins_of(g)) {
      EXPECT_LT(pos[f], pos[g]) << "fanin " << f << " of gate " << g;
    }
  }

  // Level buckets cover [0, num_gates) and hold exactly the gates of that
  // level; fanins sit in strictly lower buckets.
  ASSERT_EQ(flat.level_offset.size(),
            static_cast<std::size_t>(flat.depth) + 2);
  EXPECT_EQ(flat.level_offset.front(), 0u);
  EXPECT_EQ(flat.level_offset.back(), flat.num_gates);
  for (int l = 0; l <= flat.depth; ++l) {
    for (const GateId g : flat.level_bucket(l)) {
      EXPECT_EQ(c.level(g), l) << "gate " << g;
      for (const GateId f : flat.fanins_of(g)) {
        EXPECT_LT(c.level(f), l) << "fanin " << f << " of gate " << g;
      }
    }
  }
}

TEST_P(FlatCircuitTest, AttributesAndOutputsMatch) {
  const Circuit c = iscas85_proxy(GetParam());
  const FlatCircuit flat = FlatCircuit::build(c);
  for (GateId g = 0; g < flat.num_gates; ++g) {
    const Gate& gate = c.gate(g);
    EXPECT_EQ(flat.is_input[g] != 0, gate.kind == CellKind::kInput);
    EXPECT_EQ(flat.kind[g], gate.kind);
    EXPECT_EQ(flat.vth[g], gate.vth);
    EXPECT_EQ(flat.size[g], gate.size);
  }
  const auto outs = c.outputs();
  ASSERT_EQ(flat.outputs.size(), outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    EXPECT_EQ(flat.outputs[i], outs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Proxies, FlatCircuitTest,
                         ::testing::Values("c432p", "c499p", "c880p",
                                           "c1908p"),
                         [](const auto& info) { return info.param; });

TEST(FlatCircuitBasics, RequiresFinalizedCircuit) {
  Circuit c("unfinished");
  c.add_input("a");
  EXPECT_THROW(FlatCircuit::build(c), Error);
}

TEST(FlatCircuitBasics, SnapshotDoesNotTrackLaterMutations) {
  Circuit c = make_ripple_carry_adder(4);
  const FlatCircuit flat = FlatCircuit::build(c);
  // Find a logic cell and mutate it after the snapshot.
  GateId cell = kInvalidGate;
  for (GateId g = 0; g < c.num_gates(); ++g) {
    if (c.gate(g).kind != CellKind::kInput) {
      cell = g;
      break;
    }
  }
  ASSERT_NE(cell, kInvalidGate);
  const double old_size = c.gate(cell).size;
  c.set_size(cell, old_size * 2.0);
  c.set_vth(cell, c.gate(cell).vth == Vth::kLow ? Vth::kHigh : Vth::kLow);
  EXPECT_EQ(flat.size[cell], old_size);
  EXPECT_NE(flat.vth[cell], c.gate(cell).vth);
}

}  // namespace
}  // namespace statleak
