// Integration tests: the full experiment flow (report/flow) wiring both
// optimizers, metrics, and the Monte-Carlo cross-check together — exactly
// what every bench binary runs.

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "report/flow.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class FlowTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_F(FlowTest, MinAchievableDelayBelowMinSizeDelay) {
  const Circuit c = make_carry_lookahead_adder(16);
  const double d_min = min_achievable_delay_ps(c, lib_);
  Circuit minsize = c;
  // All-minimum-size delay is an upper bound on the sized optimum.
  const double d_minsize = StaEngine(minsize, lib_).critical_delay_ps();
  EXPECT_LT(d_min, d_minsize);
  EXPECT_GT(d_min, 0.0);
}

TEST_F(FlowTest, MinAchievableDelayDoesNotMutate) {
  const Circuit c = make_carry_lookahead_adder(8);
  Circuit copy = c;
  (void)min_achievable_delay_ps(copy, lib_);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    EXPECT_DOUBLE_EQ(copy.gate(id).size, c.gate(id).size);
    EXPECT_EQ(copy.gate(id).vth, c.gate(id).vth);
  }
}

TEST_F(FlowTest, OutcomeFieldsPopulated) {
  Circuit c = iscas85_proxy("c432p");
  FlowConfig cfg;
  cfg.t_max_factor = 1.2;
  cfg.det_corner_k = 3.0;
  cfg.mc_samples = 800;
  const FlowOutcome out = run_flow(c, lib_, var_, cfg);

  EXPECT_EQ(out.circuit_name, "c432p");
  EXPECT_GT(out.d_min_ps, 0.0);
  EXPECT_NEAR(out.t_max_ps, 1.2 * out.d_min_ps, 1e-9);
  EXPECT_EQ(out.det_corner_k, 3.0);
  EXPECT_GT(out.det_runtime_s, 0.0);
  EXPECT_GT(out.stat_runtime_s, 0.0);
  EXPECT_TRUE(out.has_mc);
  EXPECT_GT(out.det_mc.leakage_mean_na, 0.0);
  EXPECT_GT(out.stat_mc.leakage_p99_na, 0.0);
  EXPECT_GE(out.det_mc.timing_yield, 0.0);
  EXPECT_LE(out.det_mc.timing_yield, 1.0);
}

TEST_F(FlowTest, StatBeatsFixedWorstCaseCorner) {
  Circuit c = iscas85_proxy("c499p");
  FlowConfig cfg;
  cfg.t_max_factor = 1.15;
  cfg.det_corner_k = 3.0;
  const FlowOutcome out = run_flow(c, lib_, var_, cfg);
  EXPECT_GE(out.stat_metrics.timing_yield, cfg.yield_target - 1e-9);
  EXPECT_GT(out.p99_saving(), 0.0);
  EXPECT_GT(out.mean_saving(), 0.0);
}

TEST_F(FlowTest, AutoCornerFindsYieldMeetingBaseline) {
  Circuit c = iscas85_proxy("c432p");
  FlowConfig cfg;
  cfg.t_max_factor = 1.2;
  cfg.det_auto_corner = true;
  const FlowOutcome out = run_flow(c, lib_, var_, cfg);
  EXPECT_GE(out.det_metrics.timing_yield, cfg.yield_target - 0.02);
  // The chosen corner should be interior, not the 3-sigma fallback.
  EXPECT_LT(out.det_corner_k, 3.0);
}

TEST_F(FlowTest, CircuitHoldsStatisticalSolutionOnReturn) {
  Circuit c = make_carry_lookahead_adder(8);
  FlowConfig cfg;
  const FlowOutcome out = run_flow(c, lib_, var_, cfg);
  const CircuitMetrics m = measure_metrics(c, lib_, var_, out.t_max_ps);
  EXPECT_NEAR(m.leakage_p99_na, out.stat_metrics.leakage_p99_na,
              1e-6 * out.stat_metrics.leakage_p99_na);
}

TEST_F(FlowTest, RejectsBadFactor) {
  Circuit c = make_ripple_carry_adder(4);
  FlowConfig cfg;
  cfg.t_max_factor = 0.9;
  EXPECT_THROW(run_flow(c, lib_, var_, cfg), Error);
}

TEST_F(FlowTest, SavingsHelpers) {
  FlowOutcome out;
  out.det_metrics.leakage_p99_na = 200.0;
  out.stat_metrics.leakage_p99_na = 150.0;
  out.det_metrics.leakage_mean_na = 100.0;
  out.stat_metrics.leakage_mean_na = 90.0;
  EXPECT_NEAR(out.p99_saving(), 0.25, 1e-12);
  EXPECT_NEAR(out.mean_saving(), 0.10, 1e-12);
  FlowOutcome zero;
  EXPECT_EQ(zero.p99_saving(), 0.0);
}

}  // namespace
}  // namespace statleak
