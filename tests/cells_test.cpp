// Unit tests for statleak_cells: kind traits, boolean evaluation, stage
// specs, and the synthesized library (delay / cap / leakage / area).

#include <gtest/gtest.h>

#include <cmath>

#include "cells/cell_kind.hpp"
#include "cells/library.hpp"
#include "cells/topology.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

TEST(CellKind, InfoLookups) {
  EXPECT_EQ(to_string(CellKind::kNand2), "NAND2");
  EXPECT_EQ(cell_info(CellKind::kNand2).fanin, 2);
  EXPECT_EQ(cell_info(CellKind::kInv).fanin, 1);
  EXPECT_EQ(cell_info(CellKind::kMux2).fanin, 3);
  EXPECT_EQ(cell_info(CellKind::kInput).fanin, 0);
}

TEST(CellKind, AllKindsExcludesInput) {
  const auto kinds = all_cell_kinds();
  EXPECT_EQ(kinds.size(), kNumCellKinds - 1);
  for (CellKind k : kinds) EXPECT_NE(k, CellKind::kInput);
}

TEST(CellKind, LogicalEffortOrdering) {
  // NOR has worse logical effort than NAND of the same fanin (series pMOS).
  EXPECT_GT(cell_info(CellKind::kNor2).logical_effort,
            cell_info(CellKind::kNand2).logical_effort);
  EXPECT_GT(cell_info(CellKind::kNand3).logical_effort,
            cell_info(CellKind::kNand2).logical_effort);
  EXPECT_EQ(cell_info(CellKind::kInv).logical_effort, 1.0);
}

TEST(CellEvaluate, TruthTables) {
  // NAND2
  EXPECT_TRUE(evaluate(CellKind::kNand2, 0b00));
  EXPECT_TRUE(evaluate(CellKind::kNand2, 0b01));
  EXPECT_TRUE(evaluate(CellKind::kNand2, 0b10));
  EXPECT_FALSE(evaluate(CellKind::kNand2, 0b11));
  // NOR2
  EXPECT_TRUE(evaluate(CellKind::kNor2, 0b00));
  EXPECT_FALSE(evaluate(CellKind::kNor2, 0b01));
  // XOR2 / XNOR2
  EXPECT_FALSE(evaluate(CellKind::kXor2, 0b00));
  EXPECT_TRUE(evaluate(CellKind::kXor2, 0b01));
  EXPECT_TRUE(evaluate(CellKind::kXnor2, 0b11));
  // AOI21: !((a&b)|c) — pins (a,b,c)
  EXPECT_TRUE(evaluate(CellKind::kAoi21, 0b000));
  EXPECT_FALSE(evaluate(CellKind::kAoi21, 0b011));  // a=b=1
  EXPECT_FALSE(evaluate(CellKind::kAoi21, 0b100));  // c=1
  EXPECT_TRUE(evaluate(CellKind::kAoi21, 0b001));   // a=1 only
  // OAI21: !((a|b)&c)
  EXPECT_TRUE(evaluate(CellKind::kOai21, 0b011));   // c=0
  EXPECT_FALSE(evaluate(CellKind::kOai21, 0b101));  // a=1, c=1
  EXPECT_TRUE(evaluate(CellKind::kOai21, 0b100));   // only c=1
  // MUX2: pins (a,b,sel)
  EXPECT_FALSE(evaluate(CellKind::kMux2, 0b010));  // sel=0 -> a=0
  EXPECT_TRUE(evaluate(CellKind::kMux2, 0b110));   // sel=1 -> b=1
  EXPECT_TRUE(evaluate(CellKind::kMux2, 0b001));   // sel=0 -> a=1
}

TEST(CellEvaluate, InputPseudoCellThrows) {
  EXPECT_THROW(evaluate(CellKind::kInput, 0), Error);
}

TEST(CellEvaluate, NandIsComplementOfAnd) {
  for (std::uint32_t bits = 0; bits < 4; ++bits) {
    EXPECT_NE(evaluate(CellKind::kNand2, bits),
              evaluate(CellKind::kAnd2, bits));
    EXPECT_NE(evaluate(CellKind::kNor2, bits), evaluate(CellKind::kOr2, bits));
    EXPECT_NE(evaluate(CellKind::kXor2, bits),
              evaluate(CellKind::kXnor2, bits));
  }
}

TEST(CellEvaluate, IsInvertingMatchesAllZeroInput) {
  // Every inverting cell outputs 1 on the all-zero input; every
  // non-inverting cell outputs 0 (true for this AOI/OAI/NAND/NOR family).
  for (CellKind kind : all_cell_kinds()) {
    EXPECT_EQ(evaluate(kind, 0), is_inverting(kind))
        << to_string(kind);
  }
}

TEST(Topology, StackFactorMonotone) {
  EXPECT_EQ(stack_factor(1), 1.0);
  EXPECT_GT(stack_factor(1), stack_factor(2));
  EXPECT_GT(stack_factor(2), stack_factor(3));
  EXPECT_GE(stack_factor(3), stack_factor(4));
  EXPECT_EQ(stack_factor(9), stack_factor(4));  // saturates
  EXPECT_THROW(stack_factor(0), Error);
}

TEST(Topology, EveryKindHasStages) {
  for (CellKind kind : all_cell_kinds()) {
    EXPECT_FALSE(stage_spec(kind).empty()) << to_string(kind);
  }
  EXPECT_TRUE(stage_spec(CellKind::kInput).empty());
}

// ------------------------------------------------------------- library ----

class LibraryTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
};

TEST_F(LibraryTest, SizeStepsAscendingFromOne) {
  const auto steps = lib_.size_steps();
  ASSERT_FALSE(steps.empty());
  EXPECT_DOUBLE_EQ(steps.front(), 1.0);
  EXPECT_DOUBLE_EQ(steps.back(), 16.0);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i], steps[i - 1]);
  }
}

TEST_F(LibraryTest, NearestStep) {
  EXPECT_EQ(lib_.nearest_step(0.1), 0u);
  EXPECT_EQ(lib_.nearest_step(1.0), 0u);
  EXPECT_EQ(lib_.nearest_step(100.0), lib_.size_steps().size() - 1);
  const auto steps = lib_.size_steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(lib_.nearest_step(steps[i]), i);
  }
}

TEST_F(LibraryTest, PinCapScalesWithSizeAndEffort) {
  const double c1 = lib_.pin_cap_ff(CellKind::kInv, 1.0);
  EXPECT_GT(c1, 0.0);
  EXPECT_NEAR(lib_.pin_cap_ff(CellKind::kInv, 4.0), 4.0 * c1, 1e-12);
  EXPECT_NEAR(lib_.pin_cap_ff(CellKind::kNand2, 1.0), c1 * 4.0 / 3.0, 1e-12);
}

TEST_F(LibraryTest, WireCapGrowsWithFanout) {
  EXPECT_EQ(lib_.wire_cap_ff(0), 0.0);
  EXPECT_GT(lib_.wire_cap_ff(1), 0.0);
  EXPECT_GT(lib_.wire_cap_ff(4), lib_.wire_cap_ff(1));
}

TEST_F(LibraryTest, DelayDecreasesWithSize) {
  const double load = 10.0;
  const double d1 = lib_.delay_ps(CellKind::kInv, Vth::kLow, 1.0, load);
  const double d4 = lib_.delay_ps(CellKind::kInv, Vth::kLow, 4.0, load);
  EXPECT_LT(d4, d1);
}

TEST_F(LibraryTest, DelayLinearInLoad) {
  const double d0 = lib_.delay_ps(CellKind::kNand2, Vth::kLow, 2.0, 0.0);
  const double d5 = lib_.delay_ps(CellKind::kNand2, Vth::kLow, 2.0, 5.0);
  const double d10 = lib_.delay_ps(CellKind::kNand2, Vth::kLow, 2.0, 10.0);
  EXPECT_NEAR(d10 - d5, d5 - d0, 1e-9);
}

TEST_F(LibraryTest, HvtSlowerThanLvt) {
  for (CellKind kind : all_cell_kinds()) {
    const double l = lib_.delay_ps(kind, Vth::kLow, 1.0, 5.0);
    const double h = lib_.delay_ps(kind, Vth::kHigh, 1.0, 5.0);
    EXPECT_GT(h, l) << to_string(kind);
    // HVT penalty is bounded (roughly the alpha-power ratio ~18 %).
    EXPECT_LT(h / l, 1.4) << to_string(kind);
  }
}

TEST_F(LibraryTest, Fo4DelayInPlausibleRange) {
  // FO4: inverter driving 4 identical inverters.
  const double load =
      4.0 * lib_.pin_cap_ff(CellKind::kInv, 1.0) + lib_.wire_cap_ff(4);
  const double fo4 = lib_.delay_ps(CellKind::kInv, Vth::kLow, 1.0, load);
  // 100 nm-class FO4 is a few tens of ps.
  EXPECT_GT(fo4, 5.0);
  EXPECT_LT(fo4, 100.0);
}

TEST_F(LibraryTest, ExactDelayMatchesSensitivitiesToFirstOrder) {
  const auto& s = lib_.sensitivities(Vth::kLow);
  const double load = 8.0;
  const double d0 = lib_.delay_ps(CellKind::kNand2, Vth::kLow, 2.0, load);
  const double dl = 0.5;   // small dL excursion [nm]
  const double dv = 0.005; // small dVth excursion [V]
  const double exact =
      lib_.delay_ps(CellKind::kNand2, Vth::kLow, 2.0, load, dl, dv);
  const double first_order =
      d0 * (1.0 + s.delay_sl_per_nm * dl + s.delay_sv_per_v * dv);
  EXPECT_NEAR(exact, first_order, 0.02 * d0);
}

TEST_F(LibraryTest, ExactDelaySlowerAtSlowCorner) {
  const double d0 = lib_.delay_ps(CellKind::kInv, Vth::kLow, 1.0, 5.0);
  const double slow = lib_.delay_ps(CellKind::kInv, Vth::kLow, 1.0, 5.0,
                                    9.0, 0.039);  // ~3 sigma
  EXPECT_GT(slow, d0 * 1.1);
}

TEST_F(LibraryTest, LeakageLinearInSize) {
  const double l1 = lib_.leakage_na(CellKind::kNor3, Vth::kLow, 1.0);
  const double l2 = lib_.leakage_na(CellKind::kNor3, Vth::kLow, 2.0);
  EXPECT_NEAR(l2, 2.0 * l1, 1e-9);
}

TEST_F(LibraryTest, LeakagePositiveForAllKinds) {
  for (CellKind kind : all_cell_kinds()) {
    for (Vth vth : {Vth::kLow, Vth::kHigh}) {
      EXPECT_GT(lib_.leakage_na(kind, vth, 1.0), 0.0)
          << to_string(kind) << " " << to_string(vth);
    }
  }
}

TEST_F(LibraryTest, HvtLeaksFarLess) {
  for (CellKind kind : all_cell_kinds()) {
    const double l = lib_.leakage_na(kind, Vth::kLow, 1.0);
    const double h = lib_.leakage_na(kind, Vth::kHigh, 1.0);
    EXPECT_GT(l / h, 8.0) << to_string(kind);
  }
}

TEST_F(LibraryTest, StackedKindsLeakLessPerStage) {
  // A NAND4's deep stack leaks less than 4 parallel inverter-equivalents.
  const double nand4 = lib_.leakage_na(CellKind::kNand4, Vth::kLow, 1.0);
  const double inv = lib_.leakage_na(CellKind::kInv, Vth::kLow, 1.0);
  EXPECT_LT(nand4, 4.0 * inv);
}

TEST_F(LibraryTest, VariationLeakageMatchesExponentialForm) {
  const auto& s = lib_.sensitivities(Vth::kLow);
  const double nom = lib_.leakage_na(CellKind::kInv, Vth::kLow, 1.0);
  const double dl = -2.0;
  const double dv = -0.01;
  const double expected =
      nom * std::exp(-s.leak_cl_per_nm * dl - s.leak_cv_per_v * dv);
  EXPECT_NEAR(lib_.leakage_na(CellKind::kInv, Vth::kLow, 1.0, dl, dv),
              expected, expected * 1e-9);
}

TEST_F(LibraryTest, LeakagePowerIsCurrentTimesVdd) {
  const double i = lib_.leakage_na(CellKind::kInv, Vth::kLow, 2.0);
  EXPECT_NEAR(lib_.leakage_power_nw(CellKind::kInv, Vth::kLow, 2.0),
              i * node_.vdd, 1e-9);
}

TEST_F(LibraryTest, AreaMonotoneInSizeAndComplexity) {
  EXPECT_GT(lib_.area_um(CellKind::kInv, 2.0),
            lib_.area_um(CellKind::kInv, 1.0));
  EXPECT_GT(lib_.area_um(CellKind::kNand4, 1.0),
            lib_.area_um(CellKind::kNand2, 1.0));
  EXPECT_GT(lib_.area_um(CellKind::kNor4, 1.0),
            lib_.area_um(CellKind::kNand4, 1.0));
}

TEST_F(LibraryTest, TauHvtGreater) {
  EXPECT_GT(lib_.tau_ps(Vth::kHigh), lib_.tau_ps(Vth::kLow));
}

TEST_F(LibraryTest, CustomSizeGridValidation) {
  EXPECT_THROW(CellLibrary(node_, {}), Error);
  EXPECT_THROW(CellLibrary(node_, {2.0, 1.0}), Error);
  EXPECT_THROW(CellLibrary(node_, {-1.0, 1.0}), Error);
  const CellLibrary custom(node_, {1.0, 2.0, 4.0});
  EXPECT_EQ(custom.size_steps().size(), 3u);
}

TEST_F(LibraryTest, GuardsBadArguments) {
  EXPECT_THROW(lib_.delay_ps(CellKind::kInv, Vth::kLow, 0.0, 1.0), Error);
  EXPECT_THROW(lib_.delay_ps(CellKind::kInv, Vth::kLow, 1.0, -1.0), Error);
  EXPECT_THROW(lib_.leakage_na(CellKind::kInv, Vth::kLow, -2.0), Error);
  EXPECT_THROW(lib_.pin_cap_ff(CellKind::kInv, 0.0), Error);
  EXPECT_THROW(lib_.wire_cap_ff(-1), Error);
}

TEST(Library70nm, LeakierAndFaster) {
  const CellLibrary lib100(generic_100nm());
  const CellLibrary lib70(generic_70nm());
  EXPECT_GT(lib70.leakage_na(CellKind::kInv, Vth::kLow, 1.0),
            lib100.leakage_na(CellKind::kInv, Vth::kLow, 1.0));
  EXPECT_LT(lib70.tau_ps(Vth::kLow), lib100.tau_ps(Vth::kLow));
}

}  // namespace
}  // namespace statleak
