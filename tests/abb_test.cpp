// Tests for the adaptive-body-bias extension and the .impl sidecar I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "abb/abb.hpp"
#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "netlist/impl_io.hpp"
#include "report/flow.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace statleak {
namespace {

// ------------------------------------------------------------- ladder ----

TEST(BodyBias, LadderContainsZeroAndIsAscending) {
  BodyBiasConfig abb;
  const auto ladder = abb.ladder();
  ASSERT_FALSE(ladder.empty());
  bool has_zero = false;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] == 0.0) has_zero = true;
    if (i > 0) {
      EXPECT_GT(ladder[i], ladder[i - 1]);
    }
  }
  EXPECT_TRUE(has_zero);
  EXPECT_NEAR(ladder.front(), abb.vbb_min_v, 1e-12);
  EXPECT_NEAR(ladder.back(), abb.vbb_max_v, 1e-9);
}

TEST(BodyBias, ValidateRejectsBadConfig) {
  BodyBiasConfig abb;
  abb.k_body_v_per_v = 0.0;
  EXPECT_THROW(abb.validate(), Error);
  abb = BodyBiasConfig{};
  abb.vbb_min_v = 0.1;  // ladder must include zero
  EXPECT_THROW(abb.validate(), Error);
  abb = BodyBiasConfig{};
  abb.vbb_step_v = -0.1;
  EXPECT_THROW(abb.validate(), Error);
}

// ----------------------------------------------------------- experiment ----

class AbbTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_F(AbbTest, CompensationTightensBothDistributions) {
  const Circuit c = iscas85_proxy("c432p");
  // The implementation under test stays min-size all-LVT, so the target is
  // set against ITS nominal delay: typical dies just meet it, slow dies
  // fail, fast dies have slack — the regime ABB targets.
  const double t_max = 1.02 * StaEngine(c, lib_).critical_delay_ps();
  BodyBiasConfig abb;
  McConfig mc;
  mc.num_samples = 1500;
  mc.seed = 3;
  const AbbResult res = run_abb_experiment(c, lib_, var_, abb, mc, t_max);

  ASSERT_EQ(res.baseline.delay_ps.size(), res.compensated.delay_ps.size());
  // Timing yield improves: slow dies take forward bias.
  EXPECT_GT(res.compensated.timing_yield(t_max),
            res.baseline.timing_yield(t_max) + 0.05);
  // Pointwise invariant: every die that met T without bias leaks no more
  // with ABB (zero bias is in the ladder; the policy minimizes leakage
  // among timing-feasible settings).
  for (std::size_t i = 0; i < res.baseline.delay_ps.size(); ++i) {
    if (res.baseline.delay_ps[i] <= t_max) {
      EXPECT_LE(res.compensated.leakage_na[i],
                res.baseline.leakage_na[i] * (1.0 + 1e-9));
    }
  }
  // The headline metric of the ABB literature: combined (frequency AND
  // power) yield. Cap = 3x the typical-die leakage.
  const double cap = 3.0 * res.baseline.leakage_summary().p50;
  EXPECT_GT(res.compensated.combined_yield(t_max, cap),
            res.baseline.combined_yield(t_max, cap) + 0.05);
}

TEST_F(AbbTest, UsesBothBiasDirections) {
  const Circuit c = iscas85_proxy("c432p");
  const double t_max = 1.02 * StaEngine(c, lib_).critical_delay_ps();
  BodyBiasConfig abb;
  McConfig mc;
  mc.num_samples = 1000;
  mc.seed = 5;
  const AbbResult res = run_abb_experiment(c, lib_, var_, abb, mc, t_max);
  EXPECT_GT(res.reverse_fraction(), 0.05);  // fast dies choked
  EXPECT_GT(res.forward_fraction(), 0.0);   // some slow dies rescued
  for (double v : res.bias_v) {
    EXPECT_GE(v, abb.vbb_min_v - 1e-12);
    EXPECT_LE(v, abb.vbb_max_v + 1e-9);
  }
}

TEST_F(AbbTest, ZeroLadderIsNoOpOnFeasibleDies) {
  const Circuit c = make_ripple_carry_adder(8);
  BodyBiasConfig abb;
  abb.vbb_min_v = 0.0;
  abb.vbb_max_v = 0.0;
  abb.vbb_step_v = 0.1;
  McConfig mc;
  mc.num_samples = 200;
  const double t_max = 1e9;  // everything feasible
  const AbbResult res = run_abb_experiment(c, lib_, var_, abb, mc, t_max);
  for (std::size_t i = 0; i < res.bias_v.size(); ++i) {
    EXPECT_EQ(res.bias_v[i], 0.0);
    EXPECT_NEAR(res.compensated.leakage_na[i], res.baseline.leakage_na[i],
                1e-9 * res.baseline.leakage_na[i]);
  }
}

TEST_F(AbbTest, PairedSamplesShareDraws) {
  // The baseline population must be identical to a plain MC run with the
  // same seed (the experiment is paired).
  const Circuit c = make_ripple_carry_adder(6);
  BodyBiasConfig abb;
  McConfig mc;
  mc.num_samples = 100;
  mc.seed = 11;
  const AbbResult res =
      run_abb_experiment(c, lib_, var_, abb, mc, 1e9);
  const McResult plain = run_monte_carlo(c, lib_, var_, mc);
  for (std::size_t i = 0; i < plain.delay_ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.baseline.delay_ps[i], plain.delay_ps[i]);
  }
}

// -------------------------------------------------------------- impl IO ----

TEST(ImplIo, RoundTrip) {
  Circuit c = make_ripple_carry_adder(4);
  const GateId g0 = c.outputs()[0];
  c.set_vth(g0, Vth::kHigh);
  c.set_size(g0, 4.0);

  std::ostringstream os;
  write_impl(os, c);

  Circuit fresh = make_ripple_carry_adder(4);
  std::istringstream is(os.str());
  const std::size_t updated = read_impl(is, fresh);
  EXPECT_EQ(updated, fresh.num_cells());
  for (GateId id = 0; id < c.num_gates(); ++id) {
    EXPECT_EQ(fresh.gate(id).vth, c.gate(id).vth);
    EXPECT_DOUBLE_EQ(fresh.gate(id).size, c.gate(id).size);
  }
}

TEST(ImplIo, PartialUpdateKeepsOthers) {
  Circuit c = make_ripple_carry_adder(4);
  const std::string name = c.gate(c.outputs()[0]).name;
  std::istringstream is(name + " HVT 2.3\n");
  EXPECT_EQ(read_impl(is, c), 1u);
  EXPECT_EQ(c.gate(c.outputs()[0]).vth, Vth::kHigh);
  EXPECT_DOUBLE_EQ(c.gate(c.outputs()[0]).size, 2.3);
}

TEST(ImplIo, CommentsAndBlanksIgnored) {
  Circuit c = make_ripple_carry_adder(4);
  std::istringstream is("# header\n\n   \n");
  EXPECT_EQ(read_impl(is, c), 0u);
}

TEST(ImplIo, Errors) {
  Circuit c = make_ripple_carry_adder(4);
  {
    std::istringstream is("no_such_gate HVT 1.0\n");
    EXPECT_THROW(read_impl(is, c), Error);
  }
  {
    std::istringstream is(c.gate(c.outputs()[0]).name + " MVT 1.0\n");
    EXPECT_THROW(read_impl(is, c), Error);
  }
  {
    std::istringstream is(c.gate(c.outputs()[0]).name + " HVT -1.0\n");
    EXPECT_THROW(read_impl(is, c), Error);
  }
  {
    std::istringstream is(c.gate(c.outputs()[0]).name + " HVT\n");
    EXPECT_THROW(read_impl(is, c), Error);
  }
  {
    // Primary inputs cannot carry an implementation.
    std::istringstream is(c.gate(c.inputs()[0]).name + " HVT 1.0\n");
    EXPECT_THROW(read_impl(is, c), Error);
  }
  EXPECT_THROW(read_impl_file("/nonexistent.impl", c), Error);
}

}  // namespace
}  // namespace statleak
