// Differential tests for the corner/temperature sweep engine (mc/sweep.hpp)
// and its facade command (api::run_sweep_command): every grid cell's
// population must be bit-identical to a standalone single-corner MC run
// configured through the same StudyInput corner fields — whatever the batch
// size or thread count — and the fault-tolerance contracts (whole-grid
// deadline, per-cell checkpoint resume) must compose without changing a
// sampled bit.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "api/driver.hpp"
#include "gen/arithmetic.hpp"
#include "mc/checkpoint.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/sweep.hpp"
#include "netlist/bench_io.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

std::string bench_text(const Circuit& c) {
  std::ostringstream out;
  write_bench(out, c);
  return out.str();
}

/// Removes "<prefix>.cell<i>" files on scope exit.
class CellFiles {
 public:
  CellFiles(std::string prefix, std::size_t cells)
      : prefix_(std::move(prefix)), cells_(cells) {
    cleanup();
  }
  ~CellFiles() { cleanup(); }
  const std::string& prefix() const { return prefix_; }
  std::string cell(std::size_t i) const {
    return prefix_ + ".cell" + std::to_string(i);
  }

 private:
  void cleanup() {
    for (std::size_t i = 0; i < cells_; ++i) {
      std::remove(cell(i).c_str());
    }
  }
  std::string prefix_;
  std::size_t cells_;
};

void expect_bitwise_equal(const McResult& a, const McResult& b,
                          const std::string& what) {
  ASSERT_EQ(a.delay_ps.size(), b.delay_ps.size()) << what;
  for (std::size_t i = 0; i < a.delay_ps.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.delay_ps[i]),
              std::bit_cast<std::uint64_t>(b.delay_ps[i]))
        << what << " delay slot " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.leakage_na[i]),
              std::bit_cast<std::uint64_t>(b.leakage_na[i]))
        << what << " leakage slot " << i;
  }
}

/// The standalone references run through StudyInput (a bench parse), so the
/// sweep side must see the same parsed circuit — the generator's in-memory
/// object carries sizing the .bench format does not.
Circuit round_tripped(int bits) {
  api::StudyInput in;
  in.bench_text = bench_text(make_ripple_carry_adder(bits));
  return api::load_study(in).circuit;
}

class SweepTest : public ::testing::Test {
 protected:
  Circuit circuit_ = round_tripped(12);
};

// ---------------------------------------------------------------- grid ----

TEST_F(SweepTest, GridEnumeratesCornerMajor) {
  SweepGrid grid;
  grid.nodes = {"generic-100nm", "generic-70nm"};
  grid.temperatures_k = {0.0, 398.15};
  grid.vdds_v = {0.0, 1.1};
  grid.sigma_scales = {1.0};
  EXPECT_EQ(grid.num_cells(), 8u);

  const std::vector<SweepCorner> corners = grid.corners();
  ASSERT_EQ(corners.size(), 8u);
  // Node slowest, Vdd fastest: the first four cells share the first node.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(corners[i].node, "generic-100nm");
  for (int i = 4; i < 8; ++i) EXPECT_EQ(corners[i].node, "generic-70nm");
  EXPECT_EQ(corners[0].vdd_v, 0.0);
  EXPECT_EQ(corners[1].vdd_v, 1.1);
  EXPECT_EQ(corners[1].temperature_k, 0.0);
  EXPECT_EQ(corners[2].temperature_k, 398.15);
}

TEST_F(SweepTest, GridValidateRejectsBadAxes) {
  SweepGrid grid;
  grid.nodes.clear();
  EXPECT_THROW(grid.validate(), Error);

  grid = SweepGrid{};
  grid.nodes = {"not-a-node"};
  EXPECT_THROW(grid.validate(), Error);

  grid = SweepGrid{};
  grid.sigma_scales = {0.0};
  EXPECT_THROW(grid.validate(), Error);

  grid = SweepGrid{};
  grid.temperatures_k = {std::nan("")};
  EXPECT_THROW(grid.validate(), Error);

  // The default grid (one calibrated cell per axis) is valid.
  EXPECT_NO_THROW(SweepGrid{}.validate());
}

TEST_F(SweepTest, CornerLabelNamesTheAxes) {
  SweepCorner corner;
  corner.node = "generic-100nm";
  EXPECT_EQ(corner.label(), "generic-100nm");
  corner.temperature_k = 398.15;
  corner.vdd_v = 1.1;
  corner.sigma_scale = 1.5;
  const std::string label = corner.label();
  EXPECT_NE(label.find("T=398.15K"), std::string::npos) << label;
  EXPECT_NE(label.find("Vdd=1.1V"), std::string::npos) << label;
  EXPECT_NE(label.find("sigma=x1.5"), std::string::npos) << label;
}

// -------------------------------------------- sweep-vs-standalone core ----

// The tentpole contract: every cell of a sweep, run at any batch size and
// thread count, is bit-identical to a standalone `mc` run configured at
// that corner through the StudyInput fields (the exact path the CLI uses).
TEST_F(SweepTest, EveryCellMatchesStandaloneMcBitwise) {
  SweepGrid grid;
  grid.nodes = {"generic-100nm", "generic-70nm-lp"};
  grid.temperatures_k = {0.0, 398.15};
  grid.vdds_v = {0.0, 1.1};
  grid.sigma_scales = {1.0, 1.5};
  const std::vector<SweepCorner> corners = grid.corners();

  McConfig base;
  base.num_samples = 64;
  base.seed = 9;

  // One standalone reference per corner, via the facade StudyInput path.
  std::vector<McResult> reference;
  for (const SweepCorner& corner : corners) {
    api::McCommandConfig cfg;
    cfg.input.bench_text = bench_text(circuit_);
    cfg.input.node_name = corner.node;
    cfg.input.temperature_k = corner.temperature_k;
    cfg.input.vdd_v = corner.vdd_v;
    cfg.input.sigma_scale = corner.sigma_scale;
    cfg.mc = base;
    reference.push_back(api::run_mc_command(cfg).result);
  }

  // The sweep must reproduce every reference at every engine shape.
  for (const int batch : {1, 0}) {
    for (const int threads : {1, 8}) {
      McConfig cfg = base;
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const SweepResult sweep = run_corner_sweep(circuit_, grid, cfg);
      EXPECT_TRUE(sweep.completed);
      ASSERT_EQ(sweep.cells.size(), corners.size());
      for (std::size_t i = 0; i < corners.size(); ++i) {
        expect_bitwise_equal(
            sweep.cells[i].result, reference[i],
            "batch=" + std::to_string(batch) +
                " threads=" + std::to_string(threads) + " cell " +
                std::to_string(i) + " (" + corners[i].label() + ")");
      }
    }
  }
}

TEST_F(SweepTest, CellTimingTargetMatchesStandaloneResolution) {
  // t_max_ps <= 0 resolves per corner exactly like a standalone run.
  SweepGrid grid;
  grid.temperatures_k = {0.0, 398.15};
  McConfig base;
  base.num_samples = 16;
  const SweepResult sweep = run_corner_sweep(circuit_, grid, base);
  ASSERT_EQ(sweep.cells.size(), 2u);

  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    api::McCommandConfig cfg;
    cfg.input.bench_text = bench_text(circuit_);
    cfg.input.temperature_k = grid.temperatures_k[i];
    cfg.mc = base;
    const api::McCommandResult solo = api::run_mc_command(cfg);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sweep.cells[i].t_max_ps),
              std::bit_cast<std::uint64_t>(solo.t_max_ps));
  }
  // The hot corner is slower, so its resolved target is strictly larger.
  EXPECT_GT(sweep.cells[1].t_max_ps, sweep.cells[0].t_max_ps);
}

// ------------------------------------------------------------- facade ----

TEST_F(SweepTest, RunSweepCommandMatchesEngineAndRecordsGauges) {
  api::SweepCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.grid.temperatures_k = {0.0, 398.15};
  cfg.mc.num_samples = 48;
  cfg.mc.seed = 11;

  obs::Registry obs;
  const api::SweepCommandResult r = api::run_sweep_command(cfg, &obs);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_TRUE(r.sweep.completed);
  ASSERT_EQ(r.sweep.cells.size(), 2u);

  const SweepResult direct = run_corner_sweep(circuit_, cfg.grid, cfg.mc);
  for (std::size_t i = 0; i < direct.cells.size(); ++i) {
    expect_bitwise_equal(r.sweep.cells[i].result, direct.cells[i].result,
                         "facade cell " + std::to_string(i));
  }

  EXPECT_EQ(obs.gauge_value("sweep.cells"), 2.0);
  EXPECT_EQ(obs.gauge_value("sweep.cells_requested"), 2.0);
  EXPECT_EQ(obs.gauge_value("sweep.grid_temperatures"), 2.0);
  EXPECT_GT(obs.gauge_value("sweep.cell0.leakage_mean_na"), 0.0);
  EXPECT_GT(obs.gauge_value("sweep.cell1.timing_yield"), 0.0);
  // The hot cell leaks more — the surface really is per-corner.
  EXPECT_GT(obs.gauge_value("sweep.cell1.leakage_mean_na"),
            obs.gauge_value("sweep.cell0.leakage_mean_na"));
  EXPECT_TRUE(obs.completed());
}

TEST_F(SweepTest, SweepSummaryTextNamesEveryCorner) {
  api::SweepCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.grid.vdds_v = {0.0, 1.1};
  cfg.mc.num_samples = 32;
  const api::SweepCommandResult r = api::run_sweep_command(cfg);
  const std::string text = api::sweep_summary_text(r);
  EXPECT_NE(text.find("2 of 2 corners"), std::string::npos) << text;
  EXPECT_NE(text.find("Vdd=1.1V"), std::string::npos) << text;
  EXPECT_NE(text.find("leakage mean"), std::string::npos) << text;
}

// -------------------------------------------------- deadline + resume ----

TEST_F(SweepTest, DeadlineMidSweepYieldsPartialSurfaceAndExit4) {
  api::SweepCommandConfig cfg;
  cfg.input.bench_text = bench_text(make_ripple_carry_adder(32));
  cfg.grid.temperatures_k = {0.0, 398.15, 423.15};
  cfg.mc.num_samples = 2000000;  // cannot finish inside 1 ms
  cfg.mc.deadline_ms = 1;

  obs::Registry obs;
  const api::SweepCommandResult r = api::run_sweep_command(cfg, &obs);
  EXPECT_FALSE(r.sweep.completed);
  EXPECT_EQ(r.exit_code(), 4);
  EXPECT_EQ(r.sweep.cells_requested, 3u);
  // The grid stops at the interrupted cell; nothing after it ran.
  EXPECT_LE(r.sweep.cells.size(), 3u);
  if (!r.sweep.cells.empty()) {
    EXPECT_FALSE(r.sweep.cells.back().result.completed);
  }
  EXPECT_FALSE(obs.completed());
  EXPECT_EQ(obs.incomplete_reason(), "deadline");

  const std::string text = api::sweep_summary_text(r);
  EXPECT_NE(text.find("deadline"), std::string::npos) << text;
}

TEST_F(SweepTest, CheckpointResumeReproducesUninterruptedSweepBitwise) {
  SweepGrid grid;
  grid.temperatures_k = {0.0, 398.15};
  McConfig base;
  base.num_samples = 256;
  base.seed = 5;
  base.checkpoint_every = 32;

  // The uninterrupted reference, no checkpoints involved.
  const SweepResult reference = run_corner_sweep(circuit_, grid, base);
  ASSERT_TRUE(reference.completed);

  CellFiles files("sweep_test_resume", grid.num_cells());
  McConfig interrupted = base;
  interrupted.checkpoint_path = files.prefix();
  interrupted.deadline_ms = 1;  // may or may not get anywhere; both valid
  (void)run_corner_sweep(circuit_, grid, interrupted);

  // Re-run with the budget lifted: finished cells restore from their own
  // files, the interrupted one resumes, and the surface is bit-identical.
  McConfig resumed = base;
  resumed.checkpoint_path = files.prefix();
  const SweepResult second = run_corner_sweep(circuit_, grid, resumed);
  ASSERT_TRUE(second.completed);
  ASSERT_EQ(second.cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < reference.cells.size(); ++i) {
    expect_bitwise_equal(second.cells[i].result, reference.cells[i].result,
                         "resumed cell " + std::to_string(i));
  }
}

TEST_F(SweepTest, CheckpointRejectsCrossCornerResume) {
  // A checkpoint written at one corner must not seed another: the config
  // hash fingerprints the resolved node physics, so handing cell files
  // from a hot sweep to a nominal one is a structured CheckpointError.
  SweepGrid hot;
  hot.temperatures_k = {398.15};
  McConfig base;
  base.num_samples = 64;
  CellFiles files("sweep_test_cross", 1);
  McConfig cfg = base;
  cfg.checkpoint_path = files.prefix();
  ASSERT_TRUE(run_corner_sweep(circuit_, hot, cfg).completed);

  SweepGrid nominal;  // default: the calibrated corner
  EXPECT_THROW((void)run_corner_sweep(circuit_, nominal, cfg),
               CheckpointError);
}

}  // namespace
}  // namespace statleak
