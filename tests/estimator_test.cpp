// Variance-reduction layer tests: exact importance-sampling likelihood
// weights, the SSTA-guided shift heuristics, the conditional-mean control
// variate, and — most importantly — the determinism contract: Sobol and
// importance-sampled runs are bit-identical across engines, thread counts,
// batch sizes, and checkpoint kill/resume, and a checkpoint written under
// one sampler configuration refuses to resume under another.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "mc/checkpoint.hpp"
#include "mc/estimator.hpp"
#include "mc/monte_carlo.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/normal.hpp"
#include "util/stats.hpp"

namespace statleak {
namespace {

void expect_bitwise_equal(const std::vector<double>& ref,
                          const std::vector<double>& got, const char* what,
                          int batch, int threads) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref[i]),
              std::bit_cast<std::uint64_t>(got[i]))
        << what << " sample " << i << " (batch " << batch << ", threads "
        << threads << "): " << ref[i] << " vs " << got[i];
  }
}

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class EstimatorTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

// --- likelihood weights -----------------------------------------------------

TEST(IsShiftTest, LogWeightMatchesGaussianDensityRatio) {
  // For z' = z + s the weight must be phi(z') / phi(z' - s), per
  // dimension; the closed form in IsShift::log_weight is that ratio.
  const IsShift s{1.7, -0.6};
  const auto log_phi = [](double z) { return -0.5 * z * z; };
  for (const double zl : {-2.0, -0.3, 0.0, 1.1}) {
    for (const double zv : {-1.5, 0.4, 2.2}) {
      const double expected = log_phi(zl + s.l_sigma) - log_phi(zl) +
                              log_phi(zv + s.v_sigma) - log_phi(zv);
      EXPECT_NEAR(s.log_weight(zl, zv), expected, 1e-12);
    }
  }
}

TEST(IsShiftTest, InactiveByDefault) {
  EXPECT_FALSE(IsShift{}.active());
  EXPECT_TRUE((IsShift{0.1, 0.0}).active());
  EXPECT_TRUE((IsShift{0.0, -0.1}).active());
  EXPECT_DOUBLE_EQ(IsShift{}.log_weight(1.0, -1.0), 0.0);
}

// --- shift heuristics -------------------------------------------------------

TEST_F(EstimatorTest, TimingShiftPointsIntoTheTailAndClamps) {
  const Circuit c = iscas85_proxy("c432p");
  const SampleSummary ref = [&] {
    McConfig cfg;
    cfg.num_samples = 256;
    return run_monte_carlo(c, lib_, var_, cfg).delay_summary();
  }();

  // Target well above the mean: active shift, magnitude <= 6 sigma.
  const IsShift tail =
      compute_timing_is_shift(c, lib_, var_, ref.mean * 1.05);
  EXPECT_TRUE(tail.active());
  const double mag = std::sqrt(tail.l_sigma * tail.l_sigma +
                               tail.v_sigma * tail.v_sigma);
  EXPECT_LE(mag, 6.0 + 1e-12);

  // An absurdly far target saturates the clamp instead of degenerating.
  const IsShift far =
      compute_timing_is_shift(c, lib_, var_, ref.mean * 100.0);
  EXPECT_NEAR(std::sqrt(far.l_sigma * far.l_sigma +
                        far.v_sigma * far.v_sigma),
              6.0, 1e-9);

  // Target below the mean: failures are not rare, plain MC is right.
  EXPECT_FALSE(
      compute_timing_is_shift(c, lib_, var_, ref.mean * 0.5).active());
}

TEST_F(EstimatorTest, LeakageShiftTargetsUpperTail) {
  const IsShift s = compute_leakage_is_shift(lib_, var_, 0.99);
  EXPECT_TRUE(s.active());
  // Leakage grows as exp(-cL dL - cV dVth): the high-leakage direction is
  // negative in both globals.
  EXPECT_LT(s.l_sigma, 0.0);
  EXPECT_LT(s.v_sigma, 0.0);
  EXPECT_NEAR(std::sqrt(s.l_sigma * s.l_sigma + s.v_sigma * s.v_sigma),
              normal_inverse_cdf(0.99), 1e-9);
  EXPECT_THROW(compute_leakage_is_shift(lib_, var_, 0.3), Error);
  EXPECT_THROW(compute_leakage_is_shift(lib_, var_, 1.0), Error);
}

// --- control variate --------------------------------------------------------

TEST_F(EstimatorTest, CvAnalyticMeanMatchesWilkinsonMean) {
  // E[X] = E[L_total] by the tower property; both sides compute the same
  // closed-form per-gate lognormal means, so they agree to rounding.
  const Circuit c = make_ripple_carry_adder(8);
  const CvLeakageModel cv(c, lib_, var_);
  const LeakageAnalyzer analyzer(c, lib_, var_);
  EXPECT_NEAR(cv.analytic_mean_na(), analyzer.mean_na(),
              1e-9 * analyzer.mean_na());
}

TEST_F(EstimatorTest, CvProxyTracksSampledLeakageAndCutsVariance) {
  const Circuit c = iscas85_proxy("c432p");
  McConfig cfg;
  cfg.num_samples = 512;
  cfg.seed = 11;
  cfg.control_variate = true;
  const McResult res = run_monte_carlo(c, lib_, var_, cfg);

  ASSERT_EQ(res.cv_proxy_na.size(), res.leakage_na.size());
  EXPECT_GT(res.cv_proxy_mean_na, 0.0);
  // The global components dominate a many-gate total: the conditional
  // mean explains almost all of the sample-to-sample spread.
  EXPECT_GT(correlation(res.leakage_na, res.cv_proxy_na), 0.95);
  const double beta = res.cv_beta();
  EXPECT_GT(beta, 0.5);
  EXPECT_LT(beta, 1.5);

  // Corrected samples must have (much) less spread than the raw ones.
  std::vector<double> corrected(res.leakage_na.size());
  for (std::size_t i = 0; i < corrected.size(); ++i) {
    corrected[i] = res.leakage_na[i] -
                   beta * (res.cv_proxy_na[i] - res.cv_proxy_mean_na);
  }
  EXPECT_LT(stddev_of(corrected), 0.5 * stddev_of(res.leakage_na));

  // The corrected mean stays consistent with the raw estimate within its
  // own (raw) confidence interval.
  EXPECT_NEAR(res.cv_leakage_mean_na(), mean_of(res.leakage_na),
              res.leakage_mean_ci_na());
  // And the corrected quantile stays in the bulk of the raw distribution.
  const double q95 = res.cv_leakage_quantile_na(0.95);
  EXPECT_GT(q95, res.cv_leakage_mean_na());
}

TEST_F(EstimatorTest, CvAndImportanceSamplingAreMutuallyExclusive) {
  const Circuit c = make_ripple_carry_adder(4);
  McConfig cfg;
  cfg.num_samples = 8;
  cfg.control_variate = true;
  cfg.is_shift = {1.0, 0.0};
  EXPECT_THROW(run_monte_carlo(c, lib_, var_, cfg), Error);
}

TEST_F(EstimatorTest, ShiftOnZeroSigmaSourceIsRejected) {
  const Circuit c = make_ripple_carry_adder(4);
  VariationModel flat = var_;
  flat.sigma_l_inter_nm = 0.0;
  McConfig cfg;
  cfg.num_samples = 8;
  cfg.is_shift = {1.0, 0.0};
  EXPECT_THROW(run_monte_carlo(c, lib_, flat, cfg), Error);
}

// --- determinism contract ---------------------------------------------------
// Mirrors mc_batched_test's matrix for the new modes: the scalar reference
// must be reproduced bit-for-bit by the batched engine for every batch
// size x thread count, including the recomputed weights.

constexpr int kBatches[] = {1, 7, 64, 0};  // 0 = auto
constexpr int kThreads[] = {1, 2, 8};

class EstimatorInvarianceTest : public ::testing::TestWithParam<const char*> {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_P(EstimatorInvarianceTest, SobolBitIdenticalAcrossBatchAndThreads) {
  const Circuit c = iscas85_proxy(GetParam());
  McConfig cfg;
  cfg.num_samples = 64;
  cfg.seed = 17;
  cfg.sampler = McSampler::kSobol;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref = run_monte_carlo(c, lib_, var_, cfg);

  cfg.use_batched = true;
  for (const int batch : kBatches) {
    for (const int threads : kThreads) {
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const McResult got = run_monte_carlo(c, lib_, var_, cfg);
      expect_bitwise_equal(ref.delay_ps, got.delay_ps, "delay", batch,
                           threads);
      expect_bitwise_equal(ref.leakage_na, got.leakage_na, "leakage", batch,
                           threads);
    }
  }
}

TEST_P(EstimatorInvarianceTest,
       ImportanceSamplingBitIdenticalAcrossBatchAndThreads) {
  const Circuit c = iscas85_proxy(GetParam());
  McConfig cfg;
  cfg.num_samples = 64;
  cfg.seed = 17;
  cfg.is_shift = {1.5, -0.5};
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref = run_monte_carlo(c, lib_, var_, cfg);
  ASSERT_EQ(ref.weights.size(), ref.delay_ps.size());

  cfg.use_batched = true;
  for (const int batch : kBatches) {
    for (const int threads : kThreads) {
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const McResult got = run_monte_carlo(c, lib_, var_, cfg);
      expect_bitwise_equal(ref.delay_ps, got.delay_ps, "delay", batch,
                           threads);
      expect_bitwise_equal(ref.leakage_na, got.leakage_na, "leakage", batch,
                           threads);
      expect_bitwise_equal(ref.weights, got.weights, "weights", batch,
                           threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Proxies, EstimatorInvarianceTest,
                         ::testing::Values("c432p", "c880p"),
                         [](const auto& info) { return info.param; });

TEST_F(EstimatorTest, SobolPseudoAndShiftedDrawsAllDiffer) {
  // Sanity: the three sampling modes really produce different populations
  // (a silently ignored knob would pass every invariance test above).
  const Circuit c = make_ripple_carry_adder(8);
  McConfig cfg;
  cfg.num_samples = 32;
  const McResult pseudo = run_monte_carlo(c, lib_, var_, cfg);
  cfg.sampler = McSampler::kSobol;
  const McResult sobol = run_monte_carlo(c, lib_, var_, cfg);
  cfg.sampler = McSampler::kPseudo;
  cfg.is_shift = {2.0, 0.0};
  const McResult shifted = run_monte_carlo(c, lib_, var_, cfg);

  EXPECT_NE(pseudo.delay_ps, sobol.delay_ps);
  EXPECT_NE(pseudo.delay_ps, shifted.delay_ps);
  EXPECT_NE(sobol.delay_ps, shifted.delay_ps);
  EXPECT_TRUE(pseudo.weights.empty());
  EXPECT_TRUE(sobol.weights.empty());
  EXPECT_FALSE(shifted.weights.empty());
}

// --- checkpoint interaction -------------------------------------------------

TEST_F(EstimatorTest, SobolKillResumeBitIdentical) {
  const Circuit c = make_ripple_carry_adder(8);
  McConfig cfg;
  cfg.num_samples = 400;
  cfg.seed = 5;
  cfg.sampler = McSampler::kSobol;
  cfg.is_shift = {0.0, 1.25};
  const auto n = static_cast<std::uint64_t>(cfg.num_samples);
  const McResult ref = run_monte_carlo(c, lib_, var_, cfg);

  // Recover this configuration's hash from a file the engine wrote.
  TempFile probe("estimator_ckpt_probe.bin");
  {
    McConfig probe_cfg = cfg;
    probe_cfg.checkpoint_path = probe.path();
    (void)run_monte_carlo(c, lib_, var_, probe_cfg);
  }
  std::vector<double> widths(c.num_gates(), -1.0);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind != CellKind::kInput) {
      widths[id] = lib_.area_um(g.kind, g.size);
    }
  }
  const std::uint64_t hash = mc_checkpoint_hash(c, var_, cfg, widths, lib_.node());
  const CheckpointData full = load_checkpoint(probe.path(), hash, n);
  ASSERT_EQ(full.done_count, n);

  // Kill at a cut point and resume under different execution shapes.
  TempFile partial("estimator_ckpt_partial.bin");
  for (const std::size_t cut : {std::size_t{37}, std::size_t{311}}) {
    for (const int threads : {1, 8}) {
      {
        auto w = CheckpointWriter::create(partial.path(), hash, n);
        w->append(0, std::span<const double>(ref.delay_ps).subspan(0, cut),
                  std::span<const double>(ref.leakage_na).subspan(0, cut));
      }
      McConfig resume_cfg = cfg;
      resume_cfg.checkpoint_path = partial.path();
      resume_cfg.num_threads = threads;
      const McResult res = run_monte_carlo(c, lib_, var_, resume_cfg);
      EXPECT_TRUE(res.completed);
      EXPECT_GE(res.samples_restored, cut);
      expect_bitwise_equal(ref.delay_ps, res.delay_ps, "delay", 0, threads);
      expect_bitwise_equal(ref.leakage_na, res.leakage_na, "leakage", 0,
                           threads);
      expect_bitwise_equal(ref.weights, res.weights, "weights", 0, threads);
    }
  }
}

TEST_F(EstimatorTest, CheckpointRejectsSamplerAndShiftMismatch) {
  // A checkpoint's samples depend on the sampler kind and the importance
  // shift; resuming under a different one must fail as the structured
  // config-hash corruption class, not silently merge two populations.
  const Circuit c = make_ripple_carry_adder(8);
  McConfig pseudo_cfg;
  pseudo_cfg.num_samples = 100;
  pseudo_cfg.seed = 3;

  TempFile f("estimator_ckpt_mismatch.bin");
  {
    McConfig writer_cfg = pseudo_cfg;
    writer_cfg.checkpoint_path = f.path();
    (void)run_monte_carlo(c, lib_, var_, writer_cfg);
  }

  McConfig sobol_cfg = pseudo_cfg;
  sobol_cfg.checkpoint_path = f.path();
  sobol_cfg.sampler = McSampler::kSobol;
  EXPECT_THROW(run_monte_carlo(c, lib_, var_, sobol_cfg), CheckpointError);

  McConfig shifted_cfg = pseudo_cfg;
  shifted_cfg.checkpoint_path = f.path();
  shifted_cfg.is_shift = {0.5, 0.0};
  EXPECT_THROW(run_monte_carlo(c, lib_, var_, shifted_cfg),
               CheckpointError);

  // The control-variate flag does NOT change sample values, so it must
  // resume fine (and still produce the proxy side-channel).
  McConfig cv_cfg = pseudo_cfg;
  cv_cfg.checkpoint_path = f.path();
  cv_cfg.control_variate = true;
  const McResult res = run_monte_carlo(c, lib_, var_, cv_cfg);
  EXPECT_EQ(res.samples_restored,
            static_cast<std::uint64_t>(pseudo_cfg.num_samples));
  EXPECT_EQ(res.cv_proxy_na.size(),
            static_cast<std::size_t>(pseudo_cfg.num_samples));
}

// --- statistical agreement --------------------------------------------------
// Fixed seeds make these deterministic; tolerances are CI half-widths, so
// they state the actual estimator contract rather than a magic epsilon.

TEST_F(EstimatorTest, SobolAndCvAgreeWithPlainMcWithinConfidence) {
  const Circuit c = iscas85_proxy("c880p");
  McConfig cfg;
  cfg.num_samples = 2048;
  cfg.seed = 101;
  const McResult plain = run_monte_carlo(c, lib_, var_, cfg);

  cfg.sampler = McSampler::kSobol;
  const McResult sobol = run_monte_carlo(c, lib_, var_, cfg);
  EXPECT_NEAR(mean_of(sobol.leakage_na), mean_of(plain.leakage_na),
              plain.leakage_mean_ci_na() + sobol.leakage_mean_ci_na());
  EXPECT_NEAR(mean_of(sobol.delay_ps), mean_of(plain.delay_ps),
              plain.delay_mean_ci_ps() + sobol.delay_mean_ci_ps());

  cfg.sampler = McSampler::kPseudo;
  cfg.control_variate = true;
  const McResult cv = run_monte_carlo(c, lib_, var_, cfg);
  const LeakageAnalyzer analyzer(c, lib_, var_);
  // The CV-corrected mean must be consistent with the exact analytic mean
  // well within the plain estimator's confidence interval.
  EXPECT_NEAR(cv.cv_leakage_mean_na(), analyzer.mean_na(),
              plain.leakage_mean_ci_na());
}

TEST_F(EstimatorTest, ImportanceSampledYieldMatchesPlainMc) {
  const Circuit c = iscas85_proxy("c880p");
  McConfig cfg;
  cfg.num_samples = 4096;
  cfg.seed = 7;
  const McResult plain = run_monte_carlo(c, lib_, var_, cfg);
  // A mildly rare failure target: ~p99 of the plain population.
  const double t_max = plain.delay_quantile_ps(0.99);
  const double y_plain = plain.timing_yield(t_max);

  McConfig is_cfg = cfg;
  is_cfg.is_shift = compute_timing_is_shift(c, lib_, var_, t_max);
  ASSERT_TRUE(is_cfg.is_shift.active());
  const McResult is = run_monte_carlo(c, lib_, var_, is_cfg);

  // Weighted estimate agrees within the combined uncertainty.
  const double tol = 4.0 * (plain.yield_stderr(t_max) +
                            is.yield_stderr(t_max)) +
                     1e-12;
  EXPECT_NEAR(is.timing_yield(t_max), y_plain, tol);

  // The weights are genuinely non-uniform and the ESS reflects it.
  EXPECT_LT(is.ess(), static_cast<double>(is.delay_ps.size()));
  EXPECT_GE(is.ess(), 1.0);
  // The shift pushes samples toward failure: far more of the *sampled*
  // population fails than the estimated probability says.
  double raw_fail = 0.0;
  for (const double d : is.delay_ps) {
    if (d > t_max) raw_fail += 1.0;
  }
  raw_fail /= static_cast<double>(is.delay_ps.size());
  EXPECT_GT(raw_fail, 5.0 * (1.0 - y_plain));
}

}  // namespace
}  // namespace statleak
