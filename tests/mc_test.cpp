// Unit tests for the Monte-Carlo engine: determinism, degenerate cases,
// yield estimation, and the exact-delay mode.

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "mc/monte_carlo.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class McTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
  Circuit circuit_ = make_ripple_carry_adder(8);
};

TEST_F(McTest, DeterministicForSeed) {
  McConfig cfg;
  cfg.num_samples = 200;
  cfg.seed = 5;
  const McResult a = run_monte_carlo(circuit_, lib_, var_, cfg);
  const McResult b = run_monte_carlo(circuit_, lib_, var_, cfg);
  ASSERT_EQ(a.delay_ps.size(), b.delay_ps.size());
  for (std::size_t i = 0; i < a.delay_ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.delay_ps[i], b.delay_ps[i]);
    EXPECT_DOUBLE_EQ(a.leakage_na[i], b.leakage_na[i]);
  }
}

TEST_F(McTest, BitIdenticalAcrossThreadCounts) {
  // The tentpole property: sharding over any worker count must not change a
  // single bit of the result, because sample i owns counter-derived stream i
  // and writes slot i.
  McConfig cfg;
  cfg.num_samples = 500;
  cfg.seed = 5;
  cfg.num_threads = 1;
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, cfg);
  for (int threads : {2, 8}) {
    cfg.num_threads = threads;
    const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
    ASSERT_EQ(ref.delay_ps.size(), res.delay_ps.size());
    for (std::size_t i = 0; i < ref.delay_ps.size(); ++i) {
      ASSERT_EQ(ref.delay_ps[i], res.delay_ps[i])
          << "threads = " << threads << ", sample " << i;
      ASSERT_EQ(ref.leakage_na[i], res.leakage_na[i])
          << "threads = " << threads << ", sample " << i;
    }
  }
}

TEST_F(McTest, SampleStreamsIndependentOfSampleCount) {
  // Counter-based streams: sample i's draws depend only on (seed, i), never
  // on how many samples ran before it. A shorter run is a strict prefix of
  // a longer one.
  McConfig small;
  small.num_samples = 50;
  small.seed = 11;
  McConfig large = small;
  large.num_samples = 200;
  const McResult a = run_monte_carlo(circuit_, lib_, var_, small);
  const McResult b = run_monte_carlo(circuit_, lib_, var_, large);
  for (std::size_t i = 0; i < a.delay_ps.size(); ++i) {
    ASSERT_EQ(a.delay_ps[i], b.delay_ps[i]) << "sample " << i;
    ASSERT_EQ(a.leakage_na[i], b.leakage_na[i]) << "sample " << i;
  }
}

TEST_F(McTest, DifferentSeedsDiffer) {
  McConfig cfg;
  cfg.num_samples = 100;
  cfg.seed = 5;
  const McResult a = run_monte_carlo(circuit_, lib_, var_, cfg);
  cfg.seed = 6;
  const McResult b = run_monte_carlo(circuit_, lib_, var_, cfg);
  EXPECT_NE(a.delay_ps[0], b.delay_ps[0]);
}

TEST_F(McTest, ZeroVariationGivesConstantSamples) {
  McConfig cfg;
  cfg.num_samples = 50;
  const VariationModel none = VariationModel::none();
  const McResult res = run_monte_carlo(circuit_, lib_, none, cfg);
  const StaEngine sta(circuit_, lib_);
  for (double d : res.delay_ps) {
    EXPECT_NEAR(d, sta.critical_delay_ps(), 1e-9);
  }
  const double nominal_leak = res.leakage_na[0];
  for (double l : res.leakage_na) EXPECT_DOUBLE_EQ(l, nominal_leak);
}

TEST_F(McTest, YieldBracketsAndStderr) {
  McConfig cfg;
  cfg.num_samples = 2000;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
  const SampleSummary s = res.delay_summary();
  EXPECT_EQ(res.timing_yield(s.max + 1.0), 1.0);
  EXPECT_EQ(res.timing_yield(s.min - 1.0), 0.0);
  const double y = res.timing_yield(s.p50);
  EXPECT_NEAR(y, 0.5, 0.05);
  EXPECT_GT(res.yield_stderr(s.p50), 0.0);
  EXPECT_LT(res.yield_stderr(s.p50), 0.02);
}

TEST_F(McTest, ExactDelayModeCloseToLinear) {
  McConfig lin;
  lin.num_samples = 2000;
  lin.seed = 9;
  McConfig exact = lin;
  exact.exact_delay = true;
  const McResult a = run_monte_carlo(circuit_, lib_, var_, lin);
  const McResult b = run_monte_carlo(circuit_, lib_, var_, exact);
  const double mean_lin = a.delay_summary().mean;
  const double mean_exact = b.delay_summary().mean;
  EXPECT_NEAR(mean_lin, mean_exact, 0.05 * mean_exact);
}

TEST_F(McTest, DelayAndLeakageAntiCorrelated) {
  // Slow dies (long channels) leak less: the defining coupling of the
  // problem. Correlation of per-sample delay and leakage must be negative.
  McConfig cfg;
  cfg.num_samples = 4000;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
  EXPECT_LT(correlation(res.delay_ps, res.leakage_na), -0.3);
}

TEST_F(McTest, RejectsBadConfig) {
  McConfig cfg;
  cfg.num_samples = 0;
  EXPECT_THROW(run_monte_carlo(circuit_, lib_, var_, cfg), Error);
}

TEST_F(McTest, LeakageSamplesSkewedRight) {
  // Lognormal-like totals: mean > median.
  McConfig cfg;
  cfg.num_samples = 6000;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
  const SampleSummary s = res.leakage_summary();
  EXPECT_GT(s.mean, s.p50);
}

}  // namespace
}  // namespace statleak
