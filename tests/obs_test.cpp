/// \file obs_test.cpp
/// \brief Observability layer: registry semantics, JSON round-trips, the
///        golden run-report schema, trace/iteration invariants, and the
///        "observation never changes results" contract.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "statleak.hpp"

namespace statleak {
namespace {

// ------------------------------------------------------------- registry ---

TEST(Registry, CountersAccumulateAndGaugesOverwrite) {
  obs::Registry reg;
  reg.add("a.count", 2.0);
  reg.add("a.count", 3.0);
  reg.add("b.count", 1.0);
  reg.set_gauge("g", 1.0);
  reg.set_gauge("g", 2.5);

  EXPECT_DOUBLE_EQ(reg.counter_value("a.count"), 5.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("b.count"), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing", -1.0), -1.0);

  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.count");  // sorted by name
  EXPECT_EQ(counters[1].first, "b.count");
}

TEST(Registry, PhasesAccumulateInFirstSeenOrder) {
  obs::Registry reg;
  reg.add_phase_s("late", 0.25);
  reg.add_phase_s("early", 1.0);
  reg.add_phase_s("late", 0.75);

  const auto phases = reg.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "late");  // insertion order, not sorted
  EXPECT_DOUBLE_EQ(phases[0].seconds, 1.0);
  EXPECT_EQ(phases[0].calls, 2);
  EXPECT_EQ(phases[1].name, "early");
  EXPECT_EQ(phases[1].calls, 1);
}

TEST(Registry, LocalCounterMergesOncePerScope) {
  obs::Registry reg;
  {
    obs::LocalCounter local(&reg, "work");
    local.add();
    local.add(2.0);
    // Nothing merged until the scope ends.
    EXPECT_DOUBLE_EQ(reg.counter_value("work"), 0.0);
    EXPECT_DOUBLE_EQ(local.pending(), 3.0);
  }
  EXPECT_DOUBLE_EQ(reg.counter_value("work"), 3.0);

  // Null registry: increments are collected but never merged anywhere.
  obs::LocalCounter detached(nullptr, "work");
  detached.add(100.0);
  detached.flush();
  EXPECT_DOUBLE_EQ(reg.counter_value("work"), 3.0);
}

TEST(Registry, LocalCountersMergeFromManyThreads) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      obs::LocalCounter local(&reg, "thread.work");
      for (int i = 0; i < kAddsPerThread; ++i) local.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(reg.counter_value("thread.work"),
                   static_cast<double>(kThreads) * kAddsPerThread);
}

TEST(Registry, ScopedTimerRecordsOneCallAndIsIdempotent) {
  obs::Registry reg;
  {
    obs::ScopedTimer timer(&reg, "p");
    timer.stop();
    timer.stop();  // second stop is a no-op
  }                // destructor after stop() is also a no-op
  const auto phases = reg.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].calls, 1);
  EXPECT_GE(phases[0].seconds, 0.0);

  obs::ScopedTimer null_timer(nullptr, "p");  // must not crash or record
  null_timer.stop();
  EXPECT_EQ(reg.phases()[0].calls, 1);
}

TEST(Registry, TraceStreamsKeepEventOrder) {
  obs::Registry reg;
  for (int i = 1; i <= 3; ++i) {
    obs::TraceEvent e;
    e.step = i;
    e.phase = "sizing";
    reg.trace("stat", e);
  }
  obs::TraceEvent other;
  other.step = 7;
  reg.trace("det", other);

  const auto streams = reg.trace_streams();
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0], "det");  // sorted
  EXPECT_EQ(streams[1], "stat");
  const auto events = reg.trace_events("stat");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].step, 1);
  EXPECT_EQ(events[2].step, 3);
  EXPECT_TRUE(reg.trace_events("absent").empty());
}

// ----------------------------------------------------------------- JSON ---

TEST(Json, DumpCompactAndPretty) {
  obs::Json doc = obs::Json::object();
  doc.set("n", 1.5);
  doc.set("s", "a\"b");
  doc.set("flag", true);
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back(nullptr);
  doc.set("xs", std::move(arr));

  EXPECT_EQ(doc.dump(),
            "{\"n\": 1.5, \"s\": \"a\\\"b\", \"flag\": true, \"xs\": [1, null]}");
  EXPECT_EQ(doc.dump(2),
            "{\n  \"n\": 1.5,\n  \"s\": \"a\\\"b\",\n  \"flag\": true,\n"
            "  \"xs\": [\n    1,\n    null\n  ]\n}\n");
}

TEST(Json, ObjectsPreserveInsertionOrderAndSetOverwrites) {
  obs::Json doc = obs::Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("z", 3);  // overwrite keeps the original position
  EXPECT_EQ(doc.dump(), "{\"z\": 3, \"a\": 2}");
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("b"));
  EXPECT_EQ(doc.find("b"), nullptr);
  EXPECT_DOUBLE_EQ(doc.at("z").as_number(), 3.0);
}

TEST(Json, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(obs::format_json_number(0.0), "0");
  EXPECT_EQ(obs::format_json_number(-0.0), "0");
  EXPECT_EQ(obs::format_json_number(100.0), "100");
  EXPECT_EQ(obs::format_json_number(0.75), "0.75");
  EXPECT_EQ(obs::format_json_number(1.0 / 3.0), "0.3333333333333333");
  // JSON cannot express non-finite values.
  EXPECT_EQ(obs::format_json_number(
                std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::format_json_number(
                std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, ParseRoundTripsItsOwnOutput) {
  const std::string text =
      R"({"a": [1, 2.5, -3e-2], "b": {"nested": "ué"}, "c": null,)"
      R"( "d": false, "e": "tab\there"})";
  const obs::Json doc = obs::Json::parse(text);
  // Serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(obs::Json::parse(doc.dump()).dump(), doc.dump());
  EXPECT_EQ(obs::Json::parse(doc.dump(2)).dump(2), doc.dump(2));
  EXPECT_DOUBLE_EQ(doc.at("a").as_array()[2].as_number(), -3e-2);
  EXPECT_EQ(doc.at("b").at("nested").as_string(), "u\xc3\xa9");
  EXPECT_TRUE(doc.at("c").is_null());
  EXPECT_FALSE(doc.at("d").as_bool());
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "\"open",
                          "1.2.3", "{} trailing", "[1 2]", "nul",
                          "\"bad\\q\"", ""}) {
    EXPECT_THROW((void)obs::Json::parse(bad), Error) << "input: " << bad;
  }
}

TEST(Json, RejectsTruncatedDocuments) {
  // Prefixes of a valid document cut at every structural boundary: the
  // parser must reject each one with a structured Error, never read past
  // the end or loop.
  const std::string full =
      R"({"a": [1, {"b": "text"}, null], "c": {"d": [true, 2e3]}})";
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW((void)obs::Json::parse(full.substr(0, len)), Error)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW((void)obs::Json::parse(full));
}

TEST(Json, RejectsOversizedNestingDepth) {
  // parse() bounds recursion at 256 levels so hostile or corrupt input
  // cannot overflow the stack. 255 arrays parse; 300 are rejected with a
  // depth diagnostic, not a crash.
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_NO_THROW((void)obs::Json::parse(nested(255)));
  try {
    (void)obs::Json::parse(nested(300));
    FAIL() << "300-deep nesting accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
  // Mixed object/array nesting hits the same bound.
  std::string mixed;
  for (int i = 0; i < 200; ++i) mixed += "{\"k\": [";
  EXPECT_THROW((void)obs::Json::parse(mixed), Error);
}

TEST(Json, TypeMismatchesThrow) {
  const obs::Json num(1.0);
  EXPECT_THROW((void)num.as_string(), Error);
  EXPECT_THROW((void)num.as_object(), Error);
  obs::Json obj = obs::Json::object();
  EXPECT_THROW((void)obj.at("missing"), Error);
  EXPECT_THROW((void)obj.push_back(1), Error);
}

// ----------------------------------------------------------- run report ---

/// Pins the exact bytes of a version-1 report. If this fails, either the
/// change is accidental, or the schema changed — then bump
/// kReportSchemaVersion and regenerate this golden text with it.
TEST(RunReport, GoldenFile) {
  obs::Registry reg;
  reg.note_config("circuit", "c17");
  reg.note_config_num("samples", std::int64_t{100});
  reg.note_config_num("exact", true);
  reg.add_phase_s("mc.samples", 0.5);
  reg.add("mc.sta_evals", 100.0);
  reg.set_gauge("mc.timing_yield", 0.75);
  obs::TraceEvent e;
  e.step = 100;
  e.phase = "samples";
  e.objective = 12.5;
  reg.trace("mc", e);

  const std::string expected = R"({
  "schema_version": 2,
  "tool": "statleak",
  "tool_version": "1.0.0",
  "completed": true,
  "incomplete_reason": "",
  "config": {
    "circuit": "c17",
    "exact": true,
    "samples": 100
  },
  "phases": [
    {
      "name": "mc.samples",
      "seconds": 0.5,
      "calls": 1
    }
  ],
  "counters": {
    "mc.sta_evals": 100
  },
  "gauges": {
    "mc.timing_yield": 0.75
  },
  "traces": {
    "mc": [
      {
        "step": 100,
        "phase": "samples",
        "objective": 12.5,
        "yield": 0,
        "delay_ps": 0,
        "commits": 0,
        "rejected": 0
      }
    ]
  }
}
)";
  EXPECT_EQ(obs::run_report_json(reg), expected);
}

TEST(RunReport, SchemaVersionLeadsAndSectionsAreTyped) {
  obs::Registry reg;
  reg.add("c", 1.0);
  const obs::Json report =
      obs::Json::parse(obs::run_report_json(reg));  // round-trip through text

  const auto& members = report.as_object();
  ASSERT_FALSE(members.empty());
  EXPECT_EQ(members[0].first, "schema_version");
  EXPECT_DOUBLE_EQ(members[0].second.as_number(), obs::kReportSchemaVersion);
  EXPECT_EQ(report.at("tool").as_string(), "statleak");
  EXPECT_TRUE(report.at("config").is_object());
  EXPECT_TRUE(report.at("phases").is_array());
  EXPECT_TRUE(report.at("counters").is_object());
  EXPECT_TRUE(report.at("gauges").is_object());
  EXPECT_TRUE(report.at("traces").is_object());
  EXPECT_DOUBLE_EQ(report.at("counters").at("c").as_number(), 1.0);
}

TEST(RunReport, IncompleteRunsAreFlagged) {
  obs::Registry reg;
  EXPECT_TRUE(reg.completed());
  reg.mark_incomplete("deadline");
  reg.mark_incomplete("quarantine");  // first reason wins
  EXPECT_FALSE(reg.completed());
  EXPECT_EQ(reg.incomplete_reason(), "deadline");

  const obs::Json report = obs::Json::parse(obs::run_report_json(reg));
  EXPECT_FALSE(report.at("completed").as_bool());
  EXPECT_EQ(report.at("incomplete_reason").as_string(), "deadline");
}

TEST(RunReport, DeadlineStoppedMcReportsIncomplete) {
  // End to end: a deadline-stopped MC run marks its registry, and the
  // emitted report carries "completed": false plus the partial-progress
  // counter. (1 ms against 50k samples; on a machine fast enough to finish
  // anyway the run is simply complete — both outcomes must be coherent.)
  CellLibrary lib{generic_100nm()};
  const VariationModel var = VariationModel::typical_100nm();
  const Circuit circuit = make_carry_lookahead_adder(8);
  McConfig cfg;
  cfg.num_samples = 50000;
  cfg.deadline_ms = 1;
  obs::Registry reg;
  const McResult res = run_monte_carlo(circuit, lib, var, cfg, &reg);
  EXPECT_EQ(res.completed, reg.completed());
  const obs::Json report = obs::Json::parse(obs::run_report_json(reg));
  EXPECT_EQ(report.at("completed").as_bool(), res.completed);
  if (!res.completed) {
    EXPECT_EQ(report.at("incomplete_reason").as_string(), "deadline");
    EXPECT_DOUBLE_EQ(report.at("counters").at("mc.samples_done").as_number(),
                     static_cast<double>(res.samples_done));
  }
}

// ----------------------------------------------------------- ExecConfig ---

TEST(ExecConfig, IsTheSharedBaseOfEveryRunConfig) {
  static_assert(std::is_base_of_v<ExecConfig, McConfig>);
  static_assert(std::is_base_of_v<ExecConfig, OptConfig>);
  static_assert(std::is_base_of_v<ExecConfig, FlowConfig>);
  static_assert(std::is_base_of_v<ExecConfig, MlvConfig>);

  // Historical per-config seed defaults survive the unification — golden
  // results everywhere depend on them.
  EXPECT_EQ(McConfig{}.seed, 42u);
  EXPECT_EQ(FlowConfig{}.seed, 7u);
  EXPECT_EQ(MlvConfig{}.seed, 1u);
  EXPECT_EQ(McConfig{}.num_threads, 0);  // 0 = all hardware threads
}

// ------------------------------------------- engine/observer invariants ---

struct OptFixture {
  CellLibrary lib{generic_100nm()};
  VariationModel var = VariationModel::typical_100nm();
  Circuit circuit = make_carry_lookahead_adder(8);
  OptConfig cfg;

  OptFixture() {
    cfg.t_max_ps = 1.2 * StaEngine(circuit, lib).critical_delay_ps();
    cfg.yield_target = 0.95;
  }
};

void expect_same_implementation(const Circuit& a, const Circuit& b) {
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId id = 0; id < a.num_gates(); ++id) {
    EXPECT_EQ(a.gate(id).size, b.gate(id).size) << "gate " << id;
    EXPECT_EQ(a.gate(id).vth, b.gate(id).vth) << "gate " << id;
  }
}

TEST(Instrumentation, StatisticalTraceCountEqualsIterations) {
  OptFixture f;
  obs::Registry reg;
  const OptResult result =
      StatisticalOptimizer(f.lib, f.var, f.cfg).run(f.circuit, &reg);

  ASSERT_GT(result.iterations, 0);
  EXPECT_EQ(reg.trace_events("stat").size(),
            static_cast<std::size_t>(result.iterations));
  EXPECT_DOUBLE_EQ(reg.counter_value("stat.iterations"), result.iterations);
  EXPECT_DOUBLE_EQ(reg.counter_value("stat.commits.hvt"),
                   result.hvt_commits);
  EXPECT_DOUBLE_EQ(reg.counter_value("stat.rejected_moves"),
                   result.rejected_moves);
  // Steps are monotone non-decreasing (one event per loop iteration).
  const auto events = reg.trace_events("stat");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].step, events[i].step);
  }
  // The optimizer's phases were timed.
  bool saw_total = false;
  for (const auto& p : reg.phases()) saw_total |= p.name == "stat.total";
  EXPECT_TRUE(saw_total);
}

TEST(Instrumentation, DeterministicTraceCountEqualsIterations) {
  OptFixture f;
  f.cfg.corner_k_sigma = 3.0;
  obs::Registry reg;
  const OptResult result =
      DeterministicOptimizer(f.lib, f.var, f.cfg).run(f.circuit, &reg);

  ASSERT_GT(result.iterations, 0);
  EXPECT_EQ(reg.trace_events("det").size(),
            static_cast<std::size_t>(result.iterations));
  EXPECT_DOUBLE_EQ(reg.counter_value("det.iterations"), result.iterations);
}

TEST(Instrumentation, StatisticalResultsAreBitIdenticalWithObserver) {
  OptFixture plain;
  OptFixture observed;
  obs::Registry reg;

  const OptResult a =
      StatisticalOptimizer(plain.lib, plain.var, plain.cfg).run(plain.circuit);
  const OptResult b = StatisticalOptimizer(observed.lib, observed.var,
                                           observed.cfg)
                          .run(observed.circuit, &reg);

  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.sizing_commits, b.sizing_commits);
  EXPECT_EQ(a.hvt_commits, b.hvt_commits);
  EXPECT_EQ(a.downsize_commits, b.downsize_commits);
  EXPECT_EQ(a.rejected_moves, b.rejected_moves);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.final_objective, b.final_objective);  // bit-identical
  expect_same_implementation(plain.circuit, observed.circuit);
}

TEST(Instrumentation, DeterministicResultsAreBitIdenticalWithObserver) {
  OptFixture plain;
  OptFixture observed;
  plain.cfg.corner_k_sigma = observed.cfg.corner_k_sigma = 3.0;
  obs::Registry reg;

  const OptResult a = DeterministicOptimizer(plain.lib, plain.var, plain.cfg)
                          .run(plain.circuit);
  const OptResult b = DeterministicOptimizer(observed.lib, observed.var,
                                             observed.cfg)
                          .run(observed.circuit, &reg);

  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_objective, b.final_objective);
  expect_same_implementation(plain.circuit, observed.circuit);
}

TEST(Instrumentation, MonteCarloCountersAndMilestones) {
  OptFixture f;
  McConfig mc;
  mc.num_samples = 333;
  obs::Registry reg;

  const McResult with_obs = run_monte_carlo(f.circuit, f.lib, f.var, mc, &reg);
  const McResult without = run_monte_carlo(f.circuit, f.lib, f.var, mc);

  EXPECT_EQ(with_obs.delay_ps, without.delay_ps);  // observation is passive
  EXPECT_EQ(with_obs.leakage_na, without.leakage_na);

  EXPECT_DOUBLE_EQ(reg.counter_value("mc.samples"), 333.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("mc.sta_evals"), 333.0);
  const auto milestones = reg.trace_events("mc");
  ASSERT_FALSE(milestones.empty());
  // The last milestone always covers the full population, whatever the
  // stride; its running mean equals the final summary mean.
  EXPECT_EQ(milestones.back().step, 333);
  EXPECT_NEAR(milestones.back().objective, without.leakage_summary().mean,
              1e-9 * without.leakage_summary().mean);
  for (std::size_t i = 1; i < milestones.size(); ++i) {
    EXPECT_LT(milestones[i - 1].step, milestones[i].step);
  }
}

TEST(Instrumentation, MonteCarloMilestonesAreThreadCountInvariant) {
  OptFixture f;
  McConfig mc;
  mc.num_samples = 100;

  obs::Registry serial;
  mc.num_threads = 1;
  (void)run_monte_carlo(f.circuit, f.lib, f.var, mc, &serial);

  obs::Registry parallel;
  mc.num_threads = 4;
  (void)run_monte_carlo(f.circuit, f.lib, f.var, mc, &parallel);

  const auto a = serial.trace_events("mc");
  const auto b = parallel.trace_events("mc");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].step, b[i].step);
    EXPECT_EQ(a[i].objective, b[i].objective);  // bit-identical
    EXPECT_EQ(a[i].delay_ps, b[i].delay_ps);
  }
}

TEST(Instrumentation, MonteCarloBatchCountersAndBuildTime) {
  OptFixture f;
  McConfig mc;
  mc.num_samples = 100;
  mc.batch_size = 16;
  mc.num_threads = 1;
  obs::Registry reg;
  (void)run_monte_carlo(f.circuit, f.lib, f.var, mc, &reg);

  // Single thread, 100 samples in blocks of 16: ceil(100/16) = 7 batches.
  // (Per-shard rounding makes the batch count depend on the thread count;
  // only the sample values are thread-invariant.)
  EXPECT_DOUBLE_EQ(reg.counter_value("mc.batches"), 7.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("mc.sta_evals"), 100.0);
  EXPECT_GT(reg.counter_value("flat.build_ns"), 0.0);
}

TEST(Instrumentation, MonteCarloMilestonesAreBatchAndEngineInvariant) {
  // Milestones are reconstructed serially from the per-sample results, so
  // they cannot depend on the batch size — or on which engine produced the
  // samples, since batched output is bit-identical to scalar.
  OptFixture f;
  McConfig mc;
  mc.num_samples = 100;

  obs::Registry scalar_reg;
  mc.use_batched = false;
  (void)run_monte_carlo(f.circuit, f.lib, f.var, mc, &scalar_reg);
  const auto ref = scalar_reg.trace_events("mc");
  ASSERT_FALSE(ref.empty());

  mc.use_batched = true;
  for (const int batch : {1, 7, 64, 0}) {
    mc.batch_size = batch;
    obs::Registry reg;
    (void)run_monte_carlo(f.circuit, f.lib, f.var, mc, &reg);
    const auto got = reg.trace_events("mc");
    ASSERT_EQ(ref.size(), got.size()) << "batch " << batch;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].step, got[i].step) << "batch " << batch;
      EXPECT_EQ(ref[i].objective, got[i].objective) << "batch " << batch;
      EXPECT_EQ(ref[i].delay_ps, got[i].delay_ps) << "batch " << batch;
    }
  }
}

TEST(Instrumentation, FlowRecordsPhasesAndHeadlineGauges) {
  CellLibrary lib{generic_100nm()};
  const VariationModel var = VariationModel::typical_100nm();
  Circuit circuit = make_ripple_carry_adder(4);
  FlowConfig cfg;
  cfg.t_max_factor = 1.3;
  cfg.yield_target = 0.9;
  cfg.mc_samples = 50;
  obs::Registry reg;

  const FlowOutcome out = run_flow(circuit, lib, var, cfg, &reg);

  std::vector<std::string> names;
  for (const auto& p : reg.phases()) names.push_back(p.name);
  for (const char* expected :
       {"flow.d_min", "flow.det", "flow.stat", "flow.mc_check"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing phase " << expected;
  }
  EXPECT_DOUBLE_EQ(reg.gauge_value("flow.t_max_ps"), out.t_max_ps);
  EXPECT_DOUBLE_EQ(reg.gauge_value("flow.p99_saving"), out.p99_saving());
  // Both optimizers and the MC cross-checks fed the same registry.
  EXPECT_GT(reg.counter_value("stat.iterations"), 0.0);
  EXPECT_GT(reg.counter_value("det.iterations"), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("mc.samples"), 100.0);  // two checks
}

}  // namespace
}  // namespace statleak
