// Command-facade tests (api/driver.hpp): study loading from paths vs
// inline text, default resolution (delay targets, importance shifts), and
// the facade commands producing exactly what the underlying engines produce
// — the CLI and the distributed worker both ride this layer, so its
// equivalence to the engines is what keeps every front end in agreement.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/driver.hpp"
#include "gen/arithmetic.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/impl_io.hpp"
#include "obs/registry.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string bench_text(const Circuit& c) {
  std::ostringstream out;
  write_bench(out, c);
  return out.str();
}

class ApiTest : public ::testing::Test {
 protected:
  Circuit circuit_ = make_ripple_carry_adder(12);
};

TEST_F(ApiTest, LoadStudyFromTextMatchesFile) {
  TempFile file("api_test_circuit.bench");
  {
    std::ofstream out(file.path());
    write_bench(out, circuit_);
  }
  api::StudyInput from_file;
  from_file.bench_path = file.path();
  api::StudyInput from_text;
  from_text.bench_text = bench_text(circuit_);
  from_text.circuit_name = circuit_.name();

  const api::LoadedStudy a = api::load_study(from_file);
  const api::LoadedStudy b = api::load_study(from_text);
  EXPECT_EQ(a.circuit.num_cells(), b.circuit.num_cells());
  EXPECT_EQ(a.impl_entries, 0u);
  // Same bytes parsed -> same nominal timing, the cheap full-equality probe.
  const double da = StaEngine(a.circuit, a.lib).critical_delay_ps();
  const double db = StaEngine(b.circuit, b.lib).critical_delay_ps();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(da), std::bit_cast<std::uint64_t>(db));
}

TEST_F(ApiTest, LoadStudyRejectsBadInputs) {
  api::StudyInput neither;
  EXPECT_THROW(api::load_study(neither), Error);

  api::StudyInput both;
  both.bench_path = "x.bench";
  both.bench_text = "INPUT(a)\n";
  EXPECT_THROW(api::load_study(both), Error);

  api::StudyInput bad_node;
  bad_node.bench_text = bench_text(circuit_);
  bad_node.node_nm = 65;
  EXPECT_THROW(api::load_study(bad_node), Error);

  api::StudyInput missing;
  missing.bench_path = "definitely_not_here.bench";
  EXPECT_THROW(api::load_study(missing), Error);
}

TEST_F(ApiTest, LoadStudyAppliesInlineImpl) {
  api::StudyInput input;
  input.bench_text = bench_text(circuit_);
  const api::LoadedStudy plain = api::load_study(input);

  // Re-emit the circuit's own implementation and apply it inline: every
  // cell gets an entry, and the result is unchanged.
  std::ostringstream impl;
  write_impl(impl, plain.circuit);
  input.impl_text = impl.str();
  const api::LoadedStudy with_impl = api::load_study(input);
  EXPECT_EQ(with_impl.impl_entries, plain.circuit.num_cells());
}

TEST_F(ApiTest, PrepareMcStudyResolvesDelayTarget) {
  api::McCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.mc.num_samples = 10;
  cfg.t_max_ps = 0.0;

  const api::McStudy study = api::prepare_mc_study(cfg);
  const double nominal =
      StaEngine(study.study.circuit, study.study.lib).critical_delay_ps();
  EXPECT_DOUBLE_EQ(study.t_max_ps, 1.1 * nominal);

  cfg.t_max_ps = 777.25;
  EXPECT_EQ(api::prepare_mc_study(cfg).t_max_ps, 777.25);
}

TEST_F(ApiTest, ImportanceAutoResolvesShiftOnce) {
  api::McCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.mc.num_samples = 10;
  cfg.importance_auto = true;

  const api::McStudy study = api::prepare_mc_study(cfg);
  EXPECT_TRUE(study.mc.is_shift.active());
  // The resolved config is what ships to workers: re-preparing from it with
  // importance_auto off must be a no-op (resolution happens exactly once).
  api::McCommandConfig resolved = cfg;
  resolved.importance_auto = false;
  resolved.mc = study.mc;
  resolved.t_max_ps = study.t_max_ps;
  const api::McStudy again = api::prepare_mc_study(resolved);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.mc.is_shift.l_sigma),
            std::bit_cast<std::uint64_t>(study.mc.is_shift.l_sigma));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(again.mc.is_shift.v_sigma),
            std::bit_cast<std::uint64_t>(study.mc.is_shift.v_sigma));
}

TEST_F(ApiTest, RunMcCommandMatchesEngineBitwise) {
  api::McCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.mc.num_samples = 300;
  cfg.mc.seed = 17;
  cfg.t_max_ps = 500.0;

  const api::McCommandResult r = api::run_mc_command(cfg);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_EQ(r.t_max_ps, 500.0);

  const api::LoadedStudy study = api::load_study(cfg.input);
  const McResult direct =
      run_monte_carlo(study.circuit, study.lib, study.var, cfg.mc);
  ASSERT_EQ(r.result.delay_ps.size(), direct.delay_ps.size());
  for (std::size_t i = 0; i < direct.delay_ps.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.result.delay_ps[i]),
              std::bit_cast<std::uint64_t>(direct.delay_ps[i]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.result.leakage_na[i]),
              std::bit_cast<std::uint64_t>(direct.leakage_na[i]));
  }
}

TEST_F(ApiTest, RunMcCommandRecordsGauges) {
  api::McCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.mc.num_samples = 100;
  obs::Registry obs;
  const api::McCommandResult r = api::run_mc_command(cfg, &obs);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_GT(obs.gauge_value("mc.delay_mean_ps"), 0.0);
  EXPECT_GT(obs.gauge_value("mc.leakage_mean_na"), 0.0);
}

TEST_F(ApiTest, McSummaryTextCarriesTheReportLines) {
  api::McCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.mc.num_samples = 100;
  const std::string text = api::mc_summary_text(api::run_mc_command(cfg));
  EXPECT_NE(text.find("delay"), std::string::npos);
  EXPECT_NE(text.find("leakage"), std::string::npos);
  EXPECT_NE(text.find("timing yield"), std::string::npos);
}

TEST_F(ApiTest, DeadlineExpiryReportsExitCode4) {
  api::McCommandConfig cfg;
  cfg.input.bench_text = bench_text(make_ripple_carry_adder(32));
  cfg.mc.num_samples = 2000000;  // cannot finish inside 1 ms
  cfg.mc.deadline_ms = 1;
  const api::McCommandResult r = api::run_mc_command(cfg);
  EXPECT_FALSE(r.result.completed);
  EXPECT_EQ(r.exit_code(), 4);
  // Under heavy load zero samples may finish, which swaps the deadline
  // note for the empty-budget one — both are the clean-stop report.
  const std::string text = api::mc_summary_text(r);
  EXPECT_TRUE(text.find("deadline") != std::string::npos ||
              text.find("no samples completed") != std::string::npos)
      << text;
}

TEST_F(ApiTest, RunOptimizeCommandIsDeterministic) {
  api::OptimizeCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.flow = api::OptimizeFlow::kStat;
  cfg.opt.seed = 3;

  const api::OptimizeCommandResult a = api::run_optimize_command(cfg);
  const api::OptimizeCommandResult b = api::run_optimize_command(cfg);
  EXPECT_EQ(a.exit_code(), 0);
  EXPECT_EQ(a.t_max_ps, b.t_max_ps);
  EXPECT_EQ(a.result.sizing_commits, b.result.sizing_commits);
  EXPECT_EQ(a.result.hvt_commits, b.result.hvt_commits);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.metrics.leakage_mean_na),
            std::bit_cast<std::uint64_t>(b.metrics.leakage_mean_na));
  EXPECT_GT(a.metrics.timing_yield, 0.0);
}

TEST_F(ApiTest, RunFlowCommandCompletes) {
  api::FlowCommandConfig cfg;
  cfg.input.bench_text = bench_text(circuit_);
  cfg.flow.seed = 7;
  const api::FlowCommandResult r = api::run_flow_command(cfg);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_TRUE(r.outcome.completed);
  EXPECT_GT(r.outcome.t_max_ps, 0.0);
  EXPECT_GT(r.outcome.stat_metrics.timing_yield, 0.0);
}

}  // namespace
}  // namespace statleak
