// Durable optimization: the statistical optimizer's CRC journal. Pins the
// headline guarantee — an interrupted run (deadline expiry, or any crash
// point simulated by truncating the journal at a committed-record boundary)
// resumes to the bit-identical trajectory and final implementation, across
// both scoring engines and thread counts — plus the structured rejection of
// mismatched and corrupt journals, and the no-op verification replay of a
// completed journal.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gen/arithmetic.hpp"
#include "obs/registry.hpp"
#include "opt/checkpoint.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "tech/process.hpp"
#include "util/journal.hpp"

namespace statleak {
namespace {

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void store_u32(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint32_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof v);
}

void store_u64(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint64_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof v);
}

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Implementation {
  std::vector<double> sizes;
  std::vector<Vth> vths;
};

Implementation snapshot(const Circuit& c) {
  Implementation impl;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    impl.sizes.push_back(c.gate(id).size);
    impl.vths.push_back(c.gate(id).vth);
  }
  return impl;
}

/// A crash at any instant leaves a committed prefix of the journal; cutting
/// the file back to a record boundary (and re-stamping the header) is the
/// deterministic equivalent of every possible kill point.
std::vector<std::uint8_t> cut_at(const std::vector<std::uint8_t>& good,
                                 std::uint64_t boundary) {
  std::vector<std::uint8_t> cut(good.begin(), good.begin() + boundary);
  store_u64(cut, 24, boundary);  // committed_bytes
  store_u32(cut, 32, crc32(cut.data(), 32));
  return cut;
}

class OptCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Circuit probe = fresh_circuit();
    base_.t_max_ps = 1.15 * min_achievable_delay_ps(probe, lib_);
    base_.checkpoint_every = 20;  // several snapshots per run
  }

  Circuit fresh_circuit() const { return make_ripple_carry_adder(16); }

  OptResult run(OptConfig cfg, Circuit& c, obs::Registry* reg = nullptr) {
    return StatisticalOptimizer(lib_, var_, cfg).run(c, reg);
  }

  void expect_same_outcome(const OptResult& a, const OptResult& b) {
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.sizing_commits, b.sizing_commits);
    EXPECT_EQ(a.hvt_commits, b.hvt_commits);
    EXPECT_EQ(a.downsize_commits, b.downsize_commits);
    EXPECT_EQ(a.rejected_moves, b.rejected_moves);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.final_objective, b.final_objective);  // bitwise
  }

  CellLibrary lib_{generic_100nm()};
  VariationModel var_ = VariationModel::typical_100nm();
  OptConfig base_;
};

TEST_F(OptCheckpointTest, HashCoversTrajectoryInputsAndExcludesEngineKnobs) {
  const Circuit c = fresh_circuit();
  const std::uint64_t ref = opt_checkpoint_hash(c, lib_, var_, base_);

  // Everything that changes the trajectory changes the fingerprint...
  OptConfig seed = base_;
  seed.seed += 1;
  EXPECT_NE(opt_checkpoint_hash(c, lib_, var_, seed), ref);
  OptConfig tmax = base_;
  tmax.t_max_ps *= 1.01;
  EXPECT_NE(opt_checkpoint_hash(c, lib_, var_, tmax), ref);
  OptConfig eta = base_;
  eta.yield_target = 0.95;
  EXPECT_NE(opt_checkpoint_hash(c, lib_, var_, eta), ref);
  OptConfig pct = base_;
  pct.leakage_percentile = 0.9;
  EXPECT_NE(opt_checkpoint_hash(c, lib_, var_, pct), ref);
  const Circuit other = make_ripple_carry_adder(17);
  EXPECT_NE(opt_checkpoint_hash(other, lib_, var_, base_), ref);

  // ...while the trajectory-invariant performance/stop knobs are excluded,
  // so a journal hops freely between engines, thread counts and deadlines.
  OptConfig knobs = base_;
  knobs.flat_engine = !knobs.flat_engine;
  knobs.num_threads = 8;
  knobs.candidate_block = 3;
  knobs.deadline_ms = 1234;
  knobs.checkpoint_every = 7;
  EXPECT_EQ(opt_checkpoint_hash(c, lib_, var_, knobs), ref);
}

TEST_F(OptCheckpointTest, JournalingLeavesTheTrajectoryUntouched) {
  Circuit plain_c = fresh_circuit();
  const OptResult plain = run(base_, plain_c);
  ASSERT_TRUE(plain.completed);

  TempFile f("opt_ckpt_untouched.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  Circuit journaled_c = fresh_circuit();
  obs::Registry reg;
  const OptResult journaled = run(cfg, journaled_c, &reg);

  expect_same_outcome(plain, journaled);
  EXPECT_EQ(journaled.replayed_moves, 0);
  const Implementation a = snapshot(plain_c);
  const Implementation b = snapshot(journaled_c);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_TRUE(a.vths == b.vths);
  EXPECT_TRUE(journal_exists(f.path()));
  EXPECT_GT(reg.counter_value("opt.journal_records"), 0.0);
  EXPECT_GT(reg.counter_value("opt.journal_snapshots"), 0.0);
  EXPECT_EQ(reg.gauge_value("opt.resumed"), 0.0);
  EXPECT_EQ(reg.gauge_value("opt.journal_healthy"), 1.0);
}

TEST_F(OptCheckpointTest, CompletedJournalReplaysAsNoOpVerification) {
  TempFile f("opt_ckpt_complete.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  Circuit first_c = fresh_circuit();
  const OptResult first = run(cfg, first_c);
  ASSERT_TRUE(first.completed);
  const std::vector<std::uint8_t> bytes_before = read_bytes(f.path());

  Circuit again_c = fresh_circuit();
  obs::Registry reg;
  const OptResult again = run(cfg, again_c, &reg);
  expect_same_outcome(first, again);
  EXPECT_GT(again.replayed_moves, 0);
  EXPECT_EQ(reg.gauge_value("opt.resumed"), 1.0);
  const Implementation a = snapshot(first_c);
  const Implementation b = snapshot(again_c);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_TRUE(a.vths == b.vths);

  // A fully-replayed journal appends nothing: byte-identical file.
  EXPECT_EQ(read_bytes(f.path()), bytes_before);
}

TEST_F(OptCheckpointTest, TruncatedJournalResumesBitIdentically) {
  // Reference: one uninterrupted journaled run.
  TempFile f("opt_ckpt_resume.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  Circuit ref_c = fresh_circuit();
  const OptResult ref = run(cfg, ref_c);
  ASSERT_TRUE(ref.completed);
  const Implementation ref_impl = snapshot(ref_c);
  const std::vector<std::uint8_t> good = read_bytes(f.path());

  const std::uint64_t hash =
      opt_checkpoint_hash(fresh_circuit(), lib_, var_, base_);
  const JournalContents contents =
      load_journal(f.path(), opt_checkpoint_format(),
                   hash, fresh_circuit().num_gates());
  ASSERT_GT(contents.records.size(), 8u);

  // Crash points: almost nothing committed, mid-run, and all-but-complete.
  const std::vector<std::uint64_t> cuts = {
      contents.records[1].offset,
      contents.records[contents.records.size() / 2].offset,
      contents.records[contents.records.size() - 1].offset,
  };
  const bool engines[] = {true, false};
  const int threads[] = {1, 2, 8};
  for (const std::uint64_t cut : cuts) {
    for (const bool flat : engines) {
      for (const int t : threads) {
        SCOPED_TRACE("cut " + std::to_string(cut) + " flat " +
                     std::to_string(flat) + " threads " + std::to_string(t));
        write_bytes(f.path(), cut_at(good, cut));
        OptConfig resume_cfg = cfg;
        resume_cfg.flat_engine = flat;
        resume_cfg.num_threads = t;
        resume_cfg.checkpoint_every = 13;  // cadence may differ on resume
        Circuit c = fresh_circuit();
        const OptResult res = run(resume_cfg, c);
        EXPECT_TRUE(res.completed);
        EXPECT_GT(res.replayed_moves, 0);
        expect_same_outcome(ref, res);
        const Implementation impl = snapshot(c);
        EXPECT_EQ(impl.sizes, ref_impl.sizes);
        EXPECT_TRUE(impl.vths == ref_impl.vths);
      }
    }
  }
}

TEST_F(OptCheckpointTest, DeadlineInterruptChainResumesToTheStraightRun) {
  Circuit ref_c = fresh_circuit();
  const OptResult ref = run(base_, ref_c);
  const Implementation ref_impl = snapshot(ref_c);

  TempFile f("opt_ckpt_deadline.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();

  // Two deadline-cut attempts (each may stop anywhere, including "nowhere"
  // and "done" — all are valid journal prefixes), then an unlimited one.
  for (const std::int64_t deadline : {std::int64_t{1}, std::int64_t{60}}) {
    OptConfig partial = cfg;
    partial.deadline_ms = deadline;
    Circuit c = fresh_circuit();
    (void)run(partial, c);
  }
  Circuit final_c = fresh_circuit();
  const OptResult res = run(cfg, final_c);
  EXPECT_TRUE(res.completed);
  expect_same_outcome(ref, res);
  const Implementation impl = snapshot(final_c);
  EXPECT_EQ(impl.sizes, ref_impl.sizes);
  EXPECT_TRUE(impl.vths == ref_impl.vths);
}

TEST_F(OptCheckpointTest, MismatchedConfigurationIsRejected) {
  TempFile f("opt_ckpt_mismatch.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  {
    Circuit c = fresh_circuit();
    (void)run(cfg, c);
  }
  // A different objective would walk a different trajectory: refuse to
  // resume rather than silently blend two runs.
  OptConfig other = cfg;
  other.yield_target = 0.95;
  Circuit c = fresh_circuit();
  EXPECT_THROW((void)run(other, c), CheckpointError);
}

TEST_F(OptCheckpointTest, CorruptJournalsAreStructuredErrors) {
  TempFile f("opt_ckpt_corrupt.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  {
    Circuit c = fresh_circuit();
    (void)run(cfg, c);
  }
  const std::vector<std::uint8_t> good = read_bytes(f.path());

  const auto expect_reject = [&](std::vector<std::uint8_t> bytes,
                                 const char* label) {
    write_bytes(f.path(), bytes);
    Circuit c = fresh_circuit();
    EXPECT_THROW((void)run(cfg, c), CheckpointError) << label;
  };

  {  // bad magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    expect_reject(bad, "bad magic");
  }
  {  // header CRC mismatch
    std::vector<std::uint8_t> bad = good;
    bad[32] ^= 0xFF;
    expect_reject(bad, "bad header crc");
  }
  {  // record CRC mismatch: flip a committed payload byte
    std::vector<std::uint8_t> bad = good;
    bad[kJournalHeaderBytes + kJournalRecordBytes + 5] ^= 0xFF;
    expect_reject(bad, "bad record crc");
  }
  {  // file shorter than committed_bytes
    std::vector<std::uint8_t> bad = good;
    bad.resize(bad.size() - 4);
    expect_reject(bad, "truncated committed region");
  }
  {  // plain garbage
    expect_reject(std::vector<std::uint8_t>(80, 0x5A), "garbage");
  }
}

TEST_F(OptCheckpointTest, TamperedVerdictIsReplayDivergence) {
  TempFile f("opt_ckpt_diverge.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  {
    Circuit c = fresh_circuit();
    (void)run(cfg, c);
  }
  // Flip the accept verdict of the first move record and re-stamp its CRC:
  // the file is structurally pristine, but replay re-derives the verdict
  // from the rebuilt state and must refuse the contradiction.
  std::vector<std::uint8_t> bad = read_bytes(f.path());
  const std::size_t env = kJournalHeaderBytes;
  const std::size_t payload = env + kJournalRecordBytes;
  bad[payload + 2] ^= 1;  // accepted byte of the 24-byte move payload
  store_u32(bad, env + 12,
            crc32(bad.data() + payload, 24, crc32(bad.data() + env, 12)));
  write_bytes(f.path(), bad);
  Circuit c = fresh_circuit();
  EXPECT_THROW((void)run(cfg, c), CheckpointError);
}

TEST_F(OptCheckpointTest, FlowStatisticalPhaseResumesThroughItsJournal) {
  // End-to-end through run_flow: the statistical phase of a flow resumes a
  // cut journal and lands on the uninterrupted flow's implementation.
  TempFile f("opt_ckpt_flow.bin");
  FlowConfig flow;
  flow.opt_checkpoint_path = f.path();
  flow.opt_checkpoint_every = 20;

  Circuit ref_c = make_ripple_carry_adder(16);
  const FlowOutcome ref = run_flow(ref_c, lib_, var_, flow);
  ASSERT_TRUE(ref.completed);
  const Implementation ref_impl = snapshot(ref_c);
  const std::vector<std::uint8_t> good = read_bytes(f.path());

  // Cut the stat journal mid-way; the flow's config hash must line up with
  // what run_flow rebuilds internally, or this resume would be rejected.
  OptConfig stat_cfg;
  stat_cfg.t_max_ps = ref.t_max_ps;
  stat_cfg.yield_target = flow.yield_target;
  stat_cfg.leakage_percentile = flow.leakage_percentile;
  const JournalContents contents = load_journal(
      f.path(), opt_checkpoint_format(),
      opt_checkpoint_hash(make_ripple_carry_adder(16), lib_, var_, stat_cfg),
      make_ripple_carry_adder(16).num_gates());
  ASSERT_GT(contents.records.size(), 4u);
  write_bytes(f.path(),
              cut_at(good, contents.records[contents.records.size() / 2].offset));

  Circuit resumed_c = make_ripple_carry_adder(16);
  const FlowOutcome resumed = run_flow(resumed_c, lib_, var_, flow);
  EXPECT_TRUE(resumed.completed);
  EXPECT_GT(resumed.stat_result.replayed_moves, 0);
  expect_same_outcome(ref.stat_result, resumed.stat_result);
  const Implementation impl = snapshot(resumed_c);
  EXPECT_EQ(impl.sizes, ref_impl.sizes);
  EXPECT_TRUE(impl.vths == ref_impl.vths);
}

}  // namespace
}  // namespace statleak
