// Differential harness for the batched SoA Monte-Carlo engine (in the
// style of ssta_incremental_test.cpp): the gate-major batched path must
// reproduce the scalar per-sample path BIT-FOR-BIT — delay and leakage,
// for every tested (batch_size, num_threads) combination, on the plain,
// spatial and ABB engines, in first-order and exact delay modes. The
// comparison uses the raw IEEE-754 bit patterns, so even a sign-of-zero or
// ulp-level divergence fails.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "abb/abb.hpp"
#include "gen/proxy.hpp"
#include "mc/monte_carlo.hpp"
#include "spatial/spatial_analysis.hpp"
#include "spatial/placement.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

void expect_bitwise_equal(const std::vector<double>& ref,
                          const std::vector<double>& got,
                          const char* what, int batch, int threads) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref[i]),
              std::bit_cast<std::uint64_t>(got[i]))
        << what << " sample " << i << " (batch " << batch << ", threads "
        << threads << "): " << ref[i] << " vs " << got[i];
  }
}

constexpr int kBatches[] = {1, 7, 64, 0};  // 0 = auto
constexpr int kThreads[] = {1, 2, 8};

class McBatchedTest : public ::testing::TestWithParam<const char*> {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_P(McBatchedTest, BitIdenticalToScalarAcrossBatchAndThreads) {
  const Circuit c = iscas85_proxy(GetParam());
  McConfig cfg;
  cfg.num_samples = 64;
  cfg.seed = 17;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref = run_monte_carlo(c, lib_, var_, cfg);

  cfg.use_batched = true;
  for (const int batch : kBatches) {
    for (const int threads : kThreads) {
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const McResult got = run_monte_carlo(c, lib_, var_, cfg);
      expect_bitwise_equal(ref.delay_ps, got.delay_ps, "delay", batch,
                           threads);
      expect_bitwise_equal(ref.leakage_na, got.leakage_na, "leakage", batch,
                           threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Proxies, McBatchedTest,
                         ::testing::Values("c432p", "c499p", "c880p",
                                           "c1355p"),
                         [](const auto& info) { return info.param; });

class McBatchedModesTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_F(McBatchedModesTest, ExactDelayModeBitIdentical) {
  const Circuit c = iscas85_proxy("c432p");
  McConfig cfg;
  cfg.num_samples = 32;
  cfg.seed = 23;
  cfg.exact_delay = true;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref = run_monte_carlo(c, lib_, var_, cfg);

  cfg.use_batched = true;
  for (const int batch : {1, 7, 0}) {
    for (const int threads : {1, 2}) {
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const McResult got = run_monte_carlo(c, lib_, var_, cfg);
      expect_bitwise_equal(ref.delay_ps, got.delay_ps, "exact delay", batch,
                           threads);
      expect_bitwise_equal(ref.leakage_na, got.leakage_na, "exact leakage",
                           batch, threads);
    }
  }
}

TEST_F(McBatchedModesTest, PelgromScalingBitIdentical) {
  // Pelgrom width scaling changes the per-gate draw sigmas; the batched
  // path must issue the exact same draw sequence.
  const Circuit c = iscas85_proxy("c432p");
  VariationModel var = var_;
  var.pelgrom_vth_scaling = true;
  McConfig cfg;
  cfg.num_samples = 32;
  cfg.seed = 29;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref = run_monte_carlo(c, lib_, var, cfg);

  cfg.use_batched = true;
  for (const int batch : {1, 7, 0}) {
    cfg.batch_size = batch;
    const McResult got = run_monte_carlo(c, lib_, var, cfg);
    expect_bitwise_equal(ref.delay_ps, got.delay_ps, "pelgrom delay", batch,
                         1);
    expect_bitwise_equal(ref.leakage_na, got.leakage_na, "pelgrom leakage",
                         batch, 1);
  }
}

TEST_F(McBatchedModesTest, SpatialEngineBitIdentical) {
  const Circuit c = iscas85_proxy("c880p");
  const auto placement = make_topological_placement(c, 2);
  SpatialVariationModel model;
  model.base = var_;
  McConfig cfg;
  cfg.num_samples = 48;
  cfg.seed = 31;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref =
      run_monte_carlo_spatial(c, lib_, model, placement, cfg);

  cfg.use_batched = true;
  for (const int batch : kBatches) {
    for (const int threads : kThreads) {
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const McResult got =
          run_monte_carlo_spatial(c, lib_, model, placement, cfg);
      expect_bitwise_equal(ref.delay_ps, got.delay_ps, "spatial delay",
                           batch, threads);
      expect_bitwise_equal(ref.leakage_na, got.leakage_na, "spatial leakage",
                           batch, threads);
    }
  }
}

TEST_F(McBatchedModesTest, AbbExperimentBitIdentical) {
  // The ABB sweep exercises the kernels' uniform dVth shift and the
  // per-lane ladder selection state.
  const Circuit c = iscas85_proxy("c432p");
  const BodyBiasConfig abb;
  const double t_max = 1200.0;
  McConfig cfg;
  cfg.num_samples = 24;
  cfg.seed = 37;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const AbbResult ref = run_abb_experiment(c, lib_, var_, abb, cfg, t_max);

  cfg.use_batched = true;
  for (const int batch : {1, 7, 0}) {
    for (const int threads : {1, 2}) {
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      const AbbResult got =
          run_abb_experiment(c, lib_, var_, abb, cfg, t_max);
      expect_bitwise_equal(ref.baseline.delay_ps, got.baseline.delay_ps,
                           "abb baseline delay", batch, threads);
      expect_bitwise_equal(ref.baseline.leakage_na, got.baseline.leakage_na,
                           "abb baseline leakage", batch, threads);
      expect_bitwise_equal(ref.compensated.delay_ps, got.compensated.delay_ps,
                           "abb compensated delay", batch, threads);
      expect_bitwise_equal(ref.compensated.leakage_na,
                           got.compensated.leakage_na,
                           "abb compensated leakage", batch, threads);
      expect_bitwise_equal(ref.bias_v, got.bias_v, "abb bias", batch,
                           threads);
    }
  }
}

TEST_F(McBatchedModesTest, LargeProxyBitIdentical) {
  // One spot check on the largest proxy: the throughput target circuit.
  const Circuit c = iscas85_proxy("c7552p");
  McConfig cfg;
  cfg.num_samples = 16;
  cfg.seed = 41;
  cfg.num_threads = 1;
  cfg.use_batched = false;
  const McResult ref = run_monte_carlo(c, lib_, var_, cfg);

  cfg.use_batched = true;
  cfg.batch_size = 0;  // auto
  const McResult got = run_monte_carlo(c, lib_, var_, cfg);
  expect_bitwise_equal(ref.delay_ps, got.delay_ps, "c7552p delay", 0, 1);
  expect_bitwise_equal(ref.leakage_na, got.leakage_na, "c7552p leakage", 0,
                       1);
}

TEST_F(McBatchedModesTest, BatchSizeValidated) {
  const Circuit c = iscas85_proxy("c432p");
  McConfig cfg;
  cfg.num_samples = 4;
  cfg.batch_size = -1;
  EXPECT_THROW(run_monte_carlo(c, lib_, var_, cfg), Error);
}

}  // namespace
}  // namespace statleak
