// Differential equivalence harness for the incremental (dirty-cone) SSTA
// engine, the TreeSum-backed leakage analyzer and the spatial engine's
// mirrored cone machinery.
//
// The contract under test: after ANY sequence of reported mutations —
// committed resizes and Vth swaps, trial moves that are rolled back, trial
// moves that are committed — every query on the long-lived incremental
// engine is *bit-identical* to a freshly constructed engine looking at the
// same circuit. Equality is ==, never EXPECT_NEAR: the dirty-cone retiming
// recomputes each changed gate with exactly the arithmetic a full pass would
// use, and the fixed-shape summation trees make the leakage totals
// insensitive to update order.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <functional>

#include "gen/random_dag.hpp"
#include "leakage/leakage.hpp"
#include "opt/statistical.hpp"
#include "spatial/placement.hpp"
#include "spatial/spatial_model.hpp"
#include "spatial/spatial_ssta.hpp"
#include "ssta/flat_incremental.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/rng.hpp"

namespace statleak {
namespace {

class SstaIncrementalTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();

  Circuit random_circuit(std::uint64_t seed, int gates = 250) const {
    RandomDagSpec spec;
    spec.num_inputs = 24;
    spec.num_gates = gates;
    spec.num_outputs = 12;
    spec.seed = seed;
    return make_random_dag(spec);
  }

  std::vector<GateId> cells_of(const Circuit& c) const {
    std::vector<GateId> cells;
    for (GateId id = 0; id < c.num_gates(); ++id) {
      if (c.gate(id).kind != CellKind::kInput) cells.push_back(id);
    }
    return cells;
  }
};

testing::AssertionResult same(const Canonical& a, const Canonical& b,
                              const char* what) {
  if (a.mean == b.mean && a.gl == b.gl && a.gv == b.gv && a.loc == b.loc) {
    return testing::AssertionSuccess();
  }
  return testing::AssertionFailure()
         << what << " diverged: (" << a.mean << ", " << a.gl << ", " << a.gv
         << ", " << a.loc << ") vs (" << b.mean << ", " << b.gl << ", "
         << b.gv << ", " << b.loc << ")";
}

/// Incremental engine + analyzer vs freshly constructed ones: arrivals,
/// criticality, circuit delay and leakage stats must match bitwise. The
/// fresh reference is always the scalar SstaEngine, so instantiating this
/// with FlatSstaEngine is a cross-engine differential: the flat-SoA layout
/// must reproduce the scalar arithmetic bit for bit.
template <class Engine>
testing::AssertionResult states_match(const Circuit& c, const CellLibrary& lib,
                                      const VariationModel& var,
                                      const Engine& inc,
                                      const LeakageAnalyzer& leak) {
  const SstaEngine fresh(c, lib, var);
  const SstaResult& got = inc.analyze_ref();
  const SstaResult want = fresh.analyze();

  for (GateId id = 0; id < c.num_gates(); ++id) {
    if (inc.loads().load_ff(id) != fresh.loads().load_ff(id)) {
      return testing::AssertionFailure()
             << "load of gate " << id << " diverged: "
             << inc.loads().load_ff(id) << " vs " << fresh.loads().load_ff(id);
    }
    auto r = same(got.arrival[id], want.arrival[id],
                  ("arrival of gate " + std::to_string(id)).c_str());
    if (!r) return r;
    if (got.criticality[id] != want.criticality[id]) {
      return testing::AssertionFailure()
             << "criticality of gate " << id << " diverged: "
             << got.criticality[id] << " vs " << want.criticality[id];
    }
  }
  auto r = same(got.circuit_delay, want.circuit_delay, "circuit delay");
  if (!r) return r;

  const LeakageAnalyzer fresh_leak(c, lib, var);
  if (leak.mean_na() != fresh_leak.mean_na()) {
    return testing::AssertionFailure()
           << "leakage mean diverged: " << leak.mean_na() << " vs "
           << fresh_leak.mean_na();
  }
  if (leak.quantile_na(0.99) != fresh_leak.quantile_na(0.99)) {
    return testing::AssertionFailure()
           << "leakage p99 diverged: " << leak.quantile_na(0.99) << " vs "
           << fresh_leak.quantile_na(0.99);
  }
  if (leak.distribution().var_na2 != fresh_leak.distribution().var_na2) {
    return testing::AssertionFailure() << "leakage variance diverged";
  }
  return testing::AssertionSuccess();
}

// ------------------------------------------------- randomized move walks ----

/// 1000-step random walk of committed moves, rolled-back trials and
/// committed trials; bit-identity asserted against fresh engines after
/// every step. Instantiated for both incremental engines — the walk and
/// every assertion are identical; only the engine layout differs.
template <class Engine>
void run_random_walk(const CellLibrary& lib, const VariationModel& var,
                     const std::function<Circuit(std::uint64_t)>& make) {
  const auto steps = lib.size_steps();
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    Circuit c = make(seed);
    std::vector<GateId> cells;
    for (GateId id = 0; id < c.num_gates(); ++id) {
      if (c.gate(id).kind != CellKind::kInput) cells.push_back(id);
    }
    Engine inc(c, lib, var);
    LeakageAnalyzer leak(c, lib, var);
    Rng rng(seed * 1000003ull);

    // A saved (gate, size, vth) triple for restoring after a rollback.
    struct Saved {
      GateId id;
      double size;
      Vth vth;
    };

    const auto random_move = [&](GateId id) {
      if (rng.uniform() < 0.5) {
        c.set_size(id, steps[rng.uniform_index(steps.size())]);
        inc.on_resize(id);
      } else {
        const Vth flipped =
            c.gate(id).vth == Vth::kLow ? Vth::kHigh : Vth::kLow;
        c.set_vth(id, flipped);
        inc.on_vth_change(id);
      }
      leak.on_gate_changed(id);
    };

    for (int step = 0; step < 1000; ++step) {
      const double roll = rng.uniform();
      if (roll < 0.55) {
        // Committed single move.
        random_move(cells[rng.uniform_index(cells.size())]);
      } else {
        // Trial of 1-3 moves; half are rolled back, half committed.
        const bool rollback = roll < 0.80;
        const int moves = 1 + static_cast<int>(rng.uniform_index(3));
        std::vector<Saved> saved;
        inc.begin_trial();
        leak.begin_trial();
        for (int m = 0; m < moves; ++m) {
          const GateId id = cells[rng.uniform_index(cells.size())];
          saved.push_back({id, c.gate(id).size, c.gate(id).vth});
          random_move(id);
          // Sometimes query mid-trial so the cone actually retimes inside
          // the trial (exercises the undo log, not just the dirty list).
          if (rng.uniform() < 0.7) (void)inc.circuit_delay();
        }
        if (rollback) {
          inc.rollback_trial();
          leak.rollback_trial();
          for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
            c.set_size(it->id, it->size);
            c.set_vth(it->id, it->vth);
          }
        } else {
          inc.commit_trial();
          leak.commit_trial();
        }
      }
      ASSERT_TRUE(states_match(c, lib, var, inc, leak))
          << "seed " << seed << ", step " << step;
    }
  }
}

TEST_F(SstaIncrementalTest, RandomWalkMatchesFromScratchEverySeed) {
  run_random_walk<SstaEngine>(
      lib_, var_, [this](std::uint64_t seed) { return random_circuit(seed); });
}

/// The flat-SoA engine under the same walk, checked against fresh *scalar*
/// engines: CSR win slices, cached own delays and rollback memcpy restores
/// must reproduce the scalar arithmetic bit for bit after every step.
TEST_F(SstaIncrementalTest, FlatEngineRandomWalkMatchesScalarEverySeed) {
  run_random_walk<FlatSstaEngine>(
      lib_, var_, [this](std::uint64_t seed) { return random_circuit(seed); });
}

/// The same contract with incremental retiming disabled: the toggle must
/// not change a single bit either (it is the benchmark baseline).
TEST_F(SstaIncrementalTest, FullPassModeMatchesToo) {
  Circuit c = random_circuit(7);
  const auto cells = cells_of(c);
  const auto steps = lib_.size_steps();
  SstaEngine eng(c, lib_, var_);
  eng.set_incremental(false);
  LeakageAnalyzer leak(c, lib_, var_);
  Rng rng(99);
  for (int step = 0; step < 100; ++step) {
    const GateId id = cells[rng.uniform_index(cells.size())];
    if (rng.uniform() < 0.5) {
      c.set_size(id, steps[rng.uniform_index(steps.size())]);
      eng.on_resize(id);
    } else {
      c.set_vth(id, c.gate(id).vth == Vth::kLow ? Vth::kHigh : Vth::kLow);
      eng.on_vth_change(id);
    }
    leak.on_gate_changed(id);
    ASSERT_TRUE(states_match(c, lib_, var_, eng, leak)) << "step " << step;
  }
}

/// Full-pass mode on the flat engine: the incremental toggle must not
/// change a bit there either.
TEST_F(SstaIncrementalTest, FlatEngineFullPassModeMatchesToo) {
  Circuit c = random_circuit(7);
  const auto cells = cells_of(c);
  const auto steps = lib_.size_steps();
  FlatSstaEngine eng(c, lib_, var_);
  eng.set_incremental(false);
  LeakageAnalyzer leak(c, lib_, var_);
  Rng rng(99);
  for (int step = 0; step < 100; ++step) {
    const GateId id = cells[rng.uniform_index(cells.size())];
    if (rng.uniform() < 0.5) {
      c.set_size(id, steps[rng.uniform_index(steps.size())]);
      eng.on_resize(id);
    } else {
      c.set_vth(id, c.gate(id).vth == Vth::kLow ? Vth::kHigh : Vth::kLow);
      eng.on_vth_change(id);
    }
    leak.on_gate_changed(id);
    ASSERT_TRUE(states_match(c, lib_, var_, eng, leak)) << "step " << step;
  }
}

// ------------------------------------------------------ trial edge cases ----

/// Rollback-after-trial must restore the engine state *bitwise* — the flat
/// engine's undo path is memcpy of CSR slices plus the own-delay log, and a
/// single missed slot would surface as a one-bit arrival drift here.
TEST_F(SstaIncrementalTest, FlatEngineRejectedTrialRestoresBitwise) {
  Circuit c = random_circuit(3);
  FlatSstaEngine inc(c, lib_, var_);
  LeakageAnalyzer leak(c, lib_, var_);
  (void)inc.analyze();  // prime the caches

  // Capture the committed state exactly as the optimizer sees it.
  const SstaResult before = inc.analyze();
  const GateId victim = cells_of(c).front();
  const Gate saved = c.gate(victim);

  inc.begin_trial();
  leak.begin_trial();
  c.set_size(victim, 8.0);
  inc.on_resize(victim);
  leak.on_gate_changed(victim);
  c.set_vth(victim, Vth::kHigh);
  inc.on_vth_change(victim);
  leak.on_gate_changed(victim);
  (void)inc.circuit_delay();  // force retiming inside the trial
  inc.rollback_trial();
  leak.rollback_trial();
  c.set_size(victim, saved.size);
  c.set_vth(victim, saved.vth);

  EXPECT_FALSE(inc.trial_active());
  const SstaResult after = inc.analyze();
  for (GateId id = 0; id < c.num_gates(); ++id) {
    ASSERT_TRUE(same(after.arrival[id], before.arrival[id],
                     ("post-rollback arrival of gate " + std::to_string(id))
                         .c_str()));
    ASSERT_EQ(after.criticality[id], before.criticality[id]) << "gate " << id;
  }
  ASSERT_TRUE(same(after.circuit_delay, before.circuit_delay,
                   "post-rollback circuit delay"));
  ASSERT_TRUE(states_match(c, lib_, var_, inc, leak));
}

TEST_F(SstaIncrementalTest, FlatEngineRollbackOnUnprimedEngineStaysExact) {
  Circuit c = random_circuit(5);
  FlatSstaEngine inc(c, lib_, var_);  // never queried: trial starts unprimed
  LeakageAnalyzer leak(c, lib_, var_);
  const GateId victim = cells_of(c).back();
  const Gate saved = c.gate(victim);

  inc.begin_trial();
  c.set_size(victim, 4.0);
  inc.on_resize(victim);
  (void)inc.circuit_delay();
  inc.rollback_trial();
  c.set_size(victim, saved.size);

  ASSERT_TRUE(states_match(c, lib_, var_, inc, leak));
}

TEST_F(SstaIncrementalTest, RejectedTrialLeavesCachesCoherent) {
  Circuit c = random_circuit(3);
  SstaEngine inc(c, lib_, var_);
  LeakageAnalyzer leak(c, lib_, var_);
  (void)inc.analyze();  // prime the caches

  const GateId victim = cells_of(c).front();
  const Gate saved = c.gate(victim);

  inc.begin_trial();
  leak.begin_trial();
  c.set_size(victim, 8.0);
  inc.on_resize(victim);
  leak.on_gate_changed(victim);
  c.set_vth(victim, Vth::kHigh);
  inc.on_vth_change(victim);
  leak.on_gate_changed(victim);
  (void)inc.circuit_delay();  // force retiming inside the trial
  inc.rollback_trial();
  leak.rollback_trial();
  c.set_size(victim, saved.size);
  c.set_vth(victim, saved.vth);

  EXPECT_FALSE(inc.trial_active());
  EXPECT_FALSE(leak.trial_active());
  ASSERT_TRUE(states_match(c, lib_, var_, inc, leak));
}

TEST_F(SstaIncrementalTest, RollbackOnUnprimedEngineStaysExact) {
  Circuit c = random_circuit(5);
  SstaEngine inc(c, lib_, var_);  // never queried: trial starts unprimed
  LeakageAnalyzer leak(c, lib_, var_);
  const GateId victim = cells_of(c).back();
  const Gate saved = c.gate(victim);

  inc.begin_trial();
  c.set_size(victim, 4.0);
  inc.on_resize(victim);
  // The first query inside the trial runs a full pass, which invalidates
  // the undo log; rollback must fall back to dropping the cache.
  (void)inc.circuit_delay();
  inc.rollback_trial();
  c.set_size(victim, saved.size);

  ASSERT_TRUE(states_match(c, lib_, var_, inc, leak));
}

TEST_F(SstaIncrementalTest, PendingDirtFromBeforeTheTrialSurvivesRollback) {
  Circuit c = random_circuit(6);
  const auto cells = cells_of(c);
  SstaEngine inc(c, lib_, var_);
  LeakageAnalyzer leak(c, lib_, var_);
  (void)inc.analyze();

  // A committed (but not yet flushed) change...
  c.set_size(cells[1], 6.0);
  inc.on_resize(cells[1]);
  leak.on_gate_changed(cells[1]);

  // ...must not be forgotten when an unrelated trial rolls back.
  const Gate saved = c.gate(cells[2]);
  inc.begin_trial();
  c.set_vth(cells[2], Vth::kHigh);
  inc.on_vth_change(cells[2]);
  inc.rollback_trial();
  c.set_vth(cells[2], saved.vth);

  ASSERT_TRUE(states_match(c, lib_, var_, inc, leak));
}

// -------------------------------------------------- optimizer equivalence ----

/// The statistical optimizer must walk the exact same trajectory with
/// dirty-cone retiming on and off — same move counts, same objective, bit
/// for bit. This is the end-to-end proof that the trial/rollback path of
/// the rejected moves leaves every cache coherent.
TEST_F(SstaIncrementalTest, OptimizerTrajectoryIdenticalWithAndWithoutCones) {
  Circuit inc_circuit = random_circuit(17, 300);
  Circuit full_circuit = random_circuit(17, 300);

  OptConfig cfg;
  cfg.t_max_ps = 1.18 * StaEngine(inc_circuit, lib_).critical_delay_ps();

  cfg.incremental_timing = true;
  const OptResult inc_result =
      StatisticalOptimizer(lib_, var_, cfg).run(inc_circuit);
  cfg.incremental_timing = false;
  const OptResult full_result =
      StatisticalOptimizer(lib_, var_, cfg).run(full_circuit);

  EXPECT_EQ(inc_result.iterations, full_result.iterations);
  EXPECT_EQ(inc_result.sizing_commits, full_result.sizing_commits);
  EXPECT_EQ(inc_result.hvt_commits, full_result.hvt_commits);
  EXPECT_EQ(inc_result.downsize_commits, full_result.downsize_commits);
  EXPECT_EQ(inc_result.rejected_moves, full_result.rejected_moves);
  EXPECT_EQ(inc_result.feasible, full_result.feasible);
  EXPECT_EQ(inc_result.final_objective, full_result.final_objective);

  // And the implementations themselves are identical, gate by gate.
  for (GateId id = 0; id < inc_circuit.num_gates(); ++id) {
    EXPECT_EQ(inc_circuit.gate(id).size, full_circuit.gate(id).size);
    EXPECT_EQ(inc_circuit.gate(id).vth, full_circuit.gate(id).vth);
  }
}

/// Same end-to-end proof for the engine dimension: flat-SoA engine with
/// batched pricing vs scalar engine with per-gate pricing, on a random DAG
/// (the proxy goldens cover the ISCAS shapes; this covers generated ones).
TEST_F(SstaIncrementalTest, OptimizerTrajectoryIdenticalFlatVsScalar) {
  Circuit flat_circuit = random_circuit(23, 300);
  Circuit scalar_circuit = random_circuit(23, 300);

  OptConfig cfg;
  cfg.t_max_ps = 1.18 * StaEngine(flat_circuit, lib_).critical_delay_ps();

  cfg.flat_engine = true;
  const OptResult flat_result =
      StatisticalOptimizer(lib_, var_, cfg).run(flat_circuit);
  cfg.flat_engine = false;
  const OptResult scalar_result =
      StatisticalOptimizer(lib_, var_, cfg).run(scalar_circuit);

  EXPECT_EQ(flat_result.iterations, scalar_result.iterations);
  EXPECT_EQ(flat_result.sizing_commits, scalar_result.sizing_commits);
  EXPECT_EQ(flat_result.hvt_commits, scalar_result.hvt_commits);
  EXPECT_EQ(flat_result.downsize_commits, scalar_result.downsize_commits);
  EXPECT_EQ(flat_result.rejected_moves, scalar_result.rejected_moves);
  EXPECT_EQ(flat_result.feasible, scalar_result.feasible);
  EXPECT_EQ(flat_result.final_objective, scalar_result.final_objective);

  for (GateId id = 0; id < flat_circuit.num_gates(); ++id) {
    EXPECT_EQ(flat_circuit.gate(id).size, scalar_circuit.gate(id).size);
    EXPECT_EQ(flat_circuit.gate(id).vth, scalar_circuit.gate(id).vth);
  }
}

// ------------------------------------------------------- spatial mirror ----

testing::AssertionResult same_vec(const VectorCanonical& a,
                                  const VectorCanonical& b) {
  if (a.mean == b.mean && a.loc == b.loc && a.g == b.g) {
    return testing::AssertionSuccess();
  }
  return testing::AssertionFailure()
         << "vector canonical diverged: mean " << a.mean << " vs " << b.mean
         << ", loc " << a.loc << " vs " << b.loc;
}

TEST_F(SstaIncrementalTest, SpatialEngineRandomWalkMatchesFromScratch) {
  SpatialVariationModel model;
  model.base = var_;
  model.grid = 4;
  model.region_fraction_l = 0.5;
  model.region_fraction_v = 0.25;
  const auto steps = lib_.size_steps();

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Circuit c = random_circuit(seed, 150);
    const auto placement = make_topological_placement(c, seed);
    const auto cells = cells_of(c);
    SpatialSstaEngine inc(c, lib_, model, placement);
    Rng rng(seed + 777);

    for (int step = 0; step < 300; ++step) {
      const double roll = rng.uniform();
      const GateId id = cells[rng.uniform_index(cells.size())];
      if (roll < 0.55) {
        if (rng.uniform() < 0.5) {
          c.set_size(id, steps[rng.uniform_index(steps.size())]);
          inc.on_resize(id);
        } else {
          c.set_vth(id,
                    c.gate(id).vth == Vth::kLow ? Vth::kHigh : Vth::kLow);
          inc.on_vth_change(id);
        }
      } else {
        const Gate saved = c.gate(id);
        inc.begin_trial();
        c.set_size(id, steps[rng.uniform_index(steps.size())]);
        inc.on_resize(id);
        if (rng.uniform() < 0.7) (void)inc.circuit_delay();
        if (roll < 0.8) {
          inc.rollback_trial();
          c.set_size(id, saved.size);
        } else {
          inc.commit_trial();
        }
      }
      const SpatialSstaEngine fresh(c, lib_, model, placement);
      ASSERT_TRUE(same_vec(inc.circuit_delay(), fresh.circuit_delay()))
          << "seed " << seed << ", step " << step;
    }
  }
}

}  // namespace
}  // namespace statleak
