// Distributed campaign runner tests: slot partitioning, the wire
// protocol's exact double round-trip, the first-committed-wins shard merge
// (heterogeneous sizes, out-of-order arrival, duplicated re-dispatch) being
// bit-identical to a single-host run, and a full in-process TCP campaign.
// The fault-injection build adds the worker-kill recovery scenario: a
// worker lost mid-campaign is re-dispatched with zero recomputation of
// committed slots and the merged result still matches single-host exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/driver.hpp"
#include "dist/coordinator.hpp"
#include "dist/net.hpp"
#include "dist/partition.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "gen/arithmetic.hpp"
#include "mc/checkpoint.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/bench_io.hpp"
#include "tech/process.hpp"
#include "util/fault.hpp"

namespace statleak {
namespace {

using dist::SlotRange;

// --- partitioning ------------------------------------------------------------

std::uint64_t covered(const std::vector<SlotRange>& shards) {
  std::uint64_t total = 0;
  std::uint64_t expect_begin = 0;
  for (const SlotRange& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_LT(s.begin, s.end);
    expect_begin = s.end;
    total += s.size();
  }
  return total;
}

TEST(PartitionTest, CoversContiguouslyAndEvenly) {
  const auto shards = dist::partition_samples(1000, 7, 1);
  EXPECT_LE(shards.size(), 7u);
  EXPECT_EQ(covered(shards), 1000u);
  for (const SlotRange& s : shards) {
    EXPECT_GE(s.size(), 1000u / 7);  // even to within the floor
  }
}

TEST(PartitionTest, RespectsMinShardSize) {
  const auto shards = dist::partition_samples(100, 64, 40);
  EXPECT_EQ(covered(shards), 100u);
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    EXPECT_GE(shards[i].size(), 40u);
  }
}

TEST(PartitionTest, ClampsDegenerateArguments) {
  EXPECT_TRUE(dist::partition_samples(0, 4, 1).empty());
  const auto one = dist::partition_samples(5, 0, 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (SlotRange{0, 5}));
}

TEST(PartitionTest, PartitionIsDeterministic) {
  EXPECT_EQ(dist::partition_samples(12345, 13, 7),
            dist::partition_samples(12345, 13, 7));
}

TEST(PartitionTest, UndoneRangesFindsGaps) {
  std::vector<std::uint8_t> done(10, 0);
  done[3] = done[4] = done[7] = 1;
  const auto gaps = dist::undone_ranges(done, SlotRange{2, 9});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (SlotRange{2, 3}));
  EXPECT_EQ(gaps[1], (SlotRange{5, 7}));
  EXPECT_EQ(gaps[2], (SlotRange{8, 9}));
}

TEST(PartitionTest, UndoneRangesEdgeCases) {
  std::vector<std::uint8_t> done(6, 1);
  EXPECT_TRUE(dist::undone_ranges(done, SlotRange{0, 6}).empty());
  std::fill(done.begin(), done.end(), 0);
  const auto all = dist::undone_ranges(done, SlotRange{0, 6});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], (SlotRange{0, 6}));
}

// --- protocol ----------------------------------------------------------------

/// A pipe with both ends wrapped in one MessageStream (loopback).
class Loopback {
 public:
  Loopback() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    read_fd_ = fds[0];
    write_fd_ = fds[1];
  }
  ~Loopback() {
    ::close(read_fd_);
    ::close(write_fd_);
  }
  dist::MessageStream stream() {
    return dist::MessageStream(read_fd_, write_fd_);
  }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

TEST(ProtocolTest, BlockRoundTripIsBitExact) {
  // Values chosen to break any %g-style formatting: shortest-round-trip
  // rendering (std::to_chars) must reproduce every bit pattern.
  // (-0.0 is the one finite double that does not round-trip — obs::Json
  // normalizes it to "0" — but delays/leakages are strictly positive.)
  const std::vector<double> delay = {0.1, 1.0 / 3.0, 1e-300,
                                     4503599627370497.0, 0.0};
  const std::vector<double> leak = {2.5e9, std::numeric_limits<double>::min(),
                                    1.7976931348623157e308, 42.0, 1e-320};
  Loopback pipe;
  auto stream = pipe.stream();
  ASSERT_TRUE(stream.send(dist::block_message(777, delay, leak)));
  const auto msg = stream.read_message(1000);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(dist::message_type(*msg), "block");
  const dist::Block b = dist::parse_block(*msg);
  EXPECT_EQ(b.begin, 777u);
  ASSERT_EQ(b.delay_ps.size(), delay.size());
  ASSERT_EQ(b.leakage_na.size(), leak.size());
  for (std::size_t i = 0; i < delay.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(b.delay_ps[i]),
              std::bit_cast<std::uint64_t>(delay[i]))
        << "delay slot " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(b.leakage_na[i]),
              std::bit_cast<std::uint64_t>(leak[i]))
        << "leak slot " << i;
  }
}

TEST(ProtocolTest, NonFiniteValuesDecodeAsNan) {
  // JSON has no Inf/NaN: they cross as null and decode to quiet NaN, which
  // the finalize pass excises (only reachable under --health quarantine).
  const std::vector<double> delay = {std::numeric_limits<double>::quiet_NaN(),
                                     std::numeric_limits<double>::infinity()};
  const std::vector<double> leak = {1.0, 2.0};
  Loopback pipe;
  auto stream = pipe.stream();
  ASSERT_TRUE(stream.send(dist::block_message(0, delay, leak)));
  const auto msg = stream.read_message(1000);
  ASSERT_TRUE(msg.has_value());
  const dist::Block b = dist::parse_block(*msg);
  EXPECT_TRUE(std::isnan(b.delay_ps[0]));
  EXPECT_TRUE(std::isnan(b.delay_ps[1]));
}

TEST(ProtocolTest, SetupRoundTripPreservesTheStudy) {
  dist::WorkerSetup setup;
  setup.input.bench_text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  setup.input.circuit_name = "tiny";
  setup.input.impl_text = "y 2 hvt\n";
  setup.input.node_nm = 70;
  setup.mc.num_samples = 1234;
  setup.mc.seed = 99;
  setup.mc.sampler = McSampler::kSobol;
  setup.mc.is_shift.l_sigma = 0.125;
  setup.mc.is_shift.v_sigma = 0.375;
  setup.mc.control_variate = true;
  setup.mc.batch_size = 64;
  setup.mc.checkpoint_every = 512;
  setup.mc.deadline_ms = 5000;       // campaign deadline: coordinator-owned
  setup.mc.checkpoint_path = "x.ck"; // checkpointing: coordinator-owned
  setup.t_max_ps = 321.5;
  setup.threads = 3;

  const dist::WorkerSetup out = dist::parse_setup(dist::setup_message(setup));
  EXPECT_EQ(out.input.bench_text, setup.input.bench_text);
  EXPECT_EQ(out.input.circuit_name, "tiny");
  EXPECT_EQ(out.input.impl_text, setup.input.impl_text);
  EXPECT_EQ(out.input.node_nm, 70);
  EXPECT_EQ(out.mc.num_samples, 1234);
  EXPECT_EQ(out.mc.seed, 99u);
  EXPECT_EQ(out.mc.sampler, McSampler::kSobol);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.mc.is_shift.l_sigma),
            std::bit_cast<std::uint64_t>(0.125));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.mc.is_shift.v_sigma),
            std::bit_cast<std::uint64_t>(0.375));
  EXPECT_TRUE(out.mc.control_variate);
  EXPECT_EQ(out.mc.batch_size, 64);
  EXPECT_EQ(out.mc.checkpoint_every, 512);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.t_max_ps),
            std::bit_cast<std::uint64_t>(321.5));
  EXPECT_EQ(out.threads, 3);
  EXPECT_EQ(out.mc.num_threads, 3);
  // Worker-side copies never own the deadline or the checkpoint file.
  EXPECT_EQ(out.mc.deadline_ms, 0);
  EXPECT_TRUE(out.mc.checkpoint_path.empty());
}

TEST(ProtocolTest, ControlMessageTypes) {
  EXPECT_EQ(dist::message_type(dist::hello_message()), "hello");
  EXPECT_EQ(dist::message_type(dist::stop_message()), "stop");
  EXPECT_EQ(dist::message_type(dist::error_message("boom")), "error");
  const obs::Json shard = dist::shard_message(10, 20);
  EXPECT_EQ(dist::message_type(shard), "shard");
  EXPECT_EQ(shard.at("begin").as_number(), 10.0);
  EXPECT_EQ(shard.at("end").as_number(), 20.0);
  const obs::Json done = dist::shard_done_message(10, 20, true, 10);
  EXPECT_EQ(dist::message_type(done), "shard_done");
}

TEST(ProtocolTest, MalformedLineThrowsDistError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  dist::MessageStream reader(fds[0], fds[1]);
  // Hand-write a non-JSON line into the reader's fd.
  ASSERT_EQ(::write(fds[1], "not json\n", 9), 9);
  EXPECT_THROW(reader.read_message(1000), dist::DistError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, ReadMessageTimesOutCleanly) {
  Loopback pipe;
  auto stream = pipe.stream();
  EXPECT_FALSE(stream.read_message(10).has_value());
  EXPECT_FALSE(stream.eof());  // timeout, not EOF
}

// --- merge bit-identity ------------------------------------------------------

class MergeTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
  Circuit circuit_ = make_ripple_carry_adder(16);

  McConfig config() const {
    McConfig cfg;
    cfg.num_samples = 400;
    cfg.seed = 11;
    cfg.num_threads = 2;
    return cfg;
  }

  /// First-committed-wins, exactly the coordinator's commit rule.
  static void commit(McPopulation& pop, const McShardResult& shard) {
    for (std::uint64_t s = shard.begin; s < shard.end; ++s) {
      const std::uint64_t local = s - shard.begin;
      if (shard.done[local] == 0 || pop.done[s] != 0) continue;
      pop.delay_ps[s] = shard.delay_ps[local];
      pop.leakage_na[s] = shard.leakage_na[local];
      pop.done[s] = 1;
    }
  }

  static void expect_bit_identical(const McResult& a, const McResult& b) {
    ASSERT_EQ(a.delay_ps.size(), b.delay_ps.size());
    ASSERT_EQ(a.leakage_na.size(), b.leakage_na.size());
    for (std::size_t i = 0; i < a.delay_ps.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a.delay_ps[i]),
                std::bit_cast<std::uint64_t>(b.delay_ps[i]))
          << "delay slot " << i;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a.leakage_na[i]),
                std::bit_cast<std::uint64_t>(b.leakage_na[i]))
          << "leakage slot " << i;
    }
  }
};

TEST_F(MergeTest, HeterogeneousOutOfOrderShardsMatchSingleHost) {
  const McConfig cfg = config();
  const McResult reference = run_monte_carlo(circuit_, lib_, var_, cfg);

  // Unequal shard sizes, committed out of slot order, plus one duplicated
  // (re-dispatched) shard overlapping two others: first-committed-wins
  // must yield the single-host population exactly.
  const std::uint64_t n = static_cast<std::uint64_t>(cfg.num_samples);
  McPopulation pop;
  pop.delay_ps.assign(n, 0.0);
  pop.leakage_na.assign(n, 0.0);
  pop.done.assign(n, 0);

  const std::vector<SlotRange> shards = {
      {140, 400},  // largest shard lands first
      {0, 137},
      {100, 200},  // straggler duplicate: only [137, 140) is new
  };
  std::uint64_t duplicates = 0;
  for (const SlotRange& r : shards) {
    const McShardResult shard =
        run_monte_carlo_shard(circuit_, lib_, var_, cfg, r.begin, r.end);
    for (std::uint64_t s = r.begin; s < r.end; ++s) {
      duplicates += pop.done[s] != 0 ? 1 : 0;
    }
    commit(pop, shard);
  }
  EXPECT_EQ(duplicates, 97u);  // slots 100..137 and 140..200 recomputed
  const McResult merged =
      finalize_mc_population(circuit_, lib_, var_, cfg, std::move(pop));
  expect_bit_identical(reference, merged);
}

TEST_F(MergeTest, ApiCampaignFinalizeMatchesRunMcCommand) {
  std::ostringstream bench;
  write_bench(bench, circuit_);

  api::McCommandConfig cmd;
  cmd.input.bench_text = bench.str();
  cmd.input.circuit_name = circuit_.name();
  cmd.mc = config();
  cmd.t_max_ps = 0.0;  // resolved by the facade, once, for both paths
  const api::McCommandResult reference = api::run_mc_command(cmd);

  const api::McStudy study = api::prepare_mc_study(cmd);
  const std::uint64_t n = static_cast<std::uint64_t>(study.mc.num_samples);
  McPopulation pop;
  pop.delay_ps.assign(n, 0.0);
  pop.leakage_na.assign(n, 0.0);
  pop.done.assign(n, 0);
  for (const SlotRange& r : dist::partition_samples(n, 5, 1)) {
    commit(pop, run_monte_carlo_shard(study.study.circuit, study.study.lib,
                                      study.study.var, study.mc, r.begin,
                                      r.end));
  }
  const api::McCommandResult merged =
      api::finalize_mc_campaign(study, std::move(pop));
  expect_bit_identical(reference.result, merged.result);
  // The human-readable stats block is shared too — byte-compare it.
  EXPECT_EQ(api::mc_summary_text(reference), api::mc_summary_text(merged));
}

TEST(RangeValidationTest, RejectsOutOfBoundsShards) {
  EXPECT_NO_THROW(validate_checkpoint_range(0, 10, 10));
  EXPECT_THROW(validate_checkpoint_range(5, 6, 10), CheckpointError);
  EXPECT_THROW(validate_checkpoint_range(10, 1, 10), CheckpointError);
  EXPECT_THROW(validate_checkpoint_range(0, 0, 10), CheckpointError);
}

// --- in-process campaigns ----------------------------------------------------

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Runs a TCP-mode campaign entirely in this process: the coordinator on
/// this thread's stack would deadlock waiting for connections, so it runs
/// in a thread and `worker_count` dist::run_worker loops connect to it.
dist::CampaignResult run_tcp_campaign(const api::McCommandConfig& cmd,
                                      dist::DistConfig dc, int worker_count) {
  // ctest runs each test in its own process but a shared working
  // directory — the port file must be per-process to allow -j runs.
  TempFile port_file("dist_test_port." + std::to_string(::getpid()) +
                     ".txt");
  dc.listen = "127.0.0.1:0";
  dc.port_file = port_file.path();

  dist::CampaignResult result;
  std::exception_ptr coordinator_error;
  std::thread coordinator([&] {
    try {
      result = dist::run_campaign(cmd, dc);
    } catch (...) {
      coordinator_error = std::current_exception();
    }
  });

  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::ifstream pf(port_file.path());
    std::getline(pf, port);
    if (port.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_FALSE(port.empty()) << "coordinator never wrote the port file";

  std::vector<std::thread> workers;
  for (int i = 0; i < worker_count; ++i) {
    workers.emplace_back([&port] {
      dist::WorkerOptions wo;
      wo.connect = "127.0.0.1:" + port;
      dist::run_worker(wo);
    });
  }
  coordinator.join();
  for (std::thread& w : workers) w.join();
  if (coordinator_error) std::rethrow_exception(coordinator_error);
  return result;
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef STATLEAK_FAULT_INJECTION
    fault::reset();
#endif
    std::ostringstream bench;
    write_bench(bench, make_carry_lookahead_adder(16));
    cmd_.input.bench_text = bench.str();
    cmd_.input.circuit_name = "cla16";
    cmd_.mc.num_samples = 600;
    cmd_.mc.seed = 21;
    cmd_.mc.checkpoint_every = 64;  // several blocks per shard
  }
  void TearDown() override {
#ifdef STATLEAK_FAULT_INJECTION
    fault::reset();
#endif
  }

  api::McCommandConfig cmd_;
};

TEST_F(CampaignTest, TcpCampaignIsByteIdenticalToSingleHost) {
  const api::McCommandResult reference = api::run_mc_command(cmd_);

  dist::DistConfig dc;
  dc.workers = 2;
  dc.worker_threads = 1;
  const dist::CampaignResult campaign = run_tcp_campaign(cmd_, dc, 2);

  EXPECT_EQ(campaign.workers_spawned, 2);
  EXPECT_EQ(campaign.workers_lost, 0);
  EXPECT_GE(campaign.shards_dispatched, 2u);
  EXPECT_EQ(campaign.slots_recomputed, 0u);
  ASSERT_EQ(campaign.command.result.delay_ps.size(),
            reference.result.delay_ps.size());
  for (std::size_t i = 0; i < reference.result.delay_ps.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(campaign.command.result.delay_ps[i]),
              std::bit_cast<std::uint64_t>(reference.result.delay_ps[i]));
    ASSERT_EQ(
        std::bit_cast<std::uint64_t>(campaign.command.result.leakage_na[i]),
        std::bit_cast<std::uint64_t>(reference.result.leakage_na[i]));
  }
  EXPECT_EQ(api::mc_summary_text(campaign.command),
            api::mc_summary_text(reference));
}

/// Reserves an ephemeral port and releases it so the test can hand the
/// same number to a worker (connecting) and a coordinator (binding later).
int reserve_port() {
  int port = 0;
  const int fd = dist::listen_tcp("127.0.0.1:0", &port);
  ::close(fd);
  return port;
}

TEST_F(CampaignTest, WorkersSurviveCoordinatorStartingLate) {
  const api::McCommandResult reference = api::run_mc_command(cmd_);

  // Deliberately lose the startup race: the workers connect first, so
  // their early attempts are refused, and only connect_tcp's bounded
  // backoff keeps them alive until the coordinator binds ~100 ms later.
  const int port = reserve_port();
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([port] {
      dist::WorkerOptions wo;
      wo.connect = "127.0.0.1:" + std::to_string(port);
      dist::run_worker(wo);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  dist::DistConfig dc;
  dc.workers = 2;
  dc.worker_threads = 1;
  dc.listen = "127.0.0.1:" + std::to_string(port);
  const dist::CampaignResult campaign = dist::run_campaign(cmd_, dc);
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(campaign.workers_spawned, 2);
  EXPECT_EQ(campaign.workers_lost, 0);
  ASSERT_EQ(campaign.command.result.delay_ps.size(),
            reference.result.delay_ps.size());
  for (std::size_t i = 0; i < reference.result.delay_ps.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(campaign.command.result.delay_ps[i]),
              std::bit_cast<std::uint64_t>(reference.result.delay_ps[i]));
    ASSERT_EQ(
        std::bit_cast<std::uint64_t>(campaign.command.result.leakage_na[i]),
        std::bit_cast<std::uint64_t>(reference.result.leakage_na[i]));
  }
  EXPECT_EQ(api::mc_summary_text(campaign.command),
            api::mc_summary_text(reference));
}

TEST(ConnectRetryTest, PersistentRefusalStillFailsAfterBackoff) {
  // No listener ever appears on the reserved port: the backoff ladder must
  // run dry (~1.3 s) and surface the original connect error, not hang.
  const int port = reserve_port();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(dist::connect_tcp("127.0.0.1:" + std::to_string(port)),
               dist::DistError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

#ifdef STATLEAK_FAULT_INJECTION

TEST_F(CampaignTest, WorkerKillRecoveryRecomputesNothingCommitted) {
  const api::McCommandResult reference = api::run_mc_command(cmd_);

  // The coordinator kills whichever worker sent committed block #2 and
  // drops that block (simulating death mid-send). Its shard's undone
  // sub-ranges are re-dispatched; committed slots must never be recomputed.
  fault::arm(fault::Point::kWorkerExit, 2, 1);

  dist::DistConfig dc;
  dc.workers = 2;
  dc.worker_threads = 1;
  const dist::CampaignResult campaign = run_tcp_campaign(cmd_, dc, 2);

  EXPECT_EQ(fault::fired_count(fault::Point::kWorkerExit), 1);
  EXPECT_EQ(campaign.workers_lost, 1);
  EXPECT_GE(campaign.shards_redispatched, 1u);
  EXPECT_EQ(campaign.slots_recomputed, 0u);
  ASSERT_EQ(campaign.command.result.delay_ps.size(),
            reference.result.delay_ps.size());
  for (std::size_t i = 0; i < reference.result.delay_ps.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(campaign.command.result.delay_ps[i]),
              std::bit_cast<std::uint64_t>(reference.result.delay_ps[i]));
    ASSERT_EQ(
        std::bit_cast<std::uint64_t>(campaign.command.result.leakage_na[i]),
        std::bit_cast<std::uint64_t>(reference.result.leakage_na[i]));
  }
  EXPECT_EQ(api::mc_summary_text(campaign.command),
            api::mc_summary_text(reference));
}

#endif  // STATLEAK_FAULT_INJECTION

}  // namespace
}  // namespace statleak
