// Fault-injection harness tests (compiled only with
// -DSTATLEAK_FAULT_INJECTION=ON): every injection point is armed and its
// degradation path proven end to end — NaN quarantine / fail-fast, short
// checkpoint writes surviving as dropped tails, shard stalls tripping the
// deadline, and the optimizer dying mid-assignment-phase then resuming its
// journal bit-identically. Injections are addressed and deterministic, so
// each scenario reproduces exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "gen/arithmetic.hpp"
#include "mc/checkpoint.hpp"
#include "mc/monte_carlo.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "tech/process.hpp"
#include "util/fault.hpp"
#include "util/health.hpp"

namespace statleak {
namespace {

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
  Circuit circuit_ = make_ripple_carry_adder(8);

  McConfig base_config() const {
    McConfig cfg;
    cfg.num_samples = 300;
    cfg.seed = 5;
    return cfg;
  }
};

TEST_F(FaultTest, BuildModeIsOn) {
  // This binary only exists in fault-injection builds.
  EXPECT_STREQ(fault::build_mode(), "on");
}

TEST_F(FaultTest, ArmCountAndResetSemantics) {
  fault::arm(fault::Point::kNanDeviate, 5, 2);
  EXPECT_FALSE(fault::fires(fault::Point::kNanDeviate, 4));  // wrong address
  EXPECT_TRUE(fault::fires(fault::Point::kNanDeviate, 5));
  EXPECT_TRUE(fault::fires(fault::Point::kNanDeviate, 5));
  EXPECT_FALSE(fault::fires(fault::Point::kNanDeviate, 5));  // count spent
  EXPECT_EQ(fault::fired_count(fault::Point::kNanDeviate), 2);
  EXPECT_EQ(fault::fired_count(fault::Point::kShortWrite), 0);

  fault::reset();
  EXPECT_FALSE(fault::fires(fault::Point::kNanDeviate, 5));
  EXPECT_EQ(fault::fired_count(fault::Point::kNanDeviate), 0);
}

TEST_F(FaultTest, NanDeviateFailsFastByDefault) {
  fault::arm(fault::Point::kNanDeviate, 17);
  const McConfig cfg = base_config();
  EXPECT_THROW((void)run_monte_carlo(circuit_, lib_, var_, cfg),
               NumericalError);
  EXPECT_EQ(fault::fired_count(fault::Point::kNanDeviate), 1);
}

TEST_F(FaultTest, NanDeviateQuarantinedAndExcised) {
  const McConfig clean_cfg = base_config();
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, clean_cfg);

  fault::arm(fault::Point::kNanDeviate, 17);
  McConfig cfg = base_config();
  cfg.health_policy = HealthPolicy::kQuarantine;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);

  ASSERT_EQ(res.quarantined.size(), 1u);
  EXPECT_EQ(res.quarantined[0].slot, 17u);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.samples_done, ref.delay_ps.size());
  ASSERT_EQ(res.delay_ps.size(), ref.delay_ps.size() - 1);
  // Only the poisoned slot is missing; every survivor is bitwise what the
  // clean run produced.
  for (std::size_t i = 0, out = 0; i < ref.delay_ps.size(); ++i) {
    if (i == 17) continue;
    ASSERT_EQ(ref.delay_ps[i], res.delay_ps[out]) << "slot " << i;
    ASSERT_EQ(ref.leakage_na[i], res.leakage_na[out]) << "slot " << i;
    ++out;
  }
}

TEST_F(FaultTest, QuarantineIdenticalAcrossEngines) {
  // The same injected fault quarantines the same slot and leaves the same
  // survivors whichever engine evaluates the population.
  McConfig cfg = base_config();
  cfg.health_policy = HealthPolicy::kQuarantine;

  fault::arm(fault::Point::kNanDeviate, 42, /*count=*/-1);
  cfg.use_batched = true;
  const McResult batched = run_monte_carlo(circuit_, lib_, var_, cfg);
  cfg.use_batched = false;
  const McResult scalar = run_monte_carlo(circuit_, lib_, var_, cfg);

  ASSERT_EQ(batched.quarantined.size(), 1u);
  ASSERT_EQ(scalar.quarantined.size(), 1u);
  EXPECT_EQ(batched.quarantined[0].slot, scalar.quarantined[0].slot);
  EXPECT_EQ(batched.quarantined[0].cause, scalar.quarantined[0].cause);
  ASSERT_EQ(batched.delay_ps.size(), scalar.delay_ps.size());
  for (std::size_t i = 0; i < batched.delay_ps.size(); ++i) {
    ASSERT_EQ(batched.delay_ps[i], scalar.delay_ps[i]) << "sample " << i;
    ASSERT_EQ(batched.leakage_na[i], scalar.leakage_na[i]) << "sample " << i;
  }
}

TEST_F(FaultTest, ShortWriteLeavesDroppedTailAndResumesCleanly) {
  // Kill the writer mid-flush on its third record: the torn bytes land past
  // committed_bytes, the header never advances, and the writer plays dead —
  // exactly a process that died mid-checkpoint. The file still loads (tail
  // dropped), and a resume completes to the bit-identical population.
  const McConfig clean_cfg = base_config();
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, clean_cfg);

  TempFile f("fault_shortwrite.bin");
  fault::arm(fault::Point::kShortWrite, 2);
  McConfig cfg = base_config();
  cfg.checkpoint_path = f.path();
  cfg.checkpoint_every = 32;
  cfg.num_threads = 1;  // deterministic append order
  const McResult first = run_monte_carlo(circuit_, lib_, var_, cfg);
  EXPECT_TRUE(first.completed);  // the run survives; only the file is short
  EXPECT_EQ(fault::fired_count(fault::Point::kShortWrite), 1);

  fault::reset();
  McConfig resume_cfg = base_config();
  resume_cfg.checkpoint_path = f.path();
  const McResult res = run_monte_carlo(circuit_, lib_, var_, resume_cfg);
  EXPECT_TRUE(res.completed);
  // Exactly the two committed records were restored — at least the cadence
  // worth of samples each, and nothing from the torn third record onward.
  EXPECT_GE(res.samples_restored, 64u);
  EXPECT_LT(res.samples_restored,
            static_cast<std::uint64_t>(clean_cfg.num_samples));
  ASSERT_EQ(res.delay_ps.size(), ref.delay_ps.size());
  for (std::size_t i = 0; i < ref.delay_ps.size(); ++i) {
    ASSERT_EQ(ref.delay_ps[i], res.delay_ps[i]) << "sample " << i;
    ASSERT_EQ(ref.leakage_na[i], res.leakage_na[i]) << "sample " << i;
  }
}

TEST_F(FaultTest, ShortWriteKillsWriterNotRun) {
  TempFile f("fault_writer_dead.bin");
  fault::arm(fault::Point::kShortWrite, 0);  // die on the very first record
  auto w = CheckpointWriter::create(f.path(), 1234, 10);
  const std::vector<double> vals = {1.0, 2.0};
  w->append(0, vals, vals);
  EXPECT_FALSE(w->healthy());
  EXPECT_EQ(w->records_appended(), 0u);
  w->append(2, vals, vals);  // silently dropped, like a dead process
  EXPECT_EQ(w->records_appended(), 0u);

  // Nothing was committed; the file is a valid, empty checkpoint with a
  // torn tail.
  const CheckpointData data = load_checkpoint(f.path(), 1234, 10);
  EXPECT_EQ(data.done_count, 0u);
  EXPECT_GT(data.dropped_tail_bytes, 0u);
}

struct Implementation {
  std::vector<double> sizes;
  std::vector<Vth> vths;
};

Implementation snapshot(const Circuit& c) {
  Implementation impl;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    impl.sizes.push_back(c.gate(id).size);
    impl.vths.push_back(c.gate(id).vth);
  }
  return impl;
}

class OptFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    Circuit probe = make_ripple_carry_adder(16);
    base_.t_max_ps = 1.15 * min_achievable_delay_ps(probe, lib_);
    base_.checkpoint_every = 20;
  }

  Circuit fresh_circuit() const { return make_ripple_carry_adder(16); }

  OptResult run(const OptConfig& cfg, Circuit& c) {
    return StatisticalOptimizer(lib_, var_, cfg).run(c);
  }

  void expect_matches_reference(const OptResult& ref,
                                const Implementation& ref_impl,
                                const OptResult& res, const Circuit& c) {
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.iterations, ref.iterations);
    EXPECT_EQ(res.sizing_commits, ref.sizing_commits);
    EXPECT_EQ(res.hvt_commits, ref.hvt_commits);
    EXPECT_EQ(res.downsize_commits, ref.downsize_commits);
    EXPECT_EQ(res.rejected_moves, ref.rejected_moves);
    EXPECT_EQ(res.final_objective, ref.final_objective);  // bitwise
    const Implementation impl = snapshot(c);
    EXPECT_EQ(impl.sizes, ref_impl.sizes);
    EXPECT_TRUE(impl.vths == ref_impl.vths);
  }

  OptConfig base_;
};

TEST_F(OptFaultTest, AssignPhaseKillThenResumeBitIdentical) {
  // The headline crash drill: the process "dies" (InjectedCrash) right
  // after the journal committed the 4th accepted assignment-phase move —
  // mid-phase, state strewn across lock masks and round counters. The
  // journal is exactly the committed prefix; the resume replays it and
  // finishes bit-identically to a run that never crashed.
  Circuit ref_c = fresh_circuit();
  const OptResult ref = run(base_, ref_c);
  const Implementation ref_impl = snapshot(ref_c);
  ASSERT_GT(ref.hvt_commits + ref.downsize_commits, 4);

  TempFile f("fault_opt_kill.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  fault::arm(fault::Point::kOptAssignKill, 4);
  {
    Circuit c = fresh_circuit();
    EXPECT_THROW((void)run(cfg, c), fault::InjectedCrash);
  }
  EXPECT_EQ(fault::fired_count(fault::Point::kOptAssignKill), 1);

  fault::reset();
  Circuit c = fresh_circuit();
  const OptResult res = run(cfg, c);
  EXPECT_GT(res.replayed_moves, 0);
  expect_matches_reference(ref, ref_impl, res, c);
}

TEST_F(OptFaultTest, JournalShortWriteDropsTailAndResumes) {
  // A short write tears the Nth journal record mid-flush: the writer plays
  // dead (the rest of the run journals nothing, like a dead disk), the run
  // itself still completes, and the torn bytes sit past committed_bytes.
  // Resuming from that prefix re-scans the un-journaled remainder and lands
  // on the bit-identical result.
  Circuit ref_c = fresh_circuit();
  const OptResult ref = run(base_, ref_c);
  const Implementation ref_impl = snapshot(ref_c);

  TempFile f("fault_opt_shortwrite.bin");
  OptConfig cfg = base_;
  cfg.checkpoint_path = f.path();
  fault::arm(fault::Point::kShortWrite, 9);
  {
    Circuit c = fresh_circuit();
    const OptResult first = run(cfg, c);
    EXPECT_TRUE(first.completed);  // only the journal died, not the run
  }
  EXPECT_EQ(fault::fired_count(fault::Point::kShortWrite), 1);

  fault::reset();
  Circuit c = fresh_circuit();
  const OptResult res = run(cfg, c);
  EXPECT_EQ(res.replayed_moves, 9);  // exactly the committed prefix
  expect_matches_reference(ref, ref_impl, res, c);
}

TEST_F(FaultTest, ShardStallTripsTheDeadline) {
  // A stalled shard (address 0 stalls 200 ms) against a 40 ms budget: the
  // loop notices at the next block boundary, stops cleanly, and flags the
  // partial result — no exception, no hang.
  fault::arm(fault::Point::kShardStall, 0);
  fault::set_stall_ms(200);
  McConfig cfg = base_config();
  cfg.num_samples = 50000;
  cfg.deadline_ms = 40;
  cfg.num_threads = 1;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
  EXPECT_EQ(fault::fired_count(fault::Point::kShardStall), 1);
  EXPECT_FALSE(res.completed);
  EXPECT_LT(res.samples_done, res.samples_requested);
  EXPECT_EQ(res.delay_ps.size(), res.samples_done);
}

}  // namespace
}  // namespace statleak
