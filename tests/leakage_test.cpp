// Unit tests for the statistical leakage engine: per-gate lognormal moments,
// the Wilkinson correlated sum, incremental updates, and agreement with
// Monte Carlo — including the quadratic-exponent extension.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/arithmetic.hpp"
#include "gen/random_dag.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {
namespace {

class LeakageTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_F(LeakageTest, GateMomentsClosedForm) {
  const LeakageModel model(lib_, var_);
  const double nominal = lib_.leakage_na(CellKind::kInv, Vth::kLow, 1.0);
  const GateLeakMoments m =
      model.gate_moments(CellKind::kInv, Vth::kLow, 1.0);
  const double s2 = model.log_sigma2();
  EXPECT_NEAR(m.mean_na, nominal * std::exp(0.5 * s2), nominal * 1e-9);
  EXPECT_NEAR(m.var_na2,
              nominal * nominal * std::exp(s2) * (std::exp(s2) - 1.0),
              m.var_na2 * 1e-6);
}

TEST_F(LeakageTest, MeanExceedsNominalUnderVariation) {
  // The paper's core observation: E[leakage] > nominal leakage because the
  // exponential amplifies the fast tail.
  const LeakageModel model(lib_, var_);
  const GateLeakMoments m =
      model.gate_moments(CellKind::kNand2, Vth::kLow, 2.0);
  EXPECT_GT(m.mean_na, lib_.leakage_na(CellKind::kNand2, Vth::kLow, 2.0));
}

TEST_F(LeakageTest, LogCovarianceIsInterDieShare) {
  const LeakageModel model(lib_, var_);
  EXPECT_GT(model.log_cov_global(), 0.0);
  EXPECT_LT(model.log_cov_global(), model.log_sigma2());
}

TEST_F(LeakageTest, AnalyzerMeanIsSumOfGateMeans) {
  const Circuit c = make_ripple_carry_adder(8);
  const LeakageAnalyzer an(c, lib_, var_);
  const LeakageModel model(lib_, var_);
  double sum = 0.0;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    sum += model.gate_moments(g.kind, g.vth, g.size).mean_na;
  }
  EXPECT_NEAR(an.mean_na(), sum, sum * 1e-12);
}

TEST_F(LeakageTest, NominalBelowMean) {
  const Circuit c = make_ripple_carry_adder(8);
  const LeakageAnalyzer an(c, lib_, var_);
  EXPECT_LT(an.nominal_na(), an.mean_na());
}

TEST_F(LeakageTest, ZeroVariationDegenerates) {
  const Circuit c = make_ripple_carry_adder(6);
  const VariationModel none = VariationModel::none();
  const LeakageAnalyzer an(c, lib_, none);
  const LeakageDistribution d = an.distribution();
  EXPECT_NEAR(d.mean_na, an.nominal_na(), 1e-9);
  EXPECT_NEAR(d.stddev_na(), 0.0, 1e-6);
  EXPECT_NEAR(an.quantile_na(0.99), an.nominal_na(), an.nominal_na() * 1e-3);
}

TEST_F(LeakageTest, CorrelationInflatesVariance) {
  // The Wilkinson variance with shared inter-die terms must exceed the
  // independent-sum variance.
  const Circuit c = make_ripple_carry_adder(8);
  const LeakageAnalyzer an(c, lib_, var_);
  const LeakageModel model(lib_, var_);
  double indep_var = 0.0;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    indep_var += model.gate_moments(g.kind, g.vth, g.size).var_na2;
  }
  EXPECT_GT(an.distribution().var_na2, 1.5 * indep_var);
}

TEST_F(LeakageTest, MatchesMonteCarloMoments) {
  const Circuit c = make_carry_lookahead_adder(10);
  const LeakageAnalyzer an(c, lib_, var_);
  const LeakageDistribution d = an.distribution();

  McConfig mc;
  mc.num_samples = 12000;
  mc.seed = 11;
  const McResult res = run_monte_carlo(c, lib_, var_, mc);
  const SampleSummary s = res.leakage_summary();

  EXPECT_NEAR(d.mean_na, s.mean, 0.03 * s.mean);
  EXPECT_NEAR(d.stddev_na(), s.stddev, 0.1 * s.stddev);
  EXPECT_NEAR(d.quantile_na(0.95), res.leakage_quantile_na(0.95),
              0.08 * res.leakage_quantile_na(0.95));
  EXPECT_NEAR(d.quantile_na(0.99), res.leakage_quantile_na(0.99),
              0.10 * res.leakage_quantile_na(0.99));
}

TEST_F(LeakageTest, IncrementalEqualsRebuild) {
  Circuit c = make_carry_lookahead_adder(8);
  LeakageAnalyzer an(c, lib_, var_);
  Rng rng(41);
  const auto steps = lib_.size_steps();
  for (int trial = 0; trial < 100; ++trial) {
    GateId id = static_cast<GateId>(rng.uniform_index(c.num_gates()));
    if (c.gate(id).kind == CellKind::kInput) continue;
    c.set_size(id, steps[rng.uniform_index(steps.size())]);
    c.set_vth(id, rng.uniform_index(2) ? Vth::kHigh : Vth::kLow);
    an.on_gate_changed(id);
  }
  LeakageAnalyzer fresh(c, lib_, var_);
  EXPECT_NEAR(an.mean_na(), fresh.mean_na(), fresh.mean_na() * 1e-9);
  EXPECT_NEAR(an.distribution().var_na2, fresh.distribution().var_na2,
              fresh.distribution().var_na2 * 1e-9);
  EXPECT_NEAR(an.quantile_na(0.99), fresh.quantile_na(0.99),
              fresh.quantile_na(0.99) * 1e-9);
}

TEST_F(LeakageTest, QuantileIfPredictsCommittedMove) {
  Circuit c = make_ripple_carry_adder(6);
  LeakageAnalyzer an(c, lib_, var_);
  const GateId target = c.find("XOR2_0") != kInvalidGate
                            ? c.find("XOR2_0")
                            : c.outputs()[0];
  const double predicted = an.quantile_if_na(target, Vth::kHigh, 2.0, 0.99);
  c.set_vth(target, Vth::kHigh);
  c.set_size(target, 2.0);
  an.on_gate_changed(target);
  EXPECT_NEAR(an.quantile_na(0.99), predicted, predicted * 1e-9);
}

TEST_F(LeakageTest, QuantileIfDoesNotMutate) {
  const Circuit c = make_ripple_carry_adder(4);
  LeakageAnalyzer an(c, lib_, var_);
  const double before = an.quantile_na(0.99);
  (void)an.quantile_if_na(c.outputs()[0], Vth::kHigh, 4.0, 0.99);
  EXPECT_DOUBLE_EQ(an.quantile_na(0.99), before);
}

TEST_F(LeakageTest, HvtCircuitLeaksLess) {
  Circuit c = make_ripple_carry_adder(8);
  const LeakageAnalyzer lvt(c, lib_, var_);
  const double lvt_p99 = lvt.quantile_na(0.99);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    if (c.gate(id).kind != CellKind::kInput) c.set_vth(id, Vth::kHigh);
  }
  const LeakageAnalyzer hvt(c, lib_, var_);
  EXPECT_LT(hvt.quantile_na(0.99), lvt_p99 / 5.0);
}

TEST_F(LeakageTest, SampleEvaluationMatchesLibrary) {
  const Circuit c = make_ripple_carry_adder(4);
  const LeakageAnalyzer an(c, lib_, var_);
  std::vector<ParamSample> samples(c.num_gates(), ParamSample{1.0, -0.005});
  double expected = 0.0;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    expected += lib_.leakage_na(g.kind, g.vth, g.size, 1.0, -0.005);
  }
  EXPECT_NEAR(an.total_sample_na(samples), expected, expected * 1e-12);
}

TEST(LeakageQuadratic, ModelTracksMonteCarlo) {
  // Enable the second-order channel-length exponent and verify the
  // moment-corrected analytic mean still tracks MC.
  ProcessNode node = generic_100nm();
  node.leak_quadratic_per_nm2 = 0.01;
  const CellLibrary lib(node);
  const VariationModel var = VariationModel::typical_100nm();
  const Circuit c = make_ripple_carry_adder(6);
  const LeakageAnalyzer an(c, lib, var);

  McConfig mc;
  mc.num_samples = 20000;
  mc.seed = 17;
  const McResult res = run_monte_carlo(c, lib, var, mc);
  EXPECT_NEAR(an.mean_na(), res.leakage_summary().mean,
              0.05 * res.leakage_summary().mean);
}

TEST(LeakageQuadratic, RejectsDivergentExponent) {
  // 2*q*sigma_L^2 >= 1 makes E[exp] diverge; the model must refuse.
  ProcessNode node = generic_100nm();
  node.leak_quadratic_per_nm2 = 0.2;  // 2*0.2*9 = 3.6 > 1 at sigma_L = 3 nm
  const CellLibrary lib(node);
  const VariationModel var = VariationModel::typical_100nm();
  EXPECT_THROW((void)LeakageModel(lib, var), Error);
}

}  // namespace
}  // namespace statleak
