// Unit tests for the optimizers: constraint satisfaction, objective
// improvement, guard rails, and the deterministic-vs-statistical contrast
// that is the paper's subject.

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "opt/deterministic.hpp"
#include "opt/metrics.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class OptTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();

  double loose_target(const Circuit& c) const {
    // A target comfortably above the min-size all-LVT delay.
    return 1.4 * StaEngine(c, lib_).critical_delay_ps();
  }
};

TEST_F(OptTest, ResetImplementation) {
  Circuit c = make_ripple_carry_adder(4);
  c.set_vth(c.outputs()[0], Vth::kHigh);
  c.set_size(c.outputs()[0], 8.0);
  reset_implementation(c, lib_);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    EXPECT_EQ(g.vth, Vth::kLow);
    EXPECT_DOUBLE_EQ(g.size, lib_.size_steps().front());
  }
}

TEST_F(OptTest, MetricsFieldsConsistent) {
  Circuit c = make_ripple_carry_adder(6);
  const CircuitMetrics m = measure_metrics(c, lib_, var_, 1000.0);
  EXPECT_GT(m.nominal_delay_ps, 0.0);
  EXPECT_GT(m.corner3_delay_ps, m.nominal_delay_ps);
  EXPECT_GT(m.leakage_mean_na, m.leakage_nominal_na);
  EXPECT_GE(m.leakage_p99_na, m.leakage_p95_na);
  EXPECT_GE(m.leakage_p95_na, m.leakage_mean_na);
  EXPECT_EQ(m.cell_count, c.num_cells());
  EXPECT_EQ(m.hvt_count, 0u);
  EXPECT_GT(m.area_um, 0.0);
  EXPECT_GE(m.timing_yield, 0.0);
  EXPECT_LE(m.timing_yield, 1.0);
}

// --------------------------------------------------------- deterministic ----

TEST_F(OptTest, DetMeetsNominalTarget) {
  Circuit c = make_carry_lookahead_adder(12);
  OptConfig cfg;
  cfg.t_max_ps = loose_target(c);
  const OptResult r = DeterministicOptimizer(lib_, var_, cfg).run(c);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(StaEngine(c, lib_).critical_delay_ps(), cfg.t_max_ps + 1e-6);
}

TEST_F(OptTest, DetMeetsCornerTarget) {
  Circuit c = make_carry_lookahead_adder(12);
  OptConfig cfg;
  cfg.t_max_ps = 1.35 * StaEngine(c, lib_)
                            .analyze_corner(0.0, var_, 3.0)
                            .critical_delay_ps;
  cfg.corner_k_sigma = 3.0;
  const OptResult r = DeterministicOptimizer(lib_, var_, cfg).run(c);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(StaEngine(c, lib_)
                .analyze_corner(cfg.t_max_ps, var_, 3.0)
                .critical_delay_ps,
            cfg.t_max_ps + 1e-6);
}

TEST_F(OptTest, DetReducesLeakageVersusStartingPoint) {
  Circuit c = make_carry_lookahead_adder(10);
  reset_implementation(c, lib_);
  double initial_leak = 0.0;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind != CellKind::kInput) {
      initial_leak += lib_.leakage_na(g.kind, g.vth, g.size);
    }
  }
  OptConfig cfg;
  cfg.t_max_ps = loose_target(c);
  const OptResult r = DeterministicOptimizer(lib_, var_, cfg).run(c);
  EXPECT_LT(r.final_objective, initial_leak);
  EXPECT_GT(r.hvt_commits, 0);
}

TEST_F(OptTest, DetLooseTargetGoesNearlyAllHvt) {
  Circuit c = make_ripple_carry_adder(8);
  OptConfig cfg;
  cfg.t_max_ps = 10.0 * StaEngine(c, lib_).critical_delay_ps();
  (void)DeterministicOptimizer(lib_, var_, cfg).run(c);
  const auto hvt = static_cast<double>(c.count_hvt());
  EXPECT_GT(hvt / static_cast<double>(c.num_cells()), 0.95);
}

TEST_F(OptTest, DetInfeasibleTargetReportsBestEffort) {
  Circuit c = make_ripple_carry_adder(12);
  OptConfig cfg;
  cfg.t_max_ps = 1.0;  // impossible
  const OptResult r = DeterministicOptimizer(lib_, var_, cfg).run(c);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.note.find("unreachable"), std::string::npos);
}

TEST_F(OptTest, DetSizesStayOnGrid) {
  Circuit c = make_carry_lookahead_adder(8);
  OptConfig cfg;
  cfg.t_max_ps = 1.1 * loose_target(c) / 1.4;
  (void)DeterministicOptimizer(lib_, var_, cfg).run(c);
  const auto steps = lib_.size_steps();
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    bool on_grid = false;
    for (double s : steps) {
      if (std::abs(g.size - s) < 1e-12) on_grid = true;
    }
    EXPECT_TRUE(on_grid) << g.name << " size " << g.size;
  }
}

TEST_F(OptTest, DetRejectsBadConfig) {
  OptConfig cfg;
  cfg.t_max_ps = -5.0;
  EXPECT_THROW(DeterministicOptimizer(lib_, var_, cfg), Error);
  cfg.t_max_ps = 100.0;
  cfg.corner_k_sigma = -1.0;
  EXPECT_THROW(DeterministicOptimizer(lib_, var_, cfg), Error);
}

// ----------------------------------------------------------- statistical ----

TEST_F(OptTest, StatMeetsYieldTarget) {
  Circuit c = make_carry_lookahead_adder(12);
  OptConfig cfg;
  cfg.t_max_ps = loose_target(c);
  cfg.yield_target = 0.99;
  const OptResult r = StatisticalOptimizer(lib_, var_, cfg).run(c);
  EXPECT_TRUE(r.feasible);
  const double yield = SstaEngine(c, lib_, var_).circuit_delay().cdf(cfg.t_max_ps);
  EXPECT_GE(yield, 0.99 - 1e-9);
}

TEST_F(OptTest, StatYieldConfirmedByMonteCarlo) {
  Circuit c = make_carry_lookahead_adder(12);
  OptConfig cfg;
  cfg.t_max_ps = loose_target(c);
  cfg.yield_target = 0.95;
  (void)StatisticalOptimizer(lib_, var_, cfg).run(c);
  McConfig mc;
  mc.num_samples = 4000;
  const McResult res = run_monte_carlo(c, lib_, var_, mc);
  // MC yield within a few points of the SSTA-enforced target.
  EXPECT_GT(res.timing_yield(cfg.t_max_ps), 0.92);
}

TEST_F(OptTest, StatBeatsWorstCaseCornerBaseline) {
  // The paper's headline claim at module scale: at equal (met) yield, the
  // statistical flow leaks less than the 3-sigma guard-banded deterministic
  // flow.
  Circuit det = iscas85_proxy("c880p");
  Circuit stat = det;
  OptConfig cfg;
  cfg.t_max_ps = 1.15 * min_achievable_delay_ps(det, lib_);
  cfg.yield_target = 0.99;

  OptConfig det_cfg = cfg;
  det_cfg.corner_k_sigma = 3.0;
  (void)DeterministicOptimizer(lib_, var_, det_cfg).run(det);
  (void)StatisticalOptimizer(lib_, var_, cfg).run(stat);

  const CircuitMetrics md = measure_metrics(det, lib_, var_, cfg.t_max_ps);
  const CircuitMetrics ms = measure_metrics(stat, lib_, var_, cfg.t_max_ps);
  ASSERT_GE(md.timing_yield, 0.99);  // guard-band met the yield...
  ASSERT_GE(ms.timing_yield, 0.99 - 1e-9);
  EXPECT_LT(ms.leakage_p99_na, md.leakage_p99_na);  // ...at higher leakage
}

TEST_F(OptTest, StatTighterYieldCostsMoreLeakage) {
  Circuit loose = make_carry_lookahead_adder(10);
  Circuit tight = loose;
  OptConfig cfg;
  cfg.t_max_ps = 1.12 * min_achievable_delay_ps(loose, lib_);
  cfg.yield_target = 0.90;
  (void)StatisticalOptimizer(lib_, var_, cfg).run(loose);
  cfg.yield_target = 0.999;
  (void)StatisticalOptimizer(lib_, var_, cfg).run(tight);
  const LeakageAnalyzer al(loose, lib_, var_);
  const LeakageAnalyzer at(tight, lib_, var_);
  EXPECT_LE(al.quantile_na(0.99), at.quantile_na(0.99) * 1.02);
}

TEST_F(OptTest, StatInfeasibleTargetBestEffort) {
  Circuit c = make_ripple_carry_adder(10);
  OptConfig cfg;
  cfg.t_max_ps = 1.0;
  const OptResult r = StatisticalOptimizer(lib_, var_, cfg).run(c);
  EXPECT_FALSE(r.feasible);
}

TEST_F(OptTest, StatRejectsBadConfig) {
  OptConfig cfg;
  cfg.t_max_ps = 100.0;
  cfg.yield_target = 1.5;
  EXPECT_THROW(StatisticalOptimizer(lib_, var_, cfg), Error);
  cfg.yield_target = 0.99;
  cfg.leakage_percentile = 0.0;
  EXPECT_THROW(StatisticalOptimizer(lib_, var_, cfg), Error);
}

TEST_F(OptTest, StatThreadCountInvariance) {
  // Candidate scoring is sharded by gate index and reduced in order, so the
  // greedy trajectory — every commit, and thus the whole OptResult and the
  // final implementation — must be identical single- vs multi-threaded.
  const Circuit base = make_carry_lookahead_adder(10);
  OptConfig cfg;
  cfg.t_max_ps = 1.25 * StaEngine(base, lib_).critical_delay_ps();
  cfg.num_threads = 1;
  Circuit serial = base;
  const OptResult r1 = StatisticalOptimizer(lib_, var_, cfg).run(serial);
  for (int threads : {2, 8}) {
    cfg.num_threads = threads;
    Circuit parallel = base;
    const OptResult rn = StatisticalOptimizer(lib_, var_, cfg).run(parallel);
    EXPECT_EQ(r1.feasible, rn.feasible) << threads;
    EXPECT_EQ(r1.sizing_commits, rn.sizing_commits) << threads;
    EXPECT_EQ(r1.hvt_commits, rn.hvt_commits) << threads;
    EXPECT_EQ(r1.downsize_commits, rn.downsize_commits) << threads;
    EXPECT_EQ(r1.rejected_moves, rn.rejected_moves) << threads;
    EXPECT_EQ(r1.iterations, rn.iterations) << threads;
    EXPECT_DOUBLE_EQ(r1.final_objective, rn.final_objective) << threads;
    for (GateId id = 0; id < base.num_gates(); ++id) {
      ASSERT_EQ(serial.gate(id).vth, parallel.gate(id).vth)
          << "threads " << threads << ", gate " << id;
      ASSERT_DOUBLE_EQ(serial.gate(id).size, parallel.gate(id).size)
          << "threads " << threads << ", gate " << id;
    }
  }
}

TEST_F(OptTest, StatSizesStayOnGridAndVthBinary) {
  Circuit c = make_carry_lookahead_adder(8);
  OptConfig cfg;
  cfg.t_max_ps = loose_target(c);
  (void)StatisticalOptimizer(lib_, var_, cfg).run(c);
  const auto steps = lib_.size_steps();
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    if (g.kind == CellKind::kInput) continue;
    bool on_grid = false;
    for (double s : steps) {
      if (std::abs(g.size - s) < 1e-12) on_grid = true;
    }
    EXPECT_TRUE(on_grid) << g.name;
    EXPECT_TRUE(g.vth == Vth::kLow || g.vth == Vth::kHigh);
  }
}

}  // namespace
}  // namespace statleak
