// Tests for the spatial-correlation extension: placement, the grid model's
// variance bookkeeping, the vector-canonical SSTA, the region-aware leakage
// sum, and — the acceptance criterion — agreement with spatial Monte Carlo
// where the flat (independent-intra) engines visibly diverge.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "spatial/placement.hpp"
#include "spatial/spatial_analysis.hpp"
#include "spatial/spatial_model.hpp"
#include "spatial/spatial_ssta.hpp"
#include "ssta/ssta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace statleak {
namespace {

SpatialVariationModel default_spatial() {
  SpatialVariationModel m;
  m.base = VariationModel::typical_100nm();
  m.grid = 4;
  m.region_fraction_l = 0.5;
  m.region_fraction_v = 0.25;
  return m;
}

// ----------------------------------------------------------- placement ----

TEST(Placement, OnePointPerGateInUnitSquare) {
  const Circuit c = make_carry_lookahead_adder(8);
  const auto placement = make_topological_placement(c, 7);
  ASSERT_EQ(placement.size(), c.num_gates());
  for (const Point& p : placement) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(Placement, DeterministicPerSeed) {
  const Circuit c = make_carry_lookahead_adder(8);
  const auto a = make_topological_placement(c, 3);
  const auto b = make_topological_placement(c, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(Placement, XFollowsLogicLevel) {
  const Circuit c = make_ripple_carry_adder(16);
  const auto placement = make_topological_placement(c, 1);
  // Deeper gates sit further right (allow jitter slack).
  const GateId shallow = c.inputs()[0];
  GateId deep = shallow;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    if (c.level(id) > c.level(deep)) deep = id;
  }
  EXPECT_GT(placement[deep].x, placement[shallow].x + 0.2);
}

// ----------------------------------------------------------- the model ----

TEST(SpatialModel, VarianceBudgetPreserved) {
  const SpatialVariationModel m = default_spatial();
  EXPECT_NEAR(m.sigma_l_region_nm() * m.sigma_l_region_nm() +
                  m.sigma_l_local_nm() * m.sigma_l_local_nm(),
              m.base.sigma_l_intra_nm * m.base.sigma_l_intra_nm, 1e-12);
  EXPECT_NEAR(m.sigma_vth_region_v() * m.sigma_vth_region_v() +
                  m.sigma_vth_local_v() * m.sigma_vth_local_v(),
              m.base.sigma_vth_intra_v * m.base.sigma_vth_intra_v, 1e-12);
}

TEST(SpatialModel, RegionIndexing) {
  SpatialVariationModel m = default_spatial();
  m.grid = 2;
  EXPECT_EQ(m.num_regions(), 4);
  EXPECT_EQ(m.region_of({0.1, 0.1}), 0);
  EXPECT_EQ(m.region_of({0.1, 0.9}), 1);
  EXPECT_EQ(m.region_of({0.9, 0.1}), 2);
  EXPECT_EQ(m.region_of({0.9, 0.9}), 3);
  // Boundary clamping.
  EXPECT_EQ(m.region_of({1.0, 1.0}), 3);
}

TEST(SpatialModel, ValidateRejectsBadConfig) {
  SpatialVariationModel m = default_spatial();
  m.grid = 0;
  EXPECT_THROW(m.validate(), Error);
  m = default_spatial();
  m.region_fraction_l = 1.5;
  EXPECT_THROW(m.validate(), Error);
}

TEST(SpatialModel, MarginalMomentsUnchanged) {
  // The per-gate marginal must equal the flat model's.
  const SpatialVariationModel m = default_spatial();
  Rng rng(5);
  RunningStats dl;
  RunningStats dv;
  for (int i = 0; i < 60000; ++i) {
    const SpatialDieSample die = sample_spatial_die(m, rng);
    const ParamSample s = sample_spatial_gate(m, die, 5, rng);
    dl.add(s.dl_nm);
    dv.add(s.dvth_v);
  }
  EXPECT_NEAR(dl.stddev(), m.base.sigma_l_total_nm(), 0.03);
  EXPECT_NEAR(dv.stddev(), m.base.sigma_vth_total_v(), 0.0005);
}

TEST(SpatialModel, SameRegionMoreCorrelatedThanCrossRegion) {
  const SpatialVariationModel m = default_spatial();
  Rng rng(6);
  std::vector<double> a, same, cross;
  for (int i = 0; i < 40000; ++i) {
    const SpatialDieSample die = sample_spatial_die(m, rng);
    a.push_back(sample_spatial_gate(m, die, 0, rng).dl_nm);
    same.push_back(sample_spatial_gate(m, die, 0, rng).dl_nm);
    cross.push_back(sample_spatial_gate(m, die, 9, rng).dl_nm);
  }
  const double rho_same = correlation(a, same);
  const double rho_cross = correlation(a, cross);
  // Same region: (inter + region) / total variance; cross: inter / total.
  const double var_total =
      m.base.sigma_l_total_nm() * m.base.sigma_l_total_nm();
  const double expect_same =
      (m.base.sigma_l_inter_nm * m.base.sigma_l_inter_nm +
       m.sigma_l_region_nm() * m.sigma_l_region_nm()) /
      var_total;
  const double expect_cross =
      m.base.sigma_l_inter_nm * m.base.sigma_l_inter_nm / var_total;
  EXPECT_NEAR(rho_same, expect_same, 0.03);
  EXPECT_NEAR(rho_cross, expect_cross, 0.03);
  EXPECT_GT(rho_same, rho_cross + 0.1);
}

// ------------------------------------------------------ vector canonical ----

TEST(VectorCanonical, SumAndVariance) {
  VectorCanonical a{10.0, {1.0, 2.0}, 2.0};
  VectorCanonical b{5.0, {0.5, 0.5}, 1.0};
  const VectorCanonical s = VectorCanonical::sum(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 15.0);
  EXPECT_DOUBLE_EQ(s.g[0], 1.5);
  EXPECT_DOUBLE_EQ(s.g[1], 2.5);
  EXPECT_NEAR(s.loc, std::sqrt(5.0), 1e-12);
}

TEST(VectorCanonical, MaxOfIdenticalSharedOnly) {
  VectorCanonical a{10.0, {2.0, 1.0}, 0.0};
  double tight = 0.0;
  const VectorCanonical m = VectorCanonical::max(a, a, &tight);
  EXPECT_NEAR(m.mean, 10.0, 1e-9);
  EXPECT_NEAR(m.variance(), a.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(tight, 1.0);
}

TEST(VectorCanonical, MaxMatchesScalarEngineOnTwoSources) {
  // With two sources the vector engine must agree with ssta's Canonical.
  VectorCanonical a{10.0, {1.0, 0.5}, 1.5};
  VectorCanonical b{11.0, {0.8, 1.2}, 0.7};
  const VectorCanonical mv = VectorCanonical::max(a, b);
  const Canonical ca{10.0, 1.0, 0.5, 1.5};
  const Canonical cb{11.0, 0.8, 1.2, 0.7};
  const Canonical mc = Canonical::max(ca, cb);
  EXPECT_NEAR(mv.mean, mc.mean, 1e-12);
  EXPECT_NEAR(mv.variance(), mc.variance(), 1e-12);
}

TEST(VectorCanonical, MismatchedLengthsThrow) {
  VectorCanonical a{1.0, {1.0, 2.0}, 0.0};
  VectorCanonical b{1.0, {1.0}, 0.0};
  EXPECT_THROW(VectorCanonical::sum(a, b), Error);
}

// ------------------------------------------------------------- engines ----

class SpatialEngineTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  SpatialVariationModel model_ = default_spatial();
};

TEST_F(SpatialEngineTest, ZeroRegionFractionMatchesFlatEngine) {
  // With no region-shared variance the spatial engine must reproduce the
  // flat SSTA exactly (same marginals, same correlation structure).
  Circuit c = iscas85_proxy("c432p");
  const auto placement = make_topological_placement(c, 2);
  SpatialVariationModel flat = model_;
  flat.region_fraction_l = 0.0;
  flat.region_fraction_v = 0.0;
  const SpatialSstaEngine spatial(c, lib_, flat, placement);
  const SstaEngine plain(c, lib_, flat.base);
  const VectorCanonical ds = spatial.circuit_delay();
  const Canonical dp = plain.circuit_delay();
  EXPECT_NEAR(ds.mean, dp.mean, 1e-6 * dp.mean);
  EXPECT_NEAR(ds.sigma(), dp.sigma(), 1e-6 * dp.sigma());
}

TEST_F(SpatialEngineTest, SpatialCorrelationWidensDelaySpread) {
  // Correlated intra-die variation averages out less along paths, so the
  // circuit-delay sigma grows with the region fraction.
  Circuit c = iscas85_proxy("c880p");
  const auto placement = make_topological_placement(c, 2);
  SpatialVariationModel strong = model_;
  strong.region_fraction_l = 0.8;
  const SpatialSstaEngine weak_engine(c, lib_, model_, placement);
  SpatialVariationModel none = model_;
  none.region_fraction_l = 0.0;
  none.region_fraction_v = 0.0;
  const SpatialSstaEngine none_engine(c, lib_, none, placement);
  const SpatialSstaEngine strong_engine(c, lib_, strong, placement);
  EXPECT_GT(weak_engine.circuit_delay().sigma(),
            none_engine.circuit_delay().sigma());
  EXPECT_GT(strong_engine.circuit_delay().sigma(),
            weak_engine.circuit_delay().sigma());
}

TEST_F(SpatialEngineTest, SstaTracksSpatialMonteCarlo) {
  Circuit c = iscas85_proxy("c432p");
  const auto placement = make_topological_placement(c, 2);
  const SpatialSstaEngine engine(c, lib_, model_, placement);
  const VectorCanonical d = engine.circuit_delay();

  McConfig mc;
  mc.num_samples = 5000;
  mc.seed = 12;
  const McResult res =
      run_monte_carlo_spatial(c, lib_, model_, placement, mc);
  const SampleSummary s = res.delay_summary();
  EXPECT_NEAR(d.mean, s.mean, 0.03 * s.mean);
  EXPECT_NEAR(d.sigma(), s.stddev, 0.2 * s.stddev);
}

TEST_F(SpatialEngineTest, LeakageTracksSpatialMonteCarlo) {
  Circuit c = iscas85_proxy("c432p");
  const auto placement = make_topological_placement(c, 2);
  const LeakageDistribution d =
      spatial_leakage_distribution(c, lib_, model_, placement);

  McConfig mc;
  mc.num_samples = 6000;
  mc.seed = 13;
  const McResult res =
      run_monte_carlo_spatial(c, lib_, model_, placement, mc);
  const SampleSummary s = res.leakage_summary();
  EXPECT_NEAR(d.mean_na, s.mean, 0.03 * s.mean);
  EXPECT_NEAR(d.stddev_na(), s.stddev, 0.12 * s.stddev);
  EXPECT_NEAR(d.quantile_na(0.99), quantile(res.leakage_na, 0.99),
              0.10 * quantile(res.leakage_na, 0.99));
}

TEST_F(SpatialEngineTest, FlatLeakageModelUnderestimatesSpatialVariance) {
  // The ablation claim: feeding spatially correlated silicon to the flat
  // analyzer underestimates the total-leakage spread.
  Circuit c = iscas85_proxy("c880p");
  const auto placement = make_topological_placement(c, 2);
  SpatialVariationModel strong = model_;
  strong.region_fraction_l = 0.8;
  strong.region_fraction_v = 0.6;
  const LeakageDistribution spatial =
      spatial_leakage_distribution(c, lib_, strong, placement);
  const LeakageDistribution flat =
      LeakageAnalyzer(c, lib_, strong.base).distribution();
  EXPECT_NEAR(spatial.mean_na, flat.mean_na, 1e-6 * flat.mean_na);
  EXPECT_GT(spatial.stddev_na(), 1.05 * flat.stddev_na());
}

TEST_F(SpatialEngineTest, GridOneEqualsOneSharedRegion) {
  // grid = 1: the "region" component behaves as extra inter-die variance.
  Circuit c = make_ripple_carry_adder(8);
  const auto placement = make_topological_placement(c, 2);
  SpatialVariationModel one = model_;
  one.grid = 1;
  const LeakageDistribution spatial =
      spatial_leakage_distribution(c, lib_, one, placement);
  // Equivalent flat model: move the region variance into inter-die.
  VariationModel merged = one.base;
  merged.sigma_l_inter_nm =
      std::sqrt(merged.sigma_l_inter_nm * merged.sigma_l_inter_nm +
                one.sigma_l_region_nm() * one.sigma_l_region_nm());
  merged.sigma_l_intra_nm = one.sigma_l_local_nm();
  merged.sigma_vth_inter_v =
      std::sqrt(merged.sigma_vth_inter_v * merged.sigma_vth_inter_v +
                one.sigma_vth_region_v() * one.sigma_vth_region_v());
  merged.sigma_vth_intra_v = one.sigma_vth_local_v();
  const LeakageDistribution flat =
      LeakageAnalyzer(c, lib_, merged).distribution();
  EXPECT_NEAR(spatial.mean_na, flat.mean_na, 1e-9 * flat.mean_na);
  EXPECT_NEAR(spatial.var_na2, flat.var_na2, 1e-6 * flat.var_na2);
}

}  // namespace
}  // namespace statleak
