// Unit tests for deterministic STA: load model, arrival/required/slack
// algebra, critical-path extraction, corner analysis, and per-sample modes.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/arithmetic.hpp"
#include "gen/random_dag.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"
#include "util/health.hpp"
#include "util/rng.hpp"

namespace statleak {
namespace {

class StaTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

/// in -> inv1 -> inv2 -> inv3 -> out (a pure chain).
Circuit make_chain(int length) {
  Circuit c("chain" + std::to_string(length));
  GateId prev = c.add_input("in");
  for (int i = 0; i < length; ++i) {
    prev = c.add_gate("inv" + std::to_string(i), CellKind::kInv, {prev});
  }
  c.mark_output(prev);
  c.finalize();
  return c;
}

TEST_F(StaTest, ChainDelayIsSumOfGateDelays) {
  const Circuit c = make_chain(4);
  const StaEngine sta(c, lib_);
  double sum = 0.0;
  for (GateId id = 0; id < c.num_gates(); ++id) sum += sta.gate_delay_ps(id);
  EXPECT_NEAR(sta.critical_delay_ps(), sum, 1e-9);
}

TEST_F(StaTest, LoadsIncludeReceiversWireAndPoLoad) {
  const Circuit c = make_chain(2);
  const StaEngine sta(c, lib_);
  const GateId inv0 = c.find("inv0");
  const GateId inv1 = c.find("inv1");
  // inv0 drives inv1: wire(1) + pin cap of inv1.
  EXPECT_NEAR(sta.loads().load_ff(inv0),
              lib_.wire_cap_ff(1) + lib_.pin_cap_ff(CellKind::kInv, 1.0),
              1e-12);
  // inv1 is a PO with no receivers: wire(0) + PO load.
  EXPECT_NEAR(sta.loads().load_ff(inv1),
              kPrimaryOutputLoadFactor * lib_.pin_cap_ff(CellKind::kInv, 1.0),
              1e-12);
}

TEST_F(StaTest, SlackIsRequiredMinusArrival) {
  Circuit c = make_chain(5);
  const StaEngine sta(c, lib_);
  const double t_max = 500.0;
  const StaResult r = sta.analyze(t_max);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    EXPECT_NEAR(r.slack_ps[id], r.required_ps[id] - r.arrival_ps[id], 1e-9);
  }
  // On a pure chain every gate has the same slack = T - D.
  const double expected_slack = t_max - r.critical_delay_ps;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    EXPECT_NEAR(r.slack_ps[id], expected_slack, 1e-9);
  }
  EXPECT_NEAR(r.worst_slack_ps(), expected_slack, 1e-9);
}

TEST_F(StaTest, ArrivalsMonotoneAlongEdges) {
  RandomDagSpec spec;
  spec.num_gates = 400;
  spec.seed = 8;
  const Circuit c = make_random_dag(spec);
  const StaEngine sta(c, lib_);
  const StaResult r = sta.analyze(1000.0);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    for (GateId f : c.gate(id).fanins) {
      EXPECT_GE(r.arrival_ps[id], r.arrival_ps[f]);
    }
  }
}

TEST_F(StaTest, CriticalPathIsConnectedAndCritical) {
  RandomDagSpec spec;
  spec.num_gates = 300;
  spec.seed = 12;
  const Circuit c = make_random_dag(spec);
  const StaEngine sta(c, lib_);
  const auto path = sta.critical_path();
  ASSERT_GE(path.size(), 2u);
  // Path is connected input -> output.
  EXPECT_EQ(c.gate(path.front()).kind, CellKind::kInput);
  EXPECT_TRUE(c.is_output(path.back()));
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto& fanins = c.gate(path[i]).fanins;
    EXPECT_NE(std::find(fanins.begin(), fanins.end(), path[i - 1]),
              fanins.end());
  }
  // Path delay equals the critical delay.
  double sum = 0.0;
  for (GateId id : path) sum += sta.gate_delay_ps(id);
  EXPECT_NEAR(sum, sta.critical_delay_ps(), 1e-9);
}

TEST_F(StaTest, CornerSlowerThanNominalAndMonotoneInK) {
  const Circuit c = make_chain(6);
  const StaEngine sta(c, lib_);
  const double d0 = sta.critical_delay_ps();
  const double d1 = sta.analyze_corner(0.0, var_, 1.0).critical_delay_ps;
  const double d3 = sta.analyze_corner(0.0, var_, 3.0).critical_delay_ps;
  EXPECT_GT(d1, d0);
  EXPECT_GT(d3, d1);
}

TEST_F(StaTest, ZeroCornerEqualsNominal) {
  const Circuit c = make_chain(3);
  const StaEngine sta(c, lib_);
  EXPECT_NEAR(sta.analyze_corner(0.0, var_, 0.0).critical_delay_ps,
              sta.critical_delay_ps(), 1e-9);
}

TEST_F(StaTest, SampleModeZeroEqualsNominal) {
  const Circuit c = make_chain(5);
  const StaEngine sta(c, lib_);
  std::vector<ParamSample> samples(c.num_gates());
  std::vector<double> scratch;
  EXPECT_NEAR(sta.critical_delay_sample_ps(samples, false, scratch),
              sta.critical_delay_ps(), 1e-9);
  EXPECT_NEAR(sta.critical_delay_sample_ps(samples, true, scratch),
              sta.critical_delay_ps(), 1e-9);
}

TEST_F(StaTest, LinearAndExactSampleModesAgreeForSmallSigma) {
  const Circuit c = make_chain(8);
  const StaEngine sta(c, lib_);
  std::vector<ParamSample> samples(c.num_gates(), ParamSample{0.8, 0.004});
  std::vector<double> scratch;
  const double lin = sta.critical_delay_sample_ps(samples, false, scratch);
  const double exact = sta.critical_delay_sample_ps(samples, true, scratch);
  EXPECT_NEAR(lin, exact, 0.02 * exact);
}

TEST_F(StaTest, SampleSizeMismatchThrows) {
  const Circuit c = make_chain(3);
  const StaEngine sta(c, lib_);
  std::vector<ParamSample> samples(2);
  std::vector<double> scratch;
  EXPECT_THROW(sta.critical_delay_sample_ps(samples, false, scratch), Error);
}

TEST_F(StaTest, IncrementalLoadsMatchRebuild) {
  Circuit c = make_carry_lookahead_adder(8);
  StaEngine sta(c, lib_);
  Rng rng(31);
  const auto steps = lib_.size_steps();
  for (int trial = 0; trial < 50; ++trial) {
    GateId id = static_cast<GateId>(rng.uniform_index(c.num_gates()));
    while (c.gate(id).kind == CellKind::kInput) {
      id = static_cast<GateId>(rng.uniform_index(c.num_gates()));
    }
    c.set_size(id, steps[rng.uniform_index(steps.size())]);
    sta.on_resize(id);
  }
  const LoadCache fresh(c, lib_);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    EXPECT_NEAR(sta.loads().load_ff(id), fresh.load_ff(id), 1e-9)
        << "gate " << c.gate(id).name;
  }
}

TEST_F(StaTest, UpsizingHighFanoutDriverReducesDelay) {
  // in -> driver -> 12 parallel sinks -> OR-join. Upsizing the heavily
  // loaded driver is a clear win; upsizing a lightly loaded FO1 gate would
  // not be (its fanin load penalty dominates) — which is exactly the
  // trade-off the optimizer's net-gain test prices.
  Circuit c("fanout");
  const GateId in = c.add_input("in");
  const GateId driver = c.add_gate("driver", CellKind::kInv, {in});
  std::vector<GateId> sinks;
  for (int i = 0; i < 12; ++i) {
    sinks.push_back(
        c.add_gate("sink" + std::to_string(i), CellKind::kInv, {driver}));
  }
  GateId join = sinks[0];
  for (int i = 1; i < 12; ++i) {
    join = c.add_gate("or" + std::to_string(i), CellKind::kOr2,
                      {join, sinks[static_cast<std::size_t>(i)]});
  }
  c.mark_output(join);
  c.finalize();

  StaEngine sta(c, lib_);
  const double before = sta.critical_delay_ps();
  c.set_size(driver, 4.0);
  sta.on_resize(driver);
  EXPECT_LT(sta.critical_delay_ps(), before);
}

TEST_F(StaTest, HvtSwapSlowsCircuit) {
  Circuit c = make_chain(6);
  StaEngine sta(c, lib_);
  const double before = sta.critical_delay_ps();
  c.set_vth(c.find("inv2"), Vth::kHigh);
  EXPECT_GT(sta.critical_delay_ps(), before);
}

// -------------------------------------------------------- numerical health ---

TEST_F(StaTest, NonFiniteTargetIsAStructuredErrorNotASilentClamp) {
  // A NaN or -inf delay target poisons every required time in the backward
  // pass. The old code silently clamped it into a plausible slack; now it
  // raises NumericalError naming the first affected gate.
  Circuit c = make_chain(3);
  const StaEngine sta(c, lib_);
  EXPECT_THROW((void)sta.analyze(std::numeric_limits<double>::quiet_NaN()),
               NumericalError);
  EXPECT_THROW((void)sta.analyze(-std::numeric_limits<double>::infinity()),
               NumericalError);
}

TEST_F(StaTest, FloatingGateInfinityClampIsPreserved) {
  // A gate with no fanout and no output mark legitimately keeps +inf
  // required time; the clamp to t_max (the only sanctioned non-finite
  // value) must survive the health hardening.
  Circuit c("floating");
  const GateId in = c.add_input("in");
  const GateId used = c.add_gate("used", CellKind::kInv, {in});
  (void)c.add_gate("dangling", CellKind::kInv, {in});  // no fanout, no PO
  c.mark_output(used);
  c.finalize();
  const StaEngine sta(c, lib_);
  const double t_max = 250.0;
  const StaResult r = sta.analyze(t_max);
  const GateId dangling = c.find("dangling");
  EXPECT_DOUBLE_EQ(r.required_ps[dangling], t_max);
  EXPECT_TRUE(std::isfinite(r.slack_ps[dangling]));
}

}  // namespace
}  // namespace statleak
