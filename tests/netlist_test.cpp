// Unit tests for statleak_netlist: circuit construction, validation,
// topological structure, simulation, and implementation attributes.

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/circuit.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

/// a, b -> x = NAND(a,b); y = INV(x); y is the output. (y == a & b)
Circuit make_tiny() {
  Circuit c("tiny");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate("x", CellKind::kNand2, {a, b});
  const GateId y = c.add_gate("y", CellKind::kInv, {x});
  c.mark_output(y);
  c.finalize();
  return c;
}

TEST(Circuit, BasicCounts) {
  const Circuit c = make_tiny();
  EXPECT_EQ(c.num_gates(), 4u);
  EXPECT_EQ(c.num_cells(), 2u);
  EXPECT_EQ(c.inputs().size(), 2u);
  EXPECT_EQ(c.outputs().size(), 1u);
}

TEST(Circuit, FindByName) {
  const Circuit c = make_tiny();
  EXPECT_NE(c.find("x"), kInvalidGate);
  EXPECT_EQ(c.gate(c.find("x")).kind, CellKind::kNand2);
  EXPECT_EQ(c.find("nope"), kInvalidGate);
}

TEST(Circuit, DuplicateNameRejected) {
  Circuit c("dup");
  c.add_input("a");
  EXPECT_THROW(c.add_input("a"), Error);
}

TEST(Circuit, ArityMismatchRejectedAtFinalize) {
  Circuit c("bad");
  const GateId a = c.add_input("a");
  c.add_gate("g", CellKind::kNand2, {a});  // NAND2 with one fanin
  c.mark_output(c.find("g"));
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Circuit, NoOutputsRejected) {
  Circuit c("noout");
  const GateId a = c.add_input("a");
  c.add_gate("g", CellKind::kInv, {a});
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Circuit, CycleRejected) {
  Circuit c("cycle");
  const GateId a = c.add_input("a");
  // g -> h -> g
  const GateId g = c.add_gate("g", CellKind::kNand2, {a, a});
  // Patch a cycle: h feeds g.
  const GateId h = c.add_gate("h", CellKind::kInv, {g});
  c.gate(g).fanins[1] = h;
  c.mark_output(h);
  EXPECT_THROW(c.finalize(), Error);
}

TEST(Circuit, TopoOrderRespectsEdges) {
  const Circuit c = make_tiny();
  const auto topo = c.topo_order();
  std::vector<std::size_t> pos(c.num_gates());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    for (GateId f : c.gate(id).fanins) {
      EXPECT_LT(pos[f], pos[id]);
    }
  }
}

TEST(Circuit, LevelsAndDepth) {
  const Circuit c = make_tiny();
  EXPECT_EQ(c.level(c.find("a")), 0);
  EXPECT_EQ(c.level(c.find("x")), 1);
  EXPECT_EQ(c.level(c.find("y")), 2);
  EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, Fanouts) {
  const Circuit c = make_tiny();
  const auto fanouts_a = c.fanouts(c.find("a"));
  ASSERT_EQ(fanouts_a.size(), 1u);
  EXPECT_EQ(fanouts_a[0], c.find("x"));
  EXPECT_TRUE(c.fanouts(c.find("y")).empty());
}

TEST(Circuit, MarkOutputIdempotent) {
  Circuit c("idem");
  const GateId a = c.add_input("a");
  const GateId g = c.add_gate("g", CellKind::kInv, {a});
  c.mark_output(g);
  c.mark_output(g);
  c.finalize();
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_TRUE(c.is_output(g));
  EXPECT_FALSE(c.is_output(a));
}

TEST(Circuit, StructureFrozenAfterFinalize) {
  Circuit c = make_tiny();
  EXPECT_THROW(c.add_input("z"), Error);
  EXPECT_THROW(c.finalize(), Error);  // double finalize
}

TEST(Circuit, AccessBeforeFinalizeThrows) {
  Circuit c("early");
  const GateId a = c.add_input("a");
  c.add_gate("g", CellKind::kInv, {a});
  EXPECT_THROW((void)c.topo_order(), Error);
  EXPECT_THROW((void)c.depth(), Error);
  EXPECT_THROW((void)c.fanouts(a), Error);
}

TEST(Circuit, ImplementationAttributes) {
  Circuit c = make_tiny();
  const GateId x = c.find("x");
  c.set_size(x, 4.0);
  c.set_vth(x, Vth::kHigh);
  EXPECT_DOUBLE_EQ(c.gate(x).size, 4.0);
  EXPECT_EQ(c.gate(x).vth, Vth::kHigh);
  EXPECT_EQ(c.count_hvt(), 1u);
  EXPECT_THROW(c.set_size(x, 0.0), Error);
  EXPECT_THROW(c.set_size(static_cast<GateId>(999), 1.0), Error);
}

TEST(Simulate, TinyCircuitIsAnd) {
  const Circuit c = make_tiny();
  const GateId y = c.find("y");
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      const std::vector<char> in = {static_cast<char>(a),
                                    static_cast<char>(b)};
      const auto values = simulate(c, in);
      EXPECT_EQ(values[y] != 0, a == 1 && b == 1) << a << "," << b;
    }
  }
}

TEST(Simulate, InputSizeMismatchThrows) {
  const Circuit c = make_tiny();
  const std::vector<char> wrong = {1};
  EXPECT_THROW(simulate(c, wrong), Error);
}

TEST(Simulate, MuxCircuit) {
  Circuit c("mux");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId s = c.add_input("s");
  const GateId m = c.add_gate("m", CellKind::kMux2, {a, b, s});
  c.mark_output(m);
  c.finalize();
  const auto run = [&](int av, int bv, int sv) {
    const std::vector<char> in = {static_cast<char>(av),
                                  static_cast<char>(bv),
                                  static_cast<char>(sv)};
    return simulate(c, in)[m] != 0;
  };
  EXPECT_EQ(run(1, 0, 0), true);   // sel=0 -> a
  EXPECT_EQ(run(1, 0, 1), false);  // sel=1 -> b
  EXPECT_EQ(run(0, 1, 1), true);
}

TEST(CircuitStats, Fields) {
  const Circuit c = make_tiny();
  const CircuitStats s = circuit_stats(c);
  EXPECT_EQ(s.num_inputs, 2u);
  EXPECT_EQ(s.num_outputs, 1u);
  EXPECT_EQ(s.num_cells, 2u);
  EXPECT_EQ(s.depth, 2);
  EXPECT_GT(s.avg_fanout, 0.0);
}

}  // namespace
}  // namespace statleak
