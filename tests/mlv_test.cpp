// Tests for state-dependent leakage and the minimum-leakage-vector search.

#include <gtest/gtest.h>

#include <limits>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "mlv/mlv.hpp"
#include "mlv/state_leakage.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class StateLeakTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
};

TEST_F(StateLeakTest, StateAverageRecoversLibraryLeakage) {
  // For single-stage kinds, the equiprobable average over input states must
  // equal the library's state-averaged value exactly. (Composite kinds
  // differ slightly by design: the library averages each stage over
  // independent equiprobable inputs, while the state evaluator uses the
  // correlated internal node value.)
  for (CellKind kind :
       {CellKind::kInv, CellKind::kNand2, CellKind::kNand3, CellKind::kNand4,
        CellKind::kNor2, CellKind::kNor3, CellKind::kNor4}) {
    for (Vth vth : {Vth::kLow, Vth::kHigh}) {
      const int fanin = cell_info(kind).fanin;
      const int states = 1 << fanin;
      double avg = 0.0;
      for (int s = 0; s < states; ++s) {
        avg += state_leakage_na(lib_, kind, vth, 1.5,
                                static_cast<std::uint32_t>(s));
      }
      avg /= states;
      EXPECT_NEAR(avg, lib_.leakage_na(kind, vth, 1.5),
                  1e-9 * lib_.leakage_na(kind, vth, 1.5))
          << to_string(kind) << " " << to_string(vth);
    }
  }
}

TEST_F(StateLeakTest, CompositeKindsDecomposeExactly) {
  // AND2's state leakage must equal its NAND2 stage plus the output
  // inverter evaluated at the correlated internal node — and stay within
  // ~15 % of the library's independent-stage average.
  for (std::uint32_t s = 0; s < 4; ++s) {
    const std::uint32_t mid = evaluate(CellKind::kNand2, s) ? 1 : 0;
    const double expect =
        state_leakage_na(lib_, CellKind::kNand2, Vth::kLow, 2.0, s) +
        state_leakage_na(lib_, CellKind::kInv, Vth::kLow, 2.0, mid);
    EXPECT_NEAR(state_leakage_na(lib_, CellKind::kAnd2, Vth::kLow, 2.0, s),
                expect, 1e-9 * expect)
        << "state " << s;
  }
  double avg = 0.0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    avg += state_leakage_na(lib_, CellKind::kAnd2, Vth::kLow, 1.0, s);
  }
  avg /= 4.0;
  EXPECT_NEAR(avg, lib_.leakage_na(CellKind::kAnd2, Vth::kLow, 1.0),
              0.15 * avg);
}

TEST_F(StateLeakTest, NandAllLowIsMinimumState) {
  // All inputs low = fully stacked off nMOS network = the least leaky
  // state of a NAND (the stacking effect MLV exploits).
  double min_leak = std::numeric_limits<double>::infinity();
  std::uint32_t argmin = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const double leak =
        state_leakage_na(lib_, CellKind::kNand2, Vth::kLow, 1.0, s);
    if (leak < min_leak) {
      min_leak = leak;
      argmin = s;
    }
  }
  EXPECT_EQ(argmin, 0u);
  // And the spread between best and worst state is large (stack factor).
  const double worst =
      state_leakage_na(lib_, CellKind::kNand2, Vth::kLow, 1.0, 0b11);
  EXPECT_GT(worst / min_leak, 3.0);
}

TEST_F(StateLeakTest, NorAllHighIsMinimumState) {
  double all_high =
      state_leakage_na(lib_, CellKind::kNor2, Vth::kLow, 1.0, 0b11);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_LE(all_high,
              state_leakage_na(lib_, CellKind::kNor2, Vth::kLow, 1.0, s) +
                  1e-12);
  }
}

TEST_F(StateLeakTest, LinearInSize) {
  const double l1 =
      state_leakage_na(lib_, CellKind::kAnd2, Vth::kLow, 1.0, 0b01);
  const double l3 =
      state_leakage_na(lib_, CellKind::kAnd2, Vth::kLow, 3.0, 0b01);
  EXPECT_NEAR(l3, 3.0 * l1, 1e-9 * l3);
}

TEST_F(StateLeakTest, FallbackKindsUseAverage) {
  EXPECT_FALSE(state_leakage_is_exact(CellKind::kXor2));
  EXPECT_NEAR(state_leakage_na(lib_, CellKind::kXor2, Vth::kLow, 2.0, 0b01),
              lib_.leakage_na(CellKind::kXor2, Vth::kLow, 2.0), 1e-12);
}

TEST_F(StateLeakTest, RejectsOutOfRangeState) {
  EXPECT_THROW(state_leakage_na(lib_, CellKind::kInv, Vth::kLow, 1.0, 2),
               Error);
  EXPECT_THROW(state_leakage_na(lib_, CellKind::kNand2, Vth::kLow, 0.0, 0),
               Error);
}

// ------------------------------------------------------------------ MLV ----

class MlvTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
};

TEST_F(MlvTest, VectorLeakagePositiveAndStateDependent) {
  const Circuit c = make_ripple_carry_adder(8);
  std::vector<char> zeros(c.inputs().size(), 0);
  std::vector<char> ones(c.inputs().size(), 1);
  const double l0 = vector_leakage_na(c, lib_, zeros);
  const double l1 = vector_leakage_na(c, lib_, ones);
  EXPECT_GT(l0, 0.0);
  EXPECT_GT(l1, 0.0);
  EXPECT_NE(l0, l1);  // states differ, leakage must differ
}

TEST_F(MlvTest, SearchBeatsRandomMean) {
  const Circuit c = iscas85_proxy("c432p");
  MlvConfig cfg;
  cfg.random_trials = 64;
  cfg.greedy_passes = 3;
  const MlvResult res = find_min_leakage_vector(c, lib_, cfg);
  EXPECT_LT(res.best_leakage_na, res.mean_leakage_na);
  EXPECT_LE(res.best_leakage_na, res.worst_leakage_na);
  EXPECT_GT(res.saving_vs_mean(), 0.02);  // at least a few percent
  EXPECT_EQ(res.best_vector.size(), c.inputs().size());
  EXPECT_GE(res.evaluations, cfg.random_trials);
}

TEST_F(MlvTest, BestVectorEvaluatesToReportedLeakage) {
  const Circuit c = make_carry_lookahead_adder(8);
  const MlvResult res = find_min_leakage_vector(c, lib_);
  EXPECT_NEAR(vector_leakage_na(c, lib_, res.best_vector),
              res.best_leakage_na, 1e-9 * res.best_leakage_na);
}

TEST_F(MlvTest, NearExhaustiveOnTinyCircuit) {
  // 6 inputs -> 64 states: the heuristic must land within 2 % of optimum.
  const Circuit c = make_ripple_carry_adder(2);  // 5 inputs
  double exact_best = std::numeric_limits<double>::infinity();
  const std::size_t n = c.inputs().size();
  for (std::uint32_t v = 0; v < (1u << n); ++v) {
    std::vector<char> in(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = (v >> i) & 1;
    exact_best = std::min(exact_best, vector_leakage_na(c, lib_, in));
  }
  MlvConfig cfg;
  cfg.random_trials = 16;
  cfg.greedy_passes = 4;
  const MlvResult res = find_min_leakage_vector(c, lib_, cfg);
  EXPECT_LE(res.best_leakage_na, exact_best * 1.02);
}

TEST_F(MlvTest, DeterministicPerSeed) {
  const Circuit c = make_ripple_carry_adder(8);
  const MlvResult a = find_min_leakage_vector(c, lib_);
  const MlvResult b = find_min_leakage_vector(c, lib_);
  EXPECT_EQ(a.best_vector, b.best_vector);
  EXPECT_DOUBLE_EQ(a.best_leakage_na, b.best_leakage_na);
}

TEST_F(MlvTest, RejectsBadConfig) {
  const Circuit c = make_ripple_carry_adder(4);
  MlvConfig cfg;
  cfg.random_trials = 0;
  EXPECT_THROW(find_min_leakage_vector(c, lib_, cfg), Error);
}

}  // namespace
}  // namespace statleak
