// The generic journal container (util/journal.hpp): framing round-trip,
// two-phase tail-drop, writer resume, and structured rejection of every
// corruption class — independent of any client format (MC or optimizer).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "util/journal.hpp"

namespace statleak {
namespace {

constexpr JournalFormat kTestFormat{0x54534C53u, 3};  // "SLST"
constexpr std::uint64_t kHash = 0xFEEDFACE12345678u;
constexpr std::uint64_t kMeta = 42;

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void store_u32(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint32_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof v);
}

void store_u64(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint64_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof v);
}

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(JournalTest, RoundTripPreservesKindsPayloadsAndOrder) {
  TempFile f("journal_roundtrip.bin");
  const std::vector<std::uint8_t> p0 = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> p1 = {};  // empty payloads are legal
  const std::vector<std::uint8_t> p2(100, 0xA5);
  {
    auto w = JournalWriter::create(f.path(), kTestFormat, kHash, kMeta);
    w->append(7, p0.data(), p0.size());
    w->append(0, p1.data(), p1.size());
    w->append(9, p2.data(), p2.size());
    EXPECT_TRUE(w->healthy());
    EXPECT_EQ(w->records_appended(), 3u);
  }
  const JournalContents c = load_journal(f.path(), kTestFormat, kHash, kMeta);
  EXPECT_EQ(c.config_hash, kHash);
  EXPECT_EQ(c.meta, kMeta);
  EXPECT_EQ(c.dropped_tail_bytes, 0u);
  ASSERT_EQ(c.records.size(), 3u);
  EXPECT_EQ(c.records[0].kind, 7u);
  EXPECT_EQ(c.records[0].payload, p0);
  EXPECT_EQ(c.records[0].offset, kJournalHeaderBytes);
  EXPECT_EQ(c.records[1].kind, 0u);
  EXPECT_TRUE(c.records[1].payload.empty());
  EXPECT_EQ(c.records[2].kind, 9u);
  EXPECT_EQ(c.records[2].payload, p2);
}

TEST(JournalTest, ResumeAppendsContiguously) {
  TempFile f("journal_resume.bin");
  const std::vector<std::uint8_t> a = {10, 11};
  const std::vector<std::uint8_t> b = {20, 21, 22};
  {
    auto w = JournalWriter::create(f.path(), kTestFormat, kHash, kMeta);
    w->append(1, a.data(), a.size());
  }
  {
    auto w = JournalWriter::resume(f.path(), kTestFormat, kHash, kMeta);
    EXPECT_EQ(w->records_appended(), 0u);  // counts this open only
    w->append(2, b.data(), b.size());
    EXPECT_EQ(w->records_appended(), 1u);
  }
  const JournalContents c = load_journal(f.path(), kTestFormat, kHash, kMeta);
  ASSERT_EQ(c.records.size(), 2u);
  EXPECT_EQ(c.records[0].payload, a);
  EXPECT_EQ(c.records[1].payload, b);
}

TEST(JournalTest, UncommittedTailDroppedOnLoadAndTruncatedOnResume) {
  TempFile f("journal_tail.bin");
  const std::vector<std::uint8_t> a = {1};
  {
    auto w = JournalWriter::create(f.path(), kTestFormat, kHash, kMeta);
    w->append(1, a.data(), a.size());
  }
  std::vector<std::uint8_t> bytes = read_bytes(f.path());
  const std::size_t committed_size = bytes.size();
  for (int i = 0; i < 9; ++i) bytes.push_back(0xEE);  // torn partial record
  write_bytes(f.path(), bytes);

  const JournalContents c = load_journal(f.path(), kTestFormat, kHash, kMeta);
  ASSERT_EQ(c.records.size(), 1u);
  EXPECT_EQ(c.dropped_tail_bytes, 9u);

  {
    auto w = JournalWriter::resume(f.path(), kTestFormat, kHash, kMeta);
    w->append(2, a.data(), a.size());
  }
  const JournalContents after =
      load_journal(f.path(), kTestFormat, kHash, kMeta);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.dropped_tail_bytes, 0u);
  EXPECT_EQ(after.records[1].offset, committed_size);  // tail was truncated
}

TEST(JournalTest, ExistsOnlyForNonEmptyFiles) {
  TempFile f("journal_exists.bin");
  EXPECT_FALSE(journal_exists(f.path()));
  write_bytes(f.path(), {});
  EXPECT_FALSE(journal_exists(f.path()));
  write_bytes(f.path(), {1});
  EXPECT_TRUE(journal_exists(f.path()));
}

TEST(JournalTest, RejectsEveryCorruptionClass) {
  TempFile f("journal_corrupt.bin");
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  {
    auto w = JournalWriter::create(f.path(), kTestFormat, kHash, kMeta);
    w->append(3, payload.data(), payload.size());
  }
  const std::vector<std::uint8_t> good = read_bytes(f.path());

  const auto expect_reject = [&](std::vector<std::uint8_t> bytes,
                                 const char* label,
                                 bool fix_header_crc = false) {
    if (fix_header_crc) store_u32(bytes, 32, crc32(bytes.data(), 32));
    write_bytes(f.path(), bytes);
    try {
      (void)load_journal(f.path(), kTestFormat, kHash, kMeta);
      FAIL() << label << ": accepted";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos)
          << label;
    }
  };

  {  // truncated header
    expect_reject(std::vector<std::uint8_t>(good.begin(), good.begin() + 12),
                  "truncated header");
  }
  {  // bad magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    expect_reject(bad, "bad magic");
  }
  {  // unknown version
    std::vector<std::uint8_t> bad = good;
    store_u32(bad, 4, kTestFormat.version + 1);
    expect_reject(bad, "bad version", /*fix_header_crc=*/true);
  }
  {  // header CRC mismatch
    std::vector<std::uint8_t> bad = good;
    bad[32] ^= 0xFF;
    expect_reject(bad, "bad header crc");
  }
  {  // committed_bytes smaller than the header itself
    std::vector<std::uint8_t> bad = good;
    store_u64(bad, 24, 8);
    expect_reject(bad, "committed under header", /*fix_header_crc=*/true);
  }
  {  // committed_bytes beyond the end of the file
    std::vector<std::uint8_t> bad = good;
    store_u64(bad, 24, bad.size() + 64);
    expect_reject(bad, "committed overruns file", /*fix_header_crc=*/true);
  }
  {  // record envelope overruns the committed region
    std::vector<std::uint8_t> bad = good;
    store_u64(bad, kJournalHeaderBytes, 1u << 20);  // absurd payload_len
    expect_reject(bad, "record overruns committed region");
  }
  {  // record CRC mismatch: flip a payload byte
    std::vector<std::uint8_t> bad = good;
    bad[kJournalHeaderBytes + kJournalRecordBytes + 1] ^= 0xFF;
    expect_reject(bad, "bad record crc");
  }
  {  // wrong client format: same bytes, loaded under a different magic
    write_bytes(f.path(), good);
    EXPECT_THROW((void)load_journal(f.path(), JournalFormat{0x12345678u, 3},
                                    kHash, kMeta),
                 CheckpointError);
  }
  {  // config-hash mismatch
    write_bytes(f.path(), good);
    EXPECT_THROW((void)load_journal(f.path(), kTestFormat, kHash + 1, kMeta),
                 CheckpointError);
  }
  {  // meta mismatch
    write_bytes(f.path(), good);
    EXPECT_THROW((void)load_journal(f.path(), kTestFormat, kHash, kMeta + 1),
                 CheckpointError);
  }
  {  // resume validates too: a corrupt file must not be appended to
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    write_bytes(f.path(), bad);
    EXPECT_THROW((void)JournalWriter::resume(f.path(), kTestFormat, kHash,
                                             kMeta),
                 CheckpointError);
  }
  // The untouched file still loads — the harness corrupts, not the writer.
  write_bytes(f.path(), good);
  EXPECT_EQ(load_journal(f.path(), kTestFormat, kHash, kMeta).records.size(),
            1u);
}

}  // namespace
}  // namespace statleak
