// Unit tests for the circuit generators: functional correctness of every
// arithmetic/structured core against reference integer arithmetic, plus
// structural properties of the random DAGs and ISCAS85 proxies.

#include <gtest/gtest.h>

#include <cstdint>

#include "gen/arithmetic.hpp"
#include "gen/prefix.hpp"
#include "gen/proxy.hpp"
#include "gen/random_dag.hpp"
#include "gen/structures.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {
namespace {

/// Packs an unsigned value into input bits (LSB first).
void pack(std::vector<char>& in, std::size_t offset, std::uint64_t value,
          int bits) {
  for (int i = 0; i < bits; ++i) {
    in[offset + static_cast<std::size_t>(i)] = (value >> i) & 1;
  }
}

/// Sums output bits of an adder circuit (sum0..sumN-1 are the first N
/// outputs in order; carry is the last output).
std::uint64_t read_adder(const std::vector<char>& values, const Circuit& c,
                         int bits) {
  std::uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    if (values[c.outputs()[static_cast<std::size_t>(i)]]) out |= 1ull << i;
  }
  if (values[c.outputs()[static_cast<std::size_t>(bits)]]) {
    out |= 1ull << bits;
  }
  return out;
}

// ------------------------------------------------------------- adders ----

enum class AdderKind { kRipple, kLookahead, kSelect };

class AdderTest
    : public ::testing::TestWithParam<std::tuple<AdderKind, int>> {};

TEST_P(AdderTest, MatchesIntegerAddition) {
  const auto [kind, bits] = GetParam();
  Circuit c = [&] {
    switch (kind) {
      case AdderKind::kRipple:
        return make_ripple_carry_adder(bits);
      case AdderKind::kLookahead:
        return make_carry_lookahead_adder(bits);
      default:
        return make_carry_select_adder(bits, 3);
    }
  }();

  Rng rng(17);
  const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.uniform_index(mask + 1);
    const std::uint64_t b = rng.uniform_index(mask + 1);
    const int cin = trial % 2;
    std::vector<char> in(c.inputs().size(), 0);
    pack(in, 0, a, bits);
    pack(in, static_cast<std::size_t>(bits), b, bits);
    in.back() = static_cast<char>(cin);  // cin is the last declared input
    const auto values = simulate(c, in);
    EXPECT_EQ(read_adder(values, c, bits), a + b + cin)
        << "a=" << a << " b=" << b << " cin=" << cin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAdders, AdderTest,
    ::testing::Combine(::testing::Values(AdderKind::kRipple,
                                         AdderKind::kLookahead,
                                         AdderKind::kSelect),
                       ::testing::Values(1, 4, 7, 16, 33)));

TEST(Adders, LookaheadShallowerThanRipple) {
  const Circuit rca = make_ripple_carry_adder(32);
  const Circuit cla = make_carry_lookahead_adder(32);
  EXPECT_LT(cla.depth(), rca.depth());
}

TEST(Adders, KoggeStoneMatchesIntegerAddition) {
  for (int bits : {1, 3, 8, 16, 24}) {
    const Circuit c = make_kogge_stone_adder(bits);
    Rng rng(29);
    const std::uint64_t mask =
        bits >= 64 ? ~0ull : ((1ull << bits) - 1);
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t a = rng.uniform_index(mask + 1);
      const std::uint64_t b = rng.uniform_index(mask + 1);
      const int cin = trial % 2;
      std::vector<char> in(c.inputs().size(), 0);
      pack(in, 0, a, bits);
      pack(in, static_cast<std::size_t>(bits), b, bits);
      in.back() = static_cast<char>(cin);
      const auto values = simulate(c, in);
      EXPECT_EQ(read_adder(values, c, bits), a + b + cin)
          << "bits=" << bits << " a=" << a << " b=" << b;
    }
  }
}

TEST(Adders, KoggeStoneIsLogDepth) {
  const Circuit ks = make_kogge_stone_adder(32);
  const Circuit rca = make_ripple_carry_adder(32);
  EXPECT_LT(ks.depth() * 3, rca.depth());
}

// --------------------------------------------------------- multiplier ----

TEST(Multiplier, MatchesIntegerMultiplication) {
  for (int bits : {2, 4, 6, 8}) {
    const Circuit c = make_array_multiplier(bits);
    EXPECT_EQ(c.outputs().size(), static_cast<std::size_t>(2 * bits));
    Rng rng(23);
    const std::uint64_t mask = (1ull << bits) - 1;
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t a = rng.uniform_index(mask + 1);
      const std::uint64_t b = rng.uniform_index(mask + 1);
      std::vector<char> in(c.inputs().size(), 0);
      pack(in, 0, a, bits);
      pack(in, static_cast<std::size_t>(bits), b, bits);
      const auto values = simulate(c, in);
      std::uint64_t product = 0;
      for (int i = 0; i < 2 * bits; ++i) {
        if (values[c.outputs()[static_cast<std::size_t>(i)]]) {
          product |= 1ull << i;
        }
      }
      EXPECT_EQ(product, a * b) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Multiplier, WallaceMatchesIntegerMultiplication) {
  for (int bits : {2, 4, 7}) {
    const Circuit c = make_wallace_multiplier(bits);
    Rng rng(31);
    const std::uint64_t mask = (1ull << bits) - 1;
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t a = rng.uniform_index(mask + 1);
      const std::uint64_t b = rng.uniform_index(mask + 1);
      std::vector<char> in(c.inputs().size(), 0);
      pack(in, 0, a, bits);
      pack(in, static_cast<std::size_t>(bits), b, bits);
      const auto values = simulate(c, in);
      std::uint64_t product = 0;
      for (int i = 0; i < 2 * bits; ++i) {
        if (values[c.outputs()[static_cast<std::size_t>(i)]]) {
          product |= 1ull << i;
        }
      }
      EXPECT_EQ(product, a * b) << "bits=" << bits;
    }
  }
}

TEST(Multiplier, WallaceShallowerThanArray) {
  const Circuit wal = make_wallace_multiplier(12);
  const Circuit arr = make_array_multiplier(12);
  EXPECT_LT(wal.depth() * 2, arr.depth());
}

// ----------------------------------------------------------- structures ----

TEST(Parity, MatchesPopcountParity) {
  const Circuit c = make_parity_tree(9);
  for (int bits = 0; bits < 512; ++bits) {
    std::vector<char> in(9);
    int ones = 0;
    for (int i = 0; i < 9; ++i) {
      in[i] = (bits >> i) & 1;
      ones += in[i];
    }
    const auto values = simulate(c, in);
    EXPECT_EQ(values[c.outputs()[0]] != 0, (ones % 2) == 1);
  }
}

TEST(PriorityEncoder, GrantsHighestPriorityOnly) {
  const Circuit c = make_priority_encoder(8);
  for (int bits = 0; bits < 256; ++bits) {
    std::vector<char> in(8);
    for (int i = 0; i < 8; ++i) in[i] = (bits >> i) & 1;
    const auto values = simulate(c, in);
    int first = -1;
    for (int i = 0; i < 8; ++i) {
      if (in[i]) {
        first = i;
        break;
      }
    }
    for (int i = 0; i < 8; ++i) {
      const bool grant = values[c.outputs()[static_cast<std::size_t>(i)]];
      EXPECT_EQ(grant, i == first) << "bits=" << bits << " i=" << i;
    }
    // valid output is last.
    EXPECT_EQ(values[c.outputs()[8]] != 0, first >= 0);
  }
}

TEST(Decoder, OneHot) {
  const Circuit c = make_decoder(3);
  for (int code = 0; code < 8; ++code) {
    for (int en = 0; en <= 1; ++en) {
      std::vector<char> in(4);
      for (int i = 0; i < 3; ++i) in[i] = (code >> i) & 1;
      in[3] = static_cast<char>(en);
      const auto values = simulate(c, in);
      for (int o = 0; o < 8; ++o) {
        const bool hot = values[c.outputs()[static_cast<std::size_t>(o)]];
        EXPECT_EQ(hot, en == 1 && o == code);
      }
    }
  }
}

TEST(MuxTree, SelectsData) {
  const Circuit c = make_mux_tree(3);  // 8 data + 3 sel
  Rng rng(5);
  for (int trial = 0; trial < 64; ++trial) {
    const auto data = static_cast<int>(rng.uniform_index(256));
    const auto sel = static_cast<int>(rng.uniform_index(8));
    std::vector<char> in(11);
    for (int i = 0; i < 8; ++i) in[i] = (data >> i) & 1;
    for (int i = 0; i < 3; ++i) in[8 + i] = (sel >> i) & 1;
    const auto values = simulate(c, in);
    EXPECT_EQ(values[c.outputs()[0]] != 0, ((data >> sel) & 1) == 1);
  }
}

TEST(Comparator, EqualAndGreater) {
  const Circuit c = make_comparator(5);
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = rng.uniform_index(32);
    const std::uint64_t b = rng.uniform_index(32);
    std::vector<char> in(10);
    pack(in, 0, a, 5);
    pack(in, 5, b, 5);
    const auto values = simulate(c, in);
    EXPECT_EQ(values[c.outputs()[0]] != 0, a == b) << a << " vs " << b;
    EXPECT_EQ(values[c.outputs()[1]] != 0, a > b) << a << " vs " << b;
  }
}

TEST(Alu, AllOpcodes) {
  const int bits = 6;
  const Circuit c = make_alu(bits);
  Rng rng(11);
  const std::uint64_t mask = (1ull << bits) - 1;
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.uniform_index(mask + 1);
    const std::uint64_t b = rng.uniform_index(mask + 1);
    const int op = trial % 4;
    std::vector<char> in(c.inputs().size(), 0);
    pack(in, 0, a, bits);
    pack(in, static_cast<std::size_t>(bits), b, bits);
    in[static_cast<std::size_t>(2 * bits)] = op & 1;
    in[static_cast<std::size_t>(2 * bits) + 1] = (op >> 1) & 1;
    const auto values = simulate(c, in);
    std::uint64_t result = 0;
    for (int i = 0; i < bits; ++i) {
      if (values[c.outputs()[static_cast<std::size_t>(i)]]) {
        result |= 1ull << i;
      }
    }
    std::uint64_t expected = 0;
    switch (op) {
      case 0: expected = (a + b) & mask; break;
      case 1: expected = a & b; break;
      case 2: expected = a | b; break;
      case 3: expected = a ^ b; break;
    }
    EXPECT_EQ(result, expected) << "op=" << op << " a=" << a << " b=" << b;
  }
}

TEST(Ecc, CleanWordHasZeroSyndrome) {
  // Compute the check bits the circuit expects by simulating with zero
  // check inputs, reading the syndrome, then feeding it back.
  const int data_bits = 16;
  const int check_bits = 5;
  const Circuit c = make_ecc_checker(data_bits, check_bits, false);
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t word = rng.uniform_index(1ull << data_bits);
    std::vector<char> in(static_cast<std::size_t>(data_bits + check_bits), 0);
    pack(in, 0, word, data_bits);
    auto values = simulate(c, in);
    // Syndrome with zero check bits = the stored parity for this word.
    std::uint64_t parity = 0;
    for (int s = 0; s < check_bits; ++s) {
      if (values[c.outputs()[static_cast<std::size_t>(s)]]) {
        parity |= 1ull << s;
      }
    }
    pack(in, static_cast<std::size_t>(data_bits), parity, check_bits);
    values = simulate(c, in);
    for (int s = 0; s < check_bits; ++s) {
      EXPECT_EQ(values[c.outputs()[static_cast<std::size_t>(s)]], 0);
    }
    // error_detect (last output) must be low.
    EXPECT_EQ(values[c.outputs()[static_cast<std::size_t>(check_bits)]], 0);

    // Now flip one data bit: the syndrome must flag it.
    const auto flip = static_cast<std::size_t>(rng.uniform_index(data_bits));
    in[flip] = in[flip] ? 0 : 1;
    values = simulate(c, in);
    EXPECT_EQ(values[c.outputs()[static_cast<std::size_t>(check_bits)]], 1);
  }
}

TEST(Ecc, NandExpansionPreservesFunction) {
  const Circuit plain = make_ecc_checker(12, 4, false);
  const Circuit expanded = make_ecc_checker(12, 4, true);
  EXPECT_GT(expanded.num_cells(), 2 * plain.num_cells());
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<char> in(16);
    for (auto& bit : in) bit = rng.uniform_index(2) ? 1 : 0;
    const auto va = simulate(plain, in);
    const auto vb = simulate(expanded, in);
    for (std::size_t o = 0; o < plain.outputs().size(); ++o) {
      EXPECT_EQ(va[plain.outputs()[o]], vb[expanded.outputs()[o]]);
    }
  }
}

// ----------------------------------------------------------- random DAG ----

TEST(RandomDag, DeterministicPerSeed) {
  RandomDagSpec spec;
  spec.num_gates = 300;
  spec.seed = 99;
  const Circuit a = make_random_dag(spec);
  const Circuit b = make_random_dag(spec);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId id = 0; id < a.num_gates(); ++id) {
    EXPECT_EQ(a.gate(id).kind, b.gate(id).kind);
    EXPECT_EQ(a.gate(id).fanins, b.gate(id).fanins);
  }
}

TEST(RandomDag, DifferentSeedsDiffer) {
  RandomDagSpec spec;
  spec.num_gates = 300;
  spec.seed = 1;
  const Circuit a = make_random_dag(spec);
  spec.seed = 2;
  const Circuit b = make_random_dag(spec);
  bool any_diff = a.num_gates() != b.num_gates();
  for (GateId id = 0; !any_diff && id < a.num_gates(); ++id) {
    any_diff = a.gate(id).kind != b.gate(id).kind ||
               a.gate(id).fanins != b.gate(id).fanins;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomDag, RequestedSize) {
  RandomDagSpec spec;
  spec.num_inputs = 20;
  spec.num_gates = 500;
  spec.seed = 3;
  const Circuit c = make_random_dag(spec);
  EXPECT_EQ(c.num_cells(), 500u);
  EXPECT_EQ(c.inputs().size(), 20u);
  EXPECT_GE(c.outputs().size(), 1u);
}

TEST(RandomDag, NoDanglingCells) {
  RandomDagSpec spec;
  spec.num_gates = 400;
  spec.seed = 5;
  const Circuit c = make_random_dag(spec);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    if (c.gate(id).kind == CellKind::kInput) continue;
    EXPECT_TRUE(!c.fanouts(id).empty() || c.is_output(id))
        << "gate " << c.gate(id).name << " is dangling";
  }
}

TEST(RandomDag, RejectsBadSpec) {
  RandomDagSpec spec;
  spec.num_inputs = 1;
  EXPECT_THROW(make_random_dag(spec), Error);
}

// -------------------------------------------------------------- proxies ----

TEST(Proxy, NamesAndMirrors) {
  const auto names = iscas85_proxy_names();
  EXPECT_EQ(names.size(), 10u);
  EXPECT_EQ(mirrors_of("c432p"), "c432");
  EXPECT_EQ(mirrors_of("c6288p"), "c6288");
}

TEST(Proxy, UnknownNameThrows) {
  EXPECT_THROW(iscas85_proxy("c9999"), Error);
}

TEST(Proxy, SizesTrackMirroredBenchmarks) {
  // Proxy cell counts should be within ~40 % of the mirrored ISCAS85 gate
  // counts (exact counts are not the goal; the size ladder is).
  const std::vector<std::pair<std::string, std::size_t>> targets = {
      {"c432p", 160},  {"c499p", 202},   {"c880p", 383},  {"c1355p", 546},
      {"c1908p", 880}, {"c2670p", 1193}, {"c3540p", 1669}, {"c5315p", 2307},
      {"c6288p", 2406}, {"c7552p", 3512}};
  for (const auto& [name, target] : targets) {
    const Circuit c = iscas85_proxy(name);
    const auto cells = static_cast<double>(c.num_cells());
    EXPECT_GT(cells, 0.55 * static_cast<double>(target)) << name;
    EXPECT_LT(cells, 1.6 * static_cast<double>(target)) << name;
  }
}

TEST(Proxy, SuiteIsSizeOrderedAndDeterministic) {
  const auto suite = iscas85_proxy_suite();
  ASSERT_EQ(suite.size(), 10u);
  const Circuit again = iscas85_proxy(suite[0].name());
  EXPECT_EQ(again.num_gates(), suite[0].num_gates());
}

TEST(Proxy, MultiplierProxyIsDeep) {
  const Circuit c = iscas85_proxy("c6288p");
  EXPECT_GT(c.depth(), 50);  // array multiplier: long ripple chains
}

TEST(Proxy, AllProxiesWellFormed) {
  for (const auto& name : iscas85_proxy_names()) {
    const Circuit c = iscas85_proxy(name);
    EXPECT_TRUE(c.finalized());
    EXPECT_GE(c.outputs().size(), 1u) << name;
    EXPECT_GE(c.inputs().size(), 4u) << name;
    // Simulation must run end to end.
    std::vector<char> in(c.inputs().size(), 1);
    EXPECT_NO_THROW(simulate(c, in)) << name;
  }
}

}  // namespace
}  // namespace statleak
