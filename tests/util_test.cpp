// Unit tests for statleak_util: RNG, normal distribution, statistics,
// Clark's max, lognormal, and the table formatter.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <numeric>

#include "util/clark.hpp"
#include "util/error.hpp"
#include "util/exec.hpp"
#include "util/lognormal.hpp"
#include "util/normal.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/tree_sum.hpp"

namespace statleak {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.uniform());
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIndexRoughlyUniform) {
  Rng rng(19);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalZigguratTailAndSymmetry) {
  // The ziggurat sampler must be exact in the tails (Marsaglia exponential
  // tail sampler beyond r ~ 3.654) and symmetric (sign comes from an
  // independent bit). P(|X| > 3) = 0.0026998 for a standard normal.
  Rng rng(11);
  const int n = 2000000;
  int beyond3 = 0;
  int beyond_r = 0;  // exercises the exact tail path
  int positive = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    if (std::abs(x) > 3.0) ++beyond3;
    if (std::abs(x) > 3.6541528853610088) ++beyond_r;
    if (x > 0.0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(beyond3) / n, 0.0026998, 3e-4);
  // P(|X| > r) ~ 2.57e-4: the tail path must actually produce samples.
  EXPECT_GT(beyond_r, 200);
  EXPECT_NEAR(static_cast<double>(beyond_r) / n, 2.57e-4, 8e-5);
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.002);
}

TEST(Rng, NormalKurtosisMatchesGaussian) {
  // Fourth moment: E[X^4] = 3 for N(0,1). A wedge/tail bug (the classic
  // Monty Python / ziggurat pitfalls) shows up here before it shows in the
  // variance.
  Rng rng(13);
  const int n = 1000000;
  double m2 = 0.0;
  double m4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    m2 += x * x;
    m4 += x * x * x * x;
  }
  m2 /= n;
  m4 /= n;
  EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.03);
}

TEST(Rng, FillNormalMatchesRepeatedCalls) {
  Rng a(99);
  Rng b(99);
  std::vector<double> block(257);
  a.fill_normal(block);
  for (double x : block) {
    EXPECT_EQ(x, b.normal());  // bit-identical to the draw-by-draw sequence
  }
}

TEST(Rng, NormalShiftScale) {
  Rng rng(5);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  // Child stream differs from the parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamSeedGoldenValues) {
  // Pins the counter-based stream derivation: the Monte-Carlo engine's
  // per-sample streams (and therefore every MC experiment) depend on these
  // exact values. Update deliberately or not at all.
  EXPECT_EQ(stream_seed(42, 0), 0x032bd39e1a01ca35ull);
  EXPECT_EQ(stream_seed(42, 1), 0xecd66475d1d11bc6ull);
  EXPECT_EQ(stream_seed(7, 12345), 0x0effbec8f140342eull);
  EXPECT_EQ(mix64(1), 0x5692161d100b05e5ull);
}

TEST(Rng, StreamGoldenDraws) {
  Rng a = Rng::stream(42, 0);
  EXPECT_EQ(a(), 0x945987a45b1c7747ull);
  EXPECT_EQ(a(), 0xa69cc231cbc093cfull);
  EXPECT_EQ(a(), 0xda8b6c657e49866eull);
  Rng b = Rng::stream(42, 1);
  EXPECT_EQ(b(), 0x385a1ec06a16b8caull);
}

TEST(Rng, StreamsIndependentOfEachOther) {
  // Stream i must be reproducible without touching any other stream — the
  // decoupling that makes MC samples order-independent.
  Rng direct = Rng::stream(99, 5);
  Rng after_others = Rng::stream(99, 5);
  Rng other = Rng::stream(99, 4);
  (void)other();  // consuming another stream must not matter
  for (int i = 0; i < 16; ++i) EXPECT_EQ(direct(), after_others());
}

TEST(Rng, AdjacentStreamsDecorrelated) {
  Rng a = Rng::stream(1, 1000);
  Rng b = Rng::stream(1, 1001);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ----------------------------------------------------------- parallel ----

TEST(Parallel, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(1), 1);
  EXPECT_EQ(resolve_num_threads(5), 5);
  EXPECT_GE(resolve_num_threads(0), 1);
  EXPECT_GE(resolve_num_threads(-3), 1);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    const std::size_t n = 1000;
    std::vector<int> hits(n, 0);
    parallel_for(threads, n,
                 [&](std::size_t begin, std::size_t end, int /*worker*/) {
                   for (std::size_t i = begin; i < end; ++i) ++hits[i];
                 });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n))
        << "threads = " << threads;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
  }
}

TEST(Parallel, ShardsAreContiguousAndOrderedByWorker) {
  ThreadPool pool(4);
  const std::size_t n = 103;
  std::vector<std::pair<std::size_t, std::size_t>> shards(
      static_cast<std::size_t>(pool.size()), {0, 0});
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end, int worker) {
    shards[static_cast<std::size_t>(worker)] = {begin, end};
  });
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GE(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(Parallel, PoolIsReusable) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run([&](int /*worker*/) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * pool.size());
}

TEST(Parallel, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(4, 0, [&](std::size_t, std::size_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(4, 1, [&](std::size_t begin, std::size_t end, int /*w*/) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t, int) {
                          if (begin > 0) throw Error("worker boom");
                        }),
      Error);
  // The pool must survive a throwing task.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end, int) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

// ------------------------------------------------------------- normal ----

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(Normal, CdfTailsAccurate) {
  // erfc-based implementation keeps relative accuracy deep in the tail.
  EXPECT_NEAR(normal_cdf(-6.0) / 9.865876450377018e-10, 1.0, 1e-6);
  EXPECT_GT(normal_cdf(-30.0), 0.0);
}

TEST(Normal, InverseCdfRoundTrip) {
  for (double p : {1e-6, 1e-3, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999,
                   1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_inverse_cdf(p)), p, 1e-12)
        << "p = " << p;
  }
}

TEST(Normal, InverseCdfKnownValues) {
  EXPECT_NEAR(normal_inverse_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_inverse_cdf(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(normal_inverse_cdf(0.99), 2.3263478740408408, 1e-9);
}

TEST(Normal, InverseCdfRejectsOutOfRange) {
  EXPECT_THROW(normal_inverse_cdf(0.0), Error);
  EXPECT_THROW(normal_inverse_cdf(1.0), Error);
  EXPECT_THROW(normal_inverse_cdf(-0.5), Error);
}

TEST(Normal, ParameterizedCdfAndQuantile) {
  EXPECT_NEAR(normal_cdf(12.0, 10.0, 2.0), normal_cdf(1.0), 1e-12);
  EXPECT_NEAR(normal_quantile(0.9, 10.0, 2.0),
              10.0 + 2.0 * normal_inverse_cdf(0.9), 1e-12);
}

TEST(Normal, DegenerateSigmaIsStep) {
  EXPECT_EQ(normal_cdf(9.99, 10.0, 0.0), 0.0);
  EXPECT_EQ(normal_cdf(10.0, 10.0, 0.0), 1.0);
}

// -------------------------------------------------------------- stats ----

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  EXPECT_NEAR(rs.variance(), 37.2, 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), Error);
  EXPECT_THROW(rs.min(), Error);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 20.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.99), 7.0);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(quantile(xs, 0.5), Error);
}

TEST(Quantile, OutOfRangeThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(quantile(xs, -0.1), Error);
  EXPECT_THROW(quantile(xs, 1.1), Error);
}

TEST(WeightedStats, MeanMatchesHandComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  const std::vector<double> ws = {1.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), (1.0 + 2.0 + 8.0) / 4.0);
  // Equal weights reduce to the plain mean.
  const std::vector<double> eq = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, eq), mean_of(xs));
}

TEST(WeightedStats, QuantileScaleInvariantAndMonotone) {
  // Quantiles depend on relative weights only, and are monotone in q.
  const std::vector<double> xs = {1.0, 5.0, 9.0};
  const std::vector<double> ws = {2.0, 1.0, 1.0};
  const std::vector<double> scaled = {20.0, 10.0, 10.0};
  double prev = weighted_quantile(xs, ws, 0.0);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double v = weighted_quantile(xs, ws, q);
    EXPECT_DOUBLE_EQ(v, weighted_quantile(xs, scaled, q)) << "q=" << q;
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(WeightedStats, QuantileFollowsTheMass) {
  // Shifting weight toward a sample pulls every interior quantile toward
  // it: median of {1 w3, 9 w1} < median of {1 w1, 9 w3}.
  const std::vector<double> xs = {1.0, 9.0};
  const std::vector<double> heavy_low = {3.0, 1.0};
  const std::vector<double> heavy_high = {1.0, 3.0};
  EXPECT_LT(weighted_quantile(xs, heavy_low, 0.5),
            weighted_quantile(xs, heavy_high, 0.5));
  // A sample holding (almost) all the mass owns the median (up to the
  // vanishing interpolation sliver past its midpoint).
  const std::vector<double> dominant = {1e9, 1.0};
  EXPECT_NEAR(weighted_quantile(xs, dominant, 0.5), 1.0, 1e-6);
}

TEST(WeightedStats, QuantileInterpolatesMidpoints) {
  // Two equal-weight samples: midpoint positions 0.25 and 0.75, linear in
  // between, clamped to the extremes outside.
  const std::vector<double> xs = {10.0, 20.0};
  const std::vector<double> ws = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 0.75), 20.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 1.0), 20.0);
}

TEST(WeightedStats, QuantileUnsortedAndZeroWeightHandled) {
  const std::vector<double> xs = {30.0, 10.0, 20.0, 99.0};
  const std::vector<double> ws = {1.0, 1.0, 1.0, 0.0};
  // The zero-weight sample must not influence any quantile.
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(weighted_quantile(xs, ws, 1.0), 30.0);
}

TEST(WeightedStats, EqualWeightQuantileConvergesToPlain) {
  // The midpoint convention differs from quantile()'s endpoints by O(1/n).
  Rng rng(4);
  std::vector<double> xs(2000);
  for (double& x : xs) x = rng.normal();
  const std::vector<double> ones(xs.size(), 1.0);
  for (const double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(weighted_quantile(xs, ones, q), quantile(xs, q), 5e-3);
  }
}

TEST(WeightedStats, FractionBelowAndEss) {
  // Weights are exact likelihood ratios (mean 1), the contract of the
  // unnormalized estimator sum(w * indicator) / n.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ws = {0.5, 0.5, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(weighted_fraction_below(xs, ws, 2.5), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(weighted_fraction_below(xs, ws, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(weighted_fraction_below(xs, ws, 4.0), 1.0);

  // The estimator reads off whichever side of the threshold the weights
  // make quieter: here the heavy weight sits above 2.5, so the below side
  // is used directly and its standard error beats the complement's.
  const auto est = weighted_fraction_below_est(xs, ws, 2.5);
  EXPECT_DOUBLE_EQ(est.value, 1.0 / 4.0);
  double s2_b = 0.0;  // below-side summand variance by hand
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double y = xs[i] <= 2.5 ? ws[i] : 0.0;
    s2_b += (y - 0.25) * (y - 0.25);
  }
  EXPECT_NEAR(est.std_error, std::sqrt(s2_b / 4.0 / 4.0), 1e-12);

  const std::vector<double> eq(4, 2.5);
  EXPECT_DOUBLE_EQ(effective_sample_size(eq), 4.0);
  const std::vector<double> kish = {1.0, 1.0, 1.0, 5.0};
  EXPECT_NEAR(effective_sample_size(kish), 64.0 / 28.0, 1e-12);
  const std::vector<double> degenerate = {0.0, 0.0, 7.0};
  EXPECT_DOUBLE_EQ(effective_sample_size(degenerate), 1.0);
}

TEST(WeightedStats, CiHalfwidthConsistency) {
  Rng rng(9);
  std::vector<double> xs(500);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  const std::vector<double> ones(xs.size(), 1.0);
  const double plain = mean_ci_halfwidth(xs);
  // Equal weights: the delta-method form reduces to z * s / sqrt(n) up to
  // the population-vs-sample variance factor, ~1/(2n) relative.
  EXPECT_NEAR(weighted_mean_ci_halfwidth(xs, ones), plain, 3e-3 * plain);
  // 99% interval is wider than 95%.
  EXPECT_GT(mean_ci_halfwidth(xs, 0.99), plain);
  // Rough magnitude: z=1.96, sigma~=2, n=500.
  EXPECT_NEAR(plain, 1.96 * 2.0 / std::sqrt(500.0), 0.05);
}

TEST(WeightedStats, RejectsInvalidInput) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> short_w = {1.0};
  const std::vector<double> neg_w = {1.0, -0.5};
  const std::vector<double> zero_w = {0.0, 0.0};
  const std::vector<double> ok_w = {1.0, 1.0};
  EXPECT_THROW(weighted_mean(xs, short_w), Error);
  EXPECT_THROW(weighted_mean(xs, neg_w), Error);
  EXPECT_THROW(weighted_mean(xs, zero_w), Error);
  EXPECT_THROW(weighted_quantile(xs, neg_w, 0.5), Error);
  EXPECT_THROW(weighted_quantile(xs, ok_w, 1.5), Error);
  EXPECT_THROW(weighted_fraction_below(xs, short_w, 0.0), Error);
  EXPECT_THROW(effective_sample_size(std::vector<double>{}), Error);
  EXPECT_THROW(mean_ci_halfwidth(std::vector<double>{}), Error);
  EXPECT_THROW(mean_ci_halfwidth(xs, 0.0), Error);
  EXPECT_THROW(mean_ci_halfwidth(xs, 1.0), Error);
}

TEST(Summarize, FieldsConsistent) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.normal(5.0, 1.0));
  const SampleSummary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_NEAR(s.mean, 5.0, 0.05);
  EXPECT_NEAR(s.stddev, 1.0, 0.05);
  EXPECT_NEAR(s.p50, 5.0, 0.05);
  EXPECT_NEAR(s.p95, 5.0 + 1.6449, 0.1);
  EXPECT_NEAR(s.p99, 5.0 + 2.3263, 0.15);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(correlation(x, y), 0.0, 0.02);
}

TEST(Correlation, SizeMismatchThrows) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(correlation(x, y), Error);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(15.0);  // clamps to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.bins[0], 2u);
  EXPECT_EQ(h.bins[9], 2u);
  EXPECT_EQ(h.bins[5], 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, DensityIntegratesToOne) {
  Rng rng(4);
  Histogram h(-4.0, 4.0, 64);
  for (int i = 0; i < 50000; ++i) h.add(rng.normal());
  double integral = 0.0;
  const double width = 8.0 / 64.0;
  for (std::size_t i = 0; i < h.bins.size(); ++i) {
    integral += h.density(i) * width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
  EXPECT_NEAR(h.center(32), 0.0625, 1e-12);
}

// -------------------------------------------------------------- clark ----

TEST(Clark, IndependentStandardNormals) {
  // E[max(X, Y)] = 1/sqrt(pi) for independent standard normals.
  const ClarkMax m = clark_max(0.0, 1.0, 0.0, 1.0, 0.0);
  EXPECT_NEAR(m.mean, 1.0 / std::sqrt(M_PI), 1e-12);
  EXPECT_NEAR(m.tightness, 0.5, 1e-12);
  // Var[max] = 1 - 1/pi.
  EXPECT_NEAR(m.variance, 1.0 - 1.0 / M_PI, 1e-12);
}

TEST(Clark, PerfectlyCorrelatedEqualOperands) {
  const ClarkMax m = clark_max(5.0, 2.0, 5.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance, 2.0);
  EXPECT_DOUBLE_EQ(m.tightness, 1.0);
}

TEST(Clark, DominantOperandWins) {
  const ClarkMax m = clark_max(100.0, 1.0, 0.0, 1.0, 0.0);
  EXPECT_NEAR(m.mean, 100.0, 1e-6);
  EXPECT_NEAR(m.variance, 1.0, 1e-6);
  EXPECT_NEAR(m.tightness, 1.0, 1e-9);
}

TEST(Clark, SymmetricInOperands) {
  const ClarkMax ab = clark_max(3.0, 2.0, 4.0, 1.0, 0.3);
  const ClarkMax ba = clark_max(4.0, 1.0, 3.0, 2.0, 0.3);
  EXPECT_NEAR(ab.mean, ba.mean, 1e-12);
  EXPECT_NEAR(ab.variance, ba.variance, 1e-12);
  EXPECT_NEAR(ab.tightness, 1.0 - ba.tightness, 1e-12);
}

TEST(Clark, MatchesMonteCarlo) {
  Rng rng(9);
  const double m1 = 10.0, s1 = 2.0, m2 = 11.0, s2 = 1.5, rho = 0.4;
  RunningStats rs;
  int x_wins = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double z1 = rng.normal();
    const double z2 = rho * z1 + std::sqrt(1.0 - rho * rho) * rng.normal();
    const double x = m1 + s1 * z1;
    const double y = m2 + s2 * z2;
    rs.add(std::max(x, y));
    if (x >= y) ++x_wins;
  }
  const ClarkMax m = clark_max(m1, s1 * s1, m2, s2 * s2, rho);
  EXPECT_NEAR(m.mean, rs.mean(), 0.02);
  EXPECT_NEAR(std::sqrt(m.variance), rs.stddev(), 0.02);
  EXPECT_NEAR(m.tightness, static_cast<double>(x_wins) / n, 0.01);
}

TEST(Clark, MeanAtLeastBothOperands) {
  const ClarkMax m = clark_max(1.0, 0.5, 1.2, 0.25, -0.5);
  EXPECT_GE(m.mean, 1.2);
  EXPECT_GE(m.variance, 0.0);
}

TEST(Clark, RejectsNegativeVariance) {
  EXPECT_THROW(clark_max(0.0, -1.0, 0.0, 1.0, 0.0), Error);
}

TEST(Clark, RejectsBadCorrelation) {
  EXPECT_THROW(clark_max(0.0, 1.0, 0.0, 1.0, 2.0), Error);
}

// ----------------------------------------------------------- lognormal ----

TEST(Lognormal, MomentsClosedForm) {
  const Lognormal ln{1.0, 0.25};
  EXPECT_NEAR(ln.mean(), std::exp(1.125), 1e-12);
  EXPECT_NEAR(ln.variance(),
              (std::exp(0.25) - 1.0) * std::exp(2.0 + 0.25), 1e-9);
  EXPECT_NEAR(ln.median(), std::exp(1.0), 1e-12);
}

TEST(Lognormal, FromMomentsRoundTrip) {
  const Lognormal ln = Lognormal::from_moments(100.0, 400.0);
  EXPECT_NEAR(ln.mean(), 100.0, 1e-9);
  EXPECT_NEAR(ln.variance(), 400.0, 1e-6);
}

TEST(Lognormal, QuantileCdfInverse) {
  const Lognormal ln = Lognormal::from_moments(50.0, 900.0);
  for (double p : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_NEAR(ln.cdf(ln.quantile(p)), p, 1e-10);
  }
}

TEST(Lognormal, CdfAtNonPositive) {
  const Lognormal ln{0.0, 1.0};
  EXPECT_EQ(ln.cdf(0.0), 0.0);
  EXPECT_EQ(ln.cdf(-3.0), 0.0);
}

TEST(Lognormal, ZeroVarianceDegenerates) {
  const Lognormal ln = Lognormal::from_moments(42.0, 0.0);
  EXPECT_NEAR(ln.mean(), 42.0, 1e-9);
  EXPECT_NEAR(ln.quantile(0.99), 42.0, 1e-6);
}

TEST(Lognormal, MatchesSampling) {
  Rng rng(13);
  const Lognormal ln{2.0, 0.09};
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    rs.add(std::exp(rng.normal(2.0, 0.3)));
  }
  EXPECT_NEAR(rs.mean(), ln.mean(), ln.mean() * 0.01);
  EXPECT_NEAR(rs.stddev(), ln.stddev(), ln.stddev() * 0.02);
}

TEST(Lognormal, FromMomentsRejectsBadInput) {
  EXPECT_THROW(Lognormal::from_moments(0.0, 1.0), Error);
  EXPECT_THROW(Lognormal::from_moments(-1.0, 1.0), Error);
  EXPECT_THROW(Lognormal::from_moments(1.0, -1.0), Error);
}

// -------------------------------------------------------------- table ----

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.begin_row();
  t.add("x");
  t.add(1.5, 1);
  t.begin_row();
  t.add("longer");
  t.add_int(42);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| x      | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 42    |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.begin_row();
  t.add("plain");
  t.add("has,comma");
  t.begin_row();
  t.add("has\"quote");
  t.add("x");
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\",x\n"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.begin_row();
  t.add("a");
  EXPECT_THROW(t.add("b"), Error);
}

TEST(Table, AddBeforeBeginRowThrows) {
  Table t({"c"});
  EXPECT_THROW(t.add("x"), Error);
}

TEST(FormatSi, PicksPrefixes) {
  EXPECT_EQ(format_si(1.5e-9, "A", 2), "1.50 nA");
  EXPECT_EQ(format_si(2.5e-6, "A", 1), "2.5 uA");
  EXPECT_EQ(format_si(3.0, "V", 0), "3 V");
  EXPECT_EQ(format_si(4.2e3, "Hz", 1), "4.2 kHz");
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

// ------------------------------------------------------------ TreeSum ----

TEST(TreeSum, EmptyAndSingle) {
  TreeSum empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.total(), 0.0);

  TreeSum one(1);
  EXPECT_EQ(one.total(), 0.0);
  one.set(0, 2.5);
  EXPECT_EQ(one.get(0), 2.5);
  EXPECT_EQ(one.total(), 2.5);
  EXPECT_EQ(one.total_with(0, -1.0), -1.0);
}

TEST(TreeSum, SetMatchesAssignBitwise) {
  // The fixed reduction shape means any fill order lands on the same total.
  for (const std::size_t n : {2u, 3u, 7u, 8u, 100u, 1000u}) {
    Rng rng(n);
    std::vector<double> values(n);
    // Values with wildly different magnitudes so sum order matters.
    for (double& v : values) {
      v = rng.uniform() * std::pow(10.0, rng.uniform(-8.0, 8.0));
    }

    TreeSum bulk(n);
    bulk.assign(values);

    TreeSum forward(n);
    for (std::size_t i = 0; i < n; ++i) forward.set(i, values[i]);

    TreeSum backward(n);
    for (std::size_t i = n; i-- > 0;) backward.set(i, values[i]);

    TreeSum shuffled(n);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    // Overwrite every slot twice in random order: stale intermediate
    // values must leave no trace.
    for (std::size_t i : order) shuffled.set(i, values[i] + 1.0);
    for (std::size_t i : order) shuffled.set(i, values[i]);

    EXPECT_EQ(forward.total(), bulk.total()) << "n=" << n;
    EXPECT_EQ(backward.total(), bulk.total()) << "n=" << n;
    EXPECT_EQ(shuffled.total(), bulk.total()) << "n=" << n;
  }
}

TEST(TreeSum, TotalWithMatchesSetBitwise) {
  const std::size_t n = 37;
  Rng rng(7);
  TreeSum sum(n);
  for (std::size_t i = 0; i < n; ++i) sum.set(i, rng.uniform(-5.0, 5.0));

  for (std::size_t i = 0; i < n; ++i) {
    const double candidate = rng.uniform(-100.0, 100.0);
    const double predicted = sum.total_with(i, candidate);
    const double before = sum.get(i);
    sum.set(i, candidate);
    EXPECT_EQ(sum.total(), predicted) << "slot " << i;
    sum.set(i, before);  // total_with must not have mutated anything
  }
}

TEST(TreeSum, ResetClears) {
  TreeSum sum(4);
  sum.set(0, 1.0);
  sum.set(3, 2.0);
  sum.reset(2);
  EXPECT_EQ(sum.size(), 2u);
  EXPECT_EQ(sum.total(), 0.0);
  sum.set(1, 3.5);
  EXPECT_EQ(sum.total(), 3.5);
}

TEST(TreeSum, PairwiseBeatsSequentialAccumulation) {
  // 1 + n*eps/2 summed n times: sequential accumulation loses the tiny
  // addends, pairwise keeps them. Documents the numerical upgrade.
  const std::size_t n = 1u << 20;
  const double tiny = 1.0 / static_cast<double>(n);
  std::vector<double> values(n, tiny);
  TreeSum sum(n);
  sum.assign(values);
  double sequential = 0.0;
  for (double v : values) sequential += v;
  const double exact = 1.0;
  EXPECT_LE(std::abs(sum.total() - exact), std::abs(sequential - exact));
  EXPECT_EQ(sum.total(), exact);  // powers of two sum exactly pairwise
}

// -------------------------------------------------------------- Error ----

TEST(Error, LiteralConstructorPreservesMessage) {
  const Error from_literal("bad input");
  EXPECT_STREQ(from_literal.what(), "bad input");
  const std::string dynamic = "built at runtime";
  const Error from_string(dynamic);
  EXPECT_STREQ(from_string.what(), dynamic.c_str());
}

TEST(Error, CheckThrowsWithFileLineAndMessage) {
  try {
    STATLEAK_CHECK(1 + 1 == 3, "arithmetic still works");
    FAIL() << "STATLEAK_CHECK(false) must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic still works"), std::string::npos) << what;
  }
}

TEST(Error, CheckMessageIsLazyOnSuccessPath) {
  // The message expression must not run when the condition holds — call
  // sites concatenate context strings freely on that promise.
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("expensive context");
  };
  STATLEAK_CHECK(true, expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(STATLEAK_CHECK(false, expensive()), Error);
  EXPECT_EQ(evaluations, 1);
}

// ----------------------------------------------------------- Deadline ----

TEST(Deadline, UnarmedNeverExpires) {
  const Deadline none;
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  const Deadline zero(0);
  EXPECT_FALSE(zero.armed());
  EXPECT_FALSE(zero.expired());
  const Deadline negative(-25);
  EXPECT_FALSE(negative.armed());
  EXPECT_FALSE(negative.expired());
}

TEST(Deadline, ArmedExpiresAfterBudgetElapses) {
  const Deadline d(1);
  EXPECT_TRUE(d.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, GenerousBudgetIsNotExpiredImmediately) {
  const Deadline d(60'000);
  EXPECT_TRUE(d.armed());
  EXPECT_FALSE(d.expired());
}

}  // namespace
}  // namespace statleak
