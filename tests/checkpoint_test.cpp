// Checkpoint/resume for long Monte-Carlo runs: the wire format (CRC-32,
// two-phase commit, structured rejection of every corruption class) and the
// headline guarantee — a killed-and-resumed run is bit-identical to an
// uninterrupted one for any cut point, engine, and thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "gen/arithmetic.hpp"
#include "mc/checkpoint.hpp"
#include "mc/monte_carlo.hpp"
#include "tech/process.hpp"
#include "util/health.hpp"

namespace statleak {
namespace {

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t load_u64(const std::vector<std::uint8_t>& bytes,
                       std::size_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

void store_u32(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint32_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof v);
}

void store_u64(std::vector<std::uint8_t>& bytes, std::size_t offset,
               std::uint64_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof v);
}

/// Scoped temp file in the test working directory.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class CheckpointTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
  Circuit circuit_ = make_ripple_carry_adder(8);

  McConfig base_config() const {
    McConfig cfg;
    cfg.num_samples = 400;
    cfg.seed = 5;
    return cfg;
  }

  /// The config hash run_monte_carlo would compute for base_config(),
  /// recovered from a checkpoint file it wrote (header offset 8).
  std::uint64_t reference_hash(const std::string& scratch_path) {
    McConfig cfg = base_config();
    cfg.checkpoint_path = scratch_path;
    (void)run_monte_carlo(circuit_, lib_, var_, cfg);
    const std::vector<std::uint8_t> bytes = read_bytes(scratch_path);
    return load_u64(bytes, 8);
  }
};

// ---------------------------------------------------------------- format ---

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const char data[] = "chained-crc-data";
  const std::uint32_t whole = crc32(data, sizeof data - 1);
  const std::uint32_t first = crc32(data, 7);
  const std::uint32_t rest = crc32(data + 7, sizeof data - 1 - 7, first);
  EXPECT_EQ(whole, rest);
}

TEST_F(CheckpointTest, WriterRoundTrip) {
  TempFile f("ckpt_roundtrip.bin");
  const std::uint64_t hash = 0xABCDEF12u;
  const std::uint64_t n = 10;
  {
    auto w = CheckpointWriter::create(f.path(), hash, n);
    const std::vector<double> d1 = {1.0, 2.0, 3.0};
    const std::vector<double> l1 = {10.0, 20.0, 30.0};
    w->append(0, d1, l1);
    const std::vector<double> d2 = {7.5, 8.5};
    const std::vector<double> l2 = {70.5, 80.5};
    w->append(7, d2, l2);
    EXPECT_TRUE(w->healthy());
    EXPECT_EQ(w->records_appended(), 2u);
  }
  const CheckpointData data = load_checkpoint(f.path(), hash, n);
  EXPECT_EQ(data.num_samples, n);
  EXPECT_EQ(data.done_count, 5u);
  EXPECT_EQ(data.dropped_tail_bytes, 0u);
  const std::vector<std::uint8_t> want_done = {1, 1, 1, 0, 0, 0, 0, 1, 1, 0};
  EXPECT_EQ(data.done, want_done);
  EXPECT_EQ(data.delay_ps[1], 2.0);
  EXPECT_EQ(data.leakage_na[2], 30.0);
  EXPECT_EQ(data.delay_ps[8], 8.5);
  EXPECT_EQ(data.leakage_na[7], 70.5);
  EXPECT_EQ(data.delay_ps[5], 0.0);  // undone slot
}

TEST_F(CheckpointTest, ExistsOnlyForNonEmptyFiles) {
  TempFile f("ckpt_exists.bin");
  EXPECT_FALSE(checkpoint_exists(f.path()));
  write_bytes(f.path(), {});
  EXPECT_FALSE(checkpoint_exists(f.path()));
  write_bytes(f.path(), {1, 2, 3});
  EXPECT_TRUE(checkpoint_exists(f.path()));
}

// ------------------------------------------------------------- rejection ---
// Every corruption class is a structured CheckpointError naming the file,
// never UB and never a silently wrong restore.

TEST_F(CheckpointTest, RejectsTruncatedHeader) {
  TempFile f("ckpt_trunc_header.bin");
  write_bytes(f.path(), std::vector<std::uint8_t>(12, 0x5A));
  EXPECT_THROW((void)load_checkpoint(f.path(), 1, 10), CheckpointError);
}

TEST_F(CheckpointTest, RejectsGarbage) {
  TempFile f("ckpt_garbage.bin");
  write_bytes(f.path(), std::vector<std::uint8_t>(64, 0x5A));
  try {
    (void)load_checkpoint(f.path(), 1, 10);
    FAIL() << "garbage accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos);
  }
}

TEST_F(CheckpointTest, RejectsEachCorruptionClass) {
  TempFile f("ckpt_corrupt.bin");
  const std::uint64_t hash = 77;
  const std::uint64_t n = 10;
  {
    auto w = CheckpointWriter::create(f.path(), hash, n);
    const std::vector<double> vals = {1.0, 2.0, 3.0, 4.0};
    w->append(2, vals, vals);
  }
  const std::vector<std::uint8_t> good = read_bytes(f.path());
  ASSERT_GE(good.size(), kCheckpointHeaderBytes);

  const auto expect_reject = [&](std::vector<std::uint8_t> bytes,
                                 const char* label,
                                 bool fix_header_crc = false) {
    if (fix_header_crc) store_u32(bytes, 32, crc32(bytes.data(), 32));
    write_bytes(f.path(), bytes);
    EXPECT_THROW((void)load_checkpoint(f.path(), hash, n), CheckpointError)
        << label;
  };

  {  // bad magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;
    expect_reject(bad, "bad magic");
  }
  {  // unknown version (header CRC re-stamped so only the version trips)
    std::vector<std::uint8_t> bad = good;
    store_u32(bad, 4, kCheckpointVersion + 9);
    expect_reject(bad, "bad version", /*fix_header_crc=*/true);
  }
  {  // header CRC mismatch
    std::vector<std::uint8_t> bad = good;
    bad[32] ^= 0xFF;
    expect_reject(bad, "bad header crc");
  }
  // The v2 record envelope: payload_len u64 @ +0, kind u32 @ +8, crc u32
  // @ +12 (CRC of those 12 bytes chained over the payload), payload after.
  const std::size_t env = kCheckpointHeaderBytes;        // first record
  const std::size_t payload = env + kJournalRecordBytes; // its payload
  const std::size_t payload_len = 16 + 2 * 4 * sizeof(double);
  const auto restamp_record_crc = [&](std::vector<std::uint8_t>& bytes) {
    store_u32(bytes, env + 12,
              crc32(bytes.data() + payload, payload_len,
                    crc32(bytes.data() + env, 12)));
  };

  {  // record CRC mismatch: flip one payload byte inside the committed region
    std::vector<std::uint8_t> bad = good;
    bad[payload + 16 + 3] ^= 0xFF;  // third delay byte, past begin/count
    expect_reject(bad, "bad record crc");
  }
  {  // unknown record kind (record CRC re-stamped so only the kind trips)
    std::vector<std::uint8_t> bad = good;
    store_u32(bad, env + 8, 7);
    restamp_record_crc(bad);
    expect_reject(bad, "bad record kind");
  }
  {  // record overruns the population: begin pushed past num_samples - count
    std::vector<std::uint8_t> bad = good;
    store_u64(bad, payload, 8);  // begin 2 -> 8, count 4
    restamp_record_crc(bad);
    expect_reject(bad, "record overrun");
  }
  {  // malformed payload: count claims more doubles than the record holds
    std::vector<std::uint8_t> bad = good;
    store_u64(bad, payload + 8, 6);  // count 4 -> 6, begin still in range
    restamp_record_crc(bad);
    expect_reject(bad, "malformed payload length");
  }
  {  // file shorter than committed_bytes
    std::vector<std::uint8_t> bad = good;
    bad.resize(bad.size() - 8);
    expect_reject(bad, "truncated committed region");
  }
  {  // config-hash mismatch
    write_bytes(f.path(), good);
    EXPECT_THROW((void)load_checkpoint(f.path(), hash + 1, n),
                 CheckpointError);
  }
  {  // population-size mismatch
    write_bytes(f.path(), good);
    EXPECT_THROW((void)load_checkpoint(f.path(), hash, n + 1),
                 CheckpointError);
  }
  // The untouched file still loads — the harness corrupts, not the writer.
  write_bytes(f.path(), good);
  EXPECT_EQ(load_checkpoint(f.path(), hash, n).done_count, 4u);
}

TEST_F(CheckpointTest, UncommittedTailIsDroppedNotFatal) {
  // A crash mid-append leaves flushed bytes past committed_bytes; the
  // two-phase commit makes them ignorable, not fatal.
  TempFile f("ckpt_tail.bin");
  const std::uint64_t hash = 9;
  const std::uint64_t n = 6;
  {
    auto w = CheckpointWriter::create(f.path(), hash, n);
    const std::vector<double> vals = {1.0, 2.0};
    w->append(0, vals, vals);
  }
  std::vector<std::uint8_t> bytes = read_bytes(f.path());
  for (int i = 0; i < 13; ++i) bytes.push_back(0xEE);  // torn partial record
  write_bytes(f.path(), bytes);

  const CheckpointData data = load_checkpoint(f.path(), hash, n);
  EXPECT_EQ(data.done_count, 2u);
  EXPECT_EQ(data.dropped_tail_bytes, 13u);

  // Resuming the writer truncates the torn tail and appends cleanly after.
  {
    auto w = CheckpointWriter::resume(f.path(), hash, n);
    const std::vector<double> vals = {5.0};
    w->append(4, vals, vals);
  }
  const CheckpointData after = load_checkpoint(f.path(), hash, n);
  EXPECT_EQ(after.done_count, 3u);
  EXPECT_EQ(after.dropped_tail_bytes, 0u);
  EXPECT_EQ(after.delay_ps[4], 5.0);
}

// ------------------------------------------------- resume bit-identity ----

TEST_F(CheckpointTest, ConfigHashCoversSamplerAndImportanceShift) {
  // The sampler kind and importance shift change every sampled value, so
  // they must be part of the config fingerprint: a Sobol or shifted run
  // must not resume a pseudo checkpoint. The control-variate flag leaves
  // samples untouched and is deliberately NOT fingerprinted.
  std::vector<double> widths(circuit_.num_gates(), -1.0);
  for (GateId id = 0; id < circuit_.num_gates(); ++id) {
    const Gate& g = circuit_.gate(id);
    if (g.kind != CellKind::kInput) {
      widths[id] = lib_.area_um(g.kind, g.size);
    }
  }
  const McConfig cfg = base_config();
  const std::uint64_t base = mc_checkpoint_hash(circuit_, var_, cfg, widths, lib_.node());

  McConfig sobol = cfg;
  sobol.sampler = McSampler::kSobol;
  const std::uint64_t sobol_hash =
      mc_checkpoint_hash(circuit_, var_, sobol, widths, lib_.node());
  EXPECT_NE(sobol_hash, base);

  McConfig shifted = cfg;
  shifted.is_shift = {0.5, 0.0};
  const std::uint64_t shift_l =
      mc_checkpoint_hash(circuit_, var_, shifted, widths, lib_.node());
  shifted.is_shift = {0.0, 0.5};
  const std::uint64_t shift_v =
      mc_checkpoint_hash(circuit_, var_, shifted, widths, lib_.node());
  EXPECT_NE(shift_l, base);
  EXPECT_NE(shift_v, base);
  EXPECT_NE(shift_l, shift_v);
  EXPECT_NE(shift_l, sobol_hash);

  McConfig cv = cfg;
  cv.control_variate = true;
  EXPECT_EQ(mc_checkpoint_hash(circuit_, var_, cv, widths, lib_.node()), base);

  // An environment corner (temperature, Vdd, node flavor) changes every
  // sampled value through the device constants, so it is fingerprinted too:
  // a 125 C or derated-Vdd run must not resume a nominal checkpoint.
  const std::uint64_t hot = mc_checkpoint_hash(
      circuit_, var_, cfg, widths, at_temperature(lib_.node(), 398.15));
  const std::uint64_t derated =
      mc_checkpoint_hash(circuit_, var_, cfg, widths, at_vdd(lib_.node(), 1.1));
  EXPECT_NE(hot, base);
  EXPECT_NE(derated, base);
  EXPECT_NE(hot, derated);
}

TEST_F(CheckpointTest, KillResumeBitIdenticalAcrossEnginesAndThreads) {
  // The tentpole guarantee. Reference: one uninterrupted run. Then, for
  // three cut points, rebuild a partial checkpoint holding only the slots
  // "finished before the kill" and resume it under every engine x thread
  // combination. Counter-based sample streams make the merged population
  // bitwise equal to the reference, whatever the cut.
  TempFile scratch("ckpt_hash_probe.bin");
  const std::uint64_t hash = reference_hash(scratch.path());

  const McConfig cfg = base_config();
  const auto n = static_cast<std::uint64_t>(cfg.num_samples);
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, cfg);
  ASSERT_EQ(ref.delay_ps.size(), n);

  TempFile partial("ckpt_partial.bin");
  for (const std::size_t cut : {std::size_t{1}, std::size_t{150},
                                std::size_t{399}}) {
    for (const bool batched : {true, false}) {
      for (const int threads : {1, 2, 8}) {
        {
          // The "killed" producer: committed [0, cut) plus a detached run
          // in the middle of the remainder (shard kills leave holes).
          auto w = CheckpointWriter::create(partial.path(), hash, n);
          w->append(0,
                    std::span<const double>(ref.delay_ps).subspan(0, cut),
                    std::span<const double>(ref.leakage_na).subspan(0, cut));
          if (cut + 40 < n) {
            w->append(cut + 20,
                      std::span<const double>(ref.delay_ps)
                          .subspan(cut + 20, 10),
                      std::span<const double>(ref.leakage_na)
                          .subspan(cut + 20, 10));
          }
        }
        McConfig resume_cfg = cfg;
        resume_cfg.checkpoint_path = partial.path();
        resume_cfg.use_batched = batched;
        resume_cfg.num_threads = threads;
        resume_cfg.checkpoint_every = 64;
        const McResult res =
            run_monte_carlo(circuit_, lib_, var_, resume_cfg);

        EXPECT_TRUE(res.completed);
        EXPECT_GE(res.samples_restored, cut);
        ASSERT_EQ(res.delay_ps.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(ref.delay_ps[i], res.delay_ps[i])
              << "cut " << cut << " batched " << batched << " threads "
              << threads << " sample " << i;
          ASSERT_EQ(ref.leakage_na[i], res.leakage_na[i])
              << "cut " << cut << " batched " << batched << " threads "
              << threads << " sample " << i;
        }

        // The resumed file is now complete and restores everything.
        const CheckpointData final_state =
            load_checkpoint(partial.path(), hash, n);
        EXPECT_EQ(final_state.done_count, n)
            << "cut " << cut << " batched " << batched << " threads "
            << threads;
      }
    }
  }
}

TEST_F(CheckpointTest, DeadlineInterruptThenResumeEqualsStraightRun) {
  // End-to-end: a deadline-stopped checkpointing run, resumed without a
  // deadline, lands on exactly the uninterrupted population.
  const McConfig cfg = base_config();
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, cfg);

  TempFile f("ckpt_deadline.bin");
  McConfig interrupted = cfg;
  interrupted.checkpoint_path = f.path();
  interrupted.checkpoint_every = 16;
  interrupted.deadline_ms = 1;  // may or may not expire; both are valid
  const McResult part = run_monte_carlo(circuit_, lib_, var_, interrupted);
  EXPECT_EQ(part.samples_done, part.delay_ps.size());

  McConfig resumed = cfg;
  resumed.checkpoint_path = f.path();
  const McResult res = run_monte_carlo(circuit_, lib_, var_, resumed);
  EXPECT_TRUE(res.completed);
  ASSERT_EQ(res.delay_ps.size(), ref.delay_ps.size());
  for (std::size_t i = 0; i < ref.delay_ps.size(); ++i) {
    ASSERT_EQ(ref.delay_ps[i], res.delay_ps[i]) << "sample " << i;
    ASSERT_EQ(ref.leakage_na[i], res.leakage_na[i]) << "sample " << i;
  }
}

// ------------------------------------------------------ health policies ---

TEST_F(CheckpointTest, PoisonedCheckpointQuarantinesOrFails) {
  // A checkpoint carrying a non-finite restored value (e.g. written by a
  // quarantining producer) must re-surface on resume: quarantined under
  // kQuarantine, NumericalError under the default kFail.
  TempFile scratch("ckpt_poison_probe.bin");
  const std::uint64_t hash = reference_hash(scratch.path());

  const McConfig cfg = base_config();
  const auto n = static_cast<std::uint64_t>(cfg.num_samples);
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, cfg);

  TempFile f("ckpt_poison.bin");
  const auto write_poisoned = [&]() {
    auto w = CheckpointWriter::create(f.path(), hash, n);
    std::vector<double> delay(ref.delay_ps.begin(), ref.delay_ps.begin() + 8);
    std::vector<double> leak(ref.leakage_na.begin(),
                             ref.leakage_na.begin() + 8);
    delay[2] = std::numeric_limits<double>::quiet_NaN();
    w->append(0, delay, leak);
  };

  // Scalar engine: restored slots are honoured individually, so the
  // poisoned value survives to the finalize health scan. (The batched
  // engine recomputes partially restored blocks whole, which would *heal*
  // this artificial NaN — a genuinely non-finite sample reproduces either
  // way, since recomputation is bit-identical.)
  write_poisoned();
  McConfig quarantine_cfg = cfg;
  quarantine_cfg.use_batched = false;
  quarantine_cfg.checkpoint_path = f.path();
  quarantine_cfg.health_policy = HealthPolicy::kQuarantine;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, quarantine_cfg);
  ASSERT_EQ(res.quarantined.size(), 1u);
  EXPECT_EQ(res.quarantined[0].slot, 2u);
  EXPECT_EQ(res.quarantined[0].cause, HealthCause::kNonFiniteDelay);
  ASSERT_EQ(res.delay_ps.size(), n - 1);
  // Survivors in slot order: slot 2 excised, everything else untouched.
  for (std::size_t i = 0, out = 0; i < n; ++i) {
    if (i == 2) continue;
    ASSERT_EQ(ref.delay_ps[i], res.delay_ps[out]) << "slot " << i;
    ++out;
  }

  write_poisoned();
  McConfig fail_cfg = cfg;
  fail_cfg.use_batched = false;
  fail_cfg.checkpoint_path = f.path();
  EXPECT_THROW((void)run_monte_carlo(circuit_, lib_, var_, fail_cfg),
               NumericalError);
}

// ----------------------------------------------------- deadline contract ---

TEST_F(CheckpointTest, DeadlineStopsCleanlyWithPartialFields) {
  // An already-expired budget stops at the first block boundary: zero (or
  // nearly zero) samples, consistent partial-result bookkeeping, no throw.
  McConfig cfg = base_config();
  cfg.num_samples = 50000;
  cfg.deadline_ms = 1;
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
  EXPECT_EQ(res.samples_requested, 50000u);
  EXPECT_EQ(res.delay_ps.size(), res.leakage_na.size());
  EXPECT_EQ(res.samples_done, res.delay_ps.size());
  if (!res.completed) {
    EXPECT_LT(res.samples_done, res.samples_requested);
  }
}

TEST_F(CheckpointTest, UnarmedDeadlineChangesNothing) {
  McConfig cfg = base_config();
  const McResult ref = run_monte_carlo(circuit_, lib_, var_, cfg);
  cfg.deadline_ms = 0;  // explicit "none"
  const McResult res = run_monte_carlo(circuit_, lib_, var_, cfg);
  EXPECT_TRUE(res.completed);
  ASSERT_EQ(ref.delay_ps.size(), res.delay_ps.size());
  for (std::size_t i = 0; i < ref.delay_ps.size(); ++i) {
    ASSERT_EQ(ref.delay_ps[i], res.delay_ps[i]);
  }
}

}  // namespace
}  // namespace statleak
