// Tests for the dynamic-power extension: activity estimation by random
// simulation and the CV^2f power model with its leakage breakdown.

#include <gtest/gtest.h>

#include "gen/arithmetic.hpp"
#include "gen/proxy.hpp"
#include "power/activity.hpp"
#include "power/power.hpp"
#include "sta/loads.hpp"
#include "tech/process.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

class PowerTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_F(PowerTest, ActivityBounds) {
  const Circuit c = make_carry_lookahead_adder(8);
  const auto activity = estimate_activity(c, 500, 3);
  ASSERT_EQ(activity.size(), c.num_gates());
  for (double a : activity) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST_F(PowerTest, InputActivityNearHalf) {
  // Uniform random stimulus toggles each input with probability 1/2.
  const Circuit c = make_ripple_carry_adder(8);
  const auto activity = estimate_activity(c, 4000, 5);
  for (GateId id : c.inputs()) {
    EXPECT_NEAR(activity[id], 0.5, 0.05);
  }
}

TEST_F(PowerTest, XorPropagatesActivityAndGatesAttenuate) {
  // XOR of two random inputs toggles ~0.5; AND toggles ~0.375
  // (P(out=1)=1/4 -> toggle rate 2*p*(1-p)=0.375).
  Circuit c("mix");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId x = c.add_gate("x", CellKind::kXor2, {a, b});
  const GateId n = c.add_gate("n", CellKind::kAnd2, {a, b});
  c.mark_output(x);
  c.mark_output(n);
  c.finalize();
  const auto activity = estimate_activity(c, 20000, 7);
  EXPECT_NEAR(activity[x], 0.5, 0.02);
  EXPECT_NEAR(activity[n], 0.375, 0.02);
}

TEST_F(PowerTest, ActivityDeterministicPerSeed) {
  const Circuit c = make_ripple_carry_adder(6);
  EXPECT_EQ(estimate_activity(c, 200, 11), estimate_activity(c, 200, 11));
}

TEST_F(PowerTest, ActivityRejectsBadArgs) {
  const Circuit c = make_ripple_carry_adder(4);
  EXPECT_THROW(estimate_activity(c, 1), Error);
}

TEST_F(PowerTest, DynamicPowerMatchesHandComputation) {
  Circuit c("one");
  const GateId a = c.add_input("a");
  const GateId g = c.add_gate("g", CellKind::kInv, {a});
  c.mark_output(g);
  c.finalize();
  const std::vector<double> activity = {0.5, 0.25};
  const double f_mhz = 1000.0;
  const double vdd = node_.vdd;
  const double expected =
      0.5 * output_load_ff(c, lib_, a) * vdd * vdd * f_mhz +
      0.25 * output_load_ff(c, lib_, g) * vdd * vdd * f_mhz;
  EXPECT_NEAR(dynamic_power_nw(c, lib_, activity, f_mhz), expected, 1e-9);
}

TEST_F(PowerTest, DynamicPowerLinearInFrequency) {
  const Circuit c = make_ripple_carry_adder(6);
  const auto activity = estimate_activity(c, 300, 3);
  const double p1 = dynamic_power_nw(c, lib_, activity, 500.0);
  const double p2 = dynamic_power_nw(c, lib_, activity, 1000.0);
  EXPECT_NEAR(p2, 2.0 * p1, 1e-9 * p2);
}

TEST_F(PowerTest, DynamicPowerGuards) {
  const Circuit c = make_ripple_carry_adder(4);
  const std::vector<double> wrong(3, 0.5);
  EXPECT_THROW(dynamic_power_nw(c, lib_, wrong, 100.0), Error);
  const auto activity = estimate_activity(c, 100, 1);
  EXPECT_THROW(dynamic_power_nw(c, lib_, activity, 0.0), Error);
}

TEST_F(PowerTest, BreakdownConsistent) {
  const Circuit c = iscas85_proxy("c432p");
  const auto activity = estimate_activity(c, 500, 9);
  const PowerBreakdown pb =
      power_breakdown(c, lib_, var_, activity, 1000.0);
  EXPECT_GT(pb.dynamic_nw, 0.0);
  EXPECT_GT(pb.leakage_mean_nw, pb.leakage_nominal_nw);
  EXPECT_GT(pb.leakage_p99_nw, pb.leakage_mean_nw);
  EXPECT_NEAR(pb.total_mean_nw(), pb.dynamic_nw + pb.leakage_mean_nw, 1e-9);
  EXPECT_GT(pb.leakage_share(), 0.0);
  EXPECT_LT(pb.leakage_share(), 1.0);
  EXPECT_GT(pb.leakage_share_p99(), pb.leakage_share());
}

TEST_F(PowerTest, LeakierNodeHasHigherLeakageShare) {
  const Circuit c = make_array_multiplier(6);
  const auto activity = estimate_activity(c, 400, 13);
  const CellLibrary lib70(generic_70nm());
  const PowerBreakdown p100 =
      power_breakdown(c, lib_, var_, activity, 1000.0);
  const PowerBreakdown p70 =
      power_breakdown(c, lib70, var_, activity, 1000.0);
  EXPECT_GT(p70.leakage_share(), p100.leakage_share());
}

}  // namespace
}  // namespace statleak
