// Cross-module integration tests: complete flows wired the way a user would
// wire them, checking the invariants that hold across module boundaries.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/prefix.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "mlv/mlv.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/impl_io.hpp"
#include "opt/deterministic.hpp"
#include "opt/statistical.hpp"
#include "power/activity.hpp"
#include "power/power.hpp"
#include "report/flow.hpp"
#include "spatial/spatial_analysis.hpp"
#include "spatial/spatial_ssta.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"
#include "util/rng.hpp"

namespace statleak {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

TEST_F(IntegrationTest, BenchFileRoundTripThroughOptimization) {
  // gen -> serialize -> reparse -> optimize -> serialize impl -> reapply:
  // the full external-tool pipeline, with logic equivalence throughout.
  const Circuit original = iscas85_proxy("c499p");
  const Circuit reparsed =
      read_bench_string(write_bench_string(original), "rt");

  Circuit optimized = reparsed;
  OptConfig cfg;
  cfg.t_max_ps = 1.3 * StaEngine(optimized, lib_).critical_delay_ps();
  const OptResult r = StatisticalOptimizer(lib_, var_, cfg).run(optimized);
  EXPECT_TRUE(r.feasible);

  std::ostringstream impl;
  write_impl(impl, optimized);
  Circuit reapplied = read_bench_string(write_bench_string(original), "rt2");
  std::istringstream impl_in(impl.str());
  read_impl(impl_in, reapplied);

  // Identical implementation metrics after the file round trip.
  const CircuitMetrics a = measure_metrics(optimized, lib_, var_, cfg.t_max_ps);
  const CircuitMetrics b = measure_metrics(reapplied, lib_, var_, cfg.t_max_ps);
  EXPECT_NEAR(a.leakage_p99_na, b.leakage_p99_na, 1e-9 * a.leakage_p99_na);
  EXPECT_NEAR(a.timing_yield, b.timing_yield, 1e-12);

  // And logic equivalence against the original (random vectors).
  Rng rng(33);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<char> in(original.inputs().size());
    for (auto& bit : in) bit = rng.uniform_index(2) ? 1 : 0;
    const auto va = simulate(original, in);
    const auto vb = simulate(reapplied, in);
    for (GateId out : original.outputs()) {
      const GateId out_b = reapplied.find(original.gate(out).name);
      ASSERT_NE(out_b, kInvalidGate);
      EXPECT_EQ(va[out], vb[out_b]);
    }
  }
}

TEST_F(IntegrationTest, MetricsAgreeWithUnderlyingEngines) {
  Circuit c = iscas85_proxy("c432p");
  const double t_max = 900.0;
  const CircuitMetrics m = measure_metrics(c, lib_, var_, t_max);
  EXPECT_NEAR(m.nominal_delay_ps, StaEngine(c, lib_).critical_delay_ps(),
              1e-9);
  const Canonical d = SstaEngine(c, lib_, var_).circuit_delay();
  EXPECT_NEAR(m.ssta_delay_mean_ps, d.mean, 1e-9);
  EXPECT_NEAR(m.timing_yield, d.cdf(t_max), 1e-12);
  const LeakageAnalyzer leak(c, lib_, var_);
  EXPECT_NEAR(m.leakage_p99_na, leak.quantile_na(0.99), 1e-9);
}

TEST_F(IntegrationTest, OptimizedCircuitSurvivesSpatialScrutiny) {
  // A solution optimized under the flat model, measured under spatial
  // correlation: the yield estimate moves, but only by a few points — the
  // design is not brittle to the correlation structure.
  Circuit c = iscas85_proxy("c880p");
  OptConfig cfg;
  cfg.t_max_ps = 1.3 * StaEngine(c, lib_).critical_delay_ps();
  cfg.yield_target = 0.99;
  ASSERT_TRUE(StatisticalOptimizer(lib_, var_, cfg).run(c).feasible);

  SpatialVariationModel spatial;
  spatial.base = var_;
  const auto placement = make_topological_placement(c, 5);
  const double spatial_yield =
      SpatialSstaEngine(c, lib_, spatial, placement)
          .circuit_delay()
          .cdf(cfg.t_max_ps);
  EXPECT_GT(spatial_yield, 0.95);
}

TEST_F(IntegrationTest, OptimizationImprovesEveryDownstreamMetric) {
  // One implementation change, observed through every analysis lens.
  Circuit before = iscas85_proxy("c432p");
  Circuit after = before;
  OptConfig cfg;
  cfg.t_max_ps = 1.35 * StaEngine(before, lib_).critical_delay_ps();
  ASSERT_TRUE(StatisticalOptimizer(lib_, var_, cfg).run(after).feasible);

  // Analytic leakage.
  EXPECT_LT(LeakageAnalyzer(after, lib_, var_).quantile_na(0.99),
            LeakageAnalyzer(before, lib_, var_).quantile_na(0.99));
  // Monte-Carlo leakage.
  McConfig mc;
  mc.num_samples = 800;
  EXPECT_LT(run_monte_carlo(after, lib_, var_, mc).leakage_summary().mean,
            run_monte_carlo(before, lib_, var_, mc).leakage_summary().mean);
  // Standby MLV leakage.
  MlvConfig mlv;
  mlv.random_trials = 32;
  EXPECT_LT(find_min_leakage_vector(after, lib_, mlv).best_leakage_na,
            find_min_leakage_vector(before, lib_, mlv).best_leakage_na);
  // Total-power breakdown.
  const auto activity = estimate_activity(after, 200, 3);
  EXPECT_LT(
      power_breakdown(after, lib_, var_, activity, 500.0).leakage_mean_nw,
      power_breakdown(before, lib_, var_, activity, 500.0).leakage_mean_nw);
}

TEST_F(IntegrationTest, KoggeStoneOptimizesLikeOtherAdders) {
  // The newest generator plugs into the full flow unchanged.
  Circuit c = make_kogge_stone_adder(16);
  FlowConfig flow;
  flow.t_max_factor = 1.2;
  flow.det_corner_k = 3.0;
  const FlowOutcome out = run_flow(c, lib_, var_, flow);
  EXPECT_GE(out.stat_metrics.timing_yield, flow.yield_target - 1e-9);
  EXPECT_GT(out.p99_saving(), 0.0);
}

TEST_F(IntegrationTest, DetAndStatAgreeInZeroVariationLimit) {
  // With no variation, the statistical problem degenerates to the
  // deterministic one: both optimizers must find solutions of comparable
  // leakage at the same (now deterministic) constraint.
  const VariationModel none = VariationModel::none();
  Circuit det = iscas85_proxy("c432p");
  Circuit stat = det;
  OptConfig cfg;
  cfg.t_max_ps = 1.25 * StaEngine(det, lib_).critical_delay_ps();
  cfg.yield_target = 0.99;
  (void)DeterministicOptimizer(lib_, none, cfg).run(det);
  const OptResult sr = StatisticalOptimizer(lib_, none, cfg).run(stat);
  EXPECT_TRUE(sr.feasible);

  const double det_leak = LeakageAnalyzer(det, lib_, none).mean_na();
  const double stat_leak = LeakageAnalyzer(stat, lib_, none).mean_na();
  EXPECT_NEAR(stat_leak, det_leak, 0.15 * det_leak);
  EXPECT_LE(StaEngine(det, lib_).critical_delay_ps(), cfg.t_max_ps + 1e-6);
  EXPECT_LE(StaEngine(stat, lib_).critical_delay_ps(), cfg.t_max_ps + 1e-6);
}

}  // namespace
}  // namespace statleak
