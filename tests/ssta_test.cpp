// Unit tests for SSTA: canonical-form algebra, propagation against
// Monte-Carlo ground truth, yield, and criticality properties.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/arithmetic.hpp"
#include "gen/random_dag.hpp"
#include "mc/monte_carlo.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"

namespace statleak {
namespace {

// ---------------------------------------------------------- canonical ----

TEST(Canonical, SumAlgebra) {
  const Canonical a{10.0, 1.0, 0.5, 2.0};
  const Canonical b{5.0, 0.5, 0.5, 1.0};
  const Canonical s = Canonical::sum(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 15.0);
  EXPECT_DOUBLE_EQ(s.gl, 1.5);
  EXPECT_DOUBLE_EQ(s.gv, 1.0);
  EXPECT_NEAR(s.loc, std::sqrt(5.0), 1e-12);
}

TEST(Canonical, VarianceAndSigma) {
  const Canonical a{0.0, 3.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(a.variance(), 25.0);
  EXPECT_DOUBLE_EQ(a.sigma(), 5.0);
}

TEST(Canonical, CdfQuantileInverse) {
  const Canonical a{100.0, 3.0, 0.0, 4.0};
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(a.cdf(a.quantile(p)), p, 1e-10);
  }
}

TEST(Canonical, MaxOfIdenticalPerfectlyCorrelated) {
  // Same global-only canonical: correlation 1, max == operand.
  const Canonical a{10.0, 2.0, 1.0, 0.0};
  double tight = 0.0;
  const Canonical m = Canonical::max(a, a, &tight);
  EXPECT_NEAR(m.mean, 10.0, 1e-12);
  EXPECT_NEAR(m.variance(), a.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(tight, 1.0);
}

TEST(Canonical, MaxOfIndependentEqualGaussians) {
  // Two purely local operands: E[max] = mu + sigma/sqrt(pi).
  const Canonical a{10.0, 0.0, 0.0, 2.0};
  const Canonical b{10.0, 0.0, 0.0, 2.0};
  double tight = 0.0;
  const Canonical m = Canonical::max(a, b, &tight);
  EXPECT_NEAR(m.mean, 10.0 + 2.0 * std::sqrt(2.0) / std::sqrt(2.0 * M_PI),
              1e-9);
  EXPECT_NEAR(tight, 0.5, 1e-12);
  // Globals stay zero; all variance is local.
  EXPECT_DOUBLE_EQ(m.gl, 0.0);
  EXPECT_DOUBLE_EQ(m.gv, 0.0);
}

TEST(Canonical, MaxDominantOperand) {
  const Canonical a{100.0, 1.0, 0.0, 1.0};
  const Canonical b{10.0, 1.0, 0.0, 1.0};
  double tight = 0.0;
  const Canonical m = Canonical::max(a, b, &tight);
  EXPECT_NEAR(m.mean, 100.0, 1e-6);
  EXPECT_NEAR(tight, 1.0, 1e-9);
  EXPECT_NEAR(m.gl, 1.0, 1e-6);
}

TEST(Canonical, MaxBlendsGlobalCoefficients) {
  const Canonical a{10.0, 2.0, 0.0, 0.5};
  const Canonical b{10.0, 0.5, 0.0, 2.0};
  double tight = 0.0;
  const Canonical m = Canonical::max(a, b, &tight);
  EXPECT_NEAR(m.gl, tight * 2.0 + (1.0 - tight) * 0.5, 1e-12);
  EXPECT_GE(m.variance(), 0.0);
}

// ------------------------------------------------------------- engine ----

class SstaTest : public ::testing::Test {
 protected:
  ProcessNode node_ = generic_100nm();
  CellLibrary lib_{node_};
  VariationModel var_ = VariationModel::typical_100nm();
};

Circuit chain_circuit(int length) {
  Circuit c("chain");
  GateId prev = c.add_input("in");
  for (int i = 0; i < length; ++i) {
    prev = c.add_gate("g" + std::to_string(i), CellKind::kInv, {prev});
  }
  c.mark_output(prev);
  c.finalize();
  return c;
}

TEST_F(SstaTest, ZeroVariationDegeneratesToSta) {
  const Circuit c = make_carry_lookahead_adder(8);
  const VariationModel none = VariationModel::none();
  const SstaEngine ssta(c, lib_, none);
  const StaEngine sta(c, lib_);
  const Canonical d = ssta.circuit_delay();
  EXPECT_NEAR(d.mean, sta.critical_delay_ps(), 1e-6);
  EXPECT_NEAR(d.sigma(), 0.0, 1e-9);
}

TEST_F(SstaTest, ChainMeanMatchesNominalDelay) {
  // On a chain there is no MAX: the mean equals the deterministic delay.
  const Circuit c = chain_circuit(10);
  const SstaEngine ssta(c, lib_, var_);
  const StaEngine sta(c, lib_);
  EXPECT_NEAR(ssta.circuit_delay().mean, sta.critical_delay_ps(), 1e-9);
}

TEST_F(SstaTest, ChainSigmaClosedForm) {
  // On a chain: globals add linearly, locals RSS. With identical gates of
  // delay d: gl_total = n*d*sL*sigLg, loc_total = sqrt(n)*d*local.
  const Circuit c = chain_circuit(16);
  const SstaEngine ssta(c, lib_, var_);
  // All gates identical except the last (PO load differs); compare against
  // the engine's own per-gate canonicals composed manually.
  Canonical manual;
  for (GateId id = 0; id < c.num_gates(); ++id) {
    manual = Canonical::sum(manual, ssta.gate_delay(id));
  }
  const Canonical engine = ssta.circuit_delay();
  EXPECT_NEAR(engine.mean, manual.mean, 1e-9);
  EXPECT_NEAR(engine.sigma(), manual.sigma(), 1e-9);
}

TEST_F(SstaTest, GateDelayCanonicalFields) {
  const Circuit c = chain_circuit(2);
  const SstaEngine ssta(c, lib_, var_);
  const GateId g = c.find("g0");
  const Canonical d = ssta.gate_delay(g);
  EXPECT_GT(d.mean, 0.0);
  EXPECT_GT(d.gl, 0.0);
  EXPECT_GT(d.gv, 0.0);
  EXPECT_GT(d.loc, 0.0);
  // Inputs have zero canonical delay.
  EXPECT_EQ(ssta.gate_delay(c.find("in")).mean, 0.0);
}

TEST_F(SstaTest, MatchesMonteCarloOnAdder) {
  const Circuit c = make_carry_lookahead_adder(12);
  const SstaEngine ssta(c, lib_, var_);
  const Canonical d = ssta.circuit_delay();

  McConfig mc;
  mc.num_samples = 8000;
  mc.seed = 3;
  const McResult res = run_monte_carlo(c, lib_, var_, mc);
  const SampleSummary s = res.delay_summary();

  EXPECT_NEAR(d.mean, s.mean, 0.02 * s.mean);
  EXPECT_NEAR(d.sigma(), s.stddev, 0.15 * s.stddev);
  // Yield agreement at a few targets.
  for (double factor : {1.0, 1.05, 1.1}) {
    const double t = factor * s.mean;
    EXPECT_NEAR(d.cdf(t), res.timing_yield(t), 0.03) << "factor " << factor;
  }
}

TEST_F(SstaTest, MatchesMonteCarloOnRandomDag) {
  RandomDagSpec spec;
  spec.num_gates = 600;
  spec.seed = 77;
  const Circuit c = make_random_dag(spec);
  const SstaEngine ssta(c, lib_, var_);
  const Canonical d = ssta.circuit_delay();

  McConfig mc;
  mc.num_samples = 6000;
  mc.seed = 5;
  const McResult res = run_monte_carlo(c, lib_, var_, mc);
  const SampleSummary s = res.delay_summary();
  EXPECT_NEAR(d.mean, s.mean, 0.03 * s.mean);
  EXPECT_NEAR(d.sigma(), s.stddev, 0.2 * s.stddev);
}

TEST_F(SstaTest, YieldMonotoneInTarget) {
  const Circuit c = make_carry_lookahead_adder(8);
  const SstaEngine ssta(c, lib_, var_);
  const SstaResult r = ssta.analyze();
  const double mean = r.circuit_delay.mean;
  double prev = 0.0;
  for (double f : {0.8, 0.9, 1.0, 1.1, 1.2}) {
    const double y = r.yield(f * mean);
    EXPECT_GE(y, prev);
    prev = y;
  }
  EXPECT_NEAR(r.yield(mean), 0.5, 0.01);
  EXPECT_NEAR(r.delay_at_yield_ps(0.5), mean, 1e-6);
}

TEST_F(SstaTest, AnalyzeAndForwardOnlyAgree) {
  const Circuit c = make_carry_lookahead_adder(10);
  const SstaEngine ssta(c, lib_, var_);
  const SstaResult full = ssta.analyze();
  const Canonical fwd = ssta.circuit_delay();
  EXPECT_NEAR(full.circuit_delay.mean, fwd.mean, 1e-9);
  EXPECT_NEAR(full.circuit_delay.sigma(), fwd.sigma(), 1e-9);
}

TEST_F(SstaTest, CriticalityOnChainIsOne) {
  const Circuit c = chain_circuit(8);
  const SstaEngine ssta(c, lib_, var_);
  const SstaResult r = ssta.analyze();
  for (GateId id = 0; id < c.num_gates(); ++id) {
    EXPECT_NEAR(r.criticality[id], 1.0, 1e-9) << c.gate(id).name;
  }
}

TEST_F(SstaTest, CriticalityOnBalancedForkIsHalf) {
  // in -> two identical parallel inverter chains -> NAND2 join.
  Circuit c("fork");
  const GateId in = c.add_input("in");
  GateId a = in;
  GateId b = in;
  for (int i = 0; i < 4; ++i) {
    a = c.add_gate("a" + std::to_string(i), CellKind::kInv, {a});
    b = c.add_gate("b" + std::to_string(i), CellKind::kInv, {b});
  }
  const GateId join = c.add_gate("join", CellKind::kNand2, {a, b});
  c.mark_output(join);
  c.finalize();

  const SstaEngine ssta(c, lib_, var_);
  const SstaResult r = ssta.analyze();
  EXPECT_NEAR(r.criticality[join], 1.0, 1e-9);
  EXPECT_NEAR(r.criticality[c.find("a1")], 0.5, 0.05);
  EXPECT_NEAR(r.criticality[c.find("b1")], 0.5, 0.05);
  EXPECT_NEAR(r.criticality[in], 1.0, 1e-6);
}

TEST_F(SstaTest, CriticalityInUnitInterval) {
  RandomDagSpec spec;
  spec.num_gates = 500;
  spec.seed = 21;
  const Circuit c = make_random_dag(spec);
  const SstaEngine ssta(c, lib_, var_);
  const SstaResult r = ssta.analyze();
  for (double crit : r.criticality) {
    EXPECT_GE(crit, -1e-9);
    EXPECT_LE(crit, 1.0 + 1e-6);
  }
}

TEST_F(SstaTest, MoreVariationMeansWiderDistribution) {
  const Circuit c = make_carry_lookahead_adder(8);
  // Named: the engine keeps a reference, so a temporary would dangle.
  const VariationModel tight_var = var_.scaled(0.5);
  const VariationModel wide_var = var_.scaled(2.0);
  const SstaEngine tight(c, lib_, tight_var);
  const SstaEngine wide(c, lib_, wide_var);
  EXPECT_LT(tight.circuit_delay().sigma(), wide.circuit_delay().sigma());
}

}  // namespace
}  // namespace statleak
