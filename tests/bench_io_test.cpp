// Unit tests for the .bench reader/writer, including the ISCAS85 c17
// benchmark (small enough to embed and verify exhaustively), wide-operator
// decomposition, forward references, and error reporting.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "netlist/bench_io.hpp"
#include "netlist/impl_io.hpp"
#include "util/error.hpp"

namespace statleak {
namespace {

// The canonical ISCAS85 c17 netlist.
const char* kC17 = R"(
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

/// Reference model of c17.
std::pair<bool, bool> c17_reference(bool i1, bool i2, bool i3, bool i6,
                                    bool i7) {
  const bool n10 = !(i1 && i3);
  const bool n11 = !(i3 && i6);
  const bool n16 = !(i2 && n11);
  const bool n19 = !(n11 && i7);
  return {!(n10 && n16), !(n16 && n19)};
}

TEST(BenchReader, C17Structure) {
  const Circuit c = read_bench_string(kC17, "c17");
  EXPECT_EQ(c.name(), "c17");
  EXPECT_EQ(c.inputs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);
  EXPECT_EQ(c.num_cells(), 6u);
  EXPECT_EQ(c.depth(), 3);
  EXPECT_EQ(c.gate(c.find("10")).kind, CellKind::kNand2);
}

TEST(BenchReader, C17ExhaustiveFunctional) {
  const Circuit c = read_bench_string(kC17, "c17");
  const GateId o22 = c.find("22");
  const GateId o23 = c.find("23");
  for (int bits = 0; bits < 32; ++bits) {
    std::vector<char> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (bits >> i) & 1;
    const auto values = simulate(c, in);
    const auto [r22, r23] =
        c17_reference(in[0], in[1], in[2], in[3], in[4]);
    EXPECT_EQ(values[o22] != 0, r22) << "bits=" << bits;
    EXPECT_EQ(values[o23] != 0, r23) << "bits=" << bits;
  }
}

TEST(BenchReader, ForwardReferencesAllowed) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(x)      # x defined later
x = NOT(a)
)";
  const Circuit c = read_bench_string(text, "fwd");
  EXPECT_EQ(c.num_cells(), 2u);
  const std::vector<char> in = {1};
  EXPECT_EQ(simulate(c, in)[c.find("y")], 1);
}

TEST(BenchReader, CaseInsensitiveOperators) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = nand(a, b)
)";
  const Circuit c = read_bench_string(text, "ci");
  EXPECT_EQ(c.gate(c.find("y")).kind, CellKind::kNand2);
}

TEST(BenchReader, AllNativeOperators) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(o1)
OUTPUT(o2)
n1 = NOT(a)
n2 = BUFF(b)
n3 = AND(a, b)
n4 = OR(c, d)
n5 = NAND(a, b, c)
n6 = NOR(a, b, c, d)
n7 = XOR(a, b)
n8 = XNOR(c, d)
o1 = AND(n1, n2, n3)
o2 = OR(n4, n5, n6, n7, n8)
)";
  const Circuit c = read_bench_string(text, "ops");
  EXPECT_EQ(c.gate(c.find("n1")).kind, CellKind::kInv);
  EXPECT_EQ(c.gate(c.find("n2")).kind, CellKind::kBuf);
  EXPECT_EQ(c.gate(c.find("n3")).kind, CellKind::kAnd2);
  EXPECT_EQ(c.gate(c.find("n5")).kind, CellKind::kNand3);
  EXPECT_EQ(c.gate(c.find("n6")).kind, CellKind::kNor4);
  EXPECT_EQ(c.gate(c.find("n7")).kind, CellKind::kXor2);
  EXPECT_EQ(c.gate(c.find("o1")).kind, CellKind::kAnd3);
}

/// Wide-operator decomposition must preserve functionality.
class WideOpTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WideOpTest, DecomposedEquivalence) {
  const std::string op = GetParam();
  const int width = 6;
  std::string text;
  for (int i = 0; i < width; ++i) {
    text += "INPUT(i" + std::to_string(i) + ")\n";
  }
  text += "OUTPUT(y)\ny = " + op + "(";
  for (int i = 0; i < width; ++i) {
    if (i) text += ", ";
    text += "i" + std::to_string(i);
  }
  text += ")\n";

  const Circuit c = read_bench_string(text, "wide");
  const GateId y = c.find("y");
  for (int bits = 0; bits < (1 << width); ++bits) {
    std::vector<char> in(width);
    int ones = 0;
    for (int i = 0; i < width; ++i) {
      in[i] = (bits >> i) & 1;
      ones += in[i];
    }
    bool expected = false;
    if (op == "AND") expected = ones == width;
    if (op == "NAND") expected = ones != width;
    if (op == "OR") expected = ones > 0;
    if (op == "NOR") expected = ones == 0;
    if (op == "XOR") expected = (ones % 2) == 1;
    if (op == "XNOR") expected = (ones % 2) == 0;
    EXPECT_EQ(simulate(c, in)[y] != 0, expected)
        << op << " bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWideOps, WideOpTest,
                         ::testing::Values("AND", "NAND", "OR", "NOR", "XOR",
                                           "XNOR"));

TEST(BenchReader, Errors) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n", "t"),
               Error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "t"),
               Error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(missing)\n",
                                 "t"),
               Error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\n", "t"), Error);
  EXPECT_THROW(read_bench_string("garbage line\n", "t"), Error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n", "t"),
               Error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n", "t"),
               Error);
}

TEST(BenchReader, ErrorMentionsLineNumber) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "t");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(BenchReader, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path.bench"), Error);
}

TEST(BenchWriter, RoundTripPreservesFunction) {
  const Circuit original = read_bench_string(kC17, "c17");
  const std::string text = write_bench_string(original);
  const Circuit reparsed = read_bench_string(text, "c17rt");
  ASSERT_EQ(reparsed.inputs().size(), original.inputs().size());
  const GateId o22a = original.find("22");
  const GateId o22b = reparsed.find("22");
  const GateId o23a = original.find("23");
  const GateId o23b = reparsed.find("23");
  for (int bits = 0; bits < 32; ++bits) {
    std::vector<char> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (bits >> i) & 1;
    const auto va = simulate(original, in);
    const auto vb = simulate(reparsed, in);
    EXPECT_EQ(va[o22a], vb[o22b]);
    EXPECT_EQ(va[o23a], vb[o23b]);
  }
}

TEST(BenchWriter, DecomposesInexpressibleKinds) {
  // AOI21, OAI21 and MUX2 have no .bench operator; the writer must emit a
  // logically equivalent decomposition.
  Circuit c("complexcells");
  const GateId a = c.add_input("a");
  const GateId b = c.add_input("b");
  const GateId s = c.add_input("s");
  const GateId aoi = c.add_gate("aoi", CellKind::kAoi21, {a, b, s});
  const GateId oai = c.add_gate("oai", CellKind::kOai21, {a, b, s});
  const GateId mux = c.add_gate("mux", CellKind::kMux2, {a, b, s});
  c.mark_output(aoi);
  c.mark_output(oai);
  c.mark_output(mux);
  c.finalize();

  const Circuit reparsed =
      read_bench_string(write_bench_string(c), "roundtrip");
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<char> in(3);
    for (int i = 0; i < 3; ++i) in[i] = (bits >> i) & 1;
    const auto va = simulate(c, in);
    const auto vb = simulate(reparsed, in);
    EXPECT_EQ(va[aoi], vb[reparsed.find("aoi")]) << bits;
    EXPECT_EQ(va[oai], vb[reparsed.find("oai")]) << bits;
    EXPECT_EQ(va[mux], vb[reparsed.find("mux")]) << bits;
  }
}

// --------------------------------------------------------- fuzz corpus ----
// Robustness contract: malformed input of any shape raises a clean
// statleak::Error — never a crash, hang or unbounded allocation. The
// corpus runs under the ASan/UBSan CI job, which turns latent memory
// errors on these paths into hard failures.

/// Parsing must either succeed or throw Error; anything else (segfault,
/// std::bad_alloc from a hostile width, uncaught std exception) fails.
void expect_clean(const std::string& text, const char* what) {
  try {
    const Circuit c = read_bench_string(text, "fuzz");
    EXPECT_TRUE(c.finalized()) << what;
  } catch (const Error&) {
    // Clean rejection is fine.
  }
}

void expect_rejected(const std::string& text, const char* what) {
  EXPECT_THROW((void)read_bench_string(text, "fuzz"), Error) << what;
}

TEST(BenchFuzz, TruncationsAtEveryByte) {
  // Every prefix of a valid netlist must parse cleanly or be rejected
  // cleanly — truncated files are the most common corruption in the wild.
  const std::string full(kC17);
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    expect_clean(full.substr(0, cut), "truncation");
  }
}

TEST(BenchFuzz, CyclicDefinitionsAreRejected) {
  expect_rejected("INPUT(a)\nOUTPUT(x)\nx = AND(a, x)\n", "self loop");
  expect_rejected(
      "INPUT(a)\nOUTPUT(x)\n"
      "x = AND(a, y)\ny = AND(a, z)\nz = AND(a, x)\n",
      "three-gate cycle");
  expect_rejected("OUTPUT(x)\nx = BUF(x)\n", "buffer self loop");
}

TEST(BenchFuzz, DuplicateOutputIsRejected) {
  expect_rejected("INPUT(a)\nOUTPUT(x)\nOUTPUT(x)\nx = NOT(a)\n",
                  "duplicate OUTPUT");
}

TEST(BenchFuzz, DuplicateDefinitionsAreRejected) {
  expect_rejected("INPUT(a)\nINPUT(a)\nOUTPUT(x)\nx = NOT(a)\n",
                  "duplicate INPUT");
  expect_rejected("INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUF(a)\n",
                  "redefined signal");
  expect_rejected("INPUT(a)\nOUTPUT(a)\na = NOT(a)\n",
                  "gate named like an input");
}

TEST(BenchFuzz, AbsurdFaninIsRejectedNotAllocated) {
  // 100k operands would expand into ~100k tree gates; the reader must
  // refuse at the cap instead.
  std::string text = "INPUT(a)\nOUTPUT(x)\nx = AND(";
  for (int i = 0; i < 100000; ++i) {
    if (i) text += ", ";
    text += "a";
  }
  text += ")\n";
  expect_rejected(text, "100k-input AND");

  // ...while a wide-but-sane operator still decomposes fine.
  std::string ok = "INPUT(a)\nOUTPUT(x)\nx = AND(";
  for (int i = 0; i < 1000; ++i) {
    if (i) ok += ", ";
    ok += "a";
  }
  ok += ")\n";
  EXPECT_NO_THROW((void)read_bench_string(ok, "wide"));
}

TEST(BenchFuzz, MalformedLinesAreRejected) {
  const char* cases[] = {
      "garbage",
      "INPUT",
      "INPUT()",
      "INPUT(a",
      "OUTPUT)a(",
      "= AND(a, b)",
      "x = ",
      "x = AND",
      "x = AND()",
      "x = AND(,)",
      "x = AND(a,)",
      "x = AND(a b)",     // missing comma -> one operand with a space
      "x = FROB(a, b)",   // unknown operator
      "x = DFF(a)",       // sequential element
      "x = NOT(a, b)",    // arity violation
      "x = NAND(a)",      // arity violation
      "WIBBLE(a)",        // unknown directive
      "x = AND(a, b)\nOUTPUT(y)",  // undefined output
      "x = AND(a, b)",    // undefined operand, no outputs
  };
  for (const char* bad : cases) {
    const std::string text =
        std::string("INPUT(a)\nINPUT(b)\nOUTPUT(x)\n") + bad + "\n";
    expect_clean(text, bad);  // many are outright invalid -> Error
  }
  // And the strict subset that must definitely throw:
  expect_rejected("INPUT(a)\nOUTPUT(x)\nx = FROB(a)\n", "unknown op");
  expect_rejected("INPUT(a)\nOUTPUT(x)\nx = DFF(a)\n", "DFF");
  expect_rejected("INPUT(a)\nOUTPUT(x)\nx = NOT(a, a)\n", "arity");
  expect_rejected("", "empty file");
  expect_rejected("# only a comment\n", "comment only");
  expect_rejected("INPUT(a)\n", "no outputs");
  expect_rejected("OUTPUT(x)\n", "undefined output");
}

TEST(BenchFuzz, RandomByteMutationsNeverCrash) {
  // Deterministic pseudo-random single-byte corruptions of c17.
  const std::string full(kC17);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = full;
    const std::size_t pos = next() % mutated.size();
    mutated[pos] = static_cast<char>(next() % 256);
    expect_clean(mutated, "byte mutation");
  }
}

// ------------------------------------------------------------ .impl I/O ---
// The implementation-sidecar parser hardened in the robustness PR: every
// diagnostic carries line AND column so a bad token in a machine-generated
// file is findable without counting fields by hand.

class ImplFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    std::istringstream in(kC17);
    circuit_ = read_bench(in, "c17");
  }

  /// Expects read_impl to reject `text` with a diagnostic naming the given
  /// 1-based line and column.
  void expect_reject_at(const std::string& text, int line, int col,
                        const std::string& needle) {
    std::istringstream in(text);
    try {
      (void)read_impl(in, circuit_);
      FAIL() << "accepted: " << text;
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("line " + std::to_string(line)), std::string::npos)
          << msg << "\ninput: " << text;
      EXPECT_NE(msg.find("column " + std::to_string(col)), std::string::npos)
          << msg << "\ninput: " << text;
      EXPECT_NE(msg.find(needle), std::string::npos)
          << msg << "\ninput: " << text;
    }
  }

  Circuit circuit_;
};

TEST_F(ImplFuzz, TooFewFields) {
  expect_reject_at("10 LVT", 1, 7, "got 2 field(s)");
}

TEST_F(ImplFuzz, TrailingField) {
  expect_reject_at("10 LVT 2.0 surprise", 1, 12, "trailing field");
}

TEST_F(ImplFuzz, UnknownGate) {
  expect_reject_at("nope HVT 1.0", 1, 1, "unknown gate");
}

TEST_F(ImplFuzz, PrimaryInputRejected) {
  expect_reject_at("1 HVT 1.0", 1, 1, "primary input");
}

TEST_F(ImplFuzz, BadVthClass) {
  expect_reject_at("10 MVT 1.0", 1, 4, "bad Vth class");
}

TEST_F(ImplFuzz, MalformedSize) {
  expect_reject_at("10 LVT banana", 1, 8, "malformed size");
  expect_reject_at("10 LVT 2.0x", 1, 8, "malformed size");
}

TEST_F(ImplFuzz, NonPositiveSize) {
  expect_reject_at("10 LVT 0", 1, 8, "positive");
  expect_reject_at("10 LVT -3", 1, 8, "positive");
  expect_reject_at("10 LVT inf", 1, 8, "positive");
}

TEST_F(ImplFuzz, ErrorsNameTheOffendingLineNotTheFirst) {
  // Valid entries precede the bad one; blank and comment lines still count.
  expect_reject_at("10 LVT 2.0\n\n# comment\n11 HVT 1.5\n16 XVT 1.0", 5, 4,
                   "bad Vth class");
}

TEST_F(ImplFuzz, ColumnsAccountForExtraWhitespace) {
  expect_reject_at("10   \t LVT  frob", 1, 13, "malformed size");
}

TEST_F(ImplFuzz, ValidInputStillApplies) {
  std::istringstream in("10 HVT 2.5  # inline comment\n11 LVT 1.5\n");
  EXPECT_EQ(read_impl(in, circuit_), 2u);
  const GateId id = circuit_.find("10");
  EXPECT_EQ(circuit_.gate(id).vth, Vth::kHigh);
  EXPECT_DOUBLE_EQ(circuit_.gate(id).size, 2.5);
}

}  // namespace
}  // namespace statleak
