// Golden-trajectory regression tests: the statistical optimizer's full move
// trajectory on the c432p/c880p proxies is pinned — iteration count, every
// commit/reject counter, feasibility and the final objective. The greedy
// search is deterministic (thread count, candidate block size, engine layout
// and observation provably do not change it; incremental retiming is
// bit-identical to full passes), so any drift in these numbers means a real
// behavioral change, which must be reviewed and re-pinned deliberately.
//
// Both SSTA engines are pinned to the SAME goldens: the flat-SoA engine with
// batched move pricing (the default) and the scalar engine are required to
// walk the identical trajectory, across every tested thread count x
// candidate block size combination, down to the exact final implementation
// (bitwise sizes and Vth classes).
//
// Counters are read back through the obs trace streams, which also pins the
// one-trace-event-per-iteration invariant end to end.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/proxy.hpp"
#include "obs/registry.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "tech/process.hpp"

namespace statleak {
namespace {

struct Golden {
  const char* circuit;
  int iterations;
  int sizing_commits;
  int hvt_commits;
  int downsize_commits;
  int rejected_moves;
  double final_objective_na;
};

// Measured with the seed library/variation model at t_max = 1.15 * d_min.
// Re-pin deliberately when the optimizer or the models change.
constexpr Golden kGoldens[] = {
    {"c432p", 747, 80, 158, 46, 452, 1107.4484348948747},
    {"c880p", 1029, 105, 378, 43, 493, 2371.4626754129431},
};

struct Implementation {
  std::vector<double> sizes;
  std::vector<Vth> vths;
};

Implementation snapshot(const Circuit& c) {
  Implementation impl;
  impl.sizes.reserve(c.num_gates());
  impl.vths.reserve(c.num_gates());
  for (GateId id = 0; id < c.num_gates(); ++id) {
    impl.sizes.push_back(c.gate(id).size);
    impl.vths.push_back(c.gate(id).vth);
  }
  return impl;
}

class TrajectoryTest : public ::testing::TestWithParam<Golden> {};

void check_against_golden(const Golden& golden, const OptResult& result,
                          const obs::Registry& reg) {
  EXPECT_EQ(result.iterations, golden.iterations);
  EXPECT_EQ(result.sizing_commits, golden.sizing_commits);
  EXPECT_EQ(result.hvt_commits, golden.hvt_commits);
  EXPECT_EQ(result.downsize_commits, golden.downsize_commits);
  EXPECT_EQ(result.rejected_moves, golden.rejected_moves);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.final_objective, golden.final_objective_na,
              1e-9 * golden.final_objective_na);

  // The registry mirrors the result...
  EXPECT_EQ(reg.counter_value("stat.iterations"), golden.iterations);
  EXPECT_EQ(reg.counter_value("stat.commits.sizing"), golden.sizing_commits);
  EXPECT_EQ(reg.counter_value("stat.commits.hvt"), golden.hvt_commits);
  EXPECT_EQ(reg.counter_value("stat.commits.downsize"),
            golden.downsize_commits);
  EXPECT_EQ(reg.counter_value("stat.rejected_moves"), golden.rejected_moves);
  EXPECT_EQ(reg.gauge_value("stat.feasible"), 1.0);

  // ...and the trace stream carries exactly one event per iteration, with
  // monotonic cumulative commit counts ending at the totals.
  const auto events = reg.trace_events("stat");
  ASSERT_EQ(static_cast<int>(events.size()), golden.iterations);
  std::int64_t last_commits = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.commits, last_commits);
    last_commits = e.commits;
  }
  EXPECT_EQ(events.back().commits + events.back().rejected,
            golden.sizing_commits + golden.hvt_commits +
                golden.downsize_commits + golden.rejected_moves);
}

TEST_P(TrajectoryTest, MatchesGoldenFlat) {
  const Golden& golden = GetParam();
  Circuit c = iscas85_proxy(golden.circuit);
  const CellLibrary lib(generic_100nm());
  const VariationModel var = VariationModel::typical_100nm();

  OptConfig cfg;
  cfg.t_max_ps = 1.15 * min_achievable_delay_ps(c, lib);
  ASSERT_TRUE(cfg.flat_engine);  // the default engine is the flat one

  obs::Registry reg;
  const OptResult result = StatisticalOptimizer(lib, var, cfg).run(c, &reg);
  check_against_golden(golden, result, reg);

  // The flat engine's dirty-cone fast path and the batched scorer must
  // actually be engaged: without them the run would take one full pass per
  // query and one scalar scan per iteration.
  EXPECT_GT(reg.counter_value("ssta.flat_incremental_passes"), 0.0);
  EXPECT_LT(reg.counter_value("ssta.flat_full_passes"), 10.0);
  EXPECT_GT(reg.counter_value("ssta.flat_cone_gates_retimed"), 0.0);
  EXPECT_GT(reg.counter_value("opt.flat_passes"), 0.0);
  EXPECT_GT(reg.counter_value("opt.candidate_blocks"), 0.0);
}

TEST_P(TrajectoryTest, MatchesGoldenScalar) {
  const Golden& golden = GetParam();
  Circuit c = iscas85_proxy(golden.circuit);
  const CellLibrary lib(generic_100nm());
  const VariationModel var = VariationModel::typical_100nm();

  OptConfig cfg;
  cfg.t_max_ps = 1.15 * min_achievable_delay_ps(c, lib);
  cfg.flat_engine = false;

  obs::Registry reg;
  const OptResult result = StatisticalOptimizer(lib, var, cfg).run(c, &reg);
  check_against_golden(golden, result, reg);

  EXPECT_GT(reg.counter_value("ssta.incremental_passes"), 0.0);
  EXPECT_LT(reg.counter_value("ssta.full_passes"), 10.0);
  // The scalar path never touches the batched scorer.
  EXPECT_EQ(reg.counter_value("opt.flat_passes"), 0.0);
}

// Flat-vs-scalar equality across thread counts and candidate block sizes:
// every combination must reproduce the scalar single-thread reference run
// exactly — same result counters, same final objective to the last bit, and
// the same final implementation point (bitwise sizes and Vth classes).
TEST_P(TrajectoryTest, EngineThreadsAndBlockSizeAreBitInvariant) {
  const Golden& golden = GetParam();
  const CellLibrary lib(generic_100nm());
  const VariationModel var = VariationModel::typical_100nm();

  OptConfig ref_cfg;
  {
    Circuit probe = iscas85_proxy(golden.circuit);
    ref_cfg.t_max_ps = 1.15 * min_achievable_delay_ps(probe, lib);
  }
  ref_cfg.flat_engine = false;
  ref_cfg.num_threads = 1;

  Circuit ref_circuit = iscas85_proxy(golden.circuit);
  const OptResult ref =
      StatisticalOptimizer(lib, var, ref_cfg).run(ref_circuit);
  const Implementation ref_impl = snapshot(ref_circuit);

  const int thread_counts[] = {1, 2, 8};
  const int block_sizes[] = {1, 8, 0};  // 0 = auto
  for (int threads : thread_counts) {
    for (int block : block_sizes) {
      OptConfig cfg = ref_cfg;
      cfg.flat_engine = true;
      cfg.num_threads = threads;
      cfg.candidate_block = block;

      Circuit c = iscas85_proxy(golden.circuit);
      const OptResult result = StatisticalOptimizer(lib, var, cfg).run(c);
      SCOPED_TRACE(std::string(golden.circuit) + " threads=" +
                   std::to_string(threads) + " block=" +
                   std::to_string(block));
      EXPECT_EQ(result.iterations, ref.iterations);
      EXPECT_EQ(result.sizing_commits, ref.sizing_commits);
      EXPECT_EQ(result.hvt_commits, ref.hvt_commits);
      EXPECT_EQ(result.downsize_commits, ref.downsize_commits);
      EXPECT_EQ(result.rejected_moves, ref.rejected_moves);
      EXPECT_EQ(result.feasible, ref.feasible);
      // Bitwise, not approximate: the engines share one expression shape.
      EXPECT_EQ(result.final_objective, ref.final_objective);
      const Implementation impl = snapshot(c);
      EXPECT_EQ(impl.sizes, ref_impl.sizes);
      EXPECT_TRUE(impl.vths == ref_impl.vths);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Proxies, TrajectoryTest,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });

}  // namespace
}  // namespace statleak
