// Golden-trajectory regression tests: the statistical optimizer's full move
// trajectory on the c432p/c880p proxies is pinned — iteration count, every
// commit/reject counter, feasibility and the final objective. The greedy
// search is deterministic (thread count and observation provably do not
// change it; incremental retiming is bit-identical to full passes), so any
// drift in these numbers means a real behavioral change, which must be
// reviewed and re-pinned deliberately.
//
// Counters are read back through the obs trace streams, which also pins the
// one-trace-event-per-iteration invariant end to end.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/proxy.hpp"
#include "obs/registry.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "tech/process.hpp"

namespace statleak {
namespace {

struct Golden {
  const char* circuit;
  int iterations;
  int sizing_commits;
  int hvt_commits;
  int downsize_commits;
  int rejected_moves;
  double final_objective_na;
};

// Measured with the seed library/variation model at t_max = 1.15 * d_min.
// Re-pin deliberately when the optimizer or the models change.
constexpr Golden kGoldens[] = {
    {"c432p", 747, 80, 158, 46, 452, 1107.4484348948747},
    {"c880p", 1029, 105, 378, 43, 493, 2371.4626754129431},
};

class TrajectoryTest : public ::testing::TestWithParam<Golden> {};

TEST_P(TrajectoryTest, MatchesGolden) {
  const Golden& golden = GetParam();
  Circuit c = iscas85_proxy(golden.circuit);
  const CellLibrary lib(generic_100nm());
  const VariationModel var = VariationModel::typical_100nm();

  OptConfig cfg;
  cfg.t_max_ps = 1.15 * min_achievable_delay_ps(c, lib);

  obs::Registry reg;
  const OptResult result = StatisticalOptimizer(lib, var, cfg).run(c, &reg);

  EXPECT_EQ(result.iterations, golden.iterations);
  EXPECT_EQ(result.sizing_commits, golden.sizing_commits);
  EXPECT_EQ(result.hvt_commits, golden.hvt_commits);
  EXPECT_EQ(result.downsize_commits, golden.downsize_commits);
  EXPECT_EQ(result.rejected_moves, golden.rejected_moves);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.final_objective, golden.final_objective_na,
              1e-9 * golden.final_objective_na);

  // The registry mirrors the result...
  EXPECT_EQ(reg.counter_value("stat.iterations"), golden.iterations);
  EXPECT_EQ(reg.counter_value("stat.commits.sizing"), golden.sizing_commits);
  EXPECT_EQ(reg.counter_value("stat.commits.hvt"), golden.hvt_commits);
  EXPECT_EQ(reg.counter_value("stat.commits.downsize"),
            golden.downsize_commits);
  EXPECT_EQ(reg.counter_value("stat.rejected_moves"), golden.rejected_moves);
  EXPECT_EQ(reg.gauge_value("stat.feasible"), 1.0);

  // ...and the trace stream carries exactly one event per iteration, with
  // monotonic cumulative commit counts ending at the totals.
  const auto events = reg.trace_events("stat");
  ASSERT_EQ(static_cast<int>(events.size()), golden.iterations);
  std::int64_t last_commits = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.commits, last_commits);
    last_commits = e.commits;
  }
  EXPECT_EQ(events.back().commits + events.back().rejected,
            golden.sizing_commits + golden.hvt_commits +
                golden.downsize_commits + golden.rejected_moves);

  // The dirty-cone fast path must actually be engaged: without it the run
  // would take one full pass per query instead of a handful.
  EXPECT_GT(reg.counter_value("ssta.incremental_passes"), 0.0);
  EXPECT_LT(reg.counter_value("ssta.full_passes"), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Proxies, TrajectoryTest,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });

}  // namespace
}  // namespace statleak
