// Tests for the Pelgrom width-scaling extension: intra-die Vth sigma
// shrinking as 1/sqrt(device width), propagated consistently through the
// variation model, SSTA, the analytic leakage distribution, Monte Carlo,
// and the optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/arithmetic.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "opt/statistical.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"

namespace statleak {
namespace {

VariationModel pelgrom_model() {
  VariationModel var = VariationModel::typical_100nm();
  var.pelgrom_vth_scaling = true;
  return var;
}

TEST(Pelgrom, OffReturnsNominalSigma) {
  const VariationModel var = VariationModel::typical_100nm();
  EXPECT_DOUBLE_EQ(var.sigma_vth_intra_for(0.1), var.sigma_vth_intra_v);
  EXPECT_DOUBLE_EQ(var.sigma_vth_intra_for(100.0), var.sigma_vth_intra_v);
}

TEST(Pelgrom, SqrtLaw) {
  const VariationModel var = pelgrom_model();
  const double ref = var.pelgrom_ref_width_um;
  EXPECT_NEAR(var.sigma_vth_intra_for(ref), var.sigma_vth_intra_v, 1e-15);
  EXPECT_NEAR(var.sigma_vth_intra_for(4.0 * ref),
              0.5 * var.sigma_vth_intra_v, 1e-15);
  EXPECT_NEAR(var.sigma_vth_intra_for(0.25 * ref),
              2.0 * var.sigma_vth_intra_v, 1e-15);
}

TEST(Pelgrom, NonPositiveWidthFallsBack) {
  const VariationModel var = pelgrom_model();
  EXPECT_DOUBLE_EQ(var.sigma_vth_intra_for(-1.0), var.sigma_vth_intra_v);
  EXPECT_DOUBLE_EQ(var.sigma_vth_intra_for(0.0), var.sigma_vth_intra_v);
}

TEST(Pelgrom, ScaledPreservesConfiguration) {
  const VariationModel var = pelgrom_model().scaled(2.0);
  EXPECT_TRUE(var.pelgrom_vth_scaling);
  EXPECT_DOUBLE_EQ(var.pelgrom_ref_width_um,
                   pelgrom_model().pelgrom_ref_width_um);
}

TEST(Pelgrom, UpsizedCircuitHasSmallerDelaySigma) {
  const CellLibrary lib(generic_100nm());
  Circuit small = make_ripple_carry_adder(8);
  Circuit big = small;
  for (GateId id = 0; id < big.num_gates(); ++id) {
    if (big.gate(id).kind != CellKind::kInput) big.set_size(id, 8.0);
  }
  const VariationModel var = pelgrom_model();
  // Relative sigma (sigma/mean) must shrink for the upsized circuit beyond
  // what it does without Pelgrom scaling.
  const Canonical ds = SstaEngine(small, lib, var).circuit_delay();
  const Canonical db = SstaEngine(big, lib, var).circuit_delay();
  const VariationModel flat = VariationModel::typical_100nm();
  const Canonical fs = SstaEngine(small, lib, flat).circuit_delay();
  const Canonical fb = SstaEngine(big, lib, flat).circuit_delay();
  const double gain_pelgrom = (ds.sigma() / ds.mean) / (db.sigma() / db.mean);
  const double gain_flat = (fs.sigma() / fs.mean) / (fb.sigma() / fb.mean);
  EXPECT_GT(gain_pelgrom, gain_flat);
}

TEST(Pelgrom, WideGateLeakageVarianceShrinks) {
  const CellLibrary lib(generic_100nm());
  const VariationModel var = pelgrom_model();
  const LeakageModel model(lib, var);
  const GateLeakMoments narrow =
      model.gate_moments(CellKind::kInv, Vth::kLow, 1.0);
  const GateLeakMoments wide =
      model.gate_moments(CellKind::kInv, Vth::kLow, 8.0);
  // Relative spread sqrt(var)/mean must be smaller for the wide gate.
  EXPECT_LT(std::sqrt(wide.var_na2) / wide.mean_na,
            std::sqrt(narrow.var_na2) / narrow.mean_na);
}

TEST(Pelgrom, AnalyticTracksMonteCarlo) {
  const CellLibrary lib(generic_100nm());
  const VariationModel var = pelgrom_model();
  Circuit c = make_carry_lookahead_adder(8);
  // Mixed sizes so the width dependence actually matters.
  const auto steps = lib.size_steps();
  for (GateId id = 0; id < c.num_gates(); ++id) {
    if (c.gate(id).kind == CellKind::kInput) continue;
    c.set_size(id, steps[id % steps.size()]);
  }
  const LeakageDistribution d = LeakageAnalyzer(c, lib, var).distribution();

  McConfig mc;
  mc.num_samples = 10000;
  mc.seed = 91;
  const McResult res = run_monte_carlo(c, lib, var, mc);
  const SampleSummary s = res.leakage_summary();
  EXPECT_NEAR(d.mean_na, s.mean, 0.03 * s.mean);
  EXPECT_NEAR(d.stddev_na(), s.stddev, 0.12 * s.stddev);

  const Canonical delay = SstaEngine(c, lib, var).circuit_delay();
  const SampleSummary sd = res.delay_summary();
  EXPECT_NEAR(delay.mean, sd.mean, 0.03 * sd.mean);
  EXPECT_NEAR(delay.sigma(), sd.stddev, 0.2 * sd.stddev);
}

TEST(Pelgrom, McLeakageSamplesUseWidthScaledSigma) {
  // With ONLY intra-die Vth variation enabled, an upsized circuit's
  // per-sample leakage must be tighter (relatively) under Pelgrom scaling.
  const CellLibrary lib(generic_100nm());
  VariationModel var = VariationModel::none();
  var.sigma_vth_intra_v = 0.02;
  VariationModel pel = var;
  pel.pelgrom_vth_scaling = true;

  Circuit c = make_ripple_carry_adder(8);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    if (c.gate(id).kind != CellKind::kInput) c.set_size(id, 8.0);
  }
  McConfig mc;
  mc.num_samples = 4000;
  const SampleSummary flat =
      run_monte_carlo(c, lib, var, mc).leakage_summary();
  const SampleSummary scaled =
      run_monte_carlo(c, lib, pel, mc).leakage_summary();
  EXPECT_LT(scaled.stddev / scaled.mean, 0.7 * flat.stddev / flat.mean);
}

TEST(Pelgrom, OptimizerStillMeetsYield) {
  const CellLibrary lib(generic_100nm());
  const VariationModel var = pelgrom_model();
  Circuit c = make_carry_lookahead_adder(10);
  OptConfig cfg;
  cfg.t_max_ps = 1.3 * StaEngine(c, lib).critical_delay_ps();
  cfg.yield_target = 0.99;
  const OptResult r = StatisticalOptimizer(lib, var, cfg).run(c);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(SstaEngine(c, lib, var).circuit_delay().cdf(cfg.t_max_ps),
            0.99 - 1e-9);
}

}  // namespace
}  // namespace statleak
