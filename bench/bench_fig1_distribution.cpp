/// \file bench_fig1_distribution.cpp
/// \brief F1 — Monte-Carlo leakage distributions of the deterministic vs
///        statistical solutions (paper figure class: leakage histograms).
///
/// One mid-size circuit (c880p), 30k samples per solution. Prints the two
/// histograms as aligned density columns plus the analytic Wilkinson fit at
/// the same abscissae, and an ASCII sketch — enough to re-plot the figure.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "opt/deterministic.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("F1",
                      "total-leakage distributions, det (3-sigma corner) vs "
                      "stat, c880p, 30k MC samples");

  Circuit det = iscas85_proxy("c880p");
  Circuit stat = det;
  OptConfig cfg;
  cfg.t_max_ps = 1.15 * min_achievable_delay_ps(det, setup.lib);
  cfg.yield_target = 0.99;

  OptConfig det_cfg = cfg;
  det_cfg.corner_k_sigma = 3.0;
  (void)DeterministicOptimizer(setup.lib, setup.var, det_cfg).run(det);
  (void)StatisticalOptimizer(setup.lib, setup.var, cfg).run(stat);

  McConfig mc;
  mc.num_samples = 30000;
  mc.seed = 71;
  const McResult det_mc = run_monte_carlo(det, setup.lib, setup.var, mc);
  mc.seed = 72;
  const McResult stat_mc = run_monte_carlo(stat, setup.lib, setup.var, mc);

  const SampleSummary sd = det_mc.leakage_summary();
  const SampleSummary ss = stat_mc.leakage_summary();
  const double lo = 0.0;
  const double hi = 1.05 * sd.max;
  constexpr std::size_t kBins = 40;
  Histogram hd(lo, hi, kBins);
  Histogram hs(lo, hi, kBins);
  for (double x : det_mc.leakage_na) hd.add(x);
  for (double x : stat_mc.leakage_na) hs.add(x);

  const LeakageDistribution fit_det =
      LeakageAnalyzer(det, setup.lib, setup.var).distribution();
  const LeakageDistribution fit_stat =
      LeakageAnalyzer(stat, setup.lib, setup.var).distribution();

  Table table({"leak [uA]", "det density", "stat density", "det fit",
               "stat fit"});
  for (std::size_t i = 0; i < kBins; ++i) {
    const double x = hd.center(i);
    // Lognormal pdf via finite difference of the cdf over the bin width.
    const double w = (hi - lo) / kBins;
    const double pdf_d =
        (fit_det.cdf(x + 0.5 * w) - fit_det.cdf(x - 0.5 * w)) / w;
    const double pdf_s =
        (fit_stat.cdf(x + 0.5 * w) - fit_stat.cdf(x - 0.5 * w)) / w;
    table.begin_row();
    table.add(x / 1000.0, 2);
    table.add(hd.density(i) * 1000.0, 4);
    table.add(hs.density(i) * 1000.0, 4);
    table.add(pdf_d * 1000.0, 4);
    table.add(pdf_s * 1000.0, 4);
  }
  table.print(std::cout);

  // ASCII sketch: 'D' deterministic, 'S' statistical.
  std::cout << "\nsketch (each column = one bin, height ~ density):\n";
  double peak = 0.0;
  for (std::size_t i = 0; i < kBins; ++i) {
    peak = std::max({peak, hd.density(i), hs.density(i)});
  }
  for (int row = 10; row >= 1; --row) {
    std::string line_d(kBins, ' ');
    std::string line_s(kBins, ' ');
    for (std::size_t i = 0; i < kBins; ++i) {
      if (hd.density(i) >= peak * row / 10.0) line_d[i] = 'D';
      if (hs.density(i) >= peak * row / 10.0) line_s[i] = 'S';
    }
    std::string merged(kBins, ' ');
    for (std::size_t i = 0; i < kBins; ++i) {
      if (line_d[i] == 'D' && line_s[i] == 'S') {
        merged[i] = '#';
      } else if (line_d[i] == 'D') {
        merged[i] = 'D';
      } else if (line_s[i] == 'S') {
        merged[i] = 'S';
      }
    }
    std::cout << "  |" << merged << "|\n";
  }
  std::cout << "   " << std::string(kBins, '-') << "\n";

  std::cout << "\ndet : mean " << format_fixed(sd.mean / 1000.0, 2)
            << " uA, p99 " << format_fixed(sd.p99 / 1000.0, 2) << " uA\n"
            << "stat: mean " << format_fixed(ss.mean / 1000.0, 2)
            << " uA, p99 " << format_fixed(ss.p99 / 1000.0, 2) << " uA\n"
            << "shape check: the statistical curve sits left of the "
               "deterministic one with a thinner upper tail.\n";
  return 0;
}
