/// \file bench_fig4_accuracy.cpp
/// \brief F4 — accuracy of the analytic engines vs Monte Carlo (paper
///        figure/table class: SSTA and lognormal-sum validation).
///
/// For every proxy circuit (min-size all-LVT implementation): SSTA delay
/// mean/sigma and Wilkinson leakage mean/sigma/p99 against a Monte-Carlo
/// reference. Expected shape: delay mean within ~2 %, sigma within ~15 %,
/// leakage mean within ~3 %, p99 within ~10 % — the accuracy class the
/// paper reports for its analytic models.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "ssta/ssta.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("F4",
                      "analytic engines vs Monte Carlo (3000 samples each, "
                      "min-size all-LVT implementations)");

  const auto err = [](double model, double ref) {
    return 100.0 * (model - ref) / ref;
  };

  Table table({"circuit", "D mean err%", "D sigma err%", "L mean err%",
               "L sigma err%", "L p95 err%", "L p99 err%"});
  double worst_dmean = 0.0;
  double worst_lp99 = 0.0;
  for (const std::string& name : iscas85_proxy_names()) {
    const Circuit c = iscas85_proxy(name);
    const Canonical d = SstaEngine(c, setup.lib, setup.var).circuit_delay();
    const LeakageDistribution l =
        LeakageAnalyzer(c, setup.lib, setup.var).distribution();

    McConfig mc;
    mc.num_samples = 3000;
    mc.seed = 55;
    const McResult res = run_monte_carlo(c, setup.lib, setup.var, mc);
    const SampleSummary sd = res.delay_summary();
    const SampleSummary sl = res.leakage_summary();

    table.begin_row();
    table.add(name);
    table.add(err(d.mean, sd.mean), 2);
    table.add(err(d.sigma(), sd.stddev), 2);
    table.add(err(l.mean_na, sl.mean), 2);
    table.add(err(l.stddev_na(), sl.stddev), 2);
    table.add(err(l.quantile_na(0.95), res.leakage_quantile_na(0.95)), 2);
    table.add(err(l.quantile_na(0.99), res.leakage_quantile_na(0.99)), 2);
    worst_dmean = std::max(worst_dmean, std::fabs(err(d.mean, sd.mean)));
    worst_lp99 = std::max(
        worst_lp99,
        std::fabs(err(l.quantile_na(0.99), res.leakage_quantile_na(0.99))));
  }
  table.print(std::cout);
  std::cout << "\nworst |delay mean error| " << format_fixed(worst_dmean, 2)
            << " %, worst |leakage p99 error| "
            << format_fixed(worst_lp99, 2) << " %\n";
  return 0;
}
