/// \file bench_table3_detyield.cpp
/// \brief T3 — timing yield of deterministic nominal-corner solutions under
///        process variation (paper Table 3 class).
///
/// The motivating failure of the deterministic flow: optimized at the
/// nominal corner, its solutions consume all nominal slack, and once real
/// variation is applied the timing yield collapses to near the coin-flip
/// regime. SSTA and Monte Carlo must agree on the collapse.

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "mc/monte_carlo.hpp"
#include "opt/deterministic.hpp"
#include "opt/metrics.hpp"
#include "report/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("T3",
                      "yield collapse of nominal-corner deterministic "
                      "solutions, T = 1.15 x Dmin");

  Table table({"circuit", "T [ps]", "nominal delay [ps]", "SSTA yield",
               "MC yield", "MC +/-", "delay mean [ps]", "delay sigma [ps]"});
  for (const std::string& name : iscas85_proxy_names()) {
    Circuit c = iscas85_proxy(name);
    const double t_max = 1.15 * min_achievable_delay_ps(c, setup.lib);

    OptConfig cfg;
    cfg.t_max_ps = t_max;
    cfg.corner_k_sigma = 0.0;  // nominal-corner optimization
    (void)DeterministicOptimizer(setup.lib, setup.var, cfg).run(c);
    const CircuitMetrics m = measure_metrics(c, setup.lib, setup.var, t_max);

    McConfig mc;
    mc.num_samples = c.num_cells() <= 1600 ? 3000 : 1200;
    mc.seed = 33;
    const McResult res = run_monte_carlo(c, setup.lib, setup.var, mc);

    table.begin_row();
    table.add(name);
    table.add(t_max, 0);
    table.add(m.nominal_delay_ps, 0);
    table.add(m.timing_yield, 3);
    table.add(res.timing_yield(t_max), 3);
    table.add(res.yield_stderr(t_max), 3);
    table.add(m.ssta_delay_mean_ps, 0);
    table.add(m.ssta_delay_sigma_ps, 1);
  }
  table.print(std::cout);
  std::cout << "\nshape check: every circuit meets T nominally yet yields "
               "far below any shippable target once variation is applied.\n";
  return 0;
}
