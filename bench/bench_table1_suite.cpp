/// \file bench_table1_suite.cpp
/// \brief T1 — benchmark-suite characteristics (paper Table 1 class).
///
/// Prints the structural statistics of the ISCAS85 proxy suite next to the
/// benchmark each circuit mirrors, plus the min-size nominal delay and
/// leakage so later tables have their reference points.

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "sta/sta.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("T1", "ISCAS85-proxy suite characteristics");

  Table table({"circuit", "mirrors", "PIs", "POs", "cells", "depth",
               "avg fanout", "min-size delay [ps]", "min-size leak [uA]"});
  for (const std::string& name : iscas85_proxy_names()) {
    const Circuit c = iscas85_proxy(name);
    const CircuitStats s = circuit_stats(c);
    const StaEngine sta(c, setup.lib);
    const LeakageAnalyzer leak(c, setup.lib, setup.var);
    table.begin_row();
    table.add(name);
    table.add(mirrors_of(name));
    table.add_int(static_cast<long long>(s.num_inputs));
    table.add_int(static_cast<long long>(s.num_outputs));
    table.add_int(static_cast<long long>(s.num_cells));
    table.add_int(s.depth);
    table.add(s.avg_fanout, 2);
    table.add(sta.critical_delay_ps(), 1);
    table.add(leak.nominal_na() / 1000.0, 2);
  }
  table.print(std::cout);
  std::cout << "\nNote: proxies are structural stand-ins generated in-repo; "
               "see DESIGN.md §3 for the substitution rationale.\n";
  return 0;
}
