/// \file bench_fig5_runtime.cpp
/// \brief F5 — runtime scaling (paper figure class: optimizer CPU time vs
///        circuit size) plus micro-benchmarks of the analysis engines.
///
/// Google-benchmark binary. The optimizer scaling series uses seeded random
/// DAGs from 250 to 4000 cells (the greedy loops are O(n^2) in the cell
/// count — visible as the ~4x time growth per 2x size). The micro series
/// pins the per-pass cost of STA, SSTA, criticality, Wilkinson rebuild and
/// one Monte-Carlo sample on c880p. The BM_MonteCarloBatched series
/// measures single-thread MC throughput of the batched SoA engine against
/// the scalar reference on c880p/c7552p (docs/PERFORMANCE.md); pipe its
/// --benchmark_format=json output through tools/bench_to_json.py to
/// regenerate BENCH_mc.json.

#include <benchmark/benchmark.h>

#include "gen/proxy.hpp"
#include "gen/random_dag.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/sweep.hpp"
#include "opt/deterministic.hpp"
#include "opt/statistical.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"
#include "tech/process.hpp"

namespace {

using namespace statleak;

const CellLibrary& lib() {
  static const CellLibrary instance(generic_100nm());
  return instance;
}

const VariationModel& var() {
  static const VariationModel instance = VariationModel::typical_100nm();
  return instance;
}

Circuit sized_dag(int cells) {
  RandomDagSpec spec;
  spec.num_inputs = std::max(16, cells / 16);
  spec.num_gates = cells;
  spec.num_outputs = std::max(8, cells / 32);
  spec.seed = 4242;
  return make_random_dag(spec);
}

void BM_StatisticalOptimizer(benchmark::State& state) {
  Circuit base = sized_dag(static_cast<int>(state.range(0)));
  OptConfig cfg;
  cfg.t_max_ps = 1.2 * StaEngine(base, lib()).critical_delay_ps();
  for (auto _ : state) {
    Circuit c = base;
    const OptResult r = StatisticalOptimizer(lib(), var(), cfg).run(c);
    benchmark::DoNotOptimize(r.final_objective);
  }
  state.counters["cells"] = static_cast<double>(base.num_cells());
}
BENCHMARK(BM_StatisticalOptimizer)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// A DAG with realistic logic depth for the incremental-timing series. The
// default locality (40) grows depth ~338 at 4000 cells — a chain-like shape
// no mapped netlist has (ISCAS-85 depths run 17..90) — and depth is the one
// parameter that bounds ANY exact incremental algorithm: a change's fanout
// cone spans a constant fraction of a chain-shaped circuit. locality=300
// lands depth 61 at 4000 cells, matching c7552-class logic.
Circuit realistic_dag(int cells) {
  RandomDagSpec spec;
  spec.num_inputs = std::max(16, cells / 16);
  spec.num_gates = cells;
  spec.num_outputs = std::max(8, cells / 32);
  spec.locality = 300.0;
  spec.seed = 4242;
  return make_random_dag(spec);
}

// Incremental dirty-cone retiming vs the full-pass baseline. Second arg:
// 1 = incremental (the default everywhere else), 0 = one full SSTA pass per
// query. The committed trajectory and final objective are bit-identical
// either way (see tests/ssta_incremental_test.cpp); only the wall clock
// moves. Tentpole acceptance: >= 5x at the 4000-cell proxy.
void BM_StatisticalOptimizerIncremental(benchmark::State& state) {
  Circuit base = realistic_dag(static_cast<int>(state.range(0)));
  OptConfig cfg;
  cfg.t_max_ps = 1.2 * StaEngine(base, lib()).critical_delay_ps();
  cfg.incremental_timing = state.range(1) != 0;
  for (auto _ : state) {
    Circuit c = base;
    const OptResult r = StatisticalOptimizer(lib(), var(), cfg).run(c);
    benchmark::DoNotOptimize(r.final_objective);
  }
  state.counters["cells"] = static_cast<double>(base.num_cells());
  state.counters["incremental"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_StatisticalOptimizerIncremental)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Same comparison on the largest ISCAS-85 proxy (3530 cells, depth 54) —
// the shape the >= 5x claim is really about.
void BM_StatisticalOptimizerIncrementalC7552(benchmark::State& state) {
  Circuit base = iscas85_proxy("c7552p");
  OptConfig cfg;
  cfg.t_max_ps = 1.2 * StaEngine(base, lib()).critical_delay_ps();
  cfg.incremental_timing = state.range(0) != 0;
  for (auto _ : state) {
    Circuit c = base;
    const OptResult r = StatisticalOptimizer(lib(), var(), cfg).run(c);
    benchmark::DoNotOptimize(r.final_objective);
  }
  state.counters["cells"] = static_cast<double>(base.num_cells());
  state.counters["incremental"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_StatisticalOptimizerIncrementalC7552)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_DeterministicOptimizer(benchmark::State& state) {
  Circuit base = sized_dag(static_cast<int>(state.range(0)));
  OptConfig cfg;
  cfg.t_max_ps = 1.2 * StaEngine(base, lib()).critical_delay_ps();
  cfg.corner_k_sigma = 3.0;
  for (auto _ : state) {
    Circuit c = base;
    const OptResult r = DeterministicOptimizer(lib(), var(), cfg).run(c);
    benchmark::DoNotOptimize(r.final_objective);
  }
  state.counters["cells"] = static_cast<double>(base.num_cells());
}
BENCHMARK(BM_DeterministicOptimizer)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ----------------------------- engine micro-benchmarks on c880p -----------

void BM_StaFullPass(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  const StaEngine sta(c, lib());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sta.analyze(1000.0).critical_delay_ps);
  }
}
BENCHMARK(BM_StaFullPass)->Unit(benchmark::kMicrosecond);

void BM_SstaForwardOnly(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  const SstaEngine ssta(c, lib(), var());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta.circuit_delay().mean);
  }
}
BENCHMARK(BM_SstaForwardOnly)->Unit(benchmark::kMicrosecond);

void BM_SstaWithCriticality(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  const SstaEngine ssta(c, lib(), var());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssta.analyze().circuit_delay.mean);
  }
}
BENCHMARK(BM_SstaWithCriticality)->Unit(benchmark::kMicrosecond);

void BM_LeakageRebuild(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  LeakageAnalyzer an(c, lib(), var());
  for (auto _ : state) {
    an.rebuild();
    benchmark::DoNotOptimize(an.mean_na());
  }
}
BENCHMARK(BM_LeakageRebuild)->Unit(benchmark::kMicrosecond);

void BM_LeakageMovePricing(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  const LeakageAnalyzer an(c, lib(), var());
  GateId id = c.outputs()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(an.quantile_if_na(id, Vth::kHigh, 2.0, 0.99));
  }
}
BENCHMARK(BM_LeakageMovePricing)->Unit(benchmark::kNanosecond);

void BM_MonteCarloSample(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  McConfig cfg;
  cfg.num_samples = 100;
  cfg.num_threads = 1;
  for (auto _ : state) {
    const McResult res = run_monte_carlo(c, lib(), var(), cfg);
    benchmark::DoNotOptimize(res.delay_ps.back());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MonteCarloSample)->Unit(benchmark::kMillisecond);

// --------------------- batched vs scalar MC (tentpole acceptance) ---------

// Single-thread Monte-Carlo throughput, batched SoA engine vs the scalar
// per-sample reference, on the two proxies the acceptance criteria name.
// Second arg: 1 = batched (auto block size), 0 = scalar. Output is
// bit-identical between the two (tests/mc_batched_test.cpp); only
// items_per_second (samples/s) should move. Tentpole acceptance: >= 3x on
// c7552p vs the pre-PR scalar baseline.
void BM_MonteCarloBatched(benchmark::State& state) {
  const char* name = state.range(0) == 0 ? "c880p" : "c7552p";
  const Circuit c = iscas85_proxy(name);
  McConfig cfg;
  cfg.num_samples = state.range(0) == 0 ? 2000 : 500;
  cfg.num_threads = 1;
  cfg.use_batched = state.range(1) != 0;
  for (auto _ : state) {
    const McResult res = run_monte_carlo(c, lib(), var(), cfg);
    benchmark::DoNotOptimize(res.delay_ps.back());
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_samples);
  state.SetLabel(name);
  state.counters["cells"] = static_cast<double>(c.num_cells());
  state.counters["batched"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_MonteCarloBatched)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// ------------------------- corner sweep: reuse vs cold (acceptance) -------

// A 3-temperature x 2-Vdd sweep grid on c880p: the corner-major sweep
// engine (one McArena carrying the FlatCircuit/kernel/scratch state across
// cells) vs naive per-cell cold runs that pay the full setup for every
// corner. First arg: samples per cell (the setup cost amortizes as it
// grows, so the reuse win is largest on thin cells); second arg: 1 = sweep
// engine, 0 = cold loop. The populations are bit-identical
// (tests/sweep_test.cpp); only the setup reuse moves the clock.
// items_per_second is samples/s across the whole grid.
void BM_CornerSweep(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  SweepGrid grid;
  grid.temperatures_k = {0.0, 398.15, 423.15};
  grid.vdds_v = {0.0, 1.1};
  McConfig cfg;
  cfg.num_samples = static_cast<int>(state.range(0));
  cfg.num_threads = 1;
  const bool reuse = state.range(1) != 0;
  for (auto _ : state) {
    if (reuse) {
      const SweepResult r = run_corner_sweep(c, grid, cfg);
      benchmark::DoNotOptimize(r.cells.back().result.delay_ps.back());
    } else {
      // The equivalent standalone runs: per-corner library, target
      // resolution and a cold engine start, exactly what a shell loop
      // over `statleak mc --temp ... --vdd ...` pays.
      for (const SweepCorner& corner : grid.corners()) {
        const CellLibrary corner_lib(corner.resolve_node());
        const double t_max =
            1.1 * StaEngine(c, corner_lib).critical_delay_ps();
        benchmark::DoNotOptimize(t_max);
        const McResult r =
            run_monte_carlo(c, corner_lib, corner.resolve_variation(), cfg);
        benchmark::DoNotOptimize(r.delay_ps.back());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_samples *
                          static_cast<std::int64_t>(grid.num_cells()));
  state.counters["reuse"] = reuse ? 1.0 : 0.0;
  state.counters["grid_cells"] = static_cast<double>(grid.num_cells());
}
BENCHMARK(BM_CornerSweep)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// ------------------------------ threads scaling (tentpole acceptance) -----

// 10k-sample Monte-Carlo on a c-series circuit vs worker count. Output is
// bit-identical across the series (counter-based sample streams); only the
// wall clock should move. items_per_second is samples/s.
void BM_MonteCarloThreads(benchmark::State& state) {
  const Circuit c = iscas85_proxy("c880p");
  McConfig cfg;
  cfg.num_samples = 10000;
  cfg.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const McResult res = run_monte_carlo(c, lib(), var(), cfg);
    benchmark::DoNotOptimize(res.delay_ps.back());
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_samples);
  state.counters["threads"] = static_cast<double>(cfg.num_threads);
}
BENCHMARK(BM_MonteCarloThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// Statistical-optimizer candidate scoring vs worker count on a 1000-cell
// DAG; the committed implementation (and OptResult) is identical per arg.
void BM_StatisticalOptimizerThreads(benchmark::State& state) {
  Circuit base = sized_dag(1000);
  OptConfig cfg;
  cfg.t_max_ps = 1.2 * StaEngine(base, lib()).critical_delay_ps();
  cfg.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Circuit c = base;
    const OptResult r = StatisticalOptimizer(lib(), var(), cfg).run(c);
    benchmark::DoNotOptimize(r.final_objective);
  }
  state.counters["threads"] = static_cast<double>(cfg.num_threads);
}
BENCHMARK(BM_StatisticalOptimizerThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace

// Google Benchmark's own "library_build_type" context key describes the
// HARNESS library (the distro package is built without NDEBUG), not the
// timed statleak code. Stamp the statleak build type explicitly so
// tools/bench_to_json.py can tell Release timing artifacts from debug ones.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("statleak_build_type", "release");
#else
  benchmark::AddCustomContext("statleak_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
