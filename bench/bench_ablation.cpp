/// \file bench_ablation.cpp
/// \brief A1 — ablations of the design choices DESIGN.md calls out.
///
/// (a) Correlated Wilkinson sum vs independent-sum leakage: how much of the
///     tail comes from inter-die correlation.
/// (b) Clark MAX vs max-of-means SSTA: what moment-matched MAX buys.
/// (c) Oracle-calibrated auto-corner baseline vs fixed 3-sigma: how much of
///     the headline saving is really "the deterministic flow guard-bands
///     too hard" vs "statistical move pricing".
/// (d) Quadratic leakage exponent on/off: sensitivity of the distribution
///     to the second-order channel-length term.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "opt/statistical.hpp"
#include "leakage/leakage.hpp"
#include "mc/monte_carlo.hpp"
#include "report/flow.hpp"
#include "ssta/ssta.hpp"
#include "util/table.hpp"

namespace {

using namespace statleak;

void ablation_wilkinson(const bench::Setup& setup) {
  std::cout << "--- (a) correlated Wilkinson vs independent lognormal sum "
               "---\n";
  Table table({"circuit", "MC p99 [uA]", "Wilkinson p99 [uA]",
               "indep-sum p99 [uA]", "Wilkinson err%", "indep err%"});
  for (const std::string name : {"c432p", "c880p", "c1908p"}) {
    const Circuit c = iscas85_proxy(name);
    const LeakageAnalyzer an(c, setup.lib, setup.var);
    const LeakageDistribution full = an.distribution();

    // Independent-sum variant: same per-gate moments, no cross covariance.
    const LeakageModel model(setup.lib, setup.var);
    double mean = 0.0;
    double var_sum = 0.0;
    for (GateId id = 0; id < c.num_gates(); ++id) {
      const Gate& g = c.gate(id);
      if (g.kind == CellKind::kInput) continue;
      const GateLeakMoments m = model.gate_moments(g.kind, g.vth, g.size);
      mean += m.mean_na;
      var_sum += m.var_na2;
    }
    const Lognormal indep = Lognormal::from_moments(mean, var_sum);

    McConfig mc;
    mc.num_samples = 4000;
    mc.seed = 81;
    const McResult res = run_monte_carlo(c, setup.lib, setup.var, mc);
    const double mc_p99 = res.leakage_quantile_na(0.99);

    table.begin_row();
    table.add(name);
    table.add(mc_p99 / 1000.0, 2);
    table.add(full.quantile_na(0.99) / 1000.0, 2);
    table.add(indep.quantile(0.99) / 1000.0, 2);
    table.add(100.0 * (full.quantile_na(0.99) - mc_p99) / mc_p99, 1);
    table.add(100.0 * (indep.quantile(0.99) - mc_p99) / mc_p99, 1);
  }
  table.print(std::cout);
  std::cout << "takeaway: dropping inter-die correlation underestimates the "
               "p99 tail badly — the correlated sum is load-bearing.\n\n";
}

void ablation_clark(const bench::Setup& setup) {
  std::cout << "--- (b) Clark MAX vs max-of-means SSTA ---\n";
  Table table({"circuit", "MC delay mean [ps]", "Clark mean [ps]",
               "max-of-means [ps]", "Clark err%", "naive err%"});
  for (const std::string name : {"c432p", "c880p", "c1908p"}) {
    const Circuit c = iscas85_proxy(name);
    const SstaEngine ssta(c, setup.lib, setup.var);
    const Canonical clark = ssta.circuit_delay();

    // Max-of-means variant: deterministic arrival of means, per-gate sigma
    // accumulated along the mean-critical path only (the classic
    // corner-style underestimate of the MAX mean shift).
    std::vector<double> arr(c.num_gates(), 0.0);
    for (GateId id : c.topo_order()) {
      double in = 0.0;
      for (GateId f : c.gate(id).fanins) in = std::max(in, arr[f]);
      arr[id] = in + ssta.gate_delay(id).mean;
    }
    double naive_mean = 0.0;
    for (GateId out : c.outputs()) naive_mean = std::max(naive_mean, arr[out]);

    McConfig mc;
    mc.num_samples = 4000;
    mc.seed = 82;
    const McResult res = run_monte_carlo(c, setup.lib, setup.var, mc);
    const double mc_mean = res.delay_summary().mean;

    table.begin_row();
    table.add(name);
    table.add(mc_mean, 1);
    table.add(clark.mean, 1);
    table.add(naive_mean, 1);
    table.add(100.0 * (clark.mean - mc_mean) / mc_mean, 2);
    table.add(100.0 * (naive_mean - mc_mean) / mc_mean, 2);
  }
  table.print(std::cout);
  std::cout << "takeaway: ignoring the MAX mean shift biases delay low; "
               "Clark's moment matching removes most of that bias.\n\n";
}

void ablation_corner(const bench::Setup& setup) {
  std::cout << "--- (c) how strong can the deterministic baseline get? ---\n";
  Table table({"circuit", "saving vs det@3sigma %",
               "saving vs auto-corner %", "auto corner k"});
  for (const std::string name : {"c432p", "c880p"}) {
    Circuit c1 = iscas85_proxy(name);
    FlowConfig fixed;
    fixed.det_corner_k = 3.0;
    const FlowOutcome out_fixed = run_flow(c1, setup.lib, setup.var, fixed);

    Circuit c2 = iscas85_proxy(name);
    FlowConfig autoc;
    autoc.det_auto_corner = true;
    const FlowOutcome out_auto = run_flow(c2, setup.lib, setup.var, autoc);

    table.begin_row();
    table.add(name);
    table.add(100.0 * out_fixed.p99_saving(), 1);
    table.add(100.0 * out_auto.p99_saving(), 1);
    table.add(out_auto.det_corner_k, 1);
  }
  table.print(std::cout);
  std::cout << "takeaway: an SSTA-calibrated corner (information the "
               "deterministic flow does not have in practice) recovers most "
               "of the gap — the statistical gain is largely about pricing "
               "per-path margin correctly, which the oracle corner "
               "approximates globally.\n\n";
}

void ablation_quadratic(const bench::Setup& setup) {
  std::cout << "--- (d) quadratic channel-length leakage exponent ---\n";
  ProcessNode node_q = setup.node;
  node_q.leak_quadratic_per_nm2 = 0.01;
  const CellLibrary lib_q(node_q);

  Table table({"circuit", "linear p99 [uA]", "quadratic p99 [uA]",
               "tail inflation %"});
  for (const std::string name : {"c432p", "c880p"}) {
    const Circuit c = iscas85_proxy(name);
    const double lin =
        LeakageAnalyzer(c, setup.lib, setup.var).quantile_na(0.99);
    const double quad = LeakageAnalyzer(c, lib_q, setup.var).quantile_na(0.99);
    table.begin_row();
    table.add(name);
    table.add(lin / 1000.0, 2);
    table.add(quad / 1000.0, 2);
    table.add(100.0 * (quad - lin) / lin, 1);
  }
  table.print(std::cout);
  std::cout << "takeaway: the second-order term fattens the leakage tail; "
               "the moment-corrected model absorbs it without re-deriving "
               "the flow.\n";
}

void ablation_vth_offset(const bench::Setup& setup) {
  std::cout << "\n--- (e) dual-Vth offset: how far apart should the two "
               "thresholds sit? ---\n";
  // Sweep the HVT offset at fixed LVT; rebuild the library each time and
  // run the statistical flow on c880p at T = 1.15 x Dmin.
  Table table({"HVT - LVT [mV]", "HVT/LVT leak ratio", "stat p99 [uA]",
               "HVT %", "feasible"});
  for (double offset_mv : {60.0, 90.0, 120.0, 180.0, 240.0}) {
    ProcessNode node = setup.node;
    node.vth_high = node.vth_low + offset_mv / 1000.0;
    node.validate();
    const CellLibrary lib(node);

    Circuit c = iscas85_proxy("c880p");
    OptConfig cfg;
    cfg.t_max_ps = 1.15 * min_achievable_delay_ps(c, lib);
    cfg.yield_target = 0.99;
    const OptResult r = StatisticalOptimizer(lib, setup.var, cfg).run(c);
    const double ratio = lib.leakage_na(CellKind::kInv, Vth::kLow, 1.0) /
                         lib.leakage_na(CellKind::kInv, Vth::kHigh, 1.0);
    const LeakageAnalyzer leak(c, lib, setup.var);
    table.begin_row();
    table.add(offset_mv, 0);
    table.add(ratio, 1);
    table.add(leak.quantile_na(0.99) / 1000.0, 2);
    table.add(100.0 * static_cast<double>(c.count_hvt()) /
                  static_cast<double>(c.num_cells()),
              1);
    table.add(r.feasible ? "yes" : "no");
  }
  table.print(std::cout);
  std::cout << "takeaway: larger offsets leak less per HVT cell but price "
               "fewer cells into HVT on critical structures; the optimum "
               "sits at a moderate offset, which is why real dual-Vth "
               "libraries use ~100-150 mV.\n";
}

}  // namespace

int main() {
  bench::Setup setup;
  bench::print_header("A1", "design-choice ablations");
  ablation_wilkinson(setup);
  ablation_clark(setup);
  ablation_corner(setup);
  ablation_quadratic(setup);
  ablation_vth_offset(setup);
  return 0;
}
