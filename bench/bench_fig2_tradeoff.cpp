/// \file bench_fig2_tradeoff.cpp
/// \brief F2 — leakage saving vs delay-constraint tightness (paper figure
///        class: trade-off curve).
///
/// Sweeps T/Dmin over [1.05, 1.6] on three small/mid proxies. Expected
/// shape: savings vs the 3-sigma-corner baseline are largest in the
/// mid-tightness region and shrink at very loose constraints, where both
/// flows converge to the all-HVT minimum-size floor.

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "report/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("F2",
                      "p99-leakage saving vs T/Dmin (stat vs det@3sigma, "
                      "eta = 0.99)");

  const std::vector<std::string> circuits = {"c432p", "c499p", "c880p"};
  const std::vector<double> factors = {1.05, 1.10, 1.15, 1.25, 1.40, 1.60};

  Table table({"T/Dmin", "c432p save%", "c499p save%", "c880p save%",
               "c432p stat p99 [uA]", "c880p stat p99 [uA]"});
  for (double f : factors) {
    table.begin_row();
    table.add(f, 2);
    double c432_p99 = 0.0;
    double c880_p99 = 0.0;
    for (const std::string& name : circuits) {
      Circuit c = iscas85_proxy(name);
      FlowConfig cfg;
      cfg.t_max_factor = f;
      cfg.det_corner_k = 3.0;
      const FlowOutcome out = run_flow(c, setup.lib, setup.var, cfg);
      // Infeasible det corners at very tight T are reported as 0 saving.
      const bool det_met =
          out.det_metrics.timing_yield >= cfg.yield_target - 1e-9;
      const bool stat_met =
          out.stat_metrics.timing_yield >= cfg.yield_target - 1e-9;
      table.add(det_met && stat_met ? 100.0 * out.p99_saving() : 0.0, 1);
      if (name == "c432p") c432_p99 = out.stat_metrics.leakage_p99_na;
      if (name == "c880p") c880_p99 = out.stat_metrics.leakage_p99_na;
    }
    table.add(c432_p99 / 1000.0, 2);
    table.add(c880_p99 / 1000.0, 2);
  }
  table.print(std::cout);
  std::cout << "\nshape check: absolute stat p99 falls monotonically with "
               "looser T; saving vs the corner baseline peaks at moderate "
               "tightness.\n";
  return 0;
}
