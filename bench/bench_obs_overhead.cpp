/// \file bench_obs_overhead.cpp
/// \brief Pins the cost of the observability layer.
///
/// Two claims are measured:
///
///   1. Null-sink fast path: with no registry attached every
///      instrumentation site is a pointer test — the optimizer and
///      Monte-Carlo hot loops must stay within noise (<2 %) of the
///      pre-instrumentation build. Compare the *_Null and *_Attached
///      series: the Null numbers are the shipping default.
///   2. Attached cost stays proportional to iterations, not samples: the
///      registry mutex is touched once per optimizer iteration / shard
///      scope, never inside per-sample inner loops.
///
/// Run: ./bench_obs_overhead [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include "statleak.hpp"

namespace {

using namespace statleak;

const CellLibrary& lib() {
  static const CellLibrary instance(generic_100nm());
  return instance;
}

const VariationModel& var() {
  static const VariationModel instance = VariationModel::typical_100nm();
  return instance;
}

Circuit bench_circuit() {
  RandomDagSpec spec;
  spec.num_inputs = 32;
  spec.num_gates = 500;
  spec.num_outputs = 16;
  spec.seed = 4242;
  return make_random_dag(spec);
}

OptConfig opt_config(const Circuit& circuit) {
  OptConfig cfg;
  cfg.t_max_ps = 1.2 * StaEngine(circuit, lib()).critical_delay_ps();
  cfg.yield_target = 0.95;
  return cfg;
}

// --------------------------------------------------- statistical opt ------

void BM_StatOptimizer_Null(benchmark::State& state) {
  const Circuit base = bench_circuit();
  const OptConfig cfg = opt_config(base);
  for (auto _ : state) {
    Circuit c = base;
    benchmark::DoNotOptimize(
        StatisticalOptimizer(lib(), var(), cfg).run(c, nullptr));
  }
}
BENCHMARK(BM_StatOptimizer_Null)->Unit(benchmark::kMillisecond);

void BM_StatOptimizer_Attached(benchmark::State& state) {
  const Circuit base = bench_circuit();
  const OptConfig cfg = opt_config(base);
  for (auto _ : state) {
    obs::Registry reg;
    Circuit c = base;
    benchmark::DoNotOptimize(
        StatisticalOptimizer(lib(), var(), cfg).run(c, &reg));
  }
}
BENCHMARK(BM_StatOptimizer_Attached)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------- monte carlo -----

void BM_MonteCarlo_Null(benchmark::State& state) {
  const Circuit circuit = bench_circuit();
  McConfig mc;
  mc.num_samples = 2000;
  mc.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_monte_carlo(circuit, lib(), var(), mc, nullptr));
  }
}
BENCHMARK(BM_MonteCarlo_Null)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MonteCarlo_Attached(benchmark::State& state) {
  const Circuit circuit = bench_circuit();
  McConfig mc;
  mc.num_samples = 2000;
  mc.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    obs::Registry reg;
    benchmark::DoNotOptimize(run_monte_carlo(circuit, lib(), var(), mc, &reg));
  }
}
BENCHMARK(BM_MonteCarlo_Attached)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- micro series -----
// The per-call cost of each primitive on the disabled path, to show the
// "pointer test only" claim at instruction granularity.

void BM_NullScopedTimer(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedTimer timer(nullptr, "phase");
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_NullScopedTimer);

void BM_NullLocalCounterAdd(benchmark::State& state) {
  obs::LocalCounter counter(nullptr, "count");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(counter.pending());
  }
}
BENCHMARK(BM_NullLocalCounterAdd);

void BM_AttachedScopedTimer(benchmark::State& state) {
  obs::Registry reg;
  for (auto _ : state) {
    obs::ScopedTimer timer(&reg, "phase");
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_AttachedScopedTimer);

void BM_RunReportSerialization(benchmark::State& state) {
  obs::Registry reg;
  for (int i = 0; i < 64; ++i) {
    reg.add("counter." + std::to_string(i), i);
    obs::TraceEvent e;
    e.step = i;
    e.phase = "sizing";
    reg.trace("stat", e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::run_report_json(reg));
  }
}
BENCHMARK(BM_RunReportSerialization);

}  // namespace

BENCHMARK_MAIN();
