/// \file bench_table2_savings.cpp
/// \brief T2 — the headline table: statistical vs deterministic dual-Vth +
///        sizing at iso timing yield (paper Table 2 class).
///
/// Deterministic baseline: corner-based optimization at the 3-sigma
/// worst-case process corner — the guard-banded flow of the paper's era.
/// Statistical flow: yield-constrained (eta = 0.99) minimization of the
/// 99th-percentile total leakage. Both at T = 1.15 * D_min per circuit.
/// Expected shape: both meet yield; statistical saves roughly 15-50 % of
/// the leakage percentile, least on the multiplier (everything critical).

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "report/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("T2",
                      "leakage at iso yield: deterministic (3-sigma corner) "
                      "vs statistical, T = 1.15 x Dmin, eta = 0.99");

  Table table({"circuit", "T [ps]", "det yield", "stat yield",
               "det p99 [uA]", "stat p99 [uA]", "saving %", "det mean [uA]",
               "stat mean [uA]", "det HVT%", "stat HVT%", "det [s]",
               "stat [s]"});

  double geo_saving = 1.0;
  int rows = 0;
  for (const std::string& name : iscas85_proxy_names()) {
    Circuit c = iscas85_proxy(name);
    FlowConfig cfg;
    cfg.t_max_factor = 1.15;
    cfg.yield_target = 0.99;
    cfg.det_corner_k = 3.0;
    // Monte-Carlo cross-check on the small half of the suite only (keeps
    // the full table under a couple of minutes on one core).
    cfg.mc_samples = c.num_cells() <= 1000 ? 2000 : 0;
    const FlowOutcome out = run_flow(c, setup.lib, setup.var, cfg);

    table.begin_row();
    table.add(name);
    table.add(out.t_max_ps, 0);
    table.add(out.det_metrics.timing_yield, 4);
    table.add(out.stat_metrics.timing_yield, 4);
    table.add(out.det_metrics.leakage_p99_na / 1000.0, 2);
    table.add(out.stat_metrics.leakage_p99_na / 1000.0, 2);
    table.add(100.0 * out.p99_saving(), 1);
    table.add(out.det_metrics.leakage_mean_na / 1000.0, 2);
    table.add(out.stat_metrics.leakage_mean_na / 1000.0, 2);
    table.add(100.0 * out.det_metrics.hvt_fraction, 1);
    table.add(100.0 * out.stat_metrics.hvt_fraction, 1);
    table.add(out.det_runtime_s, 2);
    table.add(out.stat_runtime_s, 2);

    geo_saving *= 1.0 - out.p99_saving();
    ++rows;
    if (out.has_mc) {
      std::cout << "  [MC x-check " << name << ": det yield "
                << format_fixed(out.det_mc.timing_yield, 3) << ", stat yield "
                << format_fixed(out.stat_mc.timing_yield, 3) << ", stat p99 "
                << format_fixed(out.stat_mc.leakage_p99_na / 1000.0, 2)
                << " uA]\n";
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  const double geomean =
      100.0 * (1.0 - std::pow(geo_saving, 1.0 / std::max(rows, 1)));
  std::cout << "\ngeomean p99-leakage saving at iso yield: "
            << format_fixed(geomean, 1) << " %\n";
  return 0;
}
