/// \file bench_estimator_variance.cpp
/// \brief E1 — estimator quality of the variance-reduced Monte-Carlo modes.
///
/// For each circuit and metric, runs R independent replications (different
/// seeds) of every estimator at a fixed per-run sample count and reports
/// the across-replication variance of the estimate. Because plain MC error
/// scales as 1/N, the variance ratio vs the plain estimator is the
/// sample-count reduction factor at equal variance (a lower bound for QMC,
/// whose error falls faster than 1/sqrt(N)).
///
/// Metrics:
///   leakage_mean_na   — mean total leakage; estimators plain / sobol / cv
///   delay_tail_prob   — P(delay > t99), t99 from a large fixed reference
///                       run; estimators plain / sobol / is (SSTA-guided
///                       timing shift)
///   leakage_tail_prob — P(leakage > l99); estimators plain / sobol / is
///                       (leakage-gradient shift)
///
/// Output: one JSON document on stdout (machine format for
/// tools/bench_to_json.py --estimators, which computes the reduction
/// factors and writes BENCH_estimators.json). Human summary on stderr.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "mc/estimator.hpp"
#include "mc/monte_carlo.hpp"
#include "util/stats.hpp"

namespace {

using namespace statleak;

constexpr int kReps = 20;
constexpr int kSamplesPerRun = 2000;
constexpr int kReferenceSamples = 20000;
constexpr std::uint64_t kReferenceSeed = 999;
constexpr std::uint64_t kRepSeedBase = 1000;

double tail_prob_leakage(const McResult& res, double threshold) {
  if (!res.weights.empty()) {
    return 1.0 - weighted_fraction_below(res.leakage_na, res.weights,
                                         threshold);
  }
  std::size_t above = 0;
  for (const double l : res.leakage_na) {
    if (l > threshold) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(res.leakage_na.size());
}

struct Entry {
  std::string circuit;
  std::string metric;
  std::string estimator;
  double mean = 0.0;
  double variance = 0.0;
  double ess_mean = 0.0;  ///< average effective sample size per run
};

/// Across-replication mean/variance of one estimator configuration.
Entry replicate(const std::string& circuit_name, const Circuit& c,
                const bench::Setup& setup, const std::string& metric,
                const std::string& estimator, const McConfig& proto,
                double (*extract)(const McResult&, double), double aux) {
  RunningStats stats;
  double ess_sum = 0.0;
  for (int r = 0; r < kReps; ++r) {
    McConfig cfg = proto;
    cfg.seed = kRepSeedBase + static_cast<std::uint64_t>(r);
    const McResult res = run_monte_carlo(c, setup.lib, setup.var, cfg);
    stats.add(extract(res, aux));
    ess_sum += res.ess();
  }
  Entry e;
  e.circuit = circuit_name;
  e.metric = metric;
  e.estimator = estimator;
  e.mean = stats.mean();
  e.variance = stats.variance();
  e.ess_mean = ess_sum / kReps;
  std::cerr << "  " << circuit_name << " " << metric << " / " << estimator
            << ": mean " << e.mean << ", var " << e.variance << ", ess "
            << e.ess_mean << "\n";
  return e;
}

double extract_mean_leakage(const McResult& res, double) {
  return mean_of(res.leakage_na);
}
double extract_cv_mean_leakage(const McResult& res, double) {
  return res.cv_leakage_mean_na();
}
double extract_delay_tail(const McResult& res, double t_max) {
  return 1.0 - res.timing_yield(t_max);
}
double extract_leakage_tail(const McResult& res, double threshold) {
  return tail_prob_leakage(res, threshold);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace statleak;
  bench::Setup setup;
  std::vector<std::string> circuits;
  for (int i = 1; i < argc; ++i) circuits.emplace_back(argv[i]);
  if (circuits.empty()) circuits = {"c880p", "c7552p"};

  std::vector<Entry> entries;
  for (const std::string& name : circuits) {
    const Circuit c = iscas85_proxy(name);
    std::cerr << name << ": reference run (" << kReferenceSamples
              << " samples)\n";

    // Tail thresholds from one large fixed-seed reference run, shared by
    // every estimator so they all target the same quantity.
    McConfig ref_cfg;
    ref_cfg.num_samples = kReferenceSamples;
    ref_cfg.seed = kReferenceSeed;
    const McResult ref = run_monte_carlo(c, setup.lib, setup.var, ref_cfg);
    const double t99 = ref.delay_quantile_ps(0.99);
    const double l99 = ref.leakage_quantile_na(0.99);

    McConfig plain;
    plain.num_samples = kSamplesPerRun;

    McConfig sobol = plain;
    sobol.sampler = McSampler::kSobol;

    McConfig cv = plain;
    cv.control_variate = true;

    McConfig is_timing = plain;
    is_timing.is_shift =
        compute_timing_is_shift(c, setup.lib, setup.var, t99);

    McConfig is_leak = plain;
    is_leak.is_shift = compute_leakage_is_shift(setup.lib, setup.var, 0.99);

    entries.push_back(replicate(name, c, setup, "leakage_mean_na", "plain",
                                plain, extract_mean_leakage, 0.0));
    entries.push_back(replicate(name, c, setup, "leakage_mean_na", "sobol",
                                sobol, extract_mean_leakage, 0.0));
    entries.push_back(replicate(name, c, setup, "leakage_mean_na", "cv", cv,
                                extract_cv_mean_leakage, 0.0));

    entries.push_back(replicate(name, c, setup, "delay_tail_prob", "plain",
                                plain, extract_delay_tail, t99));
    entries.push_back(replicate(name, c, setup, "delay_tail_prob", "sobol",
                                sobol, extract_delay_tail, t99));
    entries.push_back(replicate(name, c, setup, "delay_tail_prob", "is",
                                is_timing, extract_delay_tail, t99));

    entries.push_back(replicate(name, c, setup, "leakage_tail_prob",
                                "plain", plain, extract_leakage_tail, l99));
    entries.push_back(replicate(name, c, setup, "leakage_tail_prob",
                                "sobol", sobol, extract_leakage_tail, l99));
    entries.push_back(replicate(name, c, setup, "leakage_tail_prob", "is",
                                is_leak, extract_leakage_tail, l99));
  }

  // Machine output: a single JSON document on stdout.
  std::printf("{\n");
  std::printf("  \"bench\": \"estimator_variance\",\n");
  std::printf("  \"replications\": %d,\n", kReps);
  std::printf("  \"samples_per_run\": %d,\n", kSamplesPerRun);
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"circuit\": \"%s\", \"metric\": \"%s\", "
                "\"estimator\": \"%s\", \"mean\": %.17g, "
                "\"variance\": %.17g, \"ess_mean\": %.17g}%s\n",
                e.circuit.c_str(), e.metric.c_str(), e.estimator.c_str(),
                e.mean, e.variance, e.ess_mean,
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
