/// \file bench_opt_throughput.cpp
/// \brief P1 — statistical-optimizer throughput, flat-SoA vs scalar engine.
///
/// Runs the statistical optimizer twice per circuit — once on the flat-SoA
/// engine with candidate-batched move pricing (the default) and once on the
/// scalar engine — and reports wall-clock seconds and optimizer loop
/// iterations per second ("moves/s": each iteration prices every legal
/// candidate and commits or rejects one move). Both runs walk the identical
/// trajectory (asserted here, pinned by the test suite), so the comparison
/// is pure layout + batching, never algorithmic drift.
///
/// Circuits: the two largest ISCAS85-class proxies plus the gen/scaling.hpp
/// series (10k/30k/100k/200k gates). The scaling members run with a reduced
/// iteration cap so the scalar baseline finishes in seconds; throughput is
/// per-iteration, so the cap does not distort the ratio.
///
/// Repetition protocol: the ISCAS proxies are cheap enough to run three
/// back-to-back flat/scalar pairs; each engine reports its MINIMUM wall
/// time, the standard estimator of the noise floor on a shared machine
/// (run-to-run scheduler jitter only ever adds time). The scaling members
/// run one pair — their multi-second runtimes average the jitter out.
///
/// Output: one JSON document on stdout (machine format for
/// tools/bench_to_json.py --opt, which writes BENCH_opt.json). Human
/// summary on stderr. Single-threaded by design — the thread dimension is
/// covered by the invariance tests; throughput here isolates the layout.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "gen/scaling.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace {

using namespace statleak;

struct CircuitSpec {
  std::string name;
  bool scaling = false;  ///< gen/scaling member vs ISCAS proxy
  /// Iteration cap as a multiple of the cell count; the scaling members are
  /// capped low so the scalar baseline stays bounded.
  double max_iterations_factor = 24.0;
  int reps = 1;  ///< back-to-back flat/scalar pairs; min wall time reported
};

struct Entry {
  std::string circuit;
  std::string engine;
  std::size_t num_cells = 0;
  double seconds = 0.0;
  int iterations = 0;
  int commits = 0;
  double moves_per_second = 0.0;
};

Entry run_one(const Circuit& proto, const bench::Setup& setup,
              const CircuitSpec& spec, double t_max_ps, bool flat) {
  Circuit c = proto;  // each run starts from the same implementation point
  OptConfig cfg;
  cfg.t_max_ps = t_max_ps;
  cfg.max_iterations_factor = spec.max_iterations_factor;
  cfg.flat_engine = flat;
  cfg.num_threads = 1;

  const auto start = std::chrono::steady_clock::now();
  const OptResult result =
      StatisticalOptimizer(setup.lib, setup.var, cfg).run(c);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  Entry e;
  e.circuit = spec.name;
  e.engine = flat ? "flat" : "scalar";
  e.num_cells = c.num_cells();
  e.seconds = elapsed.count();
  e.iterations = result.iterations;
  e.commits =
      result.sizing_commits + result.hvt_commits + result.downsize_commits;
  e.moves_per_second =
      e.seconds > 0.0 ? static_cast<double>(e.iterations) / e.seconds : 0.0;
  std::cerr << "  " << e.circuit << " / " << e.engine << ": " << e.seconds
            << " s, " << e.iterations << " iterations ("
            << e.moves_per_second << " moves/s), objective "
            << result.final_objective << "\n";
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace statleak;
  bench::Setup setup;

  std::vector<CircuitSpec> specs;
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    const bool scaling = !name.empty() && name[0] == 's';
    specs.push_back({name, scaling, scaling ? 0.002 : 24.0, scaling ? 1 : 3});
  }
  if (specs.empty()) {
    specs = {{"c880p", false, 24.0, 3},
             {"c7552p", false, 24.0, 3},
             {"s10k", true, 0.01, 1},
             {"s30k", true, 0.004, 1},
             {"s100k", true, 0.002, 1},
             {"s200k", true, 0.002, 1}};
  }

  std::vector<Entry> entries;
  for (const CircuitSpec& spec : specs) {
    const Circuit proto =
        spec.scaling ? scaling_circuit(spec.name) : iscas85_proxy(spec.name);
    // ISCAS proxies target 1.40x the min-achievable delay: the relaxed-
    // constraint operating point where the paper's dual-Vth assignment does
    // its real work (thousands of HVT swaps across the slack distribution)
    // rather than fighting an infeasibility wall; tighter factors spend the
    // run in rejected moves, looser ones saturate to all-HVT in a few
    // sweeps. The scaling members use a plain-STA target instead:
    // min_achievable_delay_ps runs the deterministic sizer to exhaustion,
    // which is O(gates^2 * size steps) and takes tens of minutes at 10^5
    // gates — setup cost that would dwarf the measurement. A target
    // slightly under the default-implementation critical delay exercises
    // the same sizing + assignment schedule; the flat/scalar ratio is
    // target-independent because both engines walk the identical
    // trajectory.
    const double t_max =
        spec.scaling
            ? 0.92 * StaEngine(proto, setup.lib).critical_delay_ps()
            : 1.40 * min_achievable_delay_ps(proto, setup.lib);
    std::cerr << spec.name << " (" << proto.num_cells() << " cells, t_max "
              << t_max << " ps):\n";

    Entry flat, scalar;
    for (int rep = 0; rep < spec.reps; ++rep) {
      const Entry f = run_one(proto, setup, spec, t_max, /*flat=*/true);
      const Entry s = run_one(proto, setup, spec, t_max, /*flat=*/false);
      STATLEAK_CHECK(f.iterations == s.iterations && f.commits == s.commits,
                     "flat and scalar trajectories diverged — benchmark "
                     "comparison would be meaningless");
      if (rep == 0 || f.seconds < flat.seconds) flat = f;
      if (rep == 0 || s.seconds < scalar.seconds) scalar = s;
    }
    entries.push_back(flat);
    entries.push_back(scalar);
  }

  // Machine output: a single JSON document on stdout.
  std::printf("{\n");
  std::printf("  \"bench\": \"opt_throughput\",\n");
#ifdef NDEBUG
  std::printf("  \"build_type\": \"release\",\n");
#else
  std::printf("  \"build_type\": \"debug\",\n");
#endif
  std::printf("  \"threads\": 1,\n");
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"circuit\": \"%s\", \"engine\": \"%s\", "
                "\"num_cells\": %zu, \"seconds\": %.17g, "
                "\"iterations\": %d, \"commits\": %d, "
                "\"moves_per_second\": %.17g}%s\n",
                e.circuit.c_str(), e.engine.c_str(), e.num_cells, e.seconds,
                e.iterations, e.commits, e.moves_per_second,
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
