/// \file bench_ext_power.cpp
/// \brief E2 — extension experiment: leakage share of total power.
///
/// The motivation table of every leakage paper: dynamic power (CV^2f at
/// estimated activities) against the statistical leakage distribution,
/// across technology nodes and before/after statistical optimization —
/// including the share on a worst-case (p99-leakage) die, where the tail
/// makes leakage a first-order problem.

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "opt/statistical.hpp"
#include "power/activity.hpp"
#include "power/power.hpp"
#include "report/flow.hpp"
#include "tech/process.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("E2",
                      "leakage share of total power (f = 200 MHz, 500 random "
                      "vectors for activity)");

  const double f_mhz = 200.0;  // modest clock: the 2004-era leakage-share regime
  Table table({"circuit", "node", "impl", "dyn [uW]", "leak mean [uW]",
               "leak p99 [uW]", "leak share %", "share on p99 die %"});

  for (const std::string name : {"c432p", "c880p"}) {
    for (const bool newer_node : {false, true}) {
      const ProcessNode node = newer_node ? generic_70nm() : generic_100nm();
      const CellLibrary lib(node);
      const VariationModel var = VariationModel::typical_100nm();

      for (const bool optimized : {false, true}) {
        Circuit c = iscas85_proxy(name);
        if (optimized) {
          OptConfig cfg;
          cfg.t_max_ps = 1.15 * min_achievable_delay_ps(c, lib);
          cfg.yield_target = 0.99;
          (void)StatisticalOptimizer(lib, var, cfg).run(c);
        }
        const auto activity = estimate_activity(c, 500, 21);
        const PowerBreakdown pb =
            power_breakdown(c, lib, var, activity, f_mhz);

        table.begin_row();
        table.add(name);
        table.add(node.name);
        table.add(optimized ? "stat-opt" : "min-size LVT");
        table.add(pb.dynamic_nw / 1000.0, 2);
        table.add(pb.leakage_mean_nw / 1000.0, 2);
        table.add(pb.leakage_p99_nw / 1000.0, 2);
        table.add(100.0 * pb.leakage_share(), 1);
        table.add(100.0 * pb.leakage_share_p99(), 1);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check: the leakage share grows at the newer node "
               "and on tail dies; statistical optimization claws most of it "
               "back for a small dynamic-power cost (upsizing).\n";
  return 0;
}
