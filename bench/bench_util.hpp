/// \file bench_util.hpp
/// \brief Shared scaffolding for the experiment-regeneration binaries.
///
/// Every bench binary prints a header naming the experiment it reproduces
/// ([reconstructed] — see DESIGN.md for the provenance note) followed by an
/// aligned table whose rows are pasteable into EXPERIMENTS.md.

#pragma once

#include <iostream>
#include <string>

#include "cells/library.hpp"
#include "tech/process.hpp"
#include "tech/variation.hpp"

namespace statleak::bench {

/// The default experimental setup shared by every experiment: generic
/// 100 nm dual-Vth node with the typical variation model.
struct Setup {
  ProcessNode node = generic_100nm();
  CellLibrary lib{node};
  VariationModel var = VariationModel::typical_100nm();
};

inline void print_header(const std::string& experiment_id,
                         const std::string& description) {
  std::cout << "\n=== " << experiment_id << " [reconstructed] — "
            << description << " ===\n"
            << "    (Srivastava/Sylvester/Blaauw, DAC 2004 reproduction; "
               "generic-100nm node)\n\n";
}

}  // namespace statleak::bench
