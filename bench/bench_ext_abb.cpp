/// \file bench_ext_abb.cpp
/// \brief E3 — extension experiment: adaptive body bias (ABB) as
///        post-silicon compensation, after the paper's reference cluster
///        (Keshavarzi ISLPED'99/'01, Tschanz JSSC'02).
///
/// Each simulated die picks one bias from a discrete ladder: minimum
/// leakage subject to its measured delay meeting T, or maximum forward bias
/// if nothing does. Reported against the uncompensated population (same
/// parameter draws): timing yield, combined frequency+power yield (cap =
/// 3x the typical-die leakage), and the leakage distribution among
/// timing-feasible dies. Also shown: ABB stacked on top of the statistical
/// design-time optimization — design-time and post-silicon techniques
/// compose.

#include <iostream>

#include "abb/abb.hpp"
#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "sta/sta.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("E3",
                      "adaptive body bias: per-die compensation vs the "
                      "uncompensated population (ladder -0.5..+0.5 V, "
                      "k_body 0.15 V/V, 2000 dies)");

  BodyBiasConfig abb;
  McConfig mc;
  mc.num_samples = 2000;
  mc.seed = 404;

  Table table({"circuit", "impl", "T [ps]", "timing yield",
               "timing yield+ABB", "combined yield", "combined+ABB",
               "RBB dies %", "FBB dies %"});

  for (const std::string name : {"c432p", "c880p", "c1908p"}) {
    for (const bool optimized : {false, true}) {
      Circuit c = iscas85_proxy(name);
      double t_max = 0.0;
      if (optimized) {
        t_max = 1.15 * min_achievable_delay_ps(c, setup.lib);
        OptConfig cfg;
        cfg.t_max_ps = t_max;
        cfg.yield_target = 0.95;
        (void)StatisticalOptimizer(setup.lib, setup.var, cfg).run(c);
      } else {
        // Min-size all-LVT: target its own nominal delay (typical die just
        // meets it — the classic binning regime).
        t_max = 1.02 * StaEngine(c, setup.lib).critical_delay_ps();
      }

      const AbbResult res =
          run_abb_experiment(c, setup.lib, setup.var, abb, mc, t_max);
      const double cap = 3.0 * res.baseline.leakage_summary().p50;

      table.begin_row();
      table.add(name);
      table.add(optimized ? "stat-opt" : "min-size LVT");
      table.add(t_max, 0);
      table.add(res.baseline.timing_yield(t_max), 3);
      table.add(res.compensated.timing_yield(t_max), 3);
      table.add(res.baseline.combined_yield(t_max, cap), 3);
      table.add(res.compensated.combined_yield(t_max, cap), 3);
      table.add(100.0 * res.reverse_fraction(), 1);
      table.add(100.0 * res.forward_fraction(), 1);
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check: ABB lifts both yields substantially on the "
               "uncompensated implementation (slow dies rescued by FBB, "
               "leaky dies choked by RBB) and still adds margin on top of "
               "the statistically optimized one.\n";
  return 0;
}
