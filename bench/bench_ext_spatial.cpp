/// \file bench_ext_spatial.cpp
/// \brief E1 — extension experiment: grid-based spatial intra-die
///        correlation (the paper's named follow-on direction).
///
/// Same marginal variation, different correlation structure: part of each
/// gate's intra-die (dL, dVth) is shared within a placement grid region.
/// Two questions, each answered against a spatial Monte-Carlo reference:
///   1. How wrong is the flat (independent-intra) analysis on spatially
///      correlated silicon? (It underestimates both delay and leakage
///      spread.)
///   2. Does the vector-canonical spatial SSTA / region-aware Wilkinson sum
///      recover the reference?

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "leakage/leakage.hpp"
#include "spatial/spatial_analysis.hpp"
#include "spatial/spatial_ssta.hpp"
#include "ssta/ssta.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("E1",
                      "spatial intra-die correlation: flat vs spatial "
                      "analysis vs spatial MC (grid 4x4, 50 % of L-intra and "
                      "25 % of Vth-intra variance region-shared)");

  SpatialVariationModel model;
  model.base = setup.var;
  model.grid = 4;
  model.region_fraction_l = 0.5;
  model.region_fraction_v = 0.25;

  Table delay({"circuit", "MC sigma(D) [ps]", "flat sigma [ps]",
               "spatial sigma [ps]", "flat err%", "spatial err%"});
  Table leak({"circuit", "MC p99(L) [uA]", "flat p99 [uA]",
              "spatial p99 [uA]", "flat err%", "spatial err%"});

  for (const std::string name : {"c432p", "c880p", "c1908p", "c3540p"}) {
    const Circuit c = iscas85_proxy(name);
    const auto placement = make_topological_placement(c, 11);

    McConfig mc;
    mc.num_samples = 4000;
    mc.seed = 99;
    const McResult res =
        run_monte_carlo_spatial(c, setup.lib, model, placement, mc);
    const SampleSummary sd = res.delay_summary();
    const double mc_p99 = quantile(res.leakage_na, 0.99);

    const double flat_sigma =
        SstaEngine(c, setup.lib, model.base).circuit_delay().sigma();
    const double spatial_sigma =
        SpatialSstaEngine(c, setup.lib, model, placement)
            .circuit_delay()
            .sigma();
    delay.begin_row();
    delay.add(name);
    delay.add(sd.stddev, 1);
    delay.add(flat_sigma, 1);
    delay.add(spatial_sigma, 1);
    delay.add(100.0 * (flat_sigma - sd.stddev) / sd.stddev, 1);
    delay.add(100.0 * (spatial_sigma - sd.stddev) / sd.stddev, 1);

    const double flat_p99 =
        LeakageAnalyzer(c, setup.lib, model.base).quantile_na(0.99);
    const double spatial_p99 =
        spatial_leakage_distribution(c, setup.lib, model, placement)
            .quantile_na(0.99);
    leak.begin_row();
    leak.add(name);
    leak.add(mc_p99 / 1000.0, 2);
    leak.add(flat_p99 / 1000.0, 2);
    leak.add(spatial_p99 / 1000.0, 2);
    leak.add(100.0 * (flat_p99 - mc_p99) / mc_p99, 1);
    leak.add(100.0 * (spatial_p99 - mc_p99) / mc_p99, 1);
  }

  std::cout << "delay spread:\n";
  delay.print(std::cout);
  std::cout << "\nleakage tail:\n";
  leak.print(std::cout);
  std::cout << "\nshape check: the flat engine underestimates both spreads "
               "on spatially correlated silicon; the spatial engines track "
               "MC within a few percent.\n";
  return 0;
}
