/// \file bench_fig3_yield_sweep.cpp
/// \brief F3 — leakage vs timing-yield target (paper figure class: the cost
///        of yield).
///
/// Sweeps eta over {0.84, 0.90, 0.95, 0.99, 0.999} on two mid proxies.
/// Expected shape: the statistical flow's leakage percentile rises with the
/// yield target (tighter eta leaves fewer gates swappable/downsizable); the
/// fixed 3-sigma deterministic baseline is eta-oblivious, so its leakage is
/// flat and the saving shrinks as eta approaches the guard-band's implied
/// yield.

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "report/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("F3",
                      "stat leakage vs yield target eta (T = 1.15 x Dmin; "
                      "det@3sigma reference)");

  const std::vector<double> etas = {0.84, 0.90, 0.95, 0.99, 0.999};
  for (const std::string name : {"c499p", "c880p"}) {
    std::cout << "--- " << name << " ---\n";
    Table table({"eta", "stat p99 [uA]", "stat yield", "det p99 [uA]",
                 "saving %", "stat HVT %"});
    for (double eta : etas) {
      Circuit c = iscas85_proxy(name);
      FlowConfig cfg;
      cfg.t_max_factor = 1.15;
      cfg.yield_target = eta;
      cfg.det_corner_k = 3.0;
      const FlowOutcome out = run_flow(c, setup.lib, setup.var, cfg);
      table.begin_row();
      table.add(eta, 3);
      table.add(out.stat_metrics.leakage_p99_na / 1000.0, 2);
      table.add(out.stat_metrics.timing_yield, 4);
      table.add(out.det_metrics.leakage_p99_na / 1000.0, 2);
      table.add(100.0 * out.p99_saving(), 1);
      table.add(100.0 * out.stat_metrics.hvt_fraction, 1);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "shape check: stat p99 is non-decreasing in eta; saving vs "
               "the eta-oblivious corner baseline shrinks as eta rises.\n";
  return 0;
}
