/// \file bench_ext_mlv.cpp
/// \brief E4 — extension experiment: minimum-leakage standby vectors.
///
/// Standby leakage is state-dependent (series stacks suppress off-current
/// ~10x per extra off device). For each proxy: the spread of vector
/// leakage over random inputs, the best vector found by the
/// random + greedy-descent heuristic, and the interaction with the
/// statistical optimization (MLV savings on the optimized implementation).

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "mlv/mlv.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("E4",
                      "minimum-leakage standby vectors (128 random probes + "
                      "greedy bit-flip descent)");

  Table table({"circuit", "impl", "mean [uA]", "worst [uA]", "MLV [uA]",
               "saving vs mean %", "evals"});
  for (const std::string name : {"c432p", "c880p", "c1908p", "c3540p"}) {
    for (const bool optimized : {false, true}) {
      Circuit c = iscas85_proxy(name);
      if (optimized) {
        OptConfig cfg;
        cfg.t_max_ps = 1.15 * min_achievable_delay_ps(c, setup.lib);
        cfg.yield_target = 0.99;
        (void)StatisticalOptimizer(setup.lib, setup.var, cfg).run(c);
      }
      MlvConfig mlv;
      mlv.random_trials = 128;
      mlv.greedy_passes = 4;
      mlv.seed = 2024;
      const MlvResult res = find_min_leakage_vector(c, setup.lib, mlv);

      table.begin_row();
      table.add(name);
      table.add(optimized ? "stat-opt" : "min-size LVT");
      table.add(res.mean_leakage_na / 1000.0, 2);
      table.add(res.worst_leakage_na / 1000.0, 2);
      table.add(res.best_leakage_na / 1000.0, 2);
      table.add(100.0 * res.saving_vs_mean(), 1);
      table.add_int(res.evaluations);
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check: vector choice is worth a 5-20 % standby "
               "saving on top of whichever implementation the design-time "
               "flow produced — the two techniques compose.\n";
  return 0;
}
