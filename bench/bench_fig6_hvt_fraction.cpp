/// \file bench_fig6_hvt_fraction.cpp
/// \brief F6 — fraction of gates assigned to high Vth vs delay-constraint
///        tightness, deterministic vs statistical (paper figure class).
///
/// Expected shape: HVT fraction rises with looser T for both flows and
/// saturates near 100 %; at tight T the statistical flow places more gates
/// at HVT than the 3-sigma corner flow because per-path statistical slack
/// exceeds uniformly guard-banded slack.

#include <iostream>

#include "bench_util.hpp"
#include "gen/proxy.hpp"
#include "opt/deterministic.hpp"
#include "opt/statistical.hpp"
#include "report/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace statleak;
  bench::Setup setup;
  bench::print_header("F6",
                      "HVT fraction vs T/Dmin (det@3sigma vs stat, eta = "
                      "0.99)");

  for (const std::string name : {"c432p", "c880p"}) {
    std::cout << "--- " << name << " ---\n";
    Circuit base = iscas85_proxy(name);
    const double d_min = min_achievable_delay_ps(base, setup.lib);

    Table table({"T/Dmin", "det HVT %", "stat HVT %", "det sizing moves",
                 "stat sizing moves"});
    for (double f : {1.05, 1.10, 1.15, 1.25, 1.40, 1.70, 2.20}) {
      OptConfig cfg;
      cfg.t_max_ps = f * d_min;
      cfg.yield_target = 0.99;

      Circuit det = base;
      OptConfig det_cfg = cfg;
      det_cfg.corner_k_sigma = 3.0;
      const OptResult dr =
          DeterministicOptimizer(setup.lib, setup.var, det_cfg).run(det);

      Circuit stat = base;
      const OptResult sr =
          StatisticalOptimizer(setup.lib, setup.var, cfg).run(stat);

      table.begin_row();
      table.add(f, 2);
      table.add(100.0 * static_cast<double>(det.count_hvt()) /
                    static_cast<double>(det.num_cells()),
                1);
      table.add(100.0 * static_cast<double>(stat.count_hvt()) /
                    static_cast<double>(stat.num_cells()),
                1);
      table.add_int(dr.sizing_commits);
      table.add_int(sr.sizing_commits);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "shape check: monotone HVT growth, saturation near 100 % at "
               "loose T; stat >= det at tight T.\n";
  return 0;
}
