/// \file surface.hpp
/// \brief Standalone JSON emission of a sweep's yield/leakage surface.
///
/// The v2 run report (obs/report.hpp) carries the sweep's scalar gauges;
/// this artifact is the full surface — one record per grid cell with its
/// resolved corner and population statistics — in a shape plotting scripts
/// consume directly (the CI sweep smoke job uploads it). Statistics only:
/// per-sample populations stay in --dump-samples files.

#pragma once

#include <string>

#include "mc/sweep.hpp"
#include "obs/json.hpp"

namespace statleak {

inline constexpr int kSurfaceSchemaVersion = 1;

/// Builds the surface document for one evaluated sweep.
obs::Json sweep_surface_json(const std::string& circuit_name,
                             const SweepGrid& grid, const SweepResult& sweep);

/// Writes sweep_surface_json() to `path` (pretty-printed); throws
/// statleak::Error on I/O failure.
void write_sweep_surface(const std::string& path,
                         const std::string& circuit_name,
                         const SweepGrid& grid, const SweepResult& sweep);

}  // namespace statleak
