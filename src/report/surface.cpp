#include "report/surface.hpp"

#include <fstream>
#include <utility>

#include "util/error.hpp"

namespace statleak {

namespace {

obs::Json number_array(const std::vector<double>& values) {
  obs::Json arr = obs::Json::array();
  for (const double v : values) arr.push_back(obs::Json(v));
  return arr;
}

obs::Json string_array(const std::vector<std::string>& values) {
  obs::Json arr = obs::Json::array();
  for (const std::string& v : values) arr.push_back(obs::Json(v));
  return arr;
}

}  // namespace

obs::Json sweep_surface_json(const std::string& circuit_name,
                             const SweepGrid& grid, const SweepResult& sweep) {
  obs::Json grid_json = obs::Json::object();
  grid_json.set("nodes", string_array(grid.nodes));
  grid_json.set("temperatures_k", number_array(grid.temperatures_k));
  grid_json.set("vdds_v", number_array(grid.vdds_v));
  grid_json.set("sigma_scales", number_array(grid.sigma_scales));

  obs::Json cells = obs::Json::array();
  for (const SweepCellResult& cell : sweep.cells) {
    obs::Json c = obs::Json::object();
    c.set("label", obs::Json(cell.corner.label()));
    c.set("node", obs::Json(cell.corner.node));
    c.set("temperature_k", obs::Json(cell.corner.temperature_k));
    c.set("vdd_v", obs::Json(cell.corner.vdd_v));
    c.set("sigma_scale", obs::Json(cell.corner.sigma_scale));
    c.set("t_max_ps", obs::Json(cell.t_max_ps));
    c.set("completed", obs::Json(cell.result.completed));
    c.set("samples",
          obs::Json(static_cast<double>(cell.result.delay_ps.size())));
    if (!cell.result.delay_ps.empty()) {
      c.set("delay_mean_ps", obs::Json(cell.result.delay_summary().mean));
      c.set("delay_p99_ps", obs::Json(cell.result.delay_quantile_ps(0.99)));
      c.set("leakage_mean_na", obs::Json(cell.result.leakage_summary().mean));
      c.set("leakage_p99_na",
            obs::Json(cell.result.leakage_quantile_na(0.99)));
      c.set("timing_yield", obs::Json(cell.result.timing_yield(cell.t_max_ps)));
    }
    cells.push_back(std::move(c));
  }

  obs::Json doc = obs::Json::object();
  doc.set("surface_version", obs::Json(kSurfaceSchemaVersion));
  doc.set("tool", obs::Json(std::string("statleak")));
  doc.set("circuit", obs::Json(circuit_name));
  doc.set("grid", std::move(grid_json));
  doc.set("cells_requested",
          obs::Json(static_cast<double>(sweep.cells_requested)));
  doc.set("completed", obs::Json(sweep.completed));
  doc.set("cells", std::move(cells));
  return doc;
}

void write_sweep_surface(const std::string& path,
                         const std::string& circuit_name,
                         const SweepGrid& grid, const SweepResult& sweep) {
  std::ofstream out(path);
  STATLEAK_CHECK(out.good(), "cannot open surface file '" + path + "'");
  out << sweep_surface_json(circuit_name, grid, sweep).dump(2);
  STATLEAK_CHECK(out.good(), "failed writing surface file '" + path + "'");
}

}  // namespace statleak
