#include "report/flow.hpp"

#include <chrono>

#include "mc/monte_carlo.hpp"
#include "opt/deterministic.hpp"
#include "opt/statistical.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace statleak {

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

McCheck run_mc_check(const Circuit& circuit, const CellLibrary& lib,
                     const VariationModel& var, double t_max_ps,
                     const FlowConfig& config, std::uint64_t seed,
                     std::int64_t deadline_ms, obs::Registry* obs) {
  obs::ScopedTimer timer(obs, "flow.mc_check");
  McConfig mc;
  mc.num_samples = config.mc_samples;
  mc.batch_size = config.mc_batch_size;
  mc.seed = seed;
  mc.num_threads = config.num_threads;
  mc.deadline_ms = deadline_ms;
  const McResult res = run_monte_carlo(circuit, lib, var, mc, obs);
  McCheck check;
  check.completed = res.completed;
  if (!res.delay_ps.empty()) {
    check.timing_yield = res.timing_yield(t_max_ps);
    check.leakage_mean_na = res.leakage_summary().mean;
    check.leakage_p99_na = res.leakage_quantile_na(0.99);
  }
  return check;
}

}  // namespace

double FlowOutcome::p99_saving() const {
  if (det_metrics.leakage_p99_na <= 0.0) return 0.0;
  return (det_metrics.leakage_p99_na - stat_metrics.leakage_p99_na) /
         det_metrics.leakage_p99_na;
}

double FlowOutcome::mean_saving() const {
  if (det_metrics.leakage_mean_na <= 0.0) return 0.0;
  return (det_metrics.leakage_mean_na - stat_metrics.leakage_mean_na) /
         det_metrics.leakage_mean_na;
}

double min_achievable_delay_ps(const Circuit& circuit,
                               const CellLibrary& lib) {
  // Run the deterministic sizer against an unreachable target: phase 1 then
  // upsizes until no move helps, i.e. to the minimum-delay sizing. Work on a
  // copy so the caller's implementation is untouched.
  Circuit scratch = circuit;
  OptConfig cfg;
  cfg.t_max_ps = 1e-3;  // unreachable: forces full upsizing
  // Named: the optimizer keeps a reference, so a temporary would dangle.
  const VariationModel no_var = VariationModel::none();
  DeterministicOptimizer sizer(lib, no_var, cfg);
  (void)sizer.run(scratch);
  return StaEngine(scratch, lib).critical_delay_ps();
}

FlowOutcome run_flow(Circuit& circuit, const CellLibrary& lib,
                     const VariationModel& var, const FlowConfig& config,
                     obs::Registry* obs) {
  STATLEAK_CHECK(config.t_max_factor > 1.0,
                 "t_max factor must exceed 1 (D_min is the floor)");
  FlowOutcome out;
  out.circuit_name = circuit.name();

  // One wall-clock budget for the whole flow: each phase is handed whatever
  // remains (floored at 1 ms so an already-expired budget still produces a
  // clean stop at the phase's first boundary instead of skipping it UB-ish).
  const auto flow_start = std::chrono::steady_clock::now();
  const auto remaining_ms = [&]() -> std::int64_t {
    if (config.deadline_ms <= 0) return 0;  // unarmed
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - flow_start)
            .count();
    return std::max<std::int64_t>(1, config.deadline_ms - elapsed);
  };

  {
    obs::ScopedTimer timer(obs, "flow.d_min");
    out.d_min_ps = min_achievable_delay_ps(circuit, lib);
  }
  out.t_max_ps = config.t_max_factor * out.d_min_ps;

  OptConfig base;
  base.t_max_ps = out.t_max_ps;
  base.yield_target = config.yield_target;
  base.leakage_percentile = config.leakage_percentile;
  base.num_threads = config.num_threads;
  // Scoring-engine knobs (statistical phase only; the deterministic sizer
  // ignores them). Trajectory-invariant — see OptConfig.
  base.flat_engine = config.opt_flat_engine;
  base.candidate_block = config.opt_candidate_block;

  // --- deterministic baseline -------------------------------------------
  {
    obs::ScopedTimer timer(obs, "flow.det");
    const auto start = std::chrono::steady_clock::now();
    Circuit det = circuit;
    if (config.det_auto_corner) {
      for (double k : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
        OptConfig cfg = base;
        cfg.corner_k_sigma = k;
        cfg.deadline_ms = remaining_ms();
        det = circuit;
        out.det_result = DeterministicOptimizer(lib, var, cfg).run(det, obs);
        out.det_corner_k = k;
        out.det_metrics = measure_metrics(det, lib, var, out.t_max_ps);
        if (out.det_metrics.timing_yield >= config.yield_target) break;
      }
    } else {
      OptConfig cfg = base;
      cfg.corner_k_sigma = config.det_corner_k;
      cfg.deadline_ms = remaining_ms();
      out.det_result = DeterministicOptimizer(lib, var, cfg).run(det, obs);
      out.det_corner_k = config.det_corner_k;
      out.det_metrics = measure_metrics(det, lib, var, out.t_max_ps);
    }
    out.det_runtime_s = seconds_since(start);
    timer.stop();
    if (config.mc_samples > 0) {
      out.has_mc = true;
      out.det_mc = run_mc_check(det, lib, var, out.t_max_ps, config,
                                config.seed, remaining_ms(), obs);
    }
  }

  // --- statistical optimizer ---------------------------------------------
  {
    obs::ScopedTimer timer(obs, "flow.stat");
    const auto start = std::chrono::steady_clock::now();
    OptConfig stat_cfg = base;
    stat_cfg.deadline_ms = remaining_ms();
    stat_cfg.checkpoint_path = config.opt_checkpoint_path;
    stat_cfg.checkpoint_every = config.opt_checkpoint_every;
    out.stat_result = StatisticalOptimizer(lib, var, stat_cfg).run(circuit, obs);
    out.stat_runtime_s = seconds_since(start);
    out.stat_metrics = measure_metrics(circuit, lib, var, out.t_max_ps);
    timer.stop();
    if (config.mc_samples > 0) {
      out.has_mc = true;
      out.stat_mc = run_mc_check(circuit, lib, var, out.t_max_ps, config,
                                 config.seed + 1, remaining_ms(), obs);
    }
  }

  out.completed = out.det_result.completed && out.stat_result.completed &&
                  (!out.has_mc ||
                   (out.det_mc.completed && out.stat_mc.completed));

  if (obs != nullptr) {
    obs->set_gauge("flow.d_min_ps", out.d_min_ps);
    obs->set_gauge("flow.t_max_ps", out.t_max_ps);
    obs->set_gauge("flow.det_corner_k", out.det_corner_k);
    obs->set_gauge("flow.det_runtime_s", out.det_runtime_s);
    obs->set_gauge("flow.stat_runtime_s", out.stat_runtime_s);
    obs->set_gauge("flow.det_leakage_p99_na", out.det_metrics.leakage_p99_na);
    obs->set_gauge("flow.stat_leakage_p99_na",
                   out.stat_metrics.leakage_p99_na);
    obs->set_gauge("flow.det_timing_yield", out.det_metrics.timing_yield);
    obs->set_gauge("flow.stat_timing_yield", out.stat_metrics.timing_yield);
    obs->set_gauge("flow.p99_saving", out.p99_saving());
    obs->set_gauge("flow.mean_saving", out.mean_saving());
  }
  return out;
}

}  // namespace statleak
