/// \file flow.hpp
/// \brief The shared experiment flow used by every bench binary.
///
/// One experiment row = one circuit pushed through both optimizers at the
/// same delay target and measured identically:
///
///   1. D_min: minimum achievable nominal delay (unconstrained greedy
///      upsizing), so delay targets can be expressed as T = factor * D_min
///      exactly as variation-aware sizing papers do.
///   2. Deterministic baseline: corner-based dual-Vth + sizing. Optionally
///      the corner is auto-selected as the smallest guard-band whose
///      solution actually meets the timing-yield target (the honest
///      iso-yield baseline).
///   3. Statistical optimizer at the same T and yield target.
///   4. Metrics for both implementations (SSTA yield, Wilkinson leakage
///      percentiles), optionally cross-checked by Monte Carlo.

#pragma once

#include <cstdint>
#include <string>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "opt/config.hpp"
#include "opt/metrics.hpp"
#include "tech/variation.hpp"

namespace statleak {

struct FlowConfig {
  double t_max_factor = 1.15;       ///< T = factor * D_min
  double yield_target = 0.99;       ///< eta
  double leakage_percentile = 0.99; ///< optimizer objective percentile
  /// Fixed deterministic guard-band corner; ignored when auto_corner is on.
  double det_corner_k = 0.0;
  /// Search k in {0, 1, 2, 3} for the smallest corner whose deterministic
  /// solution meets eta (measured by SSTA).
  bool det_auto_corner = false;
  int mc_samples = 0;  ///< 0 = skip Monte-Carlo cross-check
  std::uint64_t mc_seed = 7;
};

struct McCheck {
  double timing_yield = 0.0;
  double leakage_mean_na = 0.0;
  double leakage_p99_na = 0.0;
};

struct FlowOutcome {
  std::string circuit_name;
  double d_min_ps = 0.0;
  double t_max_ps = 0.0;
  double det_corner_k = 0.0;  ///< corner actually used by the baseline

  OptResult det_result;
  OptResult stat_result;
  CircuitMetrics det_metrics;
  CircuitMetrics stat_metrics;
  double det_runtime_s = 0.0;
  double stat_runtime_s = 0.0;

  bool has_mc = false;
  McCheck det_mc;
  McCheck stat_mc;

  /// Relative saving of the statistical flow on the objective percentile:
  /// (det_p99 - stat_p99) / det_p99.
  double p99_saving() const;
  /// Relative saving on mean leakage.
  double mean_saving() const;
};

/// Minimum achievable nominal delay: unconstrained greedy upsizing.
double min_achievable_delay_ps(const Circuit& circuit, const CellLibrary& lib);

/// Runs the full det-vs-stat flow on one circuit. The circuit's
/// implementation attributes are scratch space; on return it holds the
/// statistical solution.
FlowOutcome run_flow(Circuit& circuit, const CellLibrary& lib,
                     const VariationModel& var, const FlowConfig& config);

}  // namespace statleak
