/// \file flow.hpp
/// \brief The shared experiment flow used by every bench binary.
///
/// One experiment row = one circuit pushed through both optimizers at the
/// same delay target and measured identically:
///
///   1. D_min: minimum achievable nominal delay (unconstrained greedy
///      upsizing), so delay targets can be expressed as T = factor * D_min
///      exactly as variation-aware sizing papers do.
///   2. Deterministic baseline: corner-based dual-Vth + sizing. Optionally
///      the corner is auto-selected as the smallest guard-band whose
///      solution actually meets the timing-yield target (the honest
///      iso-yield baseline).
///   3. Statistical optimizer at the same T and yield target.
///   4. Metrics for both implementations (SSTA yield, Wilkinson leakage
///      percentiles), optionally cross-checked by Monte Carlo.

#pragma once

#include <cstdint>
#include <string>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "opt/config.hpp"
#include "opt/metrics.hpp"
#include "tech/variation.hpp"
#include "util/exec.hpp"

namespace statleak {

/// Execution knobs come from ExecConfig: `seed` drives the Monte-Carlo
/// cross-check draws (default 7, the historical flow seed) and
/// `num_threads` is plumbed into both optimizers and the MC loops.
struct FlowConfig : ExecConfig {
  FlowConfig() { seed = 7; }

  double t_max_factor = 1.15;       ///< T = factor * D_min
  double yield_target = 0.99;       ///< eta
  double leakage_percentile = 0.99; ///< optimizer objective percentile
  /// Fixed deterministic guard-band corner; ignored when auto_corner is on.
  double det_corner_k = 0.0;
  /// Search k in {0, 1, 2, 3} for the smallest corner whose deterministic
  /// solution meets eta (measured by SSTA).
  bool det_auto_corner = false;
  int mc_samples = 0;  ///< 0 = skip Monte-Carlo cross-check
  /// Kernel block size of the batched MC cross-check (0 = auto; results
  /// are bit-identical either way — see McConfig::batch_size).
  int mc_batch_size = 0;
  /// Statistical-optimizer scoring engine (OptConfig::flat_engine) and
  /// candidate block size (OptConfig::candidate_block). Performance knobs
  /// only: the optimization trajectory is bit-identical either way.
  bool opt_flat_engine = true;
  int opt_candidate_block = 0;
  /// Durable journal for the statistical phase (OptConfig::checkpoint_path):
  /// a flow whose budget expires mid-statistical-optimization resumes it
  /// bit-identically on the next invocation. Empty = no journaling. The
  /// deterministic baseline is corner-cheap and is not journaled.
  std::string opt_checkpoint_path;
  /// Snapshot cadence of the statistical phase's journal, in committed
  /// moves (OptConfig::checkpoint_every).
  int opt_checkpoint_every = 256;
};

struct McCheck {
  double timing_yield = 0.0;
  double leakage_mean_na = 0.0;
  double leakage_p99_na = 0.0;
  bool completed = true;  ///< false when the flow deadline cut the MC short
};

struct FlowOutcome {
  std::string circuit_name;
  /// False when ExecConfig::deadline_ms expired somewhere in the flow: the
  /// budget is shared across phases (each phase receives the remaining
  /// time), every phase stops cleanly, and whatever was measured is kept.
  bool completed = true;
  double d_min_ps = 0.0;
  double t_max_ps = 0.0;
  double det_corner_k = 0.0;  ///< corner actually used by the baseline

  OptResult det_result;
  OptResult stat_result;
  CircuitMetrics det_metrics;
  CircuitMetrics stat_metrics;
  double det_runtime_s = 0.0;
  double stat_runtime_s = 0.0;

  bool has_mc = false;
  McCheck det_mc;
  McCheck stat_mc;

  /// Relative saving of the statistical flow on the objective percentile:
  /// (det_p99 - stat_p99) / det_p99.
  double p99_saving() const;
  /// Relative saving on mean leakage.
  double mean_saving() const;
};

/// Minimum achievable nominal delay: unconstrained greedy upsizing.
double min_achievable_delay_ps(const Circuit& circuit, const CellLibrary& lib);

/// Runs the full det-vs-stat flow on one circuit. The circuit's
/// implementation attributes are scratch space; on return it holds the
/// statistical solution.
///
/// With an observability registry attached, the flow records its own phase
/// wall times ("flow.d_min" / "flow.det" / "flow.stat" / "flow.mc_check"),
/// headline gauges ("flow.*"), and passes the registry down into both
/// optimizers and the MC cross-checks (their "det.*" / "stat.*" / "mc.*"
/// entries accumulate into the same report). Results are bit-identical
/// with and without a registry.
FlowOutcome run_flow(Circuit& circuit, const CellLibrary& lib,
                     const VariationModel& var, const FlowConfig& config,
                     obs::Registry* obs = nullptr);

}  // namespace statleak
