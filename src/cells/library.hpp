/// \file library.hpp
/// \brief The dual-Vth standard-cell library: delay, capacitance, leakage and
///        area of every (kind, Vth, size) point, synthesized from the tech
///        device models.
///
/// Delay follows the logical-effort form
///
///   d(kind, vth, x, Cload) = p(kind) * tau(vth) +
///                            k_delay * Vdd * Cload / Id_unit(vth, x)
///
/// where tau(vth) is the technology time constant of that threshold class and
/// x is the continuous cell size (drive strength, >= 1). Input pin cap is
/// g(kind) * x * Cin_unit. Leakage is the state-averaged stack-aware
/// off-current of the cell's stage decomposition (topology.hpp), linear in x.
///
/// Under variation the library exposes both the exact nonlinear evaluation
/// (alpha-power drive with perturbed Vth/L — used by the Monte-Carlo golden
/// model) and the first-order sensitivities consumed by SSTA.

#pragma once

#include <array>
#include <span>
#include <vector>

#include "cells/cell_kind.hpp"
#include "tech/device.hpp"
#include "tech/process.hpp"

namespace statleak {

/// Immutable once constructed; shared by reference across analyses.
class CellLibrary {
 public:
  /// Builds the library for a node with the default geometric size grid
  /// X1..X16 (ratio ~1.32).
  explicit CellLibrary(const ProcessNode& node);

  /// Builds with a custom discrete size grid (ascending, all >= min size).
  CellLibrary(const ProcessNode& node, std::vector<double> size_steps);

  const ProcessNode& node() const { return node_; }

  /// Discrete sizes the optimizers may assign (ascending).
  std::span<const double> size_steps() const { return size_steps_; }

  /// Input capacitance [fF] presented by one input pin of a cell.
  double pin_cap_ff(CellKind kind, double size) const;

  /// Wire capacitance [fF] of a net with the given fanout count.
  double wire_cap_ff(int fanout) const;

  /// Technology time constant tau [ps] of a threshold class.
  double tau_ps(Vth vth) const;

  /// Nominal arc delay [ps] of a cell driving `load_ff`.
  double delay_ps(CellKind kind, Vth vth, double size, double load_ff) const;

  /// Exact (nonlinear) arc delay [ps] under parameter deviations — the
  /// Monte-Carlo golden model.
  double delay_ps(CellKind kind, Vth vth, double size, double load_ff,
                  double dl_nm, double dvth_v) const;

  /// Nominal state-averaged leakage current [nA] of a cell.
  double leakage_na(CellKind kind, Vth vth, double size) const;

  /// Leakage [nA] under parameter deviations:
  /// nominal * exp(-cL*dL - cV*dVth + q*dL^2).
  double leakage_na(CellKind kind, Vth vth, double size, double dl_nm,
                    double dvth_v) const;

  /// Leakage power [nW] = I * Vdd.
  double leakage_power_nw(CellKind kind, Vth vth, double size) const;

  /// Decomposed nominal-delay terms for batched move pricing:
  ///
  ///   delay_ps(kind, vth, size, load_ff)
  ///     == intrinsic_ps + drive_num * load_ff / (idrive_unit_ua * size)
  ///
  /// *bit-identically* — each field is the exact subexpression delay_ps()
  /// evaluates (drive_num is the left-associated 1000 * k_delay * vdd
  /// product), so a candidate-batched scorer completing the formula in SoA
  /// loops reproduces the scalar pricing path bit for bit.
  struct DelayTerms {
    double intrinsic_ps = 0.0;    ///< cell parasitic * tau
    double drive_num = 0.0;       ///< 1000 * k_delay * vdd
    double idrive_unit_ua = 0.0;  ///< per-unit-size drive current
  };
  DelayTerms delay_terms(CellKind kind, Vth vth) const;

  /// Per-unit-size state-averaged leakage [nA]: leakage_na(kind, vth, size)
  /// == leak_unit_na(kind, vth) * size, bit-identically.
  double leak_unit_na(CellKind kind, Vth vth) const;

  /// First-order variation sensitivities of the given threshold class.
  const DeviceSensitivities& sensitivities(Vth vth) const;

  /// Cell area proxy [um of device width].
  double area_um(CellKind kind, double size) const;

  /// Index of the size step nearest to `size` in the discrete grid.
  std::size_t nearest_step(double size) const;

 private:
  void precompute();
  static std::vector<double> default_size_steps();

  ProcessNode node_;
  std::vector<double> size_steps_;
  double cin_unit_ff_ = 0.0;  ///< input cap of the unit inverter
  std::array<double, 2> idrive_unit_ua_{};  ///< per Vth class
  std::array<double, 2> tau_ps_{};
  std::array<DeviceSensitivities, 2> sens_{};
  /// leak_unit_[kind][vth]: state-averaged leakage [nA] at size 1.
  std::array<std::array<double, 2>, kNumCellKinds> leak_unit_{};
};

}  // namespace statleak
