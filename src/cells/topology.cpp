#include "cells/topology.hpp"

#include "util/error.hpp"

namespace statleak {

namespace {

// Stage decompositions. Composite cells: AND = NAND + output inverter,
// OR = NOR + inverter, XOR/XNOR = two 2-series branches per network plus
// input inverters (approximated as two NAND2-like stages and a half-size
// inverter), AOI21/OAI21 = complex stage approximated as NAND2 + half
// inverter, MUX2 = two transmission branches + inverter, approximated as
// two NAND2-like stages at 60% scale plus a half-size select inverter.
const std::vector<StageSpec> kSpecs[kNumCellKinds] = {
    /* kInput */ {},
    /* kInv   */ {{1, true, 1.0}},
    /* kBuf   */ {{1, true, 0.5}, {1, true, 1.0}},
    /* kNand2 */ {{2, true, 1.0}},
    /* kNand3 */ {{3, true, 1.0}},
    /* kNand4 */ {{4, true, 1.0}},
    /* kNor2  */ {{2, false, 1.0}},
    /* kNor3  */ {{3, false, 1.0}},
    /* kNor4  */ {{4, false, 1.0}},
    /* kAnd2  */ {{2, true, 1.0}, {1, true, 1.0}},
    /* kAnd3  */ {{3, true, 1.0}, {1, true, 1.0}},
    /* kOr2   */ {{2, false, 1.0}, {1, true, 1.0}},
    /* kOr3   */ {{3, false, 1.0}, {1, true, 1.0}},
    /* kXor2  */ {{2, true, 1.0}, {2, true, 1.0}, {1, true, 0.5}},
    /* kXnor2 */ {{2, true, 1.0}, {2, true, 1.0}, {1, true, 0.5}},
    /* kAoi21 */ {{2, true, 1.0}, {1, true, 0.5}},
    /* kOai21 */ {{2, false, 1.0}, {1, true, 0.5}},
    /* kMux2  */ {{2, true, 0.6}, {2, true, 0.6}, {1, true, 0.5}},
};

}  // namespace

std::span<const StageSpec> stage_spec(CellKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  STATLEAK_CHECK(idx < kNumCellKinds, "invalid cell kind");
  return kSpecs[idx];
}

double stack_factor(int off_count) {
  STATLEAK_CHECK(off_count >= 1, "stack factor needs >= 1 off device");
  switch (off_count) {
    case 1:
      return 1.0;
    case 2:
      return 0.10;
    case 3:
      return 0.04;
    default:
      return 0.02;  // saturates for 4+ series off devices
  }
}

}  // namespace statleak
