#include "cells/cell_kind.hpp"

#include "util/error.hpp"

namespace statleak {

namespace {

// Logical effort values follow Sutherland/Sproull/Harris; parasitics are in
// units of the inverter parasitic. Composite cells carry an equivalent
// single-stage (g, p) calibrated to their decomposition. width_factor is the
// total transistor width (area / junction-cap proxy) relative to an inverter
// of equal drive, computed for a P/N ratio near 2 and rounded.
constexpr CellKindInfo kInfos[kNumCellKinds] = {
    /* kInput */ {"INPUT", 0, 0.0, 0.0, 0.0},
    /* kInv   */ {"NOT", 1, 1.00, 1.0, 1.00},
    /* kBuf   */ {"BUFF", 1, 1.00, 2.0, 1.50},
    /* kNand2 */ {"NAND2", 2, 4.0 / 3.0, 2.0, 2.07},
    /* kNand3 */ {"NAND3", 3, 5.0 / 3.0, 3.0, 3.21},
    /* kNand4 */ {"NAND4", 4, 2.00, 4.0, 4.43},
    /* kNor2  */ {"NOR2", 2, 5.0 / 3.0, 2.0, 2.64},
    /* kNor3  */ {"NOR3", 3, 7.0 / 3.0, 3.0, 4.93},
    /* kNor4  */ {"NOR4", 4, 3.00, 4.0, 7.86},
    /* kAnd2  */ {"AND2", 2, 1.50, 3.2, 2.57},
    /* kAnd3  */ {"AND3", 3, 1.80, 4.2, 3.71},
    /* kOr2   */ {"OR2", 2, 1.80, 3.2, 3.14},
    /* kOr3   */ {"OR3", 3, 2.40, 4.4, 5.43},
    /* kXor2  */ {"XOR2", 2, 4.00, 4.0, 4.14},
    /* kXnor2 */ {"XNOR2", 2, 4.00, 4.0, 4.14},
    /* kAoi21 */ {"AOI21", 3, 2.00, 3.0, 3.00},
    /* kOai21 */ {"OAI21", 3, 2.00, 3.0, 3.00},
    /* kMux2  */ {"MUX2", 3, 2.00, 3.5, 3.57},
};

}  // namespace

const CellKindInfo& cell_info(CellKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  STATLEAK_CHECK(idx < kNumCellKinds, "invalid cell kind");
  return kInfos[idx];
}

std::string_view to_string(CellKind kind) { return cell_info(kind).name; }

std::array<CellKind, kNumCellKinds - 1> all_cell_kinds() {
  std::array<CellKind, kNumCellKinds - 1> kinds{};
  for (std::size_t i = 1; i < kNumCellKinds; ++i) {
    kinds[i - 1] = static_cast<CellKind>(i);
  }
  return kinds;
}

bool is_inverting(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNand4:
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kNor4:
    case CellKind::kXnor2:
    case CellKind::kAoi21:
    case CellKind::kOai21:
      return true;
    default:
      return false;
  }
}

bool evaluate(CellKind kind, std::uint32_t bits) {
  const auto bit = [bits](int i) { return ((bits >> i) & 1u) != 0; };
  switch (kind) {
    case CellKind::kInput:
      STATLEAK_CHECK(false, "cannot evaluate a primary-input pseudo-cell");
    case CellKind::kInv:
      return !bit(0);
    case CellKind::kBuf:
      return bit(0);
    case CellKind::kNand2:
      return !(bit(0) && bit(1));
    case CellKind::kNand3:
      return !(bit(0) && bit(1) && bit(2));
    case CellKind::kNand4:
      return !(bit(0) && bit(1) && bit(2) && bit(3));
    case CellKind::kNor2:
      return !(bit(0) || bit(1));
    case CellKind::kNor3:
      return !(bit(0) || bit(1) || bit(2));
    case CellKind::kNor4:
      return !(bit(0) || bit(1) || bit(2) || bit(3));
    case CellKind::kAnd2:
      return bit(0) && bit(1);
    case CellKind::kAnd3:
      return bit(0) && bit(1) && bit(2);
    case CellKind::kOr2:
      return bit(0) || bit(1);
    case CellKind::kOr3:
      return bit(0) || bit(1) || bit(2);
    case CellKind::kXor2:
      return bit(0) != bit(1);
    case CellKind::kXnor2:
      return bit(0) == bit(1);
    case CellKind::kAoi21:
      // out = !((a & b) | c)
      return !((bit(0) && bit(1)) || bit(2));
    case CellKind::kOai21:
      // out = !((a | b) & c)
      return !((bit(0) || bit(1)) && bit(2));
    case CellKind::kMux2:
      // pins (a, b, sel): out = sel ? b : a
      return bit(2) ? bit(1) : bit(0);
  }
  STATLEAK_CHECK(false, "invalid cell kind");
}

}  // namespace statleak
