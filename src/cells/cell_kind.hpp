/// \file cell_kind.hpp
/// \brief Combinational standard-cell kinds and their static properties.
///
/// The library covers the cell set ISCAS85-class netlists map onto. Each kind
/// carries a logical-effort characterization (g, p) for delay and a
/// stage-composition spec for leakage (see topology.hpp). Composite cells
/// (AND2, XOR2, MUX2, ...) are modeled as a single equivalent stage for
/// delay — an approximation that is documented and calibrated into (g, p).

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace statleak {

/// Cell kinds. kInput is a pseudo-kind for primary-input drivers (zero delay,
/// zero leakage); netlists use it for PI nodes so the gate graph is uniform.
enum class CellKind : std::uint8_t {
  kInput,
  kInv,
  kBuf,
  kNand2,
  kNand3,
  kNand4,
  kNor2,
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kOr2,
  kOr3,
  kXor2,
  kXnor2,
  kAoi21,
  kOai21,
  kMux2,
};

/// Number of distinct cell kinds (for iteration / array sizing).
inline constexpr std::size_t kNumCellKinds = 18;

/// Static per-kind properties.
struct CellKindInfo {
  std::string_view name;   ///< display / .bench name
  int fanin;               ///< number of input pins
  double logical_effort;   ///< g: input cap per unit drive, relative to INV
  double parasitic;        ///< p: intrinsic delay in tau units
  double width_factor;     ///< total device width relative to an inverter of
                           ///< equal drive (area & junction-cap proxy)
};

/// Properties of the given kind.
const CellKindInfo& cell_info(CellKind kind);

/// Display name ("NAND2" etc.).
std::string_view to_string(CellKind kind);

/// All real (non-pseudo) kinds, in enum order.
std::array<CellKind, kNumCellKinds - 1> all_cell_kinds();

/// True for kinds whose output is the logical complement of a monotone
/// function (used by the functional simulator in tests).
bool is_inverting(CellKind kind);

/// Evaluates the boolean function of the cell on the given input bits.
/// `inputs` must contain exactly cell_info(kind).fanin bits (LSB = pin 0).
/// For kMux2, pin order is (a, b, sel): out = sel ? b : a.
bool evaluate(CellKind kind, std::uint32_t input_bits);

}  // namespace statleak
