#include "cells/library.hpp"

#include <algorithm>
#include <cmath>

#include "cells/topology.hpp"
#include "util/error.hpp"

namespace statleak {

namespace {

constexpr std::size_t index_of(Vth vth) {
  return vth == Vth::kLow ? 0 : 1;
}

double binomial(int n, int k) {
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

}  // namespace

CellLibrary::CellLibrary(const ProcessNode& node)
    : CellLibrary(node, default_size_steps()) {}

CellLibrary::CellLibrary(const ProcessNode& node,
                         std::vector<double> size_steps)
    : node_(node), size_steps_(std::move(size_steps)) {
  node_.validate();
  STATLEAK_CHECK(!size_steps_.empty(), "size grid must be non-empty");
  STATLEAK_CHECK(std::is_sorted(size_steps_.begin(), size_steps_.end()),
                 "size grid must be ascending");
  STATLEAK_CHECK(size_steps_.front() > 0.0, "sizes must be positive");
  precompute();
}

std::vector<double> CellLibrary::default_size_steps() {
  // Geometric grid X1..X16, ratio 16^(1/10) ~ 1.32 — the granularity of a
  // typical standard-cell drive ladder.
  std::vector<double> steps;
  const double ratio = std::pow(16.0, 0.1);
  double s = 1.0;
  for (int i = 0; i <= 10; ++i) {
    steps.push_back(s);
    s *= ratio;
  }
  steps.back() = 16.0;  // kill accumulated rounding
  return steps;
}

void CellLibrary::precompute() {
  const double wn = node_.wn_unit_um;
  const double wp = node_.pn_ratio * wn;
  cin_unit_ff_ = gate_cap_ff(node_, wn + wp);

  for (Vth vth : {Vth::kLow, Vth::kHigh}) {
    const std::size_t v = index_of(vth);
    idrive_unit_ua_[v] = drive_current_ua(node_, vth, wn);
    tau_ps_[v] =
        1000.0 * node_.k_delay * node_.vdd * cin_unit_ff_ / idrive_unit_ua_[v];
    sens_[v] = device_sensitivities(node_, vth);

    for (std::size_t k = 0; k < kNumCellKinds; ++k) {
      const auto kind = static_cast<CellKind>(k);
      double leak = 0.0;
      for (const StageSpec& stage : stage_spec(kind)) {
        const int m = stage.fanin;
        const double states = std::pow(2.0, m);
        // Widths of the stage's devices for a size-1 cell: series devices
        // are m-times wider to preserve drive.
        const double w_series =
            static_cast<double>(m) * stage.scale * (stage.nand_like ? wn : wp);
        const double w_parallel = stage.scale * (stage.nand_like ? wp : wn);
        double stage_leak = 0.0;
        for (int off = 0; off <= m; ++off) {
          const double prob = binomial(m, off) / states;
          if (off == 0) {
            // Stack conducting, parallel network fully off at full Vds.
            stage_leak += prob * static_cast<double>(m) *
                          subthreshold_current_na(node_, vth, w_parallel);
          } else {
            stage_leak += prob * stack_factor(off) *
                          subthreshold_current_na(node_, vth, w_series);
          }
        }
        leak += stage_leak;
      }
      leak_unit_[k][v] = leak;
    }
  }
}

double CellLibrary::pin_cap_ff(CellKind kind, double size) const {
  STATLEAK_CHECK(size > 0.0, "cell size must be positive");
  return cell_info(kind).logical_effort * size * cin_unit_ff_;
}

double CellLibrary::wire_cap_ff(int fanout) const {
  STATLEAK_CHECK(fanout >= 0, "fanout must be non-negative");
  if (fanout == 0) return 0.0;
  return node_.cw_fixed_ff + node_.cw_per_fanout_ff * fanout;
}

double CellLibrary::tau_ps(Vth vth) const { return tau_ps_[index_of(vth)]; }

double CellLibrary::delay_ps(CellKind kind, Vth vth, double size,
                             double load_ff) const {
  STATLEAK_CHECK(size > 0.0, "cell size must be positive");
  STATLEAK_CHECK(load_ff >= 0.0, "load must be non-negative");
  const std::size_t v = index_of(vth);
  const double intrinsic = cell_info(kind).parasitic * tau_ps_[v];
  const double drive = 1000.0 * node_.k_delay * node_.vdd * load_ff /
                       (idrive_unit_ua_[v] * size);
  return intrinsic + drive;
}

double CellLibrary::delay_ps(CellKind kind, Vth vth, double size,
                             double load_ff, double dl_nm,
                             double dvth_v) const {
  STATLEAK_CHECK(size > 0.0, "cell size must be positive");
  const double wn = node_.wn_unit_um * size;
  const double id = drive_current_ua(node_, vth, wn, dl_nm, dvth_v);
  const double id_unit = id / size;
  const double intrinsic =
      cell_info(kind).parasitic * 1000.0 * node_.k_delay * node_.vdd *
      cin_unit_ff_ / id_unit;
  const double drive = 1000.0 * node_.k_delay * node_.vdd * load_ff / id;
  return intrinsic + drive;
}

CellLibrary::DelayTerms CellLibrary::delay_terms(CellKind kind,
                                                 Vth vth) const {
  const std::size_t v = index_of(vth);
  DelayTerms t;
  t.intrinsic_ps = cell_info(kind).parasitic * tau_ps_[v];
  t.drive_num = 1000.0 * node_.k_delay * node_.vdd;
  t.idrive_unit_ua = idrive_unit_ua_[v];
  return t;
}

double CellLibrary::leak_unit_na(CellKind kind, Vth vth) const {
  return leak_unit_[static_cast<std::size_t>(kind)][index_of(vth)];
}

double CellLibrary::leakage_na(CellKind kind, Vth vth, double size) const {
  STATLEAK_CHECK(size > 0.0, "cell size must be positive");
  return leak_unit_[static_cast<std::size_t>(kind)][index_of(vth)] * size;
}

double CellLibrary::leakage_na(CellKind kind, Vth vth, double size,
                               double dl_nm, double dvth_v) const {
  const auto& s = sens_[index_of(vth)];
  const double exponent = -s.leak_cl_per_nm * dl_nm -
                          s.leak_cv_per_v * dvth_v +
                          s.leak_q_per_nm2 * dl_nm * dl_nm;
  return leakage_na(kind, vth, size) * std::exp(exponent);
}

double CellLibrary::leakage_power_nw(CellKind kind, Vth vth,
                                     double size) const {
  return leakage_na(kind, vth, size) * node_.vdd;
}

const DeviceSensitivities& CellLibrary::sensitivities(Vth vth) const {
  return sens_[index_of(vth)];
}

double CellLibrary::area_um(CellKind kind, double size) const {
  const double unit_width = node_.wn_unit_um * (1.0 + node_.pn_ratio);
  return cell_info(kind).width_factor * size * unit_width;
}

std::size_t CellLibrary::nearest_step(double size) const {
  const auto it =
      std::lower_bound(size_steps_.begin(), size_steps_.end(), size);
  if (it == size_steps_.begin()) return 0;
  if (it == size_steps_.end()) return size_steps_.size() - 1;
  const auto hi = static_cast<std::size_t>(it - size_steps_.begin());
  const std::size_t lo = hi - 1;
  return (size - size_steps_[lo] <= size_steps_[hi] - size) ? lo : hi;
}

}  // namespace statleak
