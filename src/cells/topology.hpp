/// \file topology.hpp
/// \brief Stage-composition specs used to synthesize per-cell leakage.
///
/// Leakage is state-dependent: an m-input NAND leaks through its parallel
/// pMOS network when the output is low, and through its (stack-suppressed)
/// series nMOS network when the output is high. We model every cell as a
/// composition of NAND-like and NOR-like primitive stages and average the
/// off-current over all equiprobable input states of each stage:
///
///   NAND-like stage, m inputs, k of them low (output high when k >= 1):
///     leak = Isub(m * size * Wn) * stack_factor(k)            [nMOS path]
///   k == 0 (output low): leak = m * Isub(size * Wp)           [pMOS path]
///
///   NOR-like is the exact dual.
///
/// Series stacks of j off devices are suppressed by the classic stack
/// factors (~10x per additional off device, saturating).

#pragma once

#include <span>
#include <vector>

#include "cells/cell_kind.hpp"

namespace statleak {

/// One primitive stage of a cell's leakage decomposition.
struct StageSpec {
  int fanin = 1;          ///< stage inputs (1 == inverter)
  bool nand_like = true;  ///< series-nMOS (NAND) vs series-pMOS (NOR)
  double scale = 1.0;     ///< stage device sizing relative to cell size
};

/// The stage decomposition of a cell kind. kInput returns an empty span.
std::span<const StageSpec> stage_spec(CellKind kind);

/// Leakage suppression of a series stack with `off_count` off devices
/// (off_count >= 1). stack_factor(1) == 1; deeper stacks leak less.
double stack_factor(int off_count);

}  // namespace statleak
