#include "opt/checkpoint.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace statleak {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

std::uint64_t f64_bits(double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

constexpr std::size_t kMovePayloadBytes = 24;
constexpr std::size_t kCompletePayloadBytes = 32;

}  // namespace

std::uint64_t opt_checkpoint_hash(const Circuit& circuit,
                                  const CellLibrary& lib,
                                  const VariationModel& var,
                                  const OptConfig& config) {
  std::uint64_t h = 0x534C4F50u;  // "SLOP"
  const auto mix = [&h](std::uint64_t x) { h = mix64(h ^ x); };
  const auto mix_f64 = [&mix](double x) { mix(f64_bits(x)); };

  // Constraint/objective configuration: anything that steers the greedy
  // search. Engine/threads/candidate-block/incremental/deadline/cadence are
  // trajectory-invariant and deliberately NOT mixed.
  mix(config.seed);
  mix_f64(config.t_max_ps);
  mix_f64(config.yield_target);
  mix_f64(config.leakage_percentile);
  mix_f64(config.max_iterations_factor);
  mix(static_cast<std::uint64_t>(config.assignment_rounds));

  // Circuit topology. The implementation point (vth/size) is NOT mixed:
  // the optimizer resets it on entry, so it never shapes the trajectory.
  mix(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    mix(static_cast<std::uint64_t>(g.kind));
    mix(g.fanins.size());
    for (GateId f : g.fanins) mix(f);
    mix(circuit.is_output(id) ? 1 : 0);
  }

  // The cell library: the discrete size grid plus every physical constant
  // of the node (both pin every delay/leakage figure the scans price).
  mix(lib.size_steps().size());
  for (double s : lib.size_steps()) mix_f64(s);
  const ProcessNode& node = lib.node();
  mix_f64(node.vdd);
  mix_f64(node.leff_nm);
  mix_f64(node.temperature_k);
  mix_f64(node.vth_low);
  mix_f64(node.vth_high);
  mix_f64(node.subthreshold_slope);
  mix_f64(node.i0_na_per_um);
  mix_f64(node.vth_rolloff_v_per_nm);
  mix_f64(node.leak_quadratic_per_nm2);
  mix_f64(node.alpha);
  mix_f64(node.k_drive_ua_per_um);
  mix_f64(node.k_delay);
  mix_f64(node.cg_ff_per_um);
  mix_f64(node.cj_ff_per_um);
  mix_f64(node.cw_fixed_ff);
  mix_f64(node.cw_per_fanout_ff);
  mix_f64(node.wn_unit_um);
  mix_f64(node.pn_ratio);

  mix_f64(var.sigma_l_inter_nm);
  mix_f64(var.sigma_l_intra_nm);
  mix_f64(var.sigma_vth_inter_v);
  mix_f64(var.sigma_vth_intra_v);
  mix(var.pelgrom_vth_scaling ? 1 : 0);
  mix_f64(var.pelgrom_ref_width_um);
  return h;
}

struct OptJournal::MoveRecord {
  OptPhase phase = OptPhase::kSizing;
  OptMoveKind kind = OptMoveKind::kNone;
  bool accepted = false;
  std::uint32_t iteration = 0;
  std::uint32_t gate = kInvalidGate;
  std::uint32_t step = 0;
  double new_size = 0.0;
};

OptJournal::OptJournal(std::string path, std::uint64_t config_hash,
                       const Circuit& circuit, int checkpoint_every)
    : path_(std::move(path)), checkpoint_every_(checkpoint_every) {
  STATLEAK_CHECK(checkpoint_every_ >= 1,
                 "optimizer checkpoint cadence must be >= 1");
  const std::uint64_t meta = circuit.num_gates();
  if (journal_exists(path_)) {
    JournalContents contents =
        load_journal(path_, opt_checkpoint_format(), config_hash, meta);
    records_ = std::move(contents.records);
    resumed_ = !records_.empty();
    writer_ =
        JournalWriter::resume(path_, opt_checkpoint_format(), config_hash,
                              meta);
  } else {
    writer_ =
        JournalWriter::create(path_, opt_checkpoint_format(), config_hash,
                              meta);
  }
}

OptJournal::~OptJournal() = default;

bool OptJournal::replaying() const { return next_ < records_.size(); }

void OptJournal::diverge(const std::string& why) const {
  throw CheckpointError("checkpoint '" + path_ + "': replay divergence at record " +
                        std::to_string(next_) + ": " + why +
                        " — the journal was not produced by this run "
                        "configuration; delete it or point --checkpoint "
                        "elsewhere");
}

OptJournal::MoveRecord OptJournal::decode_move(
    const JournalRecord& rec) const {
  if (rec.payload.size() != kMovePayloadBytes) {
    throw CheckpointError("checkpoint '" + path_ +
                          "': malformed move record at byte " +
                          std::to_string(rec.offset));
  }
  const std::uint8_t* p = rec.payload.data();
  MoveRecord m;
  m.phase = static_cast<OptPhase>(p[0]);
  m.kind = static_cast<OptMoveKind>(p[1]);
  m.accepted = p[2] != 0;
  m.iteration = get<std::uint32_t>(p + 4);
  m.gate = get<std::uint32_t>(p + 8);
  m.step = get<std::uint32_t>(p + 12);
  m.new_size = get<double>(p + 16);
  if (p[0] > 2 || p[1] > 5) {
    throw CheckpointError("checkpoint '" + path_ +
                          "': malformed move record at byte " +
                          std::to_string(rec.offset) +
                          " (unknown phase or move kind)");
  }
  return m;
}

void OptJournal::verify_snapshot(const JournalRecord& rec,
                                 const Circuit& circuit) const {
  const std::size_t n = circuit.num_gates();
  if (rec.payload.size() != 8 + n * (1 + sizeof(double)) ||
      get<std::uint64_t>(rec.payload.data()) != n) {
    throw CheckpointError("checkpoint '" + path_ +
                          "': malformed snapshot record at byte " +
                          std::to_string(rec.offset));
  }
  const std::uint8_t* vths = rec.payload.data() + 8;
  const std::uint8_t* sizes = vths + n;
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(id);
    const bool vth_ok = vths[id] == static_cast<std::uint8_t>(g.vth);
    const bool size_ok =
        get<std::uint64_t>(sizes + id * sizeof(double)) == f64_bits(g.size);
    if (!vth_ok || !size_ok) {
      diverge("implementation snapshot mismatch at gate " +
              std::to_string(id));
    }
  }
}

void OptJournal::consume_snapshots(const Circuit& circuit) {
  while (replaying() && records_[next_].kind == kOptSnapshotRecord) {
    verify_snapshot(records_[next_], circuit);
    ++next_;
  }
}

bool OptJournal::replay_scan(OptPhase phase, int iteration,
                             OptScanOutcome& out) {
  STATLEAK_ASSERT(!pending_, "unconfirmed replayed scan outcome");
  if (!replaying()) return false;
  const JournalRecord& rec = records_[next_];
  if (rec.kind != kOptMoveRecord) {
    diverge("expected a move record at a scan site, found kind " +
            std::to_string(rec.kind));
  }
  const MoveRecord m = decode_move(rec);
  if (m.phase != phase ||
      m.iteration != static_cast<std::uint32_t>(iteration)) {
    diverge("scan site is phase " +
            std::to_string(static_cast<int>(phase)) + " iteration " +
            std::to_string(iteration) + ", record says phase " +
            std::to_string(static_cast<int>(m.phase)) + " iteration " +
            std::to_string(m.iteration));
  }
  out.kind = m.kind;
  out.gate = m.gate;
  out.step = m.step;
  out.new_size = m.new_size;
  pending_ = true;
  return true;
}

void OptJournal::record_decision(OptPhase phase, int iteration,
                                 OptMoveKind kind, GateId gate,
                                 std::uint32_t step, double new_size,
                                 bool accepted, const Circuit& circuit) {
  if (pending_) {
    const MoveRecord m = decode_move(records_[next_]);
    if (m.kind != kind || m.gate != gate || m.step != step ||
        f64_bits(m.new_size) != f64_bits(new_size)) {
      diverge("replayed move does not match the re-executed decision");
    }
    if (m.accepted != accepted) {
      diverge("re-executed accept verdict (" +
              std::string(accepted ? "accepted" : "rejected") +
              ") contradicts the journal");
    }
    pending_ = false;
    ++next_;
    ++moves_replayed_;
    consume_snapshots(circuit);
  } else {
    append_move(phase, iteration, kind, gate, step, new_size, accepted);
    if (accepted && (++commits_ % checkpoint_every_) == 0) {
      append_snapshot(circuit);
    }
    return;
  }
  if (accepted) ++commits_;
}

void OptJournal::record_no_candidate(OptPhase phase, int iteration,
                                     const Circuit& circuit) {
  record_decision(phase, iteration, OptMoveKind::kNone, kInvalidGate, 0, 0.0,
                  /*accepted=*/false, circuit);
}

void OptJournal::record_complete(const OptResult& result,
                                 const Circuit& circuit) {
  STATLEAK_ASSERT(!pending_, "unconfirmed replayed scan outcome");
  if (replaying()) {
    consume_snapshots(circuit);
  }
  if (replaying()) {
    const JournalRecord& rec = records_[next_];
    if (rec.kind != kOptCompleteRecord) {
      diverge("schedule completed but the journal holds more decisions");
    }
    if (rec.payload.size() != kCompletePayloadBytes) {
      throw CheckpointError("checkpoint '" + path_ +
                            "': malformed completion record at byte " +
                            std::to_string(rec.offset));
    }
    const std::uint8_t* p = rec.payload.data();
    const bool match =
        get<std::int32_t>(p) == result.iterations &&
        get<std::int32_t>(p + 4) == result.sizing_commits &&
        get<std::int32_t>(p + 8) == result.hvt_commits &&
        get<std::int32_t>(p + 12) == result.downsize_commits &&
        get<std::int32_t>(p + 16) == result.rejected_moves &&
        (p[20] != 0) == result.feasible &&
        get<std::uint64_t>(p + 24) == f64_bits(result.final_objective);
    if (!match) diverge("completion summary mismatch");
    ++next_;
    if (replaying()) diverge("records remain after the completion record");
    return;
  }
  // Live completion: one last snapshot, then the terminal record. A resumed
  // run of a completed journal replays everything and appends nothing.
  append_snapshot(circuit);
  std::vector<std::uint8_t> payload;
  payload.reserve(kCompletePayloadBytes);
  put<std::int32_t>(payload, result.iterations);
  put<std::int32_t>(payload, result.sizing_commits);
  put<std::int32_t>(payload, result.hvt_commits);
  put<std::int32_t>(payload, result.downsize_commits);
  put<std::int32_t>(payload, result.rejected_moves);
  put<std::uint8_t>(payload, result.feasible ? 1 : 0);
  put<std::uint8_t>(payload, 0);
  put<std::uint8_t>(payload, 0);
  put<std::uint8_t>(payload, 0);
  put<double>(payload, result.final_objective);
  writer_->append(kOptCompleteRecord, payload.data(), payload.size());
}

void OptJournal::append_move(OptPhase phase, int iteration, OptMoveKind kind,
                             GateId gate, std::uint32_t step, double new_size,
                             bool accepted) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kMovePayloadBytes);
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(phase));
  put<std::uint8_t>(payload, static_cast<std::uint8_t>(kind));
  put<std::uint8_t>(payload, accepted ? 1 : 0);
  put<std::uint8_t>(payload, 0);
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(iteration));
  put<std::uint32_t>(payload, gate);
  put<std::uint32_t>(payload, step);
  put<double>(payload, new_size);
  writer_->append(kOptMoveRecord, payload.data(), payload.size());
}

void OptJournal::append_snapshot(const Circuit& circuit) {
  const std::size_t n = circuit.num_gates();
  std::vector<std::uint8_t> payload;
  payload.reserve(8 + n * (1 + sizeof(double)));
  put<std::uint64_t>(payload, n);
  for (GateId id = 0; id < n; ++id) {
    put<std::uint8_t>(payload,
                      static_cast<std::uint8_t>(circuit.gate(id).vth));
  }
  for (GateId id = 0; id < n; ++id) {
    put<double>(payload, circuit.gate(id).size);
  }
  writer_->append(kOptSnapshotRecord, payload.data(), payload.size());
  ++snapshots_appended_;
}

std::int64_t OptJournal::records_appended() const {
  return static_cast<std::int64_t>(writer_->records_appended());
}

bool OptJournal::healthy() const { return writer_->healthy(); }

}  // namespace statleak
