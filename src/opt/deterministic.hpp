/// \file deterministic.hpp
/// \brief Baseline: deterministic dual-Vth assignment + sizing.
///
/// The flow the DAC'04 paper compares against — leakage optimization at a
/// single process corner (nominal, or a k-sigma guard-banded corner):
///
///   Phase 1 (sizing up):  TILOS-style greedy upsizing until the corner
///     delay meets t_max. Candidates are negative-slack gates; the score is
///     path-delay reduction per unit of added leakage.
///   Phase 2 (assignment): greedy Vth swaps and downsizing. Each move slows
///     only the moved gate, so a move is safe iff its own delay increase
///     fits inside the gate's corner slack; the best
///     leakage-saving-per-slack-consumed move is committed until none fits.
///
/// Everything here is evaluated at the chosen corner. What happens to this
/// solution *under the real process distribution* — the yield loss and
/// leakage tail the statistical optimizer avoids — is exactly experiment T3.

#pragma once

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "opt/config.hpp"
#include "tech/variation.hpp"

namespace statleak {

class DeterministicOptimizer {
 public:
  /// `var` is consulted only when config.corner_k_sigma > 0 (guard-band).
  DeterministicOptimizer(const CellLibrary& lib, const VariationModel& var,
                         OptConfig config);

  /// Optimizes the implementation attributes (size, Vth) of `circuit`
  /// in place, starting from the all-LVT minimum-size point.
  ///
  /// With an observability registry attached the run records phase wall
  /// times ("det.sizing" / "det.assign"), commit/rejection counters under
  /// "det.*", and one "det" trace event per loop iteration (exactly
  /// OptResult::iterations events; the yield field stays 0 — a corner flow
  /// has no yield model). Results are bit-identical with and without a
  /// registry attached.
  OptResult run(Circuit& circuit, obs::Registry* obs = nullptr) const;

  const OptConfig& config() const { return config_; }

 private:
  const CellLibrary& lib_;
  const VariationModel& var_;
  OptConfig config_;
};

}  // namespace statleak
