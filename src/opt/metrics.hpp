/// \file metrics.hpp
/// \brief Post-optimization measurement of a circuit implementation.
///
/// Every experiment reports the same snapshot regardless of which optimizer
/// produced the implementation: nominal/corner delay, SSTA timing yield at
/// the target, and the analytic leakage distribution. Monte-Carlo
/// counterparts are produced separately by mc/monte_carlo.hpp where an
/// experiment calls for them.

#pragma once

#include <cstddef>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "tech/variation.hpp"

namespace statleak {

struct CircuitMetrics {
  double nominal_delay_ps = 0.0;
  double corner3_delay_ps = 0.0;   ///< all-gates 3-sigma-slow corner delay
  double ssta_delay_mean_ps = 0.0;
  double ssta_delay_sigma_ps = 0.0;
  double timing_yield = 0.0;       ///< P(delay <= t_max) from SSTA

  double leakage_nominal_na = 0.0;  ///< all parameters at nominal
  double leakage_mean_na = 0.0;     ///< E[total leakage] under variation
  double leakage_sigma_na = 0.0;
  double leakage_p95_na = 0.0;
  double leakage_p99_na = 0.0;

  std::size_t hvt_count = 0;
  std::size_t cell_count = 0;
  double hvt_fraction = 0.0;
  double area_um = 0.0;  ///< total device width
};

/// Measures the current implementation of `circuit` against `t_max_ps`.
CircuitMetrics measure_metrics(const Circuit& circuit, const CellLibrary& lib,
                               const VariationModel& var, double t_max_ps);

/// Resets every cell to low Vth at the library's minimum size — the common
/// starting point of both optimizers.
void reset_implementation(Circuit& circuit, const CellLibrary& lib);

}  // namespace statleak
