/// \file config.hpp
/// \brief Configuration and result types shared by both optimizers.

#pragma once

#include <cstddef>
#include <string>

#include "util/exec.hpp"

namespace statleak {

/// Common optimizer knobs. Execution knobs (`num_threads`, `seed`) come
/// from ExecConfig; both optimizers are deterministic greedy searches, so
/// `seed` is currently unused and `num_threads` never changes the result
/// (see the field's own comment below).
struct OptConfig : ExecConfig {
  /// Circuit delay target [ps].
  double t_max_ps = 0.0;

  /// Timing-yield target eta for the statistical optimizer:
  /// P(delay <= t_max) >= eta.
  double yield_target = 0.99;

  /// Percentile of the total-leakage distribution the statistical optimizer
  /// minimizes (0.99 in the paper's headline experiments). Set to 0.5 to
  /// optimize the median instead.
  double leakage_percentile = 0.99;

  /// Deterministic optimizer's guard-band: all gates evaluated at this
  /// k-sigma slow process excursion. 0 = nominal-corner optimization.
  double corner_k_sigma = 0.0;

  /// Safety margin [ps] subtracted from slack in deterministic accept tests
  /// (guards the strictly-greedy loop against load-coupling second-order
  /// effects).
  double slack_margin_ps = 0.1;

  /// Hard iteration cap as a multiple of the cell count.
  double max_iterations_factor = 24.0;

  /// Rounds of the assignment phase; locked moves are retried once per
  /// round because downsizing can free up timing room elsewhere.
  int assignment_rounds = 3;

  /// Dirty-cone incremental retiming in the statistical optimizer's SSTA
  /// engine (see ssta.hpp). Results are bit-identical either way — the
  /// toggle exists as an honest full-pass baseline for benchmarks and the
  /// equivalence tests; leave it on.
  bool incremental_timing = true;

  /// Run the statistical optimizer's hot path on the flat-SoA SSTA engine
  /// with candidate-batched move pricing (ssta/flat_incremental.hpp,
  /// opt/batch_score.hpp). The optimization trajectory — every commit,
  /// every rejection — is bit-identical to the scalar engine's; the toggle
  /// keeps the scalar path alive as the honest baseline for benchmarks and
  /// the equivalence tests. Leave it on.
  bool flat_engine = true;

  /// Candidate block size K for batched move pricing on the flat engine.
  /// <= 0 selects the default (64). Per-candidate pricing is independent,
  /// so any K yields the same trajectory; it only shapes the SoA working
  /// set the vectorized stages stream over.
  int candidate_block = 0;

  /// Journal file for the statistical optimizer's durable checkpoint/resume
  /// (opt/checkpoint.hpp). Empty = no journaling. When the file already
  /// exists and validates against the run's fingerprint, the run resumes:
  /// the committed trajectory is replayed and the final implementation is
  /// bit-identical to an uninterrupted run.
  std::string checkpoint_path;

  /// Implementation-snapshot cadence of the optimizer journal, counted in
  /// committed moves (must be >= 1 when checkpoint_path is set). Snapshots
  /// are integrity cross-checks, not replay state, so the cadence is
  /// trajectory-invariant and deliberately excluded from the fingerprint —
  /// a journal written at one cadence resumes under any other.
  int checkpoint_every = 256;

  // ExecConfig::num_threads drives the statistical optimizer's
  // candidate-scoring loops. Scoring is read-only per candidate and
  // sharded by gate index with an in-order reduction, so the chosen
  // moves — and thus the OptResult — are identical for every thread count.
};

/// What an optimizer run did.
struct OptResult {
  /// False when ExecConfig::deadline_ms expired mid-run: the loops stopped
  /// cleanly at an iteration boundary and the circuit carries the best
  /// implementation reached so far (always a valid implementation point —
  /// commits are atomic), but the schedule did not finish.
  bool completed = true;
  bool feasible = false;       ///< constraint met at the optimizer's own model
  int sizing_commits = 0;      ///< phase-1 upsizing moves
  int hvt_commits = 0;         ///< gates moved to high Vth
  int downsize_commits = 0;    ///< downsizing moves
  int rejected_moves = 0;      ///< tentative moves undone
  int iterations = 0;          ///< optimization loop iterations
  /// Committed decisions replayed from an optimizer journal instead of
  /// being re-scored (0 on a fresh run; statistical optimizer only).
  int replayed_moves = 0;
  double final_objective = 0.0;  ///< optimizer's own objective at exit
                                 ///< (corner leakage / leakage percentile)
  std::string note;            ///< human-readable outcome summary
};

}  // namespace statleak
