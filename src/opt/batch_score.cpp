#include "opt/batch_score.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace statleak {

BatchScorer::BatchScorer(const CellLibrary& lib, const LeakageAnalyzer& leak,
                         const FlatCircuit& flat, const LoadCache& loads,
                         ThreadPool& pool, std::size_t block)
    : lib_(lib),
      leak_(leak),
      flat_(flat),
      loads_(loads.loads()),
      pool_(pool),
      block_(block),
      steps_(lib.size_steps()) {
  STATLEAK_CHECK(block_ >= 1, "candidate block size must be >= 1");
  const LeakageModel& model = leak_.model();
  pelgrom_ = model.variation().pelgrom_vth_scaling;
  mean_factor_ = model.mean_factor();
  // The exact expression gate_moments() evaluates per call, hoisted once
  // (same inputs, same double).
  var_factor_ = model.m2_factor() - model.mean_factor() * model.mean_factor();

  terms_.resize(kNumCellKinds * 2);
  leak_unit_.resize(kNumCellKinds * 2);
  for (std::size_t k = 0; k < kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    for (Vth vth : {Vth::kLow, Vth::kHigh}) {
      const std::size_t idx = k * 2 + (vth == Vth::kHigh ? 1 : 0);
      terms_[idx] = lib_.delay_terms(kind, vth);
      leak_unit_[idx] = lib_.leak_unit_na(kind, vth);
    }
  }

  const std::size_t n = flat_.num_gates;
  vth_.assign(flat_.vth.begin(), flat_.vth.end());
  size_.assign(flat_.size.begin(), flat_.size.end());
  step_.resize(n);
  for (GateId g = 0; g < n; ++g) step_[g] = lib_.nearest_step(size_[g]);

  // Persistent assign-slot lanes start fully dirty; the first assign scan
  // builds them (the leakage analyzer's committed moments are only
  // guaranteed primed by then).
  const std::size_t slots = 2 * n;
  sl_alive_.assign(slots, 0);
  sl_dd_.resize(slots);
  sl_nmean_.resize(slots);
  sl_nvar_.resize(slots);
  sl_om_.resize(slots);
  sl_ov_.resize(slots);
  sl_dm_.resize(slots);
  sl_dv_.resize(slots);
  sl_vexb_.resize(slots);
  sl_tgt_.resize(slots);
  dirty_flag_.assign(n, 1);
  dirty_.resize(n);
  for (GateId g = 0; g < n; ++g) dirty_[g] = g;

  workers_.resize(static_cast<std::size_t>(pool_.size()));
  shard_best_.resize(workers_.size());
  shard_pruned_.resize(workers_.size());
}

BatchScorer::AssignPrune BatchScorer::make_assign_prune(
    const LeakDeltaPricer& pricer, double q_now) {
  AssignPrune p;
  const double m0 = pricer.sum_mean;
  const double pair0 =
      pricer.cov_factor * std::max(0.0, m0 * m0 - pricer.sum_mean_sq);
  const double v0 = pricer.sum_var + pair0;
  const double z = pricer.z;
  if (!(m0 > 0.0) || !(v0 > 0.0) || !(z > 0.0) || pricer.cov_factor < 0.0) {
    return p;
  }
  const double w0 = v0 / (m0 * m0);
  // Monotonicity guard: q(m, v) is increasing in v exactly while
  // L = ln(1 + v/m^2) < z^2. Every w the guarded rectangle and the
  // variance-excess extension can reach stays below 5 * w0; require the
  // corresponding L to clear z^2 with margin, else pruning is off (exact
  // scoring is always sound).
  const double l5 = std::log1p(5.0 * w0);
  if (!(l5 < 0.99 * z * z)) return p;
  // q(m0, v0) through the exact pricing expression (a zero-delta move), so
  // the anchor absorbs any difference between the committed q_now the
  // optimizer passes in and the pricing path's own value.
  const double q0 = pricer.quantile_na(GateLeakMoments{}, GateLeakMoments{});
  // The inflation swallows libm evaluation error in the sups and every
  // rounding step of the per-candidate bound arithmetic (relative error
  // ~1e-15 per operation; 1e-6 leaves nine orders of margin).
  constexpr double kInflate = 1.0 + 1e-6;
  p.anchor = std::max(0.0, (q_now - q0) * kInflate);
  p.half_m = 0.5 * m0;
  p.half_v = 0.5 * v0;
  p.quarter_v = 0.25 * v0;
  p.cf = pricer.cov_factor;
  p.cf2m = pricer.cov_factor * 2.0 * m0;
  p.m0 = m0;
  p.v0 = v0;
  p.z = z;
  p.usable = true;
  return p;
}

void BatchScorer::set_impl(GateId id, Vth vth, double size) {
  const bool vth_changed = vth_[id] != vth;
  const bool size_changed = size_[id] != size;
  if (!vth_changed && !size_changed) return;
  vth_[id] = vth;
  size_[id] = size;
  step_[id] = lib_.nearest_step(size);
  mark_dirty(id);
  if (size_changed) {
    // A resize changes this gate's input-pin capacitance and therefore the
    // output loads of its fanin drivers — their persisted delay deltas are
    // stale (sta/loads.hpp: loads depend on receiver sizes only, so a pure
    // Vth swap leaves every load untouched).
    const std::uint32_t off = flat_.fanin_offset[id];
    const std::uint32_t end = flat_.fanin_offset[id + 1];
    for (std::uint32_t k = off; k < end; ++k) mark_dirty(flat_.fanin[k]);
  }
}

void BatchScorer::mark_dirty(GateId id) {
  if (dirty_flag_[id] != 0) return;
  dirty_flag_[id] = 1;
  dirty_.push_back(id);
}

void BatchScorer::rebuild_dirty_slots() {
  for (GateId id : dirty_) {
    rebuild_gate_slots(id);
    dirty_flag_[id] = 0;
  }
  dirty_.clear();
}

void BatchScorer::rebuild_gate_slots(GateId id) {
  const std::size_t s_hvt = 2 * static_cast<std::size_t>(id);
  const std::size_t s_down = s_hvt + 1;
  sl_alive_[s_hvt] = 0;
  sl_alive_[s_down] = 0;
  if (flat_.is_input[id]) return;
  const double load = loads_[id];
  const double size = size_[id];
  const double dn = terms_[0].drive_num;
  const std::size_t tn = static_cast<std::size_t>(flat_.kind[id]) * 2 +
                         (vth_[id] == Vth::kHigh ? 1 : 0);
  const GateLeakMoments& m = leak_.cached_moments(id);
  // The exact stage-1 delay decomposition of the batched scan (and of the
  // scalar path's delay_ps()), evaluated at rebuild time: the inputs are
  // frozen until the next set_impl/load change, which re-dirties this gate.
  const double d_now = terms_[tn].intrinsic_ps +
                       dn * load / (terms_[tn].idrive_unit_ua * size);
  const auto fill = [&](std::size_t slot, double dd, std::size_t t, Vth tvth,
                        double tgt) {
    double nmean;
    double nvar;
    if (!pelgrom_) {
      const double nominal = leak_unit_[t] * tgt;
      nmean = nominal * mean_factor_;
      nvar = std::max(0.0, nominal * nominal * var_factor_);
    } else {
      const GateLeakMoments nm =
          leak_.model().gate_moments(flat_.kind[id], tvth, tgt);
      nmean = nm.mean_na;
      nvar = nm.var_na2;
    }
    const double dm = m.mean_na - nmean;
    const double dv = m.var_na2 - nvar;
    sl_alive_[slot] = 1;
    sl_dd_[slot] = dd;
    sl_nmean_[slot] = nmean;
    sl_nvar_[slot] = nvar;
    sl_om_[slot] = m.mean_na;
    sl_ov_[slot] = m.var_na2;
    sl_dm_[slot] = dm;
    sl_dv_[slot] = dv;
    sl_vexb_[slot] = dm * dm + (m.mean_na + nmean) * dm;
    sl_tgt_[slot] = tgt;
  };
  if (vth_[id] == Vth::kLow) {
    const std::size_t th = static_cast<std::size_t>(flat_.kind[id]) * 2 + 1;
    const double d_tgt = terms_[th].intrinsic_ps +
                         dn * load / (terms_[th].idrive_unit_ua * size);
    fill(s_hvt, d_tgt - d_now, th, Vth::kHigh, size);
  }
  const std::size_t step = step_[id];
  if (step > 0) {
    const double tgt = steps_[step - 1];
    const double d_tgt = terms_[tn].intrinsic_ps +
                         dn * load / (terms_[tn].idrive_unit_ua * tgt);
    fill(s_down, d_tgt - d_now, tn, vth_[id], tgt);
  }
}

void BatchScorer::Worker::clear() {
  gate.clear();
  tgt_step.clear();
  load.clear();
  cur_size.clear();
  tgt_size.clear();
  intr_now.clear();
  idr_now.clear();
  leak_unit_tgt.clear();
  old_mean.clear();
  old_var.clear();
  crit.clear();
  blocks = 0;
}

MoveCandidate BatchScorer::best_sizing(std::span<const double> criticality,
                                       std::span<const std::uint64_t> locked,
                                       double q_now, double pct,
                                       double crit_floor, double gain_eps) {
  ++passes_;
  const LeakDeltaPricer pricer = leak_.delta_pricer(pct);
  // parallel_for skips empty shards; reset everything serially first so the
  // reduction never reads a previous scan's leftovers.
  for (Worker& w : workers_) w.blocks = 0;
  std::fill(shard_best_.begin(), shard_best_.end(), MoveCandidate{});

  pool_.parallel_for(
      flat_.num_gates, [&](std::size_t lo, std::size_t hi, int worker) {
        Worker& w = workers_[static_cast<std::size_t>(worker)];
        w.clear();
        for (std::size_t i = lo; i < hi; ++i) {
          const auto id = static_cast<GateId>(i);
          if (flat_.is_input[id]) continue;
          if (criticality[id] < crit_floor) continue;
          const std::size_t step = step_[id];
          if (step + 1 >= steps_.size()) continue;
          if ((locked[id] >> (step + 1)) & 1u) continue;
          const std::size_t t =
              static_cast<std::size_t>(flat_.kind[id]) * 2 +
              (vth_[id] == Vth::kHigh ? 1 : 0);
          w.gate.push_back(id);
          w.tgt_step.push_back(step + 1);
          w.load.push_back(loads_[id]);
          w.cur_size.push_back(size_[id]);
          w.tgt_size.push_back(steps_[step + 1]);
          w.intr_now.push_back(terms_[t].intrinsic_ps);
          w.idr_now.push_back(terms_[t].idrive_unit_ua);
          w.leak_unit_tgt.push_back(leak_unit_[t]);
          const GateLeakMoments& m = leak_.cached_moments(id);
          w.old_mean.push_back(m.mean_na);
          w.old_var.push_back(m.var_na2);
          w.crit.push_back(criticality[id]);
        }
        MoveCandidate local;
        price_blocks_sizing(w, pricer, q_now, crit_floor, gain_eps, local);
        shard_best_[static_cast<std::size_t>(worker)] = local;
      });

  MoveCandidate best;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    blocks_ += workers_[wi].blocks;
    if (shard_best_[wi].score > best.score) best = shard_best_[wi];
  }
  return best;
}

void BatchScorer::price_blocks_sizing(Worker& w, const LeakDeltaPricer& pricer,
                                      double q_now, double /*crit_floor*/,
                                      double gain_eps,
                                      MoveCandidate& local) const {
  const std::size_t m = w.gate.size();
  if (m == 0) return;
  w.delta.resize(block_);
  w.new_mean.resize(block_);
  w.new_var.resize(block_);
  const double dn = terms_[0].drive_num;  // 1000 * k_delay * vdd, class-free
  const double mf = mean_factor_;
  const double vf = var_factor_;
  for (std::size_t base = 0; base < m; base += block_) {
    const std::size_t len = std::min(block_, m - base);
    ++w.blocks;
    const double* STATLEAK_RESTRICT load = w.load.data() + base;
    const double* STATLEAK_RESTRICT cur = w.cur_size.data() + base;
    const double* STATLEAK_RESTRICT tgt = w.tgt_size.data() + base;
    const double* STATLEAK_RESTRICT intr = w.intr_now.data() + base;
    const double* STATLEAK_RESTRICT idr = w.idr_now.data() + base;
    const double* STATLEAK_RESTRICT lu = w.leak_unit_tgt.data() + base;
    double* STATLEAK_RESTRICT delta = w.delta.data();
    double* STATLEAK_RESTRICT nmean = w.new_mean.data();
    double* STATLEAK_RESTRICT nvar = w.new_var.data();

    // Stage 1: own-delay gain. Each delay is the exact delay_ps()
    // decomposition (see CellLibrary::DelayTerms); same Vth for both sides.
    STATLEAK_VEC_LOOP
    for (std::size_t i = 0; i < len; ++i) {
      const double d_now = intr[i] + dn * load[i] / (idr[i] * cur[i]);
      const double d_tgt = intr[i] + dn * load[i] / (idr[i] * tgt[i]);
      delta[i] = d_now - d_tgt;
    }

    // Stage 2: hypothetical leak moments at the target size.
    if (!pelgrom_) {
      STATLEAK_VEC_LOOP
      for (std::size_t i = 0; i < len; ++i) {
        const double nominal = lu[i] * tgt[i];
        nmean[i] = nominal * mf;
        nvar[i] = std::max(0.0, nominal * nominal * vf);
      }
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        const GateId id = w.gate[base + i];
        const GateLeakMoments nm =
            leak_.model().gate_moments(flat_.kind[id], vth_[id], tgt[i]);
        nmean[i] = nm.mean_na;
        nvar[i] = nm.var_na2;
      }
    }

    // Stage 3: quantile + score, scalar over dense lanes (transcendentals).
    for (std::size_t i = 0; i < len; ++i) {
      if (delta[i] <= gain_eps) continue;
      const GateLeakMoments old_m{w.old_mean[base + i], w.old_var[base + i]};
      const GateLeakMoments now_m{nmean[i], nvar[i]};
      const double dleak_pct = pricer.quantile_na(old_m, now_m) - q_now;
      const double score =
          w.crit[base + i] * delta[i] / std::max(dleak_pct, 1e-6);
      if (score > local.score) {
        local = MoveCandidate{score, w.gate[base + i], w.tgt_step[base + i],
                              false, 0.0};
      }
    }
  }
}

MoveCandidate BatchScorer::best_assign(std::span<const double> criticality,
                                       std::span<const unsigned char> locked,
                                       double q_now, double pct,
                                       double crit_floor, double eps) {
  ++passes_;
  rebuild_dirty_slots();
  const LeakDeltaPricer pricer = leak_.delta_pricer(pct);
  const AssignPrune prune = make_assign_prune(pricer, q_now);
  for (Worker& w : workers_) w.blocks = 0;
  std::fill(shard_best_.begin(), shard_best_.end(), MoveCandidate{});
  std::fill(shard_pruned_.begin(), shard_pruned_.end(), std::int64_t{0});

  pool_.parallel_for(
      flat_.num_gates, [&](std::size_t lo, std::size_t hi, int worker) {
        Worker& w = workers_[static_cast<std::size_t>(worker)];
        // Compact the shard's live unlocked slots in serial candidate
        // order: slot 2g (HVT swap) before 2g + 1 (downsize), gates
        // ascending — the order the argmax tie rule depends on. All heavy
        // per-candidate inputs live in the persistent slot lanes.
        w.slot.clear();
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t s = 2 * i;
          const unsigned char lk = locked[i];
          if (sl_alive_[s] != 0 && (lk & 1) == 0) {
            w.slot.push_back(static_cast<std::uint32_t>(s));
          }
          if (sl_alive_[s + 1] != 0 && (lk & 2) == 0) {
            w.slot.push_back(static_cast<std::uint32_t>(s + 1));
          }
        }
        MoveCandidate local;
        std::int64_t pruned = 0;
        price_slots_assign(w, pricer, prune, criticality, q_now, crit_floor,
                           eps, local, pruned);
        shard_best_[static_cast<std::size_t>(worker)] = local;
        shard_pruned_[static_cast<std::size_t>(worker)] = pruned;
      });

  MoveCandidate best;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    blocks_ += workers_[wi].blocks;
    pruned_ += shard_pruned_[wi];
    if (shard_best_[wi].score > best.score) best = shard_best_[wi];
  }
  return best;
}

/// Stage-3 quantile elision. The exact score of an assign candidate is
/// benefit / denom with benefit = q_now - q(m1, v1), where (m1, v1) are the
/// totals after swapping the gate's committed moments (om, ov) for the
/// hypothetical ones (nm, nv), and q is the Wilkinson lognormal quantile —
/// one log1p, one log, one sqrt and one exp per candidate, the dominant
/// cost of a scan. Most candidates lose to the running shard best by
/// orders of magnitude, so a cheap proven upper bound on benefit discharges
/// them without the transcendentals:
///
///   benefit <= anchor + A * dm + B * dv_ub
///
/// with dm = om - nm, dv_ub = (ov - nv) + cf * 2 * m0 * dm, and A, B sups
/// of dq/dm and dq/dv over the moment rectangle a move in THIS shard can
/// actually reach: [m0 - dm_max, m0] x [v0 - dvub_max, v0 + vex_max],
/// where the maxima are taken over the shard's guarded candidates in the
/// guard pass. A single move perturbs the totals by ~1/n, so the rectangle
/// is tiny and the sups sit within ~1e-3 of the true derivatives at
/// (m0, v0) — the bound separates candidates whose scores differ by even
/// a few percent, which is what makes the prune bite (a fixed [m0/2, m0]
/// rectangle gives ~3x-loose sups, useless against the clustered scores of
/// same-library gates). Soundness:
///  - split benefit = [q(m0,v0) - q(m1,v0)] + [q(m1,v0) - q(m1,v1)] plus
///    the anchor absorbing q_now vs the pricing-path q(m0, v0);
///  - the first term is <= A * dm by the mean value theorem with
///    A >= sup dq/dm = sup exp(h(w)) * (1 - 2 w h'(w)): h(w) =
///    z sqrt(L) - L/2 is increasing while L = ln(1+w) < z^2 (guarded with
///    margin via the per-pass log1p(5 w0) < 0.99 z^2 check, since the
///    rectangle's w never exceeds 5 w0 given the per-candidate guards
///    dm <= m0/2, dv_ub <= v0/2, vex <= v0/4), h'(w) =
///    (z/(2 sqrt(L)) - 1/2)/(1+w) is positive and decreasing there, so
///    sup exp(h) = exp(h(w_hi)) and inf 2 w h' = 2 w_lo h'(w_hi); the
///    product bound sup(f g) <= sup f * sup g applies with f = exp(h) > 0
///    and sup g = 1 - 2 w_lo h'(w_hi) when that is >= 0, and when it is
///    negative dq/dm < 0 throughout so 0 bounds the term;
///  - v0 - v1 <= dv_ub always (the pairwise term cf * (sm^2 - smsq) can
///    shrink by at most cf * 2 * m0 * dm), so when v1 <= v0 the second
///    term is <= B * dv_ub with B >= sup dq/dv = exp(h(w_hi)) *
///    h'(w_lo) / (m0 - dm_max); when v1 > v0 the second term is negative
///    (q increasing in v inside the guarded region) and B * dv_ub >= 0
///    still bounds it — v1 exceeds v0 by at most vex = cf * (dm^2 +
///    (om + nm) * dm) - (ov - nv), which the rectangle's v_hi covers.
/// Every sup is inflated by 1e-6 relative, which swallows the ~1e-15
/// rounding of both the bound arithmetic and the exact path it stands in
/// for. A discharged candidate therefore satisfies score <= thresh
/// bit-certainly, where thresh is a proven lower bound on the shard's best
/// score: it is seeded by exact-scoring the candidate with the largest
/// upper bound (an actual candidate's score, with a 1e-9 haircut so ties
/// against the seed stay unpruned) and then tracks the running best. The
/// serial selection is the first candidate attaining the maximum score;
/// every candidate that could attain it survives the prune, so the
/// selected move is unchanged for any thread count or block size (pinned
/// by tests/opt_trajectory_test.cpp) even though the shard-local maxima —
/// and hence which losers get elided — vary with the sharding. Candidates
/// outside the guards fall through to the exact quantile.
void BatchScorer::price_slots_assign(Worker& w, const LeakDeltaPricer& pricer,
                                     const AssignPrune& prune,
                                     std::span<const double> criticality,
                                     double q_now, double crit_floor,
                                     double eps, MoveCandidate& local,
                                     std::int64_t& pruned) const {
  const std::size_t m = w.slot.size();
  if (m == 0) return;
  // The candidate-block knob no longer shapes this scan (the persistent
  // lanes made the staged block loop unnecessary); keep the blocks counter
  // meaning "groups of up to K candidates priced" so its telemetry stays
  // comparable across engines and configs.
  w.blocks += static_cast<std::int64_t>((m + block_ - 1) / block_);
  const std::uint32_t* STATLEAK_RESTRICT sl = w.slot.data();

  // Guard pass: per-candidate moment deltas from the persistent lanes
  // (pure arithmetic; +inf in the dvub scratch marks "outside the guards,
  // score exactly"), plus the shard maxima that size the sup rectangle.
  double dm_max = 0.0, dvub_max = 0.0, vex_max = 0.0;
  if (prune.usable) {
    w.dm.resize(m);
    w.dvub.resize(m);
    w.bound.resize(m);
    const double* STATLEAK_RESTRICT pdm = sl_dm_.data();
    const double* STATLEAK_RESTRICT pdv = sl_dv_.data();
    const double* STATLEAK_RESTRICT pvx = sl_vexb_.data();
    double* STATLEAK_RESTRICT dml = w.dm.data();
    double* STATLEAK_RESTRICT dvl = w.dvub.data();
    STATLEAK_VEC_LOOP
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint32_t s = sl[i];
      const double dm = pdm[s];
      const double dv = pdv[s];
      const double dv_ub = dv + prune.cf2m * dm;
      const double vex = prune.cf * pvx[s] - dv;
      const bool ok = dm >= 0.0 && dv >= 0.0 && dm <= prune.half_m &&
                      dv_ub <= prune.half_v && vex <= prune.quarter_v;
      dml[i] = ok ? dm : 0.0;
      dvl[i] = ok ? dv_ub : std::numeric_limits<double>::infinity();
      if (ok) {
        dm_max = std::max(dm_max, dm);
        dvub_max = std::max(dvub_max, dv_ub);
        vex_max = std::max(vex_max, vex);
      }
    }
  }

  // Per-shard sup constants over the rectangle the guarded candidates
  // actually reach (see the function comment for the derivation), then the
  // vectorized bound lane. vex_max can be negative-free by construction
  // (clamped through max with 0).
  if (prune.usable) {
    constexpr double kInflate = 1.0 + 1e-6;
    const double z = prune.z;
    const double m_lo = prune.m0 - dm_max;
    const double w_lo = (prune.v0 - dvub_max) / (prune.m0 * prune.m0);
    const double w_hi = (prune.v0 + std::max(0.0, vex_max)) / (m_lo * m_lo);
    const double l_lo = std::log1p(w_lo);
    const double l_hi = std::log1p(w_hi);
    const double eh_hi = std::exp(z * std::sqrt(l_hi) - 0.5 * l_hi);
    const double hp_hi = (z / (2.0 * std::sqrt(l_lo)) - 0.5) / (1.0 + w_lo);
    const double hp_lo = (z / (2.0 * std::sqrt(l_hi)) - 0.5) / (1.0 + w_hi);
    const double a =
        eh_hi * std::max(0.0, 1.0 - 2.0 * w_lo * hp_lo) * kInflate;
    const double b = eh_hi * hp_hi / m_lo * kInflate;
    const double anchor = prune.anchor;
    const double* STATLEAK_RESTRICT dml = w.dm.data();
    const double* STATLEAK_RESTRICT dvl = w.dvub.data();
    double* STATLEAK_RESTRICT bnd = w.bound.data();
    STATLEAK_VEC_LOOP
    for (std::size_t i = 0; i < m; ++i) {
      bnd[i] = anchor + a * dml[i] + b * dvl[i];
    }
  }

  // Sweep 1 (seed): exact-score the candidate with the largest upper bound.
  // Its true score is a lower bound on this shard's best score, so the
  // in-order sweep can start from a strong prune threshold instead of zero.
  // The 1e-9 haircut keeps every candidate whose score ties the seed's
  // unpruned, preserving the serial first-attainer tie rule; the seed
  // evaluation itself is pure (no state), so scoring it twice is harmless.
  double thresh = local.score;
  if (prune.usable) {
    std::size_t seed = m;
    double seed_ub = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double b = w.bound[i];
      if (b > seed_ub && std::isfinite(b)) {
        seed_ub = b;
        seed = i;
      }
    }
    if (seed < m) {
      const std::uint32_t s = sl[seed];
      const GateLeakMoments old_m{sl_om_[s], sl_ov_[s]};
      const GateLeakMoments now_m{sl_nmean_[s], sl_nvar_[s]};
      const double benefit = q_now - pricer.quantile_na(old_m, now_m);
      if (benefit > 0.0) {
        const double crit =
            std::max(criticality[s >> 1], crit_floor);
        const double denom = crit * std::max(sl_dd_[s], eps) + eps;
        thresh = std::max(thresh, (benefit / denom) * (1.0 - 1e-9));
      }
    }
  }

  // Sweep 2: benefit + score in candidate order. The denominator is the
  // scalar path's expression over the persistent lanes (same subterms, same
  // bits); the upper-bound test elides the quantile for candidates that
  // provably cannot beat the threshold (see the function comment).
  // `thresh` tracks local.score once that overtakes the seed.
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t s = sl[i];
    const double crit = std::max(criticality[s >> 1], crit_floor);
    const double denom = crit * std::max(sl_dd_[s], eps) + eps;
    if (prune.usable && w.bound[i] <= thresh * denom) {
      ++pruned;
      continue;
    }
    const GateLeakMoments old_m{sl_om_[s], sl_ov_[s]};
    const GateLeakMoments now_m{sl_nmean_[s], sl_nvar_[s]};
    const double benefit = q_now - pricer.quantile_na(old_m, now_m);
    if (benefit > 0.0) {
      const double score = benefit / denom;
      if (score > local.score) {
        const bool hvt = (s & 1u) == 0;
        local = MoveCandidate{score, static_cast<GateId>(s >> 1), 0, hvt,
                              hvt ? 0.0 : sl_tgt_[s]};
        thresh = std::max(thresh, score);
      }
    }
  }
}

}  // namespace statleak
