#include "opt/deterministic.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "opt/metrics.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace statleak {

namespace {
constexpr double kEpsPs = 1e-9;
/// Boost rounds of the sizing-enables-swaps outer loop (see run()).
constexpr int kMaxBoostRounds = 4;
/// Per-round shrink of the phase-1 target delay during boosting.
constexpr double kBoostShrink = 0.97;
}  // namespace

DeterministicOptimizer::DeterministicOptimizer(const CellLibrary& lib,
                                               const VariationModel& var,
                                               OptConfig config)
    : lib_(lib), var_(var), config_(std::move(config)) {
  STATLEAK_CHECK(config_.t_max_ps > 0.0, "delay target must be positive");
  STATLEAK_CHECK(config_.corner_k_sigma >= 0.0,
                 "corner k-sigma must be non-negative");
}

OptResult DeterministicOptimizer::run(Circuit& circuit,
                                      obs::Registry* obs) const {
  STATLEAK_CHECK(circuit.finalized(), "optimizer needs a finalized circuit");
  reset_implementation(circuit, lib_);
  obs::ScopedTimer total_timer(obs, "det.total");

  StaEngine sta(circuit, lib_);
  const auto steps = lib_.size_steps();
  const double dl_corner = config_.corner_k_sigma * var_.sigma_l_total_nm();
  const double dv_corner = config_.corner_k_sigma * var_.sigma_vth_total_v();
  const double t_max = config_.t_max_ps;

  // Corner delay of gate `id` with a hypothetical (vth, size, load).
  const auto delay_at = [&](GateId id, Vth vth, double size,
                            double load_ff) -> double {
    const Gate& g = circuit.gate(id);
    return lib_.delay_ps(g.kind, vth, size, load_ff, dl_corner, dv_corner);
  };
  const auto corner_delay = [&]() {
    return sta.analyze_corner(t_max, var_, config_.corner_k_sigma)
        .critical_delay_ps;
  };
  const auto total_leak = [&]() {
    double sum = 0.0;
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      const Gate& g = circuit.gate(id);
      if (g.kind == CellKind::kInput) continue;
      sum += lib_.leakage_na(g.kind, g.vth, g.size);
    }
    return sum;
  };

  OptResult result;
  const auto max_iterations = static_cast<int>(
      config_.max_iterations_factor * static_cast<double>(circuit.num_cells()) +
      64.0);

  // Wall-clock budget (ExecConfig::deadline_ms; 0 = none). Checked at loop
  // boundaries, latched so the label is stable, and always tested LAST in a
  // condition chain: a run that finishes naturally just before expiry is
  // still "completed".
  const Deadline deadline(config_.deadline_ms);
  bool deadline_hit = false;
  const auto out_of_time = [&]() {
    if (deadline_hit) return true;
    if (deadline.expired()) deadline_hit = true;
    return deadline_hit;
  };

  // One "det" trace event per loop iteration (see the header contract).
  // total_leak() is an O(n) const scan, paid only when a registry is
  // attached; observation never feeds back into the computation.
  const auto record = [&](const char* phase, double delay_ps) {
    if (obs == nullptr) return;
    obs::TraceEvent e;
    e.step = result.iterations;
    e.phase = phase;
    e.objective = total_leak();
    e.delay_ps = delay_ps;
    e.commits =
        result.sizing_commits + result.hvt_commits + result.downsize_commits;
    e.rejected = result.rejected_moves;
    obs->trace("det", std::move(e));
  };

  // ------------------------------------------------ snapshot machinery ----
  struct Snapshot {
    std::vector<double> sizes;
    std::vector<Vth> vths;
    double objective = 0.0;
  };
  const auto take_snapshot = [&]() {
    Snapshot s;
    s.sizes.reserve(circuit.num_gates());
    s.vths.reserve(circuit.num_gates());
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      s.sizes.push_back(circuit.gate(id).size);
      s.vths.push_back(circuit.gate(id).vth);
    }
    s.objective = total_leak();
    return s;
  };
  const auto restore_snapshot = [&](const Snapshot& s) {
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      circuit.gate(id).size = s.sizes[id];
      circuit.gate(id).vth = s.vths[id];
    }
    sta.rebuild_loads();
  };

  // -------------------------- phase 1: TILOS-style upsizing to a target ----
  const auto phase_sizing = [&](double target_ps) -> bool {
    obs::ScopedTimer timer(obs, "det.sizing");
    std::set<std::pair<GateId, std::size_t>> locked;
    while (result.iterations < max_iterations && !out_of_time()) {
      ++result.iterations;
      const StaResult timing =
          sta.analyze_corner(target_ps, var_, config_.corner_k_sigma);
      record("sizing", timing.critical_delay_ps);
      if (timing.critical_delay_ps <= target_ps) return true;

      GateId best = kInvalidGate;
      std::size_t best_step = 0;
      double best_score = 0.0;
      for (GateId id = 0; id < circuit.num_gates(); ++id) {
        const Gate& g = circuit.gate(id);
        if (g.kind == CellKind::kInput) continue;
        if (timing.slack_ps[id] >= 0.0) continue;
        const std::size_t step = lib_.nearest_step(g.size);
        if (step + 1 >= steps.size()) continue;
        if (locked.count({id, step + 1}) != 0) continue;
        const double next_size = steps[step + 1];

        const double load = sta.loads().load_ff(id);
        const double own_gain = delay_at(id, g.vth, g.size, load) -
                                delay_at(id, g.vth, next_size, load);

        // Upsizing raises every fanin driver's load by the pin-cap delta.
        const double dcap = lib_.pin_cap_ff(g.kind, next_size) -
                            lib_.pin_cap_ff(g.kind, g.size);
        double penalty = 0.0;
        for (GateId f : g.fanins) {
          const Gate& drv = circuit.gate(f);
          if (drv.kind == CellKind::kInput) continue;
          const double fl = sta.loads().load_ff(f);
          penalty += delay_at(f, drv.vth, drv.size, fl + dcap) -
                     delay_at(f, drv.vth, drv.size, fl);
        }
        const double net_gain = own_gain - penalty;
        if (net_gain <= kEpsPs) continue;

        const double dleak = lib_.leakage_na(g.kind, g.vth, next_size) -
                             lib_.leakage_na(g.kind, g.vth, g.size);
        const double score = net_gain / std::max(dleak, 1e-9);
        if (score > best_score) {
          best_score = score;
          best = id;
          best_step = step + 1;
        }
      }
      if (best == kInvalidGate) return false;  // cannot improve further

      const double before = timing.critical_delay_ps;
      circuit.set_size(best, steps[best_step]);
      sta.on_resize(best);
      if (corner_delay() >= before - kEpsPs) {
        // Second-order load coupling made the move useless; undo + lock.
        circuit.set_size(best, steps[best_step - 1]);
        sta.on_resize(best);
        locked.insert({best, best_step});
        ++result.rejected_moves;
      } else {
        ++result.sizing_commits;
      }
    }
    return corner_delay() <= target_ps + kEpsPs;
  };

  // --------------- phase 2: greedy Vth swaps + downsizing inside slack ----
  // Both move types slow only the moved gate (downsizing additionally
  // speeds up its fanin drivers), so a move is safe iff its own delay
  // increase fits in the gate's corner slack.
  const auto phase_assign = [&]() {
    obs::ScopedTimer timer(obs, "det.assign");
    while (result.iterations < max_iterations && !out_of_time()) {
      ++result.iterations;
      const StaResult timing =
          sta.analyze_corner(t_max, var_, config_.corner_k_sigma);
      record("assign", timing.critical_delay_ps);

      GateId best = kInvalidGate;
      bool best_is_vth = false;
      double best_new_size = 0.0;
      double best_score = 0.0;
      for (GateId id = 0; id < circuit.num_gates(); ++id) {
        const Gate& g = circuit.gate(id);
        if (g.kind == CellKind::kInput) continue;
        const double slack = timing.slack_ps[id] - config_.slack_margin_ps;
        if (slack <= 0.0) continue;
        const double load = sta.loads().load_ff(id);
        const double d_now = delay_at(id, g.vth, g.size, load);

        if (g.vth == Vth::kLow) {
          const double dd = delay_at(id, Vth::kHigh, g.size, load) - d_now;
          if (dd <= slack) {
            const double dleak = lib_.leakage_na(g.kind, Vth::kLow, g.size) -
                                 lib_.leakage_na(g.kind, Vth::kHigh, g.size);
            const double score = dleak / std::max(dd, kEpsPs);
            if (score > best_score) {
              best_score = score;
              best = id;
              best_is_vth = true;
            }
          }
        }
        const std::size_t step = lib_.nearest_step(g.size);
        if (step > 0) {
          const double smaller = steps[step - 1];
          const double dd = delay_at(id, g.vth, smaller, load) - d_now;
          if (dd <= slack) {
            const double dleak = lib_.leakage_na(g.kind, g.vth, g.size) -
                                 lib_.leakage_na(g.kind, g.vth, smaller);
            const double score = dleak / std::max(dd, kEpsPs);
            if (score > best_score) {
              best_score = score;
              best = id;
              best_is_vth = false;
              best_new_size = smaller;
            }
          }
        }
      }
      if (best == kInvalidGate) break;

      if (best_is_vth) {
        circuit.set_vth(best, Vth::kHigh);
        ++result.hvt_commits;
      } else {
        circuit.set_size(best, best_new_size);
        sta.on_resize(best);
        ++result.downsize_commits;
      }
    }
  };

  // ------------------------------------------------------- main schedule ----
  result.feasible = phase_sizing(t_max);
  phase_assign();

  // Boost loop (mirrors the statistical optimizer): upsizing slightly past
  // the constraint buys slack that enables disproportionate swap savings.
  if (result.feasible) {
    Snapshot best = take_snapshot();
    double target = t_max;
    for (int round = 0; round < kMaxBoostRounds && !out_of_time(); ++round) {
      target *= kBoostShrink;
      (void)phase_sizing(target);
      phase_assign();
      const double objective = total_leak();
      if (objective < best.objective * (1.0 - 1e-9)) best = take_snapshot();
      // Always explore every round (the greedy is path-dependent; a later,
      // tighter boost can succeed where an earlier one plateaued), then
      // keep the best implementation seen.
    }
    restore_snapshot(best);
  }

  result.final_objective = total_leak();
  result.completed = !deadline_hit;
  result.note = result.feasible
                    ? "corner delay target met"
                    : "delay target unreachable at max sizes (best effort)";
  if (deadline_hit) result.note += "; stopped early: deadline expired";
  if (obs != nullptr) {
    if (deadline_hit) obs->mark_incomplete("deadline");
    obs->add("det.iterations", result.iterations);
    obs->add("det.commits.sizing", result.sizing_commits);
    obs->add("det.commits.hvt", result.hvt_commits);
    obs->add("det.commits.downsize", result.downsize_commits);
    obs->add("det.rejected_moves", result.rejected_moves);
    obs->set_gauge("det.final_objective_na", result.final_objective);
    obs->set_gauge("det.feasible", result.feasible ? 1.0 : 0.0);
    obs->set_gauge("det.final_corner_delay_ps", corner_delay());
  }
  return result;
}

}  // namespace statleak
