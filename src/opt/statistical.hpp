/// \file statistical.hpp
/// \brief The paper's contribution: statistical leakage optimization with
///        dual-Vth assignment and sizing under a timing-yield constraint.
///
/// Minimize Q_p(total leakage)  s.t.  P(delay <= t_max) >= eta,
///
/// where Q_p is a high percentile (default 99th) of the analytic Wilkinson
/// leakage distribution and the yield comes from block-based SSTA.
///
/// Algorithm (greedy sensitivity loop, mirroring the DAC'04 flow):
///
///   Phase 1 (sizing for yield): from the all-LVT minimum-size point,
///     upsize while yield < eta. Candidates are statistically critical
///     gates; the score is criticality-weighted mean-delay reduction per
///     unit of leakage-percentile increase. Every commit is validated with
///     a full SSTA pass; harmful moves are undone and locked.
///
///   Phase 2 (statistical assignment): candidate moves are LVT->HVT swaps
///     and one-step downsizes. Each move is priced in O(1):
///       benefit = Q_p(now) - Q_p(with move)     [Wilkinson re-fit]
///       cost    = criticality(g) * own mean-delay increase + eps
///     The best-scoring move is applied tentatively and accepted iff the
///     re-run SSTA still meets eta; otherwise undone and locked. Locks are
///     cleared between rounds, because accepted downsizes free timing room.
///
///   Phase 3 (yield recovery): if eta is not reachable (or numerical
///     coupling dented it), the most critical gates are reverted to LVT /
///     upsized until yield recovers or moves run out.

#pragma once

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "opt/config.hpp"
#include "tech/variation.hpp"

namespace statleak {

class StatisticalOptimizer {
 public:
  StatisticalOptimizer(const CellLibrary& lib, const VariationModel& var,
                       OptConfig config);

  /// Optimizes the implementation attributes (size, Vth) of `circuit` in
  /// place, starting from the all-LVT minimum-size point.
  ///
  /// With an observability registry attached the run records phase wall
  /// times ("stat.sizing" / "stat.assign" / "stat.recover" / "stat.boost"),
  /// commit/rejection counters under "stat.*", and one "stat" trace event
  /// per loop iteration (exactly OptResult::iterations events). The
  /// optimization trajectory — and therefore the result — is bit-identical
  /// with and without a registry.
  OptResult run(Circuit& circuit, obs::Registry* obs = nullptr) const;

  const OptConfig& config() const { return config_; }

 private:
  /// The whole optimization schedule, generic over the SSTA engine type
  /// (scalar SstaEngine vs flat-SoA FlatSstaEngine). The two instantiations
  /// share every line of control flow; only candidate scoring dispatches —
  /// the flat engine prices moves through the candidate-batched BatchScorer,
  /// the scalar engine through the per-gate closure — and both produce the
  /// same moves bit for bit (pinned by tests/opt_trajectory_test.cpp).
  template <class Engine>
  OptResult run_impl(Circuit& circuit, Engine& ssta,
                     obs::Registry* obs) const;

  const CellLibrary& lib_;
  const VariationModel& var_;
  OptConfig config_;
};

}  // namespace statleak
