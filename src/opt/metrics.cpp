#include "opt/metrics.hpp"

#include "leakage/leakage.hpp"
#include "ssta/ssta.hpp"
#include "sta/sta.hpp"

namespace statleak {

CircuitMetrics measure_metrics(const Circuit& circuit, const CellLibrary& lib,
                               const VariationModel& var, double t_max_ps) {
  CircuitMetrics m;

  StaEngine sta(circuit, lib);
  m.nominal_delay_ps = sta.critical_delay_ps();
  m.corner3_delay_ps =
      sta.analyze_corner(t_max_ps, var, 3.0).critical_delay_ps;

  SstaEngine ssta(circuit, lib, var);
  const Canonical delay = ssta.circuit_delay();
  m.ssta_delay_mean_ps = delay.mean;
  m.ssta_delay_sigma_ps = delay.sigma();
  m.timing_yield = delay.cdf(t_max_ps);

  LeakageAnalyzer leak(circuit, lib, var);
  const LeakageDistribution dist = leak.distribution();
  m.leakage_nominal_na = leak.nominal_na();
  m.leakage_mean_na = dist.mean_na;
  m.leakage_sigma_na = dist.stddev_na();
  m.leakage_p95_na = dist.quantile_na(0.95);
  m.leakage_p99_na = dist.quantile_na(0.99);

  m.cell_count = circuit.num_cells();
  m.hvt_count = circuit.count_hvt();
  m.hvt_fraction =
      m.cell_count ? static_cast<double>(m.hvt_count) / m.cell_count : 0.0;
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    m.area_um += lib.area_um(g.kind, g.size);
  }
  return m;
}

void reset_implementation(Circuit& circuit, const CellLibrary& lib) {
  const double min_size = lib.size_steps().front();
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    g.size = min_size;
    g.vth = Vth::kLow;
  }
}

}  // namespace statleak
