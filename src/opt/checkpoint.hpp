/// \file checkpoint.hpp
/// \brief Durable checkpoint/resume for the statistical optimizer: a CRC
///        journal of committed decisions with bit-identical replay.
///
/// The paper's dual-Vth + sizing loop is a deterministic greedy search:
/// given the implementation state, the candidate scan, the trial and the
/// accept verdict of every iteration are pure functions (pinned across
/// engines, thread counts and block sizes by tests/opt_trajectory_test.cpp).
/// The full optimizer state is NOT cheap to snapshot — lock masks, round
/// counters, the boost loop's best-seen snapshot, the recover phase's tried
/// set all live on the stack — but it does not need to be: journaling the
/// *decision sequence* is enough. On resume the optimizer re-runs the
/// identical control flow; at each scan site it pops the next journal
/// record instead of scanning (the scan is the expensive part), re-executes
/// the trial/commit/rollback to rebuild the engine caches, recomputes the
/// accept verdict and verifies it against the record. Hidden state rebuilds
/// itself; when the journal runs dry mid-loop the run switches to live
/// scanning + appending in place — a deadline-expired or killed run is
/// simply a journal prefix, and the resumed trajectory and final
/// implementation are bit-identical to an uninterrupted run.
///
/// Container: the generic two-phase-commit journal of util/journal.hpp
/// ("SLOP" magic). Record kinds:
///
///   kOptMoveRecord (24-byte payload)
///     phase      u8    kSizing / kAssign / kRecover
///     kind       u8    OptMoveKind (kNone = the scan found no candidate)
///     accepted   u8    accept verdict of the trial
///     pad        u8
///     iteration  u32   OptResult::iterations at the scan (cross-check)
///     gate       u32   target gate (kInvalidGate for kNone)
///     step       u32   phase-1 payload: target size-step index
///     new_size   f64   phase-2 payload: downsize target
///   kOptSnapshotRecord
///     num_gates  u64   then per-gate vth (u8 each) and size (f64 each)
///   kOptCompleteRecord (32-byte payload)
///     iterations, sizing, hvt, downsize, rejected   i32 each
///     feasible   u8 + 3 pad
///     final_objective  f64
///
/// Snapshots are periodic integrity cross-checks (verified wherever they
/// are encountered during replay), appended every OptConfig::
/// checkpoint_every committed moves and at completion; they are NOT replay
/// state, so the cadence may differ between the producing and the resuming
/// run. A journal ending in kOptCompleteRecord replays fully and appends
/// nothing — re-running a finished journal is a cheap no-op verification.
/// Any replay/journal disagreement — wrong phase or iteration at a scan
/// site, a different accept verdict, a snapshot that does not match the
/// rebuilt implementation — is a structured CheckpointError (CLI exit 5),
/// as are all file-level corruption classes (see util/journal.hpp).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "opt/config.hpp"
#include "tech/variation.hpp"
#include "util/journal.hpp"

namespace statleak {

inline constexpr std::uint32_t kOptCheckpointMagic = 0x504F4C53u;  // "SLOP"
inline constexpr std::uint32_t kOptCheckpointVersion = 1;

/// Journal record kinds of the optimizer checkpoint format.
inline constexpr std::uint32_t kOptMoveRecord = 0;
inline constexpr std::uint32_t kOptSnapshotRecord = 1;
inline constexpr std::uint32_t kOptCompleteRecord = 2;

/// The journal format tag of optimizer journal files.
inline constexpr JournalFormat opt_checkpoint_format() {
  return JournalFormat{kOptCheckpointMagic, kOptCheckpointVersion};
}

/// The optimizer phase a journaled decision belongs to.
enum class OptPhase : std::uint8_t {
  kSizing = 0,
  kAssign = 1,
  kRecover = 2,
};

/// What a journaled scan decided to do.
enum class OptMoveKind : std::uint8_t {
  kNone = 0,          ///< scan found no candidate (the phase's exit move)
  kUpsize = 1,        ///< phase-1 sizing move
  kHvt = 2,           ///< phase-2 high-Vth swap
  kDownsize = 3,      ///< phase-2 downsize
  kRecoverLvt = 4,    ///< phase-3 low-Vth restore
  kRecoverUpsize = 5, ///< phase-3 upsize
};

/// Fingerprint of everything that pins the optimization trajectory: the
/// seed, the constraint/objective config (delay target, yield target,
/// leakage percentile, iteration cap, assignment rounds), the circuit
/// topology (kinds, fanins, outputs — NOT the implementation point, which
/// the optimizer resets on entry), the cell library's size grid and the
/// process node's physical constants, and the variation model. The scoring
/// engine, thread count, candidate block, incremental-timing toggle,
/// deadline and snapshot cadence are deliberately excluded — the trajectory
/// is invariant to all of them, so a journal written by a flat 8-thread run
/// resumes under a scalar single-thread run and vice versa.
std::uint64_t opt_checkpoint_hash(const Circuit& circuit,
                                  const CellLibrary& lib,
                                  const VariationModel& var,
                                  const OptConfig& config);

/// The outcome a replayed scan hands back to the optimizer in place of a
/// live candidate scan.
struct OptScanOutcome {
  OptMoveKind kind = OptMoveKind::kNone;
  GateId gate = kInvalidGate;
  std::uint32_t step = 0;
  double new_size = 0.0;
};

/// The statistical optimizer's journal session: loads/creates the file at
/// construction, serves replay at scan sites, appends live decisions and
/// snapshots once the replayed prefix is exhausted. One instance per
/// optimizer run; not thread-safe (commits are serial by design).
class OptJournal {
 public:
  /// Opens `path`. An existing non-empty file is validated against
  /// `config_hash` and the gate count and replayed; otherwise a fresh
  /// journal is created. Throws CheckpointError on mismatch or corruption.
  OptJournal(std::string path, std::uint64_t config_hash,
             const Circuit& circuit, int checkpoint_every);
  ~OptJournal();
  OptJournal(const OptJournal&) = delete;
  OptJournal& operator=(const OptJournal&) = delete;

  /// True while committed records remain to be replayed.
  bool replaying() const;
  /// True when the journal held any committed records at open (i.e. this
  /// run is a resume).
  bool resumed() const { return resumed_; }

  /// Serves the scan outcome of the next committed record, verifying the
  /// phase/iteration cross-checks. Returns false when the journal is
  /// exhausted — the caller scans live. A successful replay_scan MUST be
  /// confirmed by record_decision / record_no_candidate for the same site.
  bool replay_scan(OptPhase phase, int iteration, OptScanOutcome& out);

  /// Reports one scan decision (accepted or rejected) after it was applied.
  /// Live: appends a move record, plus a snapshot every `checkpoint_every`
  /// committed moves. Replay: verifies the pending record matches.
  void record_decision(OptPhase phase, int iteration, OptMoveKind kind,
                       GateId gate, std::uint32_t step, double new_size,
                       bool accepted, const Circuit& circuit);

  /// Reports a scan that found no candidate (the phase's exit).
  void record_no_candidate(OptPhase phase, int iteration,
                           const Circuit& circuit);

  /// Reports schedule completion: appends a final snapshot + completion
  /// record (live) or verifies them (replay). Deadline-stopped runs do not
  /// call this — their journal stays a resumable prefix.
  void record_complete(const OptResult& result, const Circuit& circuit);

  // ------------------------------------------------------------ counters --
  /// Committed decisions replayed instead of re-scored.
  std::int64_t moves_replayed() const { return moves_replayed_; }
  /// Records (moves + snapshots + completion) durably appended this run.
  std::int64_t records_appended() const;
  /// Snapshot records appended this run.
  std::int64_t snapshots_appended() const { return snapshots_appended_; }
  /// False after an I/O failure or injected short write killed the writer
  /// (appends are silently dropped from then on, like a dead process).
  bool healthy() const;

 private:
  struct MoveRecord;
  [[noreturn]] void diverge(const std::string& why) const;
  MoveRecord decode_move(const JournalRecord& rec) const;
  void verify_snapshot(const JournalRecord& rec,
                       const Circuit& circuit) const;
  /// Consumes + verifies any snapshot records at the replay cursor.
  void consume_snapshots(const Circuit& circuit);
  void append_move(OptPhase phase, int iteration, OptMoveKind kind,
                   GateId gate, std::uint32_t step, double new_size,
                   bool accepted);
  void append_snapshot(const Circuit& circuit);

  std::string path_;
  std::vector<JournalRecord> records_;  ///< committed records at open
  std::size_t next_ = 0;                ///< replay cursor into records_
  bool pending_ = false;  ///< replay_scan served, confirmation outstanding
  bool resumed_ = false;
  std::unique_ptr<JournalWriter> writer_;
  int checkpoint_every_ = 256;
  std::int64_t commits_ = 0;  ///< accepted moves (cadence counter)
  std::int64_t moves_replayed_ = 0;
  std::int64_t snapshots_appended_ = 0;
};

}  // namespace statleak
