#include "opt/statistical.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "leakage/leakage.hpp"
#include "opt/batch_score.hpp"
#include "opt/checkpoint.hpp"
#include "opt/metrics.hpp"
#include "ssta/flat_incremental.hpp"
#include "ssta/ssta.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace statleak {

namespace {
constexpr double kEps = 1e-9;
/// Gates below this criticality are treated as timing-free in move pricing.
constexpr double kCritFloor = 1e-4;
/// Boost rounds of the sizing-enables-swaps outer loop (see run()).
constexpr int kMaxBoostRounds = 4;
/// Default candidate block size for batched move pricing (flat engine).
constexpr std::size_t kDefaultCandidateBlock = 64;
}  // namespace

StatisticalOptimizer::StatisticalOptimizer(const CellLibrary& lib,
                                           const VariationModel& var,
                                           OptConfig config)
    : lib_(lib), var_(var), config_(std::move(config)) {
  STATLEAK_CHECK(config_.t_max_ps > 0.0, "delay target must be positive");
  STATLEAK_CHECK(config_.yield_target > 0.0 && config_.yield_target < 1.0,
                 "yield target must be in (0, 1)");
  STATLEAK_CHECK(
      config_.leakage_percentile > 0.0 && config_.leakage_percentile < 1.0,
      "leakage percentile must be in (0, 1)");
}

OptResult StatisticalOptimizer::run(Circuit& circuit,
                                    obs::Registry* obs) const {
  STATLEAK_CHECK(circuit.finalized(), "optimizer needs a finalized circuit");
  reset_implementation(circuit, lib_);
  obs::ScopedTimer total_timer(obs, "stat.total");

  // Both engines run the identical schedule (run_impl) and produce the
  // identical trajectory; the flat engine is the production hot path, the
  // scalar engine the honest baseline the equivalence tests compare against.
  if (config_.flat_engine) {
    FlatSstaEngine ssta(circuit, lib_, var_);
    ssta.set_incremental(config_.incremental_timing);
    ssta.attach_observer(obs);
    return run_impl(circuit, ssta, obs);
  }
  SstaEngine ssta(circuit, lib_, var_);
  ssta.set_incremental(config_.incremental_timing);
  ssta.attach_observer(obs);
  return run_impl(circuit, ssta, obs);
}

template <class Engine>
OptResult StatisticalOptimizer::run_impl(Circuit& circuit, Engine& ssta,
                                         obs::Registry* obs) const {
  constexpr bool kFlat = std::is_same_v<Engine, FlatSstaEngine>;

  LeakageAnalyzer leak(circuit, lib_, var_);
  const auto steps = lib_.size_steps();
  const double t_max = config_.t_max_ps;
  const double eta = config_.yield_target;
  const double pct = config_.leakage_percentile;

  OptResult result;
  const auto max_iterations = static_cast<int>(
      config_.max_iterations_factor * static_cast<double>(circuit.num_cells()) +
      64.0);

  // Deadline plumbing: every phase loop tests out_of_time() *last* in its
  // condition, so a run that finishes naturally never observes the expiry
  // (completed stays true even when the clock runs out a moment later).
  // Commits are atomic — stopping between iterations always leaves a valid
  // implementation point on the circuit.
  const Deadline deadline(config_.deadline_ms);
  bool deadline_hit = false;
  const auto out_of_time = [&]() {
    if (deadline_hit) return true;
    if (deadline.expired()) deadline_hit = true;
    return deadline_hit;
  };

  // One "stat" trace event per loop iteration — every `++result.iterations`
  // site calls this exactly once, so the stream length always equals
  // OptResult::iterations. All inputs are const queries on the engines;
  // observation cannot perturb the trajectory.
  const auto record = [&](const char* phase, double objective, double yld,
                          double delay_mean_ps) {
    if (obs == nullptr) return;
    obs::TraceEvent e;
    e.step = result.iterations;
    e.phase = phase;
    e.objective = objective;
    e.yield = yld;
    e.delay_ps = delay_mean_ps;
    e.commits =
        result.sizing_commits + result.hvt_commits + result.downsize_commits;
    e.rejected = result.rejected_moves;
    obs->trace("stat", std::move(e));
  };

  // Durable checkpoint/resume (opt/checkpoint.hpp). An existing journal is
  // replayed *through the identical control flow*: every scan site below
  // first offers the iteration to replay_scan(), which serves the recorded
  // decision instead of scanning; the trial/commit/rollback is re-executed
  // to rebuild the engine caches and the accept verdict is re-derived and
  // cross-checked. When the committed prefix runs dry — a killed or
  // deadline-stopped producer simply left a shorter journal — the same site
  // switches to live scanning + appending in place, so the resumed
  // trajectory and final implementation are bit-identical to an
  // uninterrupted run (pinned by tests/opt_checkpoint_test.cpp).
  std::unique_ptr<OptJournal> journal_store;
  if (!config_.checkpoint_path.empty()) {
    journal_store = std::make_unique<OptJournal>(
        config_.checkpoint_path,
        opt_checkpoint_hash(circuit, lib_, var_, config_), circuit,
        config_.checkpoint_every);
  }
  OptJournal* const journal = journal_store.get();

  // Own mean delay of a gate under a hypothetical (vth, size).
  const auto own_delay = [&](GateId id, Vth vth, double size) -> double {
    const Gate& g = circuit.gate(id);
    return lib_.delay_ps(g.kind, vth, size, ssta.loads().load_ff(id));
  };

  // ------------------------------------------ parallel candidate scoring ----
  // Move pricing in phases 1 and 2 is read-only per candidate (const queries
  // on the SSTA snapshot, load cache and leakage analyzer), so it is sharded
  // by gate index over a pool that lives for the whole run. Each shard keeps
  // the serial rule "first strictly-greater score wins, ids ascending"; the
  // shards are then reduced in index order, which reproduces the serial
  // winner exactly — commits stay serial, so the optimization trajectory is
  // identical for every thread count.
  //
  // On the flat engine the scans additionally go through the BatchScorer:
  // SoA candidate gather + staged block pricing over the same shards, same
  // argmax rule, same bits (opt/batch_score.hpp).
  ThreadPool pool(config_.num_threads);
  const std::size_t block =
      config_.candidate_block > 0
          ? static_cast<std::size_t>(config_.candidate_block)
          : kDefaultCandidateBlock;
  std::optional<BatchScorer> scorer;
  if constexpr (kFlat) {
    scorer.emplace(lib_, leak, ssta.flat(), ssta.loads(), pool, block);
  }

  // Keeps the scorer's implementation mirrors in lockstep with the circuit.
  // Every set_size/set_vth in this function is followed by a sync(id);
  // missing one would desynchronize batched candidate filtering (caught by
  // the flat-vs-scalar trajectory tests).
  const auto sync = [&](GateId id) {
    if constexpr (kFlat) {
      const Gate& g = circuit.gate(id);
      scorer->set_impl(id, g.vth, g.size);
    } else {
      (void)id;
    }
  };

  // Every implementation mutation goes through these two, so the circuit and
  // the SSTA caches can never disagree. Leakage is priced hypothetically
  // during scoring (quantile_if_na) and repriced only on commit, so it is
  // updated at the commit sites, not here.
  const auto apply_size = [&](GateId id, double size) {
    circuit.set_size(id, size);
    ssta.on_resize(id);
    sync(id);
  };
  const auto apply_vth = [&](GateId id, Vth vth) {
    circuit.set_vth(id, vth);
    ssta.on_vth_change(id);
    sync(id);
  };

  // Legacy per-gate scoring scan (the scalar engine's path). Generic lambda
  // so each call site's scoring closure is a concrete type the compiler can
  // inline — the per-gate indirect call through a std::function showed up
  // in profiles at ~7 ns * n * iterations.
  const auto best_candidate = [&](const auto& score_gate) {
    std::vector<MoveCandidate> shard_best(
        static_cast<std::size_t>(pool.size()));
    pool.parallel_for(
        circuit.num_gates(),
        [&](std::size_t lo, std::size_t hi, int worker) {
          MoveCandidate local;
          for (std::size_t i = lo; i < hi; ++i) {
            score_gate(static_cast<GateId>(i), local);
          }
          shard_best[static_cast<std::size_t>(worker)] = local;
        });
    MoveCandidate best;
    for (const MoveCandidate& c : shard_best) {
      if (c.score > best.score) best = c;
    }
    return best;
  };

  // ------------------------------------------------ snapshot machinery ----
  struct Snapshot {
    std::vector<double> sizes;
    std::vector<Vth> vths;
    double objective = 0.0;
  };
  const auto take_snapshot = [&]() {
    Snapshot s;
    s.sizes.reserve(circuit.num_gates());
    s.vths.reserve(circuit.num_gates());
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      s.sizes.push_back(circuit.gate(id).size);
      s.vths.push_back(circuit.gate(id).vth);
    }
    s.objective = leak.quantile_na(pct);
    return s;
  };
  const auto restore_snapshot = [&](const Snapshot& s) {
    // Per-gate diff through the engine-aware setters: only the gates that
    // actually differ get dirtied and repriced, so restoring a snapshot that
    // is close to the current implementation stays cheap. Ascending id order
    // makes every load's last recompute see final receiver sizes.
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      bool changed = false;
      if (circuit.gate(id).size != s.sizes[id]) {
        apply_size(id, s.sizes[id]);
        changed = true;
      }
      if (circuit.gate(id).vth != s.vths[id]) {
        apply_vth(id, s.vths[id]);
        changed = true;
      }
      if (changed) leak.on_gate_changed(id);
    }
  };

  // ------------------------------------------- phase 1: sizing for yield ----
  // Greedy criticality-weighted upsizing until P(D <= T) >= target.
  // Returns the yield reached.
  const auto phase_sizing = [&](double target) -> double {
    obs::ScopedTimer timer(obs, "stat.sizing");
    // Per-gate bitmask of locked size steps (flat array: the per-candidate
    // lock test is on the scoring hot path).
    STATLEAK_CHECK(steps.size() <= 64, "size grid too fine for lock mask");
    std::vector<std::uint64_t> locked(circuit.num_gates(), 0);
    double yield = ssta.circuit_delay().cdf(t_max);
    while (yield < target && result.iterations < max_iterations &&
           !out_of_time()) {
      ++result.iterations;
      const SstaResult& timing = ssta.analyze_ref();
      yield = timing.yield(t_max);
      // Invariant for the whole scan; hoisted out of the per-gate pricing.
      const double q_now = leak.quantile_na(pct);
      record("sizing", q_now, yield, timing.circuit_delay.mean);
      if (yield >= target) break;
      MoveCandidate best;
      OptScanOutcome replayed;
      if (journal != nullptr &&
          journal->replay_scan(OptPhase::kSizing, result.iterations,
                               replayed)) {
        best.gate = replayed.gate;
        best.step = replayed.step;
      } else {
        obs::ScopedTimer score_timer(obs, "stat.score");
        if constexpr (kFlat) {
          best = scorer->best_sizing(timing.criticality, locked, q_now, pct,
                                     kCritFloor, kEps);
        } else {
          best = best_candidate([&](GateId id, MoveCandidate& local) {
            const Gate& g = circuit.gate(id);
            if (g.kind == CellKind::kInput) return;
            if (timing.criticality[id] < kCritFloor) return;
            const std::size_t step = lib_.nearest_step(g.size);
            if (step + 1 >= steps.size()) return;
            if ((locked[id] >> (step + 1)) & 1u) return;
            const double next_size = steps[step + 1];

            const double gain =
                own_delay(id, g.vth, g.size) - own_delay(id, g.vth, next_size);
            if (gain <= kEps) return;
            const double dleak_pct =
                leak.quantile_if_na(id, g.vth, next_size, pct) - q_now;
            const double score =
                timing.criticality[id] * gain / std::max(dleak_pct, 1e-6);
            if (score > local.score) {
              local = MoveCandidate{score, id, step + 1, false, 0.0};
            }
          });
        }
      }
      if (best.gate == kInvalidGate) {  // no upsizing can help further
        if (journal != nullptr) {
          journal->record_no_candidate(OptPhase::kSizing, result.iterations,
                                       circuit);
        }
        break;
      }

      ssta.begin_trial();
      apply_size(best.gate, steps[best.step]);
      const double new_yield = ssta.circuit_delay().cdf(t_max);
      const bool accepted = new_yield > yield + 1e-12;
      if (!accepted) {
        // Fanin load coupling ate the gain: roll back and lock this step.
        ssta.rollback_trial();
        circuit.set_size(best.gate, steps[best.step - 1]);
        sync(best.gate);
        locked[best.gate] |= std::uint64_t{1} << best.step;
        ++result.rejected_moves;
      } else {
        ssta.commit_trial();
        leak.on_gate_changed(best.gate);
        yield = new_yield;
        ++result.sizing_commits;
      }
      if (journal != nullptr) {
        journal->record_decision(OptPhase::kSizing, result.iterations,
                                 OptMoveKind::kUpsize, best.gate,
                                 static_cast<std::uint32_t>(best.step), 0.0,
                                 accepted, circuit);
      }
    }
    return yield;
  };

  // ------------------------- phase 2: yield-constrained swaps/downsizing ----
  // `best_effort` permits moves that do not erode the current yield even if
  // eta itself is unreachable.
  const auto phase_assign = [&](bool best_effort) {
    obs::ScopedTimer timer(obs, "stat.assign");
    // Per-gate lock bits: 1 = hvt swap locked, 2 = downsize locked.
    std::vector<unsigned char> locked(circuit.num_gates(), 0);

    for (int round = 0; round < config_.assignment_rounds; ++round) {
      std::fill(locked.begin(), locked.end(), 0);
      int committed_this_round = 0;

      while (result.iterations < max_iterations && !out_of_time()) {
        ++result.iterations;
        const SstaResult& timing = ssta.analyze_ref();
        const double cur_yield = timing.yield(t_max);
        const double q_now = leak.quantile_na(pct);
        record("assign", q_now, cur_yield, timing.circuit_delay.mean);

        MoveCandidate best;
        OptScanOutcome replayed;
        if (journal != nullptr &&
            journal->replay_scan(OptPhase::kAssign, result.iterations,
                                 replayed)) {
          best.gate = replayed.gate;
          best.to_hvt = replayed.kind == OptMoveKind::kHvt;
          best.new_size = replayed.new_size;
        } else {
          obs::ScopedTimer score_timer(obs, "stat.score");
          if constexpr (kFlat) {
            best = scorer->best_assign(timing.criticality, locked, q_now,
                                       pct, kCritFloor, kEps);
          } else {
            best = best_candidate([&](GateId id, MoveCandidate& local) {
              const Gate& g = circuit.gate(id);
              if (g.kind == CellKind::kInput) return;
              const bool can_hvt =
                  g.vth == Vth::kLow && (locked[id] & 1) == 0;
              const std::size_t step = lib_.nearest_step(g.size);
              const bool can_down = step > 0 && (locked[id] & 2) == 0;
              if (!can_hvt && !can_down) return;
              const double crit =
                  std::max(timing.criticality[id], kCritFloor);
              const double d_now = own_delay(id, g.vth, g.size);

              if (can_hvt) {
                const double dd = own_delay(id, Vth::kHigh, g.size) - d_now;
                const double benefit =
                    q_now - leak.quantile_if_na(id, Vth::kHigh, g.size, pct);
                if (benefit > 0.0) {
                  const double score =
                      benefit / (crit * std::max(dd, kEps) + kEps);
                  if (score > local.score) {
                    local = MoveCandidate{score, id, 0, true, 0.0};
                  }
                }
              }
              if (can_down) {
                const double smaller = steps[step - 1];
                const double dd = own_delay(id, g.vth, smaller) - d_now;
                const double benefit =
                    q_now - leak.quantile_if_na(id, g.vth, smaller, pct);
                if (benefit > 0.0) {
                  const double score =
                      benefit / (crit * std::max(dd, kEps) + kEps);
                  if (score > local.score) {
                    local = MoveCandidate{score, id, 0, false, smaller};
                  }
                }
              }
            });
          }
        }
        if (best.gate == kInvalidGate) {
          if (journal != nullptr) {
            journal->record_no_candidate(OptPhase::kAssign, result.iterations,
                                         circuit);
          }
          break;
        }

        // Tentative apply inside an engine trial + forward SSTA validation.
        const Gate saved = circuit.gate(best.gate);
        ssta.begin_trial();
        if (best.to_hvt) {
          apply_vth(best.gate, Vth::kHigh);
        } else {
          apply_size(best.gate, best.new_size);
        }
        const double new_yield = ssta.circuit_delay().cdf(t_max);
        const bool acceptable =
            new_yield + 1e-12 >= eta ||
            (best_effort && new_yield + 1e-12 >= cur_yield);
        if (acceptable) {
          ssta.commit_trial();
          leak.on_gate_changed(best.gate);
          if (best.to_hvt) {
            ++result.hvt_commits;
          } else {
            ++result.downsize_commits;
          }
          ++committed_this_round;
        } else {
          // O(touched) cache restore; the circuit's own fields go back
          // through the setters, never by poking Gate members directly.
          ssta.rollback_trial();
          circuit.set_vth(best.gate, saved.vth);
          circuit.set_size(best.gate, saved.size);
          sync(best.gate);
          locked[best.gate] |=
              static_cast<unsigned char>(best.to_hvt ? 1 : 2);
          ++result.rejected_moves;
        }
        if (journal != nullptr) {
          journal->record_decision(OptPhase::kAssign, result.iterations,
                                   best.to_hvt ? OptMoveKind::kHvt
                                               : OptMoveKind::kDownsize,
                                   best.gate, 0, best.new_size, acceptable,
                                   circuit);
        }
        if (acceptable &&
            STATLEAK_FAULT_FIRES(
                fault::Point::kOptAssignKill,
                static_cast<std::uint64_t>(result.hvt_commits +
                                           result.downsize_commits))) {
          // Simulate a kill -9 right after the journal committed this
          // assignment: the process "dies" with the on-disk prefix ending
          // exactly at this decision (tests/fault_test.cpp resumes it).
          throw fault::InjectedCrash{};
        }
      }
      if (committed_this_round == 0) break;
    }
  };

  // ---------------------------------------------- phase 3: yield recovery ----
  const auto phase_recover = [&]() {
    obs::ScopedTimer timer(obs, "stat.recover");
    double yield = ssta.circuit_delay().cdf(t_max);
    std::set<std::pair<GateId, int>> tried;
    while (yield < eta && result.iterations < max_iterations &&
           !out_of_time()) {
      ++result.iterations;
      const SstaResult& timing = ssta.analyze_ref();
      record("recover", leak.quantile_na(pct), yield,
             timing.circuit_delay.mean);

      GateId best = kInvalidGate;
      bool to_lvt = false;
      OptScanOutcome replayed;
      if (journal != nullptr &&
          journal->replay_scan(OptPhase::kRecover, result.iterations,
                               replayed)) {
        best = replayed.gate;
        to_lvt = replayed.kind == OptMoveKind::kRecoverLvt;
      } else {
        double best_crit = 0.0;
        for (GateId id = 0; id < circuit.num_gates(); ++id) {
          const Gate& g = circuit.gate(id);
          if (g.kind == CellKind::kInput) continue;
          if (timing.criticality[id] <= best_crit) continue;
          if (g.vth == Vth::kHigh && tried.count({id, 0}) == 0) {
            best = id;
            to_lvt = true;
            best_crit = timing.criticality[id];
          } else if (lib_.nearest_step(g.size) + 1 < steps.size() &&
                     tried.count({id, 1}) == 0) {
            best = id;
            to_lvt = false;
            best_crit = timing.criticality[id];
          }
        }
      }
      if (best == kInvalidGate) {
        if (journal != nullptr) {
          journal->record_no_candidate(OptPhase::kRecover, result.iterations,
                                       circuit);
        }
        break;
      }

      if (to_lvt) {
        apply_vth(best, Vth::kLow);
        tried.insert({best, 0});
      } else {
        apply_size(best,
                   steps[lib_.nearest_step(circuit.gate(best).size) + 1]);
        tried.insert({best, 1});
      }
      leak.on_gate_changed(best);
      if (journal != nullptr) {
        journal->record_decision(OptPhase::kRecover, result.iterations,
                                 to_lvt ? OptMoveKind::kRecoverLvt
                                        : OptMoveKind::kRecoverUpsize,
                                 best, 0, 0.0, /*accepted=*/true, circuit);
      }
      yield = ssta.circuit_delay().cdf(t_max);
    }
    return yield;
  };

  // ------------------------------------------------------- main schedule ----
  double yield = phase_sizing(eta);
  result.feasible = yield >= eta;
  phase_assign(/*best_effort=*/!result.feasible);
  if (ssta.circuit_delay().cdf(t_max) < eta) {
    yield = phase_recover();
    result.feasible = yield + 1e-12 >= eta;
  }

  // Boost loop: greedy assignment saturates at the yield wall, but spending
  // a little leakage on upsizing statistically critical gates can buy slack
  // that enables far larger swap savings. Iterate "size above the target,
  // reassign against the real wall" while the objective improves.
  if (result.feasible) {
    Snapshot best = take_snapshot();
    double boost_target = eta;
    for (int round = 0; round < kMaxBoostRounds && !out_of_time(); ++round) {
      boost_target = std::min(0.99995, 1.0 - (1.0 - boost_target) * 0.35);
      (void)phase_sizing(boost_target);
      phase_assign(/*best_effort=*/false);
      const double objective = leak.quantile_na(pct);
      if (objective < best.objective * (1.0 - 1e-9)) best = take_snapshot();
      // Always explore every round (the greedy is path-dependent; a later,
      // higher boost can succeed where an earlier one plateaued), then keep
      // the best implementation seen.
    }
    restore_snapshot(best);
  }

  result.final_objective = leak.quantile_na(pct);
  result.completed = !deadline_hit;
  if (journal != nullptr) {
    // A deadline-stopped run appends no completion record: its journal
    // stays a resumable prefix instead of a dead partial result.
    if (result.completed) journal->record_complete(result, circuit);
    result.replayed_moves = static_cast<int>(journal->moves_replayed());
  }
  result.note = result.feasible ? "timing-yield target met"
                                : "yield target unreachable (best effort)";
  if (deadline_hit) result.note += "; stopped early: deadline expired";
  if (journal != nullptr && journal->resumed()) {
    result.note += "; resumed: replayed " +
                   std::to_string(journal->moves_replayed()) +
                   " journaled decisions";
  }
  if (obs != nullptr) {
    if (deadline_hit) obs->mark_incomplete("deadline");
    obs->add("stat.iterations", result.iterations);
    obs->add("stat.commits.sizing", result.sizing_commits);
    obs->add("stat.commits.hvt", result.hvt_commits);
    obs->add("stat.commits.downsize", result.downsize_commits);
    obs->add("stat.rejected_moves", result.rejected_moves);
    obs->set_gauge("stat.final_objective_na", result.final_objective);
    obs->set_gauge("stat.feasible", result.feasible ? 1.0 : 0.0);
    obs->set_gauge("stat.final_yield", ssta.circuit_delay().cdf(t_max));
    obs->note_config("opt.engine", kFlat ? "flat" : "scalar");
    if (journal != nullptr) {
      obs->add("opt.journal_records",
               static_cast<double>(journal->records_appended()));
      obs->add("opt.journal_replayed",
               static_cast<double>(journal->moves_replayed()));
      obs->add("opt.journal_snapshots",
               static_cast<double>(journal->snapshots_appended()));
      obs->set_gauge("opt.resumed", journal->resumed() ? 1.0 : 0.0);
      obs->set_gauge("opt.journal_healthy", journal->healthy() ? 1.0 : 0.0);
      obs->note_config("opt.checkpoint", config_.checkpoint_path);
      obs->note_config_num(
          "opt.checkpoint_every",
          static_cast<std::int64_t>(config_.checkpoint_every));
    }
    if constexpr (kFlat) {
      obs->note_config_num("opt.candidate_block",
                           static_cast<std::int64_t>(block));
      obs->add("opt.flat_passes", static_cast<double>(scorer->passes()));
      obs->add("opt.candidate_blocks",
               static_cast<double>(scorer->blocks()));
      obs->add("opt.pruned_candidates",
               static_cast<double>(scorer->pruned()));
    }
  }
  return result;
}

}  // namespace statleak
