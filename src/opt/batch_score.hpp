/// \file batch_score.hpp
/// \brief Candidate-batched move pricing on the FlatCircuit snapshot.
///
/// The statistical optimizer's scoring scans price every legal move against
/// the same committed state (scoring is read-only; commits are serial), so
/// the scan is embarrassingly parallel per candidate AND restructurable:
/// instead of the scalar path's one-gate-at-a-time walk through the AoS
/// Gate graph — a Gate-struct dereference, a binary size-step search and
/// several virtual-free-but-cold library calls per gate — the batched
/// scorer works SoA:
///
///   1. a filter pass over flat mirror arrays (vth/size/step per gate,
///      maintained by the optimizer through set_impl()) collects the legal
///      candidates of the worker's gate shard into SoA candidate arrays,
///      gathering every per-candidate input (load, delay terms, leak-unit
///      currents, cached "old" leak moments) into contiguous lanes;
///   2. blocks of K candidates are priced in staged gate-major passes:
///      pure-arithmetic stages (delay completion, leak-moment completion,
///      final score) carry STATLEAK_VEC_LOOP hints, while the one stage
///      with transcendental calls (the Wilkinson lognormal quantile) stays
///      a scalar loop over dense lanes — vectorized libm would break the
///      bit contract;
///   3. each worker keeps the serial argmax rule "first strictly-greater
///      score wins, candidates in (gate ascending, HVT before downsize)
///      order"; shard winners are reduced in shard order, reproducing the
///      serial winner exactly for every thread count and block size.
///
/// The phase-2 (assignment) scan goes one step further: a gate's two
/// possible moves (HVT swap, one-step downsize) depend only on its own
/// implementation, its output load and its committed leak moments, all of
/// which change for O(1) gates per commit. The scorer therefore keeps the
/// full stage-1/stage-2 output — move delay delta, hypothetical moments,
/// moment deltas — in PERSISTENT dense slot lanes (slot 2g = HVT swap of
/// gate g, slot 2g+1 = downsize), rebuilt lazily for the gates set_impl()
/// dirtied (a resize also dirties the resized gate's fanin drivers, whose
/// loads changed). A scan then reduces to: compact the live unlocked slots
/// of the shard (one u32 per candidate instead of a 13-lane gather), run
/// the vectorized benefit-bound passes over the compact list, and exact-
/// score the few survivors — the expression DAG per candidate is untouched,
/// only the evaluation time of its invariant prefix moves from scan to
/// rebuild, so every score stays bit-identical to the scalar path.
///
/// Bit contract: every stage completes a decomposed expression whose terms
/// are the exact subexpressions of the scalar path (CellLibrary::
/// delay_terms(), leak_unit_na(), LeakageModel factors, LeakDeltaPricer) in
/// the same association order, so the candidate chosen — and therefore the
/// whole optimization trajectory — is bit-identical to the scalar engine's
/// (pinned by tests/opt_trajectory_test.cpp across thread counts and block
/// sizes). With Pelgrom width scaling enabled the leak-moment stage falls
/// back to per-candidate LeakageModel::gate_moments() calls — the same
/// function the scalar path prices through.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cells/library.hpp"
#include "leakage/leakage.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/loads.hpp"
#include "util/parallel.hpp"

namespace statleak {

/// One scored move candidate; the optimizer's argmax unit (shared by the
/// scalar and batched scoring paths).
struct MoveCandidate {
  double score = 0.0;
  GateId gate = kInvalidGate;
  std::size_t step = 0;   ///< phase-1 payload: target size step
  bool to_hvt = false;    ///< phase-2 payload: Vth swap vs downsize
  double new_size = 0.0;  ///< phase-2 payload: downsize target
};

class BatchScorer {
 public:
  /// `block` is the candidate-block size K (>= 1). The flat snapshot and
  /// load cache must outlive the scorer; mirrors are seeded from the
  /// snapshot (taken at the optimizer's reset point).
  BatchScorer(const CellLibrary& lib, const LeakageAnalyzer& leak,
              const FlatCircuit& flat, const LoadCache& loads,
              ThreadPool& pool, std::size_t block);

  /// Reports one gate's implementation change into the mirror arrays.
  /// Every mutation of the circuit during the run must be reported (the
  /// optimizer routes all of them through here).
  void set_impl(GateId id, Vth vth, double size);

  /// Phase-1 scan: best criticality-weighted upsizing move.
  /// Candidate filter and score are the scalar path's, bit for bit.
  MoveCandidate best_sizing(std::span<const double> criticality,
                            std::span<const std::uint64_t> locked,
                            double q_now, double pct, double crit_floor,
                            double gain_eps);

  /// Phase-2 scan: best HVT swap or downsize move.
  MoveCandidate best_assign(std::span<const double> criticality,
                            std::span<const unsigned char> locked,
                            double q_now, double pct, double crit_floor,
                            double eps);

  /// Scoring-scan counters since construction (one "pass" per best_* call;
  /// blocks of up to K candidates actually priced).
  std::int64_t passes() const { return passes_; }
  std::int64_t blocks() const { return blocks_; }
  /// Assign-phase candidates discharged by the quantile-free upper bound
  /// (see price_slots_assign) without evaluating the exact Wilkinson
  /// quantile. Skips never change the argmax — the bound is a proven
  /// over-estimate of the exact score.
  std::int64_t pruned() const { return pruned_; }

 private:
  struct Worker {
    // SoA candidate lanes (phase-1 filter-pass output, gathered contiguous).
    std::vector<GateId> gate;
    std::vector<std::size_t> tgt_step;
    std::vector<double> load;
    std::vector<double> cur_size;
    std::vector<double> tgt_size;
    std::vector<double> intr_now, idr_now;  ///< current-impl delay terms
    std::vector<double> leak_unit_tgt;
    std::vector<double> old_mean, old_var;  ///< committed leak moments
    std::vector<double> crit;
    // Phase-1 stage arrays, sized to one block and reused per block.
    std::vector<double> delta;
    std::vector<double> new_mean, new_var;
    // Phase-2 compact scan state: live unlocked slot ids of the shard in
    // serial candidate order, plus per-candidate scratch for the benefit
    // upper bound (sized to the compact count each scan).
    std::vector<std::uint32_t> slot;
    std::vector<double> dm, dvub;  ///< guarded mean delta / variance-drop ub
    std::vector<double> bound;     ///< benefit upper bound
    std::int64_t blocks = 0;
    void clear();
  };

  /// Per-scan constants for the assign-phase benefit upper bound: Lipschitz
  /// constants of the Wilkinson lognormal quantile q(m, v) = m * exp(z *
  /// sqrt(L) - L / 2), L = ln(1 + v / m^2), over the moment rectangle any
  /// guarded candidate move can reach. Derivation in price_blocks_assign.
  struct AssignPrune {
    bool usable = false;
    double anchor = 0.0;  ///< max(0, q_now - q(m0, v0)), inflated
    double half_m = 0.0;  ///< 0.5 * m0: candidate mean-delta guard
    double half_v = 0.0;  ///< 0.5 * v0: candidate variance-delta guard
    double quarter_v = 0.0;  ///< 0.25 * v0: variance-excess guard
    double cf = 0.0;         ///< pairwise covariance factor
    double cf2m = 0.0;       ///< cf * 2 * m0
    double m0 = 0.0;         ///< committed total leak mean
    double v0 = 0.0;         ///< committed total leak variance (incl. pairwise)
    double z = 0.0;          ///< normal deviate of the scored percentile
  };
  static AssignPrune make_assign_prune(const LeakDeltaPricer& pricer,
                                       double q_now);

  void price_blocks_sizing(Worker& w, const LeakDeltaPricer& pricer,
                           double q_now, double crit_floor, double gain_eps,
                           MoveCandidate& local) const;
  void price_slots_assign(Worker& w, const LeakDeltaPricer& pricer,
                          const AssignPrune& prune,
                          std::span<const double> criticality, double q_now,
                          double crit_floor, double eps, MoveCandidate& local,
                          std::int64_t& pruned) const;

  /// Recomputes the persistent per-slot lanes of one gate's two assign
  /// moves from the current mirrors, loads and committed leak moments.
  void rebuild_gate_slots(GateId id);
  /// Drains the dirty-gate queue through rebuild_gate_slots (serial; called
  /// at the top of every assign scan).
  void rebuild_dirty_slots();
  void mark_dirty(GateId id);

  const CellLibrary& lib_;
  const LeakageAnalyzer& leak_;
  const FlatCircuit& flat_;
  std::span<const double> loads_;
  ThreadPool& pool_;
  std::size_t block_;
  std::span<const double> steps_;
  bool pelgrom_ = false;
  double mean_factor_ = 1.0;
  double var_factor_ = 0.0;  ///< m2_factor - mean_factor^2

  /// Delay terms per (kind, vth): index = kind * 2 + (vth == kHigh).
  std::vector<CellLibrary::DelayTerms> terms_;
  std::vector<double> leak_unit_;  ///< same indexing

  // Mutable implementation mirrors (index by GateId).
  std::vector<Vth> vth_;
  std::vector<double> size_;
  std::vector<std::size_t> step_;

  // Persistent assign-move slot lanes (index by slot = 2 * gate + kind,
  // kind 0 = HVT swap, 1 = one-step downsize — the serial candidate order).
  // Rebuilt per gate on set_impl() dirtying; read-only during scans.
  std::vector<std::uint8_t> sl_alive_;  ///< structurally legal move
  std::vector<double> sl_dd_;           ///< own-delay increase of the move
  std::vector<double> sl_nmean_, sl_nvar_;  ///< hypothetical leak moments
  std::vector<double> sl_om_, sl_ov_;       ///< committed leak moments
  std::vector<double> sl_dm_, sl_dv_;       ///< om - nmean, ov - nvar
  std::vector<double> sl_vexb_;  ///< dm^2 + (om + nmean) * dm (cf-free)
  std::vector<double> sl_tgt_;   ///< downsize target size
  std::vector<GateId> dirty_;
  std::vector<std::uint8_t> dirty_flag_;

  std::vector<Worker> workers_;
  std::vector<MoveCandidate> shard_best_;
  std::vector<std::int64_t> shard_pruned_;
  std::int64_t passes_ = 0;
  std::int64_t blocks_ = 0;
  std::int64_t pruned_ = 0;
};

}  // namespace statleak
