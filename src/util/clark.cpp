#include "util/clark.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

ClarkMax clark_max(double mean1, double var1, double mean2, double var2,
                   double rho) {
  STATLEAK_CHECK(var1 >= 0.0 && var2 >= 0.0, "variances must be non-negative");
  STATLEAK_CHECK(rho >= -1.0000001 && rho <= 1.0000001,
                 "correlation must lie in [-1, 1]");
  rho = std::clamp(rho, -1.0, 1.0);

  const double s1 = std::sqrt(var1);
  const double s2 = std::sqrt(var2);
  // theta^2 = Var(X - Y)
  const double theta2 = std::max(0.0, var1 + var2 - 2.0 * rho * s1 * s2);
  const double theta = std::sqrt(theta2);

  ClarkMax out;
  // Degeneracy must be judged relative to the operand scales: perfectly
  // tracking operands leave a floating-point residue in theta2 of order
  // machine-epsilon * var, i.e. theta ~ sqrt(eps) * sigma ~ 1.5e-8 * sigma.
  const double scale = std::sqrt(std::max({var1, var2, 1e-300}));
  if (theta < 1e-7 * scale + 1e-15) {
    // X - Y is (numerically) deterministic: the max is simply the operand
    // with the larger mean.
    if (mean1 >= mean2) {
      out.mean = mean1;
      out.variance = var1;
      out.tightness = 1.0;
    } else {
      out.mean = mean2;
      out.variance = var2;
      out.tightness = 0.0;
    }
    return out;
  }

  const double alpha = (mean1 - mean2) / theta;
  const double phi = normal_pdf(alpha);
  const double Phi = normal_cdf(alpha);
  const double Phi_neg = normal_cdf(-alpha);

  out.tightness = Phi;
  out.mean = mean1 * Phi + mean2 * Phi_neg + theta * phi;
  const double second_moment = (var1 + mean1 * mean1) * Phi +
                               (var2 + mean2 * mean2) * Phi_neg +
                               (mean1 + mean2) * theta * phi;
  out.variance = std::max(0.0, second_moment - out.mean * out.mean);
  return out;
}

}  // namespace statleak
