/// \file health.hpp
/// \brief Numerical-health vocabulary: causes, policies, and the structured
///        error non-finite arithmetic raises.
///
/// A single poisoned sample — a NaN deviate from an extreme draw, an Inf
/// from a degenerate cell table — must never silently corrupt population
/// statistics or tree-sum totals. Every engine that evaluates samples
/// classifies non-finite results with this vocabulary and either fails
/// loudly (NumericalError, the default, preserving historical semantics
/// where all-finite runs are unchanged) or quarantines the sample
/// (recorded by slot and cause, excluded from statistics, surfaced as
/// `mc.quarantined*` counters in the run report). See docs/ROBUSTNESS.md.

#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace statleak {

/// What to do when a sample evaluates to a non-finite delay or leakage.
enum class HealthPolicy {
  kFail,        ///< throw NumericalError naming the slot and cause (default)
  kQuarantine,  ///< drop the sample, record slot + cause, keep running
};

/// Why a sample was rejected.
enum class HealthCause : std::uint8_t {
  kNonFiniteDelay = 1,
  kNonFiniteLeakage = 2,
  kNonFiniteBoth = 3,  ///< bitwise or of the two above
};

inline const char* to_string(HealthCause cause) {
  switch (cause) {
    case HealthCause::kNonFiniteDelay: return "non-finite delay";
    case HealthCause::kNonFiniteLeakage: return "non-finite leakage";
    case HealthCause::kNonFiniteBoth: return "non-finite delay and leakage";
  }
  return "unknown";
}

/// Classifies one sample's (delay, leakage) pair; 0 = healthy.
inline std::uint8_t classify_health(double delay_ps, double leakage_na) {
  std::uint8_t cause = 0;
  if (!std::isfinite(delay_ps)) {
    cause |= static_cast<std::uint8_t>(HealthCause::kNonFiniteDelay);
  }
  if (!std::isfinite(leakage_na)) {
    cause |= static_cast<std::uint8_t>(HealthCause::kNonFiniteLeakage);
  }
  return cause;
}

/// One quarantined Monte-Carlo sample: which slot, and why.
struct QuarantinedSample {
  std::uint64_t slot = 0;
  HealthCause cause = HealthCause::kNonFiniteBoth;
};

/// Thrown when non-finite arithmetic is detected under HealthPolicy::kFail
/// (or anywhere a non-finite value has no legitimate reading, e.g. a NaN
/// required time in STA). A subclass of statleak::Error so existing catch
/// sites keep working; the CLI maps it to the input-error exit code.
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Raises NumericalError for sample `slot`, naming the cause bits.
[[noreturn]] inline void throw_sample_health(std::uint64_t slot,
                                             std::uint8_t cause_bits) {
  throw NumericalError(
      "sample " + std::to_string(slot) + " produced " +
      to_string(static_cast<HealthCause>(cause_bits)) +
      " — rerun with the quarantine health policy to skip poisoned "
      "samples, or inspect the cell tables / variation model");
}

}  // namespace statleak
