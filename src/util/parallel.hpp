/// \file parallel.hpp
/// \brief Shard-based deterministic parallelism: ThreadPool + parallel_for.
///
/// Design rules, in service of reproducibility:
///
///   * No work stealing. [0, n) is split into one contiguous shard per
///     worker, assigned purely by worker index, so scheduling never
///     influences which worker computes which element.
///   * Callers write results by element index into storage they own; merged
///     output is therefore bit-identical for every thread count — the
///     property the Monte-Carlo reproducibility tests pin.
///   * The calling thread participates as worker 0. A pool of size 1 spawns
///     no threads and runs everything inline, so serial behaviour is the
///     exact degenerate case of parallel behaviour, not a separate code
///     path.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace statleak {

/// Resolves a thread-count knob: values >= 1 are taken as-is; 0 (and any
/// negative value) means std::thread::hardware_concurrency(), with a floor
/// of 1 when the hardware reports nothing.
int resolve_num_threads(int requested);

/// A fixed-size pool of long-lived workers. Construction is the only time
/// threads are spawned; each run() reuses them, which keeps per-call
/// overhead small enough for the optimizer's inner scoring loop.
class ThreadPool {
 public:
  /// A pool of resolve_num_threads(num_threads) workers *total*, counting
  /// the calling thread: ThreadPool(1) spawns nothing.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs task(worker) once per worker in [0, size()); the caller executes
  /// worker 0. Blocks until all workers are done. The first exception
  /// thrown by any worker is rethrown here (after everyone finished).
  void run(const std::function<void(int)>& task);

  /// Splits [0, n) into size() contiguous shards and invokes
  /// body(begin, end, worker) for every non-empty shard. Shard boundaries
  /// depend only on n and size(), never on timing.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, int)>& body);

 private:
  void worker_loop(int worker);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// One-shot convenience: sets up a transient pool (or runs inline when the
/// resolved thread count is 1 or n < 2) and shards [0, n) across it.
void parallel_for(
    int num_threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t, int)>& body);

}  // namespace statleak
