#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statleak {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  return mix64(x);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t counter) {
  // Weyl-step both inputs with distinct odd constants before mixing so that
  // (seed, counter) and (seed + 1, counter - 1)-style collisions cannot
  // alias, then finalize; mix64 is bijective, so distinct counters under one
  // seed always yield distinct stream seeds.
  return mix64(mix64(seed + 0x9E3779B97F4A7C15ull) ^
               (counter + 1) * 0xD1B54A32D192ED03ull);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  STATLEAK_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire's method: map a 64-bit draw into [0, n) via 128-bit multiply.
  const unsigned __int128 product =
      static_cast<unsigned __int128>((*this)()) * n;
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();  // avoid log(0)
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::split() {
  // Derive a child seed from two fresh outputs; xor with an odd constant so
  // the child stream differs even if outputs collide with the parent seed.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31) ^ 0xA5A5A5A5A5A5A5A5ull);
}

}  // namespace statleak
