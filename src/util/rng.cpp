#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace statleak {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  return mix64(x);
}

// Ziggurat layout constants for N = 256 layers over the standard normal
// density f(x) = exp(-x^2/2) (unnormalized): kTailStart is the right edge
// of the base strip and kStripArea the common area of every strip,
// including the tail mass (Marsaglia & Tsang 2000).
constexpr double kTailStart = 3.6541528853610088;
constexpr double kStripArea = 0.00492867323399011;

detail::ZigguratTables build_ziggurat() {
  detail::ZigguratTables z;
  const auto density = [](double x) { return std::exp(-0.5 * x * x); };
  // edge[i] descends from the base pseudo-width edge[0] = v/f(r) through
  // edge[1] = r to edge[256] = 0; each recursion step keeps strip areas
  // equal: v = edge[i] * (f(edge[i+1]) - f(edge[i])).
  z.edge[1] = kTailStart;
  z.edge[0] = kStripArea / density(kTailStart);
  for (int i = 1; i < 256; ++i) {
    z.edge[i + 1] =
        std::sqrt(-2.0 * std::log(kStripArea / z.edge[i] + density(z.edge[i])));
  }
  z.edge[256] = 0.0;
  for (int i = 0; i <= 256; ++i) z.fval[i] = density(z.edge[i]);
  for (int i = 0; i < 256; ++i) {
    z.layer[i].scale = z.edge[i] * 0x1.0p-53;
    // mantissa < accept  =>  mantissa * scale < edge[i+1]: the point lands
    // in the rectangle fully under the curve (floor keeps this sound; the
    // boundary mantissa goes to the slow path, which re-checks exactly).
    z.layer[i].accept =
        static_cast<std::uint64_t>(0x1.0p53 * z.edge[i + 1] / z.edge[i]);
  }
  return z;
}

}  // namespace

namespace detail {
const ZigguratTables kZiggurat = build_ziggurat();
}  // namespace detail

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t counter) {
  // Weyl-step both inputs with distinct odd constants before mixing so that
  // (seed, counter) and (seed + 1, counter - 1)-style collisions cannot
  // alias, then finalize; mix64 is bijective, so distinct counters under one
  // seed always yield distinct stream seeds.
  return mix64(mix64(seed + 0x9E3779B97F4A7C15ull) ^
               (counter + 1) * 0xD1B54A32D192ED03ull);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  STATLEAK_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire's method: map a 64-bit draw into [0, n) via 128-bit multiply.
  const unsigned __int128 product =
      static_cast<unsigned __int128>((*this)()) * n;
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::normal_slow_(std::uint64_t u) {
  const detail::ZigguratTables& z = detail::kZiggurat;
  for (;;) {
    const std::size_t i = u & 255u;
    const double x = static_cast<double>(u >> 11) * z.layer[i].scale;
    if (x < z.edge[i + 1]) {
      // The integer fast-accept threshold is floored, so the exact boundary
      // mantissa lands here; it is still inside the sub-rectangle.
      return apply_sign_(x, u);
    }
    if (i == 0) {
      // Base strip beyond r: Marsaglia's exact tail sampler. Guard the
      // uniforms away from 0 to keep log() finite.
      for (;;) {
        double u1 = uniform();
        while (u1 <= 0.0) u1 = uniform();
        double u2 = uniform();
        while (u2 <= 0.0) u2 = uniform();
        const double ex = -std::log(u1) / kTailStart;
        const double ey = -std::log(u2);
        if (ey + ey > ex * ex) return apply_sign_(kTailStart + ex, u);
      }
    }
    // Wedge: exact accept test against the density, with a fresh uniform
    // for the ordinate (Doornik's correction — never reuse mantissa bits).
    const double y = z.fval[i] + uniform() * (z.fval[i + 1] - z.fval[i]);
    if (y < std::exp(-0.5 * x * x)) return apply_sign_(x, u);
    u = (*this)();  // rejected: redraw layer, sign and mantissa together
  }
}

Rng Rng::split() {
  // Derive a child seed from two fresh outputs; xor with an odd constant so
  // the child stream differs even if outputs collide with the parent seed.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl_(b, 31) ^ 0xA5A5A5A5A5A5A5A5ull);
}

}  // namespace statleak
