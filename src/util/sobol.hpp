/// \file sobol.hpp
/// \brief Scrambled-Sobol quasi-Monte-Carlo point set with random access.
///
/// The Monte-Carlo engines sample the *global* (inter-die) variation
/// dimensions with far more leverage than the per-gate local draws: the
/// inter-die components are shared by every gate, so they dominate the
/// variance of full-chip totals. Replacing the pseudo-random draws of those
/// few dimensions with a low-discrepancy sequence cuts the variance of
/// mean/quantile estimates without touching the (already variance-averaged)
/// local draws — the classic "effective dimension" argument for hybrid
/// QMC/MC sampling.
///
/// This header provides a digital (t, s)-sequence in base 2 (Sobol')
/// evaluated by *random access*: point `index` of dimension `dim` is a pure
/// function of (seed, index, dim), exactly like the counter-based RNG
/// streams of util/rng.hpp. That gives the QMC path the same determinism
/// contract the engines already rely on:
///
///   - thread-invariant: sample i's point never depends on evaluation order;
///   - resumable: a checkpoint only needs the slot index to regenerate the
///     point bit-identically;
///   - prefix-preserving: the first N points of an M-point run (M > N) are
///     exactly the N-point run's points.
///
/// Scrambling is Owen-style nested uniform scrambling implemented with the
/// Laine–Karras hash construction (as refined by Burley, "Practical
/// hash-based Owen scrambling", JCGT 2020): the output digits are permuted
/// by a per-dimension keyed hash acting on the bit-reversed coordinate,
/// which applies an (approximately) independent random permutation at every
/// node of the binary digit tree. Owen scrambling preserves the elementary
/// intervals of the net — the first 2^k points of any dimension still
/// stratify [0,1) into 2^k equal bins with exactly one point each (pinned
/// by tests/sobol_test.cpp) — while decorrelating the points across
/// replications, so averaging runs with different seeds gives an unbiased
/// estimate with a measurable variance.
///
/// Direction numbers cover kSobolMaxDims dimensions (degree-<=6 primitive
/// polynomials with Joe–Kuo initial values); the engines use two (global
/// dL, global dVth). 32 scrambled digits are dithered with 21 further
/// seeded random bits so uniforms carry full 53-bit resolution and never
/// return exactly 0 or 1 (the inverse normal CDF must stay finite).

#pragma once

#include <array>
#include <cstdint>

namespace statleak {

inline constexpr unsigned kSobolMaxDims = 16;

/// Unscrambled 32-digit Sobol' coordinate of point `index` in dimension
/// `dim` (binary-digit construction, no Gray code — random access). The
/// implicit binary point sits before bit 31: value = result * 2^-32.
/// Requires dim < kSobolMaxDims and index < 2^32; throws statleak::Error
/// otherwise.
std::uint32_t sobol_raw32(std::uint64_t index, unsigned dim);

/// Hash-based Owen scramble of one 32-digit net coordinate under `key`.
/// Deterministic in (x, key); key 0 is a valid (non-identity) scramble.
std::uint32_t owen_scramble32(std::uint32_t x, std::uint32_t key);

/// A seeded, scrambled Sobol' sequence over kSobolMaxDims dimensions.
/// Copyable and cheap to construct; safe to share across threads (all
/// methods are const and stateless beyond the keys).
class SobolSequence {
 public:
  explicit SobolSequence(std::uint64_t seed);

  std::uint64_t seed() const { return seed_; }

  /// Scrambled point `index` of dimension `dim`, mapped into the *open*
  /// interval (0, 1) with 53-bit resolution (scrambled digits above a
  /// seeded sub-2^-32 dither).
  double uniform(std::uint64_t index, unsigned dim) const;

  /// Standard normal deviate Phi^-1(uniform(index, dim)). Always finite.
  double normal(std::uint64_t index, unsigned dim) const;

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint32_t, kSobolMaxDims> keys_{};  ///< per-dim scramble keys
};

}  // namespace statleak
