#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace statleak {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  STATLEAK_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add(std::string cell) {
  STATLEAK_CHECK(!rows_.empty(), "call begin_row before add");
  STATLEAK_CHECK(rows_.back().size() < header_.size(),
                 "row has more cells than header columns");
  rows_.back().push_back(std::move(cell));
}

void Table::add(double value, int precision) {
  add(format_fixed(value, precision));
}

void Table::add_int(long long value) { add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ',';
      if (c < row.size()) emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_si(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix prefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
  const double mag = std::fabs(value);
  for (const auto& p : prefixes) {
    if (mag >= p.scale || p.scale == 1e-15) {
      return format_fixed(value / p.scale, precision) + " " + p.name + unit;
    }
  }
  return format_fixed(value, precision) + " " + unit;
}

}  // namespace statleak
