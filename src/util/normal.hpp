/// \file normal.hpp
/// \brief Standard normal distribution functions: pdf, cdf, inverse cdf.
///
/// The SSTA engine (Clark's MAX), yield computation P(D <= T), and lognormal
/// percentile queries all reduce to these three functions. The inverse CDF
/// uses Acklam's rational approximation refined with one Halley step, giving
/// ~1e-15 relative accuracy — more than enough to resolve 99.9% yield targets.

#pragma once

namespace statleak {

/// Standard normal probability density phi(x).
double normal_pdf(double x);

/// Standard normal cumulative distribution Phi(x), accurate in both tails
/// (implemented with erfc to avoid cancellation for x << 0).
double normal_cdf(double x);

/// Inverse standard normal CDF. Requires p in (0, 1); throws otherwise.
double normal_inverse_cdf(double p);

/// P(X <= x) for X ~ N(mean, stddev^2). stddev == 0 degenerates to a step.
double normal_cdf(double x, double mean, double stddev);

/// Quantile of N(mean, stddev^2).
double normal_quantile(double p, double mean, double stddev);

}  // namespace statleak
