/// \file error.hpp
/// \brief Error handling primitives shared across all statleak libraries.
///
/// The library reports contract violations and malformed inputs by throwing
/// statleak::Error (a std::runtime_error). Hot inner loops use the
/// STATLEAK_ASSERT macro, which compiles to nothing in NDEBUG builds.
///
/// Cost discipline: the failure path may allocate (it is about to unwind
/// anyway), but the success path of STATLEAK_CHECK must not — the message
/// expression is only evaluated when the condition is false, and
/// detail::throw_error assembles the final string with one reserved
/// append chain (no std::ostringstream, no locale machinery).

#pragma once

#include <charconv>
#include <stdexcept>
#include <string>
#include <string_view>

namespace statleak {

/// Exception thrown for malformed inputs, contract violations, and
/// unsatisfiable requests (e.g. a timing constraint below the minimum
/// achievable delay). The const char* overload avoids constructing an
/// intermediate std::string when the site's message is a literal.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  explicit Error(const char* what) : std::runtime_error(what) {}
};

namespace detail {

/// Assembles "file:line: check failed: <cond> — <msg>" with a single
/// reserved allocation and throws. `msg` binds string literals,
/// std::string lvalues and temporaries alike via string_view (the
/// temporary outlives the full throw expression).
[[noreturn]] inline void throw_error(std::string_view file, int line,
                                     std::string_view cond,
                                     std::string_view msg) {
  char line_buf[16];
  const auto line_end =
      std::to_chars(line_buf, line_buf + sizeof(line_buf), line).ptr;
  const std::string_view line_text(line_buf,
                                   static_cast<std::size_t>(line_end -
                                                            line_buf));
  constexpr std::string_view kPrefix = "check failed: ";
  constexpr std::string_view kSep = " — ";  // em dash
  std::string out;
  out.reserve(file.size() + 1 + line_text.size() + 2 + kPrefix.size() +
              cond.size() + kSep.size() + msg.size());
  out.append(file);
  out += ':';
  out.append(line_text);
  out += ':';
  out += ' ';
  out.append(kPrefix);
  out.append(cond);
  out.append(kSep);
  out.append(msg);
  throw Error(out);
}

}  // namespace detail

/// Always-on check: throws statleak::Error with file/line context when the
/// condition is false. Use for input validation on public API boundaries.
/// The message expression is evaluated lazily — only on failure — so call
/// sites may concatenate context strings freely without paying on the
/// success path (pinned by util_test).
#define STATLEAK_CHECK(cond, msg)                                   \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::statleak::detail::throw_error(__FILE__, __LINE__, #cond,    \
                                      (msg));                       \
    }                                                               \
  } while (false)

/// Debug-only assertion for internal invariants on hot paths.
#ifdef NDEBUG
#define STATLEAK_ASSERT(cond, msg) ((void)0)
#else
#define STATLEAK_ASSERT(cond, msg) STATLEAK_CHECK(cond, msg)
#endif

}  // namespace statleak
