/// \file error.hpp
/// \brief Error handling primitives shared across all statleak libraries.
///
/// The library reports contract violations and malformed inputs by throwing
/// statleak::Error (a std::runtime_error). Hot inner loops use the
/// STATLEAK_ASSERT macro, which compiles to nothing in NDEBUG builds.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace statleak {

/// Exception thrown for malformed inputs, contract violations, and
/// unsatisfiable requests (e.g. a timing constraint below the minimum
/// achievable delay).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(std::string_view file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

/// Always-on check: throws statleak::Error with file/line context when the
/// condition is false. Use for input validation on public API boundaries.
#define STATLEAK_CHECK(cond, msg)                                   \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::statleak::detail::throw_error(__FILE__, __LINE__,           \
                                      std::string("check failed: " \
                                                  #cond " — ") +    \
                                          (msg));                   \
    }                                                               \
  } while (false)

/// Debug-only assertion for internal invariants on hot paths.
#ifdef NDEBUG
#define STATLEAK_ASSERT(cond, msg) ((void)0)
#else
#define STATLEAK_ASSERT(cond, msg) STATLEAK_CHECK(cond, msg)
#endif

}  // namespace statleak
