/// \file stats.hpp
/// \brief Streaming and batch descriptive statistics.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace statleak {

/// Numerically stable streaming mean/variance accumulator (Welford), also
/// tracking min/max. Suitable for millions of Monte-Carlo samples.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample set, as reported in experiment tables.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Linear-interpolated quantile of an unsorted sample (copies + sorts).
/// q must be in [0, 1]; throws on empty data.
double quantile(std::span<const double> data, double q);

/// Quantile of data already sorted ascending (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

/// Full summary (one sort, many quantiles).
SampleSummary summarize(std::span<const double> data);

/// Pearson correlation coefficient; throws if sizes differ or n < 2.
double correlation(std::span<const double> x, std::span<const double> y);

/// Mean of a sample; throws on empty data.
double mean_of(std::span<const double> data);

/// Unbiased sample standard deviation; 0 for n < 2.
double stddev_of(std::span<const double> data);

/// Equal-width histogram over [lo, hi]; values outside are clamped to the
/// boundary bins. Used by the distribution-figure benches.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  Histogram(double lo_, double hi_, std::size_t nbins);
  void add(double x);
  std::size_t total() const;
  /// Bin center of bin i.
  double center(std::size_t i) const;
  /// Normalized density of bin i (integrates to ~1 over [lo, hi]).
  double density(std::size_t i) const;
};

}  // namespace statleak
