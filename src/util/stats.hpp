/// \file stats.hpp
/// \brief Streaming and batch descriptive statistics.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace statleak {

/// Numerically stable streaming mean/variance accumulator (Welford), also
/// tracking min/max. Suitable for millions of Monte-Carlo samples.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample set, as reported in experiment tables.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Linear-interpolated quantile of an unsorted sample (copies + sorts).
/// q must be in [0, 1]; throws on empty data.
double quantile(std::span<const double> data, double q);

/// Quantile of data already sorted ascending (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

/// Full summary (one sort, many quantiles).
SampleSummary summarize(std::span<const double> data);

/// Pearson correlation coefficient; throws if sizes differ or n < 2.
double correlation(std::span<const double> x, std::span<const double> y);

/// Mean of a sample; throws on empty data.
double mean_of(std::span<const double> data);

/// Unbiased sample standard deviation; 0 for n < 2.
double stddev_of(std::span<const double> data);

// --- weighted estimators (importance sampling) -----------------------------
// The importance-sampling Monte-Carlo mode attaches a positive likelihood
// ratio w_i to every sample; all estimates become self-normalized weighted
// versions of their plain counterparts. Every function below treats an
// equal-weight input as the plain estimator (up to the documented quantile
// position convention) and throws statleak::Error on size mismatches,
// empty data, non-positive total weight, or negative weights.

/// Self-normalized weighted mean: sum(w_i x_i) / sum(w_i).
double weighted_mean(std::span<const double> values,
                     std::span<const double> weights);

/// Weighted quantile by linear interpolation of the weighted empirical CDF
/// evaluated at the midpoint positions p_i = (C_i - w_i/2) / W (Hyndman &
/// Fan type "mid-distribution"); q outside the covered range clamps to the
/// extreme order statistics. With equal weights this reproduces the
/// midpoint-position quantile, which converges to quantile() as n grows.
double weighted_quantile(std::span<const double> values,
                         std::span<const double> weights, double q);

/// A probability estimate with its standard error.
struct FractionEstimate {
  double value = 0.0;
  double std_error = 0.0;
};

/// Importance-sampled fraction of values <= threshold. The weights are
/// exact likelihood ratios (E[w] = 1), so the *unnormalized* estimator
/// sum(w_i [x_i <= t]) / n is unbiased; the estimator is evaluated on
/// whichever side of the threshold has the smaller empirical variance and
/// complemented if needed. This matters: a tail-directed shift makes the
/// rare side's summand tiny-weighted and precise, while the self-normalized
/// form would re-import the weight-sum noise of the bulk side and forfeit
/// most of the variance reduction. Equal weights reduce to the plain
/// fraction either way. The result is clamped to [0, 1].
FractionEstimate weighted_fraction_below_est(std::span<const double> values,
                                             std::span<const double> weights,
                                             double threshold);

/// Value-only convenience wrapper around weighted_fraction_below_est().
double weighted_fraction_below(std::span<const double> values,
                               std::span<const double> weights,
                               double threshold);

/// Kish effective sample size (sum w)^2 / sum(w^2): the number of plain
/// samples whose estimator variance the weighted set is worth. Equals n for
/// equal weights; collapses toward 1 as the weights degenerate.
double effective_sample_size(std::span<const double> weights);

/// Half-width of the normal-approximation confidence interval on the mean:
/// z * stddev / sqrt(n), with z = Phi^-1((1 + confidence) / 2). 0 for
/// n < 2; throws on empty data or confidence outside (0, 1).
double mean_ci_halfwidth(std::span<const double> data,
                         double confidence = 0.95);

/// Half-width of the CI on a self-normalized weighted mean, via the
/// standard delta-method variance  sum(w_i^2 (x_i - m)^2) / (sum w)^2.
/// Falls back to mean_ci_halfwidth semantics for equal weights.
double weighted_mean_ci_halfwidth(std::span<const double> values,
                                  std::span<const double> weights,
                                  double confidence = 0.95);

/// Equal-width histogram over [lo, hi]; values outside are clamped to the
/// boundary bins. Used by the distribution-figure benches.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  Histogram(double lo_, double hi_, std::size_t nbins);
  void add(double x);
  std::size_t total() const;
  /// Bin center of bin i.
  double center(std::size_t i) const;
  /// Normalized density of bin i (integrates to ~1 over [lo, hi]).
  double density(std::size_t i) const;
};

}  // namespace statleak
