/// \file tree_sum.hpp
/// \brief Fixed-shape pairwise summation with O(log n) single-slot updates.
///
/// A TreeSum holds n slots in the leaves of a perfect binary tree (padded
/// with zeros to the next power of two) and keeps every internal node equal
/// to left + right. Because the reduction shape is a function of n alone,
/// the root total is *bit-identical* however the leaves were filled: a bulk
/// rebuild(), a sequence of set() updates, or any interleaving of the two
/// all land on the same double. That is the property the incremental
/// leakage analyzer needs — its running totals must match a from-scratch
/// analyzer exactly, so a differential test can assert equality instead of
/// tolerances. (A plain running sum updated with `total += new - old` drifts
/// away from the scratch sum in the last ulps.)
///
/// Pairwise summation also carries an O(log n) error bound versus the O(n)
/// bound of sequential accumulation — a free numerical upgrade.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace statleak {

class TreeSum {
 public:
  TreeSum() = default;
  /// A tree of `slots` leaves, all zero.
  explicit TreeSum(std::size_t slots);

  /// Discards all state and resizes to `slots` zeroed leaves.
  void reset(std::size_t slots);

  std::size_t size() const { return slots_; }

  /// Leaf value of one slot.
  double get(std::size_t i) const;

  /// Sets one slot and recomputes the root path. O(log n).
  void set(std::size_t i, double value);

  /// Bulk-assigns all slots (values.size() == size()) and recomputes the
  /// tree bottom-up. O(n); the resulting total is bit-identical to setting
  /// the same values one by one.
  void assign(std::span<const double> values);

  /// The tree total. O(1).
  double total() const;

  /// What total() would return if slot `i` held `value` — without mutating
  /// anything. O(log n), bit-identical to set(i, value) followed by
  /// total().
  double total_with(std::size_t i, double value) const;

 private:
  std::size_t slots_ = 0;   ///< user-visible slot count
  std::size_t leaves_ = 0;  ///< padded power-of-two leaf count
  /// Heap layout: nodes_[1] is the root, children of k are 2k and 2k+1,
  /// leaves occupy [leaves_, 2 * leaves_). nodes_[0] is unused.
  std::vector<double> nodes_;
};

}  // namespace statleak
