#include "util/sobol.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/normal.hpp"
#include "util/rng.hpp"

namespace statleak {

namespace {

/// Primitive polynomial + Joe–Kuo initial direction values for dimensions
/// 1..15 (dimension 0 is the van der Corput sequence, whose direction
/// numbers are the plain powers of two). `s` is the polynomial degree, `a`
/// encodes the middle coefficients, `m` the first s initial values (odd,
/// m_k < 2^k). From the new-joe-kuo-6 table (Joe & Kuo, ACM TOMS 2003).
struct DimSpec {
  unsigned s;
  std::uint32_t a;
  std::uint32_t m[6];
};

constexpr DimSpec kDims[kSobolMaxDims - 1] = {
    {1, 0, {1}},
    {2, 1, {1, 3}},
    {3, 1, {1, 3, 1}},
    {3, 2, {1, 1, 1}},
    {4, 1, {1, 1, 3, 3}},
    {4, 4, {1, 3, 5, 13}},
    {5, 2, {1, 1, 5, 5, 17}},
    {5, 4, {1, 1, 5, 5, 5}},
    {5, 7, {1, 1, 7, 11, 19}},
    {5, 11, {1, 1, 5, 1, 1}},
    {5, 13, {1, 1, 1, 3, 11}},
    {5, 14, {1, 3, 5, 5, 31}},
    {6, 1, {1, 3, 3, 9, 7, 49}},
    {6, 13, {1, 1, 1, 15, 21, 21}},
    {6, 16, {1, 3, 1, 13, 27, 49}},
};

/// All 32 direction numbers of every dimension, expanded once at static
/// initialization from the m-value recurrence
///   m_k = 2 a_1 m_{k-1} ^ 4 a_2 m_{k-2} ^ ... ^ 2^s m_{k-s} ^ m_{k-s}.
/// v[dim][j] carries m_{j+1} << (31 - j): digit j of the point (counting
/// from the binary point) lives in bit (31 - j).
struct DirectionTable {
  std::uint32_t v[kSobolMaxDims][32];

  DirectionTable() {
    for (unsigned j = 0; j < 32; ++j) v[0][j] = 1u << (31 - j);
    for (unsigned dim = 1; dim < kSobolMaxDims; ++dim) {
      const DimSpec& d = kDims[dim - 1];
      std::uint32_t m[32];
      for (unsigned k = 0; k < d.s; ++k) m[k] = d.m[k];
      for (unsigned k = d.s; k < 32; ++k) {
        std::uint32_t mk = m[k - d.s] ^ (m[k - d.s] << d.s);
        for (unsigned i = 1; i < d.s; ++i) {
          if ((d.a >> (d.s - 1 - i)) & 1u) mk ^= m[k - i] << i;
        }
        m[k] = mk;
      }
      for (unsigned j = 0; j < 32; ++j) v[dim][j] = m[j] << (31 - j);
    }
  }
};

const DirectionTable kDirections;

/// Reverses the 32-bit digit string (digit j <-> digit 31-j).
std::uint32_t reverse_bits32(std::uint32_t x) {
  x = (x << 16) | (x >> 16);
  x = ((x & 0x00FF00FFu) << 8) | ((x & 0xFF00FF00u) >> 8);
  x = ((x & 0x0F0F0F0Fu) << 4) | ((x & 0xF0F0F0F0u) >> 4);
  x = ((x & 0x33333333u) << 2) | ((x & 0xCCCCCCCCu) >> 2);
  x = ((x & 0x55555555u) << 1) | ((x & 0xAAAAAAAAu) >> 1);
  return x;
}

}  // namespace

std::uint32_t sobol_raw32(std::uint64_t index, unsigned dim) {
  STATLEAK_CHECK(dim < kSobolMaxDims, "Sobol dimension out of range");
  STATLEAK_CHECK(index >> 32 == 0, "Sobol index needs more than 32 digits");
  std::uint32_t x = 0;
  auto bits = static_cast<std::uint32_t>(index);
  const std::uint32_t* v = kDirections.v[dim];
  while (bits != 0) {
    const int j = std::countr_zero(bits);
    x ^= v[j];
    bits &= bits - 1;  // clear lowest set bit
  }
  return x;
}

std::uint32_t owen_scramble32(std::uint32_t x, std::uint32_t key) {
  // Laine–Karras style hash acting on the reversed digit string: after the
  // reversal, digit d of the point is bit d of the word, and every
  // operation below only propagates information from lower to higher bits —
  // i.e. each digit's flip depends only on the more significant digits of
  // the point (its ancestors in the digit tree) and the key, which is
  // exactly the structure of an Owen scramble. Constants from Burley 2020.
  x = reverse_bits32(x);
  x += key;
  x ^= x * 0x6c50b47cu;
  x ^= x * 0xb82f1e52u;
  x ^= x * 0xc7afe638u;
  x ^= x * 0x8d22f6e6u;
  return reverse_bits32(x);
}

SobolSequence::SobolSequence(std::uint64_t seed) : seed_(seed) {
  // Per-dimension scramble keys from the same counter-based derivation the
  // RNG streams use; the tag keeps the key space disjoint from sample
  // streams under the same master seed.
  constexpr std::uint64_t kTag = 0x534F424F4C514D43ull;  // "SOBOLQMC"
  for (unsigned dim = 0; dim < kSobolMaxDims; ++dim) {
    keys_[dim] = static_cast<std::uint32_t>(
        stream_seed(seed ^ kTag, dim) >> 32);
  }
}

double SobolSequence::uniform(std::uint64_t index, unsigned dim) const {
  STATLEAK_CHECK(dim < kSobolMaxDims, "Sobol dimension out of range");
  const std::uint32_t hi =
      owen_scramble32(sobol_raw32(index, dim), keys_[dim]);
  // 21 dither bits below the scrambled digits: full 53-bit mantissas, and
  // the +1 offset keeps the value strictly inside (0, 1).
  const std::uint64_t lo =
      mix64(stream_seed(seed_ ^ (0xD1D4ull << 32 | dim), index)) &
      ((1ull << 21) - 1);
  const std::uint64_t mantissa = (static_cast<std::uint64_t>(hi) << 21) | lo;
  return (static_cast<double>(mantissa) + 1.0) * 0x1.0p-53;
}

double SobolSequence::normal(std::uint64_t index, unsigned dim) const {
  return normal_inverse_cdf(uniform(index, dim));
}

}  // namespace statleak
