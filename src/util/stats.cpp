#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  STATLEAK_CHECK(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  STATLEAK_CHECK(count_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  STATLEAK_CHECK(count_ > 0, "max of empty accumulator");
  return max_;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  STATLEAK_CHECK(!sorted.empty(), "quantile of empty data");
  STATLEAK_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> data, double q) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

SampleSummary summarize(std::span<const double> data) {
  STATLEAK_CHECK(!data.empty(), "summarize of empty data");
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  RunningStats rs;
  for (double x : copy) rs.add(x);
  SampleSummary s;
  s.count = data.size();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = copy.front();
  s.max = copy.back();
  s.p50 = quantile_sorted(copy, 0.50);
  s.p95 = quantile_sorted(copy, 0.95);
  s.p99 = quantile_sorted(copy, 0.99);
  return s;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  STATLEAK_CHECK(x.size() == y.size(), "correlation: size mismatch");
  STATLEAK_CHECK(x.size() >= 2, "correlation needs at least two points");
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom == 0.0) return 0.0;
  return sxy / denom;
}

double mean_of(std::span<const double> data) {
  STATLEAK_CHECK(!data.empty(), "mean of empty data");
  double sum = 0.0;
  for (double x : data) sum += x;
  return sum / static_cast<double>(data.size());
}

double stddev_of(std::span<const double> data) {
  if (data.size() < 2) return 0.0;
  RunningStats rs;
  for (double x : data) rs.add(x);
  return rs.stddev();
}

namespace {

/// Shared validation for the weighted estimators. Returns sum(w).
double check_weights(std::span<const double> values,
                     std::span<const double> weights) {
  STATLEAK_CHECK(!values.empty(), "weighted estimator of empty data");
  STATLEAK_CHECK(values.size() == weights.size(),
                 "weighted estimator: value/weight size mismatch");
  double total = 0.0;
  for (double w : weights) {
    STATLEAK_CHECK(w >= 0.0, "weighted estimator: negative weight");
    total += w;
  }
  STATLEAK_CHECK(total > 0.0, "weighted estimator: total weight is zero");
  return total;
}

}  // namespace

double weighted_mean(std::span<const double> values,
                     std::span<const double> weights) {
  const double total = check_weights(values, weights);
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += weights[i] * values[i];
  }
  return sum / total;
}

double weighted_quantile(std::span<const double> values,
                         std::span<const double> weights, double q) {
  const double total = check_weights(values, weights);
  STATLEAK_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  // Argsort by value; ties keep index order, so the result is independent
  // of the caller's sample ordering only up to tie grouping — fine, tied
  // values interpolate to the same number.
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  // Midpoint positions of the weighted empirical CDF. Zero-weight samples
  // are skipped outright: they carry no mass, so they must neither anchor
  // an interpolation segment nor win the extreme clamps.
  const double target = q * total;
  double cum = 0.0;
  double prev_pos = -1.0;  // sentinel: no positive-weight sample yet
  double prev_val = 0.0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const double w = weights[order[k]];
    if (w == 0.0) continue;
    const double pos = cum + 0.5 * w;  // midpoint of this sample's mass
    const double val = values[order[k]];
    if (target <= pos) {
      if (prev_pos < 0.0) return val;  // clamp below the first midpoint
      const double frac = (target - prev_pos) / (pos - prev_pos);
      return prev_val + frac * (val - prev_val);
    }
    cum += w;
    prev_pos = pos;
    prev_val = val;
  }
  return prev_val;  // clamp above the last midpoint (total > 0 => set)
}

FractionEstimate weighted_fraction_below_est(std::span<const double> values,
                                             std::span<const double> weights,
                                             double threshold) {
  (void)check_weights(values, weights);
  const auto n = static_cast<double>(values.size());
  double sum_b = 0.0;   // weight mass below the threshold
  double sum2_b = 0.0;  // sum of squared below-side summands
  double sum_a = 0.0;
  double sum2_a = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double w = weights[i];
    if (values[i] <= threshold) {
      sum_b += w;
      sum2_b += w * w;
    } else {
      sum_a += w;
      sum2_a += w * w;
    }
  }
  const double pb = sum_b / n;
  const double pa = sum_a / n;
  // Variance of the unnormalized mean estimator on each side; estimate
  // from whichever side the weights make quieter.
  const double var_b = std::max(0.0, sum2_b / n - pb * pb) / n;
  const double var_a = std::max(0.0, sum2_a / n - pa * pa) / n;
  FractionEstimate est;
  if (var_b <= var_a) {
    est.value = pb;
    est.std_error = std::sqrt(var_b);
  } else {
    est.value = 1.0 - pa;
    est.std_error = std::sqrt(var_a);
  }
  est.value = std::min(1.0, std::max(0.0, est.value));
  return est;
}

double weighted_fraction_below(std::span<const double> values,
                               std::span<const double> weights,
                               double threshold) {
  return weighted_fraction_below_est(values, weights, threshold).value;
}

double effective_sample_size(std::span<const double> weights) {
  STATLEAK_CHECK(!weights.empty(), "effective sample size of empty weights");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double w : weights) {
    STATLEAK_CHECK(w >= 0.0, "effective sample size: negative weight");
    sum += w;
    sum_sq += w * w;
  }
  STATLEAK_CHECK(sum_sq > 0.0, "effective sample size: all weights zero");
  return sum * sum / sum_sq;
}

namespace {

double ci_z(double confidence) {
  STATLEAK_CHECK(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0, 1)");
  return normal_inverse_cdf(0.5 * (1.0 + confidence));
}

}  // namespace

double mean_ci_halfwidth(std::span<const double> data, double confidence) {
  STATLEAK_CHECK(!data.empty(), "confidence interval of empty data");
  const double z = ci_z(confidence);
  if (data.size() < 2) return 0.0;
  return z * stddev_of(data) / std::sqrt(static_cast<double>(data.size()));
}

double weighted_mean_ci_halfwidth(std::span<const double> values,
                                  std::span<const double> weights,
                                  double confidence) {
  const double total = check_weights(values, weights);
  const double z = ci_z(confidence);
  if (values.size() < 2) return 0.0;
  const double m = weighted_mean(values, weights);
  double s = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - m;
    s += weights[i] * weights[i] * d * d;
  }
  return z * std::sqrt(s) / total;
}

Histogram::Histogram(double lo_, double hi_, std::size_t nbins)
    : lo(lo_), hi(hi_), bins(nbins, 0) {
  STATLEAK_CHECK(nbins > 0, "histogram needs at least one bin");
  STATLEAK_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo) / (hi - lo);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins.size()) - 1);
  ++bins[static_cast<std::size_t>(idx)];
}

std::size_t Histogram::total() const {
  std::size_t n = 0;
  for (auto b : bins) n += b;
  return n;
}

double Histogram::center(std::size_t i) const {
  STATLEAK_CHECK(i < bins.size(), "histogram bin out of range");
  const double width = (hi - lo) / static_cast<double>(bins.size());
  return lo + (static_cast<double>(i) + 0.5) * width;
}

double Histogram::density(std::size_t i) const {
  STATLEAK_CHECK(i < bins.size(), "histogram bin out of range");
  const std::size_t n = total();
  if (n == 0) return 0.0;
  const double width = (hi - lo) / static_cast<double>(bins.size());
  return static_cast<double>(bins[i]) / (static_cast<double>(n) * width);
}

}  // namespace statleak
