#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace statleak {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  STATLEAK_CHECK(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  STATLEAK_CHECK(count_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  STATLEAK_CHECK(count_ > 0, "max of empty accumulator");
  return max_;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  STATLEAK_CHECK(!sorted.empty(), "quantile of empty data");
  STATLEAK_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> data, double q) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

SampleSummary summarize(std::span<const double> data) {
  STATLEAK_CHECK(!data.empty(), "summarize of empty data");
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  RunningStats rs;
  for (double x : copy) rs.add(x);
  SampleSummary s;
  s.count = data.size();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = copy.front();
  s.max = copy.back();
  s.p50 = quantile_sorted(copy, 0.50);
  s.p95 = quantile_sorted(copy, 0.95);
  s.p99 = quantile_sorted(copy, 0.99);
  return s;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  STATLEAK_CHECK(x.size() == y.size(), "correlation: size mismatch");
  STATLEAK_CHECK(x.size() >= 2, "correlation needs at least two points");
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom == 0.0) return 0.0;
  return sxy / denom;
}

double mean_of(std::span<const double> data) {
  STATLEAK_CHECK(!data.empty(), "mean of empty data");
  double sum = 0.0;
  for (double x : data) sum += x;
  return sum / static_cast<double>(data.size());
}

double stddev_of(std::span<const double> data) {
  if (data.size() < 2) return 0.0;
  RunningStats rs;
  for (double x : data) rs.add(x);
  return rs.stddev();
}

Histogram::Histogram(double lo_, double hi_, std::size_t nbins)
    : lo(lo_), hi(hi_), bins(nbins, 0) {
  STATLEAK_CHECK(nbins > 0, "histogram needs at least one bin");
  STATLEAK_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo) / (hi - lo);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins.size()) - 1);
  ++bins[static_cast<std::size_t>(idx)];
}

std::size_t Histogram::total() const {
  std::size_t n = 0;
  for (auto b : bins) n += b;
  return n;
}

double Histogram::center(std::size_t i) const {
  STATLEAK_CHECK(i < bins.size(), "histogram bin out of range");
  const double width = (hi - lo) / static_cast<double>(bins.size());
  return lo + (static_cast<double>(i) + 0.5) * width;
}

double Histogram::density(std::size_t i) const {
  STATLEAK_CHECK(i < bins.size(), "histogram bin out of range");
  const std::size_t n = total();
  if (n == 0) return 0.0;
  const double width = (hi - lo) / static_cast<double>(bins.size());
  return static_cast<double>(bins[i]) / (static_cast<double>(n) * width);
}

}  // namespace statleak
