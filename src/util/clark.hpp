/// \file clark.hpp
/// \brief Clark's moment matching for the maximum of two correlated Gaussians.
///
/// C. E. Clark, "The greatest of a finite set of random variables,"
/// Operations Research, 1961 — the workhorse of block-based SSTA. Given
/// X ~ N(m1, s1^2), Y ~ N(m2, s2^2) with correlation rho, computes the first
/// two moments of max(X, Y) and the tightness probability P(X >= Y).

#pragma once

namespace statleak {

/// Moments of max(X, Y) plus the probability that X dominates.
struct ClarkMax {
  double mean = 0.0;
  double variance = 0.0;
  /// P(X >= Y): the probability that the first operand is the larger one.
  /// SSTA uses this to blend sensitivity coefficients of the two operands.
  double tightness = 1.0;
};

/// Computes Clark's approximation of max(X, Y).
/// Handles the degenerate theta == 0 case (perfectly tracking operands) by
/// selecting the operand with the larger mean. rho must be in [-1, 1].
ClarkMax clark_max(double mean1, double var1, double mean2, double var2,
                   double rho);

}  // namespace statleak
