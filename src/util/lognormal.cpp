#include "util/lognormal.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

double Lognormal::mean() const { return std::exp(mu + 0.5 * sigma2); }

double Lognormal::variance() const {
  return (std::exp(sigma2) - 1.0) * std::exp(2.0 * mu + sigma2);
}

double Lognormal::stddev() const { return std::sqrt(variance()); }

double Lognormal::median() const { return std::exp(mu); }

double Lognormal::quantile(double p) const {
  return quantile_z(normal_inverse_cdf(p));
}

double Lognormal::quantile_z(double z) const {
  return std::exp(mu + std::sqrt(sigma2) * z);
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (sigma2 <= 0.0) return std::log(x) >= mu ? 1.0 : 0.0;
  return normal_cdf((std::log(x) - mu) / std::sqrt(sigma2));
}

Lognormal Lognormal::from_moments(double mean, double variance) {
  STATLEAK_CHECK(mean > 0.0, "lognormal mean must be positive");
  STATLEAK_CHECK(variance >= 0.0, "variance must be non-negative");
  Lognormal ln;
  // sigma2 = ln(1 + Var/mean^2), mu = ln(mean) - sigma2/2 (moment inversion).
  ln.sigma2 = std::log1p(variance / (mean * mean));
  ln.mu = std::log(mean) - 0.5 * ln.sigma2;
  return ln;
}

}  // namespace statleak
