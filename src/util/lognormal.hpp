/// \file lognormal.hpp
/// \brief Lognormal distribution utilities.
///
/// Sub-threshold leakage is exponential in Gaussian process parameters, so a
/// gate's leakage current is lognormal: I = exp(N) with N ~ N(mu, sigma^2).
/// This header provides conversions between the (mu, sigma) "log-space"
/// parameterization and linear-space moments, plus percentile queries —
/// everything the Wilkinson sum (leakage/wilkinson.hpp) and the statistical
/// optimizer need.

#pragma once

namespace statleak {

/// A lognormal random variable X = exp(N), N ~ N(mu, sigma2).
struct Lognormal {
  double mu = 0.0;      ///< mean of the underlying normal
  double sigma2 = 0.0;  ///< variance of the underlying normal

  /// E[X] = exp(mu + sigma2/2).
  double mean() const;
  /// Var[X] = (exp(sigma2) - 1) exp(2 mu + sigma2).
  double variance() const;
  double stddev() const;
  /// Median exp(mu).
  double median() const;
  /// p-quantile: exp(mu + sigma * Phi^-1(p)).
  double quantile(double p) const;
  /// Quantile with the normal deviate z = Phi^-1(p) precomputed by the
  /// caller: exp(mu + sigma * z). Bit-identical to quantile(p) for the
  /// same z; hoists the inverse-CDF out of hot pricing loops.
  double quantile_z(double z) const;
  /// P(X <= x) for x > 0; 0 for x <= 0.
  double cdf(double x) const;

  /// Builds a lognormal matching the given linear-space mean and variance.
  /// mean must be positive; variance non-negative.
  static Lognormal from_moments(double mean, double variance);
};

}  // namespace statleak
