/// \file journal.hpp
/// \brief Generic CRC-32-guarded, two-phase-commit append-only journal.
///
/// PR 5 built this machinery for Monte-Carlo sample checkpoints (the SLCK
/// container); this file is the same container generalized so any engine
/// with a deterministic committed-event sequence can journal it durably.
/// Clients pick a magic/version pair (JournalFormat), a 64-bit config
/// fingerprint, a 64-bit `meta` word (population size, gate count, ...) and
/// a per-record `kind` tag; the container owns the framing, the CRCs and
/// the crash-consistency story:
///
///   header (36 bytes, little-endian)
///     magic            u32   client format tag ("SLCK", "SLOP", ...)
///     version          u32   client format version
///     config_hash      u64   fingerprint of the producing run
///     meta             u64   client word (validated on load, like the hash)
///     committed_bytes  u64   end of the valid region (two-phase commit)
///     header_crc       u32   CRC-32 of the 32 bytes above
///   records, back to back, from byte 36 up to committed_bytes
///     payload_len      u64   payload bytes that follow the envelope
///     kind             u32   client record tag
///     record_crc       u32   CRC-32 of payload_len+kind+payload
///     payload                payload_len opaque bytes
///
/// Two-phase commit: a record is appended and flushed *before*
/// committed_bytes is advanced, so a crash (or a short write — see
/// util/fault.hpp) at any instant leaves either the old or the new
/// committed state, never a half-trusted record. On load, bytes beyond
/// committed_bytes are ignored (the dropped-tail count is reported);
/// corruption *inside* the committed region — bad magic/version/CRC, a
/// record overrunning the region, a file shorter than committed_bytes — is
/// rejected with CheckpointError naming the byte offset and cause. Never
/// UB, never a partial trust.
///
/// See docs/ROBUSTNESS.md for the operational story.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace statleak {

/// Structured rejection of an unusable journal/checkpoint file: truncated,
/// corrupt, or written by a different run configuration. Subclass of
/// statleak::Error; the CLI maps it to exit code 5.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320). Exposed for tests that
/// hand-craft or corrupt journal bytes. Chainable: pass the previous return
/// value as `seed` to extend a checksum over discontiguous spans.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// The client format tag pair stamped into (and validated against) the
/// header. Different clients — the MC checkpoint, the optimizer journal —
/// use different magics so a file is never replayed by the wrong engine.
struct JournalFormat {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
};

inline constexpr std::size_t kJournalHeaderBytes = 36;
/// Record envelope: payload_len u64, kind u32, record_crc u32.
inline constexpr std::size_t kJournalRecordBytes = 16;

/// One validated record as loaded from the committed region.
struct JournalRecord {
  std::uint32_t kind = 0;
  std::uint64_t offset = 0;  ///< byte offset of the envelope (diagnostics)
  std::vector<std::uint8_t> payload;
};

/// Everything a resuming run restores from a journal.
struct JournalContents {
  std::uint64_t config_hash = 0;
  std::uint64_t meta = 0;
  std::uint64_t dropped_tail_bytes = 0;  ///< uncommitted bytes ignored on load
  std::vector<JournalRecord> records;
};

/// True when `path` exists and is non-empty (i.e. worth loading).
bool journal_exists(const std::string& path);

/// Loads and fully validates a journal. Throws CheckpointError with a
/// precise diagnostic on any structural problem or when the stored
/// config_hash / meta do not match the expectations.
JournalContents load_journal(const std::string& path,
                             const JournalFormat& format,
                             std::uint64_t expected_hash,
                             std::uint64_t expected_meta);

/// Appends records to a journal file. Construction either creates a fresh
/// file (truncating whatever was there — callers load first if they want to
/// resume) or continues an existing valid one. append() is thread-safe:
/// concurrent producers interleave whole records under the writer's lock.
class JournalWriter {
 public:
  /// Creates `path` with a fresh header (truncates existing contents).
  static std::unique_ptr<JournalWriter> create(const std::string& path,
                                               const JournalFormat& format,
                                               std::uint64_t config_hash,
                                               std::uint64_t meta);

  /// Opens an existing, valid journal to append more records; any
  /// uncommitted tail is dropped so new records extend the committed region
  /// contiguously. Throws CheckpointError when the file does not validate.
  static std::unique_ptr<JournalWriter> resume(const std::string& path,
                                               const JournalFormat& format,
                                               std::uint64_t config_hash,
                                               std::uint64_t meta);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Durably appends one record. Two-phase: the record is flushed before
  /// the header's committed_bytes advances. After an I/O failure (or an
  /// injected short write — fault::Point::kShortWrite, addressed by the
  /// record ordinal since open) the writer goes dead — further appends are
  /// silently dropped, exactly as if the process had died — and healthy()
  /// reports false.
  void append(std::uint32_t kind, const void* payload, std::size_t size);

  bool healthy() const;
  /// Records successfully appended since this writer was opened.
  std::uint64_t records_appended() const;

 private:
  struct Impl;
  explicit JournalWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace statleak
