/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// Monte-Carlo experiments must be reproducible across runs and platforms, so
/// statleak does not use std::mt19937 + std::normal_distribution (whose
/// normal_distribution output is implementation-defined). Instead we ship
/// xoshiro256++ (Blackman & Vigna) with an explicit splitmix64 seeder and our
/// own Box–Muller / inverse-CDF transforms.

#pragma once

#include <array>
#include <cstdint>

namespace statleak {

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via splitmix64,
  /// guaranteeing a non-zero state for every seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// bounded generation (bias < 2^-64, negligible for simulation use).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate via the Box–Muller transform (cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Splits off an independently seeded child generator. Used to give each
  /// Monte-Carlo worker / sample block its own stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace statleak
