/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// Monte-Carlo experiments must be reproducible across runs and platforms, so
/// statleak does not use std::mt19937 + std::normal_distribution (whose
/// normal_distribution output is implementation-defined). Instead we ship
/// xoshiro256++ (Blackman & Vigna) with an explicit splitmix64 seeder and our
/// own normal transform.
///
/// Normal deviates use a 256-layer ziggurat (Marsaglia & Tsang 2000, with
/// Doornik's fix of drawing the wedge test from a fresh uniform). The method
/// is *exact*: the fast path accepts a point uniformly inside a rectangle
/// that lies entirely under the density, the wedge path performs the exact
/// accept test against exp(-x^2/2), and the tail path is Marsaglia's exact
/// exponential-majorant sampler — so the output distribution is N(0, 1) to
/// the last bit of the accept/reject arithmetic, not an approximation.
/// ~98.5 % of draws take the fast path: one 64-bit draw, one table compare,
/// one multiply — about 5x cheaper than the Box–Muller transform used before
/// (which paid log + sqrt + sincos per pair). The layer index (bits 0..7),
/// the sign (bit 8) and the 53-bit mantissa (bits 11..63) come from disjoint
/// bits of one draw.
///
/// Determinism: the fast path is pure IEEE-754 arithmetic; the wedge/tail
/// paths call std::exp/std::log, so cross-*libm* bit reproducibility has the
/// same caveat the Box–Muller transform had. Within one toolchain the
/// sequence is bit-stable, which is what the MC determinism tests pin.

#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>

namespace statleak {

/// Stateless splitmix64 finalizer: a high-quality 64-bit bijective mixer.
/// Building block of the counter-based stream derivation below.
std::uint64_t mix64(std::uint64_t x);

/// Counter-based stream derivation: the seed of logical stream `counter`
/// under master seed `seed`. Two mix64 rounds decorrelate streams even for
/// adjacent counters, and the result depends only on (seed, counter) — not
/// on how many draws any other stream consumed. This is what lets the
/// Monte-Carlo engine give sample i its own generator, making the output
/// independent of sample evaluation order and hence of the thread count.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t counter);

namespace detail {

/// Ziggurat tables (256 layers). `edge[i]` is the right edge of layer i
/// (edge[0] = v/f(r) is the pseudo-width of the base strip, edge[1] = r);
/// `fval[i] = exp(-edge[i]^2/2)`; `accept[i]` is the integer fast-accept
/// threshold and `scale[i] = edge[i] * 2^-53` maps a 53-bit mantissa onto
/// layer i. accept/scale are interleaved so the fast path touches one
/// cache line per draw.
struct ZigguratTables {
  struct Layer {
    std::uint64_t accept;
    double scale;
  };
  Layer layer[256];
  double edge[257];
  double fval[257];
};
/// Built once at static-initialization time (rng.cpp). Do not draw normal
/// deviates from other translation units' static initializers — the usual
/// cross-TU dynamic-initialization ordering caveat applies.
extern const ZigguratTables kZiggurat;

}  // namespace detail

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator. The draw methods
/// are header-inline: the Monte-Carlo engines consume two normals per gate
/// per sample, so call overhead is measurable there.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via splitmix64,
  /// guaranteeing a non-zero state for every seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() {
    const std::uint64_t result =
        rotl_(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// bounded generation (bias < 2^-64, negligible for simulation use).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate via the 256-layer ziggurat (exact; see the
  /// file comment). One 64-bit draw on the ~98.5 % fast path.
  double normal() {
    const std::uint64_t u = (*this)();
    const std::uint64_t mantissa = u >> 11;
    const detail::ZigguratTables::Layer layer =
        detail::kZiggurat.layer[u & 255u];
    if (mantissa < layer.accept) [[likely]] {
      // The rectangle is entirely under the density: accept unconditionally.
      // Sign comes from bit 8, applied by flipping the IEEE sign bit.
      const double x = static_cast<double>(mantissa) * layer.scale;
      return apply_sign_(x, u);
    }
    return normal_slow_(u);
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Block draw: fills `out` with consecutive standard normal deviates, as
  /// if by repeated normal() calls. Convenience for batched consumers.
  void fill_normal(std::span<double> out) {
    for (double& x : out) x = normal();
  }

  /// Splits off an independently seeded child generator. Used to give each
  /// Monte-Carlo worker / sample block its own stream.
  Rng split();

  /// Counter-derived generator for logical stream `counter` of `seed`:
  /// Rng(stream_seed(seed, counter)). Unlike split(), this does not consume
  /// state from any parent, so stream i is reproducible in isolation.
  static Rng stream(std::uint64_t seed, std::uint64_t counter) {
    return Rng(stream_seed(seed, counter));
  }

 private:
  static std::uint64_t rotl_(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// Applies the sign encoded in bit 8 of `u` by flipping the IEEE sign
  /// bit of `x` (branch-free; may produce -0.0, which compares equal to 0).
  static double apply_sign_(double x, std::uint64_t u) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(x) ^
                                 ((u & 256u) << 55));
  }

  /// Out-of-line ziggurat slow path: boundary re-check, wedge accept test,
  /// and the base-strip tail sampler. `u` is the draw that fell out of the
  /// fast path.
  double normal_slow_(std::uint64_t u);

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace statleak
