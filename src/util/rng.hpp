/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// Monte-Carlo experiments must be reproducible across runs and platforms, so
/// statleak does not use std::mt19937 + std::normal_distribution (whose
/// normal_distribution output is implementation-defined). Instead we ship
/// xoshiro256++ (Blackman & Vigna) with an explicit splitmix64 seeder and our
/// own Box–Muller / inverse-CDF transforms.

#pragma once

#include <array>
#include <cstdint>

namespace statleak {

/// Stateless splitmix64 finalizer: a high-quality 64-bit bijective mixer.
/// Building block of the counter-based stream derivation below.
std::uint64_t mix64(std::uint64_t x);

/// Counter-based stream derivation: the seed of logical stream `counter`
/// under master seed `seed`. Two mix64 rounds decorrelate streams even for
/// adjacent counters, and the result depends only on (seed, counter) — not
/// on how many draws any other stream consumed. This is what lets the
/// Monte-Carlo engine give sample i its own generator, making the output
/// independent of sample evaluation order and hence of the thread count.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t counter);

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via splitmix64,
  /// guaranteeing a non-zero state for every seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// bounded generation (bias < 2^-64, negligible for simulation use).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate via the Box–Muller transform (cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Splits off an independently seeded child generator. Used to give each
  /// Monte-Carlo worker / sample block its own stream.
  Rng split();

  /// Counter-derived generator for logical stream `counter` of `seed`:
  /// Rng(stream_seed(seed, counter)). Unlike split(), this does not consume
  /// state from any parent, so stream i is reproducible in isolation.
  static Rng stream(std::uint64_t seed, std::uint64_t counter) {
    return Rng(stream_seed(seed, counter));
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace statleak
