/// \file exec.hpp
/// \brief ExecConfig — the execution knobs shared by every runnable config —
///        and Deadline, the wall-clock budget those knobs arm.
///
/// Before this type existed, `num_threads` and `seed` were duplicated
/// independently across McConfig, OptConfig, FlowConfig and MlvConfig,
/// each with its own doc comment and defaults. They now inherit
/// ExecConfig, so:
///
///   * the fields keep their exact spelling at every call site
///     (`cfg.num_threads = 4; cfg.seed = 7;` compiles unchanged — the
///     source-compatible accessor guarantee for this release), and
///   * engine entry points can slice `const ExecConfig&` off any config
///     to plumb execution knobs without knowing the concrete type.

#pragma once

#include <chrono>
#include <cstdint>

namespace statleak {

/// Execution environment knobs: how to run, never what to compute.
/// Determinism contract: every engine that consumes ExecConfig must
/// produce bit-identical results for any `num_threads` (see
/// util/parallel.hpp), so `seed` alone pins the output.
struct ExecConfig {
  /// Worker threads, counting the calling thread; 0 (and any negative
  /// value) = std::thread::hardware_concurrency().
  int num_threads = 0;

  /// Base seed for counter-derived RNG streams (util/rng.hpp). Engines
  /// without a random component ignore it.
  std::uint64_t seed = 42;

  /// Wall-clock budget in milliseconds; 0 (and any negative value) = no
  /// deadline. Engines that honour it (Monte-Carlo loops, the statistical
  /// optimizer) check at shard/iteration boundaries and stop *cleanly* on
  /// expiry: completed work is kept (and checkpointed where enabled), the
  /// run report is flagged `"completed": false`, and the result carries
  /// `completed = false`. Expiry is a timing event, so *which* samples
  /// finished is not reproducible — but every value that did finish is
  /// bit-identical to the uninterrupted run (see docs/ROBUSTNESS.md).
  std::int64_t deadline_ms = 0;
};

/// A monotonic wall-clock deadline armed from ExecConfig::deadline_ms at
/// engine entry. Default-constructed (or armed with a non-positive budget)
/// it never expires, so the unarmed fast path is a single bool test.
/// expired() is safe to call concurrently from shard workers.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Starts the budget now; non-positive = unarmed.
  explicit Deadline(std::int64_t budget_ms)
      : armed_(budget_ms > 0),
        end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(budget_ms > 0 ? budget_ms : 0)) {}

  bool armed() const { return armed_; }

  /// True once the budget has elapsed (always false when unarmed).
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= end_;
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point end_{};
};

}  // namespace statleak
