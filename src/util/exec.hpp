/// \file exec.hpp
/// \brief ExecConfig — the execution knobs shared by every runnable config.
///
/// Before this type existed, `num_threads` and `seed` were duplicated
/// independently across McConfig, OptConfig, FlowConfig and MlvConfig,
/// each with its own doc comment and defaults. They now inherit
/// ExecConfig, so:
///
///   * the fields keep their exact spelling at every call site
///     (`cfg.num_threads = 4; cfg.seed = 7;` compiles unchanged — the
///     source-compatible accessor guarantee for this release), and
///   * engine entry points can slice `const ExecConfig&` off any config
///     to plumb execution knobs without knowing the concrete type.
///
/// FlowConfig's former `mc_seed` field is the one spelling change: it is
/// now plain `seed` (a deprecated `mc_seed()` accessor remains for one
/// release).

#pragma once

#include <cstdint>

namespace statleak {

/// Execution environment knobs: how to run, never what to compute.
/// Determinism contract: every engine that consumes ExecConfig must
/// produce bit-identical results for any `num_threads` (see
/// util/parallel.hpp), so `seed` alone pins the output.
struct ExecConfig {
  /// Worker threads, counting the calling thread; 0 (and any negative
  /// value) = std::thread::hardware_concurrency().
  int num_threads = 0;

  /// Base seed for counter-derived RNG streams (util/rng.hpp). Engines
  /// without a random component ignore it.
  std::uint64_t seed = 42;
};

}  // namespace statleak
