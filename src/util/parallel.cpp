#include "util/parallel.hpp"

#include <algorithm>

namespace statleak {

int resolve_num_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int total = resolve_num_threads(num_threads);
  threads_.reserve(static_cast<std::size_t>(total - 1));
  for (int w = 1; w < total; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    try {
      (*task)(worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::run(const std::function<void(int)>& task) {
  if (threads_.empty()) {
    task(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    pending_ = static_cast<int>(threads_.size());
    first_error_ = nullptr;
    ++generation_;
  }
  start_.notify_all();
  try {
    task(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return pending_ == 0; });
  task_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, int)>& body) {
  if (n == 0) return;
  const auto workers = static_cast<std::size_t>(size());
  if (workers == 1 || n == 1) {
    body(0, n, 0);
    return;
  }
  run([&](int w) {
    const auto uw = static_cast<std::size_t>(w);
    const std::size_t begin = n * uw / workers;
    const std::size_t end = n * (uw + 1) / workers;
    if (begin < end) body(begin, end, w);
  });
}

void parallel_for(
    int num_threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t, int)>& body) {
  const int total = resolve_num_threads(num_threads);
  if (total == 1 || n < 2) {
    if (n > 0) body(0, n, 0);
    return;
  }
  ThreadPool pool(total);
  pool.parallel_for(n, body);
}

}  // namespace statleak
