#include "util/journal.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "util/fault.hpp"

namespace statleak {

namespace {

// --- little-endian scalar packing ------------------------------------------
// statleak targets little-endian hosts only (x86-64, AArch64 LE); raw
// memcpy of the in-memory representation IS the wire format.

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

/// First 32 header bytes (everything the header CRC covers).
std::vector<std::uint8_t> header_prefix(const JournalFormat& format,
                                        std::uint64_t config_hash,
                                        std::uint64_t meta,
                                        std::uint64_t committed_bytes) {
  std::vector<std::uint8_t> buf;
  buf.reserve(32);
  put<std::uint32_t>(buf, format.magic);
  put<std::uint32_t>(buf, format.version);
  put<std::uint64_t>(buf, config_hash);
  put<std::uint64_t>(buf, meta);
  put<std::uint64_t>(buf, committed_bytes);
  return buf;
}

std::vector<std::uint8_t> header_bytes(const JournalFormat& format,
                                       std::uint64_t config_hash,
                                       std::uint64_t meta,
                                       std::uint64_t committed_bytes) {
  std::vector<std::uint8_t> buf =
      header_prefix(format, config_hash, meta, committed_bytes);
  put<std::uint32_t>(buf, crc32(buf.data(), buf.size()));
  return buf;
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw CheckpointError("checkpoint '" + path + "': " + why);
}

/// Reads the whole file; throws on open/read failure.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) reject(path, "cannot open for reading");
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) reject(path, "read error");
  return bytes;
}

/// Validated view of a journal header.
struct Header {
  std::uint64_t config_hash = 0;
  std::uint64_t meta = 0;
  std::uint64_t committed_bytes = 0;
};

/// Parses + validates the 36-byte header against the file size and the
/// expected run configuration. Every failure is a structured rejection.
Header check_header(const std::string& path,
                    const std::vector<std::uint8_t>& bytes,
                    const JournalFormat& format, std::uint64_t expected_hash,
                    std::uint64_t expected_meta) {
  if (bytes.size() < kJournalHeaderBytes) {
    reject(path, "truncated header (" + std::to_string(bytes.size()) +
                     " bytes, need " + std::to_string(kJournalHeaderBytes) +
                     ")");
  }
  const auto magic = get<std::uint32_t>(bytes.data());
  if (magic != format.magic) {
    reject(path, "bad magic (not a statleak checkpoint of this kind)");
  }
  const auto version = get<std::uint32_t>(bytes.data() + 4);
  if (version != format.version) {
    reject(path, "unsupported version " + std::to_string(version) +
                     " (this build reads version " +
                     std::to_string(format.version) + ")");
  }
  const auto stored_crc = get<std::uint32_t>(bytes.data() + 32);
  if (stored_crc != crc32(bytes.data(), 32)) {
    reject(path, "header CRC mismatch (corrupt header)");
  }
  Header h;
  h.config_hash = get<std::uint64_t>(bytes.data() + 8);
  h.meta = get<std::uint64_t>(bytes.data() + 16);
  h.committed_bytes = get<std::uint64_t>(bytes.data() + 24);
  if (h.committed_bytes < kJournalHeaderBytes) {
    reject(path, "committed_bytes " + std::to_string(h.committed_bytes) +
                     " smaller than the header");
  }
  if (h.committed_bytes > bytes.size()) {
    reject(path, "file shorter than committed region (" +
                     std::to_string(bytes.size()) + " bytes on disk, " +
                     std::to_string(h.committed_bytes) + " committed)");
  }
  if (h.config_hash != expected_hash) {
    reject(path,
           "written by a different run configuration (config hash "
           "mismatch) — delete it or point --checkpoint elsewhere");
  }
  if (h.meta != expected_meta) {
    reject(path, "population mismatch (file describes " +
                     std::to_string(h.meta) + " units, run wants " +
                     std::to_string(expected_meta) + ")");
  }
  return h;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Table generated once for polynomial 0xEDB88320 (reflected IEEE 802.3).
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

bool journal_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec &&
         std::filesystem::file_size(path, ec) > 0 && !ec;
}

JournalContents load_journal(const std::string& path,
                             const JournalFormat& format,
                             std::uint64_t expected_hash,
                             std::uint64_t expected_meta) {
  const std::vector<std::uint8_t> bytes = slurp(path);
  const Header h =
      check_header(path, bytes, format, expected_hash, expected_meta);

  JournalContents contents;
  contents.config_hash = h.config_hash;
  contents.meta = h.meta;
  contents.dropped_tail_bytes = bytes.size() - h.committed_bytes;

  std::size_t off = kJournalHeaderBytes;
  while (off < h.committed_bytes) {
    if (h.committed_bytes - off < kJournalRecordBytes) {
      reject(path, "committed record envelope truncated at byte " +
                       std::to_string(off));
    }
    const auto payload_len = get<std::uint64_t>(bytes.data() + off);
    const auto kind = get<std::uint32_t>(bytes.data() + off + 8);
    const auto stored_crc = get<std::uint32_t>(bytes.data() + off + 12);
    if (payload_len > h.committed_bytes - off - kJournalRecordBytes) {
      reject(path, "record at byte " + std::to_string(off) +
                       " overruns the committed region (" +
                       std::to_string(payload_len) + " payload bytes)");
    }
    // CRC covers payload_len+kind+payload; the crc field itself is skipped.
    std::uint32_t crc = crc32(bytes.data() + off, 12);
    crc = crc32(bytes.data() + off + kJournalRecordBytes, payload_len, crc);
    if (crc != stored_crc) {
      reject(path, "record CRC mismatch at byte " + std::to_string(off) +
                       " (corrupt committed data)");
    }
    JournalRecord rec;
    rec.kind = kind;
    rec.offset = off;
    const std::uint8_t* payload = bytes.data() + off + kJournalRecordBytes;
    rec.payload.assign(payload, payload + payload_len);
    contents.records.push_back(std::move(rec));
    off += kJournalRecordBytes + payload_len;
  }
  return contents;
}

// --- writer -----------------------------------------------------------------

struct JournalWriter::Impl {
  std::mutex mutex;
  std::FILE* file = nullptr;
  std::string path;
  JournalFormat format;
  std::uint64_t config_hash = 0;
  std::uint64_t meta = 0;
  std::uint64_t committed = 0;
  std::uint64_t records = 0;
  bool dead = false;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  /// Rewrites bytes [0, 36) with the current committed_bytes. Phase two of
  /// the commit: only runs after the record payload is flushed.
  bool write_header_locked() {
    const std::vector<std::uint8_t> hdr =
        header_bytes(format, config_hash, meta, committed);
    if (std::fseek(file, 0, SEEK_SET) != 0) return false;
    if (std::fwrite(hdr.data(), 1, hdr.size(), file) != hdr.size()) {
      return false;
    }
    return std::fflush(file) == 0;
  }
};

JournalWriter::JournalWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

JournalWriter::~JournalWriter() = default;

std::unique_ptr<JournalWriter> JournalWriter::create(
    const std::string& path, const JournalFormat& format,
    std::uint64_t config_hash, std::uint64_t meta) {
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->format = format;
  impl->config_hash = config_hash;
  impl->meta = meta;
  impl->committed = kJournalHeaderBytes;
  impl->file = std::fopen(path.c_str(), "wb+");
  if (impl->file == nullptr) {
    throw CheckpointError("checkpoint '" + path +
                          "': cannot open for writing");
  }
  if (!impl->write_header_locked()) {
    throw CheckpointError("checkpoint '" + path +
                          "': failed to write header");
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(std::move(impl)));
}

std::unique_ptr<JournalWriter> JournalWriter::resume(
    const std::string& path, const JournalFormat& format,
    std::uint64_t config_hash, std::uint64_t meta) {
  // Validate via the loader's machinery (cheap relative to the runs being
  // journaled) so a writer never appends after a corrupt committed region.
  const std::vector<std::uint8_t> bytes = slurp(path);
  const Header h = check_header(path, bytes, format, config_hash, meta);

  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->format = format;
  impl->config_hash = config_hash;
  impl->meta = meta;
  impl->committed = h.committed_bytes;
  impl->file = std::fopen(path.c_str(), "rb+");
  if (impl->file == nullptr) {
    throw CheckpointError("checkpoint '" + path +
                          "': cannot open for appending");
  }
  // Drop any uncommitted tail now so new records extend the committed
  // region contiguously.
  if (bytes.size() > h.committed_bytes) {
    std::error_code ec;
    std::filesystem::resize_file(path, h.committed_bytes, ec);
    if (ec) {
      throw CheckpointError("checkpoint '" + path +
                            "': cannot drop uncommitted tail");
    }
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(std::move(impl)));
}

void JournalWriter::append(std::uint32_t kind, const void* payload,
                           std::size_t size) {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lock(im.mutex);
  if (im.dead) return;  // a dead writer behaves like a dead process

  std::vector<std::uint8_t> rec;
  rec.reserve(kJournalRecordBytes + size);
  put<std::uint64_t>(rec, static_cast<std::uint64_t>(size));
  put<std::uint32_t>(rec, kind);
  std::uint32_t crc = crc32(rec.data(), 12);
  crc = crc32(payload, size, crc);
  put<std::uint32_t>(rec, crc);
  const auto* p = static_cast<const std::uint8_t*>(payload);
  rec.insert(rec.end(), p, p + size);

  // Phase one: append + flush the record past the committed region.
  std::size_t write_len = rec.size();
  bool injected_short_write = false;
  if (STATLEAK_FAULT_FIRES(fault::Point::kShortWrite, im.records)) {
    // Simulate dying mid-flush: half the record reaches the disk and the
    // header is never advanced, so the tail is dropped on the next load.
    write_len = rec.size() / 2;
    injected_short_write = true;
  }
  bool ok = std::fseek(im.file, static_cast<long>(im.committed),
                       SEEK_SET) == 0 &&
            std::fwrite(rec.data(), 1, write_len, im.file) == write_len &&
            std::fflush(im.file) == 0;
  if (!ok || injected_short_write) {
    im.dead = true;
    return;
  }

  // Phase two: advance committed_bytes. Failure here leaves the old header
  // committed — the record becomes an ignorable tail, not corruption.
  im.committed += rec.size();
  if (!im.write_header_locked()) {
    im.committed -= rec.size();
    im.dead = true;
    return;
  }
  ++im.records;
}

bool JournalWriter::healthy() const {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lock(im.mutex);
  return !im.dead;
}

std::uint64_t JournalWriter::records_appended() const {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lock(im.mutex);
  return im.records;
}

}  // namespace statleak
