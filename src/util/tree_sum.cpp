#include "util/tree_sum.hpp"

#include "util/error.hpp"

namespace statleak {

TreeSum::TreeSum(std::size_t slots) { reset(slots); }

void TreeSum::reset(std::size_t slots) {
  slots_ = slots;
  leaves_ = 1;
  while (leaves_ < slots_) leaves_ *= 2;
  nodes_.assign(2 * leaves_, 0.0);
}

double TreeSum::get(std::size_t i) const {
  STATLEAK_CHECK(i < slots_, "TreeSum slot out of range");
  return nodes_[leaves_ + i];
}

void TreeSum::set(std::size_t i, double value) {
  STATLEAK_CHECK(i < slots_, "TreeSum slot out of range");
  std::size_t k = leaves_ + i;
  nodes_[k] = value;
  for (k /= 2; k >= 1; k /= 2) {
    nodes_[k] = nodes_[2 * k] + nodes_[2 * k + 1];
  }
}

void TreeSum::assign(std::span<const double> values) {
  STATLEAK_CHECK(values.size() == slots_, "TreeSum bulk size mismatch");
  for (std::size_t i = 0; i < slots_; ++i) nodes_[leaves_ + i] = values[i];
  for (std::size_t i = slots_; i < leaves_; ++i) nodes_[leaves_ + i] = 0.0;
  for (std::size_t k = leaves_ - 1; k >= 1; --k) {
    nodes_[k] = nodes_[2 * k] + nodes_[2 * k + 1];
  }
}

double TreeSum::total() const { return slots_ == 0 ? 0.0 : nodes_[1]; }

double TreeSum::total_with(std::size_t i, double value) const {
  STATLEAK_CHECK(i < slots_, "TreeSum slot out of range");
  std::size_t k = leaves_ + i;
  double sum = value;
  for (; k > 1; k /= 2) {
    // Combine with the sibling in left-to-right order so the result is the
    // same double set() + total() would produce.
    sum = (k % 2 == 0) ? sum + nodes_[k + 1] : nodes_[k - 1] + sum;
  }
  return sum;
}

}  // namespace statleak
