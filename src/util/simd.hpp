/// \file simd.hpp
/// \brief Portable hints for the auto-vectorizer in batched hot loops.
///
/// The batched Monte-Carlo kernels are written so the compiler's
/// auto-vectorizer can handle them (contiguous double arrays, no
/// loop-carried dependencies beyond reductions). Two things block it in
/// practice: possible pointer aliasing between the scratch arrays, and
/// conservatively assumed dependencies. STATLEAK_RESTRICT and
/// STATLEAK_VEC_LOOP remove those blocks.
///
/// Both are gated behind the STATLEAK_SIMD CMake option (default ON). With
/// the option OFF they expand to nothing, which is useful for isolating a
/// suspected vectorization miscompile — the kernels are valid either way,
/// and the bit-identity tests pass in both configurations because the
/// source expression shapes (and thus the IEEE-754 operation order per
/// lane) are unchanged; the pragmas only permit lane-parallel execution of
/// independent lanes.

#pragma once

#if defined(STATLEAK_SIMD)
#if defined(__clang__)
#define STATLEAK_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define STATLEAK_VEC_LOOP _Pragma("GCC ivdep")
#else
#define STATLEAK_VEC_LOOP
#endif
#if defined(__GNUC__) || defined(__clang__)
#define STATLEAK_RESTRICT __restrict__
#else
#define STATLEAK_RESTRICT
#endif
#else  // !STATLEAK_SIMD
#define STATLEAK_VEC_LOOP
#define STATLEAK_RESTRICT
#endif
