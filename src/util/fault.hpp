/// \file fault.hpp
/// \brief Deterministic fault-injection points for robustness testing.
///
/// Behind the STATLEAK_FAULT_INJECTION CMake option (default OFF), the
/// engines expose a handful of *addressed* injection points: a NaN deviate
/// at a chosen Monte-Carlo slot, a short write during a checkpoint flush,
/// a simulated stall at a shard boundary. tests/fault_test.cpp arms them
/// to prove each degradation path (quarantine, tail-drop on resume,
/// deadline expiry) end to end.
///
/// Determinism: an injection is addressed, not probabilistic. arm() names
/// the point and the address (sample slot, record index, block start) at
/// which it fires, so a faulty run is exactly reproducible — the same
/// philosophy as the counter-based RNG streams.
///
/// Zero cost when off: with STATLEAK_FAULT_INJECTION undefined the
/// STATLEAK_FAULT_FIRES / STATLEAK_FAULT_STALL macros expand to constant
/// false / nothing, their argument expressions are never evaluated, and
/// the enclosing branches fold away — release hot paths are byte-for-byte
/// unaffected.

#pragma once

#include <cstdint>

namespace statleak::fault {

/// The injection points the engines expose. Present in every build so call
/// sites compile unconditionally; only the runtime machinery is gated.
enum class Point : int {
  kNanDeviate = 0,  ///< poison one sample's dVth draw with NaN (address = slot)
  kShortWrite = 1,  ///< truncate one checkpoint record flush (address = record)
  kShardStall = 2,  ///< sleep at one shard block boundary (address = block start)
  kWorkerExit = 3,  ///< campaign coordinator kills the worker that sent the
                    ///< Nth committed block (address = block ordinal)
  kOptAssignKill = 4,  ///< throw InjectedCrash right after the optimizer
                       ///< journals the Nth accepted assignment-phase commit
                       ///< (address = assign commit ordinal)
};
inline constexpr int kNumPoints = 5;

/// The payload of kOptAssignKill: thrown out of the optimizer to simulate
/// dying mid-run with the journal exactly at its crash state. Defined in
/// every build so test code compiles unconditionally.
struct InjectedCrash {};

/// "on" / "off" — whether this build compiled the injection machinery.
const char* build_mode();

#ifdef STATLEAK_FAULT_INJECTION

/// Arms `point` to fire at `address`, up to `count` times (negative =
/// every time the address matches). Thread-safe.
void arm(Point point, std::uint64_t address, std::int64_t count = 1);

/// True when `point` is armed for `address` (and decrements the remaining
/// fire count). Called by the engines through STATLEAK_FAULT_FIRES.
bool fires(Point point, std::uint64_t address);

/// Sleep duration of the kShardStall point, default 50 ms.
void set_stall_ms(int ms);

/// Blocks for the configured stall duration (the kShardStall payload).
void stall();

/// How many times `point` has fired since the last reset().
std::int64_t fired_count(Point point);

/// Disarms every point and zeroes the fired counters.
void reset();

#define STATLEAK_FAULT_FIRES(point, address) \
  (::statleak::fault::fires((point), (address)))
#define STATLEAK_FAULT_STALL(point, address)                  \
  do {                                                        \
    if (::statleak::fault::fires((point), (address))) {       \
      ::statleak::fault::stall();                             \
    }                                                         \
  } while (false)

#else  // !STATLEAK_FAULT_INJECTION

// Arguments are swallowed unevaluated; branches on the constant fold away.
#define STATLEAK_FAULT_FIRES(point, address) false
#define STATLEAK_FAULT_STALL(point, address) ((void)0)

#endif  // STATLEAK_FAULT_INJECTION

}  // namespace statleak::fault
