#include "util/fault.hpp"

#ifdef STATLEAK_FAULT_INJECTION

#include <array>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace statleak::fault {

namespace {

struct Injection {
  std::uint64_t address = 0;
  std::int64_t remaining = 0;  ///< negative = unlimited
};

struct State {
  std::mutex mutex;
  std::array<std::vector<Injection>, kNumPoints> armed;
  std::array<std::int64_t, kNumPoints> fired{};
  int stall_ms = 50;
};

State& state() {
  static State s;
  return s;
}

}  // namespace

const char* build_mode() { return "on"; }

void arm(Point point, std::uint64_t address, std::int64_t count) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.armed[static_cast<std::size_t>(point)].push_back({address, count});
}

bool fires(Point point, std::uint64_t address) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  auto& injections = s.armed[static_cast<std::size_t>(point)];
  for (Injection& inj : injections) {
    if (inj.address != address || inj.remaining == 0) continue;
    if (inj.remaining > 0) --inj.remaining;
    ++s.fired[static_cast<std::size_t>(point)];
    return true;
  }
  return false;
}

void set_stall_ms(int ms) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.stall_ms = ms;
}

void stall() {
  int ms = 0;
  {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    ms = s.stall_ms;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::int64_t fired_count(Point point) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.fired[static_cast<std::size_t>(point)];
}

void reset() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& v : s.armed) v.clear();
  s.fired.fill(0);
  s.stall_ms = 50;
}

}  // namespace statleak::fault

#else  // !STATLEAK_FAULT_INJECTION

namespace statleak::fault {

const char* build_mode() { return "off"; }

}  // namespace statleak::fault

#endif  // STATLEAK_FAULT_INJECTION
