/// \file table.hpp
/// \brief Minimal table formatter for experiment output.
///
/// The benchmark harness prints every reproduced table/figure as an aligned
/// plain-text table (and optionally CSV) so EXPERIMENTS.md rows can be pasted
/// straight from bench output.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace statleak {

/// A simple row-oriented table with a header. Cells are strings; numeric
/// helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new empty row.
  void begin_row();
  /// Appends a string cell to the current row.
  void add(std::string cell);
  /// Appends a formatted number (fixed, `precision` digits).
  void add(double value, int precision = 3);
  /// Appends an integer cell.
  void add_int(long long value);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

  /// Renders as an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Renders as CSV (RFC-4180-ish: cells containing commas/quotes get
  /// quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision into a string.
std::string format_fixed(double value, int precision);

/// Formats a double in engineering style with an SI prefix (e.g. 1.23e-9 A
/// -> "1.23 nA" when unit == "A").
std::string format_si(double value, const std::string& unit, int precision = 3);

}  // namespace statleak
