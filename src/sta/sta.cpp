#include "sta/sta.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/health.hpp"

namespace statleak {

double StaResult::worst_slack_ps() const {
  double worst = std::numeric_limits<double>::infinity();
  for (double s : slack_ps) worst = std::min(worst, s);
  return worst;
}

StaEngine::StaEngine(const Circuit& circuit, const CellLibrary& lib)
    : circuit_(circuit), lib_(lib), loads_(circuit, lib) {}

double StaEngine::gate_delay_ps(GateId id) const {
  const Gate& g = circuit_.gate(id);
  if (g.kind == CellKind::kInput) return 0.0;
  return lib_.delay_ps(g.kind, g.vth, g.size, loads_.load_ff(id));
}

double StaEngine::gate_delay_corner_ps(GateId id, const VariationModel& var,
                                       double k_sigma) const {
  const Gate& g = circuit_.gate(id);
  if (g.kind == CellKind::kInput) return 0.0;
  return lib_.delay_ps(g.kind, g.vth, g.size, loads_.load_ff(id),
                       k_sigma * var.sigma_l_total_nm(),
                       k_sigma * var.sigma_vth_total_v());
}

template <typename DelayFn>
StaResult StaEngine::analyze_impl(double t_max_ps, DelayFn&& delay) const {
  const std::size_t n = circuit_.num_gates();
  StaResult r;
  r.arrival_ps.assign(n, 0.0);
  r.required_ps.assign(n, std::numeric_limits<double>::infinity());
  r.slack_ps.assign(n, 0.0);

  // Cache per-gate delays once: both passes need them.
  std::vector<double> d(n, 0.0);
  for (GateId id = 0; id < n; ++id) d[id] = delay(id);

  for (GateId id : circuit_.topo_order()) {
    double in_arr = 0.0;
    for (GateId f : circuit_.gate(id).fanins) {
      in_arr = std::max(in_arr, r.arrival_ps[f]);
    }
    r.arrival_ps[id] = in_arr + d[id];
  }

  r.critical_delay_ps = 0.0;
  for (GateId out : circuit_.outputs()) {
    r.critical_delay_ps = std::max(r.critical_delay_ps, r.arrival_ps[out]);
  }

  for (GateId out : circuit_.outputs()) r.required_ps[out] = t_max_ps;
  const auto topo = circuit_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    // required at this gate's *output*; propagate to fanins through d[id].
    const double req_in = r.required_ps[id] - d[id];
    for (GateId f : circuit_.gate(id).fanins) {
      r.required_ps[f] = std::min(r.required_ps[f], req_in);
    }
  }
  // Gates with no fanout and not marked output keep +inf required; clamp to
  // t_max so slack stays meaningful. That is the only legitimate non-finite
  // value here: NaN or -inf means a poisoned delay or target flowed through
  // the backward pass, and silently clamping it would launder a numerical
  // fault into a plausible slack.
  for (GateId id = 0; id < n; ++id) {
    if (!std::isfinite(r.required_ps[id])) {
      if (r.required_ps[id] == std::numeric_limits<double>::infinity()) {
        r.required_ps[id] = t_max_ps;
      } else {
        throw NumericalError(
            "STA backward pass produced a non-finite required time at gate " +
            std::to_string(id) +
            " — a gate delay or the t_max target is NaN/-inf");
      }
    }
    r.slack_ps[id] = r.required_ps[id] - r.arrival_ps[id];
  }
  return r;
}

StaResult StaEngine::analyze(double t_max_ps) const {
  return analyze_impl(t_max_ps, [this](GateId id) { return gate_delay_ps(id); });
}

StaResult StaEngine::analyze_corner(double t_max_ps, const VariationModel& var,
                                    double k_sigma) const {
  return analyze_impl(t_max_ps, [&](GateId id) {
    return gate_delay_corner_ps(id, var, k_sigma);
  });
}

double StaEngine::critical_delay_ps() const {
  std::vector<double> arr(circuit_.num_gates(), 0.0);
  for (GateId id : circuit_.topo_order()) {
    double in_arr = 0.0;
    for (GateId f : circuit_.gate(id).fanins) in_arr = std::max(in_arr, arr[f]);
    arr[id] = in_arr + gate_delay_ps(id);
  }
  double worst = 0.0;
  for (GateId out : circuit_.outputs()) worst = std::max(worst, arr[out]);
  return worst;
}

double StaEngine::critical_delay_sample_ps(std::span<const ParamSample> samples,
                                           bool exact_delay,
                                           std::vector<double>& scratch) const {
  const std::size_t n = circuit_.num_gates();
  STATLEAK_CHECK(samples.size() == n, "one parameter sample per gate");
  scratch.assign(n, 0.0);
  for (GateId id : circuit_.topo_order()) {
    const Gate& g = circuit_.gate(id);
    double in_arr = 0.0;
    for (GateId f : g.fanins) in_arr = std::max(in_arr, scratch[f]);
    double d = 0.0;
    if (g.kind != CellKind::kInput) {
      if (exact_delay) {
        d = lib_.delay_ps(g.kind, g.vth, g.size, loads_.load_ff(id),
                          samples[id].dl_nm, samples[id].dvth_v);
      } else {
        const auto& s = lib_.sensitivities(g.vth);
        const double mult = 1.0 + s.delay_sl_per_nm * samples[id].dl_nm +
                            s.delay_sv_per_v * samples[id].dvth_v;
        d = gate_delay_ps(id) * std::max(0.05, mult);
      }
    }
    scratch[id] = in_arr + d;
  }
  double worst = 0.0;
  for (GateId out : circuit_.outputs()) worst = std::max(worst, scratch[out]);
  return worst;
}

std::vector<GateId> StaEngine::critical_path() const {
  const StaResult r = analyze(0.0);
  GateId cursor = kInvalidGate;
  double best = -1.0;
  for (GateId out : circuit_.outputs()) {
    if (r.arrival_ps[out] > best) {
      best = r.arrival_ps[out];
      cursor = out;
    }
  }
  STATLEAK_CHECK(cursor != kInvalidGate, "circuit has no outputs");

  std::vector<GateId> path;
  while (cursor != kInvalidGate) {
    path.push_back(cursor);
    const Gate& g = circuit_.gate(cursor);
    GateId next = kInvalidGate;
    double next_arr = -1.0;
    for (GateId f : g.fanins) {
      if (r.arrival_ps[f] > next_arr) {
        next_arr = r.arrival_ps[f];
        next = f;
      }
    }
    cursor = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace statleak
