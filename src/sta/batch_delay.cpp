#include "sta/batch_delay.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace statleak {

BatchDelayKernel::BatchDelayKernel(const FlatCircuit& flat,
                                   const CellLibrary& lib,
                                   const LoadCache& loads) {
  rebind(flat, lib, loads);
}

void BatchDelayKernel::rebind(const FlatCircuit& flat, const CellLibrary& lib,
                              const LoadCache& loads) {
  flat_ = &flat;
  lib_ = &lib;
  const std::uint32_t n = flat.num_gates;
  nominal_ps_.assign(n, 0.0);
  sl_.assign(n, 0.0);
  sv_.assign(n, 0.0);
  load_ff_.assign(n, 0.0);
  for (GateId g = 0; g < n; ++g) {
    if (flat.is_input[g]) continue;
    load_ff_[g] = loads.load_ff(g);
    nominal_ps_[g] =
        lib.delay_ps(flat.kind[g], flat.vth[g], flat.size[g], load_ff_[g]);
    const DeviceSensitivities& s = lib.sensitivities(flat.vth[g]);
    sl_[g] = s.delay_sl_per_nm;
    sv_[g] = s.delay_sv_per_v;
  }
}

template <bool kExact, bool kShift>
void BatchDelayKernel::block_impl(const double* dl, const double* dv,
                                  std::size_t stride, std::size_t lanes,
                                  double shift, double* arrival,
                                  double* out) const {
  // Gate-major: finish all lanes of a gate before moving on. `topo` is a
  // valid topological order (level buckets concatenated), so every fanin's
  // arrival block is complete when a gate is reached.
  for (const GateId g : flat_->topo) {
    double* STATLEAK_RESTRICT arr_g = arrival + g * stride;
    if (flat_->is_input[g]) {
      // Scalar path: no fanins, zero delay => arrival 0.0 exactly.
      for (std::size_t s = 0; s < lanes; ++s) arr_g[s] = 0.0;
      continue;
    }
    // Arrival max over fanins, pin order outer / lanes inner. Per lane this
    // is the same left-to-right max chain the scalar loop performs.
    for (std::size_t s = 0; s < lanes; ++s) arr_g[s] = 0.0;
    const std::uint32_t fi_begin = flat_->fanin_offset[g];
    const std::uint32_t fi_end = flat_->fanin_offset[g + 1];
    for (std::uint32_t fi = fi_begin; fi < fi_end; ++fi) {
      const double* STATLEAK_RESTRICT arr_f =
          arrival + flat_->fanin[fi] * stride;
      STATLEAK_VEC_LOOP
      for (std::size_t s = 0; s < lanes; ++s) {
        arr_g[s] = std::max(arr_g[s], arr_f[s]);
      }
    }
    const double* STATLEAK_RESTRICT dl_g = dl + g * stride;
    const double* STATLEAK_RESTRICT dv_g = dv + g * stride;
    if constexpr (kExact) {
      const CellKind kind = flat_->kind[g];
      const Vth vth = flat_->vth[g];
      const double size = flat_->size[g];
      const double load = load_ff_[g];
      for (std::size_t s = 0; s < lanes; ++s) {
        const double dvv = kShift ? dv_g[s] + shift : dv_g[s];
        arr_g[s] += lib_->delay_ps(kind, vth, size, load, dl_g[s], dvv);
      }
    } else {
      // Identical expression shape to the scalar engine:
      //   mult = 1.0 + sL*dL + sV*dVth;  d = nominal * max(0.05, mult).
      const double nom = nominal_ps_[g];
      const double sl = sl_[g];
      const double sv = sv_[g];
      STATLEAK_VEC_LOOP
      for (std::size_t s = 0; s < lanes; ++s) {
        const double dvv = kShift ? dv_g[s] + shift : dv_g[s];
        const double mult = 1.0 + sl * dl_g[s] + sv * dvv;
        arr_g[s] += nom * std::max(0.05, mult);
      }
    }
  }
  // Critical delay: max over primary outputs in declaration order.
  for (std::size_t s = 0; s < lanes; ++s) out[s] = 0.0;
  for (const GateId o : flat_->outputs) {
    const double* STATLEAK_RESTRICT arr_o = arrival + o * stride;
    STATLEAK_VEC_LOOP
    for (std::size_t s = 0; s < lanes; ++s) {
      out[s] = std::max(out[s], arr_o[s]);
    }
  }
}

void BatchDelayKernel::critical_delay_block(const double* dl, const double* dv,
                                            std::size_t stride,
                                            std::size_t lanes,
                                            bool exact_delay,
                                            const double* dvth_shift,
                                            double* arrival,
                                            double* out) const {
  STATLEAK_CHECK(lanes > 0 && lanes <= stride,
                 "batch lanes must be in [1, stride]");
  const double shift = dvth_shift != nullptr ? *dvth_shift : 0.0;
  if (exact_delay) {
    if (dvth_shift != nullptr) {
      block_impl<true, true>(dl, dv, stride, lanes, shift, arrival, out);
    } else {
      block_impl<true, false>(dl, dv, stride, lanes, shift, arrival, out);
    }
  } else {
    if (dvth_shift != nullptr) {
      block_impl<false, true>(dl, dv, stride, lanes, shift, arrival, out);
    } else {
      block_impl<false, false>(dl, dv, stride, lanes, shift, arrival, out);
    }
  }
}

}  // namespace statleak
