/// \file batch_delay.hpp
/// \brief Sample-blocked, gate-major critical-delay kernel.
///
/// Evaluates a block of B Monte-Carlo samples ("lanes") through one timing
/// pass: for each gate, in topological order, it updates all B lanes before
/// advancing, so the gate's constants (nominal delay, sensitivities) stay in
/// registers and the lane loop runs over contiguous doubles the compiler can
/// auto-vectorize. Per-gate model constants are hoisted out of the sample
/// loop at construction time.
///
/// Bit-identity contract: for every lane, the kernel performs the exact same
/// IEEE-754 operation sequence as StaEngine::critical_delay_sample_ps — the
/// arrival max runs over fanins in pin order, the first-order multiplier
/// uses the identical expression shape, exact mode calls the same
/// CellLibrary::delay_ps overload, and the output max runs over primary
/// outputs in declaration order. Lanes never interact, so results are
/// independent of the block size; tests/mc_batched_test.cpp pins this
/// against the scalar engine bit-for-bit.
///
/// The kernel snapshots one implementation point: it points at the
/// FlatCircuit and copies the per-gate constants, so it must be rebuilt —
/// or rebind()-ed, which reuses the table allocations — after any
/// set_size/set_vth/load change (cheap, O(n)). rebind() is what lets a
/// corner sweep re-derive the constants per environment corner without
/// reallocating; see mc/arena.hpp.

#pragma once

#include <cstddef>
#include <vector>

#include "cells/library.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/loads.hpp"

namespace statleak {

class BatchDelayKernel {
 public:
  /// `flat` must outlive the kernel and describe the same implementation
  /// point as `loads` (i.e. snapshot after the last resize).
  BatchDelayKernel(const FlatCircuit& flat, const CellLibrary& lib,
                   const LoadCache& loads);

  /// Re-snapshots the kernel against a (possibly different) flat circuit,
  /// library, or load cache, reusing the constant-table allocations. The
  /// derived constants are recomputed from scratch, so a rebind()-ed kernel
  /// is indistinguishable from a freshly constructed one.
  void rebind(const FlatCircuit& flat, const CellLibrary& lib,
              const LoadCache& loads);

  /// Evaluates `lanes` samples at once. `dl`/`dv` are gate-major blocks of
  /// per-gate total deviations: lane s of gate g sits at [g * stride + s]
  /// (stride >= lanes). `arrival` is caller-owned scratch of num_gates *
  /// stride doubles; `out[s]` receives lane s's critical delay [ps].
  /// `dvth_shift` (nullable) is a uniform dVth added to every gate's dv
  /// before evaluation — the ABB body-bias shift; pass nullptr for plain
  /// Monte-Carlo so unshifted lanes reproduce the scalar path bit-for-bit
  /// without an `x + 0.0` rewrite.
  void critical_delay_block(const double* dl, const double* dv,
                            std::size_t stride, std::size_t lanes,
                            bool exact_delay, const double* dvth_shift,
                            double* arrival, double* out) const;

 private:
  template <bool kExact, bool kShift>
  void block_impl(const double* dl, const double* dv, std::size_t stride,
                  std::size_t lanes, double shift, double* arrival,
                  double* out) const;

  const FlatCircuit* flat_ = nullptr;
  const CellLibrary* lib_ = nullptr;
  // Indexed by GateId; inputs carry zeros.
  std::vector<double> nominal_ps_;  ///< nominal gate delay (first-order base)
  std::vector<double> sl_;          ///< delay_sl_per_nm of the gate's class
  std::vector<double> sv_;          ///< delay_sv_per_v of the gate's class
  std::vector<double> load_ff_;     ///< output load (exact mode)
};

}  // namespace statleak
