#include "sta/loads.hpp"

#include "util/error.hpp"

namespace statleak {

double output_load_ff(const Circuit& circuit, const CellLibrary& lib,
                      GateId id) {
  const auto fanouts = circuit.fanouts(id);
  double load = lib.wire_cap_ff(static_cast<int>(fanouts.size()));
  for (GateId fo : fanouts) {
    const Gate& receiver = circuit.gate(fo);
    load += lib.pin_cap_ff(receiver.kind, receiver.size);
  }
  if (circuit.is_output(id)) {
    load += kPrimaryOutputLoadFactor * lib.pin_cap_ff(CellKind::kInv, 1.0);
  }
  return load;
}

LoadCache::LoadCache(const Circuit& circuit, const CellLibrary& lib)
    : circuit_(circuit), lib_(lib) {
  STATLEAK_CHECK(circuit.finalized(), "LoadCache requires finalized circuit");
  rebuild();
}

void LoadCache::rebuild() {
  loads_.resize(circuit_.num_gates());
  for (GateId id = 0; id < circuit_.num_gates(); ++id) {
    loads_[id] = output_load_ff(circuit_, lib_, id);
  }
}

void LoadCache::on_resize(GateId resized) {
  for (GateId driver : circuit_.gate(resized).fanins) {
    loads_[driver] = output_load_ff(circuit_, lib_, driver);
  }
}

void LoadCache::restore_load(GateId id, double load_ff) {
  STATLEAK_CHECK(id < loads_.size(), "gate id out of range");
  loads_[id] = load_ff;
}

}  // namespace statleak
