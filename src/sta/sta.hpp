/// \file sta.hpp
/// \brief Deterministic static timing analysis.
///
/// Classic PERT traversal over the gate DAG: arrival times forward, required
/// times backward, slack per gate, critical-path extraction. Supports three
/// evaluation modes:
///
///   * nominal       — library delays at zero variation,
///   * corner        — every gate shifted by the same k-sigma worst-case
///                     (dL, dVth) excursion (the guard-band baseline the
///                     deterministic optimizer uses),
///   * per-sample    — each gate gets its own (dL, dVth) draw; used by the
///                     Monte-Carlo engine, in either first-order (linear
///                     multiplier) or exact (alpha-power) delay mode.

#pragma once

#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "sta/loads.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// Result of a full deterministic timing pass.
struct StaResult {
  std::vector<double> arrival_ps;   ///< per gate
  std::vector<double> required_ps;  ///< per gate, w.r.t. the given t_max
  std::vector<double> slack_ps;     ///< required - arrival
  double critical_delay_ps = 0.0;   ///< max arrival over primary outputs

  /// Worst slack over all gates.
  double worst_slack_ps() const;
};

/// Deterministic STA over a circuit with cached loads. The engine holds
/// references: circuit and library must outlive it. After the optimizer
/// mutates a gate's size, call on_resize(); Vth changes need no load update.
class StaEngine {
 public:
  StaEngine(const Circuit& circuit, const CellLibrary& lib);

  const LoadCache& loads() const { return loads_; }
  void on_resize(GateId id) { loads_.on_resize(id); }
  void rebuild_loads() { loads_.rebuild(); }

  /// Nominal delay of one gate (pseudo-inputs have zero delay).
  double gate_delay_ps(GateId id) const;

  /// Gate delay at a global k-sigma corner of the variation model (both dL
  /// and dVth pushed k standard deviations slow).
  double gate_delay_corner_ps(GateId id, const VariationModel& var,
                              double k_sigma) const;

  /// Full nominal analysis against a delay target.
  StaResult analyze(double t_max_ps) const;

  /// Full corner analysis: all gates at the same k-sigma slow excursion.
  StaResult analyze_corner(double t_max_ps, const VariationModel& var,
                           double k_sigma) const;

  /// Nominal critical delay only (no required/slack computation).
  double critical_delay_ps() const;

  /// Critical delay under per-gate parameter samples. `samples[id]` is the
  /// total (dL, dVth) of gate id. With `exact_delay` the alpha-power model
  /// is re-evaluated per gate; otherwise the first-order multiplier
  /// (1 + sL*dL + sV*dVth) is applied to the nominal delay. `scratch` is
  /// caller-provided to avoid per-sample allocation in Monte-Carlo loops.
  double critical_delay_sample_ps(std::span<const ParamSample> samples,
                                  bool exact_delay,
                                  std::vector<double>& scratch) const;

  /// Gates of the nominal critical path, input to output.
  std::vector<GateId> critical_path() const;

 private:
  template <typename DelayFn>
  StaResult analyze_impl(double t_max_ps, DelayFn&& delay) const;

  const Circuit& circuit_;
  const CellLibrary& lib_;
  LoadCache loads_;
};

}  // namespace statleak
