/// \file loads.hpp
/// \brief Output-load computation shared by STA, SSTA and Monte Carlo.
///
/// The load seen by a gate's output is wire capacitance (fixed + per-fanout)
/// plus the input-pin capacitance of every receiver. Primary outputs
/// additionally drive a fixed external load modeling the flop/pad they feed.
/// Loads depend on receiver sizes but not on Vth or process variation, so a
/// LoadCache can be computed once and patched incrementally when the
/// optimizer resizes a gate.

#pragma once

#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"

namespace statleak {

/// External load on primary outputs, in multiples of a unit-inverter pin cap.
inline constexpr double kPrimaryOutputLoadFactor = 4.0;

/// Load [fF] on the output net of `id`, computed from scratch.
double output_load_ff(const Circuit& circuit, const CellLibrary& lib,
                      GateId id);

/// Per-gate output loads with incremental update on resize.
class LoadCache {
 public:
  LoadCache(const Circuit& circuit, const CellLibrary& lib);

  /// Recomputes everything (after bulk mutations).
  void rebuild();

  /// Call after `resized` changed size: updates the loads of its fanin
  /// drivers (the only loads that depend on a gate's own size).
  void on_resize(GateId resized);

  /// Writes one cached load back verbatim. Used by the incremental SSTA
  /// engines' trial rollback, which saved the value with load_ff() before a
  /// tentative resize; never recomputes anything.
  void restore_load(GateId id, double load_ff);

  double load_ff(GateId id) const { return loads_[id]; }
  std::span<const double> loads() const { return loads_; }

 private:
  const Circuit& circuit_;
  const CellLibrary& lib_;
  std::vector<double> loads_;
};

}  // namespace statleak
