#include "gen/arithmetic.hpp"

#include "util/error.hpp"

namespace statleak {

FullAdderOutputs full_adder(NetBuilder& nb, GateId a, GateId b, GateId cin) {
  const GateId p = nb.xor2(a, b);
  FullAdderOutputs out;
  out.sum = nb.xor2(p, cin);
  const GateId g = nb.and2(a, b);
  const GateId t = nb.and2(p, cin);
  out.carry = nb.or2(g, t);
  return out;
}

AdderOutputs ripple_carry_adder(NetBuilder& nb, const std::vector<GateId>& a,
                                const std::vector<GateId>& b, GateId cin) {
  STATLEAK_CHECK(a.size() == b.size() && !a.empty(),
                 "adder operands must be equal non-empty widths");
  AdderOutputs out;
  GateId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto fa = full_adder(nb, a[i], b[i], carry);
    out.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  out.carry_out = carry;
  return out;
}

AdderOutputs carry_lookahead_adder(NetBuilder& nb,
                                   const std::vector<GateId>& a,
                                   const std::vector<GateId>& b, GateId cin) {
  STATLEAK_CHECK(a.size() == b.size() && !a.empty(),
                 "adder operands must be equal non-empty widths");
  const std::size_t n = a.size();
  AdderOutputs out;

  std::vector<GateId> p(n);
  std::vector<GateId> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = nb.xor2(a[i], b[i]);
    g[i] = nb.and2(a[i], b[i]);
  }

  // 4-bit lookahead groups; carry ripples between groups.
  GateId carry = cin;
  for (std::size_t base = 0; base < n; base += 4) {
    const std::size_t width = std::min<std::size_t>(4, n - base);
    std::vector<GateId> c(width + 1);
    c[0] = carry;
    for (std::size_t i = 0; i < width; ++i) {
      // c[i+1] = g_i OR (p_i AND c_i) ... expanded over the group:
      // c[i+1] = g[base+i] + p[base+i]*(g[base+i-1] + ...) — build the
      // canonical sum-of-products directly for lookahead parallelism.
      std::vector<GateId> terms;
      terms.push_back(g[base + i]);
      for (std::size_t j = 0; j < i; ++j) {
        // term: p_i & p_{i-1} & ... & p_{j+1} & g_j
        std::vector<GateId> factors;
        for (std::size_t k = j + 1; k <= i; ++k) factors.push_back(p[base + k]);
        factors.push_back(g[base + j]);
        terms.push_back(nb.and_tree(factors));
      }
      // carry-in propagation term: p_i & ... & p_0 & c0
      std::vector<GateId> cin_factors;
      for (std::size_t k = 0; k <= i; ++k) cin_factors.push_back(p[base + k]);
      cin_factors.push_back(c[0]);
      terms.push_back(nb.and_tree(cin_factors));
      c[i + 1] = nb.or_tree(terms);
    }
    for (std::size_t i = 0; i < width; ++i) {
      out.sum.push_back(nb.xor2(p[base + i], c[i]));
    }
    carry = c[width];
  }
  out.carry_out = carry;
  return out;
}

AdderOutputs carry_select_adder(NetBuilder& nb, const std::vector<GateId>& a,
                                const std::vector<GateId>& b, GateId cin,
                                int block_bits) {
  STATLEAK_CHECK(a.size() == b.size() && !a.empty(),
                 "adder operands must be equal non-empty widths");
  STATLEAK_CHECK(block_bits >= 1, "block size must be >= 1");
  const std::size_t n = a.size();
  AdderOutputs out;

  // First block computes with the real carry-in; later blocks compute both
  // alternatives and select.
  GateId carry = cin;
  bool first = true;
  for (std::size_t base = 0; base < n;
       base += static_cast<std::size_t>(block_bits)) {
    const std::size_t width =
        std::min<std::size_t>(static_cast<std::size_t>(block_bits), n - base);
    const std::vector<GateId> ab(a.begin() + static_cast<std::ptrdiff_t>(base),
                                 a.begin() +
                                     static_cast<std::ptrdiff_t>(base + width));
    const std::vector<GateId> bb(b.begin() + static_cast<std::ptrdiff_t>(base),
                                 b.begin() +
                                     static_cast<std::ptrdiff_t>(base + width));
    if (first) {
      const auto blk = ripple_carry_adder(nb, ab, bb, carry);
      out.sum.insert(out.sum.end(), blk.sum.begin(), blk.sum.end());
      carry = blk.carry_out;
      first = false;
      continue;
    }
    // Speculative versions for carry-in 0 and 1. Constant inputs are
    // realized as x & !x (0) and x | !x (1) on the block's first operand —
    // keeps the netlist purely combinational with no constant cells.
    const GateId not_a0 = nb.inv(ab[0]);
    const GateId zero = nb.and2(ab[0], not_a0);
    const GateId one = nb.or2(ab[0], not_a0);
    const auto blk0 = ripple_carry_adder(nb, ab, bb, zero);
    const auto blk1 = ripple_carry_adder(nb, ab, bb, one);
    for (std::size_t i = 0; i < width; ++i) {
      out.sum.push_back(nb.mux2(blk0.sum[i], blk1.sum[i], carry));
    }
    carry = nb.mux2(blk0.carry_out, blk1.carry_out, carry);
  }
  out.carry_out = carry;
  return out;
}

std::vector<GateId> array_multiplier(NetBuilder& nb,
                                     const std::vector<GateId>& a,
                                     const std::vector<GateId>& b) {
  STATLEAK_CHECK(a.size() == b.size() && a.size() >= 2,
                 "multiplier needs equal operand widths >= 2");
  const std::size_t n = a.size();

  // Partial-product plane.
  std::vector<std::vector<GateId>> pp(n, std::vector<GateId>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      pp[i][j] = nb.and2(a[j], b[i]);
    }
  }

  std::vector<GateId> product;
  product.reserve(2 * n);

  // A single constant-0 net, realized combinationally as a & !a.
  const GateId zero = nb.and2(a[0], nb.inv(a[0]));

  // Row 0 of the array is pp[0]; accumulate the remaining rows with
  // ripple-carry adder rows (a carry-save array would also work; the ripple
  // array matches c6288's deep, reconvergent structure).
  std::vector<GateId> acc(pp[0]);  // current partial sum, weights i..i+n-1
  GateId row_carry = zero;         // carry out of the previous adder row
  product.push_back(acc[0]);
  for (std::size_t i = 1; i < n; ++i) {
    // Shift acc right by one (its LSB was emitted), append the previous
    // row's carry as the new top bit, and add the next partial-product row.
    std::vector<GateId> addend_a(acc.begin() + 1, acc.end());
    addend_a.push_back(row_carry);
    const auto row = ripple_carry_adder(nb, addend_a, pp[i], zero);
    acc = row.sum;
    row_carry = row.carry_out;
    product.push_back(acc[0]);
  }
  // Remaining accumulated bits plus the final carry.
  for (std::size_t i = 1; i < acc.size(); ++i) product.push_back(acc[i]);
  product.push_back(row_carry);
  STATLEAK_CHECK(product.size() == 2 * n, "multiplier width bookkeeping");
  return product;
}

Circuit make_ripple_carry_adder(int bits) {
  STATLEAK_CHECK(bits >= 1, "adder width must be >= 1");
  NetBuilder nb("rca" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const GateId cin = nb.input("cin");
  const auto sum = ripple_carry_adder(nb, a, b, cin);
  nb.outputs(sum.sum);
  nb.output(sum.carry_out);
  return nb.finish();
}

Circuit make_carry_lookahead_adder(int bits) {
  STATLEAK_CHECK(bits >= 1, "adder width must be >= 1");
  NetBuilder nb("cla" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const GateId cin = nb.input("cin");
  const auto sum = carry_lookahead_adder(nb, a, b, cin);
  nb.outputs(sum.sum);
  nb.output(sum.carry_out);
  return nb.finish();
}

Circuit make_carry_select_adder(int bits, int block_bits) {
  STATLEAK_CHECK(bits >= 1, "adder width must be >= 1");
  NetBuilder nb("csel" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const GateId cin = nb.input("cin");
  const auto sum = carry_select_adder(nb, a, b, cin, block_bits);
  nb.outputs(sum.sum);
  nb.output(sum.carry_out);
  return nb.finish();
}

Circuit make_array_multiplier(int bits) {
  STATLEAK_CHECK(bits >= 2, "multiplier width must be >= 2");
  NetBuilder nb("mul" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const auto product = array_multiplier(nb, a, b);
  nb.outputs(product);
  return nb.finish();
}

}  // namespace statleak
