#include "gen/structures.hpp"

#include "gen/arithmetic.hpp"
#include "util/error.hpp"

namespace statleak {

namespace {

/// XOR2 expanded as four NAND2 gates — the classic c499 -> c1355 rewrite:
/// t = nand(a,b); out = nand(nand(a,t), nand(b,t)).
GateId xor_as_nand(NetBuilder& nb, GateId a, GateId b) {
  const GateId t = nb.nand2(a, b);
  return nb.nand2(nb.nand2(a, t), nb.nand2(b, t));
}

GateId xor_gate(NetBuilder& nb, GateId a, GateId b, bool expand) {
  return expand ? xor_as_nand(nb, a, b) : nb.xor2(a, b);
}

GateId xor_tree_opt(NetBuilder& nb, std::vector<GateId> terms, bool expand) {
  STATLEAK_CHECK(!terms.empty(), "xor tree of nothing");
  while (terms.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i < terms.size(); i += 2) {
      if (i + 1 < terms.size()) {
        next.push_back(xor_gate(nb, terms[i], terms[i + 1], expand));
      } else {
        next.push_back(terms[i]);
      }
    }
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace

GateId parity_tree(NetBuilder& nb, const std::vector<GateId>& bits) {
  return nb.xor_tree(bits);
}

EccOutputs ecc_checker(NetBuilder& nb, const std::vector<GateId>& data,
                       const std::vector<GateId>& check, bool expand_xor) {
  STATLEAK_CHECK(!data.empty() && !check.empty(),
                 "ecc needs data and check bits");
  EccOutputs out;
  const std::size_t k = check.size();
  for (std::size_t s = 0; s < k; ++s) {
    // Hamming-style strided coverage: syndrome bit s covers data positions
    // whose (s+1)-th binary digit of (index+1) is set — each data bit lands
    // in multiple trees, giving the heavy reconvergence of c499.
    std::vector<GateId> covered;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (((i + 1) >> s) & 1u) covered.push_back(data[i]);
    }
    if (covered.empty()) covered.push_back(data[s % data.size()]);
    const GateId tree = xor_tree_opt(nb, covered, expand_xor);
    out.syndrome.push_back(xor_gate(nb, tree, check[s], expand_xor));
  }
  out.error_detect = nb.or_tree(out.syndrome);
  return out;
}

PriorityOutputs priority_encoder(NetBuilder& nb,
                                 const std::vector<GateId>& request) {
  STATLEAK_CHECK(!request.empty(), "priority encoder needs requests");
  PriorityOutputs out;
  // blocked[i] = OR of requests 0..i-1, built as a prefix chain (linear
  // depth — matches c432's long priority chains).
  GateId blocked = kInvalidGate;
  for (std::size_t i = 0; i < request.size(); ++i) {
    if (i == 0) {
      out.grant.push_back(nb.buf(request[0]));
      blocked = request[0];
    } else {
      out.grant.push_back(nb.and2(request[i], nb.inv(blocked)));
      blocked = nb.or2(blocked, request[i]);
    }
  }
  out.valid = blocked;
  return out;
}

std::vector<GateId> decoder(NetBuilder& nb, const std::vector<GateId>& sel,
                            GateId enable) {
  STATLEAK_CHECK(!sel.empty() && sel.size() <= 8, "decoder sel width 1..8");
  const std::size_t n = std::size_t{1} << sel.size();
  std::vector<GateId> sel_n(sel.size());
  for (std::size_t i = 0; i < sel.size(); ++i) sel_n[i] = nb.inv(sel[i]);
  std::vector<GateId> out;
  out.reserve(n);
  for (std::size_t code = 0; code < n; ++code) {
    std::vector<GateId> terms;
    terms.push_back(enable);
    for (std::size_t b = 0; b < sel.size(); ++b) {
      terms.push_back(((code >> b) & 1u) ? sel[b] : sel_n[b]);
    }
    out.push_back(nb.and_tree(terms));
  }
  return out;
}

GateId mux_tree(NetBuilder& nb, const std::vector<GateId>& data,
                const std::vector<GateId>& sel) {
  STATLEAK_CHECK(!sel.empty(), "mux tree needs select bits");
  STATLEAK_CHECK(data.size() == (std::size_t{1} << sel.size()),
                 "mux tree: |data| must be 2^|sel|");
  std::vector<GateId> layer = data;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nb.mux2(layer[i], layer[i + 1], sel[s]));
    }
    layer = std::move(next);
  }
  return layer[0];
}

ComparatorOutputs comparator(NetBuilder& nb, const std::vector<GateId>& a,
                             const std::vector<GateId>& b) {
  STATLEAK_CHECK(a.size() == b.size() && !a.empty(),
                 "comparator operands must be equal non-empty widths");
  ComparatorOutputs out;
  // eq_i per bit; gt via MSB-down chain:
  // gt = OR_i (a_i & !b_i & AND_{j>i} eq_j).
  std::vector<GateId> eq_bits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eq_bits[i] = nb.xnor2(a[i], b[i]);
  out.eq = nb.and_tree(eq_bits);

  std::vector<GateId> gt_terms;
  GateId higher_eq = kInvalidGate;  // AND of eq bits above the current one
  for (std::size_t idx = a.size(); idx-- > 0;) {
    const GateId a_gt_b = nb.and2(a[idx], nb.inv(b[idx]));
    if (higher_eq == kInvalidGate) {
      gt_terms.push_back(a_gt_b);
      higher_eq = eq_bits[idx];
    } else {
      gt_terms.push_back(nb.and2(a_gt_b, higher_eq));
      higher_eq = nb.and2(higher_eq, eq_bits[idx]);
    }
  }
  out.gt = nb.or_tree(gt_terms);
  return out;
}

AluOutputs alu(NetBuilder& nb, const std::vector<GateId>& a,
               const std::vector<GateId>& b, const std::vector<GateId>& op) {
  STATLEAK_CHECK(a.size() == b.size() && !a.empty(),
                 "alu operands must be equal non-empty widths");
  STATLEAK_CHECK(op.size() == 2, "alu takes a 2-bit opcode");
  AluOutputs out;

  // Carry-in 0 for ADD, built once.
  const GateId zero = nb.and2(a[0], nb.inv(a[0]));
  const auto add = carry_lookahead_adder(nb, a, b, zero);
  out.carry_out = add.carry_out;

  for (std::size_t i = 0; i < a.size(); ++i) {
    const GateId and_i = nb.and2(a[i], b[i]);
    const GateId or_i = nb.or2(a[i], b[i]);
    const GateId xor_i = nb.xor2(a[i], b[i]);
    // op: 00 ADD, 01 AND, 10 OR, 11 XOR
    const GateId lo = nb.mux2(add.sum[i], and_i, op[0]);
    const GateId hi = nb.mux2(or_i, xor_i, op[0]);
    out.result.push_back(nb.mux2(lo, hi, op[1]));
  }
  return out;
}

Circuit make_parity_tree(int width) {
  STATLEAK_CHECK(width >= 2, "parity width must be >= 2");
  NetBuilder nb("parity" + std::to_string(width));
  const auto bits = nb.inputs("d", width);
  nb.output(parity_tree(nb, bits));
  return nb.finish();
}

Circuit make_ecc_checker(int data_bits, int check_bits, bool expand_xor) {
  STATLEAK_CHECK(data_bits >= 2 && check_bits >= 1, "bad ecc parameters");
  NetBuilder nb(std::string("ecc") + std::to_string(data_bits) + "x" +
                std::to_string(check_bits) + (expand_xor ? "n" : ""));
  const auto data = nb.inputs("d", data_bits);
  const auto check = nb.inputs("c", check_bits);
  const auto ecc = ecc_checker(nb, data, check, expand_xor);
  nb.outputs(ecc.syndrome);
  nb.output(ecc.error_detect);
  return nb.finish();
}

Circuit make_priority_encoder(int width) {
  STATLEAK_CHECK(width >= 2, "priority width must be >= 2");
  NetBuilder nb("prio" + std::to_string(width));
  const auto req = nb.inputs("r", width);
  const auto pri = priority_encoder(nb, req);
  nb.outputs(pri.grant);
  nb.output(pri.valid);
  return nb.finish();
}

Circuit make_decoder(int sel_bits) {
  STATLEAK_CHECK(sel_bits >= 1 && sel_bits <= 8, "decoder sel width 1..8");
  NetBuilder nb("dec" + std::to_string(sel_bits));
  const auto sel = nb.inputs("s", sel_bits);
  const GateId en = nb.input("en");
  nb.outputs(decoder(nb, sel, en));
  return nb.finish();
}

Circuit make_mux_tree(int sel_bits) {
  STATLEAK_CHECK(sel_bits >= 1 && sel_bits <= 8, "mux sel width 1..8");
  NetBuilder nb("mux" + std::to_string(sel_bits));
  const auto data = nb.inputs("d", 1 << sel_bits);
  const auto sel = nb.inputs("s", sel_bits);
  nb.output(mux_tree(nb, data, sel));
  return nb.finish();
}

Circuit make_comparator(int bits) {
  STATLEAK_CHECK(bits >= 1, "comparator width must be >= 1");
  NetBuilder nb("cmp" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const auto cmp = comparator(nb, a, b);
  nb.output(cmp.eq);
  nb.output(cmp.gt);
  return nb.finish();
}

Circuit make_alu(int bits) {
  STATLEAK_CHECK(bits >= 1, "alu width must be >= 1");
  NetBuilder nb("alu" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const auto op = nb.inputs("op", 2);
  const auto res = alu(nb, a, b, op);
  nb.outputs(res.result);
  nb.output(res.carry_out);
  return nb.finish();
}

}  // namespace statleak
