#include "gen/proxy.hpp"

#include <algorithm>
#include <unordered_map>

#include "gen/arithmetic.hpp"
#include "gen/builder.hpp"
#include "gen/random_dag.hpp"
#include "gen/structures.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {

namespace {

/// Emits `count` cells of mapped random logic over `pool` signals inside an
/// existing builder; dangling glue gates are returned so the caller can mark
/// them as outputs. Deterministic for a given seed.
std::vector<GateId> random_glue(NetBuilder& nb, std::vector<GateId> pool,
                                int count, std::uint64_t seed) {
  if (count <= 0) return {};
  STATLEAK_CHECK(pool.size() >= 4, "glue needs a few source signals");
  Rng rng(seed);
  std::vector<int> fanout(pool.size(), 0);
  const std::size_t base = pool.size();

  ScopedName scope(nb, "glue");
  for (int g = 0; g < count; ++g) {
    const CellKind kind = random_mapped_kind(rng);
    const int arity = cell_info(kind).fanin;
    std::vector<GateId> fanins;
    for (int pin = 0; pin < arity; ++pin) {
      // Uniform source selection keeps the glue shallow (logarithmic depth),
      // matching the wide control logic of the mirrored benchmarks.
      std::size_t idx = static_cast<std::size_t>(rng.uniform_index(pool.size()));
      for (int tries = 0;
           tries < 4 &&
           std::find(fanins.begin(), fanins.end(), pool[idx]) != fanins.end();
           ++tries) {
        idx = static_cast<std::size_t>(rng.uniform_index(pool.size()));
      }
      fanins.push_back(pool[idx]);
      ++fanout[idx];
    }
    pool.push_back(nb.make(kind, std::move(fanins)));
    fanout.push_back(0);
  }

  std::vector<GateId> sinks;
  for (std::size_t i = base; i < pool.size(); ++i) {
    if (fanout[i] == 0) sinks.push_back(pool[i]);
  }
  return sinks;
}

/// Tops a proxy up to ~target cells with glue over the given signals and
/// marks the glue sinks as outputs.
void top_up(NetBuilder& nb, const std::vector<GateId>& signals, int target,
            std::uint64_t seed) {
  const int deficit = target - static_cast<int>(nb.num_cells());
  if (deficit > 0) nb.outputs(random_glue(nb, signals, deficit, seed));
}

/// SEC corrector layer: corrected data bit i flips when the syndrome equals
/// the position code i+1 — an AND-tree match per bit plus an XOR.
std::vector<GateId> ecc_corrector(NetBuilder& nb,
                                  const std::vector<GateId>& data,
                                  const std::vector<GateId>& syndrome) {
  std::vector<GateId> syn_n(syndrome.size());
  for (std::size_t s = 0; s < syndrome.size(); ++s) {
    syn_n[s] = nb.inv(syndrome[s]);
  }
  std::vector<GateId> corrected;
  corrected.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<GateId> match;
    for (std::size_t s = 0; s < syndrome.size(); ++s) {
      match.push_back((((i + 1) >> s) & 1u) ? syndrome[s] : syn_n[s]);
    }
    corrected.push_back(nb.xor2(data[i], nb.and_tree(match)));
  }
  return corrected;
}

Circuit build_c432p() {
  // c432: 27-channel interrupt controller — priority chains over request
  // buses combined by control logic. Three 9-bit buses, per-bus priority,
  // cross-bus arbitration.
  NetBuilder nb("c432p");
  const auto busA = nb.inputs("a", 9);
  const auto busB = nb.inputs("b", 9);
  const auto busC = nb.inputs("c", 9);
  const auto pe = nb.inputs("e", 9);  // per-channel enables

  std::vector<GateId> gated;
  for (int i = 0; i < 9; ++i) {
    gated.push_back(nb.and2(busA[i], pe[i]));
  }
  const auto priA = priority_encoder(nb, gated);
  std::vector<GateId> chanB;
  for (int i = 0; i < 9; ++i) chanB.push_back(nb.and2(busB[i], priA.grant[i]));
  const auto priB = priority_encoder(nb, chanB);
  std::vector<GateId> chanC;
  for (int i = 0; i < 9; ++i) chanC.push_back(nb.and2(busC[i], priB.grant[i]));
  const auto priC = priority_encoder(nb, chanC);

  // Encode the 9 grants into 4 binary outputs + valid + parities.
  std::vector<GateId> enc;
  for (int bit = 0; bit < 4; ++bit) {
    std::vector<GateId> terms;
    for (int i = 0; i < 9; ++i) {
      if ((i >> bit) & 1) terms.push_back(priC.grant[static_cast<size_t>(i)]);
    }
    if (terms.empty()) terms.push_back(priC.grant[8]);
    enc.push_back(nb.or_tree(terms));
  }
  nb.outputs(enc);
  nb.output(priC.valid);
  nb.output(parity_tree(nb, busB));
  nb.output(parity_tree(nb, busC));

  std::vector<GateId> signals = gated;
  signals.insert(signals.end(), priA.grant.begin(), priA.grant.end());
  signals.insert(signals.end(), priB.grant.begin(), priB.grant.end());
  top_up(nb, signals, 165, 0x432);
  return nb.finish();
}

Circuit build_c499p(bool expand_xor) {
  // c499 / c1355: 32-bit single-error-correcting circuit. c1355 is the same
  // function with every XOR expanded into four NAND2s.
  NetBuilder nb(expand_xor ? "c1355p" : "c499p");
  const auto data = nb.inputs("d", 32);
  const auto check = nb.inputs("c", 6);
  const auto ecc = ecc_checker(nb, data, check, expand_xor);
  const auto corrected = ecc_corrector(nb, data, ecc.syndrome);
  nb.outputs(corrected);
  return nb.finish();
}

Circuit build_c880p() {
  // c880: 8-bit ALU with control decode and status flags.
  NetBuilder nb("c880p");
  const auto a = nb.inputs("a", 8);
  const auto b = nb.inputs("b", 8);
  const auto op = nb.inputs("op", 2);
  const auto mode = nb.inputs("m", 3);

  const auto core = alu(nb, a, b, op);
  nb.outputs(core.result);
  nb.output(core.carry_out);

  const auto cmp = comparator(nb, core.result, b);
  nb.output(cmp.eq);
  nb.output(cmp.gt);

  const auto sel = decoder(nb, mode, core.carry_out);
  nb.output(nb.or_tree(sel));
  nb.output(parity_tree(nb, core.result));

  std::vector<GateId> signals = core.result;
  signals.insert(signals.end(), a.begin(), a.end());
  signals.insert(signals.end(), b.begin(), b.end());
  top_up(nb, signals, 385, 0x880);
  return nb.finish();
}

Circuit build_c1908p() {
  // c1908: 16-bit SEC/DED error detector/corrector.
  NetBuilder nb("c1908p");
  const auto data = nb.inputs("d", 48);
  const auto check = nb.inputs("c", 7);
  const auto ecc = ecc_checker(nb, data, check, /*expand_xor=*/true);
  const auto corrected = ecc_corrector(nb, data, ecc.syndrome);
  for (std::size_t i = 0; i < 16; ++i) nb.output(corrected[i]);
  nb.output(ecc.error_detect);

  std::vector<GateId> signals(corrected.begin(), corrected.end());
  top_up(nb, signals, 890, 0x1908);
  return nb.finish();
}

Circuit build_c2670p() {
  // c2670: 12-bit ALU with comparator and priority control.
  NetBuilder nb("c2670p");
  const auto a = nb.inputs("a", 12);
  const auto b = nb.inputs("b", 12);
  const auto op = nb.inputs("op", 2);
  const auto req = nb.inputs("r", 24);

  const auto core = alu(nb, a, b, op);
  nb.outputs(core.result);
  const auto cmp = comparator(nb, core.result, b);
  nb.output(cmp.eq);
  nb.output(cmp.gt);
  const auto pri = priority_encoder(nb, req);
  nb.outputs(pri.grant);
  nb.output(pri.valid);
  nb.output(parity_tree(nb, req));

  std::vector<GateId> signals = core.result;
  signals.insert(signals.end(), pri.grant.begin(), pri.grant.end());
  top_up(nb, signals, 1200, 0x2670);
  return nb.finish();
}

Circuit build_c3540p() {
  // c3540: 8-bit ALU with binary/BCD arithmetic modes — proxied by a 16-bit
  // ALU plus a second adder stage and decode.
  NetBuilder nb("c3540p");
  const auto a = nb.inputs("a", 16);
  const auto b = nb.inputs("b", 16);
  const auto op = nb.inputs("op", 2);
  const auto mode = nb.inputs("m", 4);

  const auto core = alu(nb, a, b, op);
  const auto second = carry_select_adder(nb, core.result, b, core.carry_out);
  nb.outputs(second.sum);
  nb.output(second.carry_out);
  const auto sel = decoder(nb, mode, core.carry_out);
  nb.output(nb.or_tree(sel));

  std::vector<GateId> signals = core.result;
  signals.insert(signals.end(), second.sum.begin(), second.sum.end());
  top_up(nb, signals, 1670, 0x3540);
  return nb.finish();
}

Circuit build_c5315p() {
  // c5315: 9-bit ALU with two parallel arithmetic units and selectors.
  NetBuilder nb("c5315p");
  const auto a = nb.inputs("a", 9);
  const auto b = nb.inputs("b", 9);
  const auto c = nb.inputs("c", 9);
  const auto d = nb.inputs("d", 9);
  const auto op = nb.inputs("op", 2);

  const auto alu1 = alu(nb, a, b, op);
  const auto alu2 = alu(nb, c, d, op);
  std::vector<GateId> merged;
  for (std::size_t i = 0; i < 9; ++i) {
    merged.push_back(nb.mux2(alu1.result[i], alu2.result[i], alu1.carry_out));
  }
  const auto sum = carry_lookahead_adder(nb, merged, alu2.result,
                                         alu2.carry_out);
  nb.outputs(sum.sum);
  const auto cmp = comparator(nb, alu1.result, alu2.result);
  nb.output(cmp.eq);
  nb.output(cmp.gt);

  std::vector<GateId> signals = merged;
  signals.insert(signals.end(), sum.sum.begin(), sum.sum.end());
  top_up(nb, signals, 2310, 0x5315);
  return nb.finish();
}

Circuit build_c6288p() {
  // c6288: 16x16 array multiplier — mirrored directly; no glue.
  NetBuilder nb("c6288p");
  const auto a = nb.inputs("a", 16);
  const auto b = nb.inputs("b", 16);
  nb.outputs(array_multiplier(nb, a, b));
  return nb.finish();
}

Circuit build_c7552p() {
  // c7552: 34-bit adder/comparator with parity-checked inputs.
  NetBuilder nb("c7552p");
  const auto a = nb.inputs("a", 34);
  const auto b = nb.inputs("b", 34);
  const GateId cin = nb.input("cin");
  const auto sum = carry_lookahead_adder(nb, a, b, cin);
  nb.outputs(sum.sum);
  nb.output(sum.carry_out);
  const auto cmp = comparator(nb, a, b);
  nb.output(cmp.eq);
  nb.output(cmp.gt);
  const auto ecc = ecc_checker(
      nb, std::vector<GateId>(a.begin(), a.begin() + 32),
      std::vector<GateId>(b.begin(), b.begin() + 6), /*expand_xor=*/true);
  nb.output(ecc.error_detect);

  std::vector<GateId> signals = sum.sum;
  signals.insert(signals.end(), ecc.syndrome.begin(), ecc.syndrome.end());
  top_up(nb, signals, 3530, 0x7552);
  return nb.finish();
}

}  // namespace

std::vector<std::string> iscas85_proxy_names() {
  return {"c432p",  "c499p",  "c880p",  "c1355p", "c1908p",
          "c2670p", "c3540p", "c5315p", "c6288p", "c7552p"};
}

std::string mirrors_of(const std::string& proxy_name) {
  std::string base = proxy_name;
  if (!base.empty() && base.back() == 'p') base.pop_back();
  return base;
}

Circuit iscas85_proxy(const std::string& name) {
  std::string key = name;
  if (!key.empty() && key.back() != 'p') key += 'p';
  if (key == "c432p") return build_c432p();
  if (key == "c499p") return build_c499p(false);
  if (key == "c1355p") return build_c499p(true);
  if (key == "c880p") return build_c880p();
  if (key == "c1908p") return build_c1908p();
  if (key == "c2670p") return build_c2670p();
  if (key == "c3540p") return build_c3540p();
  if (key == "c5315p") return build_c5315p();
  if (key == "c6288p") return build_c6288p();
  if (key == "c7552p") return build_c7552p();
  throw Error("unknown ISCAS85 proxy: " + name);
}

std::vector<Circuit> iscas85_proxy_suite() {
  std::vector<Circuit> suite;
  for (const std::string& name : iscas85_proxy_names()) {
    suite.push_back(iscas85_proxy(name));
  }
  return suite;
}

}  // namespace statleak
