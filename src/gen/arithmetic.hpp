/// \file arithmetic.hpp
/// \brief Arithmetic circuit generators: adders and an array multiplier.
///
/// Each generator exists in two forms: a *core* that emits logic into a
/// NetBuilder given input GateIds (composable — used by the ISCAS85 proxies
/// and the ALU), and a standalone `make_*` wrapper producing a finalized
/// Circuit with named PIs/POs.

#pragma once

#include <vector>

#include "gen/builder.hpp"

namespace statleak {

/// Result of an adder core: per-bit sums plus the carry out.
struct AdderOutputs {
  std::vector<GateId> sum;
  GateId carry_out = kInvalidGate;
};

/// Full adder: (sum, carry) from (a, b, cin). 5 cells.
struct FullAdderOutputs {
  GateId sum = kInvalidGate;
  GateId carry = kInvalidGate;
};
FullAdderOutputs full_adder(NetBuilder& nb, GateId a, GateId b, GateId cin);

/// Ripple-carry adder core over bit vectors a, b (equal width) and cin.
AdderOutputs ripple_carry_adder(NetBuilder& nb, const std::vector<GateId>& a,
                                const std::vector<GateId>& b, GateId cin);

/// Carry-lookahead adder core (4-bit lookahead groups, rippled between
/// groups). Shallower than ripple for the same width.
AdderOutputs carry_lookahead_adder(NetBuilder& nb,
                                   const std::vector<GateId>& a,
                                   const std::vector<GateId>& b, GateId cin);

/// Carry-select adder core: blocks of `block_bits` computed for both carry
/// values and selected by the true block carry.
AdderOutputs carry_select_adder(NetBuilder& nb, const std::vector<GateId>& a,
                                const std::vector<GateId>& b, GateId cin,
                                int block_bits = 4);

/// Array multiplier core: `bits` x `bits` -> 2*bits product, built from an
/// AND partial-product plane reduced by ripple-carry adder rows (the c6288
/// structure: deep, reconvergent, adder-dominated).
std::vector<GateId> array_multiplier(NetBuilder& nb,
                                     const std::vector<GateId>& a,
                                     const std::vector<GateId>& b);

// --- standalone wrappers ---------------------------------------------------

Circuit make_ripple_carry_adder(int bits);
Circuit make_carry_lookahead_adder(int bits);
Circuit make_carry_select_adder(int bits, int block_bits = 4);
Circuit make_array_multiplier(int bits);

}  // namespace statleak
