/// \file scaling.hpp
/// \brief Deterministic scaling series for optimizer-throughput experiments.
///
/// The ISCAS85-class proxies top out near 4k cells — big enough to pin
/// behaviour, too small to expose layout effects (the scalar AoS engine
/// still fits its working set in cache there). This series extends the
/// proxy idea to 10^4..2x10^5 gates: seeded random mapped logic with the
/// proxy glue's locality profile, sized so the largest member's AoS gate
/// array firmly exceeds last-level cache while the flat-SoA engine's hot
/// arrays stay streamable. Members are generated, never stored; the same
/// (name -> spec) mapping on every machine makes BENCH_opt.json entries
/// comparable across hosts.

#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace statleak {

/// One member of the scaling series.
struct ScalingSpec {
  std::string name;  ///< "s10k", "s30k", "s100k", "s200k"
  int num_inputs = 0;
  int num_gates = 0;
  int num_outputs = 0;
  double locality = 0.0;
  std::uint64_t seed = 0;
};

/// The fixed four-member series: s10k (10^4 gates), s30k (3x10^4),
/// s100k (10^5), s200k (2x10^5).
std::vector<ScalingSpec> scaling_series();

/// Builds one member by name ("s10k" | "s30k" | "s100k" | "s200k").
/// Throws statleak::Error for unknown names.
Circuit scaling_circuit(const std::string& name);

}  // namespace statleak
