#include "gen/random_dag.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {

namespace {

/// Weighted kind mix approximating technology-mapped random logic.
struct KindWeight {
  CellKind kind;
  double weight;
};

constexpr KindWeight kMix[] = {
    {CellKind::kNand2, 0.26}, {CellKind::kNor2, 0.13},
    {CellKind::kInv, 0.12},   {CellKind::kAnd2, 0.10},
    {CellKind::kOr2, 0.08},   {CellKind::kXor2, 0.07},
    {CellKind::kNand3, 0.07}, {CellKind::kNor3, 0.05},
    {CellKind::kXnor2, 0.04}, {CellKind::kAoi21, 0.04},
    {CellKind::kOai21, 0.03}, {CellKind::kBuf, 0.02},
    {CellKind::kNand4, 0.02}, {CellKind::kAnd3, 0.02},
    {CellKind::kOr3, 0.02},   {CellKind::kMux2, 0.02},
    {CellKind::kNor4, 0.01},
};

}  // namespace

CellKind random_mapped_kind(Rng& rng) {
  double total = 0.0;
  for (const auto& kw : kMix) total += kw.weight;
  double draw = rng.uniform(0.0, total);
  for (const auto& kw : kMix) {
    draw -= kw.weight;
    if (draw <= 0.0) return kw.kind;
  }
  return CellKind::kNand2;
}

Circuit make_random_dag(const RandomDagSpec& spec) {
  STATLEAK_CHECK(spec.num_inputs >= 4, "random dag needs >= 4 inputs");
  STATLEAK_CHECK(spec.num_gates >= 1, "random dag needs >= 1 gate");
  STATLEAK_CHECK(spec.num_outputs >= 1, "random dag needs >= 1 output");
  STATLEAK_CHECK(spec.locality > 1.0, "locality must exceed 1");

  Rng rng(spec.seed);
  Circuit circuit("rand" + std::to_string(spec.num_gates) + "_s" +
                  std::to_string(spec.seed));

  std::vector<GateId> pool;  // candidate fanin sources, in creation order
  for (int i = 0; i < spec.num_inputs; ++i) {
    pool.push_back(circuit.add_input("in" + std::to_string(i)));
  }

  std::vector<int> fanout_count(pool.size(), 0);
  const double p_geo = 1.0 / spec.locality;

  for (int g = 0; g < spec.num_gates; ++g) {
    const CellKind kind = random_mapped_kind(rng);
    const int arity = cell_info(kind).fanin;
    std::vector<GateId> fanins;
    fanins.reserve(static_cast<std::size_t>(arity));
    for (int pin = 0; pin < arity; ++pin) {
      // Geometric recency bias from the newest pool entry backwards.
      std::size_t back = 0;
      while (rng.uniform() > p_geo && back + 1 < pool.size()) ++back;
      std::size_t idx = pool.size() - 1 - back;
      // Avoid duplicate fanins on one gate where possible (a gate fed twice
      // by the same net is legal but structurally uninteresting).
      for (int attempts = 0;
           attempts < 4 &&
           std::find(fanins.begin(), fanins.end(), pool[idx]) != fanins.end();
           ++attempts) {
        idx = static_cast<std::size_t>(rng.uniform_index(pool.size()));
      }
      fanins.push_back(pool[idx]);
      ++fanout_count[idx];
    }
    const GateId id =
        circuit.add_gate("g" + std::to_string(g), kind, std::move(fanins));
    pool.push_back(id);
    fanout_count.push_back(0);
  }

  // Outputs: prefer the newest sink gates, then promote any remaining
  // dangling gates so every cell drives something.
  std::vector<GateId> sinks;
  for (std::size_t i = static_cast<std::size_t>(spec.num_inputs);
       i < pool.size(); ++i) {
    if (fanout_count[i] == 0) sinks.push_back(pool[i]);
  }
  std::size_t marked = 0;
  for (auto it = sinks.rbegin(); it != sinks.rend(); ++it) {
    circuit.mark_output(*it);
    ++marked;
  }
  // If the DAG had fewer sinks than requested outputs, top up with the
  // newest gates.
  for (std::size_t i = pool.size();
       marked < static_cast<std::size_t>(spec.num_outputs) &&
       i-- > static_cast<std::size_t>(spec.num_inputs);) {
    if (fanout_count[i] != 0) {
      circuit.mark_output(pool[i]);
      ++marked;
    }
  }

  circuit.finalize();
  return circuit;
}

}  // namespace statleak
