#include "gen/prefix.hpp"

#include "util/error.hpp"

namespace statleak {

AdderOutputs kogge_stone_adder(NetBuilder& nb, const std::vector<GateId>& a,
                               const std::vector<GateId>& b, GateId cin) {
  STATLEAK_CHECK(a.size() == b.size() && !a.empty(),
                 "adder operands must be equal non-empty widths");
  const std::size_t n = a.size();

  // Bit-level generate/propagate; carry-in folds into position 0.
  std::vector<GateId> p(n);
  std::vector<GateId> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = nb.xor2(a[i], b[i]);
    g[i] = nb.and2(a[i], b[i]);
  }
  std::vector<GateId> big_g = g;
  std::vector<GateId> big_p = p;
  big_g[0] = nb.or2(g[0], nb.and2(p[0], cin));

  // Prefix levels: (G,P)_i := (G,P)_i o (G,P)_{i-d}.
  for (std::size_t d = 1; d < n; d *= 2) {
    std::vector<GateId> next_g = big_g;
    std::vector<GateId> next_p = big_p;
    for (std::size_t i = d; i < n; ++i) {
      next_g[i] = nb.or2(big_g[i], nb.and2(big_p[i], big_g[i - d]));
      next_p[i] = nb.and2(big_p[i], big_p[i - d]);
    }
    big_g = std::move(next_g);
    big_p = std::move(next_p);
  }

  AdderOutputs out;
  out.sum.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // carry into bit i is cin for i = 0, else the group generate G_{i-1}.
    const GateId carry_in = i == 0 ? cin : big_g[i - 1];
    out.sum.push_back(nb.xor2(p[i], carry_in));
  }
  out.carry_out = big_g[n - 1];
  return out;
}

std::vector<GateId> wallace_multiplier(NetBuilder& nb,
                                       const std::vector<GateId>& a,
                                       const std::vector<GateId>& b) {
  STATLEAK_CHECK(a.size() == b.size() && a.size() >= 2,
                 "multiplier needs equal operand widths >= 2");
  const std::size_t n = a.size();
  const std::size_t w = 2 * n;

  // Columns of partial-product bits by weight.
  std::vector<std::vector<GateId>> columns(w);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      columns[i + j].push_back(nb.and2(a[j], b[i]));
    }
  }

  // 3:2 / 2:2 reduction until every column holds at most two bits.
  bool reduced = true;
  while (reduced) {
    reduced = false;
    std::vector<std::vector<GateId>> next(w);
    for (std::size_t col = 0; col < w; ++col) {
      auto& bits = columns[col];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const auto fa = full_adder(nb, bits[i], bits[i + 1], bits[i + 2]);
        next[col].push_back(fa.sum);
        if (col + 1 < w) next[col + 1].push_back(fa.carry);
        i += 3;
        reduced = true;
      }
      if (bits.size() - i == 2 && bits.size() + next[col].size() - i > 2) {
        // Half adder only when the column would otherwise stay over two.
        const GateId sum = nb.xor2(bits[i], bits[i + 1]);
        const GateId carry = nb.and2(bits[i], bits[i + 1]);
        next[col].push_back(sum);
        if (col + 1 < w) next[col + 1].push_back(carry);
        i += 2;
        reduced = true;
      }
      for (; i < bits.size(); ++i) next[col].push_back(bits[i]);
    }
    columns = std::move(next);
    // Check whether any column still needs reduction.
    if (!reduced) {
      for (const auto& bits : columns) {
        if (bits.size() > 2) {
          reduced = true;
          break;
        }
      }
    }
  }

  // Final two rows, padded with a constant zero.
  const GateId zero = nb.and2(a[0], nb.inv(a[0]));
  std::vector<GateId> row_a(w, zero);
  std::vector<GateId> row_b(w, zero);
  for (std::size_t col = 0; col < w; ++col) {
    STATLEAK_CHECK(columns[col].size() <= 2, "reduction incomplete");
    if (!columns[col].empty()) row_a[col] = columns[col][0];
    if (columns[col].size() == 2) row_b[col] = columns[col][1];
  }
  const AdderOutputs sum = kogge_stone_adder(nb, row_a, row_b, zero);
  return sum.sum;  // the final carry out of bit 2n-1 is always 0
}

Circuit make_kogge_stone_adder(int bits) {
  STATLEAK_CHECK(bits >= 1, "adder width must be >= 1");
  NetBuilder nb("ks" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  const GateId cin = nb.input("cin");
  const auto sum = kogge_stone_adder(nb, a, b, cin);
  nb.outputs(sum.sum);
  nb.output(sum.carry_out);
  return nb.finish();
}

Circuit make_wallace_multiplier(int bits) {
  STATLEAK_CHECK(bits >= 2, "multiplier width must be >= 2");
  NetBuilder nb("wal" + std::to_string(bits));
  const auto a = nb.inputs("a", bits);
  const auto b = nb.inputs("b", bits);
  nb.outputs(wallace_multiplier(nb, a, b));
  return nb.finish();
}

}  // namespace statleak
