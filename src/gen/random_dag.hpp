/// \file random_dag.hpp
/// \brief Seeded random combinational DAG generator.
///
/// Used (a) to scale the runtime experiment beyond the ISCAS85-class sizes
/// and (b) as "glue" logic inside the proxy circuits. The generator draws
/// gate kinds from a weighted mix resembling mapped random logic and picks
/// fanins with a recency bias so the DAG develops realistic depth rather
/// than collapsing into a two-level structure.

#pragma once

#include <cstdint>

#include "netlist/circuit.hpp"

namespace statleak {

struct RandomDagSpec {
  int num_inputs = 32;
  int num_gates = 500;   ///< logic cells to create
  int num_outputs = 16;  ///< sampled among sink gates
  /// Recency bias: fanins are drawn ~Geometric(1/locality) steps back from
  /// the newest gate. Larger -> shallower, more random; smaller -> deeper.
  double locality = 40.0;
  std::uint64_t seed = 1;
};

/// Generates a finalized random circuit. Every non-output gate has at least
/// one fanout (dangling gates are promoted to primary outputs).
Circuit make_random_dag(const RandomDagSpec& spec);

class Rng;

/// Draws one cell kind from the mapped-random-logic mix (shared with the
/// proxy circuits' glue logic).
CellKind random_mapped_kind(Rng& rng);

}  // namespace statleak
