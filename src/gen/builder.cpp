#include "gen/builder.hpp"

#include "util/error.hpp"

namespace statleak {

std::vector<GateId> NetBuilder::inputs(const std::string& base, int count) {
  STATLEAK_CHECK(count > 0, "need at least one input");
  std::vector<GateId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ids.push_back(circuit_.add_input(base + std::to_string(i)));
  }
  return ids;
}

GateId NetBuilder::input(const std::string& name) {
  return circuit_.add_input(name);
}

void NetBuilder::outputs(const std::vector<GateId>& ids) {
  for (GateId id : ids) circuit_.mark_output(id);
}

void NetBuilder::output(GateId id) { circuit_.mark_output(id); }

void NetBuilder::push_scope(const std::string& scope) {
  scopes_.push_back(scope);
}

void NetBuilder::pop_scope() {
  STATLEAK_CHECK(!scopes_.empty(), "scope stack underflow");
  scopes_.pop_back();
}

std::string NetBuilder::next_name(CellKind kind) {
  std::string name;
  for (const auto& s : scopes_) {
    name += s;
    name += '/';
  }
  name += to_string(kind);
  name += '_';
  name += std::to_string(counter_++);
  return name;
}

GateId NetBuilder::make(CellKind kind, std::vector<GateId> fanins) {
  return circuit_.add_gate(next_name(kind), kind, std::move(fanins));
}

GateId NetBuilder::and_tree(std::vector<GateId> terms) {
  STATLEAK_CHECK(!terms.empty(), "and_tree of nothing");
  while (terms.size() > 1) {
    std::vector<GateId> next;
    std::size_t i = 0;
    while (i < terms.size()) {
      const std::size_t left = terms.size() - i;
      if (left == 3) {
        next.push_back(and3(terms[i], terms[i + 1], terms[i + 2]));
        i += 3;
      } else if (left >= 2) {
        next.push_back(and2(terms[i], terms[i + 1]));
        i += 2;
      } else {
        next.push_back(terms[i]);
        i += 1;
      }
    }
    terms = std::move(next);
  }
  return terms[0];
}

GateId NetBuilder::or_tree(std::vector<GateId> terms) {
  STATLEAK_CHECK(!terms.empty(), "or_tree of nothing");
  while (terms.size() > 1) {
    std::vector<GateId> next;
    std::size_t i = 0;
    while (i < terms.size()) {
      const std::size_t left = terms.size() - i;
      if (left == 3) {
        next.push_back(or3(terms[i], terms[i + 1], terms[i + 2]));
        i += 3;
      } else if (left >= 2) {
        next.push_back(or2(terms[i], terms[i + 1]));
        i += 2;
      } else {
        next.push_back(terms[i]);
        i += 1;
      }
    }
    terms = std::move(next);
  }
  return terms[0];
}

GateId NetBuilder::xor_tree(std::vector<GateId> terms) {
  STATLEAK_CHECK(!terms.empty(), "xor_tree of nothing");
  while (terms.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i < terms.size(); i += 2) {
      if (i + 1 < terms.size()) {
        next.push_back(xor2(terms[i], terms[i + 1]));
      } else {
        next.push_back(terms[i]);
      }
    }
    terms = std::move(next);
  }
  return terms[0];
}

Circuit NetBuilder::finish() {
  circuit_.finalize();
  Circuit out = std::move(circuit_);
  circuit_ = Circuit();
  scopes_.clear();
  counter_ = 0;
  return out;
}

}  // namespace statleak
