/// \file proxy.hpp
/// \brief ISCAS85 proxy suite.
///
/// The original ISCAS85 netlists are not redistributable inside this
/// repository, so each benchmark is mirrored by a *structural proxy*: a
/// circuit of the same functional class (priority logic, ECC, ALU,
/// multiplier, ...) and comparable size/depth, generated deterministically.
/// Where a structured core alone falls short of the target cell count, a
/// seeded block of mapped random "glue" logic over the core's internal
/// signals brings it to size — mimicking the control logic the originals
/// carry around their datapaths. Table 1 of the harness reports the actual
/// proxy statistics next to the benchmark each mirrors.

#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace statleak {

/// Names of the ten proxies: "c432p" ... "c7552p".
std::vector<std::string> iscas85_proxy_names();

/// Builds one proxy by name (with or without the trailing 'p').
/// Throws statleak::Error for unknown names.
Circuit iscas85_proxy(const std::string& name);

/// Builds the full ten-circuit suite in size order.
std::vector<Circuit> iscas85_proxy_suite();

/// The benchmark a proxy mirrors ("c432p" -> "c432").
std::string mirrors_of(const std::string& proxy_name);

}  // namespace statleak
