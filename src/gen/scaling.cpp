#include "gen/scaling.hpp"

#include "gen/random_dag.hpp"
#include "util/error.hpp"

namespace statleak {

std::vector<ScalingSpec> scaling_series() {
  // Locality grows with size (wider circuits have longer average wires in
  // mapped form), keeping depth in the few-dozen-levels range the ISCAS
  // proxies occupy instead of degenerating into thousand-level chains.
  return {
      {"s10k", 256, 10000, 128, 120.0, 0xA0001},
      {"s30k", 448, 30000, 224, 200.0, 0xA0002},
      {"s100k", 768, 100000, 384, 300.0, 0xA0003},
      {"s200k", 1024, 200000, 512, 400.0, 0xA0005},
  };
}

Circuit scaling_circuit(const std::string& name) {
  for (const ScalingSpec& s : scaling_series()) {
    if (s.name == name) {
      RandomDagSpec spec;
      spec.num_inputs = s.num_inputs;
      spec.num_gates = s.num_gates;
      spec.num_outputs = s.num_outputs;
      spec.locality = s.locality;
      spec.seed = s.seed;
      return make_random_dag(spec);
    }
  }
  throw Error("unknown scaling circuit: " + name);
}

}  // namespace statleak
