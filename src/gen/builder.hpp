/// \file builder.hpp
/// \brief Fluent helper for constructing netlists programmatically.
///
/// All circuit generators are written against NetBuilder: it wraps a Circuit,
/// auto-names gates under a structural prefix, and offers per-kind helpers
/// plus balanced reduction trees. Generator *cores* take a NetBuilder plus
/// input GateIds and return output GateIds, so generators compose — the
/// ISCAS85 proxy circuits are built by wiring several cores together.

#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace statleak {

class NetBuilder {
 public:
  explicit NetBuilder(std::string circuit_name)
      : circuit_(std::move(circuit_name)) {}

  /// Adds `count` primary inputs named "<base>0..". Returns their ids.
  std::vector<GateId> inputs(const std::string& base, int count);
  /// Adds one primary input.
  GateId input(const std::string& name);

  /// Marks gates as primary outputs.
  void outputs(const std::vector<GateId>& ids);
  void output(GateId id);

  /// Pushes/pops a naming-prefix scope ("mul/", "fa3/", ...).
  void push_scope(const std::string& scope);
  void pop_scope();

  // --- gate helpers -------------------------------------------------------
  GateId make(CellKind kind, std::vector<GateId> fanins);
  GateId inv(GateId a) { return make(CellKind::kInv, {a}); }
  GateId buf(GateId a) { return make(CellKind::kBuf, {a}); }
  GateId and2(GateId a, GateId b) { return make(CellKind::kAnd2, {a, b}); }
  GateId and3(GateId a, GateId b, GateId c) {
    return make(CellKind::kAnd3, {a, b, c});
  }
  GateId or2(GateId a, GateId b) { return make(CellKind::kOr2, {a, b}); }
  GateId or3(GateId a, GateId b, GateId c) {
    return make(CellKind::kOr3, {a, b, c});
  }
  GateId nand2(GateId a, GateId b) { return make(CellKind::kNand2, {a, b}); }
  GateId nor2(GateId a, GateId b) { return make(CellKind::kNor2, {a, b}); }
  GateId xor2(GateId a, GateId b) { return make(CellKind::kXor2, {a, b}); }
  GateId xnor2(GateId a, GateId b) { return make(CellKind::kXnor2, {a, b}); }
  /// out = !((a & b) | c)
  GateId aoi21(GateId a, GateId b, GateId c) {
    return make(CellKind::kAoi21, {a, b, c});
  }
  /// out = !((a | b) & c)
  GateId oai21(GateId a, GateId b, GateId c) {
    return make(CellKind::kOai21, {a, b, c});
  }
  /// out = sel ? b : a
  GateId mux2(GateId a, GateId b, GateId sel) {
    return make(CellKind::kMux2, {a, b, sel});
  }

  // --- balanced reduction trees -------------------------------------------
  GateId and_tree(std::vector<GateId> terms);
  GateId or_tree(std::vector<GateId> terms);
  GateId xor_tree(std::vector<GateId> terms);

  /// Finalizes and returns the circuit. The builder is left empty.
  Circuit finish();

  /// Number of logic cells created so far.
  std::size_t num_cells() const { return circuit_.num_cells(); }

 private:
  std::string next_name(CellKind kind);

  Circuit circuit_;
  std::vector<std::string> scopes_;
  std::size_t counter_ = 0;
};

/// RAII scope guard for NetBuilder naming prefixes.
class ScopedName {
 public:
  ScopedName(NetBuilder& builder, const std::string& scope)
      : builder_(builder) {
    builder_.push_scope(scope);
  }
  ~ScopedName() { builder_.pop_scope(); }
  ScopedName(const ScopedName&) = delete;
  ScopedName& operator=(const ScopedName&) = delete;

 private:
  NetBuilder& builder_;
};

}  // namespace statleak
