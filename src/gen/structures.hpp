/// \file structures.hpp
/// \brief Structured logic generators: parity/ECC, priority, decode, select,
///        compare, and a small ALU. Together with arithmetic.hpp these give
///        the structural vocabulary of the ISCAS85 suite.

#pragma once

#include <vector>

#include "gen/builder.hpp"

namespace statleak {

/// XOR parity tree over the inputs. width-1 cells, log depth.
GateId parity_tree(NetBuilder& nb, const std::vector<GateId>& bits);

/// Hamming-style syndrome checker: `check_bits` parity trees over strided
/// subsets of `data`, XORed against the stored check inputs, plus a
/// "syndrome != 0" detect output. The c499/c1355 structural class.
/// When `expand_xor` is set, each XOR2 is expanded into 4 NAND2 gates —
/// exactly the c499 -> c1355 transformation.
struct EccOutputs {
  std::vector<GateId> syndrome;
  GateId error_detect = kInvalidGate;
};
EccOutputs ecc_checker(NetBuilder& nb, const std::vector<GateId>& data,
                       const std::vector<GateId>& check, bool expand_xor);

/// Priority encoder with one-hot grant outputs: grant[i] is high iff
/// request[i] is the highest-priority (lowest-index) asserted request.
/// Includes a "any request" valid output. The c432 structural class.
struct PriorityOutputs {
  std::vector<GateId> grant;
  GateId valid = kInvalidGate;
};
PriorityOutputs priority_encoder(NetBuilder& nb,
                                 const std::vector<GateId>& request);

/// Full binary decoder: sel (LSB-first) -> 2^|sel| one-hot outputs, gated by
/// enable.
std::vector<GateId> decoder(NetBuilder& nb, const std::vector<GateId>& sel,
                            GateId enable);

/// Mux tree selecting one of data (|data| must be a power of two) by sel
/// (LSB-first, |sel| = log2 |data|).
GateId mux_tree(NetBuilder& nb, const std::vector<GateId>& data,
                const std::vector<GateId>& sel);

/// Magnitude comparator: (eq, gt) for unsigned a vs b (equal widths).
struct ComparatorOutputs {
  GateId eq = kInvalidGate;
  GateId gt = kInvalidGate;
};
ComparatorOutputs comparator(NetBuilder& nb, const std::vector<GateId>& a,
                             const std::vector<GateId>& b);

/// Small ALU: op (2 bits, LSB-first) selects among ADD, AND, OR, XOR over
/// two `bits`-wide operands. Result plus carry-out (valid for ADD).
/// The c880/c2670/c3540 structural class.
struct AluOutputs {
  std::vector<GateId> result;
  GateId carry_out = kInvalidGate;
};
AluOutputs alu(NetBuilder& nb, const std::vector<GateId>& a,
               const std::vector<GateId>& b, const std::vector<GateId>& op);

// --- standalone wrappers ---------------------------------------------------

Circuit make_parity_tree(int width);
Circuit make_ecc_checker(int data_bits, int check_bits, bool expand_xor);
Circuit make_priority_encoder(int width);
Circuit make_decoder(int sel_bits);
Circuit make_mux_tree(int sel_bits);
Circuit make_comparator(int bits);
Circuit make_alu(int bits);

}  // namespace statleak
