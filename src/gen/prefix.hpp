/// \file prefix.hpp
/// \brief Parallel-prefix adder (Kogge-Stone) and Wallace-tree multiplier.
///
/// Structural counterpoints to arithmetic.hpp's ripple/CLA/array circuits:
/// log-depth carry networks with heavy wiring (Kogge-Stone) and a
/// carry-save reduction tree (Wallace). They broaden the suite's depth/
/// reconvergence spectrum, which is what the SSTA MAX approximation and the
/// optimizers are sensitive to.

#pragma once

#include "gen/arithmetic.hpp"
#include "gen/builder.hpp"

namespace statleak {

/// Kogge-Stone parallel-prefix adder core: log2(width) prefix levels of
/// (generate, propagate) pairs.
AdderOutputs kogge_stone_adder(NetBuilder& nb, const std::vector<GateId>& a,
                               const std::vector<GateId>& b, GateId cin);

/// Wallace-tree multiplier core: partial products reduced with 3:2
/// compressors (full adders) until two rows remain, summed by a
/// Kogge-Stone adder.
std::vector<GateId> wallace_multiplier(NetBuilder& nb,
                                       const std::vector<GateId>& a,
                                       const std::vector<GateId>& b);

Circuit make_kogge_stone_adder(int bits);
Circuit make_wallace_multiplier(int bits);

}  // namespace statleak
