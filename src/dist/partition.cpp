#include "dist/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statleak::dist {

std::vector<SlotRange> partition_samples(std::uint64_t n, int max_shards,
                                         std::uint64_t min_shard) {
  std::vector<SlotRange> shards;
  if (n == 0) return shards;
  const auto want = static_cast<std::uint64_t>(std::max(1, max_shards));
  min_shard = std::max<std::uint64_t>(1, min_shard);
  // Shard count: as many as requested, but never shards smaller than the
  // floor (the final shard absorbs the remainder instead of undershooting).
  const std::uint64_t count = std::max<std::uint64_t>(
      1, std::min(want, n / std::min(n, min_shard)));
  const std::uint64_t base = n / count;
  const std::uint64_t extra = n % count;  // first `extra` shards get +1
  std::uint64_t begin = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t size = base + (i < extra ? 1 : 0);
    shards.push_back({begin, begin + size});
    begin += size;
  }
  STATLEAK_ASSERT(begin == n, "partition must cover the sample space");
  return shards;
}

std::vector<SlotRange> undone_ranges(const std::vector<std::uint8_t>& done,
                                     const SlotRange& within) {
  STATLEAK_ASSERT(within.end <= done.size(),
                  "done mask must cover the queried range");
  std::vector<SlotRange> runs;
  std::uint64_t s = within.begin;
  while (s < within.end) {
    while (s < within.end && done[s] != 0) ++s;
    if (s == within.end) break;
    std::uint64_t e = s;
    while (e < within.end && done[e] == 0) ++e;
    runs.push_back({s, e});
    s = e;
  }
  return runs;
}

}  // namespace statleak::dist
