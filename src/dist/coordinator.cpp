#include "dist/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/net.hpp"
#include "dist/partition.hpp"
#include "dist/protocol.hpp"
#include "mc/checkpoint.hpp"
#include "obs/snapshot.hpp"
#include "util/fault.hpp"

namespace statleak::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// How many replacement forks a pool campaign may burn before a lost
/// worker becomes fatal: the initial fleet plus three full refills.
constexpr int kRespawnFactor = 4;

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One worker, pooled child or TCP peer, with its protocol stream and the
/// coordinator-side bookkeeping (in-flight shard, liveness, throughput).
struct Conn {
  Conn(int id_, pid_t pid_, int read_fd_, int write_fd_)
      : id(id_),
        pid(pid_),
        read_fd(read_fd_),
        write_fd(write_fd_),
        stream(read_fd_, write_fd_),
        last_heard(Clock::now()),
        started(Clock::now()) {}

  int id;
  pid_t pid;  ///< pooled child; -1 for TCP peers
  int read_fd;
  int write_fd;
  MessageStream stream;
  bool ready = false;  ///< hello received, setup sent
  bool alive = true;
  bool has_bye = false;
  std::optional<SlotRange> inflight;
  Clock::time_point last_heard;
  Clock::time_point started;
  std::uint64_t samples_committed = 0;
  obs::Json bye_registry;
};

class Campaign {
 public:
  Campaign(const api::McCommandConfig& command, const DistConfig& dist,
           obs::Registry* obs)
      : dist_(dist), obs_(obs), study_(api::prepare_mc_study(command)) {
    build_setup(command);
    init_population();
    build_queue();
  }

  ~Campaign() { kill_fleet(); }

  CampaignResult run() {
    // A worker that died mid-send must surface as a failed send, not a
    // process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    obs::ScopedTimer timer(obs_, "dist.campaign");
    try {
      connect_fleet();
      event_loop();
      if (deadline_expired_) {
        kill_fleet();  // partial result; workers' shards are moot now
      } else {
        stop_fleet();
      }
    } catch (...) {
      kill_fleet();
      throw;
    }
    timer.stop();
    publish_fleet_stats();
    result_.command = api::finalize_mc_campaign(study_, std::move(pop_), obs_);
    return std::move(result_);
  }

 private:
  // ------------------------------------------------------------- setup -----

  void build_setup(const api::McCommandConfig& command) {
    WorkerSetup setup;
    if (!command.input.bench_text.empty()) {
      setup.input.bench_text = command.input.bench_text;
      setup.input.circuit_name = command.input.circuit_name;
    } else {
      // Ship the raw file bytes; every worker parses exactly what the
      // coordinator read, wherever it runs.
      setup.input.bench_text = slurp_file(command.input.bench_path);
      setup.input.circuit_name = study_.study.circuit.name();
    }
    if (!command.input.impl_text.empty()) {
      setup.input.impl_text = command.input.impl_text;
    } else if (!command.input.impl_path.empty()) {
      setup.input.impl_text = slurp_file(command.input.impl_path);
    }
    setup.input.node_nm = command.input.node_nm;
    setup.input.node_name = command.input.node_name;
    setup.input.temperature_k = command.input.temperature_k;
    setup.input.vdd_v = command.input.vdd_v;
    setup.input.sigma_scale = command.input.sigma_scale;
    setup.mc = study_.mc;  // resolved once; workers never re-resolve
    setup.t_max_ps = study_.t_max_ps;
    setup.threads = dist_.worker_threads;
    setup_json_ = setup_message(setup);
  }

  void init_population() {
    const auto n = static_cast<std::uint64_t>(study_.mc.num_samples);
    pop_.delay_ps.assign(n, 0.0);
    pop_.leakage_na.assign(n, 0.0);
    pop_.done.assign(n, 0);
    const std::string& path = study_.mc.checkpoint_path;
    if (path.empty()) return;
    const std::uint64_t hash = mc_checkpoint_hash(
        study_.study.circuit, study_.study.var, study_.mc,
        mc_device_widths(study_.study.circuit, study_.study.lib),
        study_.study.lib.node());
    if (checkpoint_exists(path)) {
      CheckpointData data = load_checkpoint(path, hash, n);
      pop_.delay_ps = std::move(data.delay_ps);
      pop_.leakage_na = std::move(data.leakage_na);
      pop_.done = std::move(data.done);
      pop_.samples_restored = data.done_count;
      writer_ = CheckpointWriter::resume(path, hash, n);
    } else {
      writer_ = CheckpointWriter::create(path, hash, n);
    }
  }

  void build_queue() {
    const auto n = static_cast<std::uint64_t>(study_.mc.num_samples);
    const std::vector<SlotRange> gaps = undone_ranges(pop_.done, {0, n});
    std::uint64_t undone = 0;
    for (const SlotRange& g : gaps) undone += g.size();
    if (undone == 0) return;
    const auto target =
        static_cast<std::uint64_t>(std::max(1, dist_.workers)) *
        static_cast<std::uint64_t>(std::max(1, dist_.shards_per_worker));
    const std::uint64_t shard =
        std::max<std::uint64_t>(1, (undone + target - 1) / target);
    for (const SlotRange& g : gaps) {
      for (std::uint64_t b = g.begin; b < g.end; b += shard) {
        queue_.push_back({b, std::min(b + shard, g.end)});
      }
    }
  }

  // ------------------------------------------------------------- fleet -----

  void spawn_pool_worker() {
    int to_child[2];
    int from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      throw DistError(std::string("campaign pool: pipe failed: ") +
                      std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw DistError(std::string("campaign pool: fork failed: ") +
                      std::strerror(errno));
    }
    if (pid == 0) {
      // Child: protocol on stdin/stdout, stderr inherited for diagnostics.
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      ::execl("/proc/self/exe", "statleak", "worker", "--stdio",
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    // Keep the coordinator's ends out of later-forked siblings.
    ::fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(from_child[0], F_SETFD, FD_CLOEXEC);
    conns_.push_back(
        std::make_unique<Conn>(next_id_++, pid, from_child[0], to_child[1]));
    ++result_.workers_spawned;
  }

  void connect_fleet() {
    const int workers = std::max(1, dist_.workers);
    if (dist_.listen.empty()) {
      for (int i = 0; i < workers; ++i) spawn_pool_worker();
      return;
    }
    int port = 0;
    listen_fd_ = listen_tcp(dist_.listen, &port);
    if (!dist_.port_file.empty()) {
      std::ofstream pf(dist_.port_file, std::ios::trunc);
      pf << port << "\n";
      if (!pf) {
        throw DistError("cannot write port file '" + dist_.port_file + "'");
      }
    }
    const int timeout_ms =
        dist_.heartbeat_ms > 0 ? static_cast<int>(dist_.heartbeat_ms) : 60000;
    for (int i = 0; i < workers; ++i) {
      const int fd = accept_tcp(listen_fd_, timeout_ms);
      if (fd < 0) {
        throw DistError("timed out waiting for " + std::to_string(workers) +
                        " worker connections");
      }
      conns_.push_back(std::make_unique<Conn>(next_id_++, -1, fd, fd));
      ++result_.workers_spawned;
    }
  }

  int alive_count() const {
    int n = 0;
    for (const auto& c : conns_) n += c->alive ? 1 : 0;
    return n;
  }

  bool any_inflight() const {
    for (const auto& c : conns_) {
      if (c->alive && c->inflight) return true;
    }
    return false;
  }

  /// Declares a worker lost: tear down its process/transport and put the
  /// *undone* sub-ranges of its in-flight shard back at the front of the
  /// queue — committed slots are never recomputed.
  void lose(Conn& c) {
    if (!c.alive) return;
    c.alive = false;
    close_conn(c);
    ++result_.workers_lost;
    if (c.inflight) {
      const std::vector<SlotRange> gaps = undone_ranges(pop_.done, *c.inflight);
      for (auto it = gaps.rbegin(); it != gaps.rend(); ++it) {
        queue_.push_front(*it);
      }
      result_.shards_redispatched += gaps.size();
      c.inflight.reset();
    }
  }

  void close_conn(Conn& c) {
    if (c.pid > 0) {
      ::kill(c.pid, SIGKILL);
      int status = 0;
      ::waitpid(c.pid, &status, 0);
      c.pid = -1;
    }
    if (c.read_fd >= 0) ::close(c.read_fd);
    if (c.write_fd >= 0 && c.write_fd != c.read_fd) ::close(c.write_fd);
    c.read_fd = -1;
    c.write_fd = -1;
  }

  /// Keeps the fleet at strength while work remains: pool mode forks
  /// replacements until the respawn budget is spent; an empty fleet with
  /// work left is fatal either way.
  void ensure_fleet() {
    if (queue_.empty() && !any_inflight()) return;
    int alive = alive_count();
    if (dist_.listen.empty()) {
      const int budget = std::max(1, dist_.workers) * kRespawnFactor;
      while (alive < std::max(1, dist_.workers) &&
             result_.workers_spawned < budget) {
        spawn_pool_worker();
        ++alive;
      }
    }
    if (alive == 0) {
      throw DistError("every worker lost with " +
                      std::to_string(queue_.size()) +
                      " shard(s) still queued");
    }
  }

  // -------------------------------------------------------------- loop -----

  void event_loop() {
    const Deadline deadline(study_.mc.deadline_ms);
    for (;;) {
      if (queue_.empty() && !any_inflight()) return;
      if (deadline.expired()) {
        deadline_expired_ = true;
        return;
      }
      ensure_fleet();
      dispatch_ready();
      poll_once();
      reap_children();
      check_heartbeats();
    }
  }

  void dispatch_ready() {
    for (const auto& c : conns_) {
      if (queue_.empty()) return;
      if (!c->alive || !c->ready || c->inflight) continue;
      const SlotRange r = queue_.front();
      queue_.pop_front();
      if (!c->stream.send(shard_message(r.begin, r.end))) {
        queue_.push_front(r);
        lose(*c);
        continue;
      }
      c->inflight = r;
      ++result_.shards_dispatched;
    }
  }

  void poll_once() {
    std::vector<pollfd> fds;
    std::vector<Conn*> who;
    for (const auto& c : conns_) {
      if (!c->alive) continue;
      fds.push_back({c->read_fd, POLLIN, 0});
      who.push_back(c.get());
    }
    if (fds.empty()) return;  // ensure_fleet() deals with an empty fleet
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Conn& c = *who[i];
      if (!c.alive) continue;
      if (!c.stream.feed()) {
        lose(c);
        continue;
      }
      while (c.alive) {
        std::optional<obs::Json> msg = c.stream.next_message();
        if (!msg) break;
        handle(c, *msg);
      }
    }
  }

  void handle(Conn& c, const obs::Json& msg) {
    c.last_heard = Clock::now();
    const std::string type = message_type(msg);
    if (type == "hello") {
      if (!c.stream.send(setup_json_)) {
        lose(c);
        return;
      }
      c.ready = true;
      c.started = Clock::now();
    } else if (type == "block") {
      handle_block(c, msg);
    } else if (type == "shard_done") {
      c.inflight.reset();
    } else if (type == "bye") {
      c.has_bye = true;
      c.bye_registry = msg.at("registry");
    } else if (type == "error") {
      // A compute error is deterministic: every re-dispatch would hit it
      // too. Surface it as the statleak::Error it would have been
      // single-host (CLI exit 3), not as a transport failure.
      throw Error("worker " + std::to_string(c.id) + ": " +
                  msg.at("message").as_string());
    } else {
      throw DistError("unexpected message '" + type + "' from worker " +
                      std::to_string(c.id));
    }
  }

  void handle_block(Conn& c, const obs::Json& msg) {
    Block b = parse_block(msg);
    validate_checkpoint_range(b.begin, b.delay_ps.size(),
                              static_cast<std::uint64_t>(
                                  study_.mc.num_samples));
    [[maybe_unused]] const std::uint64_t ordinal = result_.blocks_received++;
    if (STATLEAK_FAULT_FIRES(fault::Point::kWorkerExit, ordinal)) {
      // Deterministic "worker died mid-send": drop the block and kill the
      // sender; recovery re-dispatches the undone sub-ranges.
      lose(c);
      return;
    }
    commit_block(c, b);
  }

  /// First-committed-wins merge of one block, appending the *fresh*
  /// contiguous runs to the campaign checkpoint.
  void commit_block(Conn& c, const Block& b) {
    std::uint64_t run_begin = 0;
    std::uint64_t run_len = 0;
    const auto flush_run = [&] {
      if (run_len == 0) return;
      if (writer_) {
        writer_->append(
            run_begin,
            std::span<const double>(&pop_.delay_ps[run_begin], run_len),
            std::span<const double>(&pop_.leakage_na[run_begin], run_len));
      }
      run_len = 0;
    };
    for (std::size_t i = 0; i < b.delay_ps.size(); ++i) {
      const std::uint64_t slot = b.begin + i;
      if (pop_.done[slot] != 0) {
        ++result_.slots_recomputed;  // straggler duplicate; first wins
        flush_run();
        continue;
      }
      pop_.delay_ps[slot] = b.delay_ps[i];
      pop_.leakage_na[slot] = b.leakage_na[i];
      pop_.done[slot] = 1;
      ++c.samples_committed;
      if (run_len == 0) run_begin = slot;
      ++run_len;
    }
    flush_run();
  }

  void reap_children() {
    for (const auto& c : conns_) {
      if (!c->alive || c->pid <= 0) continue;
      int status = 0;
      if (::waitpid(c->pid, &status, WNOHANG) > 0) {
        c->pid = -1;  // already reaped
        lose(*c);
      }
    }
  }

  void check_heartbeats() {
    if (dist_.heartbeat_ms <= 0) return;
    const Clock::time_point now = Clock::now();
    for (const auto& c : conns_) {
      if (!c->alive || !c->inflight) continue;
      const auto silent_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - c->last_heard)
              .count();
      if (silent_ms > dist_.heartbeat_ms) lose(*c);
    }
  }

  // ----------------------------------------------------------- teardown ----

  /// Clean shutdown: stop every worker, collect its registry snapshot and
  /// merge it (prefixed "w<id>.") into the campaign registry.
  void stop_fleet() {
    for (const auto& c : conns_) {
      if (!c->alive || !c->ready) continue;
      if (!c->stream.send(stop_message())) {
        lose(*c);
        continue;
      }
      while (!c->has_bye) {
        std::optional<obs::Json> msg = c->stream.read_message(5000);
        if (!msg) break;  // late straggler blocks still merge below
        handle(*c, *msg);
      }
      if (obs_ != nullptr && c->has_bye) {
        const std::string prefix = "w" + std::to_string(c->id) + ".";
        obs::merge_registry_snapshot(*obs_, c->bye_registry, prefix);
        const double secs = std::chrono::duration<double>(Clock::now() -
                                                          c->started)
                                .count();
        if (c->samples_committed > 0 && secs > 0.0) {
          obs_->set_gauge(
              "dist." + prefix + "samples_per_s",
              static_cast<double>(c->samples_committed) / secs);
        }
      }
      c->alive = false;
      close_conn(*c);
    }
    kill_fleet();  // anything that never became ready
  }

  void kill_fleet() {
    for (const auto& c : conns_) {
      if (!c->alive) continue;
      c->alive = false;
      close_conn(*c);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  void publish_fleet_stats() {
    if (obs_ == nullptr) return;
    obs_->note_config("dist.mode", dist_.listen.empty() ? "pool" : "tcp");
    obs_->note_config_num("dist.workers",
                          static_cast<std::int64_t>(dist_.workers));
    obs_->note_config_num("dist.worker_threads",
                          static_cast<std::int64_t>(dist_.worker_threads));
    obs_->note_config_num("dist.heartbeat_ms",
                          static_cast<std::int64_t>(dist_.heartbeat_ms));
    obs_->add("dist.workers_spawned", result_.workers_spawned);
    obs_->add("dist.workers_lost", result_.workers_lost);
    obs_->add("dist.shards_dispatched",
              static_cast<double>(result_.shards_dispatched));
    obs_->add("dist.shards_redispatched",
              static_cast<double>(result_.shards_redispatched));
    obs_->add("dist.blocks_received",
              static_cast<double>(result_.blocks_received));
    obs_->add("dist.slots_recomputed",
              static_cast<double>(result_.slots_recomputed));
  }

  DistConfig dist_;
  obs::Registry* obs_;
  api::McStudy study_;
  obs::Json setup_json_;
  McPopulation pop_;
  std::unique_ptr<CheckpointWriter> writer_;
  std::deque<SlotRange> queue_;
  std::vector<std::unique_ptr<Conn>> conns_;
  int next_id_ = 0;
  int listen_fd_ = -1;
  bool deadline_expired_ = false;
  CampaignResult result_;
};

}  // namespace

CampaignResult run_campaign(const api::McCommandConfig& command,
                            const DistConfig& dist, obs::Registry* obs) {
  Campaign campaign(command, dist, obs);
  return campaign.run();
}

}  // namespace statleak::dist
