/// \file coordinator.hpp
/// \brief The campaign coordinator (`statleak serve`): shard dispatch,
///        block merge, failure recovery, fleet reporting.
///
/// run_campaign() resolves the MC study once (api::prepare_mc_study), cuts
/// the sample space [0, N) into contiguous shards, and dispatches them to
/// worker processes — a local pool forked from this binary (the default)
/// or remote `statleak worker --connect` peers over TCP (`listen`). As
/// workers stream completed blocks the coordinator commits them into one
/// slot-indexed population, first-committed-wins per slot, appending fresh
/// runs to the campaign checkpoint when one is configured. The merged
/// population goes through the exact finalize path of `statleak mc`
/// (api::finalize_mc_campaign), so the distributed result is byte-identical
/// to a single-host run — sample i is a pure function of (seed, i), and the
/// wire round-trips doubles bit-exactly.
///
/// Failure model (docs/DISTRIBUTED.md): a worker that closes its transport
/// or stays silent past `heartbeat_ms` while owning a shard is declared
/// lost; the *undone sub-ranges* of its shard go back to the front of the
/// queue (committed slots are never recomputed) and, in pool mode, a
/// replacement is forked while the respawn budget lasts. Losing every
/// worker with work remaining is a DistError (CLI exit 6). The overall
/// ExecConfig::deadline_ms is owned by the coordinator: on expiry the
/// fleet is torn down and the partial population is finalized exactly like
/// a deadline-stopped single-host run (exit 4).
///
/// Fault injection: with STATLEAK_FAULT_INJECTION the coordinator queries
/// fault::Point::kWorkerExit on every received block (address = block
/// ordinal, 0-based) and SIGKILLs the sender on fire, dropping that block —
/// the deterministic stand-in for "worker died mid-send" that
/// tests/dist_test.cpp uses to pin zero recomputation of committed slots.

#pragma once

#include <cstdint>
#include <string>

#include "api/driver.hpp"
#include "obs/registry.hpp"

namespace statleak::dist {

/// Fleet shape and failure-detection knobs of one campaign.
struct DistConfig {
  /// Fleet size: pool processes to fork, or TCP connections to wait for.
  int workers = 2;
  /// Threads per worker (ExecConfig semantics: 0 = all cores). The
  /// coordinator itself computes nothing.
  int worker_threads = 1;
  /// Empty (default): fork a local pool of `workers` processes speaking
  /// the protocol over pipes. "host:port": listen there and wait for
  /// `workers` remote `statleak worker --connect` peers (port 0 picks a
  /// free port).
  std::string listen;
  /// With `listen`, write the bound port (decimal, newline) to this file
  /// once listening — how test harnesses find a port-0 coordinator.
  std::string port_file;
  /// Silence budget per worker while it owns a shard; expiry declares the
  /// worker lost. <= 0 disables the heartbeat (EOF still detects death).
  std::int64_t heartbeat_ms = 30000;
  /// Dispatch granularity: aim for this many shards per worker so the
  /// fleet load-balances and a lost worker forfeits little work.
  int shards_per_worker = 4;
};

/// A finished campaign: the command result (same shape `statleak mc`
/// produces) plus the fleet accounting, mirrored into obs as dist.*.
struct CampaignResult {
  api::McCommandResult command;
  int workers_spawned = 0;
  int workers_lost = 0;
  std::uint64_t shards_dispatched = 0;    ///< includes re-dispatches
  std::uint64_t shards_redispatched = 0;  ///< recovery dispatches only
  std::uint64_t blocks_received = 0;
  /// Slots that arrived again after being committed (straggler duplicates,
  /// resolved first-committed-wins). Zero in every clean or kill-recovery
  /// run — pinned by tests.
  std::uint64_t slots_recomputed = 0;
};

/// Runs one distributed campaign to completion (or deadline / fatal fleet
/// loss). Throws DistError when the fleet cannot be set up or every worker
/// is lost with work remaining; rethrows a worker-reported compute error
/// as the statleak::Error it would have been single-host.
CampaignResult run_campaign(const api::McCommandConfig& command,
                            const DistConfig& dist,
                            obs::Registry* obs = nullptr);

}  // namespace statleak::dist
