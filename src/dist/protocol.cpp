#include "dist/protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include <poll.h>
#include <unistd.h>

namespace statleak::dist {

namespace {

[[noreturn]] void protocol_error(const std::string& why) {
  throw DistError("campaign protocol: " + why);
}

double number_or_nan(const obs::Json& v) {
  // JSON cannot express non-finite doubles; the emitter renders them as
  // null. The quarantine machinery excises those slots downstream, so any
  // quiet NaN is an equivalent stand-in.
  if (v.is_null()) return std::numeric_limits<double>::quiet_NaN();
  return v.as_number();
}

std::uint64_t u64_field(const obs::Json& msg, const char* key) {
  const double v = msg.at(key).as_number();
  if (!(v >= 0.0) || std::floor(v) != v) {
    protocol_error(std::string(key) + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

// --- framing ----------------------------------------------------------------

bool MessageStream::send(const obs::Json& message) {
  if (eof_) return false;
  std::string line = message.dump(/*indent=*/0);
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::write(write_fd_, line.data() + off, line.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      eof_ = true;
      return false;
    }
    throw DistError(std::string("campaign transport write failed: ") +
                    std::strerror(errno));
  }
  return true;
}

bool MessageStream::feed() {
  if (eof_) return false;
  char chunk[1 << 16];
  const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
  if (n > 0) {
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN)) return true;
  eof_ = true;  // clean close (0) or hard error both end the peer
  return false;
}

std::optional<obs::Json> MessageStream::next_message() {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  const std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  if (line.empty()) return next_message();  // tolerate blank keep-alives
  obs::Json msg;
  try {
    msg = obs::Json::parse(line);
  } catch (const Error& e) {
    // A peer speaking garbage is a protocol violation, not an input error.
    protocol_error(std::string("bad message line: ") + e.what());
  }
  if (!msg.is_object()) protocol_error("message is not a JSON object");
  return msg;
}

std::optional<obs::Json> MessageStream::read_message(int timeout_ms) {
  for (;;) {
    if (auto msg = next_message()) return msg;
    if (eof_) return std::nullopt;
    pollfd pfd{read_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return std::nullopt;  // timeout
    if (!feed() && buffer_.find('\n') == std::string::npos) {
      return std::nullopt;  // peer closed with no complete line left
    }
  }
}

// --- message builders / parsers ---------------------------------------------

obs::Json setup_message(const WorkerSetup& setup) {
  obs::Json mc = obs::Json::object();
  mc.set("seed", static_cast<double>(setup.mc.seed));
  mc.set("samples", setup.mc.num_samples);
  mc.set("exact_delay", setup.mc.exact_delay);
  mc.set("batch", setup.mc.batch_size);
  mc.set("use_batched", setup.mc.use_batched);
  mc.set("health",
         setup.mc.health_policy == HealthPolicy::kQuarantine ? "quarantine"
                                                             : "fail");
  mc.set("sampler", to_string(setup.mc.sampler));
  mc.set("is_l", setup.mc.is_shift.l_sigma);
  mc.set("is_v", setup.mc.is_shift.v_sigma);
  mc.set("cv", setup.mc.control_variate);
  mc.set("checkpoint_every", setup.mc.checkpoint_every);

  obs::Json msg = obs::Json::object();
  msg.set("type", "setup");
  msg.set("protocol", kProtocolVersion);
  msg.set("bench", setup.input.bench_text);
  msg.set("circuit", setup.input.circuit_name);
  msg.set("impl", setup.input.impl_text);
  msg.set("node", setup.input.node_nm);
  msg.set("node_name", setup.input.node_name);
  msg.set("temp_k", setup.input.temperature_k);
  msg.set("vdd_v", setup.input.vdd_v);
  msg.set("sigma_scale", setup.input.sigma_scale);
  msg.set("threads", setup.threads);
  msg.set("t_max_ps", setup.t_max_ps);
  msg.set("mc", std::move(mc));
  return msg;
}

WorkerSetup parse_setup(const obs::Json& msg) {
  const double proto = msg.at("protocol").as_number();
  if (proto != kProtocolVersion) {
    protocol_error("version mismatch (peer speaks " +
                   obs::format_json_number(proto) + ", this build speaks " +
                   std::to_string(kProtocolVersion) + ")");
  }
  WorkerSetup setup;
  setup.input.bench_text = msg.at("bench").as_string();
  setup.input.circuit_name = msg.at("circuit").as_string();
  setup.input.impl_text = msg.at("impl").as_string();
  setup.input.node_nm = static_cast<int>(msg.at("node").as_number());
  setup.input.node_name = msg.at("node_name").as_string();
  setup.input.temperature_k = msg.at("temp_k").as_number();
  setup.input.vdd_v = msg.at("vdd_v").as_number();
  setup.input.sigma_scale = msg.at("sigma_scale").as_number();
  setup.threads = static_cast<int>(msg.at("threads").as_number());
  setup.t_max_ps = msg.at("t_max_ps").as_number();

  const obs::Json& mc = msg.at("mc");
  setup.mc.seed = u64_field(mc, "seed");
  setup.mc.num_samples = static_cast<int>(mc.at("samples").as_number());
  setup.mc.exact_delay = mc.at("exact_delay").as_bool();
  setup.mc.batch_size = static_cast<int>(mc.at("batch").as_number());
  setup.mc.use_batched = mc.at("use_batched").as_bool();
  const std::string& health = mc.at("health").as_string();
  if (health == "fail") {
    setup.mc.health_policy = HealthPolicy::kFail;
  } else if (health == "quarantine") {
    setup.mc.health_policy = HealthPolicy::kQuarantine;
  } else {
    protocol_error("unknown health policy '" + health + "'");
  }
  const std::string& sampler = mc.at("sampler").as_string();
  if (sampler == "pseudo") {
    setup.mc.sampler = McSampler::kPseudo;
  } else if (sampler == "sobol") {
    setup.mc.sampler = McSampler::kSobol;
  } else {
    protocol_error("unknown sampler '" + sampler + "'");
  }
  setup.mc.is_shift.l_sigma = mc.at("is_l").as_number();
  setup.mc.is_shift.v_sigma = mc.at("is_v").as_number();
  setup.mc.control_variate = mc.at("cv").as_bool();
  setup.mc.checkpoint_every =
      static_cast<int>(mc.at("checkpoint_every").as_number());
  // Workers never own a deadline or a checkpoint file: the coordinator
  // enforces the budget (stop message) and persists committed blocks.
  setup.mc.deadline_ms = 0;
  setup.mc.checkpoint_path.clear();
  setup.mc.num_threads = setup.threads;
  return setup;
}

obs::Json hello_message() {
  obs::Json msg = obs::Json::object();
  msg.set("type", "hello");
  msg.set("protocol", kProtocolVersion);
  return msg;
}

obs::Json shard_message(std::uint64_t begin, std::uint64_t end) {
  obs::Json msg = obs::Json::object();
  msg.set("type", "shard");
  msg.set("begin", static_cast<double>(begin));
  msg.set("end", static_cast<double>(end));
  return msg;
}

obs::Json stop_message() {
  obs::Json msg = obs::Json::object();
  msg.set("type", "stop");
  return msg;
}

obs::Json block_message(std::uint64_t begin, std::span<const double> delay,
                        std::span<const double> leak) {
  obs::Json delays = obs::Json::array();
  for (double d : delay) delays.push_back(d);
  obs::Json leaks = obs::Json::array();
  for (double l : leak) leaks.push_back(l);
  obs::Json msg = obs::Json::object();
  msg.set("type", "block");
  msg.set("begin", static_cast<double>(begin));
  msg.set("delay", std::move(delays));
  msg.set("leak", std::move(leaks));
  return msg;
}

Block parse_block(const obs::Json& msg) {
  Block block;
  block.begin = u64_field(msg, "begin");
  const obs::JsonArray& delay = msg.at("delay").as_array();
  const obs::JsonArray& leak = msg.at("leak").as_array();
  if (delay.size() != leak.size() || delay.empty()) {
    protocol_error("block needs matching non-empty delay/leak arrays");
  }
  block.delay_ps.reserve(delay.size());
  for (const obs::Json& v : delay) block.delay_ps.push_back(number_or_nan(v));
  block.leakage_na.reserve(leak.size());
  for (const obs::Json& v : leak) {
    block.leakage_na.push_back(number_or_nan(v));
  }
  return block;
}

obs::Json shard_done_message(std::uint64_t begin, std::uint64_t end,
                             bool completed, std::uint64_t samples_done) {
  obs::Json msg = obs::Json::object();
  msg.set("type", "shard_done");
  msg.set("begin", static_cast<double>(begin));
  msg.set("end", static_cast<double>(end));
  msg.set("completed", completed);
  msg.set("samples_done", static_cast<double>(samples_done));
  return msg;
}

obs::Json bye_message(obs::Json registry_snapshot) {
  obs::Json msg = obs::Json::object();
  msg.set("type", "bye");
  msg.set("registry", std::move(registry_snapshot));
  return msg;
}

obs::Json error_message(const std::string& what) {
  obs::Json msg = obs::Json::object();
  msg.set("type", "error");
  msg.set("message", what);
  return msg;
}

std::string message_type(const obs::Json& msg) {
  const obs::Json* type = msg.find("type");
  if (type == nullptr || !type->is_string()) return "";
  return type->as_string();
}

}  // namespace statleak::dist
