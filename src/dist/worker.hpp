/// \file worker.hpp
/// \brief The campaign worker process body (`statleak worker`).
///
/// A worker speaks the dist/protocol.hpp exchange over stdin/stdout
/// (`--stdio`, how the coordinator's local process pool spawns it) or a
/// TCP connection (`--connect host:port`). It resolves the study from the
/// setup message through the same api/driver.hpp facade the CLI uses, then
/// computes every shard it is handed with mc/monte_carlo.hpp's
/// run_monte_carlo_shard, streaming completed blocks at the checkpoint
/// cadence. On stop it ships its obs::Registry snapshot and exits.

#pragma once

#include <string>

#include "obs/registry.hpp"

namespace statleak::dist {

struct WorkerOptions {
  /// Speak the protocol on fd 0 (read) / fd 1 (write). Mutually exclusive
  /// with `connect`.
  bool stdio = false;
  /// "host:port" of a listening coordinator.
  std::string connect;
  /// Local override of the setup message's thread count (> 0; the uniform
  /// `--threads` CLI flag). Results are thread-count invariant, so this is
  /// a deployment knob, never a correctness one.
  int threads_override = 0;
};

/// Runs the worker loop until the coordinator says stop or the transport
/// closes. Returns the process exit code (0 clean, 3 on a compute error —
/// the error is also reported to the coordinator when the transport still
/// stands). Throws DistError when the transport cannot be established.
/// `obs` (optional) receives the worker-side counters/phases — the same
/// registry snapshot that ships upstream in the bye message — so
/// `statleak worker --report-json` can emit a local run report too.
int run_worker(const WorkerOptions& options, obs::Registry* obs = nullptr);

}  // namespace statleak::dist
