/// \file partition.hpp
/// \brief Slot-range partitioning for the distributed campaign runner.
///
/// The sample space [0, N) is cut into contiguous shards, each a durable,
/// addressable unit of work: sample i is a pure function of (seed, i), so
/// any worker can compute any shard and the merged population is
/// byte-identical to a single-host run whatever the cut. Partitioning is
/// deterministic — same inputs, same shards — so re-running a campaign
/// dispatches identical work units.

#pragma once

#include <cstdint>
#include <vector>

namespace statleak::dist {

/// A contiguous slot range [begin, end), begin < end.
struct SlotRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }
  friend bool operator==(const SlotRange&, const SlotRange&) = default;
};

/// Cuts [0, n) into at most `max_shards` contiguous ranges of at least
/// `min_shard` slots each (except possibly the last), sized as evenly as
/// the floor allows. max_shards < 1 and min_shard < 1 are clamped to 1.
std::vector<SlotRange> partition_samples(std::uint64_t n, int max_shards,
                                         std::uint64_t min_shard);

/// The maximal runs of not-yet-done slots inside `within`, in slot order —
/// what a straggler re-dispatch hands out so committed slots are never
/// recomputed. `done` is indexed by absolute slot and must cover `within`.
std::vector<SlotRange> undone_ranges(const std::vector<std::uint8_t>& done,
                                     const SlotRange& within);

}  // namespace statleak::dist
