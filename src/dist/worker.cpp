#include "dist/worker.hpp"

#include <csignal>
#include <mutex>
#include <optional>
#include <utility>

#include <unistd.h>

#include "dist/net.hpp"
#include "dist/protocol.hpp"
#include "mc/checkpoint.hpp"
#include "obs/snapshot.hpp"

namespace statleak::dist {

namespace {

/// Computes one shard, streaming completed blocks as protocol messages.
/// The block sink runs concurrently on shard worker threads — one mutex
/// serializes the stream writes (the same discipline CheckpointWriter
/// uses for its file).
void compute_shard(const api::LoadedStudy& study, const McConfig& mc,
                   std::uint64_t begin, std::uint64_t end,
                   MessageStream& stream, std::mutex& send_mutex,
                   obs::Registry* obs) {
  const McBlockSink sink = [&](std::uint64_t block_begin,
                               std::span<const double> delay,
                               std::span<const double> leak) {
    const std::lock_guard<std::mutex> lock(send_mutex);
    stream.send(block_message(block_begin, delay, leak));
  };
  const McShardResult res = run_monte_carlo_shard(
      study.circuit, study.lib, study.var, mc, begin, end, sink, obs);
  const std::lock_guard<std::mutex> lock(send_mutex);
  stream.send(shard_done_message(res.begin, res.end, res.completed,
                                 res.samples_done));
}

}  // namespace

int run_worker(const WorkerOptions& options, obs::Registry* obs) {
  // A coordinator that died mid-send must surface as EOF, not SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  int read_fd = STDIN_FILENO;
  int write_fd = STDOUT_FILENO;
  int socket_fd = -1;
  if (!options.connect.empty()) {
    socket_fd = connect_tcp(options.connect);
    read_fd = socket_fd;
    write_fd = socket_fd;
  } else if (!options.stdio) {
    throw DistError("worker needs --stdio or --connect host:port");
  }

  MessageStream stream(read_fd, write_fd);
  std::mutex send_mutex;
  obs::Registry local_registry;
  obs::Registry& registry = obs != nullptr ? *obs : local_registry;
  int exit_code = 0;

  {
    const std::lock_guard<std::mutex> lock(send_mutex);
    stream.send(hello_message());
  }

  std::optional<api::LoadedStudy> study;
  McConfig mc;
  try {
    for (;;) {
      const std::optional<obs::Json> msg = stream.read_message(-1);
      if (!msg) break;  // coordinator gone — nothing left to work for
      const std::string type = message_type(*msg);
      if (type == "setup") {
        const WorkerSetup setup = parse_setup(*msg);
        study.emplace(api::load_study(setup.input));
        mc = setup.mc;
        if (options.threads_override > 0) {
          mc.num_threads = options.threads_override;
        }
        registry.note_config("dist.role", "worker");
      } else if (type == "shard") {
        if (!study) throw DistError("shard before setup");
        const auto begin = static_cast<std::uint64_t>(
            msg->at("begin").as_number());
        const auto end = static_cast<std::uint64_t>(
            msg->at("end").as_number());
        validate_checkpoint_range(begin, end - begin,
                                  static_cast<std::uint64_t>(
                                      mc.num_samples));
        registry.add("dist.shards_computed", 1.0);
        compute_shard(*study, mc, begin, end, stream, send_mutex,
                      &registry);
      } else if (type == "stop") {
        const std::lock_guard<std::mutex> lock(send_mutex);
        stream.send(bye_message(obs::registry_snapshot(registry)));
        break;
      } else {
        throw DistError("unexpected message '" + type + "'");
      }
    }
  } catch (const Error& e) {
    // Report upstream (best effort — the transport may already be gone),
    // then exit like the single-host CLI would: input/numerical errors are
    // exit 3.
    const std::lock_guard<std::mutex> lock(send_mutex);
    stream.send(error_message(e.what()));
    exit_code = 3;
  }

  if (socket_fd >= 0) ::close(socket_fd);
  return exit_code;
}

}  // namespace statleak::dist
