/// \file net.hpp
/// \brief Minimal TCP plumbing for the campaign runner (IPv4, loopback or
///        LAN): listen/accept on the coordinator, connect on the worker.
///
/// Addresses are "host:port" strings; port 0 asks the kernel for a free
/// port (the bound port is reported back, and `statleak serve --port-file`
/// publishes it for test harnesses). All failures throw DistError with the
/// failing call and errno text.

#pragma once

#include <string>

namespace statleak::dist {

/// Creates a listening socket bound to `hostport`. Returns the fd;
/// `bound_port` (non-null) receives the actual port (useful with port 0).
int listen_tcp(const std::string& hostport, int* bound_port);

/// Accepts one connection, waiting up to timeout_ms (-1 = forever).
/// Returns the connected fd, or -1 on timeout.
int accept_tcp(int listen_fd, int timeout_ms);

/// Connects to a listening coordinator. A refused connection is retried
/// with bounded deterministic exponential backoff (10, 20, ..., 640 ms —
/// ~1.3 s total) so a worker started moments before its coordinator binds
/// does not die on the race; only persistent refusal is a DistError.
int connect_tcp(const std::string& hostport);

}  // namespace statleak::dist
