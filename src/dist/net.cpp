#include "dist/net.hpp"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dist/protocol.hpp"

namespace statleak::dist {

namespace {

[[noreturn]] void net_fail(const std::string& call) {
  throw DistError("campaign transport: " + call + " failed: " +
                  std::strerror(errno));
}

struct HostPort {
  std::string host;
  int port = 0;
};

HostPort split_hostport(const std::string& hostport) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon + 1 >= hostport.size()) {
    throw DistError("campaign transport: address '" + hostport +
                    "' is not host:port");
  }
  HostPort hp;
  hp.host = hostport.substr(0, colon);
  hp.port = std::atoi(hostport.c_str() + colon + 1);
  if (hp.port < 0 || hp.port > 65535) {
    throw DistError("campaign transport: port out of range in '" + hostport +
                    "'");
  }
  if (hp.host.empty()) hp.host = "127.0.0.1";
  return hp;
}

sockaddr_in resolve(const HostPort& hp) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(hp.port));
  if (inet_pton(AF_INET, hp.host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(hp.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw DistError("campaign transport: cannot resolve host '" + hp.host +
                    "'");
  }
  addr.sin_addr =
      reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return addr;
}

}  // namespace

int listen_tcp(const std::string& hostport, int* bound_port) {
  const sockaddr_in addr = resolve(split_hostport(hostport));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) net_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    net_fail("bind");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    net_fail("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      net_fail("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int accept_tcp(int listen_fd, int timeout_ms) {
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return -1;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && (errno == EINTR || errno == ECONNABORTED)) continue;
    if (fd < 0) net_fail("accept");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

int connect_tcp(const std::string& hostport) {
  const sockaddr_in addr = resolve(split_hostport(hostport));
  // ECONNREFUSED usually means the coordinator has not bound its listen
  // socket yet (serve and its workers are typically launched together), so
  // back off deterministically — 10, 20, 40, ..., 640 ms — before giving
  // up. Other failures (unreachable host, reset) stay immediate: waiting
  // cannot fix them and would only hide the real error.
  int backoff_ms = 10;
  constexpr int kMaxBackoffMs = 640;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) net_fail("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if (err != ECONNREFUSED || backoff_ms > kMaxBackoffMs) {
      errno = err;
      net_fail("connect");
    }
    timespec ts{backoff_ms / 1000, (backoff_ms % 1000) * 1000000L};
    while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
    backoff_ms *= 2;
  }
}

}  // namespace statleak::dist
