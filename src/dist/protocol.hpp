/// \file protocol.hpp
/// \brief Wire protocol of the distributed campaign runner.
///
/// Line-delimited JSON over a byte stream (a pipe to a pooled worker
/// process, or a TCP socket): one message per '\n'-terminated line, each a
/// single JSON object with a "type" member. Numbers are rendered by
/// obs::Json with std::to_chars shortest-round-trip form and parsed with
/// std::from_chars, so every finite double crosses the wire bit-exactly —
/// the foundation of the byte-identical distributed merge. (The one
/// exception: obs::Json normalizes -0.0 to "0"; sample delays and leakages
/// are strictly positive, so no transmitted value can hit it.) Non-finite
/// sample values (possible under --health quarantine) become JSON null and
/// decode to a quiet NaN; the finalize pass excises those slots before any
/// statistic, so their exact bit pattern never matters.
///
/// Messages (see docs/DISTRIBUTED.md for the full exchange):
///
///   coordinator -> worker
///     {"type":"setup", "protocol":1, "bench":..., "circuit":...,
///      "impl":..., "node":100, "threads":1, "t_max_ps":...,
///      "mc":{...engine config...}}
///     {"type":"shard", "begin":B, "end":E}
///     {"type":"stop"}
///
///   worker -> coordinator
///     {"type":"hello", "protocol":1}
///     {"type":"block", "begin":B, "delay":[...], "leak":[...]}
///     {"type":"shard_done", "begin":B, "end":E, "completed":true,
///      "samples_done":N}
///     {"type":"bye", "registry":{...obs snapshot...}}
///     {"type":"error", "message":"..."}

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/driver.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace statleak::dist {

/// Distributed-runner failure the campaign cannot recover from: every
/// worker lost, a protocol violation, a transport that cannot be set up.
/// The CLI maps it to exit code 6.
class DistError : public Error {
 public:
  using Error::Error;
};

/// v2 added the environment corner (node_name/temp/vdd/sigma_scale) to the
/// setup message, so mixed-version fleets reject the handshake rather than
/// silently sampling at different corners.
inline constexpr int kProtocolVersion = 2;

// --- framing ----------------------------------------------------------------

/// One line-delimited JSON peer over a file descriptor. Reading is
/// buffered and incremental (feed() consumes whatever the fd has without
/// blocking past one read()); writing is blocking and thread-safe enough
/// for the worker's concurrent block sink when externally serialized.
/// The stream never owns reconnection: a closed peer turns every further
/// operation into eof().
class MessageStream {
 public:
  MessageStream(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}

  int read_fd() const { return read_fd_; }

  /// Serializes + writes one message line. Returns false (and latches
  /// eof) when the peer is gone (EPIPE/ECONNRESET); throws DistError on
  /// other I/O errors.
  bool send(const obs::Json& message);

  /// Reads whatever the fd has ready into the line buffer (one read()
  /// call; returns false when the peer closed or errored). Call when
  /// poll() reports readability.
  bool feed();

  /// Pops the next complete buffered message, if any. Throws DistError on
  /// a line that is not a JSON object.
  std::optional<obs::Json> next_message();

  /// Blocks (up to timeout_ms, -1 = forever) until a message is available
  /// or the peer closes; returns nullopt on timeout/EOF.
  std::optional<obs::Json> read_message(int timeout_ms);

  bool eof() const { return eof_; }

 private:
  int read_fd_;
  int write_fd_;
  std::string buffer_;
  bool eof_ = false;
};

// --- message builders / parsers ---------------------------------------------

/// Everything a worker needs before it can compute any shard. `input`
/// carries the netlist (and any sidecar) inline as text, so workers parse
/// the same bytes the coordinator read, wherever they run.
struct WorkerSetup {
  api::StudyInput input;
  McConfig mc;          ///< fully resolved (importance shift numeric)
  double t_max_ps = 0.0;
  int threads = 1;      ///< worker-local thread count
};

obs::Json setup_message(const WorkerSetup& setup);
WorkerSetup parse_setup(const obs::Json& msg);

obs::Json hello_message();
obs::Json shard_message(std::uint64_t begin, std::uint64_t end);
obs::Json stop_message();

obs::Json block_message(std::uint64_t begin, std::span<const double> delay,
                        std::span<const double> leak);
/// Decoded block: values local to [begin, begin + delay.size()).
struct Block {
  std::uint64_t begin = 0;
  std::vector<double> delay_ps;
  std::vector<double> leakage_na;
};
Block parse_block(const obs::Json& msg);

obs::Json shard_done_message(std::uint64_t begin, std::uint64_t end,
                             bool completed, std::uint64_t samples_done);
obs::Json bye_message(obs::Json registry_snapshot);
obs::Json error_message(const std::string& what);

/// The "type" member, or "" when absent/not a string.
std::string message_type(const obs::Json& msg);

}  // namespace statleak::dist
