#include "power/activity.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {

std::vector<double> estimate_activity(const Circuit& circuit, int num_vectors,
                                      std::uint64_t seed) {
  STATLEAK_CHECK(circuit.finalized(), "activity needs a finalized circuit");
  STATLEAK_CHECK(num_vectors >= 2, "need at least two vectors");

  Rng rng(seed);
  std::vector<char> inputs(circuit.inputs().size());
  for (auto& bit : inputs) bit = rng.uniform_index(2) ? 1 : 0;
  std::vector<char> prev = simulate(circuit, inputs);

  std::vector<std::int64_t> toggles(circuit.num_gates(), 0);
  for (int v = 1; v < num_vectors; ++v) {
    for (auto& bit : inputs) bit = rng.uniform_index(2) ? 1 : 0;
    const std::vector<char> now = simulate(circuit, inputs);
    for (GateId id = 0; id < circuit.num_gates(); ++id) {
      if (now[id] != prev[id]) ++toggles[id];
    }
    prev = now;
  }

  std::vector<double> activity(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    activity[id] =
        static_cast<double>(toggles[id]) / static_cast<double>(num_vectors - 1);
  }
  return activity;
}

}  // namespace statleak
