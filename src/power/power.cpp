#include "power/power.hpp"

#include "leakage/leakage.hpp"
#include "sta/loads.hpp"
#include "util/error.hpp"

namespace statleak {

double dynamic_power_nw(const Circuit& circuit, const CellLibrary& lib,
                        std::span<const double> activity,
                        double frequency_mhz) {
  STATLEAK_CHECK(circuit.finalized(), "power needs a finalized circuit");
  STATLEAK_CHECK(activity.size() == circuit.num_gates(),
                 "one activity value per gate");
  STATLEAK_CHECK(frequency_mhz > 0.0, "frequency must be positive");
  const double vdd = lib.node().vdd;
  double power = 0.0;
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    // Primary inputs drive real capacitance too; their switching is paid by
    // the upstream driver, which this model charges to the net itself.
    const double load_ff = output_load_ff(circuit, lib, id);
    // fF * V^2 * MHz = 1e-15 F * V^2 * 1e6 1/s = 1e-9 W = nW.
    power += activity[id] * load_ff * vdd * vdd * frequency_mhz;
  }
  return power;
}

double PowerBreakdown::leakage_share() const {
  const double total = total_mean_nw();
  return total > 0.0 ? leakage_mean_nw / total : 0.0;
}

double PowerBreakdown::leakage_share_p99() const {
  const double total = dynamic_nw + leakage_p99_nw;
  return total > 0.0 ? leakage_p99_nw / total : 0.0;
}

PowerBreakdown power_breakdown(const Circuit& circuit, const CellLibrary& lib,
                               const VariationModel& var,
                               std::span<const double> activity,
                               double frequency_mhz) {
  PowerBreakdown out;
  out.dynamic_nw = dynamic_power_nw(circuit, lib, activity, frequency_mhz);
  const LeakageAnalyzer leak(circuit, lib, var);
  const double vdd = lib.node().vdd;
  const LeakageDistribution dist = leak.distribution();
  out.leakage_nominal_nw = leak.nominal_na() * vdd;
  out.leakage_mean_nw = dist.mean_na * vdd;
  out.leakage_p99_nw = dist.quantile_na(0.99) * vdd;
  return out;
}

}  // namespace statleak
