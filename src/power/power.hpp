/// \file power.hpp
/// \brief Dynamic power and the total-power breakdown.
///
/// Dynamic power of a net: P = alpha * C_load * Vdd^2 * f (the well-known
/// CV^2f form; alpha is the per-cycle toggle probability). Leakage power is
/// the statistical distribution from leakage/. Together they give the
/// motivation numbers of the leakage-optimization literature: what fraction
/// of total power leaks, and how that fraction moves with technology,
/// optimization, and the process-variation tail.

#pragma once

#include <span>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// Dynamic power [nW] of the whole circuit at `frequency_mhz`, given the
/// per-gate activity vector from estimate_activity().
double dynamic_power_nw(const Circuit& circuit, const CellLibrary& lib,
                        std::span<const double> activity,
                        double frequency_mhz);

/// Full power picture of one implementation.
struct PowerBreakdown {
  double dynamic_nw = 0.0;
  double leakage_nominal_nw = 0.0;
  double leakage_mean_nw = 0.0;  ///< E[leakage] under variation
  double leakage_p99_nw = 0.0;   ///< 99th percentile under variation

  double total_mean_nw() const { return dynamic_nw + leakage_mean_nw; }
  /// Leakage share of mean total power, in [0, 1].
  double leakage_share() const;
  /// Leakage share on a 99th-percentile-leakage die.
  double leakage_share_p99() const;
};

PowerBreakdown power_breakdown(const Circuit& circuit, const CellLibrary& lib,
                               const VariationModel& var,
                               std::span<const double> activity,
                               double frequency_mhz);

}  // namespace statleak
