/// \file activity.hpp
/// \brief Switching-activity estimation by random-vector simulation.
///
/// Dynamic power needs per-net toggle probabilities. statleak estimates
/// them the classic way: simulate a stream of independent uniform random
/// input vectors and count output toggles between consecutive vectors.
/// alpha_i = toggles_i / (vectors - 1) is the per-cycle switching
/// probability of gate i's output net.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace statleak {

/// Per-gate switching activity (indexed by GateId; primary inputs report
/// their own toggle rate, ~0.5 under uniform random stimulus).
/// `num_vectors` >= 2; deterministic per seed.
std::vector<double> estimate_activity(const Circuit& circuit, int num_vectors,
                                      std::uint64_t seed = 1);

}  // namespace statleak
