/// \file monte_carlo.hpp
/// \brief Monte-Carlo golden reference for delay and leakage statistics.
///
/// Each sample draws one die: shared inter-die (dL, dVth) plus independent
/// intra-die components per gate. Sample delay is a full deterministic STA
/// pass under those parameters (first-order or exact alpha-power mode);
/// sample leakage is the exact sum of per-gate exponential leakages. This is
/// the reference the SSTA and Wilkinson approximations are validated against
/// (experiment F4) and the source of the distribution histograms (F1).
///
/// Samples are embarrassingly parallel: each draws from a counter-derived
/// RNG stream (seed x sample index) and the loop is sharded over a thread
/// pool, with results written by sample index — bit-identical output for
/// any `num_threads`.
///
/// Fault tolerance (see docs/ROBUSTNESS.md): the loop honours
/// ExecConfig::deadline_ms (clean stop at block boundaries, partial result
/// flagged `completed = false`), classifies non-finite samples under a
/// HealthPolicy (fail loudly or quarantine by slot), and — with
/// `checkpoint_path` set — persists completed slots so an interrupted run
/// resumes bit-identically (mc/checkpoint.hpp).

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cells/library.hpp"
#include "mc/estimator.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "tech/variation.hpp"
#include "util/exec.hpp"
#include "util/health.hpp"
#include "util/stats.hpp"

namespace statleak {

struct McArena;  // mc/arena.hpp — reusable batched-engine state

/// How the *global* (inter-die) variation dimensions are sampled. The
/// intra-die draws always come from the counter-based pseudo-random
/// streams; the global dimensions carry most of the estimator variance of
/// full-chip totals, so they are where a low-discrepancy sequence pays.
enum class McSampler : std::uint8_t {
  kPseudo = 0,  ///< counter-based xoshiro streams (historical behavior)
  kSobol = 1,   ///< scrambled-Sobol QMC points (util/sobol.hpp)
};

/// "pseudo" / "sobol" (stable CLI spellings).
const char* to_string(McSampler sampler);

/// Execution knobs (`seed`, `num_threads`, `deadline_ms`) come from
/// ExecConfig. Sample i draws from its own counter-derived RNG stream (see
/// util/rng.hpp), so the result is bit-identical for every thread count.
struct McConfig : ExecConfig {
  int num_samples = 10000;
  /// Exact alpha-power delay per gate instead of the first-order multiplier.
  bool exact_delay = false;
  /// Samples evaluated per kernel block in the batched engine. 0 picks an
  /// automatic size from the circuit size (see mc/batch.hpp). Results are
  /// bit-identical for every batch size; this is a performance knob only.
  int batch_size = 0;
  /// Gate-major batched evaluation (default). The scalar per-sample path is
  /// kept for differential testing (tests/mc_batched_test.cpp pins bitwise
  /// equality) and as a reference implementation.
  bool use_batched = true;

  /// What to do when a sample evaluates to a non-finite delay or leakage:
  /// kFail (default) throws NumericalError naming the slot; kQuarantine
  /// drops the sample, records slot + cause in McResult::quarantined, and
  /// keeps running. Bit-invariant for all-finite populations either way.
  HealthPolicy health_policy = HealthPolicy::kFail;

  /// Checkpoint file; empty (default) disables checkpointing. When the file
  /// exists it must validate against this run's configuration (else
  /// CheckpointError) and the run resumes from it, recomputing only the
  /// missing slots; otherwise it is created. See mc/checkpoint.hpp.
  std::string checkpoint_path;

  /// Completed samples a shard worker accumulates before appending one
  /// checkpoint record. Smaller = finer resume granularity, more I/O.
  /// Ignored without checkpoint_path. Values < 1 are clamped to 1.
  int checkpoint_every = 4096;

  /// Source of the two global (inter-die) deviates. kPseudo reproduces the
  /// historical per-stream draws bit-for-bit; kSobol replaces them with
  /// scrambled-Sobol points indexed by slot. Either way sample i is a pure
  /// function of (seed, i), so thread/batch/resume invariance holds.
  McSampler sampler = McSampler::kPseudo;

  /// Importance-sampling shift of the global distribution (standardized
  /// units). Inactive by default. When active, McResult::weights holds the
  /// exact per-sample likelihood ratios and all statistics self-normalize.
  /// Mutually exclusive with control_variate (Error).
  IsShift is_shift;

  /// Correct leakage statistics with the SSTA conditional-mean control
  /// variate (mc/estimator.hpp). Does not change the sampled values — only
  /// adds McResult::cv_proxy_na and the cv_* estimators.
  bool control_variate = false;
};

struct McResult {
  /// Per-sample values of the *surviving* samples, in slot order. For a
  /// completed run with no quarantined samples — the historical common case
  /// — these hold all num_samples slots, exactly as before. Partial
  /// (deadline-stopped) or quarantine-hit runs compact out the missing
  /// slots, and the statistics below operate on what survived.
  std::vector<double> delay_ps;    ///< per-sample circuit delay
  std::vector<double> leakage_na;  ///< per-sample total leakage

  bool completed = true;              ///< false when the deadline expired
  std::uint64_t samples_requested = 0;
  std::uint64_t samples_done = 0;     ///< evaluated slots (incl. quarantined)
  std::uint64_t samples_restored = 0; ///< slots restored from the checkpoint
  std::vector<QuarantinedSample> quarantined;  ///< slot order

  /// Importance-sampling likelihood ratios, aligned with delay_ps /
  /// leakage_na. Empty (the default) means uniform weights — every
  /// statistic below then reduces to its historical unweighted form.
  std::vector<double> weights;

  /// Control-variate proxy X_i = E[L_total | global draw of slot i],
  /// aligned with leakage_na. Empty unless McConfig::control_variate.
  std::vector<double> cv_proxy_na;
  /// Exact analytic E[X] (= E[L_total]); 0 unless control_variate.
  double cv_proxy_mean_na = 0.0;

  /// Kish effective sample size (sum w)^2 / sum w^2. Equals the survivor
  /// count for unweighted runs; collapses toward 1 when the importance
  /// shift overshoots — report it next to any weighted estimate.
  double ess() const;

  /// Fraction of samples meeting the delay target, i.e. MC timing yield.
  /// With weights: the unbiased unnormalized estimator evaluated on the
  /// lower-variance side of the target (see weighted_fraction_below_est),
  /// which is what preserves the importance-sampling gain on tail
  /// probabilities.
  double timing_yield(double t_max_ps) const;
  /// Fraction of samples meeting BOTH the delay target and a leakage cap —
  /// the "sellable dies" metric of post-silicon compensation studies.
  double combined_yield(double t_max_ps, double leak_cap_na) const;
  /// Standard error of the yield estimate at the given target.
  double yield_stderr(double t_max_ps) const;

  SampleSummary delay_summary() const { return summarize(delay_ps); }
  SampleSummary leakage_summary() const { return summarize(leakage_na); }
  /// Weighted quantiles when weights are present, classic otherwise.
  double leakage_quantile_na(double p) const;
  double delay_quantile_ps(double p) const;

  /// 95% (default) confidence half-width of the mean-leakage / mean-delay
  /// estimate; weight-aware. The run report publishes these as
  /// mc.leakage_mean_ci_na / mc.delay_mean_ci_ps.
  double leakage_mean_ci_na(double confidence = 0.95) const;
  double delay_mean_ci_ps(double confidence = 0.95) const;

  /// Control-variate estimators (Error unless control_variate was on).
  /// beta = cov(L, X) / var(X), estimated from the surviving samples.
  double cv_beta() const;
  /// mean(L) - beta * (mean(X) - E[X]) — unbiased, lower-variance mean.
  double cv_leakage_mean_na() const;
  /// Quantile of the per-sample corrected values L_i - beta * (X_i - E[X]).
  double cv_leakage_quantile_na(double p) const;
};

/// Runs the Monte-Carlo analysis. Deterministic for a given config.
///
/// With an observability registry attached, records the "mc.samples" phase
/// wall time, counters ("mc.samples", "mc.sta_evals" — merged per shard,
/// not per sample), and an "mc" trace stream of up to 16 progress
/// milestones (cumulative sample count, running mean delay/leakage).
/// Quarantine adds "mc.quarantined*" counters; a deadline stop adds
/// "mc.samples_done" and marks the registry incomplete. Sample values are
/// bit-identical with and without a registry.
///
/// `arena` (nullable) carries batched-engine state — the FlatCircuit
/// snapshot, kernel constant tables, and per-worker scratch — across calls
/// evaluating the same frozen circuit (see mc/arena.hpp). Passing one is a
/// pure allocation optimization: sample values are bit-identical with and
/// without it.
McResult run_monte_carlo(const Circuit& circuit, const CellLibrary& lib,
                         const VariationModel& var, const McConfig& config,
                         obs::Registry* obs = nullptr,
                         McArena* arena = nullptr);

// --- shard-level building blocks (the distributed campaign runner) ---------
//
// Sample i is a pure function of (seed, i), so any process can compute any
// contiguous slot range independently and a coordinator can reassemble the
// population in any order — the merged result is byte-identical to a
// single-host run by construction. run_monte_carlo itself is implemented on
// the same two primitives: compute a range, then finalize the population.

/// Per-gate device widths (kInput slots hold -1), the Pelgrom scaling
/// input that is part of mc_checkpoint_hash's fingerprint. Exposed so the
/// distributed coordinator computes the same hash as the engine.
std::vector<double> mc_device_widths(const Circuit& circuit,
                                     const CellLibrary& lib);

/// A slot-indexed population under assembly. run_monte_carlo builds one
/// locally; the distributed coordinator (src/dist/) assembles one from
/// worker shard blocks. Vectors are full population size; `done[s]` marks
/// slots whose values are trusted.
struct McPopulation {
  std::vector<double> delay_ps;
  std::vector<double> leakage_na;
  std::vector<std::uint8_t> done;
  std::uint64_t samples_restored = 0;  ///< slots restored from a checkpoint
};

/// Turns an assembled population into the McResult: done accounting, the
/// per-slot health scan (kFail throws, kQuarantine excises), the estimator
/// side-channels (importance weights / control-variate proxies, recomputed
/// from slot indices), survivor compaction and the obs gauges + progress
/// milestones. This is the single definition of "finalize" — the
/// single-host path and the distributed merge call the same function, so
/// their statistics cannot drift.
McResult finalize_mc_population(const Circuit& circuit, const CellLibrary& lib,
                                const VariationModel& var,
                                const McConfig& config, McPopulation&& pop,
                                obs::Registry* obs = nullptr);

/// Completed-block callback of run_monte_carlo_shard: slots
/// [begin, begin + delay.size()) with their final values. Invoked
/// concurrently from shard workers at McConfig::checkpoint_every cadence —
/// implementations must be thread-safe (CheckpointWriter::append and the
/// distributed worker's message send both are).
using McBlockSink = std::function<void(
    std::uint64_t begin, std::span<const double> delay,
    std::span<const double> leak)>;

/// One computed shard: values for slots [begin, end), locally indexed
/// (slot s lives at index s - begin). `done` marks computed slots — all of
/// them unless the deadline expired mid-shard.
struct McShardResult {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<double> delay_ps;
  std::vector<double> leakage_na;
  std::vector<std::uint8_t> done;
  std::uint64_t samples_done = 0;
  bool completed = true;  ///< false when ExecConfig::deadline_ms expired
};

/// Computes slots [begin, end) of the config's population — the shard-range
/// entry point of the distributed runner. `config.num_samples` is still the
/// *total* population size (it pins the checkpoint hash and, with QMC, the
/// sample values are indexed by global slot); the range must lie inside it.
/// The shard is itself sharded over config.num_threads, honours the
/// deadline and health policy, and reports completed blocks through `sink`
/// (when set) exactly as they would be checkpointed. Values are
/// bit-identical to the same slots of a full run for any range cut, thread
/// count, batch size, or engine.
McShardResult run_monte_carlo_shard(const Circuit& circuit,
                                    const CellLibrary& lib,
                                    const VariationModel& var,
                                    const McConfig& config,
                                    std::uint64_t begin, std::uint64_t end,
                                    const McBlockSink& sink = {},
                                    obs::Registry* obs = nullptr);

}  // namespace statleak
