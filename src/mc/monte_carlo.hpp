/// \file monte_carlo.hpp
/// \brief Monte-Carlo golden reference for delay and leakage statistics.
///
/// Each sample draws one die: shared inter-die (dL, dVth) plus independent
/// intra-die components per gate. Sample delay is a full deterministic STA
/// pass under those parameters (first-order or exact alpha-power mode);
/// sample leakage is the exact sum of per-gate exponential leakages. This is
/// the reference the SSTA and Wilkinson approximations are validated against
/// (experiment F4) and the source of the distribution histograms (F1).
///
/// Samples are embarrassingly parallel: each draws from a counter-derived
/// RNG stream (seed x sample index) and the loop is sharded over a thread
/// pool, with results written by sample index — bit-identical output for
/// any `num_threads`.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "tech/variation.hpp"
#include "util/exec.hpp"
#include "util/stats.hpp"

namespace statleak {

/// Execution knobs (`seed`, `num_threads`) come from ExecConfig. Sample i
/// draws from its own counter-derived RNG stream (see util/rng.hpp), so
/// the result is bit-identical for every thread count.
struct McConfig : ExecConfig {
  int num_samples = 10000;
  /// Exact alpha-power delay per gate instead of the first-order multiplier.
  bool exact_delay = false;
  /// Samples evaluated per kernel block in the batched engine. 0 picks an
  /// automatic size from the circuit size (see mc/batch.hpp). Results are
  /// bit-identical for every batch size; this is a performance knob only.
  int batch_size = 0;
  /// Gate-major batched evaluation (default). The scalar per-sample path is
  /// kept for differential testing (tests/mc_batched_test.cpp pins bitwise
  /// equality) and as a reference implementation.
  bool use_batched = true;
};

struct McResult {
  std::vector<double> delay_ps;    ///< per-sample circuit delay
  std::vector<double> leakage_na;  ///< per-sample total leakage

  /// Fraction of samples meeting the delay target, i.e. MC timing yield.
  double timing_yield(double t_max_ps) const;
  /// Fraction of samples meeting BOTH the delay target and a leakage cap —
  /// the "sellable dies" metric of post-silicon compensation studies.
  double combined_yield(double t_max_ps, double leak_cap_na) const;
  /// Standard error of the yield estimate at the given target.
  double yield_stderr(double t_max_ps) const;

  SampleSummary delay_summary() const { return summarize(delay_ps); }
  SampleSummary leakage_summary() const { return summarize(leakage_na); }
  double leakage_quantile_na(double p) const { return quantile(leakage_na, p); }
  double delay_quantile_ps(double p) const { return quantile(delay_ps, p); }
};

/// Runs the Monte-Carlo analysis. Deterministic for a given config.
///
/// With an observability registry attached, records the "mc.samples" phase
/// wall time, counters ("mc.samples", "mc.sta_evals" — merged per shard,
/// not per sample), and an "mc" trace stream of up to 16 progress
/// milestones (cumulative sample count, running mean delay/leakage).
/// Sample values are bit-identical with and without a registry.
McResult run_monte_carlo(const Circuit& circuit, const CellLibrary& lib,
                         const VariationModel& var, const McConfig& config,
                         obs::Registry* obs = nullptr);

}  // namespace statleak
