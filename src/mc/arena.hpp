/// \file arena.hpp
/// \brief Reusable batched-engine state for back-to-back Monte-Carlo runs.
///
/// A cold run_monte_carlo call pays three fixed costs before the first
/// sample: flattening the circuit into SoA form (FlatCircuit::build),
/// deriving the per-gate kernel constant tables, and allocating the
/// per-worker BatchScratch blocks. A corner sweep evaluates the same frozen
/// circuit dozens of times under different CellLibrary instances, so those
/// costs are pure overhead after the first cell. An McArena carries them
/// across calls: the FlatCircuit is rebuilt only when the circuit changes,
/// the kernels are rebind()-ed (constants recomputed, allocations kept),
/// and the scratch blocks keep their capacity.
///
/// Reuse never changes a sampled bit: rebind() recomputes every derived
/// constant from the current library, and scratch contents are dead between
/// blocks. tests/sweep_test.cpp pins arena-reused populations bit-for-bit
/// against cold standalone runs.
///
/// Contract: a circuit shared through an arena must not be mutated between
/// runs — the cached FlatCircuit is keyed on the circuit's address only.

#pragma once

#include <optional>
#include <vector>

#include "leakage/batch_leakage.hpp"
#include "mc/batch.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/batch_delay.hpp"

namespace statleak {

class Circuit;

struct McArena {
  const Circuit* circuit = nullptr;  ///< identity key of the cached snapshot
  std::optional<FlatCircuit> flat;
  std::optional<BatchDelayKernel> delay;
  std::optional<BatchLeakageKernel> leak;
  std::vector<BatchScratch> scratch;
};

}  // namespace statleak
