#include "mc/checkpoint.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace statleak {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw CheckpointError("checkpoint '" + path + "': " + why);
}

/// Payload bytes of one sample block: begin, count, then the f64 lanes.
std::size_t block_payload_bytes(std::uint64_t count) {
  return 16 + 2 * count * sizeof(double);
}

}  // namespace

std::uint64_t mc_checkpoint_hash(const Circuit& circuit,
                                 const VariationModel& var,
                                 const McConfig& config,
                                 std::span<const double> widths,
                                 const ProcessNode& node) {
  std::uint64_t h = 0x53544C4Bu;  // "STLK"
  const auto mix = [&h](std::uint64_t x) { h = mix64(h ^ x); };
  const auto mix_f64 = [&mix](double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  };

  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.num_samples));
  mix(config.exact_delay ? 1 : 0);
  // The sampler kind and the importance shift both change every sampled
  // value, so resuming e.g. a Sobol run from a pseudo checkpoint must be
  // rejected. The control-variate flag is deliberately NOT mixed: it only
  // adds a derived side-channel and leaves the samples untouched.
  mix(static_cast<std::uint64_t>(config.sampler));
  mix_f64(config.is_shift.l_sigma);
  mix_f64(config.is_shift.v_sigma);

  mix(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    mix(static_cast<std::uint64_t>(g.kind));
    mix(static_cast<std::uint64_t>(g.vth));
    mix_f64(g.size);
  }

  mix_f64(var.sigma_l_inter_nm);
  mix_f64(var.sigma_l_intra_nm);
  mix_f64(var.sigma_vth_inter_v);
  mix_f64(var.sigma_vth_intra_v);
  mix(var.pelgrom_vth_scaling ? 1 : 0);
  mix_f64(var.pelgrom_ref_width_um);

  mix(widths.size());
  for (double w : widths) mix_f64(w);

  // Every physical constant of the node changes the sampled values, so a
  // checkpoint is pinned to its environment corner (temperature, Vdd, node
  // flavor). The name is deliberately not mixed — only physics matters.
  mix_f64(node.vdd);
  mix_f64(node.leff_nm);
  mix_f64(node.temperature_k);
  mix_f64(node.vth_low);
  mix_f64(node.vth_high);
  mix_f64(node.subthreshold_slope);
  mix_f64(node.i0_na_per_um);
  mix_f64(node.vth_rolloff_v_per_nm);
  mix_f64(node.leak_quadratic_per_nm2);
  mix_f64(node.alpha);
  mix_f64(node.k_drive_ua_per_um);
  mix_f64(node.k_delay);
  mix_f64(node.cg_ff_per_um);
  mix_f64(node.cj_ff_per_um);
  mix_f64(node.cw_fixed_ff);
  mix_f64(node.cw_per_fanout_ff);
  mix_f64(node.wn_unit_um);
  mix_f64(node.pn_ratio);
  return h;
}

void validate_checkpoint_range(std::uint64_t begin, std::uint64_t count,
                               std::uint64_t num_samples) {
  if (count == 0) {
    throw CheckpointError("empty slot range at slot " + std::to_string(begin));
  }
  if (begin > num_samples || count > num_samples - begin) {
    throw CheckpointError("slot range " + std::to_string(begin) + "+" +
                          std::to_string(count) +
                          " overruns the population of " +
                          std::to_string(num_samples) + " samples");
  }
}

bool checkpoint_exists(const std::string& path) {
  return journal_exists(path);
}

CheckpointData load_checkpoint(const std::string& path,
                               std::uint64_t config_hash,
                               std::uint64_t num_samples) {
  const JournalContents journal =
      load_journal(path, mc_checkpoint_format(), config_hash, num_samples);

  CheckpointData data;
  data.num_samples = num_samples;
  data.dropped_tail_bytes = journal.dropped_tail_bytes;
  data.done.assign(num_samples, 0);
  data.delay_ps.assign(num_samples, 0.0);
  data.leakage_na.assign(num_samples, 0.0);

  for (const JournalRecord& rec : journal.records) {
    if (rec.kind != kMcSampleBlock) {
      reject(path, "unknown record kind " + std::to_string(rec.kind) +
                       " at byte " + std::to_string(rec.offset));
    }
    if (rec.payload.size() < 16) {
      reject(path, "sample block at byte " + std::to_string(rec.offset) +
                       " too short for its slot range");
    }
    const auto begin = get<std::uint64_t>(rec.payload.data());
    const auto count = get<std::uint64_t>(rec.payload.data() + 8);
    if (count == 0) {
      reject(path, "empty record at byte " + std::to_string(rec.offset));
    }
    if (begin > num_samples || count > num_samples - begin) {
      reject(path, "record at byte " + std::to_string(rec.offset) +
                       " overruns the population (slots " +
                       std::to_string(begin) + "+" + std::to_string(count) +
                       " of " + std::to_string(num_samples) + ")");
    }
    if (rec.payload.size() != block_payload_bytes(count)) {
      reject(path, "sample block at byte " + std::to_string(rec.offset) +
                       " has a malformed payload (" +
                       std::to_string(rec.payload.size()) + " bytes for " +
                       std::to_string(count) + " slots)");
    }
    const std::uint8_t* payload = rec.payload.data() + 16;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t slot = begin + i;
      data.delay_ps[slot] = get<double>(payload + i * sizeof(double));
      data.leakage_na[slot] =
          get<double>(payload + (count + i) * sizeof(double));
      if (data.done[slot] == 0) {
        data.done[slot] = 1;
        ++data.done_count;
      }
    }
  }
  return data;
}

// --- writer -----------------------------------------------------------------

struct CheckpointWriter::Impl {
  std::unique_ptr<JournalWriter> journal;
  std::uint64_t num_samples = 0;
};

CheckpointWriter::CheckpointWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

CheckpointWriter::~CheckpointWriter() = default;

std::unique_ptr<CheckpointWriter> CheckpointWriter::create(
    const std::string& path, std::uint64_t config_hash,
    std::uint64_t num_samples) {
  auto impl = std::make_unique<Impl>();
  impl->num_samples = num_samples;
  impl->journal = JournalWriter::create(path, mc_checkpoint_format(),
                                        config_hash, num_samples);
  return std::unique_ptr<CheckpointWriter>(
      new CheckpointWriter(std::move(impl)));
}

std::unique_ptr<CheckpointWriter> CheckpointWriter::resume(
    const std::string& path, std::uint64_t config_hash,
    std::uint64_t num_samples) {
  auto impl = std::make_unique<Impl>();
  impl->num_samples = num_samples;
  impl->journal = JournalWriter::resume(path, mc_checkpoint_format(),
                                        config_hash, num_samples);
  return std::unique_ptr<CheckpointWriter>(
      new CheckpointWriter(std::move(impl)));
}

void CheckpointWriter::append(std::uint64_t begin,
                              std::span<const double> delay,
                              std::span<const double> leak) {
  STATLEAK_ASSERT(delay.size() == leak.size(),
                  "checkpoint record needs paired delay/leakage spans");
  if (delay.empty()) return;
  validate_checkpoint_range(begin, delay.size(), impl_->num_samples);

  const std::uint64_t count = delay.size();
  std::vector<std::uint8_t> payload;
  payload.reserve(block_payload_bytes(count));
  put<std::uint64_t>(payload, begin);
  put<std::uint64_t>(payload, count);
  for (double d : delay) put<double>(payload, d);
  for (double l : leak) put<double>(payload, l);
  impl_->journal->append(kMcSampleBlock, payload.data(), payload.size());
}

bool CheckpointWriter::healthy() const { return impl_->journal->healthy(); }

std::uint64_t CheckpointWriter::records_appended() const {
  return impl_->journal->records_appended();
}

}  // namespace statleak
