#include "mc/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace statleak {

namespace {

// --- little-endian scalar packing ------------------------------------------
// statleak targets little-endian hosts only (x86-64, AArch64 LE); raw
// memcpy of the in-memory representation IS the wire format.

template <typename T>
void put(std::vector<std::uint8_t>& buf, T value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

constexpr std::size_t kRecordHeaderBytes = 8 + 8 + 4;  // begin, count, crc

std::size_t record_bytes(std::uint64_t count) {
  return kRecordHeaderBytes + 2 * count * sizeof(double);
}

/// First 32 header bytes (everything the header CRC covers).
std::vector<std::uint8_t> header_prefix(std::uint64_t config_hash,
                                        std::uint64_t num_samples,
                                        std::uint64_t committed_bytes) {
  std::vector<std::uint8_t> buf;
  buf.reserve(32);
  put<std::uint32_t>(buf, kCheckpointMagic);
  put<std::uint32_t>(buf, kCheckpointVersion);
  put<std::uint64_t>(buf, config_hash);
  put<std::uint64_t>(buf, num_samples);
  put<std::uint64_t>(buf, committed_bytes);
  return buf;
}

std::vector<std::uint8_t> header_bytes(std::uint64_t config_hash,
                                       std::uint64_t num_samples,
                                       std::uint64_t committed_bytes) {
  std::vector<std::uint8_t> buf =
      header_prefix(config_hash, num_samples, committed_bytes);
  put<std::uint32_t>(buf, crc32(buf.data(), buf.size()));
  return buf;
}

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw CheckpointError("checkpoint '" + path + "': " + why);
}

/// Reads the whole file; empty optional-style: throws on open failure.
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) reject(path, "cannot open for reading");
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) reject(path, "read error");
  return bytes;
}

/// Validated view of a checkpoint header.
struct Header {
  std::uint64_t config_hash = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t committed_bytes = 0;
};

/// Parses + validates the 36-byte header against the file size and the
/// expected run configuration. Every failure is a structured rejection.
Header check_header(const std::string& path,
                    const std::vector<std::uint8_t>& bytes,
                    std::uint64_t expected_hash,
                    std::uint64_t expected_samples) {
  if (bytes.size() < kCheckpointHeaderBytes) {
    reject(path, "truncated header (" + std::to_string(bytes.size()) +
                     " bytes, need " +
                     std::to_string(kCheckpointHeaderBytes) + ")");
  }
  const auto magic = get<std::uint32_t>(bytes.data());
  if (magic != kCheckpointMagic) {
    reject(path, "bad magic (not a statleak checkpoint)");
  }
  const auto version = get<std::uint32_t>(bytes.data() + 4);
  if (version != kCheckpointVersion) {
    reject(path, "unsupported version " + std::to_string(version) +
                     " (this build reads version " +
                     std::to_string(kCheckpointVersion) + ")");
  }
  const auto stored_crc = get<std::uint32_t>(bytes.data() + 32);
  if (stored_crc != crc32(bytes.data(), 32)) {
    reject(path, "header CRC mismatch (corrupt header)");
  }
  Header h;
  h.config_hash = get<std::uint64_t>(bytes.data() + 8);
  h.num_samples = get<std::uint64_t>(bytes.data() + 16);
  h.committed_bytes = get<std::uint64_t>(bytes.data() + 24);
  if (h.committed_bytes < kCheckpointHeaderBytes) {
    reject(path, "committed_bytes " + std::to_string(h.committed_bytes) +
                     " smaller than the header");
  }
  if (h.committed_bytes > bytes.size()) {
    reject(path, "file shorter than committed region (" +
                     std::to_string(bytes.size()) + " bytes on disk, " +
                     std::to_string(h.committed_bytes) + " committed)");
  }
  if (h.config_hash != expected_hash) {
    reject(path,
           "written by a different run configuration (config hash "
           "mismatch) — delete it or point --checkpoint elsewhere");
  }
  if (h.num_samples != expected_samples) {
    reject(path, "population mismatch (file has " +
                     std::to_string(h.num_samples) + " samples, run wants " +
                     std::to_string(expected_samples) + ")");
  }
  return h;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Table generated once for polynomial 0xEDB88320 (reflected IEEE 802.3).
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t mc_checkpoint_hash(const Circuit& circuit,
                                 const VariationModel& var,
                                 const McConfig& config,
                                 std::span<const double> widths,
                                 const ProcessNode& node) {
  std::uint64_t h = 0x53544C4Bu;  // "STLK"
  const auto mix = [&h](std::uint64_t x) { h = mix64(h ^ x); };
  const auto mix_f64 = [&mix](double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  };

  mix(config.seed);
  mix(static_cast<std::uint64_t>(config.num_samples));
  mix(config.exact_delay ? 1 : 0);
  // The sampler kind and the importance shift both change every sampled
  // value, so resuming e.g. a Sobol run from a pseudo checkpoint must be
  // rejected. The control-variate flag is deliberately NOT mixed: it only
  // adds a derived side-channel and leaves the samples untouched.
  mix(static_cast<std::uint64_t>(config.sampler));
  mix_f64(config.is_shift.l_sigma);
  mix_f64(config.is_shift.v_sigma);

  mix(circuit.num_gates());
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    mix(static_cast<std::uint64_t>(g.kind));
    mix(static_cast<std::uint64_t>(g.vth));
    mix_f64(g.size);
  }

  mix_f64(var.sigma_l_inter_nm);
  mix_f64(var.sigma_l_intra_nm);
  mix_f64(var.sigma_vth_inter_v);
  mix_f64(var.sigma_vth_intra_v);
  mix(var.pelgrom_vth_scaling ? 1 : 0);
  mix_f64(var.pelgrom_ref_width_um);

  mix(widths.size());
  for (double w : widths) mix_f64(w);

  // Every physical constant of the node changes the sampled values, so a
  // checkpoint is pinned to its environment corner (temperature, Vdd, node
  // flavor). The name is deliberately not mixed — only physics matters.
  mix_f64(node.vdd);
  mix_f64(node.leff_nm);
  mix_f64(node.temperature_k);
  mix_f64(node.vth_low);
  mix_f64(node.vth_high);
  mix_f64(node.subthreshold_slope);
  mix_f64(node.i0_na_per_um);
  mix_f64(node.vth_rolloff_v_per_nm);
  mix_f64(node.leak_quadratic_per_nm2);
  mix_f64(node.alpha);
  mix_f64(node.k_drive_ua_per_um);
  mix_f64(node.k_delay);
  mix_f64(node.cg_ff_per_um);
  mix_f64(node.cj_ff_per_um);
  mix_f64(node.cw_fixed_ff);
  mix_f64(node.cw_per_fanout_ff);
  mix_f64(node.wn_unit_um);
  mix_f64(node.pn_ratio);
  return h;
}

void validate_checkpoint_range(std::uint64_t begin, std::uint64_t count,
                               std::uint64_t num_samples) {
  if (count == 0) {
    throw CheckpointError("empty slot range at slot " + std::to_string(begin));
  }
  if (begin > num_samples || count > num_samples - begin) {
    throw CheckpointError("slot range " + std::to_string(begin) + "+" +
                          std::to_string(count) +
                          " overruns the population of " +
                          std::to_string(num_samples) + " samples");
  }
}

bool checkpoint_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec &&
         std::filesystem::file_size(path, ec) > 0 && !ec;
}

CheckpointData load_checkpoint(const std::string& path,
                               std::uint64_t config_hash,
                               std::uint64_t num_samples) {
  const std::vector<std::uint8_t> bytes = slurp(path);
  const Header h = check_header(path, bytes, config_hash, num_samples);

  CheckpointData data;
  data.num_samples = h.num_samples;
  data.dropped_tail_bytes = bytes.size() - h.committed_bytes;
  data.done.assign(num_samples, 0);
  data.delay_ps.assign(num_samples, 0.0);
  data.leakage_na.assign(num_samples, 0.0);

  std::size_t off = kCheckpointHeaderBytes;
  while (off < h.committed_bytes) {
    if (h.committed_bytes - off < kRecordHeaderBytes) {
      reject(path, "committed record header truncated at byte " +
                       std::to_string(off));
    }
    const auto begin = get<std::uint64_t>(bytes.data() + off);
    const auto count = get<std::uint64_t>(bytes.data() + off + 8);
    const auto stored_crc = get<std::uint32_t>(bytes.data() + off + 16);
    if (count == 0) {
      reject(path, "empty record at byte " + std::to_string(off));
    }
    if (begin > num_samples || count > num_samples - begin) {
      reject(path, "record at byte " + std::to_string(off) +
                       " overruns the population (slots " +
                       std::to_string(begin) + "+" + std::to_string(count) +
                       " of " + std::to_string(num_samples) + ")");
    }
    const std::size_t total = record_bytes(count);
    if (h.committed_bytes - off < total) {
      reject(path, "committed record payload truncated at byte " +
                       std::to_string(off));
    }
    // CRC covers begin+count+payload; the crc field itself is skipped.
    std::uint32_t crc = crc32(bytes.data() + off, 16);
    crc = crc32(bytes.data() + off + kRecordHeaderBytes,
                total - kRecordHeaderBytes, crc);
    if (crc != stored_crc) {
      reject(path,
             "record CRC mismatch at byte " + std::to_string(off) +
                 " (corrupt committed data)");
    }
    const std::uint8_t* payload = bytes.data() + off + kRecordHeaderBytes;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t slot = begin + i;
      data.delay_ps[slot] = get<double>(payload + i * sizeof(double));
      data.leakage_na[slot] =
          get<double>(payload + (count + i) * sizeof(double));
      if (data.done[slot] == 0) {
        data.done[slot] = 1;
        ++data.done_count;
      }
    }
    off += total;
  }
  return data;
}

// --- writer -----------------------------------------------------------------

struct CheckpointWriter::Impl {
  std::mutex mutex;
  std::FILE* file = nullptr;
  std::string path;
  std::uint64_t config_hash = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t committed = 0;
  std::uint64_t records = 0;
  bool dead = false;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  /// Rewrites bytes [0, 36) with the current committed_bytes. Phase two of
  /// the commit: only runs after the record payload is flushed.
  bool write_header_locked() {
    const std::vector<std::uint8_t> hdr =
        header_bytes(config_hash, num_samples, committed);
    if (std::fseek(file, 0, SEEK_SET) != 0) return false;
    if (std::fwrite(hdr.data(), 1, hdr.size(), file) != hdr.size()) {
      return false;
    }
    return std::fflush(file) == 0;
  }
};

CheckpointWriter::CheckpointWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

CheckpointWriter::~CheckpointWriter() = default;

std::unique_ptr<CheckpointWriter> CheckpointWriter::create(
    const std::string& path, std::uint64_t config_hash,
    std::uint64_t num_samples) {
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->config_hash = config_hash;
  impl->num_samples = num_samples;
  impl->committed = kCheckpointHeaderBytes;
  impl->file = std::fopen(path.c_str(), "wb+");
  if (impl->file == nullptr) {
    throw CheckpointError("checkpoint '" + path +
                          "': cannot open for writing");
  }
  if (!impl->write_header_locked()) {
    throw CheckpointError("checkpoint '" + path +
                          "': failed to write header");
  }
  return std::unique_ptr<CheckpointWriter>(
      new CheckpointWriter(std::move(impl)));
}

std::unique_ptr<CheckpointWriter> CheckpointWriter::resume(
    const std::string& path, std::uint64_t config_hash,
    std::uint64_t num_samples) {
  // Validate via the loader's machinery (cheap relative to an MC run) so a
  // writer never appends after a corrupt committed region.
  const std::vector<std::uint8_t> bytes = slurp(path);
  const Header h = check_header(path, bytes, config_hash, num_samples);

  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->config_hash = config_hash;
  impl->num_samples = num_samples;
  impl->committed = h.committed_bytes;
  impl->file = std::fopen(path.c_str(), "rb+");
  if (impl->file == nullptr) {
    throw CheckpointError("checkpoint '" + path +
                          "': cannot open for appending");
  }
  // Drop any uncommitted tail now so new records extend the committed
  // region contiguously.
  if (bytes.size() > h.committed_bytes) {
    std::error_code ec;
    std::filesystem::resize_file(path, h.committed_bytes, ec);
    if (ec) {
      throw CheckpointError("checkpoint '" + path +
                            "': cannot drop uncommitted tail");
    }
  }
  return std::unique_ptr<CheckpointWriter>(
      new CheckpointWriter(std::move(impl)));
}

void CheckpointWriter::append(std::uint64_t begin,
                              std::span<const double> delay,
                              std::span<const double> leak) {
  STATLEAK_ASSERT(delay.size() == leak.size(),
                  "checkpoint record needs paired delay/leakage spans");
  if (delay.empty()) return;
  Impl& im = *impl_;
  validate_checkpoint_range(begin, delay.size(), im.num_samples);
  const std::lock_guard<std::mutex> lock(im.mutex);
  if (im.dead) return;  // a dead writer behaves like a dead process

  const std::uint64_t count = delay.size();
  std::vector<std::uint8_t> rec;
  rec.reserve(record_bytes(count));
  put<std::uint64_t>(rec, begin);
  put<std::uint64_t>(rec, count);
  std::uint32_t crc = crc32(rec.data(), 16);
  crc = crc32(delay.data(), count * sizeof(double), crc);
  crc = crc32(leak.data(), count * sizeof(double), crc);
  put<std::uint32_t>(rec, crc);
  for (double d : delay) put<double>(rec, d);
  for (double l : leak) put<double>(rec, l);

  // Phase one: append + flush the record past the committed region.
  std::size_t write_len = rec.size();
  bool injected_short_write = false;
  if (STATLEAK_FAULT_FIRES(fault::Point::kShortWrite, im.records)) {
    // Simulate dying mid-flush: half the record reaches the disk and the
    // header is never advanced, so the tail is dropped on the next load.
    write_len = rec.size() / 2;
    injected_short_write = true;
  }
  bool ok = std::fseek(im.file, static_cast<long>(im.committed),
                       SEEK_SET) == 0 &&
            std::fwrite(rec.data(), 1, write_len, im.file) == write_len &&
            std::fflush(im.file) == 0;
  if (!ok || injected_short_write) {
    im.dead = true;
    return;
  }

  // Phase two: advance committed_bytes. Failure here leaves the old header
  // committed — the record becomes an ignorable tail, not corruption.
  im.committed += rec.size();
  if (!im.write_header_locked()) {
    im.committed -= rec.size();
    im.dead = true;
    return;
  }
  ++im.records;
}

bool CheckpointWriter::healthy() const {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lock(im.mutex);
  return !im.dead;
}

std::uint64_t CheckpointWriter::records_appended() const {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> lock(im.mutex);
  return im.records;
}

}  // namespace statleak
