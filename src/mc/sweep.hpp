/// \file sweep.hpp
/// \brief Corner/temperature sweep engine over one frozen circuit.
///
/// A sweep evaluates the same implementation point across a grid of
/// environment corners: process node flavor x temperature x supply x
/// variation-sigma scale. Each grid cell is a complete Monte-Carlo
/// population under a CellLibrary built for that corner — the exact library
/// a standalone `statleak mc` run configured at the corner would build, via
/// the same at_corner() resolution path, so every cell's population is
/// bit-identical to the standalone run (tests/sweep_test.cpp pins this).
///
/// The loop is corner-major: all samples of one cell run before the next
/// corner, and one McArena (mc/arena.hpp) carries the FlatCircuit snapshot,
/// kernel tables and per-worker scratch across cells, so every cell after
/// the first skips the cold-start costs (bench_fig5_runtime measures the
/// win over naive per-cell cold runs).
///
/// Fault tolerance composes per cell: the sweep deadline is the whole-grid
/// budget, and each cell receives the remaining slice; a cell stopped
/// mid-flight marks the sweep incomplete (partial surface, exit code 4 at
/// the CLI). With a checkpoint prefix, cell i persists to
/// "<prefix>.cell<i>" — re-running the same sweep restores finished cells
/// from their files and resumes the interrupted one, bit-identically.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cells/library.hpp"
#include "mc/monte_carlo.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "tech/process.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// One environment corner of the grid. Non-positive temperature/Vdd mean
/// "the node's calibrated value" (at_corner() semantics).
struct SweepCorner {
  std::string node;            ///< preset name (process_node_by_name)
  double temperature_k = 0.0;  ///< analysis temperature [K]; <= 0: preset
  double vdd_v = 0.0;          ///< supply [V]; <= 0: preset
  double sigma_scale = 1.0;    ///< VariationModel sigma multiplier

  /// Human-readable corner tag, e.g. "generic-100nm T=398K Vdd=1.1V".
  std::string label() const;

  /// The fully resolved process node of this corner.
  ProcessNode resolve_node() const;

  /// The variation model of this corner (typical_100nm scaled). The
  /// `scaled(1.0)` path is skipped so the default corner uses the exact
  /// model object a standalone run uses.
  VariationModel resolve_variation() const;
};

/// The sweep grid: the cross product of the four axes, corner-major order
/// node (slowest) x sigma x temperature x Vdd (fastest).
struct SweepGrid {
  std::vector<std::string> nodes = {"generic-100nm"};
  std::vector<double> temperatures_k = {0.0};
  std::vector<double> vdds_v = {0.0};
  std::vector<double> sigma_scales = {1.0};

  /// Throws statleak::Error on empty axes, unknown node names, or
  /// non-physical values (negative sigma scale; NaN anywhere).
  void validate() const;

  std::size_t num_cells() const {
    return nodes.size() * temperatures_k.size() * vdds_v.size() *
           sigma_scales.size();
  }

  /// The flattened cell list in evaluation order.
  std::vector<SweepCorner> corners() const;
};

/// One evaluated grid cell.
struct SweepCellResult {
  SweepCorner corner;
  double t_max_ps = 0.0;  ///< timing constraint used for this cell's yield
  McResult result;
};

struct SweepResult {
  std::vector<SweepCellResult> cells;  ///< evaluation order; last may be partial
  std::size_t cells_requested = 0;
  bool completed = false;  ///< every cell ran its full population
};

/// Evaluates the grid over one frozen circuit. `base` supplies the
/// per-cell Monte-Carlo configuration (samples, seed, engine, sampler,
/// deadline as the whole-sweep budget, checkpoint_path as a per-cell file
/// prefix). `t_max_ps <= 0` resolves each cell's timing constraint to
/// 1.1x that corner's nominal critical delay — the standalone-run default.
///
/// With a registry attached, records the "sweep.cells" phase and a "sweep"
/// trace row per cell; cells run with no registry of their own so the
/// surrounding report carries only sweep.* keys (per-sample values are
/// registry-invariant by the MC contract).
SweepResult run_corner_sweep(const Circuit& circuit, const SweepGrid& grid,
                             const McConfig& base, double t_max_ps = 0.0,
                             obs::Registry* obs = nullptr);

}  // namespace statleak
