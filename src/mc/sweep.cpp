#include "mc/sweep.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "mc/arena.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace statleak {

namespace {

// Compact axis-value formatting for corner labels ("398.15" not
// "398.150000").
std::string trim_number(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::string SweepCorner::label() const {
  std::string out = node;
  if (temperature_k > 0.0) out += " T=" + trim_number(temperature_k) + "K";
  if (vdd_v > 0.0) out += " Vdd=" + trim_number(vdd_v) + "V";
  if (sigma_scale != 1.0) out += " sigma=x" + trim_number(sigma_scale);
  return out;
}

ProcessNode SweepCorner::resolve_node() const {
  return at_corner(process_node_by_name(node), temperature_k, vdd_v);
}

VariationModel SweepCorner::resolve_variation() const {
  VariationModel var = VariationModel::typical_100nm();
  // Guarded so the x1.0 corner uses the exact object a standalone run
  // builds (no `sigma * 1.0` rewrite anywhere near the sample math).
  if (sigma_scale != 1.0) var = var.scaled(sigma_scale);
  return var;
}

void SweepGrid::validate() const {
  STATLEAK_CHECK(!nodes.empty(), "sweep grid needs at least one node");
  STATLEAK_CHECK(!temperatures_k.empty(),
                 "sweep grid needs at least one temperature");
  STATLEAK_CHECK(!vdds_v.empty(), "sweep grid needs at least one vdd");
  STATLEAK_CHECK(!sigma_scales.empty(),
                 "sweep grid needs at least one sigma scale");
  for (const std::string& name : nodes) {
    (void)process_node_by_name(name);  // throws with the known-name list
  }
  for (const double t : temperatures_k) {
    STATLEAK_CHECK(std::isfinite(t), "sweep temperature must be finite");
  }
  for (const double v : vdds_v) {
    STATLEAK_CHECK(std::isfinite(v), "sweep vdd must be finite");
  }
  for (const double s : sigma_scales) {
    STATLEAK_CHECK(std::isfinite(s) && s > 0.0,
                   "sweep sigma scale must be positive");
  }
}

std::vector<SweepCorner> SweepGrid::corners() const {
  std::vector<SweepCorner> out;
  out.reserve(num_cells());
  for (const std::string& node : nodes) {
    for (const double sigma : sigma_scales) {
      for (const double t : temperatures_k) {
        for (const double v : vdds_v) {
          SweepCorner corner;
          corner.node = node;
          corner.temperature_k = t;
          corner.vdd_v = v;
          corner.sigma_scale = sigma;
          out.push_back(std::move(corner));
        }
      }
    }
  }
  return out;
}

SweepResult run_corner_sweep(const Circuit& circuit, const SweepGrid& grid,
                             const McConfig& base, double t_max_ps,
                             obs::Registry* obs) {
  grid.validate();
  obs::ScopedTimer timer(obs, "sweep.cells");

  const std::vector<SweepCorner> corners = grid.corners();
  SweepResult out;
  out.cells_requested = corners.size();
  out.cells.reserve(corners.size());

  // The base deadline budgets the whole grid; each cell gets the remaining
  // slice. Deadline (util/exec.hpp) only answers expired(), so the sweep
  // tracks the budget itself on the same steady clock.
  const auto start = std::chrono::steady_clock::now();
  McArena arena;
  bool out_of_budget = false;
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const SweepCorner& corner = corners[i];
    McConfig cfg = base;
    if (base.deadline_ms > 0) {
      const std::int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const std::int64_t remaining_ms = base.deadline_ms - elapsed_ms;
      if (remaining_ms <= 0) {
        out_of_budget = true;
        break;
      }
      cfg.deadline_ms = remaining_ms;
    }
    // Each cell persists to its own file; re-running the sweep restores
    // finished cells wholesale and resumes the interrupted one.
    if (!base.checkpoint_path.empty()) {
      cfg.checkpoint_path = base.checkpoint_path + ".cell" + std::to_string(i);
    }

    SweepCellResult cell;
    cell.corner = corner;
    const ProcessNode node = corner.resolve_node();
    const CellLibrary lib(node);
    const VariationModel var = corner.resolve_variation();
    cell.t_max_ps = t_max_ps > 0.0
                        ? t_max_ps
                        : 1.1 * StaEngine(circuit, lib).critical_delay_ps();
    // No per-cell registry: the sweep's own keys are the report surface,
    // and sample values are registry-invariant by the MC contract.
    cell.result = run_monte_carlo(circuit, lib, var, cfg, nullptr, &arena);
    const bool cell_done = cell.result.completed;

    if (obs != nullptr && !cell.result.delay_ps.empty()) {
      obs::TraceEvent e;
      e.step = static_cast<std::int64_t>(i);
      e.phase = cell.corner.label();
      e.objective = cell.result.leakage_summary().mean;
      e.yield = cell.result.timing_yield(cell.t_max_ps);
      e.delay_ps = cell.result.delay_summary().mean;
      obs->trace("sweep", std::move(e));
    }
    out.cells.push_back(std::move(cell));
    if (!cell_done) break;  // deadline hit mid-cell: partial surface
  }

  out.completed = !out_of_budget && out.cells.size() == corners.size() &&
                  (out.cells.empty() || out.cells.back().result.completed);
  return out;
}

}  // namespace statleak
