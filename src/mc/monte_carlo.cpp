#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "leakage/batch_leakage.hpp"
#include "leakage/leakage.hpp"
#include "mc/arena.hpp"
#include "mc/batch.hpp"
#include "mc/checkpoint.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/batch_delay.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/sobol.hpp"

namespace statleak {

const char* to_string(McSampler sampler) {
  switch (sampler) {
    case McSampler::kPseudo: return "pseudo";
    case McSampler::kSobol: return "sobol";
  }
  return "unknown";
}

double McResult::ess() const {
  if (weights.empty()) return static_cast<double>(delay_ps.size());
  return effective_sample_size(weights);
}

double McResult::timing_yield(double t_max_ps) const {
  STATLEAK_CHECK(!delay_ps.empty(), "no samples");
  if (!weights.empty()) {
    return weighted_fraction_below(delay_ps, weights, t_max_ps);
  }
  std::size_t pass = 0;
  for (double d : delay_ps) {
    if (d <= t_max_ps) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delay_ps.size());
}

double McResult::combined_yield(double t_max_ps, double leak_cap_na) const {
  STATLEAK_CHECK(!delay_ps.empty(), "no samples");
  STATLEAK_CHECK(delay_ps.size() == leakage_na.size(),
                 "delay/leakage sample mismatch");
  if (!weights.empty()) {
    // Encode the joint indicator (pass = 0, fail = 1) and reuse the
    // lower-variance-side unnormalized fraction estimator.
    std::vector<double> fail(delay_ps.size());
    for (std::size_t i = 0; i < delay_ps.size(); ++i) {
      fail[i] = delay_ps[i] <= t_max_ps && leakage_na[i] <= leak_cap_na
                    ? 0.0
                    : 1.0;
    }
    return weighted_fraction_below(fail, weights, 0.5);
  }
  std::size_t pass = 0;
  for (std::size_t i = 0; i < delay_ps.size(); ++i) {
    if (delay_ps[i] <= t_max_ps && leakage_na[i] <= leak_cap_na) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delay_ps.size());
}

double McResult::yield_stderr(double t_max_ps) const {
  if (!weights.empty()) {
    // Standard error of the unnormalized estimator on its quieter side —
    // the same side timing_yield() reports.
    return weighted_fraction_below_est(delay_ps, weights, t_max_ps)
        .std_error;
  }
  const double y = timing_yield(t_max_ps);
  const auto n = static_cast<double>(delay_ps.size());
  return std::sqrt(std::max(0.0, y * (1.0 - y) / n));
}

double McResult::leakage_quantile_na(double p) const {
  if (!weights.empty()) return weighted_quantile(leakage_na, weights, p);
  return quantile(leakage_na, p);
}

double McResult::delay_quantile_ps(double p) const {
  if (!weights.empty()) return weighted_quantile(delay_ps, weights, p);
  return quantile(delay_ps, p);
}

double McResult::leakage_mean_ci_na(double confidence) const {
  if (!weights.empty()) {
    return weighted_mean_ci_halfwidth(leakage_na, weights, confidence);
  }
  return mean_ci_halfwidth(leakage_na, confidence);
}

double McResult::delay_mean_ci_ps(double confidence) const {
  if (!weights.empty()) {
    return weighted_mean_ci_halfwidth(delay_ps, weights, confidence);
  }
  return mean_ci_halfwidth(delay_ps, confidence);
}

double McResult::cv_beta() const {
  STATLEAK_CHECK(!cv_proxy_na.empty(),
                 "control variate was not enabled for this run");
  STATLEAK_CHECK(cv_proxy_na.size() == leakage_na.size(),
                 "proxy/sample mismatch");
  const std::size_t m = leakage_na.size();
  if (m < 2) return 0.0;
  const double ly = mean_of(leakage_na);
  const double lx = mean_of(cv_proxy_na);
  double cov = 0.0;
  double var = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double dx = cv_proxy_na[i] - lx;
    cov += dx * (leakage_na[i] - ly);
    var += dx * dx;
  }
  if (var <= 0.0) return 0.0;
  return cov / var;
}

double McResult::cv_leakage_mean_na() const {
  const double beta = cv_beta();
  return mean_of(leakage_na) - beta * (mean_of(cv_proxy_na) -
                                       cv_proxy_mean_na);
}

double McResult::cv_leakage_quantile_na(double p) const {
  const double beta = cv_beta();
  std::vector<double> corrected(leakage_na.size());
  for (std::size_t i = 0; i < leakage_na.size(); ++i) {
    corrected[i] =
        leakage_na[i] - beta * (cv_proxy_na[i] - cv_proxy_mean_na);
  }
  return quantile(corrected, p);
}

namespace {

/// Contiguous range of slots one worker computed, in shard order.
using SlotRun = std::pair<std::size_t, std::size_t>;  // [begin, end)

/// Device widths feeding the (optional) Pelgrom scaling of intra-die Vth
/// sigma; fixed for a whole run and part of the checkpoint fingerprint.
std::vector<double> device_widths(const Circuit& circuit,
                                  const CellLibrary& lib) {
  const std::size_t n = circuit.num_gates();
  std::vector<double> widths(n, -1.0);
  for (std::size_t id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(static_cast<GateId>(id));
    if (g.kind != CellKind::kInput) widths[id] = lib.area_um(g.kind, g.size);
  }
  return widths;
}

/// Entry validation shared by the full-run, shard and finalize paths.
void validate_mc_config(const VariationModel& var, const McConfig& config) {
  STATLEAK_CHECK(config.num_samples > 0, "need at least one sample");
  var.validate();
  STATLEAK_CHECK(!(config.control_variate && config.is_shift.active()),
                 "control variate and importance sampling cannot be "
                 "combined: the conditional-mean proxy assumes the nominal "
                 "global distribution");
  STATLEAK_CHECK(std::isfinite(config.is_shift.l_sigma) &&
                     std::isfinite(config.is_shift.v_sigma),
                 "importance shift must be finite");
  if (config.is_shift.l_sigma != 0.0) {
    STATLEAK_CHECK(var.sigma_l_inter_nm > 0.0,
                   "importance shift on dL requires a nonzero inter-die "
                   "length sigma");
  }
  if (config.is_shift.v_sigma != 0.0) {
    STATLEAK_CHECK(var.sigma_vth_inter_v > 0.0,
                   "importance shift on dVth requires a nonzero inter-die "
                   "Vth sigma");
  }
}

/// Computes slots [first, last) of the population, writing slot s to
/// delay_out[s - first] / leak_out[s - first]. `restored` (nullable,
/// local-indexed like the outputs) marks slots to skip. `flush(worker,
/// begin, end)` reports computed *global*-slot runs at
/// McConfig::checkpoint_every cadence and at shard boundaries; the range
/// is itself sharded over config.num_threads. Slot values depend only on
/// (seed, slot), never on the range cut, thread count, batch size or
/// engine — the property every distributed-merge guarantee rests on.
void run_sample_range(
    const Circuit& circuit, const CellLibrary& lib, const VariationModel& var,
    const McConfig& config, std::size_t first, std::size_t last,
    const std::uint8_t* restored, double* delay_out, double* leak_out,
    const std::function<void(int, std::size_t, std::size_t)>& flush,
    obs::Registry* obs, McArena* arena = nullptr) {
  // Scrambled-Sobol points for the two global dimensions; the intra-die
  // draws always stay on the per-sample pseudo-random streams. Point s is a
  // pure function of (seed, s), same determinism contract as Rng::stream.
  std::optional<SobolSequence> sobol_seq;
  if (config.sampler == McSampler::kSobol) sobol_seq.emplace(config.seed);
  const SobolSequence* qmc = sobol_seq ? &*sobol_seq : nullptr;

  // One global draw for slot s. The historical pseudo path must keep the
  // exact sample_global() call so existing seeds reproduce bit-for-bit;
  // the general path draws standardized deviates (Sobol point or the same
  // two stream normals), applies the standardized importance shift, and
  // scales. With pseudo + shift the stream consumes the same two normals
  // as before, so the per-gate draws that follow are unchanged.
  const IsShift shift = config.is_shift;
  const bool legacy_draw = qmc == nullptr && !shift.active();
  const auto draw_global = [&var, &shift, qmc, legacy_draw](
                               std::size_t s, Rng& rng) -> GlobalSample {
    if (legacy_draw) return sample_global(var, rng);
    const double zl = qmc != nullptr ? qmc->normal(s, 0) : rng.normal();
    const double zv = qmc != nullptr ? qmc->normal(s, 1) : rng.normal();
    return {var.sigma_l_inter_nm * (zl + shift.l_sigma),
            var.sigma_vth_inter_v * (zv + shift.v_sigma)};
  };

  // Shared, read-only during the sample loop: the engines' per-sample entry
  // points are const and take caller-owned scratch, so one instance serves
  // every worker.
  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, var);

  const std::size_t n = circuit.num_gates();
  const std::vector<double> widths = device_widths(circuit, lib);
  const std::size_t range = last - first;
  const std::size_t flush_every = static_cast<std::size_t>(
      std::max(1, config.checkpoint_every));
  const int workers = resolve_num_threads(config.num_threads);

  // --- fault-tolerant loop plumbing ----------------------------------------
  const Deadline deadline(config.deadline_ms);
  std::atomic<bool> stop{false};
  const bool fail_fast = config.health_policy == HealthPolicy::kFail;

  // Reports [run_begin, run_end) (in local coordinates) as global slots.
  const auto flush_run = [&flush, first](int worker, std::size_t run_begin,
                                         std::size_t run_end) {
    if (run_end <= run_begin) return;
    flush(worker, first + run_begin, first + run_end);
  };

  // Sample i draws exclusively from its counter-derived stream and writes
  // slot i of the output arrays, so shard boundaries (and hence the
  // thread count) cannot change a single bit of the output. In the batched
  // engine, lanes of one block are just consecutive samples evaluated
  // together — they never interact — so the batch size cannot either.
  if (config.use_batched) {
    // Freeze the implementation point into SoA form and hoist every
    // per-gate model constant out of the sample loop. With a caller-owned
    // arena the snapshot survives across calls: the FlatCircuit is rebuilt
    // only when the circuit changes, and the kernels are rebind()-ed —
    // constants recomputed from the current library, table allocations
    // kept. A rebind()-ed kernel computes the exact bits of a fresh one,
    // so arena reuse is invisible in the output.
    McArena local_arena;
    McArena& ar = arena != nullptr ? *arena : local_arena;
    if (ar.circuit != &circuit || !ar.flat.has_value()) {
      const auto t0 = std::chrono::steady_clock::now();
      ar.circuit = &circuit;
      ar.flat.emplace(FlatCircuit::build(circuit));
      const auto t1 = std::chrono::steady_clock::now();
      if (obs != nullptr) {
        obs->add("flat.build_ns",
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t1 - t0)
                         .count()));
      }
    }
    const FlatCircuit& flat = *ar.flat;
    if (ar.delay.has_value()) {
      ar.delay->rebind(flat, lib, sta.loads());
    } else {
      ar.delay.emplace(flat, lib, sta.loads());
    }
    if (ar.leak.has_value()) {
      ar.leak->rebind(flat, lib);
    } else {
      ar.leak.emplace(flat, lib);
    }
    const BatchDelayKernel& delay_kernel = *ar.delay;
    const BatchLeakageKernel& leak_kernel = *ar.leak;

    const std::size_t block = resolve_batch_size(config.batch_size, n);
    if (ar.scratch.size() < static_cast<std::size_t>(workers)) {
      ar.scratch.resize(static_cast<std::size_t>(workers));
    }
    std::vector<BatchScratch>& scratch_pool = ar.scratch;

    parallel_for(
        config.num_threads, range,
        [&](std::size_t begin, std::size_t end, int worker) {
          obs::LocalCounter evals(obs, "mc.sta_evals");
          obs::LocalCounter batches(obs, "mc.batches");
          BatchScratch& sc = scratch_pool[static_cast<std::size_t>(worker)];
          sc.resize(n, block);
          std::size_t run_begin = begin;  // first unflushed computed slot
          std::size_t covered = begin;    // end of processed region
          for (std::size_t s0 = begin; s0 < end; s0 += block) {
            if (stop.load(std::memory_order_relaxed)) break;
            if (deadline.expired()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            const std::size_t lanes = std::min(block, end - s0);
            // A fully restored block is skipped outright. Partially
            // restored blocks (possible when a checkpoint record ends
            // mid-block) are recomputed whole — the recomputed values are
            // bitwise identical, so correctness never depends on the cut.
            bool all_restored = restored != nullptr;
            for (std::size_t lane = 0; lane < lanes && all_restored; ++lane) {
              all_restored = restored[s0 + lane] != 0;
            }
            if (all_restored) {
              flush_run(worker, run_begin, s0);
              run_begin = s0 + lanes;
              covered = s0 + lanes;
              continue;
            }
            STATLEAK_FAULT_STALL(fault::Point::kShardStall, first + s0);
            // Draws stay sample-major (lane by lane, the exact call
            // sequence of the scalar path) and are transposed into the
            // gate-major blocks as they land.
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              const std::size_t slot = first + s0 + lane;
              Rng rng = Rng::stream(config.seed, slot);
              GlobalSample die = draw_global(slot, rng);
              if (STATLEAK_FAULT_FIRES(fault::Point::kNanDeviate, slot)) {
                die.dvth_v = std::numeric_limits<double>::quiet_NaN();
              }
              for (std::size_t id = 0; id < n; ++id) {
                const ParamSample ps = sample_gate(var, die, rng, widths[id]);
                sc.dl[id * block + lane] = ps.dl_nm;
                sc.dv[id * block + lane] = ps.dvth_v;
              }
            }
            delay_kernel.critical_delay_block(
                sc.dl.data(), sc.dv.data(), block, lanes, config.exact_delay,
                nullptr, sc.arrival.data(), sc.delay_out.data());
            leak_kernel.total_block(sc.dl.data(), sc.dv.data(), block, lanes,
                                    nullptr, sc.leak_out.data());
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              delay_out[s0 + lane] = sc.delay_out[lane];
              leak_out[s0 + lane] = sc.leak_out[lane];
              if (fail_fast) {
                const std::uint8_t cause = classify_health(
                    sc.delay_out[lane], sc.leak_out[lane]);
                if (cause != 0) {
                  stop.store(true, std::memory_order_relaxed);
                  throw_sample_health(first + s0 + lane, cause);
                }
              }
            }
            evals.add(static_cast<double>(lanes));
            batches.add();
            covered = s0 + lanes;
            if (covered - run_begin >= flush_every) {
              flush_run(worker, run_begin, covered);
              run_begin = covered;
            }
          }
          flush_run(worker, run_begin, covered);
        });
  } else {
    // Reference scalar path: one full AoS evaluation per sample. Buffers
    // are per-worker and reused across the whole shard.
    std::vector<std::vector<ParamSample>> sample_pool(
        static_cast<std::size_t>(workers));
    std::vector<std::vector<double>> scratch_pool(
        static_cast<std::size_t>(workers));

    parallel_for(
        config.num_threads, range,
        [&](std::size_t begin, std::size_t end, int worker) {
          // Per-thread accumulation: one registry merge per shard, so the
          // workers never contend on the registry mutex inside the loop.
          obs::LocalCounter evals(obs, "mc.sta_evals");
          std::vector<ParamSample>& samples =
              sample_pool[static_cast<std::size_t>(worker)];
          samples.resize(n);
          std::vector<double>& scratch =
              scratch_pool[static_cast<std::size_t>(worker)];
          std::size_t run_begin = begin;
          std::size_t covered = begin;
          for (std::size_t s = begin; s < end; ++s) {
            if (stop.load(std::memory_order_relaxed)) break;
            if (deadline.expired()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            if (restored != nullptr && restored[s] != 0) {
              flush_run(worker, run_begin, s);
              run_begin = s + 1;
              covered = s + 1;
              continue;
            }
            const std::size_t slot = first + s;
            STATLEAK_FAULT_STALL(fault::Point::kShardStall, slot);
            Rng rng = Rng::stream(config.seed, slot);
            GlobalSample die = draw_global(slot, rng);
            if (STATLEAK_FAULT_FIRES(fault::Point::kNanDeviate, slot)) {
              die.dvth_v = std::numeric_limits<double>::quiet_NaN();
            }
            for (std::size_t id = 0; id < n; ++id) {
              samples[id] = sample_gate(var, die, rng, widths[id]);
            }
            delay_out[s] = sta.critical_delay_sample_ps(
                samples, config.exact_delay, scratch);
            leak_out[s] = leakage.total_sample_na(samples);
            if (fail_fast) {
              const std::uint8_t cause =
                  classify_health(delay_out[s], leak_out[s]);
              if (cause != 0) {
                stop.store(true, std::memory_order_relaxed);
                throw_sample_health(slot, cause);
              }
            }
            evals.add();
            covered = s + 1;
            if (covered - run_begin >= flush_every) {
              flush_run(worker, run_begin, covered);
              run_begin = covered;
            }
          }
          flush_run(worker, run_begin, covered);
        });
  }
}

}  // namespace

std::vector<double> mc_device_widths(const Circuit& circuit,
                                     const CellLibrary& lib) {
  return device_widths(circuit, lib);
}

McResult run_monte_carlo(const Circuit& circuit, const CellLibrary& lib,
                         const VariationModel& var, const McConfig& config,
                         obs::Registry* obs, McArena* arena) {
  validate_mc_config(var, config);
  obs::ScopedTimer timer(obs, "mc.samples");

  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  McPopulation pop;
  pop.delay_ps.assign(num_samples, 0.0);
  pop.leakage_na.assign(num_samples, 0.0);

  // --- checkpoint restore ---------------------------------------------------
  // `restored[s] != 0` marks slots whose values came from the checkpoint;
  // the loop skips them and the finalize pass counts them as done. Restored
  // values are bitwise what this run would compute (the config hash pins
  // every input to the sample), so a resumed run equals an uninterrupted
  // one exactly.
  std::vector<std::uint8_t> restored(num_samples, 0);
  std::unique_ptr<CheckpointWriter> writer;
  if (!config.checkpoint_path.empty()) {
    const std::vector<double> widths = device_widths(circuit, lib);
    const std::uint64_t hash =
        mc_checkpoint_hash(circuit, var, config, widths, lib.node());
    if (checkpoint_exists(config.checkpoint_path)) {
      CheckpointData data =
          load_checkpoint(config.checkpoint_path, hash, num_samples);
      restored = std::move(data.done);
      pop.delay_ps = std::move(data.delay_ps);
      pop.leakage_na = std::move(data.leakage_na);
      pop.samples_restored = data.done_count;
      writer = CheckpointWriter::resume(config.checkpoint_path, hash,
                                        num_samples);
    } else {
      writer = CheckpointWriter::create(config.checkpoint_path, hash,
                                        num_samples);
    }
  }

  const int workers = resolve_num_threads(config.num_threads);

  // Each worker records the contiguous slot ranges it actually computed
  // (restored slots break ranges); the same ranges drive checkpoint record
  // appends. Indexed by worker — no locking.
  std::vector<std::vector<SlotRun>> computed_runs(
      static_cast<std::size_t>(workers));

  // Appends [run_begin, run_end) to the worker's log and — when
  // checkpointing — to the file. Spans point into the slot-indexed
  // population vectors, which stay full-size until finalize compacts them.
  const auto flush_run = [&](int worker, std::size_t run_begin,
                             std::size_t run_end) {
    computed_runs[static_cast<std::size_t>(worker)].emplace_back(run_begin,
                                                                 run_end);
    if (writer != nullptr) {
      const std::size_t count = run_end - run_begin;
      writer->append(run_begin,
                     std::span<const double>(pop.delay_ps)
                         .subspan(run_begin, count),
                     std::span<const double>(pop.leakage_na)
                         .subspan(run_begin, count));
    }
  };

  run_sample_range(circuit, lib, var, config, 0, num_samples, restored.data(),
                   pop.delay_ps.data(), pop.leakage_na.data(), flush_run, obs,
                   arena);

  // Done mask = restored slots + everything the workers logged. Ranges may
  // overlap restored slots (recomputed partial blocks); the mask dedups.
  pop.done = std::move(restored);
  for (const auto& runs : computed_runs) {
    for (const SlotRun& r : runs) {
      std::fill(pop.done.begin() + static_cast<std::ptrdiff_t>(r.first),
                pop.done.begin() + static_cast<std::ptrdiff_t>(r.second), 1);
    }
  }
  return finalize_mc_population(circuit, lib, var, config, std::move(pop),
                                obs);
}

McShardResult run_monte_carlo_shard(const Circuit& circuit,
                                    const CellLibrary& lib,
                                    const VariationModel& var,
                                    const McConfig& config,
                                    std::uint64_t begin, std::uint64_t end,
                                    const McBlockSink& sink,
                                    obs::Registry* obs) {
  validate_mc_config(var, config);
  const auto num_samples = static_cast<std::uint64_t>(config.num_samples);
  STATLEAK_CHECK(begin < end && end <= num_samples,
                 "shard range [" + std::to_string(begin) + ", " +
                     std::to_string(end) + ") must be a non-empty range in " +
                     std::to_string(num_samples) + " samples");
  obs::ScopedTimer timer(obs, "mc.samples");

  McShardResult res;
  res.begin = begin;
  res.end = end;
  const std::size_t range = static_cast<std::size_t>(end - begin);
  res.delay_ps.assign(range, 0.0);
  res.leakage_na.assign(range, 0.0);
  res.done.assign(range, 0);

  // Concurrent flushes touch disjoint slot ranges of `done` and the value
  // arrays, so no lock is needed for them; only the caller's sink must be
  // thread-safe (documented on McBlockSink).
  const auto flush_run = [&](int /*worker*/, std::size_t gbegin,
                             std::size_t gend) {
    const std::size_t lo = static_cast<std::size_t>(gbegin - begin);
    const std::size_t count = gend - gbegin;
    std::fill(res.done.begin() + static_cast<std::ptrdiff_t>(lo),
              res.done.begin() + static_cast<std::ptrdiff_t>(lo + count), 1);
    if (sink) {
      sink(gbegin,
           std::span<const double>(res.delay_ps).subspan(lo, count),
           std::span<const double>(res.leakage_na).subspan(lo, count));
    }
  };

  run_sample_range(circuit, lib, var, config, begin, end, nullptr,
                   res.delay_ps.data(), res.leakage_na.data(), flush_run,
                   obs);

  std::size_t done_count = 0;
  for (std::uint8_t d : res.done) done_count += d;
  res.samples_done = done_count;
  res.completed = done_count == range;
  return res;
}

McResult finalize_mc_population(const Circuit& circuit, const CellLibrary& lib,
                                const VariationModel& var,
                                const McConfig& config, McPopulation&& pop,
                                obs::Registry* obs) {
  validate_mc_config(var, config);
  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  STATLEAK_CHECK(pop.delay_ps.size() == num_samples &&
                     pop.leakage_na.size() == num_samples &&
                     pop.done.size() == num_samples,
                 "population vectors must be slot-indexed over num_samples");

  McResult result;
  result.samples_requested = num_samples;
  result.samples_restored = pop.samples_restored;
  result.delay_ps = std::move(pop.delay_ps);
  result.leakage_na = std::move(pop.leakage_na);
  const std::vector<std::uint8_t> done = std::move(pop.done);

  std::size_t done_count = 0;
  for (std::uint8_t d : done) done_count += d;
  result.samples_done = done_count;
  result.completed = done_count == num_samples;

  // Health scan over every done slot — covers restored values too (a
  // checkpoint may carry poisoned samples from a quarantining producer).
  // Under kFail the sample loop already threw for freshly computed samples,
  // so this only fires for restored or merged-in ones.
  const bool fail_fast = config.health_policy == HealthPolicy::kFail;
  for (std::size_t s = 0; s < num_samples; ++s) {
    if (done[s] == 0) continue;
    const std::uint8_t cause =
        classify_health(result.delay_ps[s], result.leakage_na[s]);
    if (cause == 0) continue;
    if (fail_fast) throw_sample_health(s, cause);
    result.quarantined.push_back(
        {static_cast<std::uint64_t>(s), static_cast<HealthCause>(cause)});
  }

  // --- estimator side-channels ---------------------------------------------
  // Importance weights and control-variate proxies are recomputed here,
  // serially, from the slot index alone: either sampler makes the global
  // deviates of slot s a pure function of (seed, s). That keeps the hot
  // loops untouched, makes this pass bit-identical for any thread count,
  // batch size, or resume history, and spares the checkpoint format from
  // storing weights at all. Both vectors are built survivor-aligned.
  const IsShift shift = config.is_shift;
  if (shift.active() || config.control_variate) {
    std::optional<SobolSequence> sobol_seq;
    if (config.sampler == McSampler::kSobol) sobol_seq.emplace(config.seed);
    const SobolSequence* qmc = sobol_seq ? &*sobol_seq : nullptr;
    std::optional<CvLeakageModel> cv;
    if (config.control_variate) {
      cv.emplace(circuit, lib, var);
      result.cv_proxy_mean_na = cv->analytic_mean_na();
      result.cv_proxy_na.reserve(result.samples_done);
    }
    if (shift.active()) result.weights.reserve(result.samples_done);
    std::size_t q = 0;  // cursor into the slot-ordered quarantine list
    for (std::size_t s = 0; s < num_samples; ++s) {
      if (done[s] == 0) continue;
      if (q < result.quarantined.size() && result.quarantined[q].slot == s) {
        ++q;
        continue;
      }
      double zl;
      double zv;
      if (qmc != nullptr) {
        zl = qmc->normal(s, 0);
        zv = qmc->normal(s, 1);
      } else {
        Rng rng = Rng::stream(config.seed, s);
        zl = rng.normal();
        zv = rng.normal();
      }
      if (shift.active()) {
        result.weights.push_back(std::exp(shift.log_weight(zl, zv)));
      }
      if (cv) {
        // No shift here — CV excludes IS — so the physical draw is just
        // the scaled deviate.
        const GlobalSample g{var.sigma_l_inter_nm * zl,
                             var.sigma_vth_inter_v * zv};
        result.cv_proxy_na.push_back(cv->proxy_na(g));
      }
    }
  }

  // Compact the slot-indexed vectors down to surviving samples. The common
  // complete-and-healthy case keeps the full vectors untouched.
  if (!result.completed || !result.quarantined.empty()) {
    std::size_t q = 0;  // cursor into the slot-ordered quarantine list
    std::size_t out = 0;
    for (std::size_t s = 0; s < num_samples; ++s) {
      if (done[s] == 0) continue;
      if (q < result.quarantined.size() && result.quarantined[q].slot == s) {
        ++q;
        continue;
      }
      result.delay_ps[out] = result.delay_ps[s];
      result.leakage_na[out] = result.leakage_na[s];
      ++out;
    }
    result.delay_ps.resize(out);
    result.leakage_na.resize(out);
  }

  if (obs != nullptr) {
    obs->add("mc.samples", static_cast<double>(result.delay_ps.size()));
    obs->note_config("mc.sampler", to_string(config.sampler));
    if (!result.delay_ps.empty()) {
      obs->set_gauge("mc.ess", result.ess());
      obs->set_gauge("mc.leakage_mean_ci_na", result.leakage_mean_ci_na());
      obs->set_gauge("mc.delay_mean_ci_ps", result.delay_mean_ci_ps());
      if (config.control_variate) {
        obs->set_gauge("mc.cv_beta", result.cv_beta());
        obs->set_gauge("mc.cv_leakage_mean_na", result.cv_leakage_mean_na());
      }
    }
    if (!result.quarantined.empty()) {
      std::size_t bad_delay = 0;
      std::size_t bad_leak = 0;
      for (const QuarantinedSample& qs : result.quarantined) {
        const auto bits = static_cast<std::uint8_t>(qs.cause);
        if ((bits &
             static_cast<std::uint8_t>(HealthCause::kNonFiniteDelay)) != 0) {
          ++bad_delay;
        }
        if ((bits &
             static_cast<std::uint8_t>(HealthCause::kNonFiniteLeakage)) !=
            0) {
          ++bad_leak;
        }
      }
      obs->add("mc.quarantined",
               static_cast<double>(result.quarantined.size()));
      obs->add("mc.quarantined.nonfinite_delay",
               static_cast<double>(bad_delay));
      obs->add("mc.quarantined.nonfinite_leakage",
               static_cast<double>(bad_leak));
    }
    if (!result.completed) {
      obs->add("mc.samples_done", static_cast<double>(result.samples_done));
      obs->mark_incomplete("deadline");
    }
    // Progress milestones, reconstructed serially from the (already
    // deterministic) surviving samples with running sums: identical for
    // any thread count, batch size, or engine.
    const std::size_t survivors = result.delay_ps.size();
    if (survivors > 0) {
      const std::size_t stride = std::max<std::size_t>(1, survivors / 16);
      double delay_sum = 0.0;
      double leak_sum = 0.0;
      for (std::size_t s = 0; s < survivors; ++s) {
        delay_sum += result.delay_ps[s];
        leak_sum += result.leakage_na[s];
        if ((s + 1) % stride == 0 || s + 1 == survivors) {
          obs::TraceEvent e;
          e.step = static_cast<std::int64_t>(s + 1);
          e.phase = "samples";
          e.objective = leak_sum / static_cast<double>(s + 1);
          e.delay_ps = delay_sum / static_cast<double>(s + 1);
          obs->trace("mc", std::move(e));
        }
      }
    }
  }
  return result;
}

}  // namespace statleak
