#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "leakage/batch_leakage.hpp"
#include "leakage/leakage.hpp"
#include "mc/batch.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/batch_delay.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

double McResult::timing_yield(double t_max_ps) const {
  STATLEAK_CHECK(!delay_ps.empty(), "no samples");
  std::size_t pass = 0;
  for (double d : delay_ps) {
    if (d <= t_max_ps) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delay_ps.size());
}

double McResult::combined_yield(double t_max_ps, double leak_cap_na) const {
  STATLEAK_CHECK(!delay_ps.empty(), "no samples");
  STATLEAK_CHECK(delay_ps.size() == leakage_na.size(),
                 "delay/leakage sample mismatch");
  std::size_t pass = 0;
  for (std::size_t i = 0; i < delay_ps.size(); ++i) {
    if (delay_ps[i] <= t_max_ps && leakage_na[i] <= leak_cap_na) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delay_ps.size());
}

double McResult::yield_stderr(double t_max_ps) const {
  const double y = timing_yield(t_max_ps);
  const auto n = static_cast<double>(delay_ps.size());
  return std::sqrt(std::max(0.0, y * (1.0 - y) / n));
}

McResult run_monte_carlo(const Circuit& circuit, const CellLibrary& lib,
                         const VariationModel& var, const McConfig& config,
                         obs::Registry* obs) {
  STATLEAK_CHECK(config.num_samples > 0, "need at least one sample");
  var.validate();
  obs::ScopedTimer timer(obs, "mc.samples");

  // Shared, read-only during the sample loop: the engines' per-sample entry
  // points are const and take caller-owned scratch, so one instance serves
  // every worker.
  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, var);

  const std::size_t n = circuit.num_gates();

  // Device widths feed the (optional) Pelgrom scaling of intra-die Vth
  // sigma; widths are fixed for the whole run.
  std::vector<double> widths(n, -1.0);
  for (std::size_t id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(static_cast<GateId>(id));
    if (g.kind != CellKind::kInput) widths[id] = lib.area_um(g.kind, g.size);
  }

  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  McResult result;
  result.delay_ps.assign(num_samples, 0.0);
  result.leakage_na.assign(num_samples, 0.0);

  const int workers = resolve_num_threads(config.num_threads);

  // Sample i draws exclusively from its counter-derived stream and writes
  // slots i of the result vectors, so shard boundaries (and hence the
  // thread count) cannot change a single bit of the output. In the batched
  // engine, lanes of one block are just consecutive samples evaluated
  // together — they never interact — so the batch size cannot either.
  if (config.use_batched) {
    // Freeze the implementation point into SoA form and hoist every
    // per-gate model constant out of the sample loop.
    const auto t0 = std::chrono::steady_clock::now();
    const FlatCircuit flat = FlatCircuit::build(circuit);
    const BatchDelayKernel delay_kernel(flat, lib, sta.loads());
    const BatchLeakageKernel leak_kernel(flat, lib);
    const auto t1 = std::chrono::steady_clock::now();
    if (obs != nullptr) {
      obs->add("flat.build_ns",
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()));
    }

    const std::size_t block = resolve_batch_size(config.batch_size, n);
    std::vector<BatchScratch> scratch_pool(
        static_cast<std::size_t>(workers));

    parallel_for(
        config.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          obs::LocalCounter evals(obs, "mc.sta_evals");
          obs::LocalCounter batches(obs, "mc.batches");
          BatchScratch& sc = scratch_pool[static_cast<std::size_t>(worker)];
          sc.resize(n, block);
          for (std::size_t s0 = begin; s0 < end; s0 += block) {
            const std::size_t lanes = std::min(block, end - s0);
            // Draws stay sample-major (lane by lane, the exact call
            // sequence of the scalar path) and are transposed into the
            // gate-major blocks as they land.
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              Rng rng = Rng::stream(config.seed, s0 + lane);
              const GlobalSample die = sample_global(var, rng);
              for (std::size_t id = 0; id < n; ++id) {
                const ParamSample ps = sample_gate(var, die, rng, widths[id]);
                sc.dl[id * block + lane] = ps.dl_nm;
                sc.dv[id * block + lane] = ps.dvth_v;
              }
            }
            delay_kernel.critical_delay_block(
                sc.dl.data(), sc.dv.data(), block, lanes, config.exact_delay,
                nullptr, sc.arrival.data(), sc.delay_out.data());
            leak_kernel.total_block(sc.dl.data(), sc.dv.data(), block, lanes,
                                    nullptr, sc.leak_out.data());
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              result.delay_ps[s0 + lane] = sc.delay_out[lane];
              result.leakage_na[s0 + lane] = sc.leak_out[lane];
            }
            evals.add(static_cast<double>(lanes));
            batches.add();
          }
        });
  } else {
    // Reference scalar path: one full AoS evaluation per sample. Buffers
    // are per-worker and reused across the whole shard.
    std::vector<std::vector<ParamSample>> sample_pool(
        static_cast<std::size_t>(workers));
    std::vector<std::vector<double>> scratch_pool(
        static_cast<std::size_t>(workers));

    parallel_for(
        config.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          // Per-thread accumulation: one registry merge per shard, so the
          // workers never contend on the registry mutex inside the loop.
          obs::LocalCounter evals(obs, "mc.sta_evals");
          std::vector<ParamSample>& samples =
              sample_pool[static_cast<std::size_t>(worker)];
          samples.resize(n);
          std::vector<double>& scratch =
              scratch_pool[static_cast<std::size_t>(worker)];
          for (std::size_t s = begin; s < end; ++s) {
            Rng rng = Rng::stream(config.seed, s);
            const GlobalSample die = sample_global(var, rng);
            for (std::size_t id = 0; id < n; ++id) {
              samples[id] = sample_gate(var, die, rng, widths[id]);
            }
            result.delay_ps[s] = sta.critical_delay_sample_ps(
                samples, config.exact_delay, scratch);
            result.leakage_na[s] = leakage.total_sample_na(samples);
            evals.add();
          }
        });
  }

  if (obs != nullptr) {
    obs->add("mc.samples", static_cast<double>(num_samples));
    // Progress milestones, reconstructed serially from the (already
    // deterministic) per-sample results with running sums: identical for
    // any thread count, batch size, or engine.
    const std::size_t stride = std::max<std::size_t>(1, num_samples / 16);
    double delay_sum = 0.0;
    double leak_sum = 0.0;
    for (std::size_t s = 0; s < num_samples; ++s) {
      delay_sum += result.delay_ps[s];
      leak_sum += result.leakage_na[s];
      if ((s + 1) % stride == 0 || s + 1 == num_samples) {
        obs::TraceEvent e;
        e.step = static_cast<std::int64_t>(s + 1);
        e.phase = "samples";
        e.objective = leak_sum / static_cast<double>(s + 1);
        e.delay_ps = delay_sum / static_cast<double>(s + 1);
        obs->trace("mc", std::move(e));
      }
    }
  }
  return result;
}

}  // namespace statleak
