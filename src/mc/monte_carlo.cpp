#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "leakage/leakage.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

double McResult::timing_yield(double t_max_ps) const {
  STATLEAK_CHECK(!delay_ps.empty(), "no samples");
  std::size_t pass = 0;
  for (double d : delay_ps) {
    if (d <= t_max_ps) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delay_ps.size());
}

double McResult::combined_yield(double t_max_ps, double leak_cap_na) const {
  STATLEAK_CHECK(!delay_ps.empty(), "no samples");
  STATLEAK_CHECK(delay_ps.size() == leakage_na.size(),
                 "delay/leakage sample mismatch");
  std::size_t pass = 0;
  for (std::size_t i = 0; i < delay_ps.size(); ++i) {
    if (delay_ps[i] <= t_max_ps && leakage_na[i] <= leak_cap_na) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(delay_ps.size());
}

double McResult::yield_stderr(double t_max_ps) const {
  const double y = timing_yield(t_max_ps);
  const auto n = static_cast<double>(delay_ps.size());
  return std::sqrt(std::max(0.0, y * (1.0 - y) / n));
}

McResult run_monte_carlo(const Circuit& circuit, const CellLibrary& lib,
                         const VariationModel& var, const McConfig& config,
                         obs::Registry* obs) {
  STATLEAK_CHECK(config.num_samples > 0, "need at least one sample");
  var.validate();
  obs::ScopedTimer timer(obs, "mc.samples");

  // Shared, read-only during the sample loop: the engines' per-sample entry
  // points are const and take caller-owned scratch, so one instance serves
  // every worker.
  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, var);

  const std::size_t n = circuit.num_gates();

  // Device widths feed the (optional) Pelgrom scaling of intra-die Vth
  // sigma; widths are fixed for the whole run.
  std::vector<double> widths(n, -1.0);
  for (std::size_t id = 0; id < n; ++id) {
    const Gate& g = circuit.gate(static_cast<GateId>(id));
    if (g.kind != CellKind::kInput) widths[id] = lib.area_um(g.kind, g.size);
  }

  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  McResult result;
  result.delay_ps.assign(num_samples, 0.0);
  result.leakage_na.assign(num_samples, 0.0);

  // Sample i draws exclusively from its counter-derived stream and writes
  // slots i of the result vectors, so shard boundaries (and hence the
  // thread count) cannot change a single bit of the output.
  parallel_for(
      config.num_threads, num_samples,
      [&](std::size_t begin, std::size_t end, int /*worker*/) {
        // Per-thread accumulation: one registry merge per shard, so the
        // workers never contend on the registry mutex inside the loop.
        obs::LocalCounter evals(obs, "mc.sta_evals");
        std::vector<ParamSample> samples(n);
        std::vector<double> scratch;
        for (std::size_t s = begin; s < end; ++s) {
          Rng rng = Rng::stream(config.seed, s);
          const GlobalSample die = sample_global(var, rng);
          for (std::size_t id = 0; id < n; ++id) {
            samples[id] = sample_gate(var, die, rng, widths[id]);
          }
          result.delay_ps[s] = sta.critical_delay_sample_ps(
              samples, config.exact_delay, scratch);
          result.leakage_na[s] = leakage.total_sample_na(samples);
          evals.add();
        }
      });

  if (obs != nullptr) {
    obs->add("mc.samples", static_cast<double>(num_samples));
    // Progress milestones, reconstructed serially from the (already
    // deterministic) per-sample results: identical for any thread count.
    const std::size_t stride = std::max<std::size_t>(1, num_samples / 16);
    double delay_sum = 0.0;
    double leak_sum = 0.0;
    for (std::size_t s = 0; s < num_samples; ++s) {
      delay_sum += result.delay_ps[s];
      leak_sum += result.leakage_na[s];
      if ((s + 1) % stride == 0 || s + 1 == num_samples) {
        obs::TraceEvent e;
        e.step = static_cast<std::int64_t>(s + 1);
        e.phase = "samples";
        e.objective = leak_sum / static_cast<double>(s + 1);
        e.delay_ps = delay_sum / static_cast<double>(s + 1);
        obs->trace("mc", std::move(e));
      }
    }
  }
  return result;
}

}  // namespace statleak
