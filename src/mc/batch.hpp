/// \file batch.hpp
/// \brief Per-worker scratch and block-size policy for batched Monte-Carlo.
///
/// The batched engines evaluate B samples ("lanes") at a time through the
/// gate-major kernels. Each worker owns one BatchScratch: the gate-major
/// deviation blocks (dl/dv), the arrival scratch, and the per-lane outputs
/// — allocated once per run, reused across blocks, so the sample loop is
/// allocation-free. Because lanes never interact (see batch_delay.hpp), the
/// block size affects performance only, never results.

#pragma once

#include <cstddef>
#include <vector>

namespace statleak {

/// Scratch for one worker evaluating blocks of up to `block` lanes over a
/// `num_gates`-gate circuit.
struct BatchScratch {
  std::vector<double> dl;       ///< [num_gates * block], gate-major
  std::vector<double> dv;       ///< [num_gates * block], gate-major
  std::vector<double> arrival;  ///< [num_gates * block], gate-major
  std::vector<double> delay_out;  ///< [block]
  std::vector<double> leak_out;   ///< [block]
  std::size_t block = 0;

  void resize(std::size_t num_gates, std::size_t block_size);
};

/// Resolves a requested batch size: a positive request is taken as-is;
/// 0 picks an automatic size that keeps the three gate-major blocks around
/// 3 MiB (L2-resident on current cores), clamped to [8, 64]. Throws
/// statleak::Error on negative requests.
std::size_t resolve_batch_size(int requested, std::size_t num_gates);

}  // namespace statleak
