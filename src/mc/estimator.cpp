#include "mc/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "ssta/canonical.hpp"
#include "ssta/ssta.hpp"
#include "util/error.hpp"
#include "util/normal.hpp"

namespace statleak {

namespace {

/// Largest shift magnitude we ever apply: beyond ~6 sigma the likelihood
/// ratios degenerate faster than the tail localization helps.
constexpr double kMaxShiftSigma = 6.0;

/// E[exp(a*X + b*X^2)] for X ~ N(0, sigma2) — the same closed form
/// leakage.cpp uses for the per-gate moments. Requires 2*b*sigma2 < 1.
double gaussian_exp_moment(double a, double b, double sigma2) {
  const double denom = 1.0 - 2.0 * b * sigma2;
  STATLEAK_CHECK(denom > 0.0,
                 "quadratic leakage exponent too large for the variation "
                 "model (2*q*sigma_L^2 must stay below 1)");
  return std::exp(a * a * sigma2 / (2.0 * denom)) / std::sqrt(denom);
}

}  // namespace

IsShift compute_timing_is_shift(const Circuit& circuit,
                                const CellLibrary& lib,
                                const VariationModel& var,
                                double t_max_ps) {
  const SstaEngine ssta(circuit, lib, var);
  const Canonical d = ssta.circuit_delay();
  const double g = std::sqrt(d.gl * d.gl + d.gv * d.gv);
  if (g <= 0.0) return {};  // no global sensitivity: nothing to shift along
  const double var_tot = d.variance();
  if (var_tot <= 0.0) return {};
  // Conditional-mean shift: for the linear-Gaussian model the optimal
  // proposal mean is E[(Z_L, Z_V) | D > t] ~= (gl, gv) * (t - mean) /
  // sigma_tot^2 — the projection of the failure distance onto the global
  // subspace. When the local term vanishes this is the classic
  // most-likely-failure-point (t - mean) / ||g||; with local noise it
  // backs off, because failures then also happen at milder global draws.
  // <= 0 means the target is not in the tail.
  const double dist = (t_max_ps - d.mean) * g / var_tot;
  if (dist <= 0.0) return {};
  const double mag = std::min(dist, kMaxShiftSigma);
  IsShift s;
  s.l_sigma = mag * d.gl / g;
  s.v_sigma = mag * d.gv / g;
  return s;
}

IsShift compute_leakage_is_shift(const CellLibrary& lib,
                                 const VariationModel& var, double p) {
  STATLEAK_CHECK(p > 0.5 && p < 1.0,
                 "leakage IS shift targets an upper-tail quantile in "
                 "(0.5, 1)");
  const DeviceSensitivities& sens = lib.sensitivities(Vth::kLow);
  // Global log-leakage factor G = -cL*sigma_Lg*Zl - cV*sigma_Vg*Zv; shift
  // toward G's p-quantile along its gradient.
  const double al = -sens.leak_cl_per_nm * var.sigma_l_inter_nm;
  const double av = -sens.leak_cv_per_v * var.sigma_vth_inter_v;
  const double g = std::sqrt(al * al + av * av);
  if (g <= 0.0) return {};
  const double mag = std::min(normal_inverse_cdf(p), kMaxShiftSigma);
  IsShift s;
  s.l_sigma = mag * al / g;
  s.v_sigma = mag * av / g;
  return s;
}

CvLeakageModel::CvLeakageModel(const Circuit& circuit,
                               const CellLibrary& lib,
                               const VariationModel& var) {
  const DeviceSensitivities& sens = lib.sensitivities(Vth::kLow);
  cl_ = sens.leak_cl_per_nm;
  cv_ = sens.leak_cv_per_v;
  q_ = sens.leak_q_per_nm2;
  sig_ll2_ = var.sigma_l_intra_nm * var.sigma_l_intra_nm;
  const double sig_l_tot2 = sig_ll2_ + var.sigma_l_inter_nm *
                                           var.sigma_l_inter_nm;
  const double sig_v_inter2 =
      var.sigma_vth_inter_v * var.sigma_vth_inter_v;

  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    const double nominal = lib.leakage_na(g.kind, g.vth, g.size);
    // Pelgrom scaling makes the intra-die Vth sigma width-dependent; both
    // the conditional-mean factor and the analytic mean honour it.
    const double sv_loc =
        var.sigma_vth_intra_for(lib.area_um(g.kind, g.size));
    base_sum_na_ +=
        nominal * gaussian_exp_moment(-cv_, 0.0, sv_loc * sv_loc);
    analytic_mean_na_ +=
        nominal * gaussian_exp_moment(-cl_, q_, sig_l_tot2) *
        gaussian_exp_moment(-cv_, 0.0, sig_v_inter2 + sv_loc * sv_loc);
  }
}

double CvLeakageModel::proxy_na(const GlobalSample& g) const {
  // E[L_g | global] = nominal_g * mv_g
  //     * exp(-cL*dLg - cV*dVg + q*dLg^2)
  //     * E[exp((-cL + 2q*dLg) X + q X^2)],  X ~ N(0, sigma_Ll^2);
  // only the nominal_g * mv_g factor is gate-specific, so the sum over
  // gates is base_sum_na_ and the rest evaluates once per sample.
  const double global_factor =
      std::exp(-cl_ * g.dl_nm - cv_ * g.dvth_v + q_ * g.dl_nm * g.dl_nm) *
      gaussian_exp_moment(-cl_ + 2.0 * q_ * g.dl_nm, q_, sig_ll2_);
  return base_sum_na_ * global_factor;
}

}  // namespace statleak
