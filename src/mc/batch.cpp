#include "mc/batch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statleak {

void BatchScratch::resize(std::size_t num_gates, std::size_t block_size) {
  block = block_size;
  dl.assign(num_gates * block_size, 0.0);
  dv.assign(num_gates * block_size, 0.0);
  arrival.assign(num_gates * block_size, 0.0);
  delay_out.assign(block_size, 0.0);
  leak_out.assign(block_size, 0.0);
}

std::size_t resolve_batch_size(int requested, std::size_t num_gates) {
  STATLEAK_CHECK(requested >= 0, "batch size must be non-negative (0 = auto)");
  if (requested > 0) return static_cast<std::size_t>(requested);
  // Auto: three num_gates * B double arrays ~ 3 MiB total => B ~ 2^17 / n,
  // clamped so tiny circuits still amortize per-block overhead and huge
  // ones still block.
  const std::size_t n = std::max<std::size_t>(num_gates, 1);
  return std::clamp<std::size_t>((std::size_t{1} << 17) / n, 8, 64);
}

}  // namespace statleak
