/// \file checkpoint.hpp
/// \brief Versioned, CRC-guarded checkpoint files for long Monte-Carlo runs.
///
/// PR 1's counter-based per-sample RNG streams make MC samples independent
/// and order-free: sample i's value depends only on (seed, i), never on
/// which samples ran before it. A checkpoint therefore only has to record
/// *which slots finished and their values* — resuming skips those slots and
/// recomputes the rest, and the merged result is bit-identical to an
/// uninterrupted run for any thread count, batch size, or engine.
///
/// The container is the generic two-phase-commit journal of
/// util/journal.hpp ("SLCK" magic, format version 2; version 1 was the
/// pre-generalization layout with an MC-specific record envelope). One
/// record kind is used:
///
///   kind kMcSampleBlock (payload)
///     begin      u64   first slot of the block
///     count      u64   number of consecutive slots
///     payload          count delays then count leakages (f64 bits)
///
/// The header's `meta` word is the population size. Crash consistency,
/// tail-drop on resume and the corruption taxonomy (all rejected as
/// CheckpointError, CLI exit 5) are the container's — see util/journal.hpp
/// and docs/ROBUSTNESS.md.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mc/monte_carlo.hpp"
#include "netlist/circuit.hpp"
#include "tech/process.hpp"
#include "tech/variation.hpp"
#include "util/journal.hpp"

namespace statleak {

inline constexpr std::uint32_t kCheckpointMagic = 0x4B434C53u;  // "SLCK"
inline constexpr std::uint32_t kCheckpointVersion = 2;
inline constexpr std::size_t kCheckpointHeaderBytes = kJournalHeaderBytes;
/// The MC checkpoint's one record kind (journal `kind` tag).
inline constexpr std::uint32_t kMcSampleBlock = 0;

/// The journal format tag of MC checkpoint files.
inline constexpr JournalFormat mc_checkpoint_format() {
  return JournalFormat{kCheckpointMagic, kCheckpointVersion};
}

/// Fingerprint of everything that pins Monte-Carlo sample values: the
/// master seed, the population size, the delay mode, the sampler kind and
/// importance shift (a Sobol or shifted run draws different values than a
/// pseudo one, so cross-resume is rejected), the implementation point
/// (per-gate kind/vth/size), the variation model, the per-gate device
/// widths (which fold in the cell library's area tables via the Pelgrom
/// path), and the process node's physical constants (so a checkpoint from
/// one environment corner — temperature, Vdd, node flavor — is rejected at
/// any other). Thread count, batch size, engine choice and the
/// control-variate flag are deliberately excluded — results are invariant
/// to them, so a checkpoint written by a batched 8-thread run resumes under
/// a scalar single-thread run and vice versa.
std::uint64_t mc_checkpoint_hash(const Circuit& circuit,
                                 const VariationModel& var,
                                 const McConfig& config,
                                 std::span<const double> widths,
                                 const ProcessNode& node);

/// Validates that a record's slot range [begin, begin + count) is non-empty
/// and lies inside a population of `num_samples` slots; throws
/// CheckpointError otherwise. CheckpointWriter::append enforces this on
/// every record, and the distributed coordinator (src/dist/) applies the
/// same check to every shard block a worker reports before committing it.
void validate_checkpoint_range(std::uint64_t begin, std::uint64_t count,
                               std::uint64_t num_samples);

/// Everything a resuming run restores from a checkpoint.
struct CheckpointData {
  std::uint64_t num_samples = 0;
  std::size_t done_count = 0;            ///< number of set bits in `done`
  std::uint64_t dropped_tail_bytes = 0;  ///< uncommitted bytes ignored on load
  std::vector<std::uint8_t> done;        ///< per-slot completion mask
  std::vector<double> delay_ps;          ///< full-size; undone slots are 0
  std::vector<double> leakage_na;        ///< full-size; undone slots are 0
};

/// True when `path` exists and is non-empty (i.e. worth loading).
bool checkpoint_exists(const std::string& path);

/// Loads and fully validates a checkpoint. Throws CheckpointError with a
/// precise diagnostic on any structural problem or when `config_hash` /
/// `num_samples` do not match the file.
CheckpointData load_checkpoint(const std::string& path,
                               std::uint64_t config_hash,
                               std::uint64_t num_samples);

/// Appends completed sample blocks to a checkpoint file. Construction
/// either creates a fresh file (truncating whatever was there when the
/// existing contents do not validate against hash/num_samples — callers
/// load first if they want to resume) or continues an existing valid one.
/// append() is thread-safe: shard workers flush their completed ranges
/// concurrently at the configured cadence.
class CheckpointWriter {
 public:
  /// Creates `path` with a fresh header (truncates existing contents).
  static std::unique_ptr<CheckpointWriter> create(const std::string& path,
                                                  std::uint64_t config_hash,
                                                  std::uint64_t num_samples);

  /// Opens an existing, valid checkpoint to append more records. Throws
  /// CheckpointError when the file does not validate.
  static std::unique_ptr<CheckpointWriter> resume(const std::string& path,
                                                  std::uint64_t config_hash,
                                                  std::uint64_t num_samples);

  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Durably appends one block: slots [begin, begin + delay.size()) with
  /// the given values. Two-phase: payload is flushed before the header's
  /// committed_bytes advances. After an I/O failure (or an injected short
  /// write) the writer goes dead — further appends are silently dropped,
  /// exactly as if the process had died — and healthy() reports false.
  void append(std::uint64_t begin, std::span<const double> delay,
              std::span<const double> leak);

  bool healthy() const;
  std::uint64_t records_appended() const;

 private:
  struct Impl;
  explicit CheckpointWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace statleak
