/// \file estimator.hpp
/// \brief Variance-reduction building blocks for the Monte-Carlo engines:
///        importance-sampling shifts and the SSTA control-variate model.
///
/// Importance sampling (ISLE-style)
/// --------------------------------
/// Tail probabilities — timing-yield loss P(D > T), extreme leakage
/// quantiles — waste almost every plain-MC sample on the uninteresting bulk
/// of the distribution. Following Bayrakci et al.'s ISLE recipe, the
/// *global* (inter-die) variation distribution is shifted toward the
/// failure region and every sample is reweighted with the exact Gaussian
/// likelihood ratio; the intra-die draws keep their nominal distribution
/// (they average out over the circuit and contribute little to the tail
/// direction). The shift lives in standardized units of the two global
/// sources, so it composes with any sampler: for a base deviate z ~ N(0,1)
/// the engine draws z' = z + s and weighs the sample by
///
///   w = phi(z') / phi(z' - s) = exp(-s^2/2 - s z)   (per dimension),
///
/// which is exact — estimates stay unbiased for any shift, good or bad. The
/// shift *selection* uses the canonical SSTA model as the cheap proxy: the
/// circuit-delay canonical's global sensitivities give the failure
/// direction, and the distance to the delay target gives the magnitude
/// (the most-likely-failure-point of the linearized limit state).
///
/// Control variate
/// ---------------
/// The conditional mean of total leakage given the global draw,
/// X = E[L_total | dL_glob, dVth_glob], is a perfect control variate
/// candidate: it is strongly correlated with the sampled total (the global
/// components dominate the spread of a many-gate sum), it is computable in
/// O(1) per sample after an O(gates) precomputation (the per-gate
/// conditional means share one global factor), and its expectation is the
/// *exact* analytic mean the Wilkinson model already computes (tower
/// property: E[X] = E[L_total]). The corrected estimator
///
///   mean_cv = mean(L) - beta * (mean(X) - E[X]),   beta = cov(L,X)/var(X)
///
/// removes the sampling noise of the global dimensions from the mean (and,
/// applied per-sample, from quantile estimates).

#pragma once

#include <cstdint>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "tech/variation.hpp"

namespace statleak {

/// Mean shift of the two standardized global variation sources (units of
/// their own sigmas). {0, 0} disables importance sampling.
struct IsShift {
  double l_sigma = 0.0;  ///< shift of the global dL source
  double v_sigma = 0.0;  ///< shift of the global dVth source

  bool active() const { return l_sigma != 0.0 || v_sigma != 0.0; }

  /// log of the per-sample likelihood ratio for *base* (pre-shift)
  /// standard deviates (zl, zv): log w = sum_dim(-s^2/2 - s z).
  double log_weight(double zl_base, double zv_base) const {
    return -0.5 * l_sigma * l_sigma - l_sigma * zl_base -
           0.5 * v_sigma * v_sigma - v_sigma * zv_base;
  }
};

/// Shift toward the timing-failure region {D > t_max_ps}: direction from
/// the canonical circuit delay's global sensitivities (gl, gv), magnitude
/// the standardized distance from the delay mean to the target along that
/// direction (the most likely failure point of the linearized limit state),
/// clamped to [0, 6] sigma. Returns an inactive shift when the target sits
/// at or below the mean (failures are not rare — plain MC is fine) or when
/// the delay carries no global sensitivity.
IsShift compute_timing_is_shift(const Circuit& circuit,
                                const CellLibrary& lib,
                                const VariationModel& var, double t_max_ps);

/// Shift toward the high-leakage tail: direction opposite the leakage
/// exponent's global gradient (leakage is exp(-cL dL - cV dVth), so *low*
/// dL / dVth means high leakage), magnitude Phi^-1(p) so the shifted mean
/// sits near the p-quantile of the global log-leakage factor. Requires
/// p in (0.5, 1); clamped to 6 sigma.
IsShift compute_leakage_is_shift(const CellLibrary& lib,
                                 const VariationModel& var, double p);

/// Precomputed conditional-mean leakage proxy X(global) = E[L_total |
/// global draw]. Per-sample evaluation is O(1): every gate's conditional
/// mean shares one factor depending only on the global draw, so the
/// gate sum collapses into a single precomputed constant.
class CvLeakageModel {
 public:
  CvLeakageModel(const Circuit& circuit, const CellLibrary& lib,
                 const VariationModel& var);

  /// X for one global draw [nA].
  double proxy_na(const GlobalSample& g) const;

  /// The exact analytic mean E[X] = E[L_total] [nA] (sum of exact per-gate
  /// lognormal means, same math as LeakageAnalyzer::mean_na()).
  double analytic_mean_na() const { return analytic_mean_na_; }

 private:
  double cl_ = 0.0;       ///< leakage exponent on dL [1/nm]
  double cv_ = 0.0;       ///< leakage exponent on dVth [1/V]
  double q_ = 0.0;        ///< quadratic dL exponent [1/nm^2]
  double sig_ll2_ = 0.0;  ///< intra-die dL variance [nm^2]
  double base_sum_na_ = 0.0;  ///< sum_g nominal_g * E[exp(-cV dVth_loc,g)]
  double analytic_mean_na_ = 0.0;
};

}  // namespace statleak
