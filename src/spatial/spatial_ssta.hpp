/// \file spatial_ssta.hpp
/// \brief Block-based SSTA under the grid spatial-correlation model.
///
/// Same algorithm as ssta/ — canonical forms, Clark MAX — but the canonical
/// form carries one sensitivity per *shared source*: the two inter-die
/// sources plus one (dL, dVth) pair per grid region:
///
///   A = mean + sum_k g[k] * Z_k + loc * z
///
/// Source layout: g[0] = dL inter-die, g[1] = dVth inter-die,
/// g[2 + r] = dL of region r, g[2 + R + r] = dVth of region r.
/// MAX correlation comes from the dot product of the g vectors, so two
/// paths through the same region are recognized as correlated even when
/// they share no gates — the effect the plain engine cannot represent.

#pragma once

#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "spatial/spatial_model.hpp"

namespace statleak {

/// Canonical form over an arbitrary set of shared Gaussian sources.
struct VectorCanonical {
  double mean = 0.0;
  std::vector<double> g;  ///< sensitivity per shared source
  double loc = 0.0;       ///< aggregated independent term

  double variance() const;
  double sigma() const;
  double cdf(double t) const;
  double quantile(double p) const;

  /// A + B (independent local parts). Vector lengths must match (or one may
  /// be empty, treated as all-zero).
  static VectorCanonical sum(const VectorCanonical& a,
                             const VectorCanonical& b);

  /// Clark max with correlation from the shared-source dot product.
  static VectorCanonical max(const VectorCanonical& a,
                             const VectorCanonical& b,
                             double* tightness_out = nullptr);
};

/// SSTA engine under the spatial model. Holds references; all constructor
/// arguments must outlive the engine.
///
/// Carries the same incremental machinery as ssta/SstaEngine: per-gate
/// arrivals are cached, implementation changes reported via on_resize() /
/// on_vth_change() re-propagate only the levelized dirty fanout cone with
/// early stop on bit-identical arrivals, and the trial API gives the
/// tentative-apply/reject pattern an O(touched) rollback. Queries are
/// bit-identical to a from-scratch pass either way.
class SpatialSstaEngine {
 public:
  SpatialSstaEngine(const Circuit& circuit, const CellLibrary& lib,
                    const SpatialVariationModel& model,
                    const std::vector<Point>& placement);

  /// Number of shared sources (2 + 2 * regions).
  std::size_t num_sources() const;

  /// Canonical delay of one gate.
  VectorCanonical gate_delay(GateId id) const;

  /// Circuit-delay canonical (max over primary outputs).
  VectorCanonical circuit_delay() const;

  /// Region of a gate (from the placement).
  int region_of(GateId id) const;

  /// Call after gate `id` changed size: patches the cached loads and marks
  /// `id` and its fanin drivers dirty.
  void on_resize(GateId id);
  /// Call after gate `id` changed threshold class: marks `id` dirty.
  void on_vth_change(GateId id);

  // ------------------------------------------------------------- trials --
  /// Starts logging cache overwrites for rollback_trial(). No nesting.
  void begin_trial();
  /// Keeps the current state and drops the undo log.
  void commit_trial();
  /// Restores loads, arrivals and the circuit-delay cache to their
  /// begin_trial() values in O(touched). The caller restores the circuit's
  /// own size/Vth fields.
  void rollback_trial();
  bool trial_active() const { return trial_active_; }

  /// Toggles dirty-cone retiming (default on); off = every query runs a
  /// full pass. Results are bit-identical either way.
  void set_incremental(bool enabled) { incremental_ = enabled; }
  bool incremental() const { return incremental_; }

  /// Attaches an observability registry (nullptr detaches); the engine
  /// counts queries ("ssta.spatial_passes") and the dirty-cone statistics
  /// ("ssta.spatial_full_passes", "ssta.spatial_incremental_passes",
  /// "ssta.spatial_cone_gates_retimed"). Read-only observation.
  void attach_observer(obs::Registry* registry) { obs_ = registry; }

 private:
  struct ArrivalUndo {
    GateId id = kInvalidGate;
    VectorCanonical arrival;
  };
  struct LoadUndo {
    GateId id = kInvalidGate;
    double load_ff = 0.0;
  };

  void mark_dirty(GateId id);
  void flush() const;
  void full_pass() const;
  bool retime_gate(GateId id) const;
  void recompute_output_max() const;
  void log_arrival(GateId id) const;
  void clear_pending() const;

  const Circuit& circuit_;
  const CellLibrary& lib_;
  const SpatialVariationModel& model_;
  std::vector<int> regions_;     ///< per gate
  std::vector<double> loads_ff_; ///< per gate output load
  obs::Registry* obs_ = nullptr;
  bool incremental_ = true;

  // Cached analysis state (logically const; see ssta.hpp).
  mutable std::vector<VectorCanonical> arrival_;
  mutable VectorCanonical out_max_;
  mutable bool primed_ = false;

  mutable std::vector<GateId> pending_;
  mutable std::vector<char> queued_;
  mutable std::vector<std::vector<GateId>> buckets_;

  bool trial_active_ = false;
  mutable bool trial_lost_baseline_ = false;
  mutable std::vector<ArrivalUndo> arrival_undo_;
  mutable std::vector<LoadUndo> load_undo_;
  mutable std::vector<char> touched_;  ///< bit 1: arrival logged; 2: load
  mutable std::vector<GateId> touched_list_;
  mutable std::vector<GateId> trial_pending_;
  mutable VectorCanonical trial_out_max_;
  mutable bool trial_primed_ = false;
};

}  // namespace statleak
