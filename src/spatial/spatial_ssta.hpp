/// \file spatial_ssta.hpp
/// \brief Block-based SSTA under the grid spatial-correlation model.
///
/// Same algorithm as ssta/ — canonical forms, Clark MAX — but the canonical
/// form carries one sensitivity per *shared source*: the two inter-die
/// sources plus one (dL, dVth) pair per grid region:
///
///   A = mean + sum_k g[k] * Z_k + loc * z
///
/// Source layout: g[0] = dL inter-die, g[1] = dVth inter-die,
/// g[2 + r] = dL of region r, g[2 + R + r] = dVth of region r.
/// MAX correlation comes from the dot product of the g vectors, so two
/// paths through the same region are recognized as correlated even when
/// they share no gates — the effect the plain engine cannot represent.

#pragma once

#include <vector>

#include "cells/library.hpp"
#include "netlist/circuit.hpp"
#include "obs/registry.hpp"
#include "spatial/spatial_model.hpp"

namespace statleak {

/// Canonical form over an arbitrary set of shared Gaussian sources.
struct VectorCanonical {
  double mean = 0.0;
  std::vector<double> g;  ///< sensitivity per shared source
  double loc = 0.0;       ///< aggregated independent term

  double variance() const;
  double sigma() const;
  double cdf(double t) const;
  double quantile(double p) const;

  /// A + B (independent local parts). Vector lengths must match (or one may
  /// be empty, treated as all-zero).
  static VectorCanonical sum(const VectorCanonical& a,
                             const VectorCanonical& b);

  /// Clark max with correlation from the shared-source dot product.
  static VectorCanonical max(const VectorCanonical& a,
                             const VectorCanonical& b,
                             double* tightness_out = nullptr);
};

/// SSTA engine under the spatial model. Holds references; all constructor
/// arguments must outlive the engine.
class SpatialSstaEngine {
 public:
  SpatialSstaEngine(const Circuit& circuit, const CellLibrary& lib,
                    const SpatialVariationModel& model,
                    const std::vector<Point>& placement);

  /// Number of shared sources (2 + 2 * regions).
  std::size_t num_sources() const;

  /// Canonical delay of one gate.
  VectorCanonical gate_delay(GateId id) const;

  /// Circuit-delay canonical (max over primary outputs).
  VectorCanonical circuit_delay() const;

  /// Region of a gate (from the placement).
  int region_of(GateId id) const;

  /// Attaches an observability registry (nullptr detaches); the engine
  /// counts forward passes ("ssta.spatial_passes"). Read-only observation.
  void attach_observer(obs::Registry* registry) { obs_ = registry; }

 private:
  const Circuit& circuit_;
  const CellLibrary& lib_;
  const SpatialVariationModel& model_;
  std::vector<int> regions_;     ///< per gate
  std::vector<double> loads_ff_; ///< per gate output load
  obs::Registry* obs_ = nullptr;
};

}  // namespace statleak
