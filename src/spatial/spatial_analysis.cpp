#include "spatial/spatial_analysis.hpp"

#include <cmath>

#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

LeakageDistribution spatial_leakage_distribution(
    const Circuit& circuit, const CellLibrary& lib,
    const SpatialVariationModel& model, const std::vector<Point>& placement) {
  model.validate();
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  // Marginal moments are those of the flat model (variance budget is
  // preserved by the spatial split).
  const LeakageModel margins(lib, model.base);
  const auto& sens = lib.sensitivities(Vth::kLow);
  const double cl = sens.leak_cl_per_nm;
  const double cv = sens.leak_cv_per_v;

  const double cov_global =
      cl * cl * model.base.sigma_l_inter_nm * model.base.sigma_l_inter_nm +
      cv * cv * model.base.sigma_vth_inter_v * model.base.sigma_vth_inter_v;
  const double cov_region =
      cl * cl * model.sigma_l_region_nm() * model.sigma_l_region_nm() +
      cv * cv * model.sigma_vth_region_v() * model.sigma_vth_region_v();

  double sum_mean = 0.0;
  double sum_mean_sq = 0.0;
  double sum_var = 0.0;
  std::vector<double> region_mean(
      static_cast<std::size_t>(model.num_regions()), 0.0);
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    const GateLeakMoments m = margins.gate_moments(g.kind, g.vth, g.size);
    sum_mean += m.mean_na;
    sum_mean_sq += m.mean_na * m.mean_na;
    sum_var += m.var_na2;
    region_mean[static_cast<std::size_t>(model.region_of(placement[id]))] +=
        m.mean_na;
  }
  double sum_region_sq = 0.0;
  for (double a : region_mean) sum_region_sq += a * a;

  const double k_global = std::exp(cov_global) - 1.0;
  const double k_same = std::exp(cov_global + cov_region) - 1.0;
  const double cross_region =
      k_global * std::max(0.0, sum_mean * sum_mean - sum_region_sq);
  const double same_region =
      k_same * std::max(0.0, sum_region_sq - sum_mean_sq);

  LeakageDistribution dist;
  dist.mean_na = sum_mean;
  dist.var_na2 = sum_var + cross_region + same_region;
  dist.fitted =
      Lognormal::from_moments(std::max(sum_mean, 1e-12), dist.var_na2);
  return dist;
}

McResult run_monte_carlo_spatial(const Circuit& circuit,
                                 const CellLibrary& lib,
                                 const SpatialVariationModel& model,
                                 const std::vector<Point>& placement,
                                 const McConfig& config,
                                 obs::Registry* obs) {
  model.validate();
  STATLEAK_CHECK(config.num_samples > 0, "need at least one sample");
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  obs::ScopedTimer timer(obs, "mc.spatial_samples");

  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, model.base);

  const std::size_t n = circuit.num_gates();
  std::vector<int> regions(n);
  for (std::size_t id = 0; id < n; ++id) {
    regions[id] = model.region_of(placement[id]);
  }

  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  McResult result;
  result.delay_ps.assign(num_samples, 0.0);
  result.leakage_na.assign(num_samples, 0.0);

  // Same counter-based sharding as the flat run_monte_carlo: sample i owns
  // stream i and slot i, so output is bit-identical for any thread count.
  parallel_for(
      config.num_threads, num_samples,
      [&](std::size_t begin, std::size_t end, int /*worker*/) {
        std::vector<ParamSample> samples(n);
        std::vector<double> scratch;
        for (std::size_t s = begin; s < end; ++s) {
          Rng rng = Rng::stream(config.seed, s);
          const SpatialDieSample die = sample_spatial_die(model, rng);
          for (std::size_t id = 0; id < n; ++id) {
            samples[id] = sample_spatial_gate(model, die, regions[id], rng);
          }
          result.delay_ps[s] = sta.critical_delay_sample_ps(
              samples, config.exact_delay, scratch);
          result.leakage_na[s] = leakage.total_sample_na(samples);
        }
      });
  if (obs != nullptr) {
    obs->add("mc.spatial_samples", static_cast<double>(num_samples));
  }
  return result;
}

}  // namespace statleak
