#include "spatial/spatial_analysis.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <utility>

#include "leakage/batch_leakage.hpp"
#include "mc/batch.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/batch_delay.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/health.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

LeakageDistribution spatial_leakage_distribution(
    const Circuit& circuit, const CellLibrary& lib,
    const SpatialVariationModel& model, const std::vector<Point>& placement) {
  model.validate();
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  // Marginal moments are those of the flat model (variance budget is
  // preserved by the spatial split).
  const LeakageModel margins(lib, model.base);
  const auto& sens = lib.sensitivities(Vth::kLow);
  const double cl = sens.leak_cl_per_nm;
  const double cv = sens.leak_cv_per_v;

  const double cov_global =
      cl * cl * model.base.sigma_l_inter_nm * model.base.sigma_l_inter_nm +
      cv * cv * model.base.sigma_vth_inter_v * model.base.sigma_vth_inter_v;
  const double cov_region =
      cl * cl * model.sigma_l_region_nm() * model.sigma_l_region_nm() +
      cv * cv * model.sigma_vth_region_v() * model.sigma_vth_region_v();

  double sum_mean = 0.0;
  double sum_mean_sq = 0.0;
  double sum_var = 0.0;
  std::vector<double> region_mean(
      static_cast<std::size_t>(model.num_regions()), 0.0);
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    const GateLeakMoments m = margins.gate_moments(g.kind, g.vth, g.size);
    sum_mean += m.mean_na;
    sum_mean_sq += m.mean_na * m.mean_na;
    sum_var += m.var_na2;
    region_mean[static_cast<std::size_t>(model.region_of(placement[id]))] +=
        m.mean_na;
  }
  double sum_region_sq = 0.0;
  for (double a : region_mean) sum_region_sq += a * a;

  const double k_global = std::exp(cov_global) - 1.0;
  const double k_same = std::exp(cov_global + cov_region) - 1.0;
  const double cross_region =
      k_global * std::max(0.0, sum_mean * sum_mean - sum_region_sq);
  const double same_region =
      k_same * std::max(0.0, sum_region_sq - sum_mean_sq);

  LeakageDistribution dist;
  dist.mean_na = sum_mean;
  dist.var_na2 = sum_var + cross_region + same_region;
  dist.fitted =
      Lognormal::from_moments(std::max(sum_mean, 1e-12), dist.var_na2);
  return dist;
}

McResult run_monte_carlo_spatial(const Circuit& circuit,
                                 const CellLibrary& lib,
                                 const SpatialVariationModel& model,
                                 const std::vector<Point>& placement,
                                 const McConfig& config,
                                 obs::Registry* obs) {
  model.validate();
  STATLEAK_CHECK(config.num_samples > 0, "need at least one sample");
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  obs::ScopedTimer timer(obs, "mc.spatial_samples");

  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, model.base);

  const std::size_t n = circuit.num_gates();
  std::vector<int> regions(n);
  for (std::size_t id = 0; id < n; ++id) {
    regions[id] = model.region_of(placement[id]);
  }

  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  McResult result;
  result.samples_requested = num_samples;
  result.delay_ps.assign(num_samples, 0.0);
  result.leakage_na.assign(num_samples, 0.0);

  const int workers = resolve_num_threads(config.num_threads);

  // Fault-tolerance plumbing mirrors the flat run_monte_carlo: deadline
  // checks at block boundaries, health classification per sample, and a
  // serial finalize pass that compacts partial/quarantined populations.
  // Checkpointing is a flat-MC feature only (see docs/ROBUSTNESS.md).
  const Deadline deadline(config.deadline_ms);
  std::atomic<bool> stop{false};
  const bool fail_fast = config.health_policy == HealthPolicy::kFail;
  using SlotRun = std::pair<std::size_t, std::size_t>;
  std::vector<std::vector<SlotRun>> computed_runs(
      static_cast<std::size_t>(workers));
  const auto log_run = [&](int worker, std::size_t run_begin,
                           std::size_t run_end) {
    if (run_end > run_begin) {
      computed_runs[static_cast<std::size_t>(worker)].emplace_back(run_begin,
                                                                   run_end);
    }
  };

  // Same counter-based sharding as the flat run_monte_carlo: sample i owns
  // stream i and slot i, so output is bit-identical for any thread count
  // (and, in the batched engine, for any batch size — lanes are just
  // consecutive samples that never interact).
  if (config.use_batched) {
    const auto t0 = std::chrono::steady_clock::now();
    const FlatCircuit flat = FlatCircuit::build(circuit);
    const BatchDelayKernel delay_kernel(flat, lib, sta.loads());
    const BatchLeakageKernel leak_kernel(flat, lib);
    const auto t1 = std::chrono::steady_clock::now();
    if (obs != nullptr) {
      obs->add("flat.build_ns",
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()));
    }

    const std::size_t block = resolve_batch_size(config.batch_size, n);
    std::vector<BatchScratch> scratch_pool(
        static_cast<std::size_t>(workers));

    parallel_for(
        config.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          obs::LocalCounter batches(obs, "mc.spatial_batches");
          BatchScratch& sc = scratch_pool[static_cast<std::size_t>(worker)];
          sc.resize(n, block);
          SpatialDieSample die;  // region buffers reused across lanes
          std::size_t covered = begin;
          for (std::size_t s0 = begin; s0 < end; s0 += block) {
            if (stop.load(std::memory_order_relaxed)) break;
            if (deadline.expired()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            const std::size_t lanes = std::min(block, end - s0);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              Rng rng = Rng::stream(config.seed, s0 + lane);
              sample_spatial_die(model, rng, die);
              for (std::size_t id = 0; id < n; ++id) {
                const ParamSample ps =
                    sample_spatial_gate(model, die, regions[id], rng);
                sc.dl[id * block + lane] = ps.dl_nm;
                sc.dv[id * block + lane] = ps.dvth_v;
              }
            }
            delay_kernel.critical_delay_block(
                sc.dl.data(), sc.dv.data(), block, lanes, config.exact_delay,
                nullptr, sc.arrival.data(), sc.delay_out.data());
            leak_kernel.total_block(sc.dl.data(), sc.dv.data(), block, lanes,
                                    nullptr, sc.leak_out.data());
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              result.delay_ps[s0 + lane] = sc.delay_out[lane];
              result.leakage_na[s0 + lane] = sc.leak_out[lane];
              if (fail_fast) {
                const std::uint8_t cause = classify_health(
                    sc.delay_out[lane], sc.leak_out[lane]);
                if (cause != 0) {
                  stop.store(true, std::memory_order_relaxed);
                  throw_sample_health(s0 + lane, cause);
                }
              }
            }
            batches.add();
            covered = s0 + lanes;
          }
          log_run(worker, begin, covered);
        });
  } else {
    std::vector<std::vector<ParamSample>> sample_pool(
        static_cast<std::size_t>(workers));
    std::vector<std::vector<double>> scratch_pool(
        static_cast<std::size_t>(workers));
    parallel_for(
        config.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          std::vector<ParamSample>& samples =
              sample_pool[static_cast<std::size_t>(worker)];
          samples.resize(n);
          std::vector<double>& scratch =
              scratch_pool[static_cast<std::size_t>(worker)];
          SpatialDieSample die;  // region buffers reused across samples
          std::size_t covered = begin;
          for (std::size_t s = begin; s < end; ++s) {
            if (stop.load(std::memory_order_relaxed)) break;
            if (deadline.expired()) {
              stop.store(true, std::memory_order_relaxed);
              break;
            }
            Rng rng = Rng::stream(config.seed, s);
            sample_spatial_die(model, rng, die);
            for (std::size_t id = 0; id < n; ++id) {
              samples[id] = sample_spatial_gate(model, die, regions[id], rng);
            }
            result.delay_ps[s] = sta.critical_delay_sample_ps(
                samples, config.exact_delay, scratch);
            result.leakage_na[s] = leakage.total_sample_na(samples);
            if (fail_fast) {
              const std::uint8_t cause = classify_health(
                  result.delay_ps[s], result.leakage_na[s]);
              if (cause != 0) {
                stop.store(true, std::memory_order_relaxed);
                throw_sample_health(s, cause);
              }
            }
            covered = s + 1;
          }
          log_run(worker, begin, covered);
        });
  }

  // Serial finalize: done mask, health scan (quarantine policy), and
  // compaction of partial populations — same semantics as run_monte_carlo.
  std::vector<std::uint8_t> done(num_samples, 0);
  for (const auto& runs : computed_runs) {
    for (const SlotRun& r : runs) {
      std::fill(done.begin() + static_cast<std::ptrdiff_t>(r.first),
                done.begin() + static_cast<std::ptrdiff_t>(r.second), 1);
    }
  }
  std::size_t done_count = 0;
  for (std::uint8_t d : done) done_count += d;
  result.samples_done = done_count;
  result.completed = done_count == num_samples;
  for (std::size_t s = 0; s < num_samples; ++s) {
    if (done[s] == 0) continue;
    const std::uint8_t cause =
        classify_health(result.delay_ps[s], result.leakage_na[s]);
    if (cause == 0) continue;
    if (fail_fast) throw_sample_health(s, cause);
    result.quarantined.push_back(
        {static_cast<std::uint64_t>(s), static_cast<HealthCause>(cause)});
  }
  if (!result.completed || !result.quarantined.empty()) {
    std::size_t q = 0;
    std::size_t out = 0;
    for (std::size_t s = 0; s < num_samples; ++s) {
      if (done[s] == 0) continue;
      if (q < result.quarantined.size() && result.quarantined[q].slot == s) {
        ++q;
        continue;
      }
      result.delay_ps[out] = result.delay_ps[s];
      result.leakage_na[out] = result.leakage_na[s];
      ++out;
    }
    result.delay_ps.resize(out);
    result.leakage_na.resize(out);
  }

  if (obs != nullptr) {
    obs->add("mc.spatial_samples", static_cast<double>(result.delay_ps.size()));
    if (!result.quarantined.empty()) {
      obs->add("mc.quarantined",
               static_cast<double>(result.quarantined.size()));
    }
    if (!result.completed) {
      obs->add("mc.samples_done", static_cast<double>(result.samples_done));
      obs->mark_incomplete("deadline");
    }
  }
  return result;
}

}  // namespace statleak
