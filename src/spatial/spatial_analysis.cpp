#include "spatial/spatial_analysis.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "leakage/batch_leakage.hpp"
#include "mc/batch.hpp"
#include "netlist/flat_circuit.hpp"
#include "sta/batch_delay.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace statleak {

LeakageDistribution spatial_leakage_distribution(
    const Circuit& circuit, const CellLibrary& lib,
    const SpatialVariationModel& model, const std::vector<Point>& placement) {
  model.validate();
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  // Marginal moments are those of the flat model (variance budget is
  // preserved by the spatial split).
  const LeakageModel margins(lib, model.base);
  const auto& sens = lib.sensitivities(Vth::kLow);
  const double cl = sens.leak_cl_per_nm;
  const double cv = sens.leak_cv_per_v;

  const double cov_global =
      cl * cl * model.base.sigma_l_inter_nm * model.base.sigma_l_inter_nm +
      cv * cv * model.base.sigma_vth_inter_v * model.base.sigma_vth_inter_v;
  const double cov_region =
      cl * cl * model.sigma_l_region_nm() * model.sigma_l_region_nm() +
      cv * cv * model.sigma_vth_region_v() * model.sigma_vth_region_v();

  double sum_mean = 0.0;
  double sum_mean_sq = 0.0;
  double sum_var = 0.0;
  std::vector<double> region_mean(
      static_cast<std::size_t>(model.num_regions()), 0.0);
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    const Gate& g = circuit.gate(id);
    if (g.kind == CellKind::kInput) continue;
    const GateLeakMoments m = margins.gate_moments(g.kind, g.vth, g.size);
    sum_mean += m.mean_na;
    sum_mean_sq += m.mean_na * m.mean_na;
    sum_var += m.var_na2;
    region_mean[static_cast<std::size_t>(model.region_of(placement[id]))] +=
        m.mean_na;
  }
  double sum_region_sq = 0.0;
  for (double a : region_mean) sum_region_sq += a * a;

  const double k_global = std::exp(cov_global) - 1.0;
  const double k_same = std::exp(cov_global + cov_region) - 1.0;
  const double cross_region =
      k_global * std::max(0.0, sum_mean * sum_mean - sum_region_sq);
  const double same_region =
      k_same * std::max(0.0, sum_region_sq - sum_mean_sq);

  LeakageDistribution dist;
  dist.mean_na = sum_mean;
  dist.var_na2 = sum_var + cross_region + same_region;
  dist.fitted =
      Lognormal::from_moments(std::max(sum_mean, 1e-12), dist.var_na2);
  return dist;
}

McResult run_monte_carlo_spatial(const Circuit& circuit,
                                 const CellLibrary& lib,
                                 const SpatialVariationModel& model,
                                 const std::vector<Point>& placement,
                                 const McConfig& config,
                                 obs::Registry* obs) {
  model.validate();
  STATLEAK_CHECK(config.num_samples > 0, "need at least one sample");
  STATLEAK_CHECK(placement.size() == circuit.num_gates(),
                 "one placement point per gate");
  obs::ScopedTimer timer(obs, "mc.spatial_samples");

  StaEngine sta(circuit, lib);
  LeakageAnalyzer leakage(circuit, lib, model.base);

  const std::size_t n = circuit.num_gates();
  std::vector<int> regions(n);
  for (std::size_t id = 0; id < n; ++id) {
    regions[id] = model.region_of(placement[id]);
  }

  const auto num_samples = static_cast<std::size_t>(config.num_samples);
  McResult result;
  result.delay_ps.assign(num_samples, 0.0);
  result.leakage_na.assign(num_samples, 0.0);

  const int workers = resolve_num_threads(config.num_threads);

  // Same counter-based sharding as the flat run_monte_carlo: sample i owns
  // stream i and slot i, so output is bit-identical for any thread count
  // (and, in the batched engine, for any batch size — lanes are just
  // consecutive samples that never interact).
  if (config.use_batched) {
    const auto t0 = std::chrono::steady_clock::now();
    const FlatCircuit flat = FlatCircuit::build(circuit);
    const BatchDelayKernel delay_kernel(flat, lib, sta.loads());
    const BatchLeakageKernel leak_kernel(flat, lib);
    const auto t1 = std::chrono::steady_clock::now();
    if (obs != nullptr) {
      obs->add("flat.build_ns",
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()));
    }

    const std::size_t block = resolve_batch_size(config.batch_size, n);
    std::vector<BatchScratch> scratch_pool(
        static_cast<std::size_t>(workers));

    parallel_for(
        config.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          obs::LocalCounter batches(obs, "mc.spatial_batches");
          BatchScratch& sc = scratch_pool[static_cast<std::size_t>(worker)];
          sc.resize(n, block);
          SpatialDieSample die;  // region buffers reused across lanes
          for (std::size_t s0 = begin; s0 < end; s0 += block) {
            const std::size_t lanes = std::min(block, end - s0);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              Rng rng = Rng::stream(config.seed, s0 + lane);
              sample_spatial_die(model, rng, die);
              for (std::size_t id = 0; id < n; ++id) {
                const ParamSample ps =
                    sample_spatial_gate(model, die, regions[id], rng);
                sc.dl[id * block + lane] = ps.dl_nm;
                sc.dv[id * block + lane] = ps.dvth_v;
              }
            }
            delay_kernel.critical_delay_block(
                sc.dl.data(), sc.dv.data(), block, lanes, config.exact_delay,
                nullptr, sc.arrival.data(), sc.delay_out.data());
            leak_kernel.total_block(sc.dl.data(), sc.dv.data(), block, lanes,
                                    nullptr, sc.leak_out.data());
            for (std::size_t lane = 0; lane < lanes; ++lane) {
              result.delay_ps[s0 + lane] = sc.delay_out[lane];
              result.leakage_na[s0 + lane] = sc.leak_out[lane];
            }
            batches.add();
          }
        });
  } else {
    std::vector<std::vector<ParamSample>> sample_pool(
        static_cast<std::size_t>(workers));
    std::vector<std::vector<double>> scratch_pool(
        static_cast<std::size_t>(workers));
    parallel_for(
        config.num_threads, num_samples,
        [&](std::size_t begin, std::size_t end, int worker) {
          std::vector<ParamSample>& samples =
              sample_pool[static_cast<std::size_t>(worker)];
          samples.resize(n);
          std::vector<double>& scratch =
              scratch_pool[static_cast<std::size_t>(worker)];
          SpatialDieSample die;  // region buffers reused across samples
          for (std::size_t s = begin; s < end; ++s) {
            Rng rng = Rng::stream(config.seed, s);
            sample_spatial_die(model, rng, die);
            for (std::size_t id = 0; id < n; ++id) {
              samples[id] = sample_spatial_gate(model, die, regions[id], rng);
            }
            result.delay_ps[s] = sta.critical_delay_sample_ps(
                samples, config.exact_delay, scratch);
            result.leakage_na[s] = leakage.total_sample_na(samples);
          }
        });
  }
  if (obs != nullptr) {
    obs->add("mc.spatial_samples", static_cast<double>(num_samples));
  }
  return result;
}

}  // namespace statleak
