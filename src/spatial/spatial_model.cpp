#include "spatial/spatial_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace statleak {

void SpatialVariationModel::validate() const {
  base.validate();
  STATLEAK_CHECK(grid >= 1 && grid <= 64, "grid must be in [1, 64]");
  STATLEAK_CHECK(region_fraction_l >= 0.0 && region_fraction_l <= 1.0,
                 "region_fraction_l must be in [0, 1]");
  STATLEAK_CHECK(region_fraction_v >= 0.0 && region_fraction_v <= 1.0,
                 "region_fraction_v must be in [0, 1]");
}

int SpatialVariationModel::region_of(const Point& p) const {
  const auto clamp_cell = [this](double coord) {
    const auto cell = static_cast<int>(coord * grid);
    return std::clamp(cell, 0, grid - 1);
  };
  return clamp_cell(p.x) * grid + clamp_cell(p.y);
}

}  // namespace statleak
