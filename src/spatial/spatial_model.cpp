#include "spatial/spatial_model.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {

void SpatialVariationModel::validate() const {
  base.validate();
  STATLEAK_CHECK(grid >= 1 && grid <= 64, "grid must be in [1, 64]");
  STATLEAK_CHECK(region_fraction_l >= 0.0 && region_fraction_l <= 1.0,
                 "region_fraction_l must be in [0, 1]");
  STATLEAK_CHECK(region_fraction_v >= 0.0 && region_fraction_v <= 1.0,
                 "region_fraction_v must be in [0, 1]");
}

int SpatialVariationModel::region_of(const Point& p) const {
  const auto clamp_cell = [this](double coord) {
    const auto cell = static_cast<int>(coord * grid);
    return std::clamp(cell, 0, grid - 1);
  };
  return clamp_cell(p.x) * grid + clamp_cell(p.y);
}

SpatialDieSample sample_spatial_die(const SpatialVariationModel& model,
                                    Rng& rng) {
  SpatialDieSample die;
  die.global = sample_global(model.base, rng);
  const int regions = model.num_regions();
  die.region_dl_nm.resize(static_cast<std::size_t>(regions));
  die.region_dvth_v.resize(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    die.region_dl_nm[static_cast<std::size_t>(r)] =
        rng.normal(0.0, model.sigma_l_region_nm());
    die.region_dvth_v[static_cast<std::size_t>(r)] =
        rng.normal(0.0, model.sigma_vth_region_v());
  }
  return die;
}

ParamSample sample_spatial_gate(const SpatialVariationModel& model,
                                const SpatialDieSample& die, int region,
                                Rng& rng) {
  STATLEAK_CHECK(region >= 0 && region < model.num_regions(),
                 "region index out of range");
  const auto r = static_cast<std::size_t>(region);
  ParamSample s;
  s.dl_nm = die.global.dl_nm + die.region_dl_nm[r] +
            rng.normal(0.0, model.sigma_l_local_nm());
  s.dvth_v = die.global.dvth_v + die.region_dvth_v[r] +
             rng.normal(0.0, model.sigma_vth_local_v());
  return s;
}

}  // namespace statleak
