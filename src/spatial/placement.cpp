#include "spatial/placement.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace statleak {

std::vector<Point> make_topological_placement(const Circuit& circuit,
                                              std::uint64_t seed) {
  STATLEAK_CHECK(circuit.finalized(), "placement needs a finalized circuit");
  const int depth = std::max(1, circuit.depth());

  // Count gates per level to spread them vertically.
  std::vector<int> level_count(static_cast<std::size_t>(depth) + 1, 0);
  for (GateId id = 0; id < circuit.num_gates(); ++id) {
    ++level_count[static_cast<std::size_t>(circuit.level(id))];
  }
  std::vector<int> level_cursor(static_cast<std::size_t>(depth) + 1, 0);

  Rng rng(seed);
  std::vector<Point> placement(circuit.num_gates());
  for (GateId id : circuit.topo_order()) {
    const auto lvl = static_cast<std::size_t>(circuit.level(id));
    const int rank = level_cursor[lvl]++;
    const int in_level = std::max(1, level_count[lvl]);
    Point p;
    p.x = (static_cast<double>(lvl) + 0.5) / (depth + 1);
    p.y = (static_cast<double>(rank) + 0.5) / in_level;
    // Jitter decorrelates region boundaries from logic structure while
    // keeping neighbours near each other.
    p.x = std::clamp(p.x + rng.uniform(-0.04, 0.04), 0.0, 1.0);
    p.y = std::clamp(p.y + rng.uniform(-0.04, 0.04), 0.0, 1.0);
    placement[id] = p;
  }
  return placement;
}

}  // namespace statleak
